package cellspot

import (
	"strings"
	"testing"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.World.Scale = 0.002
	cfg.Beacon.TotalHits = 3_000_000
	return cfg
}

func TestRunFacade(t *testing.T) {
	r, err := Run(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.Macro.GlobalCellFrac() <= 0 {
		t.Error("no cellular demand measured")
	}
	if r.Detected.Len() == 0 {
		t.Error("nothing detected")
	}
}

func TestClassifierFacade(t *testing.T) {
	if _, err := NewClassifier(0); err == nil {
		t.Error("bad threshold accepted")
	}
	c, err := NewClassifier(0.5)
	if err != nil || c.Threshold() != 0.5 {
		t.Fatal(err)
	}
	b, err := ParseBlock("192.0.2.0/24")
	if err != nil || b.String() != "192.0.2.0/24" {
		t.Fatalf("ParseBlock: %v %v", b, err)
	}
}

func TestGenerateWorldFacade(t *testing.T) {
	cfg := smallConfig()
	w, err := GenerateWorld(cfg.World)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunOnWorld(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.World != w {
		t.Error("RunOnWorld did not reuse the world")
	}
}

func TestWriteReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	env := NewEnv(smallConfig())
	var sb strings.Builder
	if err := WriteReport(&sb, env); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range ExperimentIDs() {
		if !strings.Contains(out, "==== "+id+" ") {
			t.Errorf("report missing experiment %s", id)
		}
	}
	if !strings.Contains(out, "Summary — measured vs paper") {
		t.Error("report missing summary table")
	}
	if !strings.Contains(out, "global_cellfrac") {
		t.Error("summary missing headline metric")
	}
}

func TestRunCaseStudyFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale case study is slow")
	}
	r, err := RunCaseStudy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.World.CarrierA == nil || r.World.CarrierB == nil || r.World.CarrierC == nil {
		t.Fatal("case study carriers missing")
	}
	if r.NetworkByASN(r.World.CarrierA.AS.Number) == nil {
		t.Error("carrier A not among identified cellular networks")
	}
	if r.NetworkByASN(4294967295) != nil {
		t.Error("NetworkByASN invented a network")
	}
}

func TestExperimentIDsStable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 22 {
		t.Fatalf("experiments = %d, want 22 (8 tables + 12 figures + 2 extensions)", len(ids))
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Errorf("duplicate id %s", id)
		}
		seen[id] = true
	}
	for _, want := range []string{"T3", "T8", "F1", "F12"} {
		if !seen[want] {
			t.Errorf("missing %s", want)
		}
	}
}
