package cellspot

// One benchmark per table and figure of the paper, plus ablation benches
// for the design choices DESIGN.md calls out. Each benchmark measures the
// cost of regenerating its artifact from cached pipeline runs and reports
// the artifact's headline metric alongside the paper's value via
// b.ReportMetric, so `go test -bench=.` doubles as the reproduction run.

import (
	"sync"
	"testing"

	"cellspot/internal/pipeline"
)

// benchEnv is shared across benchmarks: world generation dominates
// end-to-end cost and would otherwise swamp per-experiment timings.
var (
	benchOnce sync.Once
	benchE    *Env
)

func benchSetup(b *testing.B) *Env {
	b.Helper()
	benchOnce.Do(func() {
		cfg := DefaultConfig()
		cfg.World.Scale = 0.01
		benchE = NewEnv(cfg)
	})
	return benchE
}

// benchExperiment runs one experiment per iteration and reports its
// measured-vs-paper metrics once.
func benchExperiment(b *testing.B, id string, keys ...string) {
	env := benchSetup(b)
	// Materialize the pipeline runs outside the timed region.
	if _, err := pipeline.RunExperiment(id, env); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var out *Experiment
	for i := 0; i < b.N; i++ {
		var err error
		out, err = pipeline.RunExperiment(id, env)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, k := range keys {
		if v, ok := out.Metrics[k]; ok {
			b.ReportMetric(v, k)
		}
		if v, ok := out.Paper[k]; ok {
			b.ReportMetric(v, "paper_"+k)
		}
	}
}

func BenchmarkTable1PriorWork(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkTable2DatasetSizes(b *testing.B) {
	benchExperiment(b, "T2", "block_coverage", "demand_coverage")
}

func BenchmarkFigure1NetinfoPrevalence(b *testing.B) {
	benchExperiment(b, "F1", "dec2016_share", "google_share")
}

func BenchmarkFigure2RatioCDF(b *testing.B) {
	benchExperiment(b, "F2", "v4_count_high", "v4_demand_high")
}

func BenchmarkFigure3ThresholdSweep(b *testing.B) {
	benchExperiment(b, "F3", "plateau_min_f1_A", "plateau_min_f1_B", "plateau_min_f1_C")
}

func BenchmarkTable3CarrierValidation(b *testing.B) {
	benchExperiment(b, "T3", "A_CIDR_precision", "A_CIDR_recall", "A_Demand_recall")
}

func BenchmarkTable4SubnetCensus(b *testing.B) {
	benchExperiment(b, "T4", "global_pct_active_v4", "global_pct_active_v6")
}

func BenchmarkTable5ASFiltering(b *testing.B) {
	benchExperiment(b, "T5", "tagged", "final")
}

func BenchmarkTable6ASCensus(b *testing.B) {
	benchExperiment(b, "T6", "ases_AS", "ases_EU")
}

func BenchmarkFigure4PerASDistributions(b *testing.B) {
	benchExperiment(b, "F4", "tiny_as_fraction")
}

func BenchmarkFigure5MixedCDF(b *testing.B) {
	benchExperiment(b, "F5", "median_gap")
}

func BenchmarkFigure6OperatorBreakdown(b *testing.B) {
	benchExperiment(b, "F6", "dedicated_zero_ratio_frac")
}

func BenchmarkFigure7RankedASDemand(b *testing.B) {
	benchExperiment(b, "F7", "top10_share")
}

func BenchmarkTable7TopASes(b *testing.B) {
	benchExperiment(b, "T7", "rank1_share", "top10_share")
}

func BenchmarkFigure8SubnetConcentration(b *testing.B) {
	benchExperiment(b, "F8", "top25_cell_share", "cell_blocks_993")
}

func BenchmarkFigure9ResolverSharing(b *testing.B) {
	benchExperiment(b, "F9", "shared_fraction", "median_shared_cell_fraction")
}

func BenchmarkFigure10PublicDNS(b *testing.B) {
	benchExperiment(b, "F10", "public_share_US1", "public_share_DZ1")
}

func BenchmarkTable8ContinentStats(b *testing.B) {
	benchExperiment(b, "T8", "global_cellfrac")
}

func BenchmarkFigure11CountryPDF(b *testing.B) {
	benchExperiment(b, "F11", "us_share", "top5_share")
}

func BenchmarkFigure12DemandScatter(b *testing.B) {
	benchExperiment(b, "F12", "cfd_US", "cfd_GH")
}

// BenchmarkExtensionEvolution reruns the temporal-evolution extension
// (X1, the paper's §8 future work).
func BenchmarkExtensionEvolution(b *testing.B) {
	benchExperiment(b, "X1", "mean_jaccard", "mean_top_overlap")
}

// BenchmarkExtensionCellMap rebuilds the publishable cellular-map artifact
// (X2) including CIDR aggregation and serialization.
func BenchmarkExtensionCellMap(b *testing.B) {
	benchExperiment(b, "X2", "published_prefixes", "blocks_per_prefix", "demand_coverage")
}

// BenchmarkEndToEndPipeline measures a complete run — world generation,
// both datasets, classification and every analysis — at a reduced scale.
func BenchmarkEndToEndPipeline(b *testing.B) {
	cfg := DefaultConfig()
	cfg.World.Scale = 0.002
	cfg.Beacon.TotalHits = 3_000_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineParallel compares the serial oracle path against the
// sharded path at every stage (world, BEACON, DEMAND, classify). Results
// are bit-identical by construction — the equivalence suite in
// internal/pipeline asserts it — so this measures pure scheduling cost.
func BenchmarkPipelineParallel(b *testing.B) {
	for _, bc := range []struct {
		name        string
		parallelism int
	}{
		{"serial", 1},
		{"gomaxprocs", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := DefaultConfig()
			cfg.World.Scale = 0.01
			cfg.Parallelism = bc.parallelism
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation benches: the design choices DESIGN.md calls out.

func benchGlobal(b *testing.B) *Result {
	b.Helper()
	env := benchSetup(b)
	r, err := env.Global()
	if err != nil {
		b.Fatal(err)
	}
	return r
}

// BenchmarkAblationASNOnly shows the precision collapse of AS-granularity
// identification on mixed networks (the paper's core argument for
// prefix-level identification).
func BenchmarkAblationASNOnly(b *testing.B) {
	r := benchGlobal(b)
	var res pipeline.ASNOnlyResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = pipeline.AblationASNOnly(r)
	}
	b.StopTimer()
	b.ReportMetric(res.PrefixLevel.Precision(), "prefix_precision")
	b.ReportMetric(res.ASNLevel.Precision(), "asn_precision")
	b.ReportMetric(res.ASNLevel.Recall(), "asn_recall")
}

// BenchmarkAblationThreshold replays classification at 0.1 / 0.5 / 0.9.
func BenchmarkAblationThreshold(b *testing.B) {
	r := benchGlobal(b)
	var res []pipeline.ThresholdResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pipeline.AblationThreshold(r, []float64{0.1, 0.5, 0.9})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	for _, tr := range res {
		switch tr.Threshold {
		case 0.1:
			b.ReportMetric(tr.ByDemand.F1(), "f1_at_0.1")
		case 0.5:
			b.ReportMetric(tr.ByDemand.F1(), "f1_at_0.5")
		case 0.9:
			b.ReportMetric(tr.ByDemand.F1(), "f1_at_0.9")
		}
	}
}

// BenchmarkAblationNoASFilters counts the straw-man false positives the
// three filter rules exist to remove.
func BenchmarkAblationNoASFilters(b *testing.B) {
	r := benchGlobal(b)
	var res pipeline.NoFilterResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res = pipeline.AblationNoASFilters(r)
	}
	b.StopTimer()
	b.ReportMetric(float64(res.FalseASes), "false_ases_tagged")
	b.ReportMetric(float64(res.SurvivingFalse), "false_ases_surviving")
}

// BenchmarkAblationNoSmoothing measures AS-set churn without the paper's
// 7-day demand smoothing.
func BenchmarkAblationNoSmoothing(b *testing.B) {
	r := benchGlobal(b)
	var res pipeline.SmoothingResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		res, err = pipeline.AblationNoSmoothing(r)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(res.Flipped), "flipped_ases")
	b.ReportMetric(float64(res.SmoothedASes), "smoothed_ases")
}
