// Evolution: the paper's §8 future work, run as an application — track how
// cellular address space shifts month over month (CGNAT pool reassignment,
// demand drift), and decide how often a published cellular map needs
// refreshing.
package main

import (
	"fmt"
	"log"

	"cellspot/internal/evolve"
	"cellspot/internal/world"
)

func main() {
	wcfg := world.DefaultConfig()
	wcfg.Scale = 0.004
	w, err := world.Generate(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := evolve.DefaultConfig()
	cfg.Months = 6
	cfg.Beacon.TotalHits = 6_000_000
	tl, err := evolve.Run(w, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Monthly snapshots of detected cellular space:")
	for _, s := range tl.Snapshots {
		fmt.Printf("  %s: %5d blocks, %8.1f DU cellular\n",
			s.Month, s.Detected.Len(), s.CellDU)
	}

	fmt.Printf("\nMonth-over-month churn at %.0f%% CGNAT reassignment:\n", cfg.ChurnRate*100)
	var worstJ, sumJ float64
	worstJ = 1
	churn := tl.Churn()
	for _, c := range churn {
		fmt.Printf("  %s -> %s: Jaccard %.3f (+%d / -%d blocks), top-100 overlap %.2f\n",
			c.From, c.To, c.Jaccard, c.Added, c.Removed, c.TopOverlap)
		sumJ += c.Jaccard
		if c.Jaccard < worstJ {
			worstJ = c.Jaccard
		}
	}
	mean := sumJ / float64(len(churn))

	fmt.Printf("\nMean similarity %.1f%%; worst month %.1f%%.\n", 100*mean, 100*worstJ)
	fmt.Println("Practical takeaway: a published cellular map stays >90% accurate for a")
	fmt.Println("month, and its heavy hitters barely move — monthly refreshes suffice,")
	fmt.Println("confirming the paper's intuition that the snapshot approach is durable.")
}
