// DNS study: reproduce the paper's resolver analysis (§6.3) — how mixed
// operators share recursive resolvers between cellular and fixed-line
// customers (Fig 9), and how heavily cellular clients outside the U.S.
// lean on public DNS services (Fig 10).
package main

import (
	"fmt"
	"log"

	"cellspot"
	"cellspot/internal/aschar"
	"cellspot/internal/dnsmap"
	"cellspot/internal/stats"
)

func main() {
	cfg := cellspot.DefaultConfig()
	cfg.World.Scale = 0.004
	result, err := cellspot.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Fig 9: cellular demand fraction per resolver in mixed cellular ASes.
	fracs := dnsmap.CellFractions(result.ResolverUsage, result.ResolverAS, result.MixedASSet())
	if len(fracs) == 0 {
		log.Fatal("no resolvers observed in mixed ASes")
	}
	sharing := dnsmap.ClassifySharing(fracs, 0.05, 0.80)
	total := float64(len(fracs))
	fmt.Printf("Resolvers in identified mixed cellular ASes: %d\n", len(fracs))
	fmt.Printf("  shared between cellular and fixed clients: %.1f%%  (paper: ~60%%)\n",
		100*float64(sharing.Shared)/total)
	fmt.Printf("  cellular-dominated: %.1f%%   fixed-only: %.1f%%  (paper: ~20%% each)\n",
		100*float64(sharing.CellOnly)/total, 100*float64(sharing.FixedOnly)/total)

	var shared []float64
	for _, f := range fracs {
		if f >= 0.05 && f <= 0.80 {
			shared = append(shared, f)
		}
	}
	if len(shared) > 0 {
		med := stats.NewECDF(shared).Quantile(0.5)
		fmt.Printf("  median shared resolver: %.0f%% cellular demand (paper: ~25%%)\n\n", 100*med)
	}

	// Fig 10: public DNS usage for the paper's selected operators.
	fmt.Println("Public DNS usage by cellular clients (paper Fig 10):")
	for _, cc := range []string{"US", "IN", "HK", "NG", "DZ"} {
		n := topOperator(result, cc)
		if n == nil {
			continue
		}
		pu := result.PublicDNS[n.ASN]
		if pu == nil {
			continue
		}
		fmt.Printf("  %s: %.1f%% public (Google %.1f%% / OpenDNS %.1f%% / Level3 %.1f%%)\n",
			cc, 100*pu.PublicShare(),
			100*pu.ProviderShare("GoogleDNS"),
			100*pu.ProviderShare("OpenDNS"),
			100*pu.ProviderShare("Level3"))
	}
	fmt.Println("\nOutside the U.S., cellular operators themselves forward to public DNS —")
	fmt.Println("which breaks DNS-based client mapping assumptions (paper, Finding 5).")
}

// topOperator returns the country's largest identified cellular AS.
func topOperator(result *cellspot.Result, cc string) *aschar.Network {
	var best *aschar.Network
	for i := range result.Networks {
		n := &result.Networks[i]
		got, ok := result.CountryOf(n.ASN)
		if !ok || got != cc {
			continue
		}
		if best == nil || n.CellDU > best.CellDU {
			best = n
		}
	}
	return best
}
