// Quickstart: generate a small synthetic Internet, run the full Cell
// Spotting measurement pipeline on it, and print the paper's headline
// findings.
package main

import (
	"fmt"
	"log"

	"cellspot"
)

func main() {
	cfg := cellspot.DefaultConfig()
	cfg.World.Scale = 0.004 // 0.4% of the paper's block counts: a few seconds
	cfg.World.Seed = 42

	result, err := cellspot.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Synthetic world: %d blocks across %d ASes\n",
		len(result.World.Blocks), result.World.Registry.Len())
	fmt.Printf("BEACON: %d blocks observed, %d beacon hits\n",
		result.Beacon.Blocks(), result.Beacon.Totals().Hits)
	fmt.Printf("Detected cellular blocks: %d\n\n", result.Detected.Len())

	fmt.Printf("Cellular share of global demand: %.1f%%  (paper: 16.2%%)\n",
		100*result.Macro.GlobalCellFrac())
	fmt.Printf("Identified cellular ASes:        %d  (paper: 668)\n",
		len(result.Networks))

	mixed := 0
	for _, n := range result.Networks {
		if !n.Dedicated {
			mixed++
		}
	}
	fmt.Printf("Mixed cellular ASes:             %.1f%%  (paper: 58.6%%)\n",
		100*float64(mixed)/float64(len(result.Networks)))

	// The most and least cellular countries (Fig 12's frontier).
	fmt.Println("\nCellular fraction of demand by country (Fig 12 frontier):")
	for _, cc := range []string{"GH", "LA", "ID", "US", "FR"} {
		cs := result.Macro.ByCountry[cc]
		if cs == nil {
			continue
		}
		fmt.Printf("  %s (%s): %.1f%%\n", cc, cs.Country.Name, 100*cs.CellFrac())
	}
}
