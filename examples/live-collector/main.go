// Live collector: the end-to-end BEACON path over real HTTP. The example
// starts the RUM collector on a loopback listener, streams synthetic beacon
// records to it in NDJSON batches (the beaconsim client), then classifies
// subnets from the collector's live aggregate and scores the result against
// the world's ground truth — browser → collector → aggregation → classifier,
// exactly the paper's collection architecture.
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/netaddr"
	"cellspot/internal/rum"
	"cellspot/internal/world"
)

func main() {
	// A small world keeps the record-level stream quick. Noise networks
	// (strays, proxies) do not scale with the world, so trim them too —
	// otherwise they would dominate a 0.05%-scale Internet.
	wcfg := world.DefaultConfig()
	wcfg.Scale = 0.0005
	wcfg.StrayASes, wcfg.IoTASes, wcfg.ProxyASes = 20, 3, 3
	w, err := world.Generate(wcfg)
	if err != nil {
		log.Fatal(err)
	}

	// Collector on an ephemeral loopback port.
	col := rum.NewCollector()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: col.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Shutdown(context.Background())
	base := "http://" + ln.Addr().String()
	fmt.Printf("collector listening on %s\n", base)

	// Stream beacons over the wire.
	bcfg := beacon.DefaultGenConfig()
	bcfg.TotalHits = 120_000
	bcfg.BaseHits = 10
	seq, err := beacon.Stream(w, bcfg)
	if err != nil {
		log.Fatal(err)
	}
	cl := &rum.Client{BaseURL: base, BatchSize: 1000}
	batch := make([]beacon.Record, 0, 1000)
	start := time.Now()
	for rec := range seq {
		batch = append(batch, rec)
		if len(batch) == cap(batch) {
			if err := cl.Post(context.Background(), batch); err != nil {
				log.Fatal(err)
			}
			batch = batch[:0]
		}
	}
	if err := cl.Post(context.Background(), batch); err != nil {
		log.Fatal(err)
	}
	st, err := cl.FetchStats(context.Background())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("posted %d records over HTTP in %v (%d blocks aggregated)\n",
		st.Received, time.Since(start).Round(time.Millisecond), st.Blocks)

	// Classify straight from the collector's live aggregate.
	cls, err := classify.New(classify.DefaultThreshold)
	if err != nil {
		log.Fatal(err)
	}
	detected := cls.Classify(col.Snapshot())

	// Score against ground truth over web-active blocks (the blocks the
	// collector could possibly see).
	truth := map[netaddr.Block]bool{}
	for _, bi := range w.Blocks {
		if bi.WebActive {
			truth[bi.Block] = bi.Cellular
		}
	}
	m := classify.Evaluate(detected, truth, nil)
	fmt.Printf("detected %d cellular blocks; precision %.3f, recall %.3f over web-active blocks\n",
		detected.Len(), m.Precision(), m.Recall())
}
