// Carrier audit: validate the cellular-subnet classifier against a
// carrier's ground-truth prefix labels the way the paper does in §4.2 —
// the workflow a network operator would run to audit the method on their
// own address plan.
//
// The example uses the paper-scale three-carrier case-study world, scores
// each carrier by CIDR count and by demand, and sweeps the threshold to
// show the stability plateau of Fig 3.
package main

import (
	"fmt"
	"log"
	"os"

	"cellspot"
	"cellspot/internal/classify"
	"cellspot/internal/report"
	"cellspot/internal/world"
)

func main() {
	result, err := cellspot.RunCaseStudy(cellspot.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	carriers := []struct {
		name string
		op   *world.Operator
	}{
		{"Carrier A — large mixed European provider", result.World.CarrierA},
		{"Carrier B — large dedicated U.S. MNO", result.World.CarrierB},
		{"Carrier C — large mixed Middle-East MNO", result.World.CarrierC},
	}

	t := report.NewTable("Classifier validation at threshold 0.5 (paper Table 3)",
		"Carrier", "Mode", "TP", "FP", "TN", "FN", "Precision", "Recall", "F1")
	for _, c := range carriers {
		truth := result.World.CarrierTruth(c.op, false)
		for _, mode := range []string{"CIDR", "Demand"} {
			var m classify.Confusion
			prec := 0
			if mode == "CIDR" {
				m = classify.Evaluate(result.Detected, truth, nil)
			} else {
				m = classify.Evaluate(result.Detected, truth, result.Demand.DU)
				prec = 2
			}
			t.Row(c.name, mode,
				report.F(m.TP, prec), report.F(m.FP, prec),
				report.F(m.TN, prec), report.F(m.FN, prec),
				report.F(m.Precision(), 2), report.F(m.Recall(), 2), report.F(m.F1(), 2))
		}
	}
	if err := t.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Threshold sweep for Carrier A: the F1 plateau that justifies the
	// paper's conservative 0.5 operating point.
	truth := result.World.CarrierTruth(result.World.CarrierA, false)
	pts, err := classify.Sweep(result.Beacon, truth, result.Demand.DU,
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.96, 1.0})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Carrier A demand-weighted F1 across thresholds (Fig 3):")
	for _, p := range pts {
		fmt.Printf("  threshold %.2f -> F1 %.3f\n", p.Threshold, p.ByDemand.F1())
	}
	// Auto-calibration: the paper picked 0.5 after this exact exercise.
	best, err := classify.Calibrate(result.Beacon, truth, result.Demand.DU,
		classify.ThresholdRange(50), true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAuto-calibrated threshold for Carrier A: %.2f (demand F1 %.3f) — the\n",
		best.Threshold, best.ByDemand.F1())
	fmt.Println("plateau is so wide that the paper's conservative 0.5 loses nothing.")

	fmt.Println("\nThe method is precise everywhere; CIDR recall is low on mixed")
	fmt.Println("carriers because low-activity cellular blocks never emit beacons —")
	fmt.Println("exactly the lower-bound behaviour the paper reports.")
}
