// Mixed-network analysis: dissect one large mixed operator the way the
// paper's §6 does — subnet allocation vs demand across cellular ratios
// (Fig 6b) and the CGNAT demand concentration (Fig 8) that lets a CDN
// cover most cellular traffic with a handful of /24 targets.
package main

import (
	"fmt"
	"log"

	"cellspot"
	"cellspot/internal/aschar"
	"cellspot/internal/netaddr"
	"cellspot/internal/stats"
)

func main() {
	result, err := cellspot.RunCaseStudy(cellspot.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	op := result.World.CarrierA
	fmt.Printf("Operator: %s (AS%d, %s)\n\n", op.AS.Name, op.AS.Number, op.Country.Name)

	// Per-block view over the operator's announced space.
	announced := make([]netaddr.Block, 0, len(op.Blocks))
	for _, b := range op.Blocks {
		announced = append(announced, b.Block)
	}
	views := aschar.OperatorBlocks(announced, aschar.Inputs{
		Detected: result.Detected,
		Beacon:   result.Beacon,
		Demand:   result.Demand,
		ASOf:     result.ASOf,
	})

	var cellDU, fixedDU []float64
	var totalDU, cellTotal float64
	highRatio := 0
	for _, v := range views {
		totalDU += v.DU
		if v.Cell {
			cellDU = append(cellDU, v.DU)
			cellTotal += v.DU
		} else if v.DU > 0 {
			fixedDU = append(fixedDU, v.DU)
		}
		if v.Ratio > 0.2 {
			highRatio++
		}
	}
	fmt.Printf("Announced blocks: %d;  blocks with ratio > 0.2: %.1f%% (paper: <2%%)\n",
		len(views), 100*float64(highRatio)/float64(len(views)))
	fmt.Printf("Cellular share of the operator's demand: %.1f%% (paper: 4.9%% for its mixed EU operator)\n\n",
		100*cellTotal/totalDU)

	// Fig 8: concentration of cellular demand.
	top25 := stats.TopShare(cellDU, 25)
	n99 := stats.MinCountForShare(cellDU, 0.993)
	nFixed99 := stats.MinCountForShare(fixedDU, 0.993)
	fmt.Printf("Top 25 cellular /24s carry %.1f%% of cellular demand (paper: 99.3%%)\n", 100*top25)
	fmt.Printf("99.3%% of cellular demand sits in %d /24s; fixed-line needs %d /24s for the same share\n",
		n99, nFixed99)

	// The measurement implication the paper draws: a tiny probe-target
	// list covers almost all cellular traffic.
	ranked := stats.RankShare(cellDU)
	fmt.Println("\nRanked cellular /24 demand shares (first 8 ranks):")
	for i := 0; i < 8 && i < len(ranked); i++ {
		fmt.Printf("  #%d: %.2f%%\n", i+1, 100*ranked[i].Y)
	}
	fmt.Println("\nCellular demand is CGNAT-concentrated: representative measurements of")
	fmt.Println("this network need only a few dozen target addresses (paper, Finding 3).")
}
