// Package cellspot is a full reproduction of "Cell Spotting: Studying the
// Role of Cellular Networks in the Internet" (Rula, Bustamante, Steiner —
// IMC 2017) as a self-contained Go library.
//
// The paper identifies cellular subnets from the Network Information API
// signal in CDN Real-User-Monitoring beacons, lifts subnet labels to
// autonomous systems with a three-rule filter, and characterizes global
// cellular usage. All of the paper's inputs are proprietary, so this
// library ships the substrate that produces equivalent data: a
// deterministic synthetic Internet (countries, operators, address plans,
// CGNAT concentration, DNS deployments), beacon and request-log generators,
// and an HTTP beacon-collection path — plus the full measurement pipeline
// and one experiment per table and figure in the paper.
//
// # Quick start
//
//	cfg := cellspot.DefaultConfig()
//	cfg.World.Scale = 0.005 // fraction of the paper's block counts
//	result, err := cellspot.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("cellular share of demand: %.1f%%\n",
//		100*result.Macro.GlobalCellFrac()) // paper: 16.2%
//
// Individual tables and figures reproduce through the experiment runner:
//
//	env := cellspot.NewEnv(cfg)
//	out, err := cellspot.RunExperiment("T8", env)
//	fmt.Println(out.Text)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for measured
// vs published values.
package cellspot
