package netaddr

import (
	"fmt"
	"net/netip"
)

// Trie is a binary radix trie mapping CIDR prefixes to values, supporting
// longest-prefix match. It is used to resolve addresses and blocks against
// ground-truth allocation lists (carrier prefix inventories, AS address
// plans), which may be coarser than the /24 and /48 aggregation granularity.
//
// IPv4 and IPv6 prefixes live in the same trie: IPv4 addresses are mapped
// into the IPv4-mapped IPv6 space (::ffff:0:0/96), so an IPv4 /24 is stored
// at depth 120. The zero value is an empty trie ready for use. Trie is not
// safe for concurrent mutation; concurrent lookups are safe once populated.
type Trie[V any] struct {
	root *trieNode[V]
	size int
}

type trieNode[V any] struct {
	child [2]*trieNode[V]
	val   V
	set   bool
}

// MappedPrefix returns the prefix's address as a 16-byte array in the
// unified IPv4-mapped-IPv6 space and its depth in that space (the prefix
// length, offset by 96 for IPv4). It is the single definition of the
// unified space shared by the Trie and by the flat matcher in internal/lpm,
// so the two structures cannot disagree about where a prefix lives.
func MappedPrefix(p netip.Prefix) (addr [16]byte, depth int, err error) {
	if !p.IsValid() {
		return addr, 0, fmt.Errorf("netaddr: invalid prefix")
	}
	a := p.Addr()
	if a.Is4() {
		a = netip.AddrFrom16(a.As16()) // IPv4-mapped form
		depth = 96 + p.Bits()
	} else {
		depth = p.Bits()
	}
	return a.As16(), depth, nil
}

func bitAt(addr [16]byte, i int) int {
	return int(addr[i/8]>>(7-i%8)) & 1
}

// Insert stores val at prefix p, replacing any existing value at exactly p.
func (t *Trie[V]) Insert(p netip.Prefix, val V) error {
	addr, depth, err := MappedPrefix(p.Masked())
	if err != nil {
		return err
	}
	if t.root == nil {
		t.root = &trieNode[V]{}
	}
	n := t.root
	for i := 0; i < depth; i++ {
		b := bitAt(addr, i)
		if n.child[b] == nil {
			n.child[b] = &trieNode[V]{}
		}
		n = n.child[b]
	}
	if !n.set {
		t.size++
	}
	n.val, n.set = val, true
	return nil
}

// Lookup returns the value of the longest prefix containing addr.
func (t *Trie[V]) Lookup(addr netip.Addr) (val V, ok bool) {
	if t.root == nil {
		return val, false
	}
	a := addr
	if a.Is4() {
		a = netip.AddrFrom16(a.As16())
	}
	bits := a.As16()
	n := t.root
	for i := 0; ; i++ {
		if n.set {
			val, ok = n.val, true
		}
		if i >= 128 {
			break
		}
		n = n.child[bitAt(bits, i)]
		if n == nil {
			break
		}
	}
	return val, ok
}

// LookupBlock returns the value of the longest prefix containing the whole
// block (matched by its first address; blocks never straddle coarser
// allocations in the synthetic world, and real allocations are CIDR-aligned).
func (t *Trie[V]) LookupBlock(b Block) (V, bool) {
	return t.Lookup(b.Addr())
}

// Get returns the value stored at exactly prefix p.
func (t *Trie[V]) Get(p netip.Prefix) (val V, ok bool) {
	addr, depth, err := MappedPrefix(p.Masked())
	if err != nil || t.root == nil {
		return val, false
	}
	n := t.root
	for i := 0; i < depth; i++ {
		n = n.child[bitAt(addr, i)]
		if n == nil {
			return val, false
		}
	}
	return n.val, n.set
}

// Len returns the number of prefixes stored.
func (t *Trie[V]) Len() int { return t.size }

// Walk visits every stored prefix/value pair in no particular order. The
// callback returns false to stop early. Prefix reconstruction reverses the
// IPv4 mapping so callers see the prefixes they inserted.
func (t *Trie[V]) Walk(fn func(p netip.Prefix, val V) bool) {
	if t.root == nil {
		return
	}
	var addr [16]byte
	walkTrie(t.root, addr, 0, fn)
}

func walkTrie[V any](n *trieNode[V], addr [16]byte, depth int, fn func(netip.Prefix, V) bool) bool {
	if n.set {
		p := prefixFromBits(addr, depth)
		if !fn(p, n.val) {
			return false
		}
	}
	for b := 0; b < 2; b++ {
		c := n.child[b]
		if c == nil {
			continue
		}
		next := addr
		if b == 1 {
			next[depth/8] |= 1 << (7 - depth%8)
		}
		if !walkTrie(c, next, depth+1, fn) {
			return false
		}
	}
	return true
}

func prefixFromBits(addr [16]byte, depth int) netip.Prefix {
	a := netip.AddrFrom16(addr)
	if depth >= 96 {
		if v4 := a.Unmap(); v4.Is4() {
			return netip.PrefixFrom(v4, depth-96)
		}
	}
	return netip.PrefixFrom(a, depth)
}
