package netaddr

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestAggregateBlocksBasic(t *testing.T) {
	blocks := []Block{
		V4Block(10, 0, 0), V4Block(10, 0, 1), // -> 10.0.0.0/23
		V4Block(10, 0, 4),                                // lone /24
		V4Block(10, 0, 0),                                // duplicate
		V6Block(0x20010db80000), V6Block(0x20010db80001), // -> /47
	}
	got := AggregateBlocks(blocks)
	want := map[string]bool{
		"10.0.0.0/23":   true,
		"10.0.4.0/24":   true,
		"2001:db8::/47": true,
	}
	if len(got) != len(want) {
		t.Fatalf("aggregated = %v", got)
	}
	for _, p := range got {
		if !want[p.String()] {
			t.Errorf("unexpected prefix %s", p)
		}
	}
}

func TestAggregateBlocksFullSupernets(t *testing.T) {
	// 256 consecutive aligned /24s collapse into one /16.
	var blocks []Block
	for i := 0; i < 256; i++ {
		blocks = append(blocks, V4Block(172, 16, byte(i)))
	}
	got := AggregateBlocks(blocks)
	if len(got) != 1 || got[0].String() != "172.16.0.0/16" {
		t.Fatalf("aggregated = %v", got)
	}
}

func TestAggregateBlocksUnalignedPair(t *testing.T) {
	// .1 and .2 are adjacent but misaligned: they must not merge.
	got := AggregateBlocks([]Block{V4Block(10, 0, 1), V4Block(10, 0, 2)})
	if len(got) != 2 {
		t.Fatalf("misaligned pair merged: %v", got)
	}
}

func TestAggregateBlocksEmpty(t *testing.T) {
	if got := AggregateBlocks(nil); got != nil {
		t.Errorf("empty input = %v", got)
	}
}

func TestExpandPrefix(t *testing.T) {
	blocks, ok := ExpandPrefix(netip.MustParsePrefix("192.168.0.0/22"))
	if !ok || len(blocks) != 4 {
		t.Fatalf("expand /22 = %v,%v", blocks, ok)
	}
	if blocks[0] != V4Block(192, 168, 0) || blocks[3] != V4Block(192, 168, 3) {
		t.Errorf("expansion wrong: %v", blocks)
	}
	if _, ok := ExpandPrefix(netip.MustParsePrefix("10.0.0.0/25")); ok {
		t.Error("longer-than-unit prefix accepted")
	}
	if _, ok := ExpandPrefix(netip.MustParsePrefix("10.0.0.0/2")); ok {
		t.Error("absurdly short prefix accepted")
	}
	v6, ok := ExpandPrefix(netip.MustParsePrefix("2001:db8::/47"))
	if !ok || len(v6) != 2 || !v6[0].IsV6() {
		t.Fatalf("expand v6 = %v,%v", v6, ok)
	}
}

// Property: aggregation round-trips — expanding the aggregate reproduces
// exactly the deduplicated input block set.
func TestAggregateRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := int(nRaw%64) + 1
		in := make(Set)
		for i := 0; i < n; i++ {
			// Cluster keys so merges actually happen.
			in.Add(Block{Fam: IPv4, Key: 0x0a0000 + uint64(rng.IntN(48))})
		}
		var blocks []Block
		for b := range in {
			blocks = append(blocks, b)
		}
		prefixes := AggregateBlocks(blocks)
		out := make(Set)
		for _, p := range prefixes {
			expanded, ok := ExpandPrefix(p)
			if !ok {
				return false
			}
			for _, b := range expanded {
				if out.Has(b) {
					return false // overlapping prefixes
				}
				out.Add(b)
			}
		}
		if out.Len() != in.Len() {
			return false
		}
		for b := range in {
			if !out.Has(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the aggregate is minimal enough to never exceed the input size.
func TestAggregateNeverGrowsProperty(t *testing.T) {
	f := func(keys []uint16) bool {
		seen := make(Set)
		var blocks []Block
		for _, k := range keys {
			b := Block{Fam: IPv4, Key: uint64(k)}
			if !seen.Has(b) {
				seen.Add(b)
				blocks = append(blocks, b)
			}
		}
		return len(AggregateBlocks(blocks)) <= len(blocks)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkAggregateBlocks(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 5))
	blocks := make([]Block, 10000)
	for i := range blocks {
		blocks[i] = Block{Fam: IPv4, Key: uint64(rng.IntN(40000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		AggregateBlocks(blocks)
	}
}
