package netaddr

import "testing"

// FuzzParseBlock checks that arbitrary input never panics and that every
// accepted block round-trips through String.
func FuzzParseBlock(f *testing.F) {
	for _, seed := range []string{
		"10.0.0.0/24", "2001:db8::/48", "not a prefix", "10.0.0.1/24",
		"10.0.0.0/16", "::/48", "255.255.255.0/24", "10.0.0.0/240",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseBlock(s)
		if err != nil {
			return
		}
		again, err := ParseBlock(b.String())
		if err != nil {
			t.Fatalf("accepted %q -> %v but re-parse failed: %v", s, b, err)
		}
		if again != b {
			t.Fatalf("round trip %q: %v != %v", s, b, again)
		}
	})
}

// FuzzParseIndex checks the compact index token parser.
func FuzzParseIndex(f *testing.F) {
	for _, seed := range []string{"v4-abc", "v6-ffff", "v5-0", "", "v4-", "v4-ffffffffffffffff"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		b, err := ParseIndex(s)
		if err != nil {
			return
		}
		if got, err := ParseIndex(FormatIndex(b)); err != nil || got != b {
			t.Fatalf("round trip %q: %v vs %v (%v)", s, b, got, err)
		}
	})
}
