package netaddr

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestBlockFromAddrV4(t *testing.T) {
	b := BlockFromAddr(netip.MustParseAddr("192.0.2.77"))
	if got, want := b.String(), "192.0.2.0/24"; got != want {
		t.Errorf("block = %s, want %s", got, want)
	}
	if b.Fam != IPv4 || b.IsV6() {
		t.Errorf("family = %v, want IPv4", b.Fam)
	}
	if b.Bits() != 24 {
		t.Errorf("bits = %d, want 24", b.Bits())
	}
}

func TestBlockFromAddrV6(t *testing.T) {
	b := BlockFromAddr(netip.MustParseAddr("2001:db8:99:1::5"))
	if got, want := b.String(), "2001:db8:99::/48"; got != want {
		t.Errorf("block = %s, want %s", got, want)
	}
	if !b.IsV6() || b.Bits() != 48 {
		t.Errorf("family/bits wrong: %v/%d", b.Fam, b.Bits())
	}
}

func TestBlockFromAddrUnmapsV4InV6(t *testing.T) {
	mapped := netip.MustParseAddr("::ffff:198.51.100.9")
	if got, want := BlockFromAddr(mapped), V4Block(198, 51, 100); got != want {
		t.Errorf("mapped v4 block = %v, want %v", got, want)
	}
}

func TestParseBlockRoundTrip(t *testing.T) {
	for _, s := range []string{"10.0.0.0/24", "203.0.113.0/24", "2001:db8::/48", "2607:f8b0:1234::/48"} {
		b, err := ParseBlock(s)
		if err != nil {
			t.Fatalf("ParseBlock(%q): %v", s, err)
		}
		if b.String() != s {
			t.Errorf("round trip %q -> %q", s, b.String())
		}
	}
}

func TestParseBlockRejects(t *testing.T) {
	for _, s := range []string{
		"10.0.0.0/16",    // wrong v4 length
		"10.0.0.1/24",    // host bits set
		"2001:db8::/64",  // wrong v6 length
		"2001:db8::1/48", // host bits set
		"not-a-prefix",   // garbage
		"10.0.0.0",       // bare address
		"300.0.0.0/24",   // invalid octet
	} {
		if _, err := ParseBlock(s); err == nil {
			t.Errorf("ParseBlock(%q) succeeded, want error", s)
		}
	}
}

func TestBlockHostAddr(t *testing.T) {
	b := V4Block(192, 0, 2)
	if got, want := b.HostAddr(7), netip.MustParseAddr("192.0.2.7"); got != want {
		t.Errorf("HostAddr(7) = %v, want %v", got, want)
	}
	if !b.Contains(b.HostAddr(255)) {
		t.Error("block does not contain its own host address")
	}
	v6 := MustParseBlock("2001:db8:42::/48")
	a := v6.HostAddr(0x1234)
	if !v6.Contains(a) {
		t.Errorf("v6 block does not contain host addr %v", a)
	}
}

func TestBlockNextAndRange(t *testing.T) {
	b := V4Block(10, 0, 255)
	if got, want := b.Next(), V4Block(10, 1, 0); got != want {
		t.Errorf("Next = %v, want %v", got, want)
	}
	r := V4Block(10, 0, 0).Range(3)
	if len(r) != 3 || r[2] != V4Block(10, 0, 2) {
		t.Errorf("Range(3) = %v", r)
	}
	// wrap at end of family space
	last := Block{Fam: IPv4, Key: 1<<24 - 1}
	if got := last.Next(); got.Key != 0 {
		t.Errorf("wrap Next = %v", got)
	}
}

func TestSet(t *testing.T) {
	s := NewSet(V4Block(1, 2, 3), V6Block(0x20010db80001))
	if !s.Has(V4Block(1, 2, 3)) || s.Has(V4Block(1, 2, 4)) {
		t.Error("Has misbehaves")
	}
	s.Add(V4Block(1, 2, 4))
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if s.CountFamily(IPv4) != 2 || s.CountFamily(IPv6) != 1 {
		t.Errorf("CountFamily = %d/%d", s.CountFamily(IPv4), s.CountFamily(IPv6))
	}
}

func TestFormatParseIndex(t *testing.T) {
	for _, b := range []Block{V4Block(1, 2, 3), V6Block(0x20010db800ff), {Fam: IPv4, Key: 0}} {
		got, err := ParseIndex(FormatIndex(b))
		if err != nil {
			t.Fatalf("ParseIndex(%q): %v", FormatIndex(b), err)
		}
		if got != b {
			t.Errorf("round trip %v -> %v", b, got)
		}
	}
	for _, s := range []string{"", "v4", "v5-12", "v4-zz", "v4-ffffffff", "v6-ffffffffffffffff"} {
		if _, err := ParseIndex(s); err == nil {
			t.Errorf("ParseIndex(%q) succeeded, want error", s)
		}
	}
}

// Property: Block -> Addr -> Block is the identity for both families.
func TestBlockAddrRoundTripProperty(t *testing.T) {
	f := func(key uint64, v6 bool) bool {
		var b Block
		if v6 {
			b = V6Block(key)
		} else {
			b = Block{Fam: IPv4, Key: key & (1<<24 - 1)}
		}
		return BlockFromAddr(b.Addr()) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: FormatIndex/ParseIndex round-trips for arbitrary in-range keys.
func TestIndexRoundTripProperty(t *testing.T) {
	f := func(key uint64, v6 bool) bool {
		var b Block
		if v6 {
			b = V6Block(key)
		} else {
			b = Block{Fam: IPv4, Key: key & (1<<24 - 1)}
		}
		got, err := ParseIndex(FormatIndex(b))
		return err == nil && got == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: every host address generated from a block maps back to it.
func TestHostAddrContainedProperty(t *testing.T) {
	f := func(key, host uint64, v6 bool) bool {
		var b Block
		if v6 {
			b = V6Block(key)
		} else {
			b = Block{Fam: IPv4, Key: key & (1<<24 - 1)}
		}
		return BlockFromAddr(b.HostAddr(host)) == b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randV4Prefix(rng *rand.Rand) netip.Prefix {
	bits := 8 + rng.IntN(17) // /8../24
	a := netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32())})
	return netip.PrefixFrom(a, bits).Masked()
}

func TestTrieLongestMatch(t *testing.T) {
	var tr Trie[string]
	ins := map[string]string{
		"10.0.0.0/8":      "coarse",
		"10.1.0.0/16":     "mid",
		"10.1.2.0/24":     "fine",
		"2001:db8::/32":   "v6-coarse",
		"2001:db8:7::/48": "v6-fine",
	}
	for p, v := range ins {
		if err := tr.Insert(netip.MustParsePrefix(p), v); err != nil {
			t.Fatalf("Insert(%s): %v", p, err)
		}
	}
	if tr.Len() != len(ins) {
		t.Fatalf("Len = %d, want %d", tr.Len(), len(ins))
	}
	cases := []struct {
		addr string
		want string
		ok   bool
	}{
		{"10.1.2.3", "fine", true},
		{"10.1.9.9", "mid", true},
		{"10.200.0.1", "coarse", true},
		{"11.0.0.1", "", false},
		{"2001:db8:7::1", "v6-fine", true},
		{"2001:db8:8::1", "v6-coarse", true},
		{"2001:db9::1", "", false},
	}
	for _, c := range cases {
		got, ok := tr.Lookup(netip.MustParseAddr(c.addr))
		if ok != c.ok || got != c.want {
			t.Errorf("Lookup(%s) = %q,%v, want %q,%v", c.addr, got, ok, c.want, c.ok)
		}
	}
}

func TestTrieGetExact(t *testing.T) {
	var tr Trie[int]
	p := netip.MustParsePrefix("192.168.0.0/16")
	if err := tr.Insert(p, 42); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get(p); !ok || v != 42 {
		t.Errorf("Get = %d,%v", v, ok)
	}
	if _, ok := tr.Get(netip.MustParsePrefix("192.168.0.0/17")); ok {
		t.Error("Get found a prefix that was never inserted")
	}
	// replacement does not grow size
	if err := tr.Insert(p, 43); err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
	if v, _ := tr.Get(p); v != 43 {
		t.Errorf("Get after replace = %d, want 43", v)
	}
}

func TestTrieLookupBlock(t *testing.T) {
	var tr Trie[string]
	if err := tr.Insert(netip.MustParsePrefix("198.51.0.0/16"), "carrier"); err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.LookupBlock(V4Block(198, 51, 100)); !ok || v != "carrier" {
		t.Errorf("LookupBlock = %q,%v", v, ok)
	}
	if _, ok := tr.LookupBlock(V4Block(198, 52, 0)); ok {
		t.Error("LookupBlock matched outside prefix")
	}
}

func TestTrieWalkRecoversInsertedPrefixes(t *testing.T) {
	var tr Trie[int]
	rng := rand.New(rand.NewPCG(1, 2))
	want := map[netip.Prefix]int{}
	for i := 0; i < 200; i++ {
		p := randV4Prefix(rng)
		want[p] = i
		if err := tr.Insert(p, i); err != nil {
			t.Fatal(err)
		}
	}
	got := map[netip.Prefix]int{}
	tr.Walk(func(p netip.Prefix, v int) bool {
		got[p] = v
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("walk returned %d prefixes, want %d", len(got), len(want))
	}
	for p, v := range want {
		if got[p] != v {
			t.Errorf("walk[%s] = %d, want %d", p, got[p], v)
		}
	}
}

func TestTrieWalkEarlyStop(t *testing.T) {
	var tr Trie[int]
	for i := 0; i < 10; i++ {
		tr.Insert(netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(i), 0, 0, 0}), 8), i)
	}
	n := 0
	tr.Walk(func(netip.Prefix, int) bool { n++; return n < 3 })
	if n != 3 {
		t.Errorf("walk visited %d, want 3", n)
	}
}

// Property: trie longest-match agrees with a naive linear scan.
func TestTrieMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	for round := 0; round < 20; round++ {
		var tr Trie[int]
		prefixes := make([]netip.Prefix, 0, 50)
		for i := 0; i < 50; i++ {
			p := randV4Prefix(rng)
			prefixes = append(prefixes, p)
			tr.Insert(p, i)
		}
		for probe := 0; probe < 100; probe++ {
			addr := netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32())})
			bestBits, bestIdx, bestOK := -1, -1, false
			for i, p := range prefixes {
				if p.Contains(addr) && p.Bits() > bestBits {
					bestBits, bestIdx, bestOK = p.Bits(), i, true
				}
			}
			// Later duplicates overwrite earlier ones in the trie; mimic that.
			if bestOK {
				for i := len(prefixes) - 1; i >= 0; i-- {
					if prefixes[i] == prefixes[bestIdx] {
						bestIdx = i
						break
					}
				}
			}
			got, ok := tr.Lookup(addr)
			if ok != bestOK || (ok && got != bestIdx) {
				t.Fatalf("round %d: Lookup(%v) = %d,%v, naive = %d,%v", round, addr, got, ok, bestIdx, bestOK)
			}
		}
	}
}

func TestTrieEmpty(t *testing.T) {
	var tr Trie[int]
	if _, ok := tr.Lookup(netip.MustParseAddr("1.2.3.4")); ok {
		t.Error("empty trie matched")
	}
	if _, ok := tr.Get(netip.MustParsePrefix("0.0.0.0/0")); ok {
		t.Error("empty trie Get matched")
	}
	tr.Walk(func(netip.Prefix, int) bool { t.Error("walk visited node in empty trie"); return false })
}

func BenchmarkTrieLookup(b *testing.B) {
	var tr Trie[int]
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 10000; i++ {
		tr.Insert(randV4Prefix(rng), i)
	}
	addrs := make([]netip.Addr, 1024)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32())})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Lookup(addrs[i%len(addrs)])
	}
}

func BenchmarkBlockFromAddr(b *testing.B) {
	a := netip.MustParseAddr("203.0.113.200")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		BlockFromAddr(a)
	}
}
