// Package netaddr provides the address-block vocabulary used throughout the
// cellspot reproduction: IPv4 /24 blocks and IPv6 /48 blocks — the two
// aggregation granularities the paper uses for all subnet-level analysis —
// plus CIDR prefix tries for longest-prefix matching against ground-truth
// allocation lists.
//
// The paper aggregates every measurement by /24 (IPv4) or /48 (IPv6) because
// recent studies find those to be the smallest allocation units that are
// homogeneous with respect to access technology. Block is the comparable map
// key for one such aggregate.
package netaddr

import (
	"fmt"
	"net/netip"
	"sort"
	"strconv"
	"strings"
)

// Family identifies the IP family of a Block.
type Family uint8

const (
	// IPv4 marks a /24 IPv4 block.
	IPv4 Family = iota
	// IPv6 marks a /48 IPv6 block.
	IPv6
)

// String returns "v4" or "v6".
func (f Family) String() string {
	if f == IPv6 {
		return "v6"
	}
	return "v4"
}

// Block identifies one aggregation unit: a /24 for IPv4 or a /48 for IPv6.
// Blocks are comparable and intended for use as map keys.
//
// For IPv4 the key holds the top 24 address bits (addr >> 8); for IPv6 it
// holds the top 48 bits (first six bytes) of the address.
type Block struct {
	Fam Family
	Key uint64
}

// Less orders blocks canonically: IPv4 before IPv6, then by key. The order
// is used wherever floating-point sums must be reproducible run to run.
func (b Block) Less(o Block) bool {
	if b.Fam != o.Fam {
		return b.Fam < o.Fam
	}
	return b.Key < o.Key
}

// SortBlocks sorts blocks in place into canonical order.
func SortBlocks(blocks []Block) {
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Less(blocks[j]) })
}

// BlockFromAddr returns the enclosing /24 or /48 block of addr.
// IPv4-mapped IPv6 addresses are unmapped first.
func BlockFromAddr(addr netip.Addr) Block {
	addr = addr.Unmap()
	if addr.Is4() {
		b := addr.As4()
		return Block{Fam: IPv4, Key: uint64(b[0])<<16 | uint64(b[1])<<8 | uint64(b[2])}
	}
	b := addr.As16()
	var k uint64
	for i := 0; i < 6; i++ {
		k = k<<8 | uint64(b[i])
	}
	return Block{Fam: IPv6, Key: k}
}

// V4Block returns the /24 block with the given top-three octets.
func V4Block(a, b, c byte) Block {
	return Block{Fam: IPv4, Key: uint64(a)<<16 | uint64(b)<<8 | uint64(c)}
}

// V6Block returns the /48 block with the given top 48 bits.
func V6Block(top48 uint64) Block {
	return Block{Fam: IPv6, Key: top48 & (1<<48 - 1)}
}

// Addr returns the first address of the block (host bits zero).
func (b Block) Addr() netip.Addr {
	if b.Fam == IPv4 {
		return netip.AddrFrom4([4]byte{byte(b.Key >> 16), byte(b.Key >> 8), byte(b.Key)})
	}
	var a [16]byte
	for i := 0; i < 6; i++ {
		a[i] = byte(b.Key >> (8 * (5 - i)))
	}
	return netip.AddrFrom16(a)
}

// Prefix returns the block as a netip.Prefix (/24 or /48).
func (b Block) Prefix() netip.Prefix {
	if b.Fam == IPv4 {
		return netip.PrefixFrom(b.Addr(), 24)
	}
	return netip.PrefixFrom(b.Addr(), 48)
}

// Bits returns the prefix length of the block: 24 for IPv4, 48 for IPv6.
func (b Block) Bits() int {
	if b.Fam == IPv4 {
		return 24
	}
	return 48
}

// HostAddr returns the host'th address inside the block. For IPv4 blocks
// host is taken modulo 256; for IPv6 the host index is placed in the low
// 64 bits of the interface identifier.
func (b Block) HostAddr(host uint64) netip.Addr {
	if b.Fam == IPv4 {
		return netip.AddrFrom4([4]byte{byte(b.Key >> 16), byte(b.Key >> 8), byte(b.Key), byte(host)})
	}
	var a [16]byte
	for i := 0; i < 6; i++ {
		a[i] = byte(b.Key >> (8 * (5 - i)))
	}
	for i := 0; i < 8; i++ {
		a[15-i] = byte(host >> (8 * i))
	}
	return netip.AddrFrom16(a)
}

// IsV6 reports whether the block is an IPv6 /48.
func (b Block) IsV6() bool { return b.Fam == IPv6 }

// String formats the block in CIDR notation, e.g. "192.0.2.0/24" or
// "2001:db8:1::/48".
func (b Block) String() string { return b.Prefix().String() }

// ParseBlock parses a /24 or /48 block from CIDR notation. The prefix length
// must be exactly 24 (IPv4) or 48 (IPv6) and host bits must be zero.
func ParseBlock(s string) (Block, error) {
	p, err := netip.ParsePrefix(s)
	if err != nil {
		return Block{}, fmt.Errorf("netaddr: parse block %q: %w", s, err)
	}
	if p.Addr().Is4() {
		if p.Bits() != 24 {
			return Block{}, fmt.Errorf("netaddr: parse block %q: IPv4 blocks must be /24", s)
		}
	} else if p.Bits() != 48 {
		return Block{}, fmt.Errorf("netaddr: parse block %q: IPv6 blocks must be /48", s)
	}
	if p.Masked() != p {
		return Block{}, fmt.Errorf("netaddr: parse block %q: host bits set", s)
	}
	return BlockFromAddr(p.Addr()), nil
}

// MustParseBlock is ParseBlock that panics on error; for tests and tables.
func MustParseBlock(s string) Block {
	b, err := ParseBlock(s)
	if err != nil {
		panic(err)
	}
	return b
}

// Contains reports whether addr falls inside the block.
func (b Block) Contains(addr netip.Addr) bool {
	return BlockFromAddr(addr) == b
}

// Next returns the block immediately following b in address order within the
// same family. The key wraps silently at the end of the family's space.
func (b Block) Next() Block {
	mask := uint64(1)<<24 - 1
	if b.Fam == IPv6 {
		mask = 1<<48 - 1
	}
	return Block{Fam: b.Fam, Key: (b.Key + 1) & mask}
}

// Range enumerates n consecutive blocks starting at b.
func (b Block) Range(n int) []Block {
	out := make([]Block, 0, n)
	cur := b
	for i := 0; i < n; i++ {
		out = append(out, cur)
		cur = cur.Next()
	}
	return out
}

// Set is a set of blocks.
type Set map[Block]struct{}

// NewSet builds a Set from blocks.
func NewSet(blocks ...Block) Set {
	s := make(Set, len(blocks))
	for _, b := range blocks {
		s[b] = struct{}{}
	}
	return s
}

// Add inserts b into the set.
func (s Set) Add(b Block) { s[b] = struct{}{} }

// Has reports whether b is in the set.
func (s Set) Has(b Block) bool {
	_, ok := s[b]
	return ok
}

// Len returns the number of blocks in the set.
func (s Set) Len() int { return len(s) }

// CountFamily returns the number of blocks of the given family.
func (s Set) CountFamily(f Family) int {
	n := 0
	for b := range s {
		if b.Fam == f {
			n++
		}
	}
	return n
}

// FormatIndex renders a block key as a compact hexadecimal token, used in
// log filenames and debug output. ParseIndex reverses it.
func FormatIndex(b Block) string {
	return b.Fam.String() + "-" + strconv.FormatUint(b.Key, 16)
}

// ParseIndex parses a token produced by FormatIndex.
func ParseIndex(s string) (Block, error) {
	fam, rest, ok := strings.Cut(s, "-")
	if !ok {
		return Block{}, fmt.Errorf("netaddr: parse index %q: missing family", s)
	}
	var f Family
	switch fam {
	case "v4":
		f = IPv4
	case "v6":
		f = IPv6
	default:
		return Block{}, fmt.Errorf("netaddr: parse index %q: unknown family %q", s, fam)
	}
	k, err := strconv.ParseUint(rest, 16, 64)
	if err != nil {
		return Block{}, fmt.Errorf("netaddr: parse index %q: %w", s, err)
	}
	max := uint64(1)<<24 - 1
	if f == IPv6 {
		max = 1<<48 - 1
	}
	if k > max {
		return Block{}, fmt.Errorf("netaddr: parse index %q: key out of range", s)
	}
	return Block{Fam: f, Key: k}, nil
}
