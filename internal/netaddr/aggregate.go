package netaddr

import (
	"net/netip"
	"sort"
)

// AggregateBlocks merges a set of same-family blocks into the minimal list
// of covering CIDR prefixes: adjacent, alignment-compatible /24s (or /48s)
// collapse into shorter prefixes. The result is sorted by address.
//
// This is the step that turns a detected block set into a publishable
// prefix list (the MaxMind-style artifact the paper's method produces for
// CDN consumption).
func AggregateBlocks(blocks []Block) []netip.Prefix {
	var v4, v6 []uint64
	for _, b := range blocks {
		if b.Fam == IPv6 {
			v6 = append(v6, b.Key)
		} else {
			v4 = append(v4, b.Key)
		}
	}
	out := aggregateKeys(v4, 24, func(key uint64, bits int) netip.Prefix {
		return netip.PrefixFrom(Block{Fam: IPv4, Key: key}.Addr(), bits)
	})
	out = append(out, aggregateKeys(v6, 48, func(key uint64, bits int) netip.Prefix {
		return netip.PrefixFrom(Block{Fam: IPv6, Key: key}.Addr(), bits)
	})...)
	return out
}

// aggregateKeys merges sorted unit-prefix keys (each representing one
// maxBits-length prefix) into minimal covering prefixes.
func aggregateKeys(keys []uint64, maxBits int, mk func(uint64, int) netip.Prefix) []netip.Prefix {
	if len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	// Dedup.
	uniq := keys[:1]
	for _, k := range keys[1:] {
		if k != uniq[len(uniq)-1] {
			uniq = append(uniq, k)
		}
	}
	// Greedy merge on a stack of (key, size) runs where size is a power of
	// two: two sibling runs of size s merge into one of size 2s when the
	// combined run is aligned.
	type run struct {
		key  uint64 // first unit key
		size uint64 // number of unit prefixes covered (power of two)
	}
	var stack []run
	push := func(r run) {
		stack = append(stack, r)
		for len(stack) >= 2 {
			a, b := stack[len(stack)-2], stack[len(stack)-1]
			if a.size == b.size && a.key+a.size == b.key && a.key%(2*a.size) == 0 {
				stack = stack[:len(stack)-2]
				stack = append(stack, run{key: a.key, size: a.size * 2})
				continue
			}
			break
		}
	}
	for _, k := range uniq {
		push(run{key: k, size: 1})
	}
	out := make([]netip.Prefix, 0, len(stack))
	for _, r := range stack {
		bits := maxBits
		for s := r.size; s > 1; s >>= 1 {
			bits--
		}
		out = append(out, mk(r.key, bits))
	}
	return out
}

// ExpandPrefix lists the unit blocks (/24 or /48) covered by a prefix. For
// IPv4 the prefix must be /24 or shorter; for IPv6, /48 or shorter.
// Prefixes shorter than the unit by more than 20 bits are rejected as a
// safety bound (over a million unit blocks).
func ExpandPrefix(p netip.Prefix) ([]Block, bool) {
	p = p.Masked()
	unitBits, fam := 24, IPv4
	if p.Addr().Is6() && !p.Addr().Is4In6() {
		unitBits, fam = 48, IPv6
	}
	if p.Bits() > unitBits || unitBits-p.Bits() > 20 {
		return nil, false
	}
	base := BlockFromAddr(p.Addr())
	n := uint64(1) << (unitBits - p.Bits())
	out := make([]Block, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, Block{Fam: fam, Key: base.Key + i})
	}
	return out, true
}
