package world

import (
	"fmt"

	"cellspot/internal/geo"
)

// Config parameterizes world generation.
type Config struct {
	// Seed drives every random choice; identical configs generate
	// byte-identical worlds.
	Seed uint64

	// Scale is the fraction of paper-scale block counts to generate.
	// 1.0 would produce the paper's ~4.8M active IPv4 /24 blocks; the
	// default 0.01 produces ~48k. Counts scale linearly; all fractions
	// and percentages are scale-free.
	Scale float64

	// Countries is the country database; nil selects geo.DefaultDB().
	Countries *geo.DB

	// ASTail is the number of small enterprise/content tail ASes at full
	// scale (the paper observes 46,936 ASes in total); the generated
	// count is ASTail scaled by sqrt(Scale) so tail ASes keep at least
	// one block each at small scales.
	ASTail int

	// Noise-network counts (not scaled: AS-level results are absolute).
	StrayASes int // tether-noise ASes killed by filter rule 1 (<0.1 DU)
	IoTASes   int // beacon-poor cellular ASes killed by rule 2 (<300 hits)
	ProxyASes int // proxy/cloud/VPN ASes killed by rule 3 (AS class)

	// FWAFrac is the fraction of an operator's active cellular blocks
	// serving LTE home broadband (high wifi-label rates, intermediate
	// cellular ratios); FWADemandShare is the share of cellular demand
	// those blocks carry.
	FWAFrac        float64
	FWADemandShare float64

	// LowActivityMixed / LowActivityDedicated set how many low-activity
	// (beacon-less) cellular blocks exist per active one, for mixed and
	// dedicated operators respectively; LowActivityDemandShare is the
	// share of operator cellular demand they carry.
	LowActivityMixed       float64
	LowActivityDedicated   float64
	LowActivityDemandShare float64

	// IdleDedicatedFrac is the fraction of a dedicated operator's total
	// block inventory that is idle (zero demand, zero beacons) — Fig 6a
	// shows ~40% of a large dedicated AS's /24s at ratio 0 with no demand.
	IdleDedicatedFrac float64

	// HeavyFrac and HeavyShare shape CGNAT concentration: the fraction of
	// an operator's active (non-FWA) cellular blocks that are CGNAT
	// egress heavy hitters, and the demand share they carry (paper: 24 of
	// 514 blocks — 4.7% — carry 99.5%).
	HeavyFrac  float64
	HeavyShare float64

	// V6DemandShare is the fraction of a v6-deploying operator's cellular
	// demand carried over IPv6.
	V6DemandShare float64

	// BeaconlessDemandShare is the fraction of global demand originating
	// from blocks with no browser traffic (API backends, set-top devices);
	// the paper's BEACON dataset covers 92% of platform demand.
	BeaconlessDemandShare float64

	// Overrides pins per-country operator demand-share vectors (and mixed
	// flags), used to reproduce the paper's top-10 AS table. Keyed by ISO
	// country code; nil selects DefaultOverrides().
	Overrides map[string][]OperatorOverride

	// Parallelism is the worker count for sharded country generation:
	// 0 selects runtime.GOMAXPROCS, 1 runs the serial oracle path, and
	// negative values clamp to serial. Generated worlds are bit-identical
	// at every setting — each country draws from its own seed-derived PCG
	// stream and fragments merge in country order.
	Parallelism int
}

// OperatorOverride pins one operator's share of its country's cellular
// demand and whether it is mixed.
type OperatorOverride struct {
	Share float64
	Mixed bool
}

// DefaultOverrides reproduces the paper's Table 7: three dominant dedicated
// U.S. operators (9.4%, 9.2%, 5.7% of global cellular demand), one dominant
// Indian and Indonesian operator, Japan's trio with two mixed entries, and
// Australia's mixed leader.
func DefaultOverrides() map[string][]OperatorOverride {
	return map[string][]OperatorOverride{
		"US": {{Share: 0.300, Mixed: false}, {Share: 0.295, Mixed: false}, {Share: 0.180, Mixed: false}, {Share: 0.120, Mixed: false}},
		"JP": {{Share: 0.470, Mixed: false}, {Share: 0.350, Mixed: true}, {Share: 0.150, Mixed: true}},
		"IN": {{Share: 0.600, Mixed: false}},
		"ID": {{Share: 0.360, Mixed: false}},
		"AU": {{Share: 0.570, Mixed: true}},
	}
}

// DefaultConfig returns the configuration used throughout the reproduction.
func DefaultConfig() Config {
	return Config{
		Seed:                   1,
		Scale:                  0.01,
		ASTail:                 46936,
		StrayASes:              493,
		IoTASes:                53,
		ProxyASes:              49,
		FWAFrac:                0.12,
		FWADemandShare:         0.30,
		LowActivityMixed:       5.0,
		LowActivityDedicated:   0.012,
		LowActivityDemandShare: 0.18,
		IdleDedicatedFrac:      0.40,
		HeavyFrac:              0.048,
		HeavyShare:             0.995,
		V6DemandShare:          0.22,
		BeaconlessDemandShare:  0.08,
	}
}

// Validate checks config consistency and fills defaults.
func (c *Config) Validate() error {
	if c.Scale <= 0 || c.Scale > 1 {
		return fmt.Errorf("world: Scale %g out of (0,1]", c.Scale)
	}
	if c.Countries == nil {
		c.Countries = geo.DefaultDB()
	}
	if c.Overrides == nil {
		c.Overrides = DefaultOverrides()
	}
	for _, frac := range []struct {
		name string
		v    float64
	}{
		{"FWAFrac", c.FWAFrac},
		{"FWADemandShare", c.FWADemandShare},
		{"LowActivityDemandShare", c.LowActivityDemandShare},
		{"IdleDedicatedFrac", c.IdleDedicatedFrac},
		{"HeavyFrac", c.HeavyFrac},
		{"HeavyShare", c.HeavyShare},
		{"V6DemandShare", c.V6DemandShare},
		{"BeaconlessDemandShare", c.BeaconlessDemandShare},
	} {
		if frac.v < 0 || frac.v > 1 {
			return fmt.Errorf("world: %s %g out of [0,1]", frac.name, frac.v)
		}
	}
	if c.LowActivityMixed < 0 || c.LowActivityDedicated < 0 {
		return fmt.Errorf("world: negative low-activity factor")
	}
	if c.ASTail < 0 || c.StrayASes < 0 || c.IoTASes < 0 || c.ProxyASes < 0 {
		return fmt.Errorf("world: negative AS count")
	}
	for cc, ovs := range c.Overrides {
		sum := 0.0
		for _, ov := range ovs {
			if ov.Share < 0 {
				return fmt.Errorf("world: override %s: negative share", cc)
			}
			sum += ov.Share
		}
		if sum > 1+1e-9 {
			return fmt.Errorf("world: override %s: shares sum to %g > 1", cc, sum)
		}
	}
	return nil
}

// continentBlocks holds the paper-scale block census per continent:
// detected (active) cellular /24s and /48s straight from Table 4, with the
// total active counts derived from Table 4's "% Active" columns.
var continentBlocks = map[geo.Continent]struct {
	cell24   int
	active24 int
	cell48   int
	active48 int
}{
	geo.Africa:       {cell24: 79091, active24: 148667, cell48: 28, active48: 1400},
	geo.Asia:         {cell24: 86618, active24: 1519614, cell48: 4613, active48: 922600},
	geo.Europe:       {cell24: 65442, active24: 1363375, cell48: 2117, active48: 705667},
	geo.NorthAmerica: {cell24: 27595, active24: 1314048, cell48: 16166, active48: 163293},
	geo.Oceania:      {cell24: 4352, active24: 80593, cell48: 35, active48: 50000},
	geo.SouthAmerica: {cell24: 87589, active24: 387562, cell48: 271, active48: 30111},
}

// DemandOnlyExtra24 is the paper-scale count of IPv4 /24 blocks present in
// DEMAND but absent from BEACON (6.8M vs 4.7M in Table 2, adjusted for the
// BEACON set not being a strict subset).
const DemandOnlyExtra24 = 2_100_000
