package world

import (
	"hash/fnv"

	"cellspot/internal/netinfo"
)

// ratProfileFor derives an operator's radio-generation adoption profile
// from its AS identity. The derivation hashes the AS name instead of
// consuming the generation RNG streams: AS names are themselves
// deterministic functions of (seed, country, rank), so profiles are
// bit-identical at every parallelism level, and introducing them did not
// shift a single draw in the pre-existing world, beacon, or demand stages.
//
// Dedicated MNOs lead adoption (spectrum is their whole business) and
// always deploy 5G; mixed operators spread across the curve and roughly a
// quarter of them never deploy 5G in the modelled window.
func ratProfileFor(name string, dedicated bool) netinfo.RATProfile {
	h := fnv.New64a()
	h.Write([]byte(name))
	v := h.Sum64()
	p := netinfo.RATProfile{
		LagMonths: int(v%25) - 12, // -12..+12 months around the baseline
		FiveG:     dedicated || (v>>8)%4 != 0,
	}
	if dedicated {
		p.LagMonths -= 6
	}
	return p
}
