package world

import (
	"net/netip"

	"cellspot/internal/asn"
)

// Public DNS providers modelled after the paper's Fig 10: GoogleDNS,
// OpenDNS and Level3.
var publicProviders = []struct {
	name  string
	asnum uint32
	addrs []string
}{
	{"GoogleDNS", 15169, []string{"8.8.8.8", "8.8.4.4"}},
	{"OpenDNS", 36692, []string{"208.67.222.222", "208.67.220.220"}},
	{"Level3", 3356, []string{"4.2.2.1", "4.2.2.2"}},
}

// providerMix returns the per-country split of public-DNS demand across the
// three providers. The global base is Google-heavy; a deterministic
// country-keyed rotation varies the mix the way Fig 10 shows.
func providerMix(cc string) [3]float64 {
	base := [3]float64{0.60, 0.25, 0.15}
	if len(cc) == 2 {
		switch (int(cc[0]) + int(cc[1])) % 3 {
		case 1:
			base = [3]float64{0.45, 0.40, 0.15}
		case 2:
			base = [3]float64{0.70, 0.12, 0.18}
		}
	}
	return base
}

// genResolvers creates public resolvers, per-operator resolver fleets, and
// the block→resolver affinity for every demand-carrying block of an access
// operator. Mixed operators share ~60% of their resolvers between cellular
// and fixed-line customers (paper Fig 9); the remainder split evenly into
// cellular-only and fixed-only.
func (g *generator) genResolvers() {
	newResolver := func(r Resolver) *Resolver {
		r.ID = len(g.w.Resolvers)
		rp := &r
		g.w.Resolvers = append(g.w.Resolvers, rp)
		return rp
	}

	publicByProvider := make(map[string][]*Resolver, 3)
	for _, p := range publicProviders {
		for _, a := range p.addrs {
			r := newResolver(Resolver{
				Addr: netip.MustParseAddr(a), ASN: p.asnum,
				Public: true, Provider: p.name,
				ServesCell: true, ServesFixed: true,
			})
			publicByProvider[p.name] = append(publicByProvider[p.name], r)
		}
	}

	for _, op := range g.w.Operators {
		if !op.AS.Role.IsCellularAccess() && op.AS.Role != asn.RoleFixedISP {
			continue
		}
		demandDU := (op.CellDemand + op.FixedDemand) / g.duUnit
		n := 2 + int(demandDU/400)
		if n > 24 {
			n = 24
		}
		nShared := int(0.6*float64(n) + 0.5)
		if nShared < 1 {
			nShared = 1
		}
		resolvers := make([]*Resolver, 0, n)
		for i := 0; i < n; i++ {
			r := Resolver{ASN: op.AS.Number}
			switch op.AS.Role {
			case asn.RoleFixedISP:
				r.ServesFixed = true
			case asn.RoleDedicatedCellular:
				r.ServesCell = true
			default: // mixed: ~60% shared, rest split evenly
				switch {
				case i < nShared:
					r.ServesCell, r.ServesFixed = true, true
				case (i-nShared)%2 == 0:
					r.ServesCell = true
				default:
					r.ServesFixed = true
				}
			}
			// Resolver addresses live in operator infrastructure space:
			// a fresh /24 per pair of resolvers keeps them realistic
			// without polluting the client-block census.
			if i%2 == 0 {
				infra := g.alloc24(1)[0]
				r.Addr = infra.HostAddr(uint64(10 + i))
			} else {
				r.Addr = resolvers[i-1].Addr.Next()
			}
			resolvers = append(resolvers, newResolver(r))
		}
		op.Resolvers = resolvers
		g.assignAffinity(op, resolvers, publicByProvider)
	}
}

// assignAffinity wires each of the operator's demand-carrying blocks to
// resolvers: a public-DNS share split across providers, the rest to two of
// the operator's own resolvers chosen deterministically per block.
func (g *generator) assignAffinity(op *Operator, resolvers []*Resolver, publicByProvider map[string][]*Resolver) {
	var cellCapable, fixedCapable []*Resolver
	for _, r := range resolvers {
		if r.ServesCell {
			cellCapable = append(cellCapable, r)
		}
		if r.ServesFixed {
			fixedCapable = append(fixedCapable, r)
		}
	}
	mix := providerMix(op.AS.Country)

	for _, b := range op.Blocks {
		if b.Demand <= 0 {
			continue
		}
		pub := 0.05 // broadband users switching resolvers individually
		if b.Cellular {
			pub = op.PublicDNSShare // cell implies operator adoption
		}
		pool := fixedCapable
		if b.Cellular {
			pool = cellCapable
		}
		if len(pool) == 0 {
			pool = resolvers
		}
		var weights []ResolverWeight
		if pub > 0 {
			for pi, p := range publicProviders {
				prs := publicByProvider[p.name]
				w := pub * mix[pi]
				if w <= 0 || len(prs) == 0 {
					continue
				}
				r := prs[int(b.Block.Key)%len(prs)]
				weights = append(weights, ResolverWeight{ResolverID: r.ID, Weight: w})
			}
		}
		own := 1 - pub
		primary := pool[int(b.Block.Key)%len(pool)]
		if len(pool) == 1 {
			weights = append(weights, ResolverWeight{ResolverID: primary.ID, Weight: own})
		} else {
			secondary := pool[int(b.Block.Key+1)%len(pool)]
			weights = append(weights,
				ResolverWeight{ResolverID: primary.ID, Weight: own * 0.7},
				ResolverWeight{ResolverID: secondary.ID, Weight: own * 0.3},
			)
		}
		g.w.Affinity[b.Block] = weights
	}
}

// pickCarriers selects the three named validation operators: the largest
// mixed European operator (Carrier A), the largest dedicated U.S. operator
// (Carrier B), and the largest mixed Middle-East operator (Carrier C).
func (g *generator) pickCarriers() {
	var bestA, bestB, bestC *Operator
	for _, op := range g.w.CellOperators {
		switch {
		case op.Country.Continent.String() == "EU" && !op.Dedicated:
			if bestA == nil || op.CellDemand > bestA.CellDemand {
				bestA = op
			}
		case op.Country.Code == "US" && op.Dedicated:
			if bestB == nil || op.CellDemand > bestB.CellDemand {
				bestB = op
			}
		case isMiddleEast(op.Country.Code) && !op.Dedicated:
			if bestC == nil || op.CellDemand > bestC.CellDemand {
				bestC = op
			}
		}
	}
	g.w.CarrierA, g.w.CarrierB, g.w.CarrierC = bestA, bestB, bestC
}

// isMiddleEast reports membership in the paper's informal "middle east"
// region for Carrier C selection.
func isMiddleEast(cc string) bool {
	switch cc {
	case "SA", "AE", "KW", "QA", "OM", "BH", "JO", "LB", "IQ", "IL":
		return true
	}
	return false
}
