package world

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// Property: apportion conserves the total whenever any weight is positive,
// and every share is non-negative.
func TestApportionConservesTotalProperty(t *testing.T) {
	f := func(totalRaw uint16, rawWeights []uint16) bool {
		total := int(totalRaw % 10000)
		weights := make([]float64, len(rawWeights))
		anyPositive := false
		for i, w := range rawWeights {
			weights[i] = float64(w)
			if w > 0 {
				anyPositive = true
			}
		}
		out := apportion(total, weights)
		if len(out) != len(weights) {
			return false
		}
		sum := 0
		for i, v := range out {
			if v < 0 {
				return false
			}
			if weights[i] == 0 && v != 0 {
				return false // zero weight must receive zero
			}
			sum += v
		}
		if !anyPositive || total <= 0 {
			return sum == 0
		}
		return sum == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: apportion is monotone-ish — a strictly dominant weight never
// receives fewer units than any other entry.
func TestApportionDominanceProperty(t *testing.T) {
	f := func(totalRaw uint16, a, b uint8) bool {
		total := int(totalRaw%1000) + 1
		wa, wb := float64(a)+1, float64(b)+1
		out := apportion(total, []float64{wa, wb})
		if wa > wb && out[0] < out[1] {
			return false
		}
		if wb > wa && out[1] < out[0] {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: operator shares sum to ~1 and respect overrides.
func TestOperatorSharesProperty(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	g := &generator{cfg: cfg, rng: rand.New(rand.NewPCG(123, 456))}
	for _, cc := range []string{"US", "JP", "DE", "GH", "SB"} {
		c, ok := cfg.Countries.Lookup(cc)
		if !ok {
			t.Fatalf("country %s missing", cc)
		}
		shares, mixed := g.operatorShares(c, c.CellASes)
		if len(shares) != c.CellASes || len(mixed) != c.CellASes {
			t.Fatalf("%s: lengths %d/%d", cc, len(shares), len(mixed))
		}
		sum := 0.0
		for _, s := range shares {
			if s < 0 {
				t.Fatalf("%s: negative share", cc)
			}
			sum += s
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Errorf("%s: shares sum to %g", cc, sum)
		}
		for i, ov := range cfg.Overrides[cc] {
			if i >= len(shares) {
				break
			}
			if shares[i] != ov.Share || mixed[i] != ov.Mixed {
				t.Errorf("%s: override %d not honoured", cc, i)
			}
		}
	}
}
