package world

import (
	"math"
	"testing"

	"cellspot/internal/asn"
	"cellspot/internal/geo"
)

// testWorld generates one small world per test binary run.
var testWorldCache *World

func testWorld(t *testing.T) *World {
	t.Helper()
	if testWorldCache == nil {
		cfg := DefaultConfig()
		cfg.Scale = 0.004
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		testWorldCache = w
	}
	return testWorldCache
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.Scale = 1.5 },
		func(c *Config) { c.FWAFrac = -0.1 },
		func(c *Config) { c.HeavyShare = 2 },
		func(c *Config) { c.LowActivityMixed = -1 },
		func(c *Config) { c.StrayASes = -1 },
		func(c *Config) { c.Overrides = map[string][]OperatorOverride{"US": {{Share: 0.9}, {Share: 0.3}}} },
		func(c *Config) { c.Overrides = map[string][]OperatorOverride{"US": {{Share: -0.1}}} },
	}
	for i, mutate := range cases {
		c := DefaultConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestApportion(t *testing.T) {
	got := apportion(10, []float64{1, 1, 2})
	if got[0]+got[1]+got[2] != 10 {
		t.Errorf("apportion total = %v", got)
	}
	if got[2] != 5 {
		t.Errorf("apportion = %v, want last 5", got)
	}
	zero := apportion(5, []float64{0, 0})
	if zero[0] != 0 || zero[1] != 0 {
		t.Errorf("all-zero weights: %v", zero)
	}
	mixed := apportion(7, []float64{0, 3, 1})
	if mixed[0] != 0 || mixed[1]+mixed[2] != 7 {
		t.Errorf("apportion with zero weight = %v", mixed)
	}
	if r := apportion(0, []float64{1}); r[0] != 0 {
		t.Errorf("total 0: %v", r)
	}
}

func TestGenerateBasicShape(t *testing.T) {
	w := testWorld(t)
	if len(w.CellOperators) < 600 || len(w.CellOperators) > 740 {
		t.Errorf("cellular operators = %d, want near 668 (paper Table 5)", len(w.CellOperators))
	}
	if len(w.Blocks) == 0 || len(w.Operators) == 0 || len(w.Resolvers) == 0 {
		t.Fatal("world is empty")
	}
	if w.TotalDemand <= 0 {
		t.Fatal("no demand")
	}
	if w.CarrierA == nil || w.CarrierB == nil || w.CarrierC == nil {
		t.Fatal("validation carriers not selected")
	}
	if w.CarrierA.Dedicated {
		t.Error("Carrier A must be mixed")
	}
	if !w.CarrierB.Dedicated || w.CarrierB.Country.Code != "US" {
		t.Error("Carrier B must be a dedicated US operator")
	}
	if w.CarrierC.Dedicated || !isMiddleEast(w.CarrierC.Country.Code) {
		t.Error("Carrier C must be a mixed Middle-East operator")
	}
}

func TestGenerateBlockIndexConsistent(t *testing.T) {
	w := testWorld(t)
	if len(w.BlockIndex) != len(w.Blocks) {
		t.Fatalf("index has %d entries for %d blocks (duplicate allocation?)", len(w.BlockIndex), len(w.Blocks))
	}
	for i, b := range w.Blocks {
		if w.BlockIndex[b.Block] != b {
			t.Fatalf("block %d not indexed to itself", i)
		}
		if b.Demand < 0 {
			t.Fatalf("negative demand on %v", b.Block)
		}
		if b.CellLabelProb < 0 || b.CellLabelProb > 1 {
			t.Fatalf("CellLabelProb %g out of range", b.CellLabelProb)
		}
		if _, ok := w.Registry.Lookup(b.ASN); !ok {
			t.Fatalf("block %v owned by unregistered AS%d", b.Block, b.ASN)
		}
	}
}

func TestGenerateOperatorDemandMatchesBlocks(t *testing.T) {
	w := testWorld(t)
	for _, op := range w.Operators {
		var cell, fixed float64
		for _, b := range op.Blocks {
			if b.Cellular {
				cell += b.Demand
			} else {
				fixed += b.Demand
			}
		}
		if math.Abs(cell-op.CellDemand) > 1e-9 || math.Abs(fixed-op.FixedDemand) > 1e-9 {
			t.Fatalf("%s: demand bookkeeping off: %g/%g vs %g/%g",
				op.AS.Name, cell, fixed, op.CellDemand, op.FixedDemand)
		}
	}
}

func TestGenerateGroundTruthCellularFraction(t *testing.T) {
	w := testWorld(t)
	var cellDem float64
	for _, b := range w.Blocks {
		if b.Cellular {
			cellDem += b.Demand
		}
	}
	frac := cellDem / w.TotalDemand
	// Ground truth sits slightly above the paper's measured 16.2% because
	// detection misses some low-activity and FWA demand.
	if frac < 0.15 || frac < 0.16 && frac > 0.24 || frac > 0.24 {
		t.Errorf("ground-truth cellular demand fraction = %.3f, want in [0.15,0.24]", frac)
	}
}

func TestGenerateMixedMajority(t *testing.T) {
	w := testWorld(t)
	mixed := 0
	var mixedDem, totalDem float64
	for _, op := range w.CellOperators {
		if !op.Dedicated {
			mixed++
			mixedDem += op.CellDemand
		}
		totalDem += op.CellDemand
	}
	frac := float64(mixed) / float64(len(w.CellOperators))
	if frac < 0.50 || frac > 0.65 {
		t.Errorf("mixed operator fraction = %.3f, want majority near 0.586", frac)
	}
	demFrac := mixedDem / totalDem
	if demFrac < 0.2 || demFrac > 0.45 {
		t.Errorf("mixed demand share = %.3f, want near 0.327", demFrac)
	}
}

func TestGenerateTopOperatorShares(t *testing.T) {
	w := testWorld(t)
	var total float64
	shares := make([]float64, 0, len(w.CellOperators))
	for _, op := range w.CellOperators {
		total += op.CellDemand
	}
	for _, op := range w.CellOperators {
		shares = append(shares, op.CellDemand/total)
	}
	// top-10 share (paper: 38%); top-5 (paper: 35.9%)
	top10, top5 := 0.0, 0.0
	for i := 0; i < 10; i++ {
		best := 0
		for j := range shares {
			if shares[j] > shares[best] {
				best = j
			}
		}
		top10 += shares[best]
		if i < 5 {
			top5 += shares[best]
		}
		shares[best] = -1
	}
	if top10 < 0.30 || top10 > 0.46 {
		t.Errorf("top-10 AS share of cellular demand = %.3f, want near 0.38", top10)
	}
	if top5 < 0.26 || top5 > 0.42 {
		t.Errorf("top-5 AS share = %.3f, want near 0.359", top5)
	}
}

func TestGenerateNoiseASes(t *testing.T) {
	w := testWorld(t)
	counts := map[asn.Role]int{}
	for _, a := range w.Registry.All() {
		counts[a.Role]++
	}
	cfg := w.Config
	if got := counts[asn.RoleProxyService] + counts[asn.RoleCloudHosting] + counts[asn.RoleVPNService]; got < cfg.ProxyASes {
		t.Errorf("proxy-family ASes = %d, want >= %d", got, cfg.ProxyASes)
	}
	if counts[asn.RoleDedicatedCellular] < cfg.IoTASes {
		t.Error("IoT cellular ASes missing")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 0.002
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Blocks) != len(w2.Blocks) {
		t.Fatalf("block counts differ: %d vs %d", len(w1.Blocks), len(w2.Blocks))
	}
	for i := range w1.Blocks {
		a, b := w1.Blocks[i], w2.Blocks[i]
		if a.Block != b.Block || a.ASN != b.ASN || a.Demand != b.Demand ||
			a.Cellular != b.Cellular || a.CellLabelProb != b.CellLabelProb {
			t.Fatalf("block %d differs between runs: %+v vs %+v", i, a, b)
		}
	}
	if w1.TotalDemand != w2.TotalDemand {
		t.Error("total demand differs")
	}
	cfg2 := cfg
	cfg2.Seed = 99
	w3, err := Generate(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	same := len(w3.Blocks) == len(w1.Blocks)
	if same {
		diff := false
		for i := range w1.Blocks {
			if w1.Blocks[i].Demand != w3.Blocks[i].Demand {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical demand")
		}
	}
}

func TestGenerateResolverAffinity(t *testing.T) {
	w := testWorld(t)
	if len(w.Affinity) == 0 {
		t.Fatal("no affinity entries")
	}
	for blk, ws := range w.Affinity {
		sum := 0.0
		for _, rw := range ws {
			r := w.ResolverByID(rw.ResolverID)
			if r == nil {
				t.Fatalf("block %v references unknown resolver %d", blk, rw.ResolverID)
			}
			if rw.Weight < 0 {
				t.Fatalf("negative affinity weight on %v", blk)
			}
			sum += rw.Weight
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("affinity weights for %v sum to %g", blk, sum)
		}
	}
	// Mixed operators share resolvers (paper: ~60%).
	shared, total := 0, 0
	for _, op := range w.CellOperators {
		if op.Dedicated {
			continue
		}
		for _, r := range op.Resolvers {
			total++
			if r.ServesCell && r.ServesFixed {
				shared++
			}
		}
	}
	if total == 0 {
		t.Fatal("mixed operators have no resolvers")
	}
	if frac := float64(shared) / float64(total); frac < 0.5 || frac > 0.7 {
		t.Errorf("shared resolver fraction = %.3f, want near 0.6", frac)
	}
}

func TestGenerateV6Census(t *testing.T) {
	w := testWorld(t)
	v6Ops := 0
	for _, op := range w.CellOperators {
		if op.V6 {
			v6Ops++
		}
	}
	// Paper: 52 cellular ASes deploy IPv6.
	if v6Ops < 40 || v6Ops > 65 {
		t.Errorf("v6 cellular operators = %d, want near 52", v6Ops)
	}
	countries := map[string]bool{}
	for _, op := range w.CellOperators {
		if op.V6 {
			countries[op.Country.Code] = true
		}
	}
	if len(countries) < 18 || len(countries) > 28 {
		t.Errorf("v6 countries = %d, want near 24", len(countries))
	}
}

func TestCarrierTruth(t *testing.T) {
	w := testWorld(t)
	truth := w.CarrierTruth(w.CarrierA, false)
	if len(truth) == 0 {
		t.Fatal("empty carrier truth")
	}
	nCell := 0
	for blk, cell := range truth {
		bi := w.BlockIndex[blk]
		if bi == nil || bi.Cellular != cell {
			t.Fatalf("truth disagrees with world for %v", blk)
		}
		if cell {
			nCell++
		}
	}
	if nCell == 0 || nCell == len(truth) {
		t.Errorf("mixed carrier truth should contain both classes: %d/%d cellular", nCell, len(truth))
	}
	withIdle := w.CarrierTruth(w.CarrierB, true)
	active := w.CarrierTruth(w.CarrierB, false)
	if len(withIdle) < len(active) {
		t.Error("includeIdle lost blocks")
	}
}

func TestGenerateCaseStudy(t *testing.T) {
	w, err := GenerateCaseStudy(CaseStudyConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w.TotalDemand-100000) > 1 {
		t.Errorf("case-study demand = %g, want 100000 DU", w.TotalDemand)
	}
	a, b, c := w.CarrierA, w.CarrierB, w.CarrierC
	// Carrier A: ~5.1k cellular blocks (514 active), ~89.6k fixed.
	aCell, aFixed := 0, 0
	for _, bi := range a.Blocks {
		if bi.Cellular {
			aCell++
		} else {
			aFixed++
		}
	}
	if aCell < 4900 || aCell > 5400 {
		t.Errorf("carrier A cellular blocks = %d, want ~5122", aCell)
	}
	if aFixed < 89000 || aFixed > 90100 {
		t.Errorf("carrier A fixed blocks = %d, want ~89553", aFixed)
	}
	if math.Abs(a.CellDemand-86.2) > 0.5 {
		t.Errorf("carrier A cellular demand = %.2f DU, want 86.2", a.CellDemand)
	}
	// Carrier B: ~2972 cellular + ~2k idle.
	bCell := 0
	for _, bi := range b.Blocks {
		if bi.Cellular {
			bCell++
		}
	}
	if bCell < 2900 || bCell > 3050 {
		t.Errorf("carrier B cellular blocks = %d, want ~2972", bCell)
	}
	if len(b.Blocks)-bCell < 1500 {
		t.Errorf("carrier B idle inventory = %d, want ~2k", len(b.Blocks)-bCell)
	}
	// Carrier C.
	if c.Dedicated {
		t.Error("carrier C must be mixed")
	}
	if math.Abs(c.FixedDemand-(42.85+0.17)) > 0.5 {
		t.Errorf("carrier C fixed demand = %.2f, want ~43.0", c.FixedDemand)
	}
}

func TestProviderMix(t *testing.T) {
	for _, cc := range []string{"US", "IN", "DZ", "HK", ""} {
		m := providerMix(cc)
		sum := m[0] + m[1] + m[2]
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("provider mix for %q sums to %g", cc, sum)
		}
	}
}

func TestContinentBlockTableMatchesPaper(t *testing.T) {
	// Table 4 cellular counts, verbatim.
	want := map[geo.Continent]int{
		geo.Africa: 79091, geo.Asia: 86618, geo.Europe: 65442,
		geo.NorthAmerica: 27595, geo.Oceania: 4352, geo.SouthAmerica: 87589,
	}
	totCell, totActive := 0, 0
	for ct, cb := range continentBlocks {
		if cb.cell24 != want[ct] {
			t.Errorf("%s cell24 = %d, want %d", ct, cb.cell24, want[ct])
		}
		totCell += cb.cell24
		totActive += cb.active24
	}
	if totCell != 350687 {
		t.Errorf("total cellular /24 = %d, want 350687", totCell)
	}
	// 7.3% of active IPv4 space (paper) within rounding of the derived
	// active counts.
	frac := float64(totCell) / float64(totActive)
	if frac < 0.070 || frac > 0.076 {
		t.Errorf("cellular fraction of active space = %.4f, want ~0.073", frac)
	}
}
