// Package world generates the synthetic Internet the reproduction measures:
// countries, autonomous systems, operators (dedicated-cellular, mixed,
// fixed-only), their IPv4 /24 and IPv6 /48 address plans with CGNAT demand
// concentration, DNS resolver deployments, and the proxy/cloud/VPN noise
// networks that produce the paper's straw-man false positives.
//
// The world is ground truth. The measurement pipeline (beacon, demand,
// classify, aschar, macro) sees only the logs generated from it and must
// recover the truth; precision/recall are computed against the fields here.
// Everything is deterministic given Config.Seed.
package world

import (
	"net/netip"

	"cellspot/internal/asn"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
)

// BlockInfo is the ground truth for one /24 or /48 block.
type BlockInfo struct {
	Block netaddr.Block
	ASN   uint32

	// Cellular is the ground-truth access type: true when traffic from
	// this block traverses a cellular radio.
	Cellular bool

	// WebActive reports whether the block produces browser page loads and
	// therefore appears in the BEACON dataset. Low-activity cellular
	// blocks (infrastructure, M2M) have demand but no beacons — the
	// paper's dominant false-negative source.
	WebActive bool

	// Demand is the block's unnormalized demand weight. The demand
	// pipeline normalizes world totals to 100,000 Demand Units.
	Demand float64

	// CellLabelProb is the probability that an API-enabled hit from this
	// block carries a "cellular" ConnectionType label. For cellular blocks
	// it is 1 minus the tether/hotspot rate (LTE home-broadband blocks sit
	// in the middle, producing the paper's intermediate ratios); for
	// fixed blocks it is the tiny interface-switch race rate; for proxy
	// egress blocks it is high despite the block not being cellular.
	CellLabelProb float64

	// RAT is the owning operator's radio-generation adoption profile,
	// copied onto cellular blocks; the mix of 3G/4G/5G traffic a block
	// carries in a month is RAT.Mix(month). Meaningless for fixed blocks.
	RAT netinfo.RATProfile

	// HitsOverride, when positive, fixes the block's API-enabled beacon
	// hit count instead of deriving it from demand. Used by noise blocks
	// (stray tethers, IoT operators) that need specific tiny hit counts.
	HitsOverride int
}

// Resolver is one recursive DNS resolver serving clients.
type Resolver struct {
	ID       int
	Addr     netip.Addr
	ASN      uint32 // operator AS, or the public provider's AS
	Public   bool
	Provider string // "GoogleDNS", "OpenDNS", "Level3" for public resolvers

	// ServesCell/ServesFixed record the ground-truth assignment inside the
	// owning operator (shared resolvers serve both).
	ServesCell  bool
	ServesFixed bool
}

// ResolverWeight is one entry of a block's resolver affinity: the fraction
// of the block's resolutions handled by a resolver.
type ResolverWeight struct {
	ResolverID int
	Weight     float64
}

// Operator is an access network (or noise network) in the world.
type Operator struct {
	AS      *asn.AS
	Country *geo.Country

	// Dedicated marks cellular-only operators; false for mixed operators.
	// Meaningless for non-cellular roles.
	Dedicated bool

	// V6 marks operators deploying IPv6 on their cellular network.
	V6 bool

	// RAT is the operator's radio-generation adoption profile (lag behind
	// the global 3G/4G/5G baseline, 5G deployment flag). Derived
	// deterministically from the AS identity, not from the generation RNG
	// streams, so adding or changing profiles never shifts other draws.
	RAT netinfo.RATProfile

	// CellDemand and FixedDemand are the operator's unnormalized demand
	// totals by ground-truth access type.
	CellDemand  float64
	FixedDemand float64

	// Blocks lists every block the operator owns (including zero-demand
	// inventory).
	Blocks []*BlockInfo

	// PublicDNSShare is the fraction of the operator's client resolutions
	// sent to public DNS services.
	PublicDNSShare float64

	// Resolvers are the operator's own recursive resolvers.
	Resolvers []*Resolver
}

// World is a fully generated synthetic Internet.
type World struct {
	Config    Config
	Countries *geo.DB
	Registry  *asn.Registry
	Snapshot  *asn.Snapshot

	// Operators holds every network that owns client blocks, including
	// fixed ISPs, enterprises and noise ASes. CellOperators is the
	// ground-truth cellular access subset (dedicated + mixed).
	Operators     []*Operator
	CellOperators []*Operator

	// Blocks is every block in the world; BlockIndex maps a block key to
	// its info. Affinity holds each web-active block's resolver weights.
	Blocks     []*BlockInfo
	BlockIndex map[netaddr.Block]*BlockInfo
	Affinity   map[netaddr.Block][]ResolverWeight

	// Resolvers lists all resolvers, operator-owned and public.
	Resolvers []*Resolver

	// TotalDemand is the sum of block demand (unnormalized units).
	TotalDemand float64

	// CarrierA, CarrierB, CarrierC are the named validation operators:
	// a large mixed European provider, a large dedicated U.S. MNO, and a
	// large mixed Middle-East MNO (paper §4.2).
	CarrierA, CarrierB, CarrierC *Operator
}

// ResolverByID returns the resolver with the given ID, or nil.
func (w *World) ResolverByID(id int) *Resolver {
	if id < 0 || id >= len(w.Resolvers) {
		return nil
	}
	return w.Resolvers[id]
}

// OperatorByASN returns the operator owning the given AS, or nil.
func (w *World) OperatorByASN(n uint32) *Operator {
	for _, op := range w.Operators {
		if op.AS.Number == n {
			return op
		}
	}
	return nil
}

// TruthCellularBlocks returns the ground-truth cellular block set.
func (w *World) TruthCellularBlocks() netaddr.Set {
	s := make(netaddr.Set)
	for _, b := range w.Blocks {
		if b.Cellular {
			s.Add(b.Block)
		}
	}
	return s
}

// CarrierTruth exports an operator's ground-truth prefix labels the way the
// paper's carriers provided them: every owned block with demand, labeled
// cellular or fixed-line. Zero-demand inventory is included for cellular
// blocks only when includeIdle is set (carriers list allocations, but the
// paper's accuracy table covers active subnets).
func (w *World) CarrierTruth(op *Operator, includeIdle bool) map[netaddr.Block]bool {
	out := make(map[netaddr.Block]bool, len(op.Blocks))
	for _, b := range op.Blocks {
		if b.Demand <= 0 && !includeIdle {
			continue
		}
		out[b.Block] = b.Cellular
	}
	return out
}
