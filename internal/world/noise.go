package world

import (
	"fmt"
	"math"

	"cellspot/internal/asn"
	"cellspot/internal/geo"
	"cellspot/internal/traffic"
)

// genNoiseASes creates the three families of networks that make the
// straw-man "any AS with one cellular block" tagging wrong (paper §5,
// Table 5):
//
//   - stray-tether ASes: ordinary networks where a handful of beacon hits
//     carry cellular labels (an office with an LTE-dongle user); their
//     cellular demand is far below 0.1 DU, so filter rule 1 removes them.
//   - IoT/M2M cellular ASes: genuine cellular networks with real platform
//     demand but almost no browser traffic; rule 2 (<300 beacon hits)
//     removes them.
//   - proxy/cloud/VPN ASes: Google/Opera-style performance proxies and
//     cloud hosts whose egress blocks inherit their mobile clients'
//     connection labels; they carry plenty of demand and hits, and only
//     rule 3 (CAIDA class) removes them.
func (g *generator) genNoiseASes() {
	cfg := g.cfg
	countries := g.weightedCountries()
	duUnit := g.duUnit

	for i := 0; i < cfg.StrayASes; i++ {
		c := countries[g.rng.IntN(len(countries))]
		op := &Operator{
			AS:      g.newAS(fmt.Sprintf("Stray-%s-%d", c.Code, i+1), c.Code, g.strayRole(i)),
			Country: c,
		}
		g.w.Operators = append(g.w.Operators, op)
		// One ordinary fixed block plus one block whose few enabled hits
		// are cellular-labeled. Total cellular demand stays below 0.1 DU.
		blocks := g.alloc24(2)
		g.addBlock(op, BlockInfo{
			Block:         blocks[0],
			WebActive:     true,
			Demand:        duUnit * (0.2 + 0.6*g.rng.Float64()),
			CellLabelProb: 0.002,
		})
		g.addBlock(op, BlockInfo{
			Block:         blocks[1],
			WebActive:     true,
			Demand:        duUnit * 0.0002 * math.Pow(10, 2*g.rng.Float64()),
			CellLabelProb: 0.95,
			HitsOverride:  1 + g.rng.IntN(3),
		})
	}

	for i := 0; i < cfg.IoTASes; i++ {
		c := countries[g.rng.IntN(len(countries))]
		op := &Operator{
			AS:        g.newAS(fmt.Sprintf("M2M-%s-%d", c.Code, i+1), c.Code, asn.RoleDedicatedCellular),
			Country:   c,
			Dedicated: true,
		}
		g.w.Operators = append(g.w.Operators, op)
		blocks := g.alloc24(2)
		// The beacon-visible block clears rule 1's demand bar on its own.
		g.addBlock(op, BlockInfo{
			Block:         blocks[0],
			Cellular:      true,
			WebActive:     true,
			Demand:        duUnit * (0.12 + 0.15*g.rng.Float64()),
			CellLabelProb: 0.9,
			HitsOverride:  1 + g.rng.IntN(2),
		})
		g.addBlock(op, BlockInfo{
			Block:     blocks[1],
			Cellular:  true,
			WebActive: false,
			Demand:    duUnit * (0.05 + 0.2*g.rng.Float64()),
		})
	}

	for i := 0; i < cfg.ProxyASes; i++ {
		// Proxies cluster in large hosting markets.
		c := countries[0] // most demand-heavy country
		if g.rng.Float64() < 0.4 {
			c = countries[g.rng.IntN(len(countries))]
		}
		role := asn.RoleProxyService
		name := fmt.Sprintf("MobileProxy-%d", i+1)
		switch i % 3 {
		case 1:
			role = asn.RoleCloudHosting
			name = fmt.Sprintf("CloudHost-%d", i+1)
		case 2:
			role = asn.RoleVPNService
			name = fmt.Sprintf("MobileVPN-%d", i+1)
		}
		op := &Operator{
			AS:      g.newAS(name, c.Code, role),
			Country: c,
		}
		// VPN egress rents enterprise space but must still die on rule 3:
		// the paper filters Content and unknown-class ASes. Model VPNs as
		// absent from the CAIDA snapshot (unknown class).
		if role == asn.RoleVPNService {
			op.AS.Class = asn.ClassUnknown
		}
		g.w.Operators = append(g.w.Operators, op)
		n := 5 + g.rng.IntN(26)
		weights := traffic.GradualSplit(g.rng, n)
		demand := duUnit * (10 + 50*g.rng.Float64()) // 0.01%..0.06% of global
		for j, b := range g.alloc24(n) {
			g.addBlock(op, BlockInfo{
				Block:         b,
				Cellular:      false, // egress is in a datacenter
				WebActive:     true,
				Demand:        demand * weights[j],
				CellLabelProb: 0.5 + 0.35*g.rng.Float64(),
			})
		}
	}
}

// strayRole cycles stray ASes through access-ish classes so rule 3 cannot
// catch them — only rule 1 does.
func (g *generator) strayRole(i int) asn.Role {
	if i%3 == 0 {
		return asn.RoleEnterprise
	}
	return asn.RoleFixedISP
}

// weightedCountries returns countries ordered by descending demand share,
// for noise placement.
func (g *generator) weightedCountries() []*geo.Country {
	all := g.cfg.Countries.All()
	out := make([]*geo.Country, 0, len(all))
	for _, c := range all {
		if c.DemandShare > 0 {
			out = append(out, c)
		}
	}
	// Selection sort by demand desc, stable on code for determinism.
	for i := 0; i < len(out); i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].DemandShare > out[best].DemandShare {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	return out
}
