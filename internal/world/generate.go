package world

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"

	"cellspot/internal/asn"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/par"
	"cellspot/internal/traffic"
)

// Per-stage RNG stream constants. Every shard of world generation derives
// its stream as PCG(cfg.Seed, streamConst^shardIndex), so shard outputs are
// functions of (seed, shard) alone — never of scheduling or worker count.
const (
	countryStream = 0x9e3779b97f4a7c15 // one shard per country
	noiseStream   = 0x6e015e_0001      // serial noise-AS stage
)

// generator carries allocation state during world construction. A
// generator is either the merged global one or a per-country fragment;
// fragments allocate ASNs and block keys from their own local sequences,
// which absorb renumbers into the global sequence at merge time.
type generator struct {
	cfg Config
	rng *rand.Rand
	w   *World

	nextASN uint32
	next24  uint64 // next /24 key to hand out
	next48  uint64 // next /48 key to hand out

	ases   []*asn.AS
	duUnit float64 // demand units per Demand Unit (1 DU = 0.001% of global)
}

// Generate builds the global synthetic world. Country generation shards
// across cfg.Parallelism workers (0 = GOMAXPROCS, 1 = serial): each country
// draws from its own PCG stream and fragments merge in country order, so
// the world is bit-identical at every parallelism level.
func Generate(cfg Config) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	duUnit := cfg.Countries.TotalDemandShare() / 100000
	budgets := (&generator{cfg: cfg}).countryBudgets()

	// Shard 1: one fragment per country, each on an independent stream
	// with local ASN/address sequences.
	countries := cfg.Countries.All()
	frags := make([]*generator, len(countries))
	par.Do(len(countries), cfg.Parallelism, func(i int) {
		f := newFragment(cfg, rand.New(rand.NewPCG(cfg.Seed, countryStream^uint64(i))), duUnit)
		f.genCountry(countries[i], budgets[countries[i].Code])
		frags[i] = f
	})

	// Merge in country order, then run the serial tail stages (noise ASes,
	// resolvers, carrier selection) on their own streams.
	g := &generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cfg.Seed, noiseStream)),
		nextASN: 1000,
		next24:  uint64(1) << 16, // start at 1.0.0.0/24
		next48:  0x2001_0000_0000,
		duUnit:  duUnit,
		w: &World{
			Config:     cfg,
			Countries:  cfg.Countries,
			BlockIndex: make(map[netaddr.Block]*BlockInfo),
			Affinity:   make(map[netaddr.Block][]ResolverWeight),
		},
	}
	for _, f := range frags {
		g.absorb(f)
	}
	g.genNoiseASes()
	g.genResolvers()

	reg, err := g.registry()
	if err != nil {
		return nil, err
	}
	g.w.Registry = reg
	// CAIDA-style coverage of access networks is effectively complete; the
	// snapshot's incompleteness is modelled on the noise ASes (VPN egress
	// carries no class), so rule 3 removes proxies without collateral.
	g.w.Snapshot = asn.BuildSnapshot(reg)
	g.pickCarriers()

	total := 0.0
	for _, b := range g.w.Blocks {
		total += b.Demand
	}
	g.w.TotalDemand = total
	return g.w, nil
}

// newFragment returns a per-country generator with local ASN and address
// sequences. Fragment keys and ASNs are placeholders: absorb rewrites them
// into the global sequences, so only their allocation order matters.
func newFragment(cfg Config, rng *rand.Rand, duUnit float64) *generator {
	return &generator{
		cfg:     cfg,
		rng:     rng,
		nextASN: 1,
		next24:  uint64(1) << 16,
		next48:  0x2001_0000_0000,
		duUnit:  duUnit,
		w:       &World{Config: cfg, Countries: cfg.Countries},
	}
}

// absorb renumbers a fragment's ASes and blocks into the global sequences
// and appends its operators and blocks in fragment order. Because fragments
// are absorbed in country order and each fragment's internal order is
// deterministic, the merged world is independent of how (or whether) the
// fragments ran concurrently.
func (g *generator) absorb(f *generator) {
	asnMap := make(map[uint32]uint32, len(f.ases))
	for _, a := range f.ases {
		old := a.Number
		a.Number = g.nextASN
		g.nextASN++
		asnMap[old] = a.Number
		g.ases = append(g.ases, a)
	}
	for _, bi := range f.w.Blocks {
		if bi.Block.Fam == netaddr.IPv6 {
			bi.Block = g.next48Block()
		} else {
			bi.Block = g.next24Block()
		}
		bi.ASN = asnMap[bi.ASN]
		g.w.Blocks = append(g.w.Blocks, bi)
		g.w.BlockIndex[bi.Block] = bi
	}
	g.w.Operators = append(g.w.Operators, f.w.Operators...)
	g.w.CellOperators = append(g.w.CellOperators, f.w.CellOperators...)
}

// registry builds the AS registry from the minted AS set.
func (g *generator) registry() (*asn.Registry, error) {
	vals := make([]asn.AS, len(g.ases))
	for i, a := range g.ases {
		vals[i] = *a
	}
	reg, err := asn.NewRegistry(vals)
	if err != nil {
		return nil, fmt.Errorf("world: %w", err)
	}
	return reg, nil
}

// blockBudget is the per-country block allocation.
type blockBudget struct {
	cell24, fixed24, demandOnly24 int
	cell48, fixed48               int
}

// apportion splits total into integer shares proportional to weights using
// the largest-remainder method. Zero-weight entries get zero.
func apportion(total int, weights []float64) []int {
	out := make([]int, len(weights))
	if total <= 0 || len(weights) == 0 {
		return out
	}
	sum := 0.0
	for _, w := range weights {
		if w > 0 {
			sum += w
		}
	}
	if sum <= 0 {
		return out
	}
	type frac struct {
		i int
		f float64
	}
	rem := total
	fracs := make([]frac, 0, len(weights))
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		exact := float64(total) * w / sum
		fl := int(exact)
		out[i] = fl
		rem -= fl
		fracs = append(fracs, frac{i, exact - float64(fl)})
	}
	sort.Slice(fracs, func(a, b int) bool {
		if fracs[a].f != fracs[b].f {
			return fracs[a].f > fracs[b].f
		}
		return fracs[a].i < fracs[b].i
	})
	for k := 0; k < rem && k < len(fracs); k++ {
		out[fracs[k].i]++
	}
	return out
}

// countryBudgets scales the paper's per-continent block census down by
// cfg.Scale and apportions it to countries: cellular blocks follow mobile
// subscriptions, fixed and demand-only blocks follow demand share.
func (g *generator) countryBudgets() map[string]blockBudget {
	out := make(map[string]blockBudget)
	db := g.cfg.Countries
	totalFixedWeight := 0.0
	for _, c := range db.All() {
		totalFixedWeight += c.DemandShare
	}
	for _, ct := range geo.Continents() {
		countries := db.ByContinent(ct)
		cb := continentBlocks[ct]
		subs := make([]float64, len(countries))
		dem := make([]float64, len(countries))
		v6subs := make([]float64, len(countries))
		for i, c := range countries {
			subs[i] = c.SubscribersM
			dem[i] = c.DemandShare
			if c.IPv6ASes > 0 {
				v6subs[i] = c.SubscribersM
			}
		}
		scale := func(n int) int { return int(float64(n)*g.cfg.Scale + 0.5) }
		cell24s := apportion(scale(cb.cell24), subs)
		fixed24s := apportion(scale(cb.active24-cb.cell24), dem)
		cell48s := apportion(scale(cb.cell48), v6subs)
		fixed48s := apportion(scale(cb.active48-cb.cell48), dem)
		for i, c := range countries {
			out[c.Code] = blockBudget{
				cell24:  cell24s[i],
				fixed24: fixed24s[i],
				cell48:  cell48s[i],
				fixed48: fixed48s[i],
			}
		}
	}
	// Demand-only blocks are global, apportioned by demand share.
	all := db.All()
	dem := make([]float64, len(all))
	for i, c := range all {
		dem[i] = c.DemandShare
	}
	extras := apportion(int(float64(DemandOnlyExtra24)*g.cfg.Scale+0.5), dem)
	for i, c := range all {
		b := out[c.Code]
		b.demandOnly24 = extras[i]
		out[c.Code] = b
	}
	return out
}

// next24Block hands out the next /24 block, skipping reserved space.
func (g *generator) next24Block() netaddr.Block {
	for {
		key := g.next24
		g.next24++
		first := byte(key >> 16)
		switch {
		case first == 0, first == 10, first == 127, first == 100,
			first == 169, first == 172, first == 192, first == 198,
			first == 203, first >= 224:
			// Skip space with reserved carve-outs entirely; the synthetic
			// Internet has room to spare.
			g.next24 = (uint64(first) + 1) << 16
			continue
		}
		return netaddr.Block{Fam: netaddr.IPv4, Key: key}
	}
}

// alloc24 hands out n consecutive-ish /24 blocks, skipping reserved space.
func (g *generator) alloc24(n int) []netaddr.Block {
	out := make([]netaddr.Block, 0, n)
	for len(out) < n {
		out = append(out, g.next24Block())
	}
	return out
}

// next48Block hands out the next /48 block under 2001::/16.
func (g *generator) next48Block() netaddr.Block {
	b := netaddr.Block{Fam: netaddr.IPv6, Key: g.next48}
	g.next48++
	return b
}

// alloc48 hands out n consecutive /48 blocks under 2001::/16.
func (g *generator) alloc48(n int) []netaddr.Block {
	out := make([]netaddr.Block, 0, n)
	for len(out) < n {
		out = append(out, g.next48Block())
	}
	return out
}

// newAS mints an AS and records it for the registry. The returned pointer
// is stable: operators keep it across fragment renumbering, so rewriting
// a.Number in absorb is visible everywhere the AS is referenced.
func (g *generator) newAS(name, cc string, role asn.Role) *asn.AS {
	a := &asn.AS{
		Number:  g.nextASN,
		Name:    name,
		Country: cc,
		Role:    role,
		Class:   asn.DefaultClassFor(role),
	}
	g.nextASN++
	g.ases = append(g.ases, a)
	return a
}

// addBlock registers a block with the world and its operator.
func (g *generator) addBlock(op *Operator, b BlockInfo) *BlockInfo {
	bi := &b
	bi.ASN = op.AS.Number
	if bi.Cellular {
		bi.RAT = op.RAT
	}
	op.Blocks = append(op.Blocks, bi)
	g.w.Blocks = append(g.w.Blocks, bi)
	if g.w.BlockIndex != nil {
		// Fragments carry no index: their placeholder keys are renumbered
		// at merge time, where the global index is built instead.
		g.w.BlockIndex[bi.Block] = bi
	}
	if bi.Cellular {
		op.CellDemand += bi.Demand
	} else {
		op.FixedDemand += bi.Demand
	}
	return bi
}

// genCountry builds all networks of one country.
func (g *generator) genCountry(c *geo.Country, budget blockBudget) {
	demand := c.DemandShare
	cellDemand := demand * c.CellFrac
	fixedTotal := demand - cellDemand

	// Non-cellular demand splits across consumer ISP service, enterprise
	// web presence, and beacon-less backend traffic.
	entDemand := fixedTotal * 0.10
	blDemand := fixedTotal * g.cfg.BeaconlessDemandShare
	ispFixedDemand := fixedTotal - entDemand - blDemand

	ops := g.genCellOperators(c, cellDemand, budget)

	// Mixed operators' ISP arms take 55% of consumer fixed demand.
	mixedOps := make([]*Operator, 0, len(ops))
	for _, op := range ops {
		if !op.Dedicated {
			mixedOps = append(mixedOps, op)
		}
	}
	mixedFixed := 0.0
	if len(mixedOps) > 0 {
		mixedFixed = ispFixedDemand * 0.55
	}
	fixedISPDemand := ispFixedDemand - mixedFixed

	// Fixed block budget split: mixed arms and fixed ISPs by demand,
	// enterprises get 18%, content hosting 6%.
	entBlocks := budget.fixed24 * 18 / 100
	contentBlocks := budget.fixed24 * 6 / 100
	ispBlocks := budget.fixed24 - entBlocks - contentBlocks

	nFixedISP := max(1, int(float64(c.CellASes)*1.2+0.5))
	mixedWeights := make([]float64, len(mixedOps))
	for i, op := range mixedOps {
		mixedWeights[i] = math.Sqrt(op.CellDemand + 1e-9)
	}
	mixedBlockShare := 0
	if len(mixedOps) > 0 {
		mixedBlockShare = ispBlocks * 55 / 100
	}
	mixedAlloc := apportion(mixedBlockShare, mixedWeights)
	mixedDemandAlloc := splitProportional(mixedFixed, mixedWeights)
	for i, op := range mixedOps {
		g.genFixedArm(op, c, mixedDemandAlloc[i], max(mixedAlloc[i], 2))
	}

	// Fixed-only ISPs.
	ispShares := traffic.ZipfWeights(nFixedISP, 1.0)
	ispBlockAlloc := apportion(ispBlocks-mixedBlockShare, ispShares)
	ispDemandAlloc := splitProportional(fixedISPDemand, ispShares)
	for i := 0; i < nFixedISP; i++ {
		op := &Operator{
			AS:      g.newAS(fmt.Sprintf("FixedNet-%s-%d", c.Code, i+1), c.Code, asn.RoleFixedISP),
			Country: c,
		}
		g.w.Operators = append(g.w.Operators, op)
		g.genFixedArm(op, c, ispDemandAlloc[i], max(ispBlockAlloc[i], 1))
	}

	// Fixed-line IPv6 deployments ride on the biggest fixed-capable ops.
	g.genFixedV6(c, budget.fixed48, mixedOps, fixedTotal)

	// Enterprise and content tail.
	g.genEnterprises(c, entDemand, blDemand, entBlocks, contentBlocks, budget.demandOnly24)
}

// splitProportional divides total across weights (which need not sum to 1).
func splitProportional(total float64, weights []float64) []float64 {
	out := make([]float64, len(weights))
	sum := 0.0
	for _, w := range weights {
		sum += w
	}
	if sum <= 0 {
		return out
	}
	for i, w := range weights {
		out[i] = total * w / sum
	}
	return out
}

// genCellOperators creates a country's cellular access ASes and their
// cellular address plans.
func (g *generator) genCellOperators(c *geo.Country, cellDemand float64, budget blockBudget) []*Operator {
	n := c.CellASes
	if n == 0 {
		return nil
	}
	shares, mixedFlags := g.operatorShares(c, n)

	// Apportion active cellular blocks sub-linearly in demand share so
	// small operators keep a footprint; every operator gets at least 2.
	weights := make([]float64, n)
	for i, s := range shares {
		weights[i] = math.Pow(s+1e-9, 0.7)
	}
	blockAlloc := apportion(budget.cell24, weights)
	v6Alloc := g.v6Alloc(c, budget.cell48, shares)

	ops := make([]*Operator, 0, n)
	for i := 0; i < n; i++ {
		role := asn.RoleMixedOperator
		kind := "MixedTel"
		if !mixedFlags[i] {
			role = asn.RoleDedicatedCellular
			kind = "MobileNet"
		}
		op := &Operator{
			AS:             g.newAS(fmt.Sprintf("%s-%s-%d", kind, c.Code, i+1), c.Code, role),
			Country:        c,
			Dedicated:      !mixedFlags[i],
			V6:             v6Alloc[i] > 0,
			PublicDNSShare: clamp01(c.PublicDNSShare * traffic.LogNormal(g.rng, 0, 0.2)),
		}
		op.RAT = ratProfileFor(op.AS.Name, op.Dedicated)
		g.w.Operators = append(g.w.Operators, op)
		g.w.CellOperators = append(g.w.CellOperators, op)
		g.genCellPlan(op, cellDemand*shares[i], max(blockAlloc[i], 2), v6Alloc[i], g.plan(op.Dedicated))
		ops = append(ops, op)
	}
	return ops
}

// operatorShares returns each cellular operator's share of country cellular
// demand and its mixed flag, honouring overrides.
func (g *generator) operatorShares(c *geo.Country, n int) (shares []float64, mixed []bool) {
	shares = make([]float64, n)
	mixed = make([]bool, n)
	forced := make([]bool, n) // mixed flag pinned by override
	ovs := g.cfg.Overrides[c.Code]
	if len(ovs) > n {
		ovs = ovs[:n]
	}
	used := 0.0
	for i, ov := range ovs {
		shares[i] = ov.Share
		mixed[i] = ov.Mixed
		forced[i] = true
		used += ov.Share
	}
	rest := n - len(ovs)
	if rest > 0 {
		tail := traffic.ZipfWeights(rest, 1.1)
		for i := range tail {
			tail[i] *= traffic.LogNormal(g.rng, 0, 0.15)
		}
		tailSum := 0.0
		for _, v := range tail {
			tailSum += v
		}
		remainder := math.Max(0, 1-used)
		for i, v := range tail {
			shares[len(ovs)+i] = remainder * v / tailSum
		}
	}
	// Fill mixed flags to hit the country's MixedShare. Rank 1 stays
	// dedicated, but large incumbents are often mixed (the paper's
	// Carrier A is a large mixed European provider), so even ranks take
	// the flag first, then the remaining bottom ranks.
	wantMixed := int(c.MixedShare*float64(n) + 0.5)
	have := 0
	for i := range mixed {
		if mixed[i] {
			have++
		}
	}
	for i := 1; i < n && have < wantMixed; i += 2 {
		if !forced[i] && !mixed[i] {
			mixed[i] = true
			have++
		}
	}
	for i := n - 1; i >= 1 && have < wantMixed; i-- {
		if !forced[i] && !mixed[i] {
			mixed[i] = true
			have++
		}
	}
	return shares, mixed
}

// v6Alloc distributes the country's cellular /48 budget to its first
// IPv6ASes operators, weighted by demand share.
func (g *generator) v6Alloc(c *geo.Country, cell48 int, shares []float64) []int {
	out := make([]int, len(shares))
	if c.IPv6ASes == 0 {
		return out
	}
	k := min(c.IPv6ASes, len(shares))
	w := make([]float64, len(shares))
	copy(w[:k], shares[:k])
	alloc := apportion(cell48, w)
	for i := 0; i < k; i++ {
		if alloc[i] == 0 {
			alloc[i] = 1 // a v6 deployment implies at least one /48
		}
	}
	return alloc
}

// planParams shapes one operator's cellular address plan.
type planParams struct {
	fwaFrac        float64 // fraction of active blocks serving LTE home broadband
	fwaDemandShare float64
	lowFactor      float64 // low-activity blocks per active block
	lowDemandShare float64
	idleFrac       float64 // idle fraction of total inventory (dedicated)
	heavyFrac      float64
	heavyShare     float64
	v6DemandShare  float64
}

// plan derives an operator's plan parameters from the config.
func (g *generator) plan(dedicated bool) planParams {
	cfg := g.cfg
	p := planParams{
		fwaFrac:        cfg.FWAFrac,
		fwaDemandShare: cfg.FWADemandShare,
		lowFactor:      cfg.LowActivityMixed,
		lowDemandShare: cfg.LowActivityDemandShare,
		heavyFrac:      cfg.HeavyFrac,
		heavyShare:     cfg.HeavyShare,
		v6DemandShare:  cfg.V6DemandShare,
	}
	if dedicated {
		// Dedicated MNOs keep nearly all demand on beacon-visible CGNAT
		// blocks (Carrier B's demand recall is 0.99) and sell little FWA,
		// keeping their measured cellular fraction of demand above the
		// paper's 0.9 dedication cut.
		p.fwaFrac = cfg.FWAFrac * 0.4
		p.fwaDemandShare = cfg.FWADemandShare * 0.25
		p.lowFactor = cfg.LowActivityDedicated
		p.lowDemandShare = cfg.LowActivityDemandShare * 0.1
		p.idleFrac = cfg.IdleDedicatedFrac
	}
	return p
}

// genCellPlan creates one operator's cellular address plan: CGNAT heavy
// hitters, FWA blocks at intermediate label rates, low-activity blocks, and
// (for dedicated operators) idle inventory.
func (g *generator) genCellPlan(op *Operator, cellDemand float64, nActive, nV6 int, p planParams) {
	v6Demand := 0.0
	if nV6 > 0 {
		v6Demand = cellDemand * p.v6DemandShare
	}
	v4Demand := cellDemand - v6Demand

	nFWA := 0
	if nActive >= 8 {
		nFWA = int(p.fwaFrac*float64(nActive) + 0.5)
	}
	nCGNAT := nActive - nFWA

	nLow := int(p.lowFactor*float64(nActive) + 0.5)

	lowDemand := v4Demand * p.lowDemandShare
	if nLow == 0 {
		lowDemand = 0
	}
	fwaDemand := 0.0
	if nFWA > 0 {
		fwaDemand = v4Demand * p.fwaDemandShare
	}
	cgnatDemand := v4Demand - lowDemand - fwaDemand

	blocks := g.alloc24(nActive + nLow)
	cgnatWeights := traffic.HeavySplit(g.rng, nCGNAT, max(1, int(p.heavyFrac*float64(nCGNAT)+0.5)), p.heavyShare)
	for i := 0; i < nCGNAT; i++ {
		g.addBlock(op, BlockInfo{
			Block:         blocks[i],
			Cellular:      true,
			WebActive:     true,
			Demand:        cgnatDemand * cgnatWeights[i],
			CellLabelProb: 1 - g.tetherRate(),
		})
	}
	fwaWeights := traffic.GradualSplit(g.rng, nFWA)
	for i := 0; i < nFWA; i++ {
		g.addBlock(op, BlockInfo{
			Block:         blocks[nCGNAT+i],
			Cellular:      true,
			WebActive:     true,
			Demand:        fwaDemand * fwaWeights[i],
			CellLabelProb: 0.55 + 0.30*g.rng.Float64(), // LTE home routers: wifi-heavy labels
		})
	}
	lowWeights := traffic.GradualSplit(g.rng, nLow)
	for i := 0; i < nLow; i++ {
		g.addBlock(op, BlockInfo{
			Block:         blocks[nActive+i],
			Cellular:      true,
			WebActive:     false, // demand without browsers: the FN source
			Demand:        lowDemand * lowWeights[i],
			CellLabelProb: 1 - g.tetherRate(),
		})
	}
	if p.idleFrac > 0 && p.idleFrac < 1 {
		nIdle := int(p.idleFrac / (1 - p.idleFrac) * float64(nActive+nLow))
		for _, b := range g.alloc24(nIdle) {
			g.addBlock(op, BlockInfo{Block: b, Cellular: false})
		}
	}
	if nV6 > 0 {
		v6Weights := traffic.HeavySplit(g.rng, nV6, max(1, int(p.heavyFrac*float64(nV6)+0.5)), p.heavyShare)
		for i, b := range g.alloc48(nV6) {
			g.addBlock(op, BlockInfo{
				Block:         b,
				Cellular:      true,
				WebActive:     true,
				Demand:        v6Demand * v6Weights[i],
				CellLabelProb: 1 - g.tetherRate(),
			})
		}
	}
}

// tetherRate draws a per-block hotspot/tethering rate: mostly small, with a
// tail so that not every cellular subnet exceeds the 0.9 ratio bucket.
func (g *generator) tetherRate() float64 {
	r := 0.02 + g.rng.ExpFloat64()*0.03
	if r > 0.30 {
		r = 0.30
	}
	return r
}

// genFixedArm creates a fixed-line consumer footprint on an operator.
func (g *generator) genFixedArm(op *Operator, c *geo.Country, demand float64, nBlocks int) {
	if nBlocks <= 0 {
		return
	}
	weights := traffic.GradualSplit(g.rng, nBlocks)
	blocks := g.alloc24(nBlocks)
	for i, b := range blocks {
		g.addBlock(op, BlockInfo{
			Block:         b,
			Cellular:      false,
			WebActive:     true,
			Demand:        demand * weights[i],
			CellLabelProb: netinfo.DefaultModel.SwitchRaceRate,
		})
	}
}

// genFixedV6 spreads the country's fixed /48 budget across its mixed
// operators (or, failing that, creates none — v6 census needs owners).
func (g *generator) genFixedV6(c *geo.Country, n int, mixedOps []*Operator, fixedTotal float64) {
	if n <= 0 || len(mixedOps) == 0 {
		return
	}
	demand := fixedTotal * 0.005 // v6 carried a sliver of fixed demand in 2016
	weights := make([]float64, len(mixedOps))
	for i, op := range mixedOps {
		weights[i] = op.FixedDemand + 1e-9
	}
	alloc := apportion(n, weights)
	demands := splitProportional(demand, weights)
	for i, op := range mixedOps {
		if alloc[i] == 0 {
			continue
		}
		w := traffic.GradualSplit(g.rng, alloc[i])
		for j, b := range g.alloc48(alloc[i]) {
			g.addBlock(op, BlockInfo{
				Block:         b,
				Cellular:      false,
				WebActive:     true,
				Demand:        demands[i] * w[j],
				CellLabelProb: netinfo.DefaultModel.SwitchRaceRate,
			})
		}
	}
}

// genEnterprises creates the enterprise/content tail of a country: web
// enterprises, content hosts, and beacon-less backend blocks.
func (g *generator) genEnterprises(c *geo.Country, entDemand, blDemand float64, entBlocks, contentBlocks, demandOnly int) {
	total := g.cfg.Countries.TotalDemandShare()
	nTail := int(float64(g.cfg.ASTail) * math.Sqrt(g.cfg.Scale) * c.DemandShare / total)
	if c.DemandShare > 0 && nTail < 1 {
		nTail = 1
	}
	if nTail == 0 {
		return
	}
	nContent := max(1, nTail/12)
	nEnt := nTail - nContent

	entWeights := traffic.ZipfWeights(nEnt, 0.9)
	entBlockAlloc := apportion(entBlocks, entWeights)
	entDemAlloc := splitProportional(entDemand, entWeights)
	blPerEnt := apportion(demandOnly*6/10, entWeights)
	blDemAlloc := splitProportional(blDemand*0.6, entWeights)
	for i := 0; i < nEnt; i++ {
		op := &Operator{
			AS:      g.newAS(fmt.Sprintf("Ent-%s-%d", c.Code, i+1), c.Code, asn.RoleEnterprise),
			Country: c,
		}
		g.w.Operators = append(g.w.Operators, op)
		g.genFixedArm(op, c, entDemAlloc[i], entBlockAlloc[i])
		g.genBeaconless(op, blDemAlloc[i], blPerEnt[i])
	}

	contentWeights := traffic.ZipfWeights(nContent, 1.0)
	cBlockAlloc := apportion(contentBlocks, contentWeights)
	cblAlloc := apportion(demandOnly*4/10, contentWeights)
	cDemAlloc := splitProportional(blDemand*0.4, contentWeights)
	for i := 0; i < nContent; i++ {
		op := &Operator{
			AS:      g.newAS(fmt.Sprintf("Host-%s-%d", c.Code, i+1), c.Code, asn.RoleContent),
			Country: c,
		}
		g.w.Operators = append(g.w.Operators, op)
		g.genFixedArm(op, c, cDemAlloc[i]*0.3, cBlockAlloc[i])
		g.genBeaconless(op, cDemAlloc[i]*0.7, cblAlloc[i])
	}
}

// genBeaconless adds demand-only blocks (no browser traffic) to an operator.
func (g *generator) genBeaconless(op *Operator, demand float64, n int) {
	if n <= 0 {
		return
	}
	weights := traffic.GradualSplit(g.rng, n)
	for i, b := range g.alloc24(n) {
		g.addBlock(op, BlockInfo{
			Block:         b,
			Cellular:      false,
			WebActive:     false,
			Demand:        demand * weights[i],
			CellLabelProb: 0,
		})
	}
}

// clamp01 clamps v into [0,1].
func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
