package world

import (
	"fmt"
	"math/rand/v2"

	"cellspot/internal/asn"
	"cellspot/internal/netaddr"
	"cellspot/internal/traffic"
)

// CaseStudyConfig parameterizes the three-carrier validation world.
type CaseStudyConfig struct {
	Seed uint64
}

// GenerateCaseStudy builds a paper-scale world containing only the three
// validation carriers of §4.2 plus a demand filler, so Table 3, Fig 3,
// Fig 6 and Fig 8 reproduce at the paper's absolute block counts without
// paying for a full-scale global world:
//
//   - Carrier A — large mixed European operator: 514 active cellular /24s
//     (24 CGNAT heavy hitters carrying 99.3%+ of cellular demand), ~4.6k
//     low-activity cellular blocks, ~89.6k fixed-line blocks.
//   - Carrier B — large dedicated U.S. MNO: ~2.97k cellular blocks, almost
//     all beacon-visible, plus ~2k idle inventory blocks (Fig 6a's 40%
//     zero-ratio space).
//   - Carrier C — large mixed Middle-East MNO: ~0.5k cellular blocks and
//     ~3k fixed blocks.
//
// Demand is denominated directly in Demand Units: the filler absorbs the
// rest of the platform's 100,000 DU so each carrier's absolute DU matches
// Table 3.
func GenerateCaseStudy(cs CaseStudyConfig) (*World, error) {
	cfg := DefaultConfig()
	cfg.Seed = cs.Seed
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &generator{
		cfg:     cfg,
		rng:     rand.New(rand.NewPCG(cs.Seed, 0xc0ffee_cafe)),
		nextASN: 64512,
		next24:  uint64(1) << 16,
		next48:  0x2001_0000_0000,
		w: &World{
			Config:     cfg,
			Countries:  cfg.Countries,
			BlockIndex: make(map[netaddr.Block]*BlockInfo),
			Affinity:   make(map[netaddr.Block][]ResolverWeight),
		},
		duUnit: 1, // demand is denominated directly in DU
	}

	fr, ok := cfg.Countries.Lookup("FR")
	if !ok {
		return nil, fmt.Errorf("world: case study needs FR in the country table")
	}
	us, ok := cfg.Countries.Lookup("US")
	if !ok {
		return nil, fmt.Errorf("world: case study needs US in the country table")
	}
	sa, ok := cfg.Countries.Lookup("SA")
	if !ok {
		return nil, fmt.Errorf("world: case study needs SA in the country table")
	}

	// Carrier A: mixed European. Cellular 86.2 DU over 514 active + 4,608
	// low-activity blocks; fixed 1,306 DU over 89,553 blocks, 16 of which
	// are tether-heavy false-positive sources worth 0.142 DU.
	a := &Operator{
		AS:             g.newAS("CarrierA-MixedEU", fr.Code, asn.RoleMixedOperator),
		Country:        fr,
		PublicDNSShare: fr.PublicDNSShare,
	}
	g.w.Operators = append(g.w.Operators, a)
	g.w.CellOperators = append(g.w.CellOperators, a)
	g.genCellPlan(a, 86.2, 514, 0, planParams{
		// Carrier A's demand concentrates almost entirely behind its CGNAT
		// head (Fig 8: demand drops ~two orders of magnitude after the top
		// 24 blocks), so its FWA footprint is marginal.
		fwaFrac: 0.012, fwaDemandShare: 0.0005,
		lowFactor: 8.96, lowDemandShare: 0.176,
		heavyFrac: 24.0 / 490.0, heavyShare: 0.995,
	})
	g.genFixedArm(a, fr, 1306.36, 89537)
	g.addTetherHeavy(a, 16, 0.142)

	// Carrier B: dedicated U.S. MNO. 46 DU over 2,937 active blocks, 35
	// low-activity blocks (0.016 DU), ~2k idle blocks.
	b := &Operator{
		AS:             g.newAS("CarrierB-DedicatedUS", us.Code, asn.RoleDedicatedCellular),
		Country:        us,
		Dedicated:      true,
		PublicDNSShare: us.PublicDNSShare,
	}
	g.w.Operators = append(g.w.Operators, b)
	g.w.CellOperators = append(g.w.CellOperators, b)
	g.genCellPlan(b, 46.03, 2937, 0, planParams{
		fwaFrac: 0, fwaDemandShare: 0,
		lowFactor: 35.0 / 2937.0, lowDemandShare: 0.016 / 46.03,
		idleFrac:  0.40,
		heavyFrac: 0.02, heavyShare: 0.97,
	})

	// Carrier C: mixed Middle-East MNO. 10.94 DU cellular over 420 active
	// + 78 low-activity blocks; 43 DU fixed over 3,049 blocks, 5 of them
	// tether-heavy (0.17 DU).
	c := &Operator{
		AS:             g.newAS("CarrierC-MixedME", sa.Code, asn.RoleMixedOperator),
		Country:        sa,
		PublicDNSShare: sa.PublicDNSShare,
	}
	g.w.Operators = append(g.w.Operators, c)
	g.w.CellOperators = append(g.w.CellOperators, c)
	g.genCellPlan(c, 10.94, 420, 0, planParams{
		fwaFrac: 0.12, fwaDemandShare: 0.02,
		lowFactor: 78.0 / 420.0, lowDemandShare: 0.15 / 10.94,
		heavyFrac: 0.05, heavyShare: 0.99,
	})
	g.genFixedArm(c, sa, 42.85, 3044)
	g.addTetherHeavy(c, 5, 0.17)

	// Filler: the rest of the platform's demand, beacon-less so the three
	// carriers own the entire BEACON dataset.
	filler := &Operator{
		AS:      g.newAS("RestOfPlatform", "US", asn.RoleContent),
		Country: us,
	}
	g.w.Operators = append(g.w.Operators, filler)
	used := 0.0
	for _, bi := range g.w.Blocks {
		used += bi.Demand
	}
	g.genBeaconless(filler, 100000-used, 2000)

	reg, err := g.registry()
	if err != nil {
		return nil, err
	}
	g.w.Registry = reg
	g.w.Snapshot = asn.BuildSnapshot(reg)
	g.genResolvers()

	g.w.CarrierA, g.w.CarrierB, g.w.CarrierC = a, b, c
	total := 0.0
	for _, bi := range g.w.Blocks {
		total += bi.Demand
	}
	g.w.TotalDemand = total
	return g.w, nil
}

// addTetherHeavy appends fixed-line blocks whose beacon labels skew
// cellular (offices full of tethered laptops): the false-positive sources
// in the carriers' ground truth.
func (g *generator) addTetherHeavy(op *Operator, n int, totalDemand float64) {
	weights := traffic.GradualSplit(g.rng, n)
	for i, b := range g.alloc24(n) {
		g.addBlock(op, BlockInfo{
			Block:         b,
			Cellular:      false,
			WebActive:     true,
			Demand:        totalDemand * weights[i],
			CellLabelProb: 0.65 + 0.2*g.rng.Float64(),
		})
	}
}
