package live

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cellspot/internal/aschar"
	"cellspot/internal/beacon"
	"cellspot/internal/logio"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/obs"
	"cellspot/internal/pipeline"
	"cellspot/internal/snapshot"
	"cellspot/internal/world"
)

// --- fixtures ---------------------------------------------------------

// testFixture is a small world with pipeline-derived side inputs (demand,
// BGP-style AS mapping, CAIDA-style snapshot rules) and a beacon record
// stream: the full measurement context a live deployment would have.
type testFixture struct {
	World   *world.World
	Inputs  MapInputs
	Records []beacon.Record
}

func newFixture(t testing.TB, totalHits int) *testFixture {
	t.Helper()
	wcfg := world.DefaultConfig()
	wcfg.Scale = 0.0005
	// Noise networks don't scale with the world; trim them so they don't
	// dominate a tiny Internet (same trim as examples/live-collector).
	wcfg.StrayASes, wcfg.IoTASes, wcfg.ProxyASes = 20, 3, 3
	w, err := world.Generate(wcfg)
	if err != nil {
		t.Fatal(err)
	}

	pcfg := pipeline.DefaultConfig()
	pcfg.World = wcfg
	pcfg.Beacon.TotalHits = 100_000
	pcfg.Beacon.BaseHits = 8
	r, err := pipeline.RunOnWorld(w, pcfg)
	if err != nil {
		t.Fatal(err)
	}

	rules := aschar.DefaultRules(w.Snapshot)
	// The paper's absolute thresholds assume 25M monthly responses; scale
	// them down to the test stream so the filter still bites without
	// wiping out every AS.
	rules.MinHits = 50
	rules.MinCellDU = 0.01

	bcfg := beacon.DefaultGenConfig()
	bcfg.TotalHits = totalHits
	bcfg.BaseHits = 8
	seq, err := beacon.Stream(w, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	var records []beacon.Record
	for rec := range seq {
		records = append(records, rec)
	}

	return &testFixture{
		World: w,
		Inputs: MapInputs{
			Demand:    r.Demand,
			Rules:     rules,
			ASOf:      r.ASOf,
			CountryOf: r.CountryOf,
		},
		Records: records,
	}
}

// writeShards writes records as manually sealed spool shards, nShards of
// roughly equal size, optionally gzipped — the state a beacond spool is in
// after that many rotations.
func writeShards(t testing.TB, dir string, startShard int, records []beacon.Record, nShards int, gzipped bool) {
	t.Helper()
	per := (len(records) + nShards - 1) / nShards
	for s := 0; s < nShards; s++ {
		lo, hi := s*per, min((s+1)*per, len(records))
		if lo >= hi {
			break
		}
		ext := ".jsonl"
		if gzipped {
			ext += ".gz"
		}
		fw, err := logio.Create(filepath.Join(dir, fmt.Sprintf("beacon-%04d%s", startShard+s, ext)))
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range records[lo:hi] {
			if err := fw.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func mustOpenStore(t testing.TB) *snapshot.Store {
	t.Helper()
	s, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// --- window -----------------------------------------------------------

func recAt(day int64, ip string, conn string) beacon.Record {
	return beacon.Record{
		Time: time.Unix(day*secondsPerDay+3600, 0).UTC(),
		IP:   netip.MustParseAddr(ip),
		Conn: conn,
	}
}

func TestWindowSlidesAndPrunes(t *testing.T) {
	cell := netinfo.ConnCellular.String()
	w := NewWindow(3)
	w.Add(recAt(100, "10.0.0.1", cell))
	w.Add(recAt(101, "10.0.1.1", cell))
	w.Add(recAt(102, "10.0.2.1", cell))
	if w.Records() != 3 {
		t.Fatalf("records = %d, want 3", w.Records())
	}
	if got := w.Period(); got != "live:1970-04-11..1970-04-13" {
		t.Fatalf("period = %q", got)
	}
	// Day 104 evicts days 100 and 101.
	w.Add(recAt(104, "10.0.4.1", cell))
	if w.Records() != 2 || w.Stale() != 2 {
		t.Fatalf("after slide: records=%d stale=%d, want 2/2", w.Records(), w.Stale())
	}
	// A record older than the window is dropped on arrival.
	if w.Add(recAt(101, "10.0.1.2", cell)) {
		t.Fatal("stale record accepted")
	}
	agg := w.Merged()
	if agg.Blocks() != 2 {
		t.Fatalf("merged blocks = %d, want 2", agg.Blocks())
	}
	if c := agg.PerBlock[netaddr.V4Block(10, 0, 2)]; c == nil || c.Hits != 1 || c.Cell != 1 {
		t.Fatalf("day-102 block counts = %+v", c)
	}
	if c := agg.PerBlock[netaddr.V4Block(10, 0, 0)]; c != nil {
		t.Fatal("evicted day's block survived into Merged")
	}
}

// TestWindowOrderIndependence: the merged aggregate over the final window
// must not depend on record arrival order.
func TestWindowOrderIndependence(t *testing.T) {
	cell := netinfo.ConnCellular.String()
	records := []beacon.Record{
		recAt(200, "10.1.0.1", cell), // will fall out of the window
		recAt(205, "10.1.5.1", cell),
		recAt(203, "10.1.3.1", ""),
		recAt(207, "10.1.7.1", cell),
		recAt(201, "10.1.1.1", cell), // stale on some orders, pruned on others
		recAt(206, "10.1.6.1", cell),
	}
	perms := [][]int{{0, 1, 2, 3, 4, 5}, {3, 4, 5, 0, 1, 2}, {5, 4, 3, 2, 1, 0}, {2, 0, 3, 1, 5, 4}}
	var want map[netaddr.Block]beacon.Counts
	for pi, perm := range perms {
		w := NewWindow(3)
		for _, i := range perm {
			w.Add(records[i])
		}
		got := make(map[netaddr.Block]beacon.Counts)
		for b, c := range w.Merged().PerBlock {
			got[b] = *c
		}
		if pi == 0 {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("perm %d: %d blocks, want %d", pi, len(got), len(want))
		}
		for b, c := range want {
			if got[b] != c {
				t.Fatalf("perm %d: block %v = %+v, want %+v", pi, b, got[b], c)
			}
		}
	}
}

// --- tailer -----------------------------------------------------------

func TestTailerPlainIncrementalAndPartialLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl")
	line1 := `{"ts":"2016-12-01T00:00:00Z","ip":"10.0.0.1","conn":"cellular"}` + "\n"
	line2 := `{"ts":"2016-12-01T01:00:00Z","ip":"10.0.1.1","conn":"wifi"}` + "\n"
	// First flush ends mid-record.
	if err := os.WriteFile(path, []byte(line1+line2[:20]), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, "beacon")
	var got []string
	poll := func() int {
		n, err := tl.Poll(func(r beacon.Record) { got = append(got, r.IP.String()) })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	if n := poll(); n != 1 {
		t.Fatalf("poll 1 consumed %d, want 1 (partial line must stay pending)", n)
	}
	// Complete the torn line.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(line2[20:]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if n := poll(); n != 1 {
		t.Fatalf("poll 2 consumed %d, want 1", n)
	}
	if len(got) != 2 || got[0] != "10.0.0.1" || got[1] != "10.0.1.1" {
		t.Fatalf("records = %v", got)
	}
	// Nothing new: no consumption, no error.
	if n := poll(); n != 0 {
		t.Fatalf("idle poll consumed %d", n)
	}
	if tl.Bad() != 0 {
		t.Fatalf("bad lines = %d", tl.Bad())
	}
}

func TestTailerSkipsMalformedCountsBad(t *testing.T) {
	dir := t.TempDir()
	content := `{"ts":"2016-12-01T00:00:00Z","ip":"10.0.0.1"}` + "\n" +
		"this is not json\n" +
		`{"ts":"2016-12-01T00:00:01Z","ip":"10.0.0.2"}` + "\n"
	if err := os.WriteFile(filepath.Join(dir, "beacon-0000.jsonl"), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, "beacon")
	n, err := tl.Poll(func(beacon.Record) {})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || tl.Bad() != 1 {
		t.Fatalf("consumed %d bad %d, want 2/1", n, tl.Bad())
	}
}

func TestTailerMissingDirIsEmpty(t *testing.T) {
	tl := NewTailer(filepath.Join(t.TempDir(), "does-not-exist"), "beacon")
	n, err := tl.Poll(func(beacon.Record) { t.Fatal("record from nowhere") })
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestTailerGzipTruncatedThenSealed(t *testing.T) {
	dir := t.TempDir()
	recs := []beacon.Record{
		{Time: time.Unix(1480550400, 0).UTC(), IP: netip.MustParseAddr("10.2.0.1"), Conn: "cellular"},
		{Time: time.Unix(1480550401, 0).UTC(), IP: netip.MustParseAddr("10.2.1.1"), Conn: "wifi"},
		{Time: time.Unix(1480550402, 0).UTC(), IP: netip.MustParseAddr("10.2.2.1"), Conn: "cellular"},
	}
	// Build the complete gzip shard in a scratch dir, then replay a
	// truncated prefix of it — the on-disk state while beacond is still
	// writing — followed by the full file.
	scratch := filepath.Join(t.TempDir(), "full.jsonl.gz")
	fw, err := logio.Create(scratch)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := fw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(scratch)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(dir, "beacon-0000.jsonl.gz")
	if err := os.WriteFile(path, full[:len(full)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, "beacon")
	var got []string
	poll := func() int {
		n, err := tl.Poll(func(r beacon.Record) { got = append(got, r.IP.String()) })
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	n1 := poll()
	// A truncated deflate stream may yield 0..2 complete records; it must
	// not error and must not fabricate records.
	if n1 > 2 {
		t.Fatalf("truncated poll consumed %d", n1)
	}
	if err := os.WriteFile(path, full, 0o644); err != nil {
		t.Fatal(err)
	}
	n2 := poll()
	if n1+n2 != len(recs) {
		t.Fatalf("polls consumed %d+%d, want %d total", n1, n2, len(recs))
	}
	want := []string{"10.2.0.1", "10.2.1.1", "10.2.2.1"}
	for i, ip := range want {
		if got[i] != ip {
			t.Fatalf("records = %v, want %v (no dupes, no gaps)", got, want)
		}
	}
	// Unchanged sealed file: skipped without re-decoding.
	if n := poll(); n != 0 {
		t.Fatalf("sealed re-poll consumed %d", n)
	}
}

// --- updater ----------------------------------------------------------

// TestLiveOfflineEquivalence replays a spool through the live path (tailer
// → window → BuildMap via a full Updater publish) and rebuilds offline from
// the same records over the same window; the two maps must serialize to
// identical bytes. Covers plain and gzip spools.
func TestLiveOfflineEquivalence(t *testing.T) {
	fx := newFixture(t, 60_000)
	for _, gzipped := range []bool{false, true} {
		name := "plain"
		if gzipped {
			name = "gzip"
		}
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			writeShards(t, dir, 0, fx.Records, 6, gzipped)
			store := mustOpenStore(t)
			u, err := NewUpdater(Config{
				SpoolDir: dir,
				Inputs:   fx.Inputs,
				Store:    store,
				Metrics:  obs.NewRegistry(),
			})
			if err != nil {
				t.Fatal(err)
			}
			res, err := u.Tick()
			if err != nil {
				t.Fatal(err)
			}
			if !res.Published {
				t.Fatal("tick over a full spool did not publish")
			}
			if res.NewRecords != len(fx.Records) {
				t.Fatalf("consumed %d records, want %d", res.NewRecords, len(fx.Records))
			}
			liveBytes, err := os.ReadFile(res.Generation.Path(MapFile))
			if err != nil {
				t.Fatal(err)
			}

			// Offline rebuild over the same window: records of the final
			// 7 days, aggregated directly.
			var maxDay int64
			for _, rec := range fx.Records {
				if d := epochDay(rec.Time); d > maxDay {
					maxDay = d
				}
			}
			agg := beacon.NewAggregate()
			inWindow := 0
			for _, rec := range fx.Records {
				if epochDay(rec.Time) > maxDay-DefaultWindowDays {
					agg.AddRecord(rec)
					inWindow++
				}
			}
			if res.WindowRecords != inWindow {
				t.Fatalf("window has %d records, offline window has %d", res.WindowRecords, inWindow)
			}
			day := func(d int64) string {
				return time.Unix(d*secondsPerDay, 0).UTC().Format("2006-01-02")
			}
			period := fmt.Sprintf("live:%s..%s", day(maxDay-DefaultWindowDays+1), day(maxDay))
			m, err := BuildMap(agg, u.cfg.Threshold, period, fx.Inputs)
			if err != nil {
				t.Fatal(err)
			}
			if m.Len() == 0 {
				t.Fatal("offline map is empty; the equivalence is vacuous")
			}
			var buf bytes.Buffer
			if err := m.Write(&buf); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(liveBytes, buf.Bytes()) {
				t.Fatalf("live map (%d bytes) differs from offline build (%d bytes)",
					len(liveBytes), buf.Len())
			}
		})
	}
}

// TestCheckpointRecovery restarts the updater mid-stream: the recovered
// updater must consume only the new shard and publish the same map a
// scratch updater over the whole spool does.
func TestCheckpointRecovery(t *testing.T) {
	fx := newFixture(t, 40_000)
	half := len(fx.Records) / 2
	dir := t.TempDir()
	store := mustOpenStore(t)

	writeShards(t, dir, 0, fx.Records[:half], 2, false)
	u1, err := NewUpdater(Config{SpoolDir: dir, Inputs: fx.Inputs, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := u1.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Published || res1.NewRecords != half {
		t.Fatalf("first tick: %+v", res1)
	}

	// The collector rotates on; the updater process restarts.
	writeShards(t, dir, 2, fx.Records[half:], 2, false)
	u2, err := NewUpdater(Config{SpoolDir: dir, Inputs: fx.Inputs, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := u2.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Published {
		t.Fatal("post-recovery tick did not publish")
	}
	if res2.Generation.Seq != res1.Generation.Seq+1 {
		t.Fatalf("generation %d, want %d", res2.Generation.Seq, res1.Generation.Seq+1)
	}
	if res2.NewRecords != len(fx.Records)-half {
		t.Fatalf("recovered updater consumed %d records, want only the %d new ones (no spool re-read)",
			res2.NewRecords, len(fx.Records)-half)
	}

	// A scratch updater over the full spool must produce identical bytes.
	scratchDir := t.TempDir()
	writeShards(t, scratchDir, 0, fx.Records, 4, false)
	scratchStore := mustOpenStore(t)
	u3, err := NewUpdater(Config{SpoolDir: scratchDir, Inputs: fx.Inputs, Store: scratchStore})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := u3.Tick()
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(res2.Generation.Path(MapFile))
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(res3.Generation.Path(MapFile))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("recovered updater's map differs from a from-scratch build")
	}
}

// TestIdleTickDoesNotRepublish: no new records → no new generation.
func TestIdleTickDoesNotRepublish(t *testing.T) {
	fx := newFixture(t, 20_000)
	dir := t.TempDir()
	writeShards(t, dir, 0, fx.Records, 2, false)
	store := mustOpenStore(t)
	u, err := NewUpdater(Config{SpoolDir: dir, Inputs: fx.Inputs, Store: store})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := u.Tick()
	if err != nil || !res1.Published {
		t.Fatalf("first tick: %+v err=%v", res1, err)
	}
	res2, err := u.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if res2.Published {
		t.Fatal("idle tick republished")
	}
	cur, ok, err := store.Current()
	if err != nil || !ok || cur.Seq != res1.Generation.Seq {
		t.Fatalf("current generation moved: %+v ok=%v err=%v", cur, ok, err)
	}
}

// TestFirstTickOnEmptySpoolPublishesEmptyGeneration: a serving stack needs
// a generation to load even before the first beacon arrives.
func TestFirstTickOnEmptySpoolPublishesEmptyGeneration(t *testing.T) {
	store := mustOpenStore(t)
	u, err := NewUpdater(Config{
		SpoolDir: t.TempDir(),
		Inputs:   MapInputs{ASOf: func(netaddr.Block) (uint32, bool) { return 0, false }},
		Store:    store,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Published || res.Entries != 0 {
		t.Fatalf("bootstrap tick: %+v", res)
	}
	m, err := ReadGenerationMap(res.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 || m.Period != "live:empty" {
		t.Fatalf("bootstrap map: len=%d period=%q", m.Len(), m.Period)
	}
}

// TestBuildMapAppliesASFilter: detected blocks in an AS that fails the
// filter rules must not be published.
func TestBuildMapAppliesASFilter(t *testing.T) {
	agg := beacon.NewAggregate()
	big := netaddr.V4Block(10, 0, 0)
	small := netaddr.V4Block(10, 1, 0)
	agg.Add(big, 200, 200, 200)  // AS 100: plenty of hits, fully cellular
	agg.Add(small, 20, 20, 20)   // AS 200: cellular but under MinHits
	asOf := func(b netaddr.Block) (uint32, bool) {
		if b == big {
			return 100, true
		}
		return 200, true
	}
	m, err := BuildMap(agg, 0.5, "test", MapInputs{
		Rules: aschar.Rules{MinHits: 100},
		ASOf:  asOf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 1 {
		t.Fatalf("map has %d entries, want 1", m.Len())
	}
	if e := m.Entries()[0]; e.ASN != 100 {
		t.Fatalf("surviving entry ASN = %d, want 100", e.ASN)
	}
	if _, ok := m.Lookup(netip.MustParseAddr("10.1.0.5")); ok {
		t.Fatal("filtered AS's block is still published")
	}
}

// TestUpdaterMetrics: one tick populates the live_* families.
func TestUpdaterMetrics(t *testing.T) {
	fx := newFixture(t, 20_000)
	dir := t.TempDir()
	writeShards(t, dir, 0, fx.Records, 2, false)
	reg := obs.NewRegistry()
	store := mustOpenStore(t)
	u, err := NewUpdater(Config{SpoolDir: dir, Inputs: fx.Inputs, Store: store, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := u.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("live_tailed_records_total", "").Value(); v != uint64(len(fx.Records)) {
		t.Fatalf("live_tailed_records_total = %d, want %d", v, len(fx.Records))
	}
	if v := reg.Gauge("live_window_records", "").Value(); v != int64(res.WindowRecords) {
		t.Fatalf("live_window_records = %d, want %d", v, res.WindowRecords)
	}
	if v := reg.Counter("live_publish_total", "").Value(); v != 1 {
		t.Fatalf("live_publish_total = %d, want 1", v)
	}
	if v := reg.Counter("live_refresh_total", "").Value(); v != 1 {
		t.Fatalf("live_refresh_total = %d, want 1", v)
	}
	stale := reg.Counter("live_stale_records_total", "").Value()
	if int(stale)+res.WindowRecords != len(fx.Records) {
		t.Fatalf("stale (%d) + window (%d) != tailed (%d)", stale, res.WindowRecords, len(fx.Records))
	}
	if h := reg.Histogram("live_refresh_seconds", "", nil); h.Count() != 1 {
		t.Fatalf("live_refresh_seconds count = %d, want 1", h.Count())
	}
}
