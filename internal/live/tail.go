package live

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"

	"cellspot/internal/beacon"
	"cellspot/internal/logio"
)

// FilePos is the tailer's durable position in one spool file.
//
// Plain .jsonl files advance by byte offset: the next poll seeks straight
// past what was already consumed. Gzip members cannot be re-entered at a
// byte offset, so .gz files advance by complete-line count and are
// re-decoded from the start when (and only when) the file has grown.
type FilePos struct {
	// Bytes is the consumed byte offset (plain files only).
	Bytes int64 `json:"bytes,omitempty"`
	// Lines is the number of complete lines consumed.
	Lines int `json:"lines"`
	// Size is the file size at the end of the last poll, used to skip
	// re-decoding gzip files that have not grown.
	Size int64 `json:"size"`
}

// Tailer incrementally reads a beacond spool directory: each Poll consumes
// the records appended since the previous one, across shard rotations, in
// shard order. Only newline-terminated lines are consumed — a partially
// flushed last line stays pending until its terminator arrives, so a tick
// that races beacond's writer never sees a torn record.
type Tailer struct {
	dir      string
	prefix   string
	pos      map[string]*FilePos // keyed by file base name
	bad      int                 // malformed complete lines skipped
	resets   int                 // spool files found truncated/rewritten
	oversize int                 // complete lines skipped as over logio.MaxLineBytes
}

// NewTailer returns a tailer over dir for spool files named
// <prefix>-NNNN.jsonl[.gz], starting at the beginning of the spool.
func NewTailer(dir, prefix string) *Tailer {
	return &Tailer{dir: dir, prefix: prefix, pos: make(map[string]*FilePos)}
}

// Bad returns the number of malformed complete lines skipped so far.
func (t *Tailer) Bad() int { return t.bad }

// Resets returns how many times a spool file was found truncated or
// rewritten (its size shrank below the tailer's checkpoint), forcing a
// re-read from the start of the file.
func (t *Tailer) Resets() int { return t.resets }

// Oversize returns the number of complete lines skipped because they
// exceeded logio.MaxLineBytes.
func (t *Tailer) Oversize() int { return t.oversize }

// Positions returns a copy of the per-file positions, for checkpointing.
func (t *Tailer) Positions() map[string]FilePos {
	out := make(map[string]FilePos, len(t.pos))
	for name, p := range t.pos {
		out[name] = *p
	}
	return out
}

// Restore replaces the tailer's positions, resuming from a checkpoint.
func (t *Tailer) Restore(pos map[string]FilePos) {
	t.pos = make(map[string]*FilePos, len(pos))
	for name, p := range pos {
		cp := p
		t.pos[name] = &cp
	}
}

// Poll consumes every record appended to the spool since the last poll,
// invoking fn per record, and returns how many records it consumed. A
// missing spool directory is an empty spool, not an error (the collector
// may simply not have started yet).
func (t *Tailer) Poll(fn func(beacon.Record)) (int, error) {
	files, err := logio.SpoolFiles(t.dir, t.prefix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil
		}
		return 0, err
	}
	total := 0
	for _, path := range files {
		base := filepath.Base(path)
		p := t.pos[base]
		if p == nil {
			p = &FilePos{}
			t.pos[base] = p
		}
		var n int
		var err error
		if strings.HasSuffix(base, ".gz") {
			n, err = t.pollGzip(path, p, fn)
		} else {
			n, err = t.pollPlain(path, p, fn)
		}
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// readLine reads one newline-terminated line from br, never buffering more
// than logio.MaxLineBytes: bytes of a line beyond the cap are discarded as
// they stream by. It returns the line (nil when oversize), the byte count
// consumed including the terminator, whether the line was oversize, and any
// read error. On error the line is incomplete and must not be consumed.
func readLine(br *bufio.Reader) (line []byte, n int64, oversize bool, err error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		n += int64(len(chunk))
		if !oversize {
			if len(buf)+len(chunk) > logio.MaxLineBytes {
				oversize = true
				buf = nil
			} else {
				buf = append(buf, chunk...)
			}
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return nil, n, oversize, err
		}
		return buf, n, oversize, nil
	}
}

// pollPlain seeks past the consumed prefix of a plain JSONL file and
// decodes newly terminated lines.
func (t *Tailer) pollPlain(path string, p *FilePos, fn func(beacon.Record)) (int, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() < p.Bytes {
		// The file shrank below our checkpoint: it was truncated or
		// rewritten in place. The old offset points into the middle of
		// whatever replaced the content (or past its end), so seeking
		// there would decode torn records. Start over.
		t.resets++
		*p = FilePos{}
	}
	if fi.Size() <= p.Bytes {
		p.Size = fi.Size()
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if _, err := f.Seek(p.Bytes, io.SeekStart); err != nil {
		return 0, err
	}
	br := bufio.NewReaderSize(f, 64<<10)
	n := 0
	for {
		line, nb, oversize, err := readLine(br)
		if err != nil {
			// io.EOF with a partial line: leave it unconsumed; any other
			// read error likewise retries from the same offset next poll.
			if errors.Is(err, io.EOF) {
				err = nil
			}
			p.Size = fi.Size()
			return n, err
		}
		p.Bytes += nb
		p.Lines++
		if oversize {
			t.oversize++
			continue
		}
		if rec, ok := t.decode(line); ok {
			fn(rec)
			n++
		}
	}
}

// pollGzip re-decodes a gzip spool file from the start, skipping the lines
// consumed by earlier polls. Truncation errors mean the file is still being
// written (beacond seals the gzip stream only on rotation or shutdown);
// progress made so far is kept and the rest retried next poll. Any other
// error — corruption, transient disk I/O — leaves the position untouched so
// the next poll retries instead of silently abandoning unread records.
func (t *Tailer) pollGzip(path string, p *FilePos, fn func(beacon.Record)) (int, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	if fi.Size() < p.Size {
		// Rewritten with less content: the consumed line count no longer
		// describes this file. Re-read it from scratch.
		t.resets++
		*p = FilePos{}
	}
	if fi.Size() == p.Size {
		return 0, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	zr, err := gzip.NewReader(f)
	if err != nil {
		if isTruncation(err) {
			// Header not flushed yet; nothing to read.
			return 0, nil
		}
		return 0, err
	}
	defer zr.Close()
	br := bufio.NewReaderSize(zr, 64<<10)
	skip := p.Lines
	n := 0
	for {
		line, _, oversize, err := readLine(br)
		if err != nil {
			if isTruncation(err) {
				// Clean EOF or a truncated deflate stream mid-write: the
				// complete lines we decoded are consumed for good, and
				// recording the size skips re-decoding until the file grows.
				p.Size = fi.Size()
				return n, nil
			}
			// Not truncation: a later poll may still be able to read the
			// rest (transient I/O fault, or a writer completing in place at
			// the same size). Leave p.Size behind fi.Size() so it retries.
			return n, err
		}
		if skip > 0 {
			skip--
			continue
		}
		p.Lines++
		if oversize {
			t.oversize++
			continue
		}
		if rec, ok := t.decode(line); ok {
			fn(rec)
			n++
		}
	}
}

// isTruncation reports whether a gzip-path read error means "the writer has
// not finished this stream yet" — the expected state of a spool shard that
// is still being written — as opposed to corruption or an I/O fault.
func isTruncation(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// decode parses one complete line; blank or malformed lines are skipped
// (and counted), matching logio's lenient read semantics.
func (t *Tailer) decode(line []byte) (beacon.Record, bool) {
	raw := bytes.TrimSpace(line)
	if len(raw) == 0 {
		return beacon.Record{}, false
	}
	var rec beacon.Record
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.bad++
		return beacon.Record{}, false
	}
	return rec, true
}
