package live

import (
	"fmt"
	"time"

	"cellspot/internal/beacon"
)

// DefaultWindowDays matches the paper's seven-day DEMAND smoothing window.
const DefaultWindowDays = 7

// secondsPerDay converts record timestamps to epoch-day bucket keys.
const secondsPerDay = 86400

// epochDay returns the UTC day number a timestamp falls in.
func epochDay(t time.Time) int64 {
	s := t.Unix()
	// Floor division, so pre-1970 timestamps (malformed clocks) still
	// bucket consistently instead of rounding toward zero.
	d := s / secondsPerDay
	if s%secondsPerDay < 0 {
		d--
	}
	return d
}

// Window is a sliding time window of per-day BEACON buckets: records fold
// into the bucket of their UTC day, and buckets older than the window's
// span — anchored at the newest day observed, not at the wall clock — are
// pruned. The merged aggregate therefore depends only on the record
// multiset, never on arrival order: a record survives into Merged exactly
// when its day lies within the final window, because late-arriving old
// records land in buckets that pruning removes wholesale.
//
// Retention contract: with the anchor at day A and a span of D days, the
// window retains exactly the days (A-D, A]. A record can leave the window
// two ways, and the window counts them separately:
//
//   - pruned: its day was inside the window when it arrived, and a later
//     record advanced the anchor past it. Normal retention — the record had
//     its chance to be served.
//   - straggler: it arrived already older than A-D+1 (a delayed collector,
//     a clock-skewed device, an out-of-order day in a shipped shard) and
//     was dropped on arrival, never contributing to any published map.
//
// Stale() reports the sum of both; Stragglers() isolates the second, which
// is the signal a federated deployment watches — a collector whose shipped
// days consistently straggle is lagging beyond the window span.
type Window struct {
	days       int
	latest     int64 // newest epoch day observed; meaningless until nonEmpty
	nonEmpty   bool
	buckets    map[int64]*dayBucket
	records    int // records across retained buckets
	stale      int // records dropped: stragglers + records pruned by a slide
	stragglers int // records dropped on arrival as older than the window
}

type dayBucket struct {
	agg     *beacon.Aggregate
	records int
}

// NewWindow returns an empty window spanning the given number of days
// (DefaultWindowDays when days <= 0).
func NewWindow(days int) *Window {
	if days <= 0 {
		days = DefaultWindowDays
	}
	return &Window{days: days, buckets: make(map[int64]*dayBucket)}
}

// Days returns the window span in days.
func (w *Window) Days() int { return w.days }

// oldest returns the oldest retained day: days-1 before the newest.
func (w *Window) oldest() int64 { return w.latest - int64(w.days) + 1 }

// Add folds one record into its day bucket, advancing the window when the
// record opens a newer day. It reports false when the record is older than
// the window and was dropped.
func (w *Window) Add(rec beacon.Record) bool {
	day := epochDay(rec.Time)
	if !w.nonEmpty {
		w.latest = day
		w.nonEmpty = true
	}
	if day > w.latest {
		w.latest = day
		w.prune()
	}
	if day < w.oldest() {
		w.stale++
		w.stragglers++
		return false
	}
	b := w.buckets[day]
	if b == nil {
		b = &dayBucket{agg: beacon.NewAggregate()}
		w.buckets[day] = b
	}
	b.agg.AddRecord(rec)
	b.records++
	w.records++
	return true
}

// prune drops buckets that fell out of the window.
func (w *Window) prune() {
	min := w.oldest()
	for day, b := range w.buckets {
		if day < min {
			w.records -= b.records
			w.stale += b.records
			delete(w.buckets, day)
		}
	}
}

// Records returns the number of records in retained buckets.
func (w *Window) Records() int { return w.records }

// Stale returns the number of records dropped as older than the window,
// whether on arrival or by a later advance of the window.
func (w *Window) Stale() int { return w.stale }

// Stragglers returns the number of records dropped on arrival because
// their day was already older than the window — out-of-order or delayed
// data that never contributed to any published map, as opposed to records
// pruned by normal retention. See the retention contract on Window.
func (w *Window) Stragglers() int { return w.stragglers }

// Merged returns the aggregate over every retained day bucket. Counts are
// integers, so the merge is identical regardless of bucket or arrival
// order.
func (w *Window) Merged() *beacon.Aggregate {
	out := beacon.NewAggregate()
	for _, b := range w.buckets {
		out.Merge(b.agg)
	}
	return out
}

// DayRange returns the first and last retained day as "2006-01-02"
// strings; ok is false on an empty window. Publishers record the span in
// generation metadata so the history index can show each generation's day
// window without parsing Period labels.
func (w *Window) DayRange() (first, last string, ok bool) {
	if !w.nonEmpty {
		return "", "", false
	}
	fmtDay := func(d int64) string {
		return time.Unix(d*secondsPerDay, 0).UTC().Format("2006-01-02")
	}
	return fmtDay(w.oldest()), fmtDay(w.latest), true
}

// Period labels the window for the published map, e.g.
// "live:2016-12-25..2016-12-31" — the (at most) days-long span ending at
// the newest day observed. An empty window is labeled "live:empty".
func (w *Window) Period() string {
	if !w.nonEmpty {
		return "live:empty"
	}
	fmtDay := func(d int64) string {
		return time.Unix(d*secondsPerDay, 0).UTC().Format("2006-01-02")
	}
	return fmt.Sprintf("live:%s..%s", fmtDay(w.oldest()), fmtDay(w.latest))
}
