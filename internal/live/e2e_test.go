package live

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"

	"cellspot/internal/aschar"
	"cellspot/internal/cellmap"
	"cellspot/internal/logio"
	"cellspot/internal/obs"
	"cellspot/internal/rum"
)

// TestEndToEndLiveServing closes the full loop the subsystem exists for:
// clients post beacons to a live collector (beacond's ingest path), the
// updater ticks once and publishes a generation, and a cellmapd-style
// serving stack hot-swaps to it — all while lookup traffic hammers the
// serving mux. Not a single concurrent lookup may fail across the swaps,
// and after each swap /v1/info and /v1/lookup must answer from the new
// generation.
func TestEndToEndLiveServing(t *testing.T) {
	fx := newFixture(t, 40_000)
	inputs := fx.Inputs
	// The paper's AS-filter thresholds assume monthly volumes; this test is
	// about the serving loop, so disable them rather than tune them.
	inputs.Rules = aschar.Rules{}

	// Ingest side: a live collector spooling to disk, fronted by HTTP.
	// maxPerFile 400 with posts in multiples of 400 means every shard is
	// sealed (flushed) by the time the updater polls.
	spoolDir := t.TempDir()
	sp := logio.NewSpool(spoolDir, DefaultSpoolPrefix, false, 400)
	col := rum.NewCollector(rum.WithSpool(sp))
	ingest := httptest.NewServer(col.Handler())
	defer ingest.Close()
	defer col.Close()

	// Refresh side: the updater publishing into a snapshot store.
	store := mustOpenStore(t)
	u, err := NewUpdater(Config{SpoolDir: spoolDir, Inputs: inputs, Store: store})
	if err != nil {
		t.Fatal(err)
	}

	// Serving side: a swappable map behind the lookup routes, starting from
	// the empty bootstrap map cellmapd serves before the first generation.
	reg := obs.NewRegistry()
	sw := cellmap.NewSwappable(cellmap.Empty("boot"), 0)
	sw.EnableMetrics(reg)
	mux := http.NewServeMux()
	cellmap.MountSource(mux, sw)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Lookup hammer: concurrent readers that must never see a failed
	// request, before, during, or after the swaps.
	done := make(chan struct{})
	var lookups, failures atomic.Int64
	var firstFailure atomic.Value
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for {
				select {
				case <-done:
					return
				default:
				}
				resp, err := client.Get(srv.URL + "/v1/lookup?ip=10.0.0.1")
				if err != nil {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, err.Error())
					continue
				}
				var lr cellmap.LookupResponse
				decErr := json.NewDecoder(resp.Body).Decode(&lr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil {
					failures.Add(1)
					firstFailure.CompareAndSwap(nil, fmt.Sprintf("status=%d decode=%v", resp.StatusCode, decErr))
					continue
				}
				lookups.Add(1)
			}
		}()
	}

	getInfo := func() cellmap.Info {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/info")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info cellmap.Info
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info
	}

	ctx := context.Background()
	cl := rum.Client{BaseURL: ingest.URL}

	// Round 1: post beacons, tick, swap.
	if err := cl.Post(ctx, fx.Records[:6000]); err != nil {
		t.Fatal(err)
	}
	res1, err := u.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Published || res1.NewRecords != 6000 {
		t.Fatalf("round 1 tick: %+v", res1)
	}
	m1, err := ReadGenerationMap(res1.Generation)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Len() == 0 {
		t.Fatal("round 1 published an empty map; the lookup assertions below would be vacuous")
	}
	sw.Swap(m1, res1.Generation.Seq)

	if info := getInfo(); info.Generation != res1.Generation.Seq || info.Entries != m1.Len() {
		t.Fatalf("after swap 1: info %+v, want generation %d with %d entries",
			info, res1.Generation.Seq, m1.Len())
	}
	// A known-cellular address must now answer from the new generation.
	want := m1.Entries()[0]
	resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + want.Prefix.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	var lr cellmap.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !lr.Cellular || lr.ASN != want.ASN {
		t.Fatalf("lookup %s = %+v, want cellular entry of AS %d", want.Prefix.Addr(), lr, want.ASN)
	}

	// Round 2: more beacons arrive, the map refreshes again under load.
	if err := cl.Post(ctx, fx.Records[6000:8000]); err != nil {
		t.Fatal(err)
	}
	res2, err := u.Tick()
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Published || res2.Generation.Seq != res1.Generation.Seq+1 {
		t.Fatalf("round 2 tick: %+v (prev seq %d)", res2, res1.Generation.Seq)
	}
	m2, err := ReadGenerationMap(res2.Generation)
	if err != nil {
		t.Fatal(err)
	}
	sw.Swap(m2, res2.Generation.Seq)
	if info := getInfo(); info.Generation != res2.Generation.Seq {
		t.Fatalf("after swap 2: generation %d, want %d", info.Generation, res2.Generation.Seq)
	}

	close(done)
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d of %d concurrent lookups failed across the swaps (first: %v)",
			n, n+lookups.Load(), firstFailure.Load())
	}
	if lookups.Load() == 0 {
		t.Fatal("hammer completed no lookups")
	}
	if v := reg.Gauge("cellmap_generation", "").Value(); uint64(v) != res2.Generation.Seq {
		t.Fatalf("cellmap_generation gauge = %d, want %d", v, res2.Generation.Seq)
	}
	if v := reg.Counter("cellmap_swap_total", "").Value(); v != 2 {
		t.Fatalf("cellmap_swap_total = %d, want 2", v)
	}
}
