package live

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/logio"
)

// tailRecord builds a distinguishable beacon record: the host octet of the
// IP encodes id, so tests can assert exactly which records were decoded.
func tailRecord(id int) beacon.Record {
	return beacon.Record{
		Time:    time.Date(2016, 12, 25, 12, 0, id, 0, time.UTC),
		IP:      netip.AddrFrom4([4]byte{10, 0, byte(id / 250), byte(id % 250)}),
		Conn:    "cellular",
		Browser: "chrome",
	}
}

func writeJSONLines(t *testing.T, path string, recs []beacon.Record) {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func recIDs(recs []beacon.Record) []int {
	ids := make([]int, len(recs))
	for i, r := range recs {
		a := r.IP.As4()
		ids[i] = int(a[2])*250 + int(a[3])
	}
	return ids
}

// TestTailerPlainTruncateRewrite pins the shrink-detection fix: a plain
// spool file rewritten with shorter content, then grown past the stale
// checkpoint, must be re-read from the start — the pre-fix tailer kept the
// old byte offset and decoded torn records out of the middle of the new
// content.
func TestTailerPlainTruncateRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl")

	first := []beacon.Record{tailRecord(1), tailRecord(2), tailRecord(3), tailRecord(4)}
	writeJSONLines(t, path, first)

	tl := NewTailer(dir, "beacon")
	var got []beacon.Record
	n, err := tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil || n != 4 {
		t.Fatalf("first poll: n=%d err=%v", n, err)
	}

	// Rewrite the file with fewer, different records — shorter than the
	// consumed offset. The next poll must notice the shrink and re-read
	// from the start; the pre-fix tailer kept the stale offset.
	second := []beacon.Record{tailRecord(10), tailRecord(11)}
	writeJSONLines(t, path, second)
	got = nil
	n, err = tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("post-rewrite poll: %v", err)
	}
	if n != 2 || recIDs(got)[0] != 10 || recIDs(got)[1] != 11 {
		t.Fatalf("post-rewrite poll consumed %v, want [10 11]", recIDs(got))
	}
	if tl.Resets() != 1 {
		t.Errorf("Resets = %d, want 1", tl.Resets())
	}

	// Now the file regrows past the stale pre-fix checkpoint. The pre-fix
	// tailer would seek into the middle of the new content here and decode
	// torn records; the fixed one continues from its reset position.
	third := append(append([]beacon.Record{}, second...),
		tailRecord(12), tailRecord(13), tailRecord(14), tailRecord(15))
	writeJSONLines(t, path, third)
	got = nil
	n, err = tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("regrow poll: %v", err)
	}
	if n != 4 {
		t.Fatalf("regrow poll consumed %d records (%v), want 4", n, recIDs(got))
	}
	for i, id := range recIDs(got) {
		if id != 12+i {
			t.Fatalf("regrow records = %v, want 12..15 in order", recIDs(got))
		}
	}
	if tl.Bad() != 0 {
		t.Errorf("Bad = %d: rewrite decoded torn records", tl.Bad())
	}
}

// TestTailerPlainShrinkOnly covers shrink without regrowth: the next poll
// must reset and consume the rewritten (shorter) content instead of
// treating the file as fully consumed.
func TestTailerPlainShrinkOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl")
	writeJSONLines(t, path, []beacon.Record{tailRecord(1), tailRecord(2), tailRecord(3)})

	tl := NewTailer(dir, "beacon")
	if n, err := tl.Poll(func(beacon.Record) {}); err != nil || n != 3 {
		t.Fatalf("first poll: n=%d err=%v", n, err)
	}

	writeJSONLines(t, path, []beacon.Record{tailRecord(7)})
	var got []beacon.Record
	n, err := tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil || n != 1 {
		t.Fatalf("shrunk poll: n=%d err=%v", n, err)
	}
	if ids := recIDs(got); ids[0] != 7 {
		t.Fatalf("records = %v, want [7]", ids)
	}
	if tl.Resets() != 1 {
		t.Errorf("Resets = %d, want 1", tl.Resets())
	}
}

// gzipMember returns one complete gzip member holding the records.
func gzipMember(t *testing.T, recs []beacon.Record) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	for _, r := range recs {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		zw.Write(b)
		zw.Write([]byte{'\n'})
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTailerGzipRewrite pins the gzip shrink fix: a .gz shard rewritten
// with different content must be re-read from line zero — the pre-fix
// tailer skipped its stale line count against the new content.
func TestTailerGzipRewrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl.gz")

	if err := os.WriteFile(path, gzipMember(t, []beacon.Record{
		tailRecord(1), tailRecord(2), tailRecord(3), tailRecord(4), tailRecord(5),
	}), 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, "beacon")
	if n, err := tl.Poll(func(beacon.Record) {}); err != nil || n != 5 {
		t.Fatalf("first poll: n=%d err=%v", n, err)
	}

	// Rewrite with three different records: smaller compressed size, so
	// the shrink is detectable.
	if err := os.WriteFile(path, gzipMember(t, []beacon.Record{
		tailRecord(20), tailRecord(21), tailRecord(22),
	}), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []beacon.Record
	n, err := tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("post-rewrite poll: %v", err)
	}
	if n != 3 {
		t.Fatalf("post-rewrite poll consumed %d records (%v), want 3", n, recIDs(got))
	}
	for i, id := range recIDs(got) {
		if id != 20+i {
			t.Fatalf("post-rewrite records = %v, want 20..22", recIDs(got))
		}
	}
	if tl.Resets() != 1 {
		t.Errorf("Resets = %d, want 1", tl.Resets())
	}
}

// TestTailerGzipErrorNotEOF pins the error-conflation fix: a decode error
// that is NOT truncation (here: a second gzip member whose bytes are still
// garbage) must leave the position untouched so a later poll re-reads the
// file — the pre-fix tailer recorded the file size as consumed, and when
// the file was completed in place at the same size, the remaining records
// were never read.
func TestTailerGzipErrorNotEOF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl.gz")

	member1 := gzipMember(t, []beacon.Record{tailRecord(1), tailRecord(2)})
	member2 := gzipMember(t, []beacon.Record{tailRecord(3), tailRecord(4), tailRecord(5)})

	// State 1: member1 sealed, member2's bytes not yet written — the
	// writer has reserved the space but the content is garbage (0xFF can
	// never start a gzip header, so this reads as corruption, not EOF).
	garbage := bytes.Repeat([]byte{0xFF}, len(member2))
	if err := os.WriteFile(path, append(append([]byte{}, member1...), garbage...), 0o644); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(dir, "beacon")
	var got []beacon.Record
	n, err := tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err == nil {
		t.Fatal("poll over corrupt gzip tail reported success")
	}
	if n != 2 {
		t.Fatalf("poll before completion consumed %d records, want 2", n)
	}

	// State 2: the file is completed in place — same size, valid bytes.
	if err := os.WriteFile(path, append(append([]byte{}, member1...), member2...), 0o644); err != nil {
		t.Fatal(err)
	}
	got = nil
	n, err = tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("poll after completion: %v", err)
	}
	if n != 3 {
		t.Fatalf("poll after completion consumed %d records (%v), want the 3 from member2", n, recIDs(got))
	}
	for i, id := range recIDs(got) {
		if id != 3+i {
			t.Fatalf("records = %v, want 3..5", recIDs(got))
		}
	}
}

// TestTailerGzipTruncationStillTolerated guards the pre-existing behavior
// the error-conflation fix must not break: a truncated deflate stream
// (writer mid-flush) is not an error, and consumed lines stay consumed.
func TestTailerGzipTruncationStillTolerated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "beacon-0000.jsonl.gz")
	member := gzipMember(t, []beacon.Record{tailRecord(1), tailRecord(2), tailRecord(3)})

	// Cut inside the deflate stream: complete lines may or may not be
	// recoverable, but the poll must not error.
	if err := os.WriteFile(path, member[:len(member)-6], 0o644); err != nil {
		t.Fatal(err)
	}
	tl := NewTailer(dir, "beacon")
	n1, err := tl.Poll(func(beacon.Record) {})
	if err != nil {
		t.Fatalf("truncated poll errored: %v", err)
	}
	if err := os.WriteFile(path, member, 0o644); err != nil {
		t.Fatal(err)
	}
	n2, err := tl.Poll(func(beacon.Record) {})
	if err != nil {
		t.Fatalf("completed poll errored: %v", err)
	}
	if n1+n2 != 3 {
		t.Fatalf("polls consumed %d+%d records, want 3 total with no duplicates", n1, n2)
	}
}

// TestTailerOversizeLine pins the line-cap fix: one corrupt spool line
// beyond logio.MaxLineBytes must be skipped and counted, not buffered
// whole, and the records around it must still be decoded.
func TestTailerOversizeLine(t *testing.T) {
	if testing.Short() {
		t.Skip("writes a >16MB spool line")
	}
	dir := t.TempDir()

	mkLines := func() []byte {
		var buf bytes.Buffer
		b1, _ := json.Marshal(tailRecord(1))
		b2, _ := json.Marshal(tailRecord(2))
		buf.Write(b1)
		buf.WriteByte('\n')
		buf.WriteString(`{"junk":"` + strings.Repeat("a", logio.MaxLineBytes) + `"}` + "\n")
		buf.Write(b2)
		buf.WriteByte('\n')
		return buf.Bytes()
	}

	// Plain shard.
	if err := os.WriteFile(filepath.Join(dir, "beacon-0000.jsonl"), mkLines(), 0o644); err != nil {
		t.Fatal(err)
	}
	// Gzip shard with the same content.
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write(mkLines())
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "beacon-0001.jsonl.gz"), gz.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	tl := NewTailer(dir, "beacon")
	var got []beacon.Record
	n, err := tl.Poll(func(r beacon.Record) { got = append(got, r) })
	if err != nil {
		t.Fatalf("poll: %v", err)
	}
	if n != 4 {
		t.Fatalf("poll consumed %d records (%v), want 4", n, recIDs(got))
	}
	if tl.Oversize() != 2 {
		t.Errorf("Oversize = %d, want 2 (one per shard)", tl.Oversize())
	}
	if tl.Bad() != 0 {
		t.Errorf("Bad = %d, want 0: the oversize line must be counted separately", tl.Bad())
	}

	// Nothing new: a second poll consumes nothing and does not re-count.
	if n, err := tl.Poll(func(beacon.Record) {}); err != nil || n != 0 {
		t.Fatalf("idle poll: n=%d err=%v", n, err)
	}
	if tl.Oversize() != 2 {
		t.Errorf("idle poll re-counted oversize lines: %d", tl.Oversize())
	}
}
