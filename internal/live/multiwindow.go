package live

import (
	"fmt"
	"sort"

	"cellspot/internal/beacon"
	"cellspot/internal/netaddr"
)

// DayState is one day bucket of a window, serialized for a checkpoint.
// Blocks are sorted so the bytes are deterministic for a given state.
type DayState struct {
	Day    int64        `json:"day"`
	Blocks []BlockState `json:"blocks"`
}

// BlockState is one block's tally inside a day bucket. The per-RAT fields
// mirror beacon.Counts; they are zero (and omitted) for legacy data, so
// old checkpoints decode unchanged.
type BlockState struct {
	Block  string `json:"block"` // netaddr.FormatIndex token
	Hits   int    `json:"hits"`
	API    int    `json:"api"`
	Cell   int    `json:"cell"`
	Cell3G int    `json:"cell_3g,omitempty"`
	Cell4G int    `json:"cell_4g,omitempty"`
	Cell5G int    `json:"cell_5g,omitempty"`
}

// encodeBuckets serializes day buckets in ascending day order with sorted
// blocks — the deterministic layout both the live checkpoint and the
// federation checkpoint use.
func encodeBuckets(buckets map[int64]*dayBucket) []DayState {
	days := make([]int64, 0, len(buckets))
	for day := range buckets {
		days = append(days, day)
	}
	sort.Slice(days, func(i, j int) bool { return days[i] < days[j] })
	out := make([]DayState, 0, len(days))
	for _, day := range days {
		b := buckets[day]
		ds := DayState{Day: day}
		blocks := make([]netaddr.Block, 0, len(b.agg.PerBlock))
		for blk := range b.agg.PerBlock {
			blocks = append(blocks, blk)
		}
		netaddr.SortBlocks(blocks)
		for _, blk := range blocks {
			c := b.agg.PerBlock[blk]
			ds.Blocks = append(ds.Blocks, BlockState{
				Block: netaddr.FormatIndex(blk),
				Hits:  c.Hits, API: c.API, Cell: c.Cell,
				Cell3G: c.Cell3G, Cell4G: c.Cell4G, Cell5G: c.Cell5G,
			})
		}
		out = append(out, ds)
	}
	return out
}

// decodeBuckets rebuilds a bucket map from its serialized form.
func decodeBuckets(states []DayState) (map[int64]*dayBucket, int, error) {
	buckets := make(map[int64]*dayBucket, len(states))
	records := 0
	for _, ds := range states {
		b := buckets[ds.Day]
		if b == nil {
			b = &dayBucket{agg: beacon.NewAggregate()}
			buckets[ds.Day] = b
		}
		for _, bs := range ds.Blocks {
			blk, err := netaddr.ParseIndex(bs.Block)
			if err != nil {
				return nil, 0, fmt.Errorf("bucket day %d: %w", ds.Day, err)
			}
			// Hits equals the bucket's record count exactly, because the
			// live path adds one hit per record.
			b.agg.AddCounts(blk, beacon.Counts{
				Hits: bs.Hits, API: bs.API, Cell: bs.Cell,
				Cell3G: bs.Cell3G, Cell4G: bs.Cell4G, Cell5G: bs.Cell5G,
			})
			b.records += bs.Hits
			records += bs.Hits
		}
	}
	return buckets, records, nil
}

// MultiWindow is the federation plane's sliding window: per-day BEACON
// buckets like Window, but kept per source collector so a fleet's
// observations stay attributable — per-collector record counts, straggler
// detection, and a checkpoint that restores each collector's contribution
// exactly.
//
// The anchor is global: the newest day observed across ALL sources, and
// every source's buckets older than anchor-span are pruned. The merged
// aggregate is therefore bit-identical to folding the same records through
// one single-source Window — source attribution never perturbs the
// published map, which is what makes a federated build comparable to a
// single-collector offline build. A collector lagging more than the window
// span behind the fleet's newest day sees its records counted as
// stragglers, exactly as Window does (see Window's retention contract).
type MultiWindow struct {
	days       int
	latest     int64
	nonEmpty   bool
	sources    map[string]map[int64]*dayBucket
	records    int
	stale      int
	stragglers int
}

// NewMultiWindow returns an empty multi-source window spanning the given
// number of days (DefaultWindowDays when days <= 0).
func NewMultiWindow(days int) *MultiWindow {
	if days <= 0 {
		days = DefaultWindowDays
	}
	return &MultiWindow{days: days, sources: make(map[string]map[int64]*dayBucket)}
}

// Days returns the window span in days.
func (m *MultiWindow) Days() int { return m.days }

func (m *MultiWindow) oldest() int64 { return m.latest - int64(m.days) + 1 }

// Add folds one record from the named source into its day bucket,
// advancing the global anchor when the record opens a newer day. It
// reports false when the record is older than the window and was dropped.
func (m *MultiWindow) Add(source string, rec beacon.Record) bool {
	day := epochDay(rec.Time)
	if !m.nonEmpty {
		m.latest = day
		m.nonEmpty = true
	}
	if day > m.latest {
		m.latest = day
		m.prune()
	}
	if day < m.oldest() {
		m.stale++
		m.stragglers++
		return false
	}
	buckets := m.sources[source]
	if buckets == nil {
		buckets = make(map[int64]*dayBucket)
		m.sources[source] = buckets
	}
	b := buckets[day]
	if b == nil {
		b = &dayBucket{agg: beacon.NewAggregate()}
		buckets[day] = b
	}
	b.agg.AddRecord(rec)
	b.records++
	m.records++
	return true
}

// prune drops buckets of every source that fell out of the window.
func (m *MultiWindow) prune() {
	min := m.oldest()
	for src, buckets := range m.sources {
		for day, b := range buckets {
			if day < min {
				m.records -= b.records
				m.stale += b.records
				delete(buckets, day)
			}
		}
		if len(buckets) == 0 {
			delete(m.sources, src)
		}
	}
}

// Records returns the number of records in retained buckets, all sources.
func (m *MultiWindow) Records() int { return m.records }

// RecordsBySource returns per-collector retained record counts.
func (m *MultiWindow) RecordsBySource() map[string]int {
	out := make(map[string]int, len(m.sources))
	for src, buckets := range m.sources {
		n := 0
		for _, b := range buckets {
			n += b.records
		}
		out[src] = n
	}
	return out
}

// Stale returns the number of records dropped as older than the window,
// on arrival or by a later slide.
func (m *MultiWindow) Stale() int { return m.stale }

// Stragglers returns the number of records dropped on arrival as older
// than the window (see Window's retention contract).
func (m *MultiWindow) Stragglers() int { return m.stragglers }

// Merged returns the aggregate over every retained bucket of every source.
// Counts are integers, so the merge is identical regardless of source,
// bucket, or arrival order — and identical to a single-source Window fed
// the same records.
func (m *MultiWindow) Merged() *beacon.Aggregate {
	out := beacon.NewAggregate()
	for _, buckets := range m.sources {
		for _, b := range buckets {
			out.Merge(b.agg)
		}
	}
	return out
}

// Period labels the window for the published map, same scheme as Window.
func (m *MultiWindow) Period() string {
	if !m.nonEmpty {
		return "live:empty"
	}
	w := Window{days: m.days, latest: m.latest, nonEmpty: true}
	return w.Period()
}

// MultiWindowState is a MultiWindow serialized for a checkpoint. Sources
// are sorted by collector ID and buckets by day, so the encoding is
// deterministic for a given window state.
type MultiWindowState struct {
	Days     int           `json:"window_days"`
	Latest   int64         `json:"latest_day"`
	NonEmpty bool          `json:"non_empty"`
	Sources  []SourceState `json:"sources"`
}

// SourceState is one collector's retained buckets.
type SourceState struct {
	Collector string     `json:"collector"`
	Buckets   []DayState `json:"buckets"`
}

// State serializes the window. Straggler/stale tallies are process-local
// observability, not window content, and are not part of the state.
func (m *MultiWindow) State() MultiWindowState {
	st := MultiWindowState{Days: m.days, Latest: m.latest, NonEmpty: m.nonEmpty}
	srcs := make([]string, 0, len(m.sources))
	for src := range m.sources {
		srcs = append(srcs, src)
	}
	sort.Strings(srcs)
	for _, src := range srcs {
		st.Sources = append(st.Sources, SourceState{
			Collector: src,
			Buckets:   encodeBuckets(m.sources[src]),
		})
	}
	return st
}

// RestoreMultiWindow rebuilds a window from its serialized state. days
// overrides the span when > 0 (a restart may narrow the window; the
// restored state is pruned to fit).
func RestoreMultiWindow(st MultiWindowState, days int) (*MultiWindow, error) {
	if days <= 0 {
		days = st.Days
	}
	m := NewMultiWindow(days)
	for _, ss := range st.Sources {
		buckets, records, err := decodeBuckets(ss.Buckets)
		if err != nil {
			return nil, fmt.Errorf("live: restore source %q: %w", ss.Collector, err)
		}
		if len(buckets) == 0 {
			continue
		}
		m.sources[ss.Collector] = buckets
		m.records += records
	}
	if st.NonEmpty {
		m.latest = st.Latest
		m.nonEmpty = true
		m.prune() // the restored span may be narrower than the checkpoint's
	}
	return m, nil
}
