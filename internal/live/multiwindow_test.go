package live

import (
	"encoding/json"
	"testing"

	"cellspot/internal/beacon"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/obs"
)

// TestWindowStragglersVsPruned pins the retention contract's two drop
// classes apart. Before the fix, the window folded both into one Stale()
// tally: a record arriving already older than the window (a straggler — an
// operational signal, something is lagging) was indistinguishable from a
// record aged out by normal retention (business as usual). This test fails
// against that behavior.
func TestWindowStragglersVsPruned(t *testing.T) {
	cell := netinfo.ConnCellular.String()
	w := NewWindow(3)
	w.Add(recAt(100, "10.0.0.1", cell))
	w.Add(recAt(101, "10.0.1.1", cell))

	// Day 104 prunes days 100 and 101: retention, not stragglers.
	w.Add(recAt(104, "10.0.4.1", cell))
	if w.Stale() != 2 {
		t.Fatalf("stale after slide = %d, want 2", w.Stale())
	}
	if w.Stragglers() != 0 {
		t.Fatalf("stragglers after slide = %d, want 0: pruned records are not stragglers", w.Stragglers())
	}

	// A day-101 record now arrives too late: that IS a straggler.
	if w.Add(recAt(101, "10.0.1.2", cell)) {
		t.Fatal("stale record accepted")
	}
	if w.Stragglers() != 1 {
		t.Fatalf("stragglers after late arrival = %d, want 1", w.Stragglers())
	}
	if w.Stale() != 3 {
		t.Fatalf("stale after late arrival = %d, want 3 (stragglers count into stale too)", w.Stale())
	}
}

// TestUpdaterStragglerMetric: a straggler record in the spool must surface
// in live_window_stragglers_total, separately from live_stale_records_total.
func TestUpdaterStragglerMetric(t *testing.T) {
	cell := netinfo.ConnCellular.String()
	dir := t.TempDir()
	recs := []beacon.Record{
		recAt(100, "10.0.0.1", cell),
		recAt(120, "10.0.2.1", cell), // advances the anchor far past day 100
		recAt(101, "10.0.1.1", cell), // straggler: older than 120-7+1
	}
	writeShards(t, dir, 0, recs, 1, false)
	reg := obs.NewRegistry()
	u, err := NewUpdater(Config{
		SpoolDir: dir,
		Inputs:   MapInputs{ASOf: func(netaddr.Block) (uint32, bool) { return 1, true }},
		Store:    mustOpenStore(t),
		Metrics:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := u.Tick(); err != nil {
		t.Fatal(err)
	}
	if v := reg.Counter("live_window_stragglers_total", "").Value(); v != 1 {
		t.Fatalf("live_window_stragglers_total = %d, want 1", v)
	}
	if v := reg.Counter("live_stale_records_total", "").Value(); v != 2 {
		t.Fatalf("live_stale_records_total = %d, want 2 (1 pruned + 1 straggler)", v)
	}
}

// TestMultiWindowMatchesSingleSourceWindow: source attribution must never
// perturb the merged aggregate — folding the same records through a
// MultiWindow (spread across collectors) and a single Window must yield
// identical merged counts and the same period label. This is the invariant
// behind "federated build == single-collector build".
func TestMultiWindowMatchesSingleSourceWindow(t *testing.T) {
	fx := newFixture(t, 30_000)
	single := NewWindow(DefaultWindowDays)
	multi := NewMultiWindow(DefaultWindowDays)
	sources := []string{"c-a", "c-b", "c-c"}
	for i, rec := range fx.Records {
		single.Add(rec)
		multi.Add(sources[i%len(sources)], rec)
	}
	if single.Records() != multi.Records() {
		t.Fatalf("records: single %d, multi %d", single.Records(), multi.Records())
	}
	if single.Period() != multi.Period() {
		t.Fatalf("period: single %q, multi %q", single.Period(), multi.Period())
	}
	if single.Stragglers() != multi.Stragglers() {
		t.Fatalf("stragglers: single %d, multi %d", single.Stragglers(), multi.Stragglers())
	}
	sa, ma := single.Merged(), multi.Merged()
	if !sa.Equal(ma) {
		t.Fatal("merged aggregates diverge between single and multi-source windows")
	}
	per := multi.RecordsBySource()
	total := 0
	for _, src := range sources {
		if per[src] == 0 {
			t.Fatalf("source %s has no retained records", src)
		}
		total += per[src]
	}
	if total != multi.Records() {
		t.Fatalf("per-source records sum %d != total %d", total, multi.Records())
	}
}

// TestMultiWindowGlobalAnchor: the window anchors at the newest day across
// ALL sources, so a collector lagging beyond the span sees its records
// straggle even though they are that collector's newest data.
func TestMultiWindowGlobalAnchor(t *testing.T) {
	cell := netinfo.ConnCellular.String()
	m := NewMultiWindow(3)
	m.Add("fresh", recAt(200, "10.0.0.1", cell))
	m.Add("fresh", recAt(210, "10.1.0.1", cell)) // anchor at 210, prunes day 200
	if m.Records() != 1 || m.Stale() != 1 {
		t.Fatalf("records=%d stale=%d, want 1/1", m.Records(), m.Stale())
	}
	// The lagging collector's day-205 record is older than 210-3+1 = 208.
	if m.Add("laggard", recAt(205, "10.2.0.1", cell)) {
		t.Fatal("laggard's stale day accepted")
	}
	if m.Stragglers() != 1 {
		t.Fatalf("stragglers = %d, want 1", m.Stragglers())
	}
	if _, ok := m.RecordsBySource()["laggard"]; ok {
		t.Fatal("laggard retained records it never folded")
	}
	// In-window days from the laggard still fold.
	if !m.Add("laggard", recAt(209, "10.2.1.1", cell)) {
		t.Fatal("laggard's in-window day rejected")
	}
	if m.RecordsBySource()["laggard"] != 1 {
		t.Fatalf("laggard records = %d, want 1", m.RecordsBySource()["laggard"])
	}
}

// TestMultiWindowStateRoundTrip: State → JSON → Restore must reproduce the
// window exactly (merged aggregate, record counts, period), and the
// serialization must be deterministic.
func TestMultiWindowStateRoundTrip(t *testing.T) {
	fx := newFixture(t, 20_000)
	m := NewMultiWindow(DefaultWindowDays)
	sources := []string{"eu-1", "us-1", "ap-1"}
	for i, rec := range fx.Records {
		m.Add(sources[i%len(sources)], rec)
	}
	raw1, err := json.Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	raw2, err := json.Marshal(m.State())
	if err != nil {
		t.Fatal(err)
	}
	if string(raw1) != string(raw2) {
		t.Fatal("state serialization is not deterministic")
	}
	var st MultiWindowState
	if err := json.Unmarshal(raw1, &st); err != nil {
		t.Fatal(err)
	}
	got, err := RestoreMultiWindow(st, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Records() != m.Records() || got.Period() != m.Period() {
		t.Fatalf("restored records=%d period=%q, want %d/%q",
			got.Records(), got.Period(), m.Records(), m.Period())
	}
	if !got.Merged().Equal(m.Merged()) {
		t.Fatal("restored merged aggregate diverges")
	}
	want := m.RecordsBySource()
	for src, n := range got.RecordsBySource() {
		if want[src] != n {
			t.Fatalf("source %s restored %d records, want %d", src, n, want[src])
		}
	}

	// Restoring into a narrower span prunes to fit.
	narrow, err := RestoreMultiWindow(st, 1)
	if err != nil {
		t.Fatal(err)
	}
	if narrow.Records() >= m.Records() {
		t.Fatalf("narrowed restore kept %d of %d records", narrow.Records(), m.Records())
	}
	if narrow.Days() != 1 {
		t.Fatalf("narrowed days = %d", narrow.Days())
	}
}
