// Package live closes the loop between the beacon collector and the map
// server: it tails beacond's spool files as they are written, folds records
// into a sliding window of per-day BEACON buckets (the paper's seven-day
// smoothing), and on every refresh tick runs the reproduction's existing
// classify → AS-filter → cellmap.Build chain over the windowed aggregate,
// publishing the result as a new generation in a snapshot store. A serving
// process (cellmapd) polls the store and hot-swaps generations with zero
// lookup downtime.
//
// Alongside every published map the updater checkpoints its own state —
// window buckets and per-spool-file read positions — inside the same
// generation directory. The two are published atomically, so the invariant
// "CURRENT's checkpoint describes exactly the records baked into CURRENT's
// map" holds across crashes, and a restarted updater resumes from the spool
// positions of the last published generation instead of re-reading the
// whole spool.
package live

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/cellmap"
	"cellspot/internal/classify"
	"cellspot/internal/history"
	"cellspot/internal/mapbuild"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

const (
	// MapFile is the published map's file name inside a generation.
	MapFile = "cellmap.jsonl"
	// CheckpointFile is the updater state file inside a generation.
	CheckpointFile = "checkpoint.json"

	checkpointFormat = "cellspot-live-checkpoint/1"

	// DefaultInterval is the refresh cadence of Run.
	DefaultInterval = 30 * time.Second
	// DefaultSpoolPrefix matches beacond's spool file naming.
	DefaultSpoolPrefix = "beacon"
	// DefaultKeep is how many generations retention pruning preserves.
	DefaultKeep = 5
)

// MapInputs bundles the side data the map-build chain needs beyond the
// beacon aggregate itself. It aliases mapbuild.Inputs — the chain lives in
// internal/mapbuild so offline scenario builds share it without importing
// the live machinery.
type MapInputs = mapbuild.Inputs

// BuildMap runs the classify → AS-filter → cellmap.Build chain over a
// beacon aggregate: exactly the offline export path, factored out so the
// live updater and batch builds produce bit-identical maps from identical
// aggregates. Detected blocks whose AS fails the filter are dropped before
// the map is built, mirroring the paper's AS-level exclusion rules.
func BuildMap(agg *beacon.Aggregate, threshold float64, period string, in MapInputs) (*cellmap.Map, error) {
	return mapbuild.Build(agg, threshold, period, in)
}

// Config parameterizes an Updater.
type Config struct {
	// SpoolDir is beacond's spool directory (required).
	SpoolDir string
	// SpoolPrefix is the spool file prefix (DefaultSpoolPrefix when "").
	SpoolPrefix string
	// WindowDays is the sliding window span (DefaultWindowDays when <= 0).
	WindowDays int
	// Interval is the Run refresh cadence (DefaultInterval when <= 0).
	Interval time.Duration
	// Threshold is the classifier operating point
	// (classify.DefaultThreshold when 0).
	Threshold float64
	// Inputs is the side data for the map-build chain; Inputs.ASOf is
	// required.
	Inputs MapInputs
	// Store receives published generations (required).
	Store *snapshot.Store
	// Keep bounds retained generations (DefaultKeep when <= 0).
	Keep int
	// Metrics, when non-nil, registers the live-refresh metric families:
	//
	//	live_refresh_total          refresh ticks attempted
	//	live_refresh_errors_total   ticks that failed
	//	live_publish_total          generations published
	//	live_refresh_seconds        tail→build→publish latency histogram
	//	live_tailed_records_total   spool records consumed
	//	live_stale_records_total    records dropped as older than the window
	//	live_window_stragglers_total  records dropped on arrival as already
	//	                            older than the window (late/out-of-order
	//	                            days; see Window's retention contract)
	//	live_spool_resets_total     spool files found truncated/rewritten
	//	live_spool_oversize_lines_total  lines skipped as over the line cap
	//	live_window_records         records in the current window
	//	live_window_blocks          distinct blocks in the current window
	Metrics *obs.Registry
	// Logf, when non-nil, receives operational log lines from Run.
	Logf func(format string, args ...any)
}

func (c *Config) fillDefaults() error {
	if c.SpoolDir == "" {
		return fmt.Errorf("live: Config.SpoolDir is required")
	}
	if c.Store == nil {
		return fmt.Errorf("live: Config.Store is required")
	}
	if c.Inputs.ASOf == nil {
		return fmt.Errorf("live: Config.Inputs.ASOf is required")
	}
	if c.SpoolPrefix == "" {
		c.SpoolPrefix = DefaultSpoolPrefix
	}
	if c.WindowDays <= 0 {
		c.WindowDays = DefaultWindowDays
	}
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.Threshold == 0 {
		c.Threshold = classify.DefaultThreshold
	}
	if c.Keep <= 0 {
		c.Keep = DefaultKeep
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return nil
}

// Updater drives the live refresh loop. It is not safe for concurrent use;
// run it from one goroutine (Run does).
type Updater struct {
	cfg  Config
	win  *Window
	tail *Tailer

	// published reports whether the store holds a generation — recovered
	// at startup or published by us — so idle ticks can skip republishing.
	published bool

	mTicks      *obs.Counter
	mErrors     *obs.Counter
	mPublish    *obs.Counter
	mTailed     *obs.Counter
	mStale      *obs.Counter
	mStragglers *obs.Counter
	mResets     *obs.Counter
	mOversize   *obs.Counter
	gRecords    *obs.Gauge
	gBlocks     *obs.Gauge
	hRefresh    *obs.Histogram
}

// NewUpdater validates cfg and recovers the updater's window and spool
// positions from the checkpoint of the store's current generation, if any.
// A current generation without a readable checkpoint falls back to an empty
// window and a full spool re-read — correctness never depends on the
// checkpoint, it only saves work.
func NewUpdater(cfg Config) (*Updater, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	u := &Updater{
		cfg:  cfg,
		win:  NewWindow(cfg.WindowDays),
		tail: NewTailer(cfg.SpoolDir, cfg.SpoolPrefix),
	}
	if reg := cfg.Metrics; reg != nil {
		u.mTicks = reg.Counter("live_refresh_total", "Refresh ticks attempted.")
		u.mErrors = reg.Counter("live_refresh_errors_total", "Refresh ticks that failed.")
		u.mPublish = reg.Counter("live_publish_total", "Map generations published.")
		u.mTailed = reg.Counter("live_tailed_records_total", "Spool records consumed.")
		u.mStale = reg.Counter("live_stale_records_total", "Records dropped as older than the window.")
		u.mStragglers = reg.Counter("live_window_stragglers_total", "Records dropped on arrival as already older than the window (late or out-of-order days).")
		u.mResets = reg.Counter("live_spool_resets_total", "Spool files found truncated or rewritten, forcing a re-read.")
		u.mOversize = reg.Counter("live_spool_oversize_lines_total", "Spool lines skipped as longer than the line cap.")
		u.gRecords = reg.Gauge("live_window_records", "Records in the current window.")
		u.gBlocks = reg.Gauge("live_window_blocks", "Distinct blocks in the current window.")
		u.hRefresh = reg.Histogram("live_refresh_seconds", "Tail, build and publish latency of one refresh.", nil)
	}
	cur, ok, err := cfg.Store.Current()
	if err != nil {
		return nil, err
	}
	if ok {
		u.published = true
		if err := u.recover(cur); err != nil {
			cfg.Logf("live: checkpoint of %s unreadable (%v); re-reading spool", cur.Name(), err)
			u.win = NewWindow(cfg.WindowDays)
			u.tail = NewTailer(cfg.SpoolDir, cfg.SpoolPrefix)
		}
	}
	return u, nil
}

// Refresh reports what one tick did.
type Refresh struct {
	// Published is false when the tick found no new records and left the
	// current generation in place.
	Published bool
	// Generation is the published generation (zero when !Published).
	Generation snapshot.Generation
	// NewRecords is how many spool records this tick consumed.
	NewRecords int
	// WindowRecords is the record count of the window after the tick.
	WindowRecords int
	// Entries is the published map's prefix count (0 when !Published).
	Entries int
}

// Tick runs one refresh: tail the spool, fold new records into the window,
// rebuild the map, and publish it (with the updater's checkpoint) as a new
// generation. A tick that consumes no new records publishes nothing —
// unless the store is still empty, in which case a first (possibly empty)
// generation is published so the serving side has something to load.
func (u *Updater) Tick() (Refresh, error) {
	start := time.Now()
	u.mTicks.Inc()
	res, err := u.tick()
	if err != nil {
		u.mErrors.Inc()
		return res, err
	}
	if res.Published {
		u.mPublish.Inc()
		u.hRefresh.Observe(time.Since(start).Seconds())
	}
	return res, nil
}

func (u *Updater) tick() (Refresh, error) {
	staleBefore, stragglersBefore := u.win.Stale(), u.win.Stragglers()
	resetsBefore, oversizeBefore := u.tail.Resets(), u.tail.Oversize()
	n, err := u.tail.Poll(func(rec beacon.Record) { u.win.Add(rec) })
	u.mTailed.Add(uint64(n))
	u.mStale.Add(uint64(u.win.Stale() - staleBefore))
	u.mStragglers.Add(uint64(u.win.Stragglers() - stragglersBefore))
	u.mResets.Add(uint64(u.tail.Resets() - resetsBefore))
	u.mOversize.Add(uint64(u.tail.Oversize() - oversizeBefore))
	u.gRecords.Set(int64(u.win.Records()))
	if err != nil {
		return Refresh{}, err
	}
	if n == 0 && u.published {
		return Refresh{WindowRecords: u.win.Records()}, nil
	}

	agg := u.win.Merged()
	u.gBlocks.Set(int64(agg.Blocks()))
	m, err := BuildMap(agg, u.cfg.Threshold, u.win.Period(), u.cfg.Inputs)
	if err != nil {
		return Refresh{}, err
	}
	ck, err := u.checkpoint()
	if err != nil {
		return Refresh{}, err
	}
	gen, err := u.cfg.Store.Publish(func(dir string) error {
		f, err := os.Create(filepath.Join(dir, MapFile))
		if err != nil {
			return err
		}
		if err := m.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, CheckpointFile), ck, 0o644); err != nil {
			return err
		}
		meta := history.GenMeta{
			BuiltUnix: time.Now().Unix(),
			Entries:   m.Len(),
			Period:    m.Period,
			Threshold: u.cfg.Threshold,
			RAT:       m.HasRAT(),
		}
		meta.DayFirst, meta.DayLast, _ = u.win.DayRange()
		return history.WriteMeta(dir, meta)
	})
	if err != nil {
		return Refresh{}, err
	}
	u.published = true
	if _, err := u.cfg.Store.Prune(u.cfg.Keep); err != nil {
		// Retention is housekeeping; the new generation is already live.
		u.cfg.Logf("live: prune: %v", err)
	}
	return Refresh{
		Published:     true,
		Generation:    gen,
		NewRecords:    n,
		WindowRecords: u.win.Records(),
		Entries:       m.Len(),
	}, nil
}

// Run ticks immediately, then on every interval until ctx is done. Tick
// errors are logged and counted, not fatal: a transient spool or disk
// failure must not kill the refresh loop.
func (u *Updater) Run(ctx context.Context) error {
	t := time.NewTicker(u.cfg.Interval)
	defer t.Stop()
	for {
		res, err := u.Tick()
		switch {
		case err != nil:
			u.cfg.Logf("live: refresh: %v", err)
		case res.Published:
			u.cfg.Logf("live: published %s: %d entries from %d window records (+%d new)",
				res.Generation.Name(), res.Entries, res.WindowRecords, res.NewRecords)
		}
		select {
		case <-ctx.Done():
			return nil
		case <-t.C:
		}
	}
}

// checkpoint state serialization. Buckets and blocks are sorted (see
// encodeBuckets) so the bytes are deterministic for a given window state.

type checkpointState struct {
	Format     string             `json:"format"`
	WindowDays int                `json:"window_days"`
	Latest     int64              `json:"latest_day"`
	Buckets    []DayState         `json:"buckets"`
	Files      map[string]FilePos `json:"files"`
}

func (u *Updater) checkpoint() ([]byte, error) {
	st := checkpointState{
		Format:     checkpointFormat,
		WindowDays: u.win.days,
		Latest:     u.win.latest,
		Buckets:    encodeBuckets(u.win.buckets),
		Files:      u.tail.Positions(),
	}
	if !u.win.nonEmpty {
		st.Latest = 0
	}
	return json.Marshal(st)
}

// recover restores window and tail positions from a generation's
// checkpoint.
func (u *Updater) recover(gen snapshot.Generation) error {
	raw, err := os.ReadFile(gen.Path(CheckpointFile))
	if err != nil {
		return err
	}
	var st checkpointState
	if err := json.Unmarshal(raw, &st); err != nil {
		return err
	}
	if st.Format != checkpointFormat {
		return fmt.Errorf("unknown checkpoint format %q", st.Format)
	}
	win := NewWindow(u.cfg.WindowDays)
	buckets, records, err := decodeBuckets(st.Buckets)
	if err != nil {
		return err
	}
	win.buckets = buckets
	win.records = records
	if len(st.Buckets) > 0 || st.Latest != 0 {
		win.latest = st.Latest
		win.nonEmpty = true
		win.prune() // cfg.WindowDays may be narrower than the checkpoint's
	}
	u.win = win
	u.tail = NewTailer(u.cfg.SpoolDir, u.cfg.SpoolPrefix)
	u.tail.Restore(st.Files)
	return nil
}

// ReadGenerationMap loads the published map of a generation.
func ReadGenerationMap(gen snapshot.Generation) (*cellmap.Map, error) {
	f, err := os.Open(gen.Path(MapFile))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return cellmap.Read(f)
}
