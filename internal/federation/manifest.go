// Package federation turns N independent beacond collectors into one
// aggregation plane: the paper's detection substrate is a planet-wide RUM
// collector fleet, not a single process, and cellular-usage conclusions
// only hold when observations from many vantage points merge into one
// sliding window.
//
// The plane has two halves. A Shipper runs next to each collector's spool:
// it watches for sealed shards (logio's atomic .part → rename sealing
// guarantees it never sees a torn shard), slices them into
// content-addressed segments under a signed-length manifest, and ships
// them over HTTP with offset checkpoints and bounded retry — resuming
// after a crash without re-shipping checkpointed bytes. A Receiver mounts
// in the aggregator (cellmapd's embedded updater): it verifies digests,
// deduplicates by (collector, shard, offset), folds records exactly once
// into a collector-keyed live.MultiWindow, and publishes map generations
// whose checkpoint captures both the window state and every source's
// acked offset atomically — the PR 3 invariant "CURRENT's checkpoint
// describes exactly the records baked into CURRENT's map", extended
// across a fleet.
//
// Exactly-once argument, in one paragraph: a collector's sealed spool is
// the durable log; the receiver's acked offset per (collector, shard) is
// advisory until a generation publishes, at which point the checkpointed
// offsets become durable. A segment folds only when it starts exactly at
// the acked offset; replays (offset+length <= acked) are acknowledged
// without folding, gaps and overlaps are rejected with the authoritative
// acked offset so the shipper rewinds to a state both sides agree on. An
// aggregator crash rolls acked back to the last published checkpoint —
// and because the window state in that checkpoint excludes everything
// after it, re-shipped bytes fold exactly once into exactly the right
// window. A shipper crash merely re-offers bytes the receiver already
// acked, which dedup absorbs.
package federation

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"cellspot/internal/logio"
)

const (
	// ManifestFormat versions the segment wire format.
	ManifestFormat = "cellspot-manifest/1"
	// SegmentContentType is the media type of a framed segment POST.
	SegmentContentType = "application/x-cellspot-segment"
	// SegmentsPath is the receiver's segment ingestion route.
	SegmentsPath = "/v1/federation/segments"
	// StatusPath is the receiver's observability route.
	StatusPath = "/v1/federation/status"

	// MaxManifestBytes bounds the manifest line of a framed segment.
	MaxManifestBytes = 16 << 10
	// MaxSegmentBytes bounds one segment's payload. A shipper never cuts
	// segments this large (its configured size is far smaller; oversized
	// single lines are already capped at logio.MaxLineBytes), so the
	// receiver can treat anything bigger as hostile or corrupt.
	MaxSegmentBytes = logio.MaxLineBytes + (1 << 20)
)

// Manifest describes one content-addressed segment of a sealed spool
// shard: who collected it, which shard, which byte range, what it hashes
// to, and which UTC days it covers. The manifest rides as the first line
// of the framed request body, ahead of the payload it describes.
type Manifest struct {
	Format    string `json:"format"`
	Collector string `json:"collector"`
	Shard     string `json:"shard"`  // shard base name, e.g. beacon-0000.jsonl
	Offset    int64  `json:"offset"` // segment start, bytes into the shard
	Length    int64  `json:"length"` // payload bytes; 0 is a probe (offset ack check)
	SHA256    string `json:"sha256"` // hex digest of the payload ("" on probes)
	Records   int    `json:"records"`
	ShardSize int64  `json:"shard_size"`        // the sealed shard's full size
	DayMin    string `json:"day_min,omitempty"` // oldest UTC day in the segment
	DayMax    string `json:"day_max,omitempty"` // newest UTC day in the segment
}

// validCollectorID reports whether id is usable as a collector identity:
// non-empty, and safe inside checkpoint keys, file names and log lines.
func validCollectorID(id string) bool {
	if id == "" || len(id) > 128 {
		return false
	}
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '-', r == '_', r == '.':
		default:
			return false
		}
	}
	return true
}

// Validate checks structural sanity; it does not verify the digest (the
// receiver does that against the payload it actually read).
func (m Manifest) Validate() error {
	if m.Format != ManifestFormat {
		return fmt.Errorf("federation: manifest format %q, want %q", m.Format, ManifestFormat)
	}
	if !validCollectorID(m.Collector) {
		return fmt.Errorf("federation: invalid collector ID %q", m.Collector)
	}
	if m.Shard == "" || strings.ContainsAny(m.Shard, "/\\") {
		return fmt.Errorf("federation: invalid shard name %q", m.Shard)
	}
	if m.Offset < 0 || m.Length < 0 || m.ShardSize < 0 {
		return fmt.Errorf("federation: negative range in manifest (%d+%d of %d)", m.Offset, m.Length, m.ShardSize)
	}
	if m.Length > MaxSegmentBytes {
		return fmt.Errorf("federation: segment length %d over the %d cap", m.Length, MaxSegmentBytes)
	}
	if m.Offset+m.Length > m.ShardSize {
		return fmt.Errorf("federation: segment %d+%d overruns shard size %d", m.Offset, m.Length, m.ShardSize)
	}
	if m.Length > 0 {
		if len(m.SHA256) != sha256.Size*2 {
			return fmt.Errorf("federation: sha256 %q is not a %d-hex digest", m.SHA256, sha256.Size*2)
		}
		if _, err := hex.DecodeString(m.SHA256); err != nil {
			return fmt.Errorf("federation: sha256 not hex: %w", err)
		}
	}
	return nil
}

// IsProbe reports whether the manifest carries no payload: a shipper
// asking "how far are you acked, and how much of that is durable?".
func (m Manifest) IsProbe() bool { return m.Length == 0 }

// Gzipped reports whether the shard is a gzip member. Gzip shards cannot
// be decoded from a mid-stream offset, so they ship as one whole-file
// segment; both sides enforce it.
func (m Manifest) Gzipped() bool { return strings.HasSuffix(m.Shard, ".gz") }

// Digest returns the hex SHA-256 of a payload.
func Digest(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// EncodeSegment frames a manifest and its payload for the wire: one JSON
// manifest line, then exactly Length payload bytes.
func EncodeSegment(w io.Writer, m Manifest, payload []byte) error {
	if int64(len(payload)) != m.Length {
		return fmt.Errorf("federation: payload is %d bytes, manifest says %d", len(payload), m.Length)
	}
	raw, err := json.Marshal(m)
	if err != nil {
		return err
	}
	if len(raw) > MaxManifestBytes {
		return fmt.Errorf("federation: manifest is %d bytes, cap %d", len(raw), MaxManifestBytes)
	}
	if _, err := w.Write(append(raw, '\n')); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// DecodeSegment reads a framed segment: the manifest line, validated, then
// exactly Length payload bytes. It rejects oversized manifests and
// payloads before buffering them, so a hostile body cannot balloon memory.
func DecodeSegment(r io.Reader) (Manifest, []byte, error) {
	br := bufio.NewReaderSize(r, 4<<10)
	line, err := readBoundedLine(br, MaxManifestBytes)
	if err != nil {
		return Manifest{}, nil, fmt.Errorf("federation: read manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(line, &m); err != nil {
		return Manifest{}, nil, fmt.Errorf("federation: parse manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return Manifest{}, nil, err
	}
	payload := make([]byte, m.Length)
	if _, err := io.ReadFull(br, payload); err != nil {
		return Manifest{}, nil, fmt.Errorf("federation: segment payload short of %d bytes: %w", m.Length, err)
	}
	return m, payload, nil
}

// readBoundedLine reads one newline-terminated line of at most max bytes.
func readBoundedLine(br *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := br.ReadSlice('\n')
		buf = append(buf, chunk...)
		if len(buf) > max {
			return nil, fmt.Errorf("line over %d bytes", max)
		}
		if err == bufio.ErrBufferFull {
			continue
		}
		if err != nil {
			return nil, err
		}
		return buf[:len(buf)-1], nil
	}
}
