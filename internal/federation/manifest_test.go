package federation

import (
	"bytes"
	"strings"
	"testing"
)

func validManifest(payload []byte) Manifest {
	return Manifest{
		Format:    ManifestFormat,
		Collector: "eu-1",
		Shard:     "beacon-0000.jsonl",
		Offset:    0,
		Length:    int64(len(payload)),
		SHA256:    Digest(payload),
		Records:   2,
		ShardSize: int64(len(payload)) + 100,
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	payload := []byte("{\"ts\":\"2017-01-01T00:00:00Z\"}\n{\"ts\":\"2017-01-02T00:00:00Z\"}\n")
	m := validManifest(payload)
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, m, payload); err != nil {
		t.Fatal(err)
	}
	got, gotPayload, err := DecodeSegment(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatalf("manifest round-trip: got %+v, want %+v", got, m)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Fatal("payload round-trip diverges")
	}
}

func TestEncodeSegmentLengthMismatch(t *testing.T) {
	m := validManifest([]byte("xx\n"))
	m.Length = 99
	if err := EncodeSegment(&bytes.Buffer{}, m, []byte("xx\n")); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestManifestValidate(t *testing.T) {
	payload := []byte("x\n")
	cases := []struct {
		name   string
		mutate func(*Manifest)
	}{
		{"wrong format", func(m *Manifest) { m.Format = "cellspot-manifest/99" }},
		{"empty collector", func(m *Manifest) { m.Collector = "" }},
		{"collector with slash", func(m *Manifest) { m.Collector = "eu/1" }},
		{"collector with space", func(m *Manifest) { m.Collector = "eu 1" }},
		{"shard with path", func(m *Manifest) { m.Shard = "../beacon-0000.jsonl" }},
		{"negative offset", func(m *Manifest) { m.Offset = -1 }},
		{"negative length", func(m *Manifest) { m.Length = -1; m.SHA256 = "" }},
		{"range overruns shard", func(m *Manifest) { m.ShardSize = m.Length - 1 }},
		{"oversized length", func(m *Manifest) { m.Length = MaxSegmentBytes + 1; m.ShardSize = m.Length }},
		{"short digest", func(m *Manifest) { m.SHA256 = "abcd" }},
		{"non-hex digest", func(m *Manifest) { m.SHA256 = strings.Repeat("zz", 32) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := validManifest(payload)
			tc.mutate(&m)
			if err := m.Validate(); err == nil {
				t.Fatalf("%s accepted", tc.name)
			}
		})
	}
	m := validManifest(payload)
	if err := m.Validate(); err != nil {
		t.Fatalf("valid manifest rejected: %v", err)
	}
	probe := m
	probe.Length, probe.SHA256 = 0, ""
	if err := probe.Validate(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	if !probe.IsProbe() || m.IsProbe() {
		t.Fatal("IsProbe misclassifies")
	}
}

func TestDecodeSegmentRejectsOversizedManifest(t *testing.T) {
	line := strings.Repeat("a", MaxManifestBytes+1) + "\n"
	if _, _, err := DecodeSegment(strings.NewReader(line)); err == nil {
		t.Fatal("oversized manifest line accepted")
	}
}

func TestDecodeSegmentShortPayload(t *testing.T) {
	payload := []byte("hello\n")
	m := validManifest(payload)
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, m, payload); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-3]
	if _, _, err := DecodeSegment(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
