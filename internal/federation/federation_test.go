package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/live"
	"cellspot/internal/logio"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

// --- fixtures ---------------------------------------------------------

func frec(day int64, ip string, conn string) beacon.Record {
	return beacon.Record{
		Time: time.Unix(day*86400+3600, 0).UTC(),
		IP:   netip.MustParseAddr(ip),
		Conn: conn,
	}
}

// genRecords builds a deterministic record stream spread over nDays
// consecutive days starting at baseDay, across many /24 blocks with a
// cellular-heavy connection mix. All days fit one default window, so fold
// order never changes what is retained.
func genRecords(n int, baseDay int64, nDays int) []beacon.Record {
	conns := []string{
		netinfo.ConnCellular.String(),
		netinfo.ConnCellular.String(),
		netinfo.ConnWiFi.String(),
		netinfo.ConnUnknown.String(),
	}
	recs := make([]beacon.Record, 0, n)
	for i := 0; i < n; i++ {
		ip := fmt.Sprintf("10.%d.%d.%d", (i/17)%200, i%251, 1+(i*7)%250)
		day := baseDay + int64(i%nDays)
		recs = append(recs, frec(day, ip, conns[i%len(conns)]))
	}
	return recs
}

func testInputs() live.MapInputs {
	return live.MapInputs{ASOf: func(netaddr.Block) (uint32, bool) { return 64496, true }}
}

// writeSpool appends records to a collector spool with sealed-shard
// rotation every perShard records, like a running beacond would.
func writeSpool(t testing.TB, dir string, recs []beacon.Record, perShard int, gzipped bool) {
	t.Helper()
	sp := logio.NewSpool(dir, "beacon", gzipped, perShard)
	for _, rec := range recs {
		if err := sp.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
}

// plane is one aggregator: store + receiver + HTTP server.
type plane struct {
	store *snapshot.Store
	recv  *Receiver
	srv   *httptest.Server
	reg   *obs.Registry
}

func newPlane(t testing.TB, storeDir string) *plane {
	t.Helper()
	store, err := snapshot.Open(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	recv, err := NewReceiver(ReceiverConfig{
		Inputs:     testInputs(),
		Store:      store,
		RetryAfter: time.Millisecond,
		Metrics:    reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	recv.MountRoutes(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &plane{store: store, recv: recv, srv: srv, reg: reg}
}

func (p *plane) counter(name string) uint64 { return p.reg.Counter(name, "").Value() }

func newShipper(t testing.TB, spoolDir, id, target string, segBytes int) *Shipper {
	t.Helper()
	s, err := NewShipper(ShipperConfig{
		SpoolDir:     spoolDir,
		CollectorID:  id,
		Target:       target,
		SegmentBytes: segBytes,
		MaxAttempts:  4,
		RetryBase:    time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// postSegment sends one raw framed segment and decodes the reply.
func postSegment(t testing.TB, target string, m Manifest, payload []byte) (int, SegmentResponse) {
	t.Helper()
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, m, payload); err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(target+SegmentsPath, SegmentContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var resp SegmentResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&resp); err != nil {
		t.Fatal(err)
	}
	return httpResp.StatusCode, resp
}

func receiverStatus(t testing.TB, target string) Status {
	t.Helper()
	httpResp, err := http.Get(target + StatusPath)
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var st Status
	if err := json.NewDecoder(httpResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// offlineMap folds recs through a single-source Window and the offline
// build chain — the ground truth a federated build must match exactly.
func offlineMap(t testing.TB, recs []beacon.Record) []byte {
	t.Helper()
	win := live.NewWindow(live.DefaultWindowDays)
	for _, rec := range recs {
		win.Add(rec)
	}
	m, err := live.BuildMap(win.Merged(), classify.DefaultThreshold, win.Period(), testInputs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func currentMapBytes(t testing.TB, store *snapshot.Store) []byte {
	t.Helper()
	cur, ok, err := store.Current()
	if err != nil || !ok {
		t.Fatalf("no current generation (ok=%v err=%v)", ok, err)
	}
	raw, err := os.ReadFile(cur.Path(live.MapFile))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// --- receiver dedup / fold rules --------------------------------------

// TestReceiverDedup drives the exactly-once fold rules over one shard:
// replayed manifests, overlapping byte ranges, gaps, digest mismatches and
// probes, asserting the window never double-folds.
func TestReceiverDedup(t *testing.T) {
	recs := genRecords(40, 17000, 4)
	spool := t.TempDir()
	writeSpool(t, spool, recs, 0, false)
	raw, err := os.ReadFile(filepath.Join(spool, "beacon-0000.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	size := int64(len(raw))
	// Split at a line boundary near the middle.
	cut := int64(bytes.IndexByte(raw[size/2:], '\n')) + size/2 + 1
	seg1, seg2 := raw[:cut], raw[cut:]
	countLines := func(b []byte) int { return bytes.Count(b, []byte("\n")) }

	mf := func(offset int64, payload []byte) Manifest {
		return Manifest{
			Format: ManifestFormat, Collector: "c-1", Shard: "beacon-0000.jsonl",
			Offset: offset, Length: int64(len(payload)),
			SHA256: Digest(payload), Records: countLines(payload), ShardSize: size,
		}
	}

	p := newPlane(t, t.TempDir())
	steps := []struct {
		name        string
		m           Manifest
		payload     []byte
		wantStatus  int
		wantDup     bool
		wantRecords int // window records after the step
	}{
		{"first segment folds", mf(0, seg1), seg1, 200, false, countLines(seg1)},
		{"exact replay is a duplicate", mf(0, seg1), seg1, 200, true, countLines(seg1)},
		{"overlapping range rejected", mf(cut/2, raw[cut/2:cut+64]), raw[cut/2 : cut+64], 409, false, countLines(seg1)},
		{"gap rejected", mf(cut+10, seg2[10:]), seg2[10:], 409, false, countLines(seg1)},
		{"second segment folds", mf(cut, seg2), seg2, 200, false, len(recs)},
		{"replay of the whole shard is a duplicate", mf(0, raw), raw, 200, true, len(recs)},
	}
	for _, tc := range steps {
		t.Run(tc.name, func(t *testing.T) {
			status, resp := postSegment(t, p.srv.URL, tc.m, tc.payload)
			if status != tc.wantStatus {
				t.Fatalf("status = %d (%s), want %d", status, resp.Error, tc.wantStatus)
			}
			if resp.Duplicate != tc.wantDup {
				t.Fatalf("duplicate = %v, want %v", resp.Duplicate, tc.wantDup)
			}
			if got := receiverStatus(t, p.srv.URL).Records; got != tc.wantRecords {
				t.Fatalf("window records = %d, want %d", got, tc.wantRecords)
			}
			if status == 409 && resp.Acked != cut && tc.name == "gap rejected" {
				// 409 must carry the authoritative acked offset.
				t.Fatalf("409 acked = %d, want %d", resp.Acked, cut)
			}
		})
	}

	// Probe at the acked offset confirms the whole shard is in.
	if status, resp := postSegment(t, p.srv.URL, mf(size, nil), nil); status != 200 || resp.Acked != size {
		t.Fatalf("probe: status %d acked %d", status, resp.Acked)
	}

	// Digest mismatch: right offset, manifest digest does not match the
	// payload. Must not fold and must not advance acked. (A replayed
	// offset would be absorbed before the digest check, so use a fresh
	// shard.)
	corrupt := mf(0, seg1)
	corrupt.Shard = "beacon-0001.jsonl"
	corrupt.SHA256 = Digest(seg2) // wrong digest for seg1
	if status, resp := postSegment(t, p.srv.URL, corrupt, seg1); status != 400 {
		t.Fatalf("digest mismatch: status %d (%s)", status, resp.Error)
	}
	if got := p.counter("federation_recv_digest_mismatch_total"); got != 1 {
		t.Fatalf("digest mismatch counter = %d, want 1", got)
	}
	if got := receiverStatus(t, p.srv.URL).Records; got != len(recs) {
		t.Fatalf("window records after digest mismatch = %d, want %d", got, len(recs))
	}

	// Probe beyond acked: the shipper thinks more was acked than we do.
	probe := Manifest{
		Format: ManifestFormat, Collector: "c-1", Shard: "beacon-0002.jsonl",
		Offset: 100, ShardSize: 200,
	}
	if status, resp := postSegment(t, p.srv.URL, probe, nil); status != 409 || resp.Acked != 0 {
		t.Fatalf("ahead probe: status %d acked %d, want 409/0", status, resp.Acked)
	}

	if dup := p.counter("federation_recv_duplicates_total"); dup != 2 {
		t.Fatalf("duplicates counter = %d, want 2", dup)
	}
}

// TestReceiverBackpressure: a draining receiver answers payloads with 429 +
// Retry-After but keeps answering probes.
func TestReceiverBackpressure(t *testing.T) {
	p := newPlane(t, t.TempDir())
	p.recv.mu.Lock()
	p.recv.draining = true
	p.recv.mu.Unlock()

	payload := []byte("{\"ts\":\"2016-07-01T00:00:00Z\",\"ip\":\"10.0.0.1\",\"conn\":\"cellular\"}\n")
	m := Manifest{
		Format: ManifestFormat, Collector: "c-1", Shard: "beacon-0000.jsonl",
		Offset: 0, Length: int64(len(payload)), SHA256: Digest(payload),
		Records: 1, ShardSize: int64(len(payload)),
	}
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, m, payload); err != nil {
		t.Fatal(err)
	}
	httpResp, err := http.Post(p.srv.URL+SegmentsPath, SegmentContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	httpResp.Body.Close()
	if httpResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("draining receiver answered %d, want 429", httpResp.StatusCode)
	}
	if httpResp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	probe := m
	probe.Length, probe.SHA256 = 0, ""
	if status, _ := postSegment(t, p.srv.URL, probe, nil); status != 200 {
		t.Fatalf("probe during drain answered %d, want 200", status)
	}

	p.recv.mu.Lock()
	p.recv.draining = false
	p.recv.mu.Unlock()
	if status, _ := postSegment(t, p.srv.URL, m, payload); status != 200 {
		t.Fatal("fold after drain failed")
	}
}

// --- shipper ----------------------------------------------------------

// TestShipperShipsAndResumes: a shipper drains a spool, a fresh shipper
// process (same state file) re-ships nothing, and new shards written by a
// restarted collector ship incrementally.
func TestShipperShipsAndResumes(t *testing.T) {
	recs := genRecords(600, 17000, 5)
	spool := t.TempDir()
	writeSpool(t, spool, recs[:400], 100, false)

	p := newPlane(t, t.TempDir())
	s1 := newShipper(t, spool, "c-1", p.srv.URL, 2048)
	rep, err := s1.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 400 || rep.LagBytes != 0 {
		t.Fatalf("first poll: %+v", rep)
	}
	if got := receiverStatus(t, p.srv.URL).Records; got != 400 {
		t.Fatalf("receiver records = %d, want 400", got)
	}

	// Simulated restart: a new shipper from the same checkpoint must ship
	// zero bytes.
	s2 := newShipper(t, spool, "c-1", p.srv.URL, 2048)
	rep, err = s2.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 0 || rep.Bytes != 0 {
		t.Fatalf("restarted shipper re-shipped: %+v", rep)
	}
	if dup := p.counter("federation_recv_duplicates_total"); dup != 0 {
		t.Fatalf("receiver saw %d duplicates, want 0", dup)
	}

	// Collector restart: the spool resumes numbering, the shipper picks up
	// only the new shards.
	writeSpool(t, spool, recs[400:], 100, false)
	rep, err = s2.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != 200 {
		t.Fatalf("incremental poll records = %d, want 200", rep.Records)
	}
	if got := receiverStatus(t, p.srv.URL).Records; got != 600 {
		t.Fatalf("receiver records = %d, want 600", got)
	}

	st, err := s2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Shards != 6 || st.AckedBytes != st.SealedBytes || st.OldestUnshippedAgeSeconds != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.DurableBytes != 0 {
		t.Fatalf("durable before any publish = %d, want 0", st.DurableBytes)
	}

	// A publish makes the shipped bytes durable; the next poll's probes
	// observe it.
	if _, err := p.recv.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st, err = s2.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DurableBytes != st.SealedBytes {
		t.Fatalf("durable after publish = %d, want %d", st.DurableBytes, st.SealedBytes)
	}
}

// failAfter injects transport failures after n successful requests.
type failAfter struct {
	mu sync.Mutex
	n  int
}

func (f *failAfter) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	ok := f.n > 0
	if ok {
		f.n--
	}
	f.mu.Unlock()
	if !ok {
		return nil, errors.New("injected network failure")
	}
	return http.DefaultTransport.RoundTrip(req)
}

// TestShipperCrashMidStream: a shipper dying mid-shard must resume from
// its checkpoint without double-folding anything.
func TestShipperCrashMidStream(t *testing.T) {
	recs := genRecords(500, 17000, 5)
	spool := t.TempDir()
	writeSpool(t, spool, recs, 0, false)

	p := newPlane(t, t.TempDir())
	stateFile := filepath.Join(spool, "state.json")
	s1, err := NewShipper(ShipperConfig{
		SpoolDir: spool, CollectorID: "c-1", Target: p.srv.URL,
		StateFile: stateFile, SegmentBytes: 1024,
		MaxAttempts: 2, RetryBase: time.Millisecond,
		HTTPClient: &http.Client{Transport: &failAfter{n: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.PollOnce(context.Background()); err == nil {
		t.Fatal("shipper survived the injected crash")
	}
	mid := receiverStatus(t, p.srv.URL).Records
	if mid == 0 || mid == len(recs) {
		t.Fatalf("crash landed at %d records; want a genuine mid-stream point", mid)
	}

	s2, err := NewShipper(ShipperConfig{
		SpoolDir: spool, CollectorID: "c-1", Target: p.srv.URL,
		StateFile: stateFile, SegmentBytes: 1024,
		MaxAttempts: 4, RetryBase: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	st := receiverStatus(t, p.srv.URL)
	if st.Records != len(recs) {
		t.Fatalf("records after resume = %d, want %d (exactly once)", st.Records, len(recs))
	}
}

// TestGzipShardShipsWhole: gzip shards cannot be resumed mid-stream, so
// they ship as one segment regardless of the configured segment size.
func TestGzipShardShipsWhole(t *testing.T) {
	recs := genRecords(300, 17000, 3)
	spool := t.TempDir()
	writeSpool(t, spool, recs, 0, true)

	p := newPlane(t, t.TempDir())
	s := newShipper(t, spool, "c-gz", p.srv.URL, 256) // far below the shard size
	rep, err := s.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments != 1 {
		t.Fatalf("gzip shard shipped as %d segments, want 1", rep.Segments)
	}
	if got := receiverStatus(t, p.srv.URL).Records; got != len(recs) {
		t.Fatalf("receiver records = %d, want %d", got, len(recs))
	}
}

// --- exactly-once across aggregator restart ---------------------------

// TestReceiverRestartExactlyOnce is the restart-equivalence proof: acked
// offsets beyond the last published checkpoint die with the aggregator,
// the recovered window excludes those records, shippers rewind on 409 and
// re-ship — and the final map is byte-identical to the offline build, with
// zero records lost or double-folded.
func TestReceiverRestartExactlyOnce(t *testing.T) {
	recs := genRecords(800, 17000, 6)
	spool := t.TempDir()
	storeDir := t.TempDir()
	writeSpool(t, spool, recs[:500], 250, false)

	p1 := newPlane(t, storeDir)
	stateFile := filepath.Join(spool, "state.json")
	mkShipper := func(target string) *Shipper {
		s, err := NewShipper(ShipperConfig{
			SpoolDir: spool, CollectorID: "c-1", Target: target,
			StateFile: stateFile, SegmentBytes: 4096,
			MaxAttempts: 4, RetryBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s := mkShipper(p1.srv.URL)
	if _, err := s.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Publish: the first 500 records become durable.
	if _, err := p1.recv.Tick(); err != nil {
		t.Fatal(err)
	}
	// Ship 300 more — acked but never published.
	writeSpool(t, spool, recs[500:], 250, false)
	if _, err := s.PollOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got := receiverStatus(t, p1.srv.URL).Records; got != 800 {
		t.Fatalf("pre-crash records = %d, want 800", got)
	}

	// Aggregator crash: in-memory acks and window die; the store survives.
	p1.srv.Close()
	p2 := newPlane(t, storeDir)
	if got := p2.recv.win.Records(); got != 500 {
		t.Fatalf("recovered window has %d records, want the 500 published ones", got)
	}

	// A restarted shipper (same checkpoint, which claims 800 acked) must
	// converge: probes hit 409, rewind, re-ship the unpublished tail.
	s2 := mkShipper(p2.srv.URL)
	rep, err := s2.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewinds == 0 {
		t.Fatal("no rewind after aggregator restart; acks were silently trusted")
	}
	st := receiverStatus(t, p2.srv.URL)
	if st.Records != 800 {
		t.Fatalf("records after recovery = %d, want exactly 800 (no loss, no double-fold)", st.Records)
	}
	if _, err := p2.recv.Tick(); err != nil {
		t.Fatal(err)
	}
	if got, want := currentMapBytes(t, p2.store), offlineMap(t, recs); !bytes.Equal(got, want) {
		t.Fatal("federated map after restart diverges from the offline build")
	}
}

// --- concurrency ------------------------------------------------------

// TestConcurrentShippers runs three shippers and a publishing tick loop
// concurrently against one receiver; run under -race in CI. Every record
// must fold exactly once.
func TestConcurrentShippers(t *testing.T) {
	total := 900
	all := genRecords(total, 17000, 5)
	p := newPlane(t, t.TempDir())

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		spool := t.TempDir()
		recs := all[i*total/3 : (i+1)*total/3]
		writeSpool(t, spool, recs, 75, false)
		s, err := NewShipper(ShipperConfig{
			SpoolDir: spool, CollectorID: fmt.Sprintf("c-%d", i), Target: p.srv.URL,
			SegmentBytes: 1024, Interval: 5 * time.Millisecond,
			MaxAttempts: 6, RetryBase: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() { defer wg.Done(); s.Run(ctx) }()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for ctx.Err() == nil {
			if _, err := p.recv.Tick(); err != nil {
				t.Error(err)
				return
			}
			time.Sleep(3 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(30 * time.Second)
	for {
		st := receiverStatus(t, p.srv.URL)
		if st.Records == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("receiver stuck at %d/%d records", st.Records, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	st := receiverStatus(t, p.srv.URL)
	if st.Records != total {
		t.Fatalf("final records = %d, want %d", st.Records, total)
	}
	per := st.Sources
	if len(per) != 3 {
		t.Fatalf("sources = %d, want 3", len(per))
	}
	sum := 0
	for _, n := range per {
		sum += n
	}
	if sum != total {
		t.Fatalf("per-source sum = %d, want %d", sum, total)
	}
}
