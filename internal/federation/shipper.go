package federation

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"cellspot/internal/logio"
	"cellspot/internal/obs"
)

const (
	shipperCheckpointFormat = "cellspot-shipper-checkpoint/1"

	// DefaultSegmentBytes is the target segment size. Segments cut at line
	// boundaries, so real segments run slightly short of this (or longer,
	// up to one full line, when a single record overruns it).
	DefaultSegmentBytes = 1 << 20
	// DefaultShipInterval is the Run polling cadence.
	DefaultShipInterval = 2 * time.Second
	// DefaultMaxAttempts bounds delivery attempts per segment.
	DefaultMaxAttempts = 8
	// DefaultRetryBase is the first retry backoff; it doubles per attempt.
	DefaultRetryBase = 100 * time.Millisecond
	// DefaultShipTimeout is the per-request deadline floor: even a
	// zero-length probe gets this long before the attempt is abandoned.
	DefaultShipTimeout = 30 * time.Second
	// DefaultMinShipRate is the assumed worst-case link rate used to scale
	// the per-request deadline with segment size (bytes per second). A
	// 1 MiB segment over a 128 KiB/s floor adds 8s to the deadline.
	DefaultMinShipRate = 128 << 10
)

// ShipperConfig parameterizes a Shipper.
type ShipperConfig struct {
	// SpoolDir is the collector's spool directory (required).
	SpoolDir string
	// Prefix is the spool shard prefix (live.DefaultSpoolPrefix's value,
	// "beacon", when empty).
	Prefix string
	// CollectorID identifies this collector in manifests and receiver
	// checkpoints (required; letters, digits, ".", "-", "_").
	CollectorID string
	// Target is the aggregator's base URL, e.g. "http://agg:8791"
	// (required). Segments post to Target+SegmentsPath.
	Target string
	// StateFile holds the shipper's offset checkpoint
	// (SpoolDir/.shipper-<CollectorID>.json when empty). It is written
	// atomically (tmp + rename) after every acknowledged segment, so a
	// restart resumes without re-shipping checkpointed bytes.
	StateFile string
	// SegmentBytes is the target segment size (DefaultSegmentBytes when
	// <= 0).
	SegmentBytes int
	// Interval is the Run polling cadence (DefaultShipInterval when <= 0).
	Interval time.Duration
	// MaxAttempts bounds delivery attempts per segment
	// (DefaultMaxAttempts when <= 0).
	MaxAttempts int
	// RetryBase is the initial backoff, doubling per attempt
	// (DefaultRetryBase when <= 0). 429 responses honor Retry-After
	// instead when present.
	RetryBase time.Duration
	// ShipTimeout is the per-request deadline floor (DefaultShipTimeout
	// when <= 0). Each delivery attempt runs under a context deadline of
	// ShipTimeout plus the time the segment body needs at MinShipRate, so
	// a large segment on a slow link is not killed by a flat timeout while
	// a wedged connection still fails promptly.
	ShipTimeout time.Duration
	// MinShipRate is the slowest link rate the deadline budget assumes, in
	// bytes per second (DefaultMinShipRate when <= 0).
	MinShipRate int
	// HTTPClient defaults to a client with no flat timeout: per-attempt
	// deadlines (see ShipTimeout) govern instead. A caller-supplied client
	// keeps whatever Timeout it carries, which then caps every attempt
	// regardless of segment size.
	HTTPClient *http.Client
	// Metrics, when non-nil, registers the shipper metric families:
	//
	//	federation_shipper_segments_total   segments acknowledged
	//	federation_shipper_bytes_total      payload bytes acknowledged
	//	federation_shipper_records_total    records in acknowledged segments
	//	federation_shipper_probes_total     zero-length durability probes
	//	federation_shipper_retries_total    delivery attempts beyond the first
	//	federation_shipper_rewinds_total    409 rewinds to the receiver's acked offset
	//	federation_shipper_throttled_total  429 backpressure responses honored
	//	federation_shipper_errors_total     segments abandoned after MaxAttempts
	//	federation_shipper_lag_bytes        sealed-but-unacked bytes after the last poll
	//	federation_shipper_ship_seconds     per-segment delivery latency
	Metrics *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)

	// sleep overrides backoff sleeping in tests.
	sleep func(context.Context, time.Duration) error
}

// ShardProgress is the shipper's durable position in one sealed shard.
type ShardProgress struct {
	// Acked is how far the receiver has acknowledged this shard.
	Acked int64 `json:"acked"`
	// Durable is how much of Acked the receiver has folded into a
	// published generation — bytes that survive an aggregator crash. A
	// shard is finished only when Durable reaches Size.
	Durable int64 `json:"durable"`
	// Size is the sealed shard's byte size.
	Size int64 `json:"size"`
}

type shipperState struct {
	Format    string                    `json:"format"`
	Collector string                    `json:"collector"`
	Shards    map[string]*ShardProgress `json:"shards"`
}

// Shipper watches a beacond spool for sealed shards and ships them to a
// federation receiver as content-addressed segments. Safe for concurrent
// use by one shipping goroutine plus any number of Stats readers.
type Shipper struct {
	cfg    ShipperConfig
	client *http.Client

	mu    sync.Mutex
	state shipperState

	mSegments  *obs.Counter
	mBytes     *obs.Counter
	mRecords   *obs.Counter
	mProbes    *obs.Counter
	mRetries   *obs.Counter
	mRewinds   *obs.Counter
	mThrottled *obs.Counter
	mErrors    *obs.Counter
	gLag       *obs.Gauge
	hShip      *obs.Histogram
}

// NewShipper validates cfg and loads the offset checkpoint, if present.
func NewShipper(cfg ShipperConfig) (*Shipper, error) {
	if cfg.SpoolDir == "" {
		return nil, fmt.Errorf("federation: ShipperConfig.SpoolDir is required")
	}
	if !validCollectorID(cfg.CollectorID) {
		return nil, fmt.Errorf("federation: invalid collector ID %q", cfg.CollectorID)
	}
	if cfg.Target == "" {
		return nil, fmt.Errorf("federation: ShipperConfig.Target is required")
	}
	if cfg.Prefix == "" {
		cfg.Prefix = "beacon"
	}
	if cfg.StateFile == "" {
		cfg.StateFile = filepath.Join(cfg.SpoolDir, ".shipper-"+cfg.CollectorID+".json")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultShipInterval
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = DefaultMaxAttempts
	}
	if cfg.RetryBase <= 0 {
		cfg.RetryBase = DefaultRetryBase
	}
	if cfg.ShipTimeout <= 0 {
		cfg.ShipTimeout = DefaultShipTimeout
	}
	if cfg.MinShipRate <= 0 {
		cfg.MinShipRate = DefaultMinShipRate
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.sleep == nil {
		cfg.sleep = sleepCtx
	}
	client := cfg.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	s := &Shipper{
		cfg:    cfg,
		client: client,
		state: shipperState{
			Format:    shipperCheckpointFormat,
			Collector: cfg.CollectorID,
			Shards:    make(map[string]*ShardProgress),
		},
	}
	if reg := cfg.Metrics; reg != nil {
		s.mSegments = reg.Counter("federation_shipper_segments_total", "Segments acknowledged by the receiver.")
		s.mBytes = reg.Counter("federation_shipper_bytes_total", "Payload bytes acknowledged by the receiver.")
		s.mRecords = reg.Counter("federation_shipper_records_total", "Records in acknowledged segments.")
		s.mProbes = reg.Counter("federation_shipper_probes_total", "Zero-length durability probes sent.")
		s.mRetries = reg.Counter("federation_shipper_retries_total", "Delivery attempts beyond the first.")
		s.mRewinds = reg.Counter("federation_shipper_rewinds_total", "Rewinds to the receiver's authoritative acked offset.")
		s.mThrottled = reg.Counter("federation_shipper_throttled_total", "429 backpressure responses honored.")
		s.mErrors = reg.Counter("federation_shipper_errors_total", "Segments abandoned after exhausting delivery attempts.")
		s.gLag = reg.Gauge("federation_shipper_lag_bytes", "Sealed spool bytes not yet acknowledged by the receiver.")
		s.hShip = reg.Histogram("federation_shipper_ship_seconds", "Per-segment delivery latency.", nil)
	}
	if err := s.loadState(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadState restores the checkpoint file; a missing file is a fresh start,
// a malformed one is an error (silently restarting from zero would re-ship
// everything and mask corruption).
func (s *Shipper) loadState() error {
	raw, err := os.ReadFile(s.cfg.StateFile)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("federation: read shipper state: %w", err)
	}
	var st shipperState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("federation: parse shipper state %s: %w", s.cfg.StateFile, err)
	}
	if st.Format != shipperCheckpointFormat {
		return fmt.Errorf("federation: shipper state format %q, want %q", st.Format, shipperCheckpointFormat)
	}
	if st.Collector != s.cfg.CollectorID {
		return fmt.Errorf("federation: shipper state belongs to collector %q, running as %q", st.Collector, s.cfg.CollectorID)
	}
	if st.Shards == nil {
		st.Shards = make(map[string]*ShardProgress)
	}
	s.state = st
	return nil
}

// persistState writes the checkpoint atomically. Called with s.mu held.
func (s *Shipper) persistState() error {
	raw, err := json.Marshal(s.state)
	if err != nil {
		return err
	}
	tmp := s.cfg.StateFile + ".tmp"
	if err := os.WriteFile(tmp, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("federation: write shipper state: %w", err)
	}
	if err := os.Rename(tmp, s.cfg.StateFile); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("federation: persist shipper state: %w", err)
	}
	return nil
}

// progress returns (a copy of) one shard's progress.
func (s *Shipper) progress(shard string) ShardProgress {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p := s.state.Shards[shard]; p != nil {
		return *p
	}
	return ShardProgress{}
}

// setProgress updates one shard's progress and persists the checkpoint.
func (s *Shipper) setProgress(shard string, p ShardProgress) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.state.Shards[shard]
	if cur == nil {
		cur = &ShardProgress{}
		s.state.Shards[shard] = cur
	}
	*cur = p
	return s.persistState()
}

// ShipReport summarizes one PollOnce pass.
type ShipReport struct {
	// Segments acknowledged this pass (excluding duplicates and probes).
	Segments int
	// Bytes acknowledged this pass.
	Bytes int64
	// Records contained in those segments.
	Records int
	// Probes sent for shards awaiting durability confirmation.
	Probes int
	// Rewinds performed after 409 responses.
	Rewinds int
	// LagBytes is sealed-but-unacked bytes remaining after the pass.
	LagBytes int64
}

// PollOnce ships every sealed byte the receiver has not acknowledged, in
// shard order, then probes finished shards whose bytes are not yet
// durable at the receiver. It returns once the spool is drained (or an
// error stopped it); Run calls it on an interval.
func (s *Shipper) PollOnce(ctx context.Context) (ShipReport, error) {
	var rep ShipReport
	files, err := logio.SpoolFiles(s.cfg.SpoolDir, s.cfg.Prefix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return rep, nil // collector not started yet
		}
		return rep, err
	}
	for _, path := range files {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		if err := s.shipShard(ctx, path, &rep); err != nil {
			return rep, fmt.Errorf("federation: ship %s: %w", filepath.Base(path), err)
		}
	}
	rep.LagBytes = 0
	for _, path := range files {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		p := s.progress(filepath.Base(path))
		if p.Acked < fi.Size() {
			rep.LagBytes += fi.Size() - p.Acked
		}
	}
	s.gLag.Set(rep.LagBytes)
	return rep, nil
}

// shipShard brings one sealed shard's acked offset to its size, then
// probes for durability if needed.
func (s *Shipper) shipShard(ctx context.Context, path string, rep *ShipReport) error {
	shard := filepath.Base(path)
	fi, err := os.Stat(path)
	if err != nil {
		return err
	}
	size := fi.Size()
	p := s.progress(shard)
	if p.Acked > size {
		// Sealed shards are immutable; a shrunk one means the spool was
		// rebuilt under us. Refuse to guess.
		return fmt.Errorf("shard shrank below acked offset (%d < %d)", size, p.Acked)
	}
	p.Size = size

	consecutiveRewinds := 0
	for p.Acked < size {
		if err := ctx.Err(); err != nil {
			return err
		}
		payload, records, dayMin, dayMax, err := cutSegment(path, p.Acked, size, s.cfg.SegmentBytes)
		if err != nil {
			return err
		}
		m := Manifest{
			Format:    ManifestFormat,
			Collector: s.cfg.CollectorID,
			Shard:     shard,
			Offset:    p.Acked,
			Length:    int64(len(payload)),
			SHA256:    Digest(payload),
			Records:   records,
			ShardSize: size,
			DayMin:    dayMin,
			DayMax:    dayMax,
		}
		start := time.Now()
		resp, err := s.deliver(ctx, m, payload)
		if err != nil {
			s.mErrors.Inc()
			return err
		}
		s.hShip.Observe(time.Since(start).Seconds())
		switch {
		case resp.status == http.StatusConflict:
			// The receiver's acked offset is authoritative: rewind (an
			// aggregator restart rolled it back) or fast-forward (a lost
			// ack from a previous shipper incarnation).
			s.mRewinds.Inc()
			rep.Rewinds++
			consecutiveRewinds++
			if consecutiveRewinds > 3 {
				return fmt.Errorf("receiver keeps rejecting offsets (acked %d, ours %d): no convergence", resp.Acked, p.Acked)
			}
			s.cfg.Logf("federation: %s/%s: rewinding %d -> %d", s.cfg.CollectorID, shard, p.Acked, resp.Acked)
			p.Acked = resp.Acked
			p.Durable = min64(p.Durable, resp.Acked)
		case resp.status == http.StatusOK:
			consecutiveRewinds = 0
			if !resp.Duplicate {
				s.mSegments.Inc()
				s.mBytes.Add(uint64(len(payload)))
				s.mRecords.Add(uint64(records))
				rep.Segments++
				rep.Bytes += int64(len(payload))
				rep.Records += records
			}
			p.Acked = resp.Acked
			p.Durable = resp.Durable
		default:
			return fmt.Errorf("receiver returned %d: %s", resp.status, resp.Error)
		}
		if err := s.setProgress(shard, p); err != nil {
			return err
		}
	}

	// Fully acked but not fully durable: probe, so a receiver that lost
	// in-memory acks in a crash tells us to rewind and re-ship the tail.
	if p.Durable < size {
		s.mProbes.Inc()
		rep.Probes++
		resp, err := s.deliver(ctx, Manifest{
			Format:    ManifestFormat,
			Collector: s.cfg.CollectorID,
			Shard:     shard,
			Offset:    p.Acked,
			ShardSize: size,
		}, nil)
		if err != nil {
			return err
		}
		switch resp.status {
		case http.StatusOK:
			p.Durable = resp.Durable
			if err := s.setProgress(shard, p); err != nil {
				return err
			}
		case http.StatusConflict:
			s.mRewinds.Inc()
			rep.Rewinds++
			s.cfg.Logf("federation: %s/%s: receiver lost acks, rewinding %d -> %d", s.cfg.CollectorID, shard, p.Acked, resp.Acked)
			p.Acked = resp.Acked
			p.Durable = min64(p.Durable, resp.Acked)
			if err := s.setProgress(shard, p); err != nil {
				return err
			}
			return s.shipShard(ctx, path, rep) // re-ship the tail now
		default:
			return fmt.Errorf("probe returned %d: %s", resp.status, resp.Error)
		}
	}
	return nil
}

// segmentResult is a receiver response plus its HTTP status.
type segmentResult struct {
	SegmentResponse
	status     int
	retryAfter time.Duration
}

// attemptTimeout is the per-attempt deadline for a request carrying n
// body bytes: the configured floor plus the transfer time those bytes
// need at the assumed worst-case link rate.
func (s *Shipper) attemptTimeout(n int) time.Duration {
	return s.cfg.ShipTimeout + time.Duration(n)*time.Second/time.Duration(s.cfg.MinShipRate)
}

// deliver posts one framed segment with bounded retry: transport errors
// and 5xx back off exponentially, 429 honors Retry-After, and definitive
// answers (200, 409, 4xx) return immediately. Each attempt runs under its
// own deadline scaled to the segment size (see ShipperConfig.ShipTimeout),
// so a stalled connection fails the attempt instead of wedging the
// shipping loop, while a legitimately slow transfer of a big segment is
// given proportionally more time.
func (s *Shipper) deliver(ctx context.Context, m Manifest, payload []byte) (segmentResult, error) {
	var buf bytes.Buffer
	if err := EncodeSegment(&buf, m, payload); err != nil {
		return segmentResult{}, err
	}
	body := buf.Bytes()
	backoff := s.cfg.RetryBase
	var lastErr error
	for attempt := 0; attempt < s.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			s.mRetries.Inc()
			if err := s.cfg.sleep(ctx, backoff); err != nil {
				return segmentResult{}, err
			}
			backoff *= 2
		}
		attemptCtx, cancel := context.WithTimeout(ctx, s.attemptTimeout(len(body)))
		req, err := http.NewRequestWithContext(attemptCtx, http.MethodPost, s.cfg.Target+SegmentsPath, bytes.NewReader(body))
		if err != nil {
			cancel()
			return segmentResult{}, err
		}
		req.Header.Set("Content-Type", SegmentContentType)
		httpResp, err := s.client.Do(req)
		if err != nil {
			cancel()
			if ctx.Err() != nil {
				// The caller's context died, not the attempt's deadline:
				// stop retrying entirely.
				return segmentResult{}, ctx.Err()
			}
			lastErr = err
			continue
		}
		res, err := parseSegmentResponse(httpResp)
		cancel()
		if err != nil {
			lastErr = err
			continue
		}
		switch {
		case res.status == http.StatusOK || res.status == http.StatusConflict:
			return res, nil
		case res.status == http.StatusTooManyRequests:
			// Backpressure: the receiver is draining its window into a
			// publish. Honor its Retry-After and try again without
			// consuming the exponential budget's growth.
			s.mThrottled.Inc()
			if err := s.cfg.sleep(ctx, res.retryAfter); err != nil {
				return segmentResult{}, err
			}
			lastErr = fmt.Errorf("receiver throttling (429)")
			backoff = s.cfg.RetryBase
		case res.status >= 500:
			lastErr = fmt.Errorf("receiver returned %d: %s", res.status, res.Error)
		default:
			// 4xx other than 409/429 is definitive: retrying identical
			// bytes cannot succeed.
			return res, nil
		}
	}
	return segmentResult{}, fmt.Errorf("giving up after %d attempts: %w", s.cfg.MaxAttempts, lastErr)
}

// parseSegmentResponse decodes a receiver reply, tolerating non-JSON error
// bodies from intermediaries.
func parseSegmentResponse(httpResp *http.Response) (segmentResult, error) {
	defer httpResp.Body.Close()
	res := segmentResult{status: httpResp.StatusCode, retryAfter: time.Second}
	if ra := httpResp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs >= 0 {
			res.retryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, err := io.ReadAll(io.LimitReader(httpResp.Body, 64<<10))
	if err != nil {
		return res, err
	}
	if err := json.Unmarshal(raw, &res.SegmentResponse); err != nil && httpResp.StatusCode == http.StatusOK {
		return res, fmt.Errorf("malformed 200 response: %w", err)
	}
	return res, nil
}

// Run ships on every interval until ctx is done. Poll errors are logged,
// not fatal: an unreachable aggregator must not kill the collector.
func (s *Shipper) Run(ctx context.Context) {
	t := time.NewTicker(s.cfg.Interval)
	defer t.Stop()
	for {
		if rep, err := s.PollOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return
			}
			s.cfg.Logf("federation: ship: %v", err)
		} else if rep.Segments > 0 {
			s.cfg.Logf("federation: shipped %d segments, %d bytes, %d records (lag %d bytes)",
				rep.Segments, rep.Bytes, rep.Records, rep.LagBytes)
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// cutSegment reads the next segment of a sealed shard: bytes
// [offset, offset+n) ending on a line boundary, n at most segBytes unless
// a single line overruns it. Gzip shards ship whole (a gzip stream cannot
// be decoded from a mid-stream offset). It also scans the payload for the
// record count and UTC day coverage the manifest advertises.
func cutSegment(path string, offset, size int64, segBytes int) (payload []byte, records int, dayMin, dayMax string, err error) {
	gzipped := strings.HasSuffix(path, ".gz")
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, "", "", err
	}
	defer f.Close()

	if gzipped {
		if offset != 0 {
			return nil, 0, "", "", fmt.Errorf("gzip shard acked mid-file at %d; cannot resume inside a gzip stream", offset)
		}
		payload = make([]byte, size)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, 0, "", "", err
		}
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err != nil {
			return nil, 0, "", "", fmt.Errorf("sealed gzip shard unreadable: %w", err)
		}
		text, err := io.ReadAll(zr)
		if err != nil {
			return nil, 0, "", "", fmt.Errorf("sealed gzip shard truncated: %w", err)
		}
		records, dayMin, dayMax = scanPayload(text)
		return payload, records, dayMin, dayMax, nil
	}

	want := min64(int64(segBytes), size-offset)
	buf := make([]byte, want)
	if _, err := f.ReadAt(buf, offset); err != nil {
		return nil, 0, "", "", err
	}
	if offset+want < size {
		// Not at shard end: trim to the last complete line, or extend for
		// one oversized line.
		idx := bytes.LastIndexByte(buf, '\n')
		if idx >= 0 {
			buf = buf[:idx+1]
		} else {
			for int64(len(buf)) <= MaxSegmentBytes && offset+int64(len(buf)) < size {
				ext := make([]byte, min64(int64(segBytes), size-offset-int64(len(buf))))
				if _, err := f.ReadAt(ext, offset+int64(len(buf))); err != nil {
					return nil, 0, "", "", err
				}
				if j := bytes.IndexByte(ext, '\n'); j >= 0 {
					buf = append(buf, ext[:j+1]...)
					break
				}
				buf = append(buf, ext...)
			}
			if buf[len(buf)-1] != '\n' && offset+int64(len(buf)) < size {
				return nil, 0, "", "", fmt.Errorf("no line boundary within %d bytes at offset %d", MaxSegmentBytes, offset)
			}
		}
	}
	records, dayMin, dayMax = scanPayload(buf)
	return buf, records, dayMin, dayMax, nil
}

// scanPayload counts complete lines and extracts the UTC day coverage
// from record timestamps. Lines that do not parse still count (the
// receiver decides how to treat them); only their days are unknown.
func scanPayload(text []byte) (records int, dayMin, dayMax string) {
	var lo, hi time.Time
	for len(text) > 0 {
		idx := bytes.IndexByte(text, '\n')
		if idx < 0 {
			break // incomplete trailing line (only possible on gzip content)
		}
		line := bytes.TrimSpace(text[:idx])
		text = text[idx+1:]
		if len(line) == 0 {
			continue
		}
		records++
		var ts struct {
			Time time.Time `json:"ts"`
		}
		if err := json.Unmarshal(line, &ts); err != nil || ts.Time.IsZero() {
			continue
		}
		if lo.IsZero() || ts.Time.Before(lo) {
			lo = ts.Time
		}
		if hi.IsZero() || ts.Time.After(hi) {
			hi = ts.Time
		}
	}
	if !lo.IsZero() {
		dayMin = lo.UTC().Format("2006-01-02")
		dayMax = hi.UTC().Format("2006-01-02")
	}
	return records, dayMin, dayMax
}

// SpoolStats summarizes a collector's sealed spool and, when produced by a
// Shipper, how much of it the aggregator has accepted.
type SpoolStats struct {
	// Shards is the number of sealed shards present.
	Shards int `json:"shards"`
	// SealedBytes is the total size of sealed shards.
	SealedBytes int64 `json:"sealed_bytes"`
	// AckedBytes is how much the receiver has acknowledged (0 when not
	// shipping).
	AckedBytes int64 `json:"acked_bytes"`
	// DurableBytes is how much of AckedBytes a published aggregator
	// generation covers (0 when not shipping).
	DurableBytes int64 `json:"durable_bytes"`
	// OldestUnshippedAgeSeconds is the age of the oldest sealed shard not
	// yet fully acknowledged, 0 when everything shipped.
	OldestUnshippedAgeSeconds float64 `json:"oldest_unshipped_age_seconds"`
}

// ScanSpool summarizes a sealed spool without shipping state: every sealed
// shard counts as unshipped. beacond uses it for /v1/spool/stats when no
// shipper is configured.
func ScanSpool(dir, prefix string) (SpoolStats, error) {
	return scanSpool(dir, prefix, nil)
}

// Stats summarizes the spool this shipper watches, with acked and durable
// progress folded in.
func (s *Shipper) Stats() (SpoolStats, error) {
	s.mu.Lock()
	progress := make(map[string]ShardProgress, len(s.state.Shards))
	for shard, p := range s.state.Shards {
		progress[shard] = *p
	}
	s.mu.Unlock()
	return scanSpool(s.cfg.SpoolDir, s.cfg.Prefix, progress)
}

func scanSpool(dir, prefix string, progress map[string]ShardProgress) (SpoolStats, error) {
	var st SpoolStats
	files, err := logio.SpoolFiles(dir, prefix)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return st, nil
		}
		return st, err
	}
	var oldest time.Time
	for _, path := range files {
		fi, err := os.Stat(path)
		if err != nil {
			continue
		}
		st.Shards++
		st.SealedBytes += fi.Size()
		p := progress[filepath.Base(path)]
		st.AckedBytes += min64(p.Acked, fi.Size())
		st.DurableBytes += min64(p.Durable, fi.Size())
		if p.Acked < fi.Size() && (oldest.IsZero() || fi.ModTime().Before(oldest)) {
			oldest = fi.ModTime()
		}
	}
	if !oldest.IsZero() {
		st.OldestUnshippedAgeSeconds = time.Since(oldest).Seconds()
	}
	return st, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// sleepCtx sleeps for d or until ctx is done.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
