package federation

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

// ackTransport answers segment POSTs in-process, recording the context
// deadline budget of every request. Segments ack fully but report zero
// durable bytes, so the shipper follows up with exactly one probe (whose
// budget should be the bare floor — probes carry no payload).
type ackTransport struct {
	mu   sync.Mutex
	reqs []struct {
		probe   bool
		bodyLen int
		budget  time.Duration
	}
}

func (tr *ackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	deadline, ok := req.Context().Deadline()
	if !ok {
		return nil, fmt.Errorf("request carries no deadline")
	}
	body, err := io.ReadAll(req.Body)
	req.Body.Close()
	if err != nil {
		return nil, err
	}
	m, payload, err := DecodeSegment(bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	tr.mu.Lock()
	tr.reqs = append(tr.reqs, struct {
		probe   bool
		bodyLen int
		budget  time.Duration
	}{m.IsProbe(), len(body), time.Until(deadline)})
	tr.mu.Unlock()

	resp := SegmentResponse{Acked: m.Offset + int64(len(payload))}
	if m.IsProbe() {
		resp.Acked = m.Offset
		resp.Durable = m.Offset // the probe confirms full durability
	}
	raw, _ := json.Marshal(resp)
	return &http.Response{
		StatusCode: http.StatusOK,
		Body:       io.NopCloser(bytes.NewReader(raw)),
		Header:     make(http.Header),
	}, nil
}

// TestShipperDeadlineScalesWithSegment pins satellite behavior: instead of
// one flat client timeout, every attempt gets ShipTimeout plus transfer
// time for its actual body at MinShipRate — so big segments on slow links
// are not killed early, while probes keep a tight deadline.
func TestShipperDeadlineScalesWithSegment(t *testing.T) {
	spool := t.TempDir()
	writeSpool(t, spool, genRecords(300, 17000, 4), 0, false)

	const (
		floor = 2 * time.Second
		rate  = 1 << 10 // 1 KiB/s: a 20 KiB shard adds ~20s
	)
	tr := &ackTransport{}
	s, err := NewShipper(ShipperConfig{
		SpoolDir:    spool,
		CollectorID: "c1",
		Target:      "http://aggregator",
		ShipTimeout: floor,
		MinShipRate: rate,
		HTTPClient:  &http.Client{Transport: tr},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := s.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments == 0 || rep.Probes == 0 {
		t.Fatalf("expected segments and a durability probe, got %+v", rep)
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	segs, probes := 0, 0
	for _, r := range tr.reqs {
		want := floor + time.Duration(r.bodyLen)*time.Second/time.Duration(rate)
		// The budget was measured inside RoundTrip, so it only shrinks from
		// want; a second of slack covers the hop.
		if r.budget > want || r.budget < want-time.Second {
			t.Fatalf("request (probe=%v, %d bytes): deadline budget %v, want ~%v",
				r.probe, r.bodyLen, r.budget, want)
		}
		if r.probe {
			probes++
			if r.budget > floor+time.Second {
				t.Fatalf("probe budget %v not anchored at the %v floor", r.budget, floor)
			}
		} else {
			segs++
			if r.budget < floor+10*time.Second {
				t.Fatalf("segment budget %v did not scale with its %d-byte body", r.budget, r.bodyLen)
			}
		}
	}
	if segs == 0 || probes == 0 {
		t.Fatalf("transport saw %d segments, %d probes", segs, probes)
	}
}

// throttledTransport drains request bodies at a trickle far below any
// MinShipRate, never answering: only the per-attempt deadline can end the
// exchange.
type throttledTransport struct{}

func (throttledTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	defer req.Body.Close()
	buf := make([]byte, 1)
	for {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(2 * time.Millisecond):
			if _, err := req.Body.Read(buf); err != nil {
				// Body exhausted; keep stalling until the deadline fires.
				<-req.Context().Done()
				return nil, req.Context().Err()
			}
		}
	}
}

// TestShipperThrottledTransportFailsByDeadline is the regression for the
// old flat 30s client timeout: with no flat timeout on the default client,
// a stalled transfer must be ended by the scaled per-attempt deadline, not
// hang the shipping loop forever.
func TestShipperThrottledTransportFailsByDeadline(t *testing.T) {
	spool := t.TempDir()
	writeSpool(t, spool, genRecords(50, 17000, 4), 0, false)

	s, err := NewShipper(ShipperConfig{
		SpoolDir:    spool,
		CollectorID: "c1",
		Target:      "http://aggregator",
		ShipTimeout: 50 * time.Millisecond,
		MinShipRate: 1 << 30, // transfer component ~0: the floor governs
		MaxAttempts: 2,
		RetryBase:   time.Millisecond,
		HTTPClient:  &http.Client{Transport: throttledTransport{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = s.PollOnce(context.Background())
	if err == nil {
		t.Fatal("throttled transport did not fail the poll")
	}
	if !strings.Contains(err.Error(), "giving up after 2 attempts") {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline did not bound the stalled attempts: %v elapsed", elapsed)
	}
}

// TestShipperCallerCancelStopsRetrying: a dead caller context ends
// delivery immediately instead of burning the remaining attempts.
func TestShipperCallerCancelStopsRetrying(t *testing.T) {
	spool := t.TempDir()
	writeSpool(t, spool, genRecords(50, 17000, 4), 0, false)

	s, err := NewShipper(ShipperConfig{
		SpoolDir:    spool,
		CollectorID: "c1",
		Target:      "http://aggregator",
		ShipTimeout: time.Minute,
		MaxAttempts: 8,
		RetryBase:   time.Millisecond,
		HTTPClient:  &http.Client{Transport: throttledTransport{}},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := s.PollOnce(ctx); err == nil {
		t.Fatal("cancelled poll reported success")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation did not cut the attempt short: %v elapsed", elapsed)
	}
}

// TestReceiverAdmissionControlSheds: with MaxInflight 1, a request holding
// the only slot (its body still streaming in) makes the receiver shed the
// next one with 429 + Retry-After before buffering its body; the held
// request still completes once its body arrives.
func TestReceiverAdmissionControlSheds(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	recv, err := NewReceiver(ReceiverConfig{
		Inputs:      testInputs(),
		Store:       store,
		RetryAfter:  time.Second,
		MaxInflight: 1,
		Metrics:     reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	recv.MountRoutes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Hold the only slot: the admission gate admits before DecodeSegment
	// reads the body, so an unfinished body pins the slot.
	pr, pw := io.Pipe()
	held := make(chan *http.Response, 1)
	go func() {
		resp, err := http.Post(srv.URL+SegmentsPath, SegmentContentType, pr)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		held <- resp
	}()

	// Poll with probes until one sheds (the held request may not have
	// reached the handler yet).
	probe := func() *http.Response {
		var buf bytes.Buffer
		m := Manifest{Format: ManifestFormat, Collector: "c2", Shard: "beacon-0000.jsonl", ShardSize: 10}
		if err := EncodeSegment(&buf, m, nil); err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(srv.URL+SegmentsPath, SegmentContentType, &buf)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	deadline := time.Now().Add(5 * time.Second)
	var shed *http.Response
	for {
		resp := probe()
		if resp.StatusCode == http.StatusTooManyRequests {
			shed = resp
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected probe status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("receiver never shed with the slot held")
		}
		time.Sleep(time.Millisecond)
	}
	if shed.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Complete the held request: a probe frame for a fresh shard.
	var frame bytes.Buffer
	m := Manifest{Format: ManifestFormat, Collector: "c1", Shard: "beacon-0000.jsonl", ShardSize: 10}
	if err := EncodeSegment(&frame, m, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := pw.Write(frame.Bytes()); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if resp := <-held; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("held request: %+v", resp)
	}

	// Slot free again: probes serve normally.
	if resp := probe(); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release probe: status %d", resp.StatusCode)
	}
	if n := reg.Counter("federation_recv_shed_total", "").Value(); n == 0 {
		t.Fatal("federation_recv_shed_total not incremented")
	}
}
