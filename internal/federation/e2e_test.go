package federation

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cellspot/internal/beacon"
)

// TestFederationE2E is the tentpole proof: three independent collectors
// spool and ship to one aggregation plane through collector kill/restart,
// a duplicate manifest replay, and an aggregator crash — and the final
// published map is byte-identical to a single-collector offline build over
// the same records.
func TestFederationE2E(t *testing.T) {
	const total = 3000
	all := genRecords(total, 17000, 6)

	// Deal records round-robin to three collectors, like three regional
	// vantage points each seeing a slice of the same population.
	parts := make([][]beacon.Record, 3)
	for i, rec := range all {
		parts[i%3] = append(parts[i%3], rec)
	}

	storeDir := t.TempDir()
	p1 := newPlane(t, storeDir)

	spools := make([]string, 3)
	mkShipper := func(i int, target string) *Shipper {
		s, err := NewShipper(ShipperConfig{
			SpoolDir:    spools[i],
			CollectorID: fmt.Sprintf("region-%d", i),
			Target:      target,
			StateFile:   filepath.Join(spools[i], "shipper.json"),
			// Small segments so every shard ships in several pieces.
			SegmentBytes: 4096,
			MaxAttempts:  4,
			RetryBase:    time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Phase 1: every collector spools 60% of its records (sealed in
	// 150-record shards) and ships; the aggregator publishes.
	cutoff := make([]int, 3)
	for i := range spools {
		spools[i] = t.TempDir()
		cutoff[i] = len(parts[i]) * 6 / 10
		writeSpool(t, spools[i], parts[i][:cutoff[i]], 150, false)
		if _, err := mkShipper(i, p1.srv.URL).PollOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p1.recv.Tick(); err != nil {
		t.Fatal(err)
	}
	published := cutoff[0] + cutoff[1] + cutoff[2]
	if got := receiverStatus(t, p1.srv.URL).Records; got != published {
		t.Fatalf("phase 1 records = %d, want %d", got, published)
	}

	// Phase 2: collector 0 was killed and restarted mid-stream. Its new
	// process reopens the same spool directory (numbering resumes past the
	// sealed shards) and a new shipper resumes from the same checkpoint.
	writeSpool(t, spools[0], parts[0][cutoff[0]:], 150, false)
	s0 := mkShipper(0, p1.srv.URL)
	rep, err := s0.PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Records != len(parts[0])-cutoff[0] {
		t.Fatalf("restarted collector shipped %d records, want %d", rep.Records, len(parts[0])-cutoff[0])
	}

	// Phase 3: a duplicate manifest replay — collector 1 re-offers the
	// start of its first shard. The receiver must absorb it without
	// folding.
	shard1 := filepath.Join(spools[1], "beacon-0000.jsonl")
	raw, err := os.ReadFile(shard1)
	if err != nil {
		t.Fatal(err)
	}
	cut := bytes.IndexByte(raw, '\n') + 1
	replay := Manifest{
		Format: ManifestFormat, Collector: "region-1", Shard: "beacon-0000.jsonl",
		Offset: 0, Length: int64(cut), SHA256: Digest(raw[:cut]),
		Records: 1, ShardSize: int64(len(raw)),
	}
	if status, resp := postSegment(t, p1.srv.URL, replay, raw[:cut]); status != 200 || !resp.Duplicate {
		t.Fatalf("replay: status %d duplicate %v, want 200/true", status, resp.Duplicate)
	}

	// Phase 4: the aggregator crashes with collector 0's phase-2 records
	// acked but unpublished, and restarts from the store. Shippers detect
	// the rollback via probes and re-ship exactly the lost tail.
	beforeCrash := receiverStatus(t, p1.srv.URL).Records
	if beforeCrash != published+len(parts[0])-cutoff[0] {
		t.Fatalf("pre-crash records = %d", beforeCrash)
	}
	p1.srv.Close()
	p2 := newPlane(t, storeDir)
	if got := p2.recv.win.Records(); got != published {
		t.Fatalf("recovered window = %d records, want the %d published", got, published)
	}
	rep, err = mkShipper(0, p2.srv.URL).PollOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rewinds == 0 {
		t.Fatal("collector 0 never rewound after the aggregator restart")
	}

	// Phase 5: the other collectors finish their streams against the
	// restarted aggregator.
	for i := 1; i < 3; i++ {
		writeSpool(t, spools[i], parts[i][cutoff[i]:], 150, false)
		if _, err := mkShipper(i, p2.srv.URL).PollOnce(context.Background()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := p2.recv.Tick(); err != nil {
		t.Fatal(err)
	}

	st := receiverStatus(t, p2.srv.URL)
	if st.Records != total {
		t.Fatalf("final records = %d, want exactly %d (no loss, no double-fold)", st.Records, total)
	}
	if len(st.Sources) != 3 {
		t.Fatalf("sources = %v, want 3 collectors", st.Sources)
	}
	for i := range parts {
		if st.Sources[fmt.Sprintf("region-%d", i)] != len(parts[i]) {
			t.Fatalf("source region-%d = %d records, want %d",
				i, st.Sources[fmt.Sprintf("region-%d", i)], len(parts[i]))
		}
	}
	if got, want := currentMapBytes(t, p2.store), offlineMap(t, all); !bytes.Equal(got, want) {
		t.Fatal("federated map diverges from the single-collector offline build")
	}

	// The shipped bytes are durable: one more poll per collector observes
	// durable == sealed and ships nothing.
	for i := 0; i < 3; i++ {
		s := mkShipper(i, p2.srv.URL)
		if rep, err := s.PollOnce(context.Background()); err != nil || rep.Segments != 0 {
			t.Fatalf("collector %d: settle poll rep=%+v err=%v", i, rep, err)
		}
		stats, err := s.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if stats.DurableBytes != stats.SealedBytes {
			t.Fatalf("collector %d: durable %d of %d sealed bytes", i, stats.DurableBytes, stats.SealedBytes)
		}
	}
}
