package federation

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/history"
	"cellspot/internal/live"
	"cellspot/internal/logio"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

const (
	// CheckpointFile is the federation checkpoint inside a generation: the
	// multi-source window state plus every collector's acked offsets,
	// published atomically with the map built from that exact window.
	CheckpointFile = "federation.json"

	checkpointFormat = "cellspot-federation-checkpoint/1"

	// DefaultMaxPending bounds segments folded between publishes before
	// the receiver pushes back with 429.
	DefaultMaxPending = 4096
	// DefaultRetryAfter is the Retry-After advertised on 429.
	DefaultRetryAfter = 2 * time.Second
	// DefaultTickInterval is the Run publish cadence.
	DefaultTickInterval = 30 * time.Second
)

// SegmentResponse is the receiver's JSON reply to a segment POST. Acked is
// authoritative: on 409 the shipper must resume from it.
type SegmentResponse struct {
	// Acked is how far the receiver has accepted this (collector, shard),
	// in bytes. Advisory until a generation publishes.
	Acked int64 `json:"acked"`
	// Durable is how much of Acked a published checkpoint covers — bytes
	// that survive a receiver crash.
	Durable int64 `json:"durable"`
	// Duplicate marks a 200 that folded nothing because the segment was
	// entirely behind Acked (a replay).
	Duplicate bool `json:"duplicate,omitempty"`
	// Error carries the reason on non-200 responses.
	Error string `json:"error,omitempty"`
}

// federationCheckpoint is CheckpointFile's on-disk form.
type federationCheckpoint struct {
	Format string                `json:"format"`
	Window live.MultiWindowState `json:"window"`
	// Acked maps "<collector>/<shard>" to the folded byte offset as of
	// this generation. Keys sort deterministically in encoding/json.
	Acked map[string]int64 `json:"acked"`
}

// ReceiverConfig parameterizes a Receiver.
type ReceiverConfig struct {
	// WindowDays is the sliding window span (live.DefaultWindowDays when
	// <= 0).
	WindowDays int
	// Threshold is the classifier operating point
	// (classify.DefaultThreshold when 0).
	Threshold float64
	// Inputs is the side data for the map-build chain; Inputs.ASOf is
	// required.
	Inputs live.MapInputs
	// Store receives published generations (required).
	Store *snapshot.Store
	// Keep bounds retained generations (live.DefaultKeep when <= 0).
	Keep int
	// MaxPending bounds segments folded between publishes
	// (DefaultMaxPending when <= 0); beyond it the receiver answers 429
	// until the next Tick drains the backlog into a generation.
	MaxPending int
	// MaxInflight bounds concurrently decoded segment requests (0 =
	// unbounded). Each in-flight request may buffer a full segment before
	// the fold even starts, so under a shipper stampede this gate sheds
	// with 429 + Retry-After before memory does; refused shippers back off
	// and retry, exactly as for the pending-backlog 429.
	MaxInflight int
	// RetryAfter is advertised on 429 (DefaultRetryAfter when <= 0).
	RetryAfter time.Duration
	// Interval is the Run publish cadence (DefaultTickInterval when <= 0).
	Interval time.Duration
	// Metrics, when non-nil, registers the receiver metric families:
	//
	//	federation_recv_segments_total        segments folded
	//	federation_recv_records_total         records folded into the window
	//	federation_recv_bytes_total           payload bytes folded
	//	federation_recv_duplicates_total      replayed segments absorbed
	//	federation_recv_rejects_total         409 offset mismatches
	//	federation_recv_digest_mismatch_total segments refused on digest
	//	federation_recv_bad_requests_total    malformed segment requests
	//	federation_recv_throttled_total       429 backpressure responses
	//	federation_recv_shed_total            429 admission-control refusals
	//	federation_recv_probes_total          zero-length probes answered
	//	federation_recv_publish_total         generations published
	//	federation_recv_bad_lines_total       malformed payload lines skipped
	//	federation_recv_pending_segments      segments folded since last publish
	//	federation_recv_sources               collectors in the current window
	//	federation_recv_window_records        records in the current window
	//	federation_recv_fold_seconds          per-segment fold latency
	//	federation_recv_publish_seconds       build+publish latency
	Metrics *obs.Registry
	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Receiver is the aggregation side of the federation plane: it accepts
// framed segments from any number of shippers, folds each exactly once
// into a collector-keyed sliding window, and publishes map generations
// whose checkpoint binds the window state to the acked offsets that
// produced it. Safe for concurrent use.
type Receiver struct {
	cfg ReceiverConfig

	inflight atomic.Int64

	mu       sync.Mutex
	win      *live.MultiWindow
	acked    map[string]int64 // "<collector>/<shard>" -> folded offset
	durable  map[string]int64 // acked as of the last published generation
	pending  int              // segments folded since the last publish
	draining bool             // a Tick is snapshotting/publishing: refuse folds
	// published reports whether the store holds a generation, so idle
	// ticks can skip republishing.
	published bool

	mSegments  *obs.Counter
	mRecords   *obs.Counter
	mBytes     *obs.Counter
	mDup       *obs.Counter
	mRejects   *obs.Counter
	mDigest    *obs.Counter
	mBadReq    *obs.Counter
	mThrottled *obs.Counter
	mShed      *obs.Counter
	mProbes    *obs.Counter
	mPublish   *obs.Counter
	mBadLines  *obs.Counter
	gPending   *obs.Gauge
	gSources   *obs.Gauge
	gRecords   *obs.Gauge
	hFold      *obs.Histogram
	hPublish   *obs.Histogram
}

// NewReceiver validates cfg and recovers window state and acked offsets
// from the federation checkpoint of the store's current generation, if
// any. A current generation without a readable checkpoint falls back to an
// empty window and zero offsets — shippers will simply re-ship, and their
// sealed spools make that safe.
func NewReceiver(cfg ReceiverConfig) (*Receiver, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("federation: ReceiverConfig.Store is required")
	}
	if cfg.Inputs.ASOf == nil {
		return nil, fmt.Errorf("federation: ReceiverConfig.Inputs.ASOf is required")
	}
	if cfg.WindowDays <= 0 {
		cfg.WindowDays = live.DefaultWindowDays
	}
	if cfg.Threshold == 0 {
		cfg.Threshold = classify.DefaultThreshold
	}
	if cfg.Keep <= 0 {
		cfg.Keep = live.DefaultKeep
	}
	if cfg.MaxPending <= 0 {
		cfg.MaxPending = DefaultMaxPending
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultTickInterval
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	r := &Receiver{
		cfg:     cfg,
		win:     live.NewMultiWindow(cfg.WindowDays),
		acked:   make(map[string]int64),
		durable: make(map[string]int64),
	}
	if reg := cfg.Metrics; reg != nil {
		r.mSegments = reg.Counter("federation_recv_segments_total", "Segments folded into the window.")
		r.mRecords = reg.Counter("federation_recv_records_total", "Records folded into the window.")
		r.mBytes = reg.Counter("federation_recv_bytes_total", "Payload bytes folded.")
		r.mDup = reg.Counter("federation_recv_duplicates_total", "Replayed segments acknowledged without folding.")
		r.mRejects = reg.Counter("federation_recv_rejects_total", "Segments rejected with 409 for an offset mismatch.")
		r.mDigest = reg.Counter("federation_recv_digest_mismatch_total", "Segments refused because the payload digest did not match the manifest.")
		r.mBadReq = reg.Counter("federation_recv_bad_requests_total", "Malformed segment requests refused.")
		r.mThrottled = reg.Counter("federation_recv_throttled_total", "Segments pushed back with 429 while draining.")
		r.mShed = reg.Counter("federation_recv_shed_total", "Segment requests refused by admission control (in-flight bound).")
		r.mProbes = reg.Counter("federation_recv_probes_total", "Zero-length durability probes answered.")
		r.mPublish = reg.Counter("federation_recv_publish_total", "Map generations published.")
		r.mBadLines = reg.Counter("federation_recv_bad_lines_total", "Malformed payload lines skipped while folding.")
		r.gPending = reg.Gauge("federation_recv_pending_segments", "Segments folded since the last publish.")
		r.gSources = reg.Gauge("federation_recv_sources", "Collectors with records in the current window.")
		r.gRecords = reg.Gauge("federation_recv_window_records", "Records in the current window.")
		r.hFold = reg.Histogram("federation_recv_fold_seconds", "Per-segment verify+fold latency.", nil)
		r.hPublish = reg.Histogram("federation_recv_publish_seconds", "Build and publish latency of one tick.", nil)
	}
	cur, ok, err := cfg.Store.Current()
	if err != nil {
		return nil, err
	}
	if ok {
		r.published = true
		if err := r.recover(cur); err != nil {
			cfg.Logf("federation: checkpoint of %s unreadable (%v); starting empty, shippers will re-ship", cur.Name(), err)
		}
	}
	return r, nil
}

// recover restores the window and offsets from a generation's federation
// checkpoint.
func (r *Receiver) recover(gen snapshot.Generation) error {
	raw, err := os.ReadFile(gen.Path(CheckpointFile))
	if err != nil {
		return err
	}
	var ck federationCheckpoint
	if err := json.Unmarshal(raw, &ck); err != nil {
		return err
	}
	if ck.Format != checkpointFormat {
		return fmt.Errorf("unknown checkpoint format %q", ck.Format)
	}
	win, err := live.RestoreMultiWindow(ck.Window, r.cfg.WindowDays)
	if err != nil {
		return err
	}
	r.win = win
	r.acked = make(map[string]int64, len(ck.Acked))
	r.durable = make(map[string]int64, len(ck.Acked))
	for k, v := range ck.Acked {
		r.acked[k] = v
		r.durable[k] = v
	}
	r.gRecords.Set(int64(win.Records()))
	r.gSources.Set(int64(len(win.RecordsBySource())))
	return nil
}

// Router is the mux surface MountRoutes needs; *http.ServeMux and
// httpmw.Mux both satisfy it.
type Router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// MountRoutes registers the federation routes on mux.
func (r *Receiver) MountRoutes(mux Router) {
	mux.HandleFunc("POST "+SegmentsPath, r.handleSegments)
	mux.HandleFunc("GET "+StatusPath, r.handleStatus)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (r *Receiver) handleSegments(w http.ResponseWriter, req *http.Request) {
	// Admission control before the body is read: each in-flight request
	// may buffer a full segment, so the bound is a memory ceiling.
	if max := int64(r.cfg.MaxInflight); max > 0 {
		if r.inflight.Add(1) > max {
			r.inflight.Add(-1)
			r.mShed.Inc()
			w.Header().Set("Retry-After", strconv.Itoa(int(r.cfg.RetryAfter.Round(time.Second)/time.Second)))
			writeJSON(w, http.StatusTooManyRequests, SegmentResponse{Error: "receiver at capacity, retry"})
			return
		}
		defer r.inflight.Add(-1)
	}
	start := time.Now()
	m, payload, err := DecodeSegment(http.MaxBytesReader(w, req.Body, MaxManifestBytes+MaxSegmentBytes+2))
	if err != nil {
		r.mBadReq.Inc()
		writeJSON(w, http.StatusBadRequest, SegmentResponse{Error: err.Error()})
		return
	}
	status, resp := r.accept(m, payload)
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(int(r.cfg.RetryAfter.Round(time.Second)/time.Second)))
	}
	if status == http.StatusOK && !m.IsProbe() && !resp.Duplicate {
		r.hFold.Observe(time.Since(start).Seconds())
	}
	writeJSON(w, status, resp)
}

// accept applies the exactly-once fold rules to one decoded segment and
// returns the HTTP status plus response body.
func (r *Receiver) accept(m Manifest, payload []byte) (int, SegmentResponse) {
	key := m.Collector + "/" + m.Shard

	r.mu.Lock()
	defer r.mu.Unlock()
	acked, durable := r.acked[key], r.durable[key]

	if m.IsProbe() {
		// Probes are read-only: answer them even while draining, so a
		// shipper's durability loop keeps converging during publishes.
		r.mProbes.Inc()
		if m.Offset > acked {
			// The shipper believes more was acked than we do — we lost
			// unpublished acks in a restart. Send it back.
			return http.StatusConflict, SegmentResponse{Acked: acked, Durable: durable, Error: "offset ahead of acked"}
		}
		return http.StatusOK, SegmentResponse{Acked: acked, Durable: durable}
	}

	// Replay: entirely behind the acked offset. Ack without folding.
	if m.Offset+m.Length <= acked {
		r.mDup.Inc()
		return http.StatusOK, SegmentResponse{Acked: acked, Durable: durable, Duplicate: true}
	}
	// Overlap or gap: only a segment starting exactly at acked can fold.
	if m.Offset != acked {
		r.mRejects.Inc()
		return http.StatusConflict, SegmentResponse{Acked: acked, Durable: durable,
			Error: fmt.Sprintf("segment at %d, acked %d", m.Offset, acked)}
	}
	// Backpressure: the window is draining into a publish, or too much is
	// pending. Folding now would either race the snapshot or grow the
	// unpublished (crash-vulnerable) backlog without bound.
	if r.draining || r.pending >= r.cfg.MaxPending {
		r.mThrottled.Inc()
		return http.StatusTooManyRequests, SegmentResponse{Acked: acked, Durable: durable, Error: "draining"}
	}
	if got := Digest(payload); got != m.SHA256 {
		r.mDigest.Inc()
		return http.StatusBadRequest, SegmentResponse{Acked: acked, Durable: durable,
			Error: fmt.Sprintf("digest mismatch: manifest %s, payload %s", m.SHA256, got)}
	}
	text := payload
	if m.Gzipped() {
		// A gzip stream cannot be decoded from a mid-stream offset, so
		// gzip shards are only acceptable whole.
		if m.Offset != 0 || m.Length != m.ShardSize {
			r.mBadReq.Inc()
			return http.StatusBadRequest, SegmentResponse{Acked: acked, Durable: durable,
				Error: "gzip shards must ship as one whole-file segment"}
		}
		zr, err := gzip.NewReader(bytes.NewReader(payload))
		if err == nil {
			text, err = readAllLimited(zr)
		}
		if err != nil {
			r.mBadReq.Inc()
			return http.StatusBadRequest, SegmentResponse{Acked: acked, Durable: durable,
				Error: "gzip payload unreadable: " + err.Error()}
		}
	}

	records := 0
	st, err := logio.Decode(bytes.NewReader(text), true, func(rec beacon.Record) error {
		r.win.Add(m.Collector, rec)
		records++
		return nil
	})
	if err != nil {
		// The digest matched, so this is not corruption in transit: the
		// payload itself has an unscannable line. Refuse it so the
		// problem surfaces at the collector instead of vanishing here.
		r.mBadReq.Inc()
		return http.StatusBadRequest, SegmentResponse{Acked: acked, Durable: durable, Error: err.Error()}
	}
	r.mBadLines.Add(uint64(st.Bad))
	r.mSegments.Inc()
	r.mRecords.Add(uint64(records))
	r.mBytes.Add(uint64(len(payload)))
	r.acked[key] = m.Offset + m.Length
	r.pending++
	r.gPending.Set(int64(r.pending))
	r.gRecords.Set(int64(r.win.Records()))
	r.gSources.Set(int64(len(r.win.RecordsBySource())))
	return http.StatusOK, SegmentResponse{Acked: r.acked[key], Durable: durable}
}

// Status is the receiver's observability snapshot.
type Status struct {
	Period     string           `json:"period"`
	Records    int              `json:"records"`
	Sources    map[string]int   `json:"sources"` // collector -> retained records
	Acked      map[string]int64 `json:"acked"`   // collector/shard -> folded offset
	Pending    int              `json:"pending_segments"`
	Stragglers int              `json:"stragglers"`
	Published  bool             `json:"published"`
}

func (r *Receiver) handleStatus(w http.ResponseWriter, _ *http.Request) {
	r.mu.Lock()
	st := Status{
		Period:     r.win.Period(),
		Records:    r.win.Records(),
		Sources:    r.win.RecordsBySource(),
		Acked:      make(map[string]int64, len(r.acked)),
		Pending:    r.pending,
		Stragglers: r.win.Stragglers(),
		Published:  r.published,
	}
	for k, v := range r.acked {
		st.Acked[k] = v
	}
	r.mu.Unlock()
	writeJSON(w, http.StatusOK, st)
}

// Tick drains the window into a new generation: it snapshots the merged
// aggregate, the window state, and the acked offsets under the lock (with
// draining set, so no fold can slip between the snapshot and the publish),
// builds the map, and publishes map + federation checkpoint atomically.
// Once the generation is live, acked becomes durable and pending resets. A
// tick with nothing pending publishes nothing — unless the store is still
// empty, in which case a first (possibly empty) generation goes out so the
// serving side has something to load.
func (r *Receiver) Tick() (live.Refresh, error) {
	start := time.Now()
	r.mu.Lock()
	if r.draining {
		r.mu.Unlock()
		return live.Refresh{}, fmt.Errorf("federation: tick already in progress")
	}
	if r.pending == 0 && r.published {
		n := r.win.Records()
		r.mu.Unlock()
		return live.Refresh{WindowRecords: n}, nil
	}
	r.draining = true
	folded := r.pending
	agg := r.win.Merged()
	period := r.win.Period()
	ck := federationCheckpoint{
		Format: checkpointFormat,
		Window: r.win.State(),
		Acked:  make(map[string]int64, len(r.acked)),
	}
	for k, v := range r.acked {
		ck.Acked[k] = v
	}
	windowRecords := r.win.Records()
	r.mu.Unlock()

	gen, entries, err := r.publish(agg, period, ck)

	r.mu.Lock()
	r.draining = false
	if err == nil {
		r.published = true
		r.pending -= folded
		r.gPending.Set(int64(r.pending))
		for k, v := range ck.Acked {
			r.durable[k] = v
		}
	}
	r.mu.Unlock()
	if err != nil {
		return live.Refresh{}, err
	}
	r.mPublish.Inc()
	r.hPublish.Observe(time.Since(start).Seconds())
	if _, err := r.cfg.Store.Prune(r.cfg.Keep); err != nil {
		r.cfg.Logf("federation: prune: %v", err)
	}
	return live.Refresh{
		Published:     true,
		Generation:    gen,
		WindowRecords: windowRecords,
		Entries:       entries,
	}, nil
}

// publish builds the map from a drained aggregate and writes map +
// checkpoint into one staged generation.
func (r *Receiver) publish(agg *beacon.Aggregate, period string, ck federationCheckpoint) (snapshot.Generation, int, error) {
	m, err := live.BuildMap(agg, r.cfg.Threshold, period, r.cfg.Inputs)
	if err != nil {
		return snapshot.Generation{}, 0, err
	}
	raw, err := json.Marshal(ck)
	if err != nil {
		return snapshot.Generation{}, 0, err
	}
	gen, err := r.cfg.Store.Publish(func(dir string) error {
		f, err := os.Create(filepath.Join(dir, live.MapFile))
		if err != nil {
			return err
		}
		if err := m.Write(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, CheckpointFile), append(raw, '\n'), 0o644); err != nil {
			return err
		}
		return history.WriteMeta(dir, history.GenMeta{
			BuiltUnix: time.Now().Unix(),
			Entries:   m.Len(),
			Period:    m.Period,
			Threshold: r.cfg.Threshold,
			RAT:       m.HasRAT(),
		})
	})
	if err != nil {
		return snapshot.Generation{}, 0, err
	}
	return gen, m.Len(), nil
}

// Run ticks on every interval until ctx is done. Tick errors are logged
// and the loop continues: a transient disk failure must not kill the
// aggregation plane.
func (r *Receiver) Run(ctx context.Context) {
	t := time.NewTicker(r.cfg.Interval)
	defer t.Stop()
	for {
		res, err := r.Tick()
		switch {
		case err != nil:
			r.cfg.Logf("federation: tick: %v", err)
		case res.Published:
			srcs := r.SourceRecords()
			r.cfg.Logf("federation: published %s: %d entries from %d window records across %d collectors",
				res.Generation.Name(), res.Entries, res.WindowRecords, len(srcs))
		}
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
	}
}

// SourceRecords returns per-collector retained record counts, sorted keys.
func (r *Receiver) SourceRecords() []SourceRecords {
	r.mu.Lock()
	per := r.win.RecordsBySource()
	r.mu.Unlock()
	keys := make([]string, 0, len(per))
	for k := range per {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SourceRecords, 0, len(keys))
	for _, k := range keys {
		out = append(out, SourceRecords{Collector: k, Records: per[k]})
	}
	return out
}

// SourceRecords is one collector's retained record count.
type SourceRecords struct {
	Collector string `json:"collector"`
	Records   int    `json:"records"`
}

// readAllLimited reads a decompressed stream, refusing to balloon past the
// decoded-size cap implied by MaxSegmentBytes times a sanity factor.
func readAllLimited(zr *gzip.Reader) ([]byte, error) {
	const cap = int64(MaxSegmentBytes) * 64 // gzip on JSONL rarely exceeds ~20x
	var buf bytes.Buffer
	n, err := buf.ReadFrom(&limitedReader{r: zr, n: cap})
	if err != nil {
		return nil, err
	}
	if n >= cap {
		return nil, fmt.Errorf("decompressed payload over %d bytes", cap)
	}
	return buf.Bytes(), nil
}

type limitedReader struct {
	r *gzip.Reader
	n int64
}

func (l *limitedReader) Read(p []byte) (int, error) {
	if l.n <= 0 {
		return 0, fmt.Errorf("federation: decompression bomb")
	}
	if int64(len(p)) > l.n {
		p = p[:l.n]
	}
	n, err := l.r.Read(p)
	l.n -= int64(n)
	return n, err
}
