package federation

import (
	"context"
	"path/filepath"
	"testing"
	"time"
)

// BenchmarkShipperThroughput measures the full federation hot path: a
// shipper cutting sealed shards into segments and POSTing them through a
// real HTTP round-trip into a receiver that verifies digests and folds
// records into the multi-source window. Each iteration drains the same
// prepared spool into a fresh aggregation plane. Reported extras:
// segments/s, MB/s of payload, records/s, and the receiver-side mean fold
// latency per segment (µs/fold).
func BenchmarkShipperThroughput(b *testing.B) {
	recs := genRecords(20_000, 17000, 6)
	spool := b.TempDir()
	writeSpool(b, spool, recs, 5000, false)

	var segments, payloadBytes, records int64
	var foldSecs float64
	var folds uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		p := newPlane(b, b.TempDir())
		s, err := NewShipper(ShipperConfig{
			SpoolDir:     spool,
			CollectorID:  "bench",
			Target:       p.srv.URL,
			StateFile:    filepath.Join(b.TempDir(), "shipper.json"),
			SegmentBytes: DefaultSegmentBytes,
			MaxAttempts:  4,
			RetryBase:    time.Millisecond,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		rep, err := s.PollOnce(context.Background())
		if err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		if rep.Records != len(recs) {
			b.Fatalf("shipped %d records, want %d", rep.Records, len(recs))
		}
		segments += int64(rep.Segments)
		payloadBytes += rep.Bytes
		records += int64(rep.Records)
		fold := p.reg.Histogram("federation_recv_fold_seconds", "", nil)
		foldSecs += fold.Sum()
		folds += fold.Count()
		p.srv.Close()
		b.StartTimer()
	}
	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(segments)/elapsed, "segments/s")
		b.ReportMetric(float64(payloadBytes)/1e6/elapsed, "MB/s")
		b.ReportMetric(float64(records)/elapsed, "records/s")
	}
	if folds > 0 {
		b.ReportMetric(foldSecs/float64(folds)*1e6, "µs/fold")
	}
}
