package ingest

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"time"
)

func decodeAll(t *testing.T, in string, lenient bool) ([]Entry, int) {
	t.Helper()
	var out []Entry
	st, err := DecodeTSV(strings.NewReader(in), lenient, func(e *Entry) error {
		out = append(out, *e)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out, st.Bad
}

// TestDecodeTSVGolden parses a real-shaped Zeek conn.log: full directive
// header, #types line, unknown extra columns (missed_bytes, history),
// unset sentinels, IPv4 and IPv6 endpoints.
func TestDecodeTSVGolden(t *testing.T) {
	raw, err := os.ReadFile("testdata/zeek/conn.log")
	if err != nil {
		t.Fatal(err)
	}
	entries, bad := decodeAll(t, string(raw), false)
	if bad != 0 || len(entries) != 4 {
		t.Fatalf("entries=%d bad=%d, want 4/0", len(entries), bad)
	}

	e := entries[0]
	if e.UID != "CHhAvVGS1DHFjwGM9" || e.OrigH != "10.55.100.32" || e.OrigP != 49655 ||
		e.RespH != "203.0.113.80" || e.RespP != 443 || e.Proto != "tcp" || e.Service != "ssl" ||
		e.OrigBytes != 3281 || e.RespBytes != 24532 || e.ConnState != "SF" ||
		e.OrigPkts != 49 || e.RespPkts != 52 {
		t.Errorf("entry 0 = %+v", e)
	}
	want := time.Unix(1482624001, 384196000).UTC()
	if !e.TS.Equal(want) {
		t.Errorf("entry 0 ts = %v, want %v", e.TS, want)
	}

	if entries[1].OrigH != "2001:db8:1001:2::17" {
		t.Errorf("entry 1 orig_h = %q", entries[1].OrigH)
	}

	// Entry 2 carries unset service/duration/bytes.
	e = entries[2]
	if e.Service != "" || e.Duration != 0 || e.OrigBytes != 0 || e.RespBytes != 0 || e.ConnState != "S0" {
		t.Errorf("entry 2 unset fields = %+v", e)
	}

	// No vendor columns in a plain Zeek log: no cellular label, so the
	// derived record has no Network Information data.
	rec, err := entries[0].Record()
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasAPI() {
		t.Error("plain Zeek entry claims Network Information data")
	}
	if rec.PageLoadMS != 12394 {
		t.Errorf("PageLoadMS = %d, want 12394", rec.PageLoadMS)
	}
}

// TestDecodeTSVReordered pins #fields-driven mapping: a file with columns
// in a different order (and vendor extension columns) decodes by name.
func TestDecodeTSVReordered(t *testing.T) {
	raw, err := os.ReadFile("testdata/zeek/conn.reordered.log")
	if err != nil {
		t.Fatal(err)
	}
	entries, bad := decodeAll(t, string(raw), false)
	if bad != 0 || len(entries) != 3 {
		t.Fatalf("entries=%d bad=%d, want 3/0", len(entries), bad)
	}
	e := entries[0]
	if e.OrigH != "10.55.100.32" || e.RespH != "203.0.113.80" || e.NetType != "cellular" || e.Browser != "chrome" {
		t.Errorf("entry 0 = %+v", e)
	}
	rec, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasAPI() || rec.Conn != "cellular" {
		t.Errorf("vendor columns lost: %+v", rec)
	}
	if entries[2].NetType != "" {
		t.Errorf("unset net_type decoded as %q", entries[2].NetType)
	}
}

func TestDecodeTSVLenientAndStrict(t *testing.T) {
	in := "#separator \\x09\n" +
		"#fields\tts\tuid\tid.orig_h\tid.orig_p\n" +
		"1482624001.5\tC1\t10.0.0.1\t1000\n" +
		"not-a-ts\tC2\t10.0.0.2\t1001\n" + // bad timestamp
		"1482624003.5\tC3\t10.0.0.3\n" + // torn line: too few columns
		"1482624004.5\tC4\t10.0.0.4\t1003\textra\n" + // too many columns
		"1482624005.5\tC5\t10.0.0.5\t1004\n"

	entries, bad := decodeAll(t, in, true)
	if len(entries) != 2 || bad != 3 {
		t.Fatalf("lenient: entries=%d bad=%d, want 2/3", len(entries), bad)
	}
	if entries[0].UID != "C1" || entries[1].UID != "C5" {
		t.Errorf("lenient entries = %+v", entries)
	}

	if _, err := DecodeTSV(strings.NewReader(in), false, func(*Entry) error { return nil }); err == nil {
		t.Fatal("strict decode accepted malformed lines")
	}

	// A data line before any #fields header cannot be mapped.
	noHeader := "1482624001.5\tC1\t10.0.0.1\t1000\n"
	if _, err := DecodeTSV(strings.NewReader(noHeader), false, func(*Entry) error { return nil }); err == nil {
		t.Fatal("strict decode accepted data before #fields")
	}
	if entries, bad := decodeAll(t, noHeader, true); len(entries) != 0 || bad != 1 {
		t.Fatalf("lenient headerless: entries=%d bad=%d", len(entries), bad)
	}
}

// TestDecodeTSVCustomSeparator drives the #separator directive with a
// non-default separator.
func TestDecodeTSVCustomSeparator(t *testing.T) {
	in := "#separator \\x2c\n" +
		"#unset_field,-\n" +
		"#fields,ts,uid,id.orig_h,id.orig_p\n" +
		"1482624001.5,C1,10.0.0.1,1000\n"
	entries, bad := decodeAll(t, in, false)
	if len(entries) != 1 || bad != 0 {
		t.Fatalf("entries=%d bad=%d", len(entries), bad)
	}
	if entries[0].OrigH != "10.0.0.1" || entries[0].OrigP != 1000 {
		t.Errorf("entry = %+v", entries[0])
	}
}

// TestEpochTimeExact pins digit-exact timestamp handling down to
// nanoseconds — float64 parsing would corrupt the low digits.
func TestEpochTimeExact(t *testing.T) {
	cases := []struct {
		in   string
		want time.Time
	}{
		{"1482624001.384196", time.Unix(1482624001, 384196000).UTC()},
		{"1482624006.999999999", time.Unix(1482624006, 999999999).UTC()},
		{"1482624006.9999999995", time.Unix(1482624006, 999999999).UTC()}, // truncated, not rounded
		{"1482624000", time.Unix(1482624000, 0).UTC()},
		{"0.000000001", time.Unix(0, 1).UTC()},
		{"-1.5", time.Unix(-2, 500000000).UTC()},
	}
	for _, c := range cases {
		got, err := parseEpoch(c.in)
		if err != nil {
			t.Errorf("parseEpoch(%q): %v", c.in, err)
			continue
		}
		if !got.Equal(c.want) {
			t.Errorf("parseEpoch(%q) = %v, want %v", c.in, got, c.want)
		}
		// Round trip through the canonical notation.
		back, err := parseEpoch(Time{got}.epochString())
		if err != nil || !back.Equal(got) {
			t.Errorf("round trip %q -> %q -> %v (err %v)", c.in, Time{got}.epochString(), back, err)
		}
	}
	for _, bad := range []string{"", ".", "1.", "abc", "1.abc", "--1"} {
		if _, err := parseEpoch(bad); err == nil {
			t.Errorf("parseEpoch(%q) accepted", bad)
		}
	}
}

// TestTSVRoundTrip writes entries with the package encoder and reads them
// back: every tagged field must survive bit-identically.
func TestTSVRoundTrip(t *testing.T) {
	in := []Entry{
		{
			TS: Time{time.Unix(1482624001, 384196123).UTC()}, UID: "C1",
			OrigH: "10.1.2.3", OrigP: 50000, RespH: "203.0.113.9", RespP: 443,
			Proto: "tcp", Service: "ssl", Duration: 1.25, OrigBytes: 10, RespBytes: 20,
			ConnState: "SF", OrigPkts: 3, RespPkts: 4, NetType: "cellular", Browser: "chrome",
		},
		{
			TS: Time{time.Unix(1482624002, 0).UTC()}, UID: "C2",
			OrigH: "2001:db8::5", OrigP: 50001, RespH: "203.0.113.9", RespP: 80,
			Proto: "udp",
		},
	}
	var buf bytes.Buffer
	w := NewTSVWriter(&buf)
	for i := range in {
		if err := w.Write(&in[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	out, bad := decodeAll(t, buf.String(), false)
	if bad != 0 || len(out) != len(in) {
		t.Fatalf("entries=%d bad=%d", len(out), bad)
	}
	for i := range in {
		if !out[i].TS.Equal(in[i].TS.Time) {
			t.Errorf("entry %d ts = %v, want %v", i, out[i].TS, in[i].TS)
		}
		a, b := in[i], out[i]
		a.TS, b.TS = Time{}, Time{}
		if a != b {
			t.Errorf("entry %d round trip:\n got %+v\nwant %+v", i, b, a)
		}
	}

	// JSONL round trip over the same entries.
	var jbuf bytes.Buffer
	if err := WriteJSONL(&jbuf, in); err != nil {
		t.Fatal(err)
	}
	var jout []Entry
	dir := t.TempDir()
	path := dir + "/conn.jsonl"
	if err := os.WriteFile(path, jbuf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readConnFile(path, false, func(e *Entry) error { jout = append(jout, *e); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(jout) != len(in) {
		t.Fatalf("jsonl entries = %d", len(jout))
	}
	for i := range in {
		if !jout[i].TS.Equal(in[i].TS.Time) {
			t.Errorf("jsonl entry %d ts = %v, want %v", i, jout[i].TS, in[i].TS)
		}
		a, b := in[i], jout[i]
		a.TS, b.TS = Time{}, Time{}
		if a != b {
			t.Errorf("jsonl entry %d round trip:\n got %+v\nwant %+v", i, b, a)
		}
	}
}
