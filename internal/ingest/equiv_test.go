package ingest

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"maps"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/demand"
	"cellspot/internal/live"
	"cellspot/internal/netaddr"
)

// equivEntries builds a deterministic mixed workload: IPv4 and IPv6
// clients across several /24s and /48s, cellular/wifi/no-API labels,
// nanosecond-precision timestamps spanning multiple days, and non-trivial
// byte counts shaping DEMAND.
func equivEntries() []Entry {
	base := time.Unix(1482624000, 0).UTC() // 2016-12-25, the paper's window
	var out []Entry
	for i := 0; i < 120; i++ {
		var ip string
		switch i % 4 {
		case 0:
			ip = fmt.Sprintf("10.20.%d.%d", i%6, 10+i)
		case 1:
			ip = fmt.Sprintf("198.51.%d.%d", 100+i%3, 1+i)
		case 2:
			ip = fmt.Sprintf("2001:db8:%d::%d", i%5, 1+i)
		default:
			ip = fmt.Sprintf("100.64.%d.%d", i%4, 1+i)
		}
		conn := ""
		switch i % 3 {
		case 0:
			conn = "cellular"
		case 1:
			conn = "wifi"
		}
		rec := beacon.Record{
			Time:       base.Add(time.Duration(i)*7000*time.Second + time.Duration(i*123456789%1_000_000_000)),
			IP:         netip.MustParseAddr(ip),
			Conn:       conn,
			Browser:    []string{"chrome-mobile", "safari-mobile", "firefox"}[i%3],
			PageLoadMS: 500 + i*13,
		}
		e := FromRecord(rec)
		e.UID = fmt.Sprintf("Cequiv%04d", i)
		e.OrigBytes = int64(100 + i*37%5000)
		e.RespBytes = int64(i * 911 % 20000)
		out = append(out, e)
	}
	return out
}

// writeEquivTree lays the entries out across the three supported formats
// in a multi-sensor tree, in discovery order (default, sensor-a, sensor-b):
// plain TSV at the root, gzipped TSV under sensor-a, JSONL under sensor-b.
// With malformed true, junk lines are spliced into the plain TSV.
func writeEquivTree(t *testing.T, entries []Entry, malformed bool) string {
	t.Helper()
	root := t.TempDir()

	var tsv bytes.Buffer
	w := NewTSVWriter(&tsv)
	for i := range entries[:40] {
		if err := w.Write(&entries[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	body := tsv.String()
	if malformed {
		junk := "this line has no tabs at all\n" +
			"1482624001.5\tCbad\tnot-an-ip-at-all\n" + // wrong column count
			"#close\n"
		body = strings.Replace(body, "#close\n", junk, 1)
	}
	if err := os.WriteFile(filepath.Join(root, "conn.log"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	var gzTSV bytes.Buffer
	gz := gzip.NewWriter(&gzTSV)
	gw := NewTSVWriter(gz)
	for i := range entries[40:80] {
		if err := gw.Write(&entries[40+i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := gw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "sensor-a"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "sensor-a", "conn.2016-12-25.log.gz"), gzTSV.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	var jsonl bytes.Buffer
	if err := WriteJSONL(&jsonl, entries[80:]); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Join(root, "sensor-b"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "sensor-b", "conn.jsonl"), jsonl.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return root
}

// directAggregate is the oracle: the same entries injected in memory, in
// the same deterministic order the importer discovers them.
func directAggregate(t *testing.T, entries []Entry) (*beacon.Aggregate, *demand.Dataset) {
	t.Helper()
	agg := beacon.NewAggregate()
	weights := make(map[netaddr.Block]float64)
	for i := range entries {
		rec, err := entries[i].Record()
		if err != nil {
			t.Fatal(err)
		}
		agg.AddRecord(rec)
		if w := entries[i].Weight(); w > 0 {
			weights[netaddr.BlockFromAddr(rec.IP)] += w
		}
	}
	d, err := demand.NewDataset(weights)
	if err != nil {
		t.Fatal(err)
	}
	return agg, d
}

func classifySet(t *testing.T, agg *beacon.Aggregate) netaddr.Set {
	t.Helper()
	cl, err := classify.New(0.5)
	if err != nil {
		t.Fatal(err)
	}
	return cl.Classify(agg)
}

// TestEquivalenceOffline pins the tentpole acceptance criterion: a conn-log
// tree imported through the full file machinery (TSV, gzip TSV, JSONL,
// multi-sensor discovery, lenient-mode malformed lines) yields BEACON,
// DEMAND and classification bit-identical to direct record injection.
func TestEquivalenceOffline(t *testing.T) {
	entries := equivEntries()
	wantAgg, wantDemand := directAggregate(t, entries)
	wantSet := classifySet(t, wantAgg)

	for _, malformed := range []bool{false, true} {
		root := writeEquivTree(t, entries, malformed)
		res, err := Import(Config{Dir: root}, nil)
		if err != nil {
			t.Fatal(err)
		}
		wantBad := 0
		if malformed {
			wantBad = 2
		}
		if res.Stats.Records != len(entries) || res.Stats.Bad != wantBad {
			t.Fatalf("malformed=%v: stats = %+v, want %d records / %d bad",
				malformed, res.Stats, len(entries), wantBad)
		}
		if !res.Beacon.Equal(wantAgg) {
			t.Errorf("malformed=%v: imported BEACON aggregate differs from direct injection", malformed)
		}
		gotDemand, err := res.Demand()
		if err != nil {
			t.Fatal(err)
		}
		if !gotDemand.Equal(wantDemand) {
			t.Errorf("malformed=%v: imported DEMAND dataset differs from direct injection", malformed)
		}
		if got := classifySet(t, res.Beacon); !maps.Equal(got, wantSet) {
			t.Errorf("malformed=%v: classification differs: %d vs %d blocks",
				malformed, got.Len(), wantSet.Len())
		}
	}
}

// TestEquivalenceLivePath runs the same workload through the live chain:
// conn logs -> WriteSpool (gzip shards) -> Tailer -> Window, against a
// Window fed by direct injection. The merged aggregates and classification
// must be bit-identical.
func TestEquivalenceLivePath(t *testing.T) {
	entries := equivEntries()
	root := writeEquivTree(t, entries, true)

	spoolDir := t.TempDir()
	if _, err := WriteSpool(Config{Dir: root}, spoolDir, "foreign", true, 17); err != nil {
		t.Fatal(err)
	}

	const days = 14 // workload spans ~10 days
	tailed := live.NewWindow(days)
	tailer := live.NewTailer(spoolDir, "foreign")
	n, err := tailer.Poll(func(rec beacon.Record) { tailed.Add(rec) })
	if err != nil {
		t.Fatal(err)
	}
	if n != len(entries) || tailer.Bad() != 0 {
		t.Fatalf("tailer read %d records (%d bad), want %d", n, tailer.Bad(), len(entries))
	}

	direct := live.NewWindow(days)
	for i := range entries {
		rec, err := entries[i].Record()
		if err != nil {
			t.Fatal(err)
		}
		direct.Add(rec)
	}

	if tailed.Records() != direct.Records() {
		t.Fatalf("window records: tailed %d, direct %d", tailed.Records(), direct.Records())
	}
	tailedAgg, directAgg := tailed.Merged(), direct.Merged()
	if !tailedAgg.Equal(directAgg) {
		t.Error("live-path BEACON aggregate differs from direct injection")
	}
	if got, want := classifySet(t, tailedAgg), classifySet(t, directAgg); !maps.Equal(got, want) {
		t.Errorf("live-path classification differs: %d vs %d blocks", got.Len(), want.Len())
	}
}
