package ingest

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"strconv"
)

// connColumns is the canonical column order WriteTSV emits: Entry's zeek
// tags in declaration order, so encoder and decoder share one schema.
var connColumns = buildColumns()

func buildColumns() []string {
	var cols []string
	rt := reflect.TypeOf(Entry{})
	for i := 0; i < rt.NumField(); i++ {
		if tag := rt.Field(i).Tag.Get("zeek"); tag != "" && tag != "-" {
			cols = append(cols, tag)
		}
	}
	return cols
}

// TSVWriter writes conn entries as a Zeek-style TSV log, header included.
// It exists for fixtures, tests and synthetic conn-log generation — the
// production direction of this package is reading, not writing.
type TSVWriter struct {
	bw          *bufio.Writer
	wroteHeader bool
}

// NewTSVWriter returns a TSV conn-log writer over w.
func NewTSVWriter(w io.Writer) *TSVWriter {
	return &TSVWriter{bw: bufio.NewWriterSize(w, 64<<10)}
}

func (w *TSVWriter) header() error {
	lines := []string{
		"#separator \\x09",
		"#set_separator\t,",
		"#empty_field\t" + defaultEmptyField,
		"#unset_field\t" + defaultUnsetField,
		"#path\tconn",
	}
	for _, l := range lines {
		if _, err := w.bw.WriteString(l + "\n"); err != nil {
			return err
		}
	}
	if _, err := w.bw.WriteString("#fields"); err != nil {
		return err
	}
	for _, c := range connColumns {
		if _, err := w.bw.WriteString("\t" + c); err != nil {
			return err
		}
	}
	_, err := w.bw.WriteString("\n")
	return err
}

// Write appends one entry as a TSV data line, emitting the header first if
// needed.
func (w *TSVWriter) Write(e *Entry) error {
	if !w.wroteHeader {
		if err := w.header(); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	rv := reflect.ValueOf(e).Elem()
	rt := rv.Type()
	first := true
	for i := 0; i < rt.NumField(); i++ {
		if tag := rt.Field(i).Tag.Get("zeek"); tag == "" || tag == "-" {
			continue
		}
		if !first {
			if err := w.bw.WriteByte('\t'); err != nil {
				return err
			}
		}
		first = false
		if _, err := w.bw.WriteString(fieldString(rv.Field(i))); err != nil {
			return err
		}
	}
	return w.bw.WriteByte('\n')
}

// fieldString renders one field value in Zeek TSV notation.
func fieldString(v reflect.Value) string {
	switch v.Kind() {
	case reflect.Struct: // Time
		return v.Interface().(Time).epochString()
	case reflect.String:
		s := v.String()
		if s == "" {
			return defaultUnsetField
		}
		return s
	case reflect.Int, reflect.Int64:
		return strconv.FormatInt(v.Int(), 10)
	case reflect.Float64:
		return strconv.FormatFloat(v.Float(), 'f', 6, 64)
	}
	panic(fmt.Sprintf("ingest: unsupported field kind %s", v.Kind()))
}

// Close emits the trailing #close directive and flushes. The writer stays
// usable for the header-only case (an empty log is a header plus #close).
func (w *TSVWriter) Close() error {
	if !w.wroteHeader {
		if err := w.header(); err != nil {
			return err
		}
		w.wroteHeader = true
	}
	if _, err := w.bw.WriteString("#close\n"); err != nil {
		return err
	}
	return w.bw.Flush()
}

// WriteJSONL writes entries as Zeek JSON-lines output.
func WriteJSONL(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriterSize(w, 64<<10)
	enc := json.NewEncoder(bw)
	for i := range entries {
		if err := enc.Encode(&entries[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}
