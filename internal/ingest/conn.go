package ingest

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
	"time"

	"cellspot/internal/beacon"
)

// Time is a Zeek epoch timestamp: seconds since the Unix epoch with a
// fractional part. It parses and formats digit-exactly to nanosecond
// precision, so a record round-tripped through a conn log keeps its
// timestamp bit-identical — float64 cannot represent nanoseconds at
// 2016-era epochs, which would silently perturb day bucketing near
// midnight boundaries.
type Time struct{ time.Time }

// parseEpoch parses "sec[.frac]" into a UTC time, reading the fractional
// digits directly (padded or truncated to nanoseconds) instead of going
// through float64.
func parseEpoch(s string) (time.Time, error) {
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	intPart, fracPart, hasFrac := strings.Cut(s, ".")
	if intPart == "" || intPart[0] == '-' || intPart[0] == '+' {
		// The sign was consumed above; ParseInt must see bare digits.
		return time.Time{}, fmt.Errorf("ingest: malformed timestamp %q", s)
	}
	sec, err := strconv.ParseInt(intPart, 10, 64)
	if err != nil {
		return time.Time{}, fmt.Errorf("ingest: timestamp %q: %w", s, err)
	}
	var nsec int64
	if hasFrac {
		if fracPart == "" {
			return time.Time{}, fmt.Errorf("ingest: timestamp %q: empty fraction", s)
		}
		digits := fracPart
		if len(digits) > 9 {
			digits = digits[:9]
		}
		nsec, err = strconv.ParseInt(digits, 10, 64)
		if err != nil {
			return time.Time{}, fmt.Errorf("ingest: timestamp %q: %w", s, err)
		}
		for i := len(digits); i < 9; i++ {
			nsec *= 10
		}
	}
	if neg {
		sec, nsec = -sec, -nsec
	}
	return time.Unix(sec, nsec).UTC(), nil
}

// epochString formats the time the way parseEpoch reads it, with full
// nanosecond precision (Zeek writes 6 fractional digits; 9 is a superset
// the parser of any Zeek tooling accepts).
func (t Time) epochString() string {
	sec := t.Unix()
	nsec := t.Nanosecond()
	if sec < 0 && nsec > 0 {
		// time.Unix()/Nanosecond() split negative instants as
		// (floor, positive remainder); epoch notation needs one sign.
		sec++
		nsec = 1_000_000_000 - nsec
		if sec == 0 {
			return fmt.Sprintf("-0.%09d", nsec)
		}
	}
	return fmt.Sprintf("%d.%09d", sec, nsec)
}

// MarshalJSON writes the epoch notation as a JSON number, matching Zeek's
// JSON output format for time values.
func (t Time) MarshalJSON() ([]byte, error) {
	return []byte(t.epochString()), nil
}

// UnmarshalJSON accepts a JSON number (Zeek's format) or a string holding
// the same epoch notation.
func (t *Time) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	tt, err := parseEpoch(s)
	if err != nil {
		return err
	}
	t.Time = tt
	return nil
}

// Entry is one Zeek-style conn.log record. The zeek struct tags drive the
// TSV column mapping (resolved against the file's own #fields header, so
// column order and unknown extra columns never matter); the json tags match
// Zeek's JSON-lines output of the same log.
//
// The two cellspot_* columns are a vendor extension: a sensor that knows
// the client's radio state (e.g. a RUM-instrumented edge, or a probe on
// the Gi/SGi interface) annotates each connection with the Network
// Information API token and browser family. Plain Zeek deployments simply
// lack the columns, and the importer treats the fields as absent — such
// entries still feed DEMAND tallies and beacon hit counts, they just carry
// no cellular label (exactly like a RUM beacon from a browser without the
// API).
type Entry struct {
	TS        Time    `json:"ts" zeek:"ts"`
	UID       string  `json:"uid" zeek:"uid"`
	OrigH     string  `json:"id.orig_h" zeek:"id.orig_h"`
	OrigP     int     `json:"id.orig_p" zeek:"id.orig_p"`
	RespH     string  `json:"id.resp_h" zeek:"id.resp_h"`
	RespP     int     `json:"id.resp_p" zeek:"id.resp_p"`
	Proto     string  `json:"proto" zeek:"proto"`
	Service   string  `json:"service,omitempty" zeek:"service"`
	Duration  float64 `json:"duration,omitempty" zeek:"duration"`
	OrigBytes int64   `json:"orig_bytes,omitempty" zeek:"orig_bytes"`
	RespBytes int64   `json:"resp_bytes,omitempty" zeek:"resp_bytes"`
	ConnState string  `json:"conn_state,omitempty" zeek:"conn_state"`
	OrigPkts  int64   `json:"orig_pkts,omitempty" zeek:"orig_pkts"`
	RespPkts  int64   `json:"resp_pkts,omitempty" zeek:"resp_pkts"`

	// Vendor extension columns (see type comment).
	NetType string `json:"cellspot_net_type,omitempty" zeek:"cellspot_net_type"`
	Browser string `json:"cellspot_browser,omitempty" zeek:"cellspot_browser"`
}

// Record converts the conn entry into the beacon record the classification
// pipeline consumes: the originating (client) address is the measured
// endpoint, the vendor net-type column maps to the Network Information
// token, and the connection duration stands in for page load time.
func (e *Entry) Record() (beacon.Record, error) {
	addr, err := netip.ParseAddr(e.OrigH)
	if err != nil {
		return beacon.Record{}, fmt.Errorf("ingest: id.orig_h %q: %w", e.OrigH, err)
	}
	return beacon.Record{
		Time:       e.TS.Time,
		IP:         addr.Unmap(),
		Conn:       e.NetType,
		Browser:    e.Browser,
		PageLoadMS: int(e.Duration*1000 + 0.5),
	}, nil
}

// Weight is the entry's contribution to DEMAND tallies: total bytes moved.
// Zeek logs connections, not requests, so traffic volume is the honest
// demand proxy (the paper's DEMAND dataset weighs blocks by platform
// request demand; bytes are the conn-log analogue).
func (e *Entry) Weight() float64 {
	w := e.OrigBytes + e.RespBytes
	if w < 0 {
		return 0
	}
	return float64(w)
}

// FromRecord builds a conn entry encoding a beacon record — the inverse of
// Record, used by tests, fixtures and the synthetic conn-log generator.
// Identity fields not derivable from the record (responder, ports, proto)
// get fixed plausible values the importer ignores; byte counters default
// to zero and may be set by the caller to shape DEMAND.
func FromRecord(rec beacon.Record) Entry {
	return Entry{
		TS:       Time{rec.Time},
		OrigH:    rec.IP.String(),
		OrigP:    49152,
		RespH:    "203.0.113.10",
		RespP:    443,
		Proto:    "tcp",
		Service:  "http",
		Duration: float64(rec.PageLoadMS) / 1000,
		NetType:  rec.Conn,
		Browser:  rec.Browser,
	}
}
