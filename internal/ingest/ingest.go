// Package ingest imports foreign Zeek-style conn logs into the cellspot
// pipeline: the typed streaming importer the ROADMAP's "run the paper's
// method on your own traffic" workload needs. Real deployments have Zeek
// (or Zeek-shaped NetFlow exports), not Akamai RUM, so this package
// normalizes heterogeneous sensor output — TSV with #fields headers, JSON
// lines, plain or gzip, one directory per sensor — into the same
// beacon.Record stream and DEMAND tallies the synthetic generators emit.
// From there the existing machinery takes over unchanged: offline
// classification, or conversion into a spool the live
// Tailer→Window→Updater path refreshes maps from.
//
// An import-time subnet policy (always-include / never-include lists, in
// the tradition of RITA's internal-subnet config) drops excluded address
// space before it can contaminate any aggregate.
package ingest

import (
	"bufio"
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/logio"
	"cellspot/internal/netaddr"
	"cellspot/internal/obs"
)

// DefaultSensor labels conn files found at the root of the ingest tree,
// outside any per-sensor subdirectory.
const DefaultSensor = "default"

// Config parameterizes an import run.
type Config struct {
	// Dir is the root of the conn-log tree (required). Conn files may sit
	// directly in Dir, or one level down in per-sensor subdirectories
	// whose names become the sensor label.
	Dir string
	// Policy is the import-time subnet filter; nil admits everything.
	Policy *Policy
	// Strict aborts on the first malformed line instead of counting and
	// skipping it.
	Strict bool
	// Metrics, when non-nil, registers the ingest metric families:
	//
	//	ingest_files_total              conn files read (per sensor)
	//	ingest_records_total            entries imported (per sensor)
	//	ingest_bad_lines_total          malformed lines skipped (per sensor)
	//	ingest_filtered_records_total   entries dropped by policy (per sensor)
	//	ingest_bytes_total              compressed file bytes consumed
	Metrics *obs.Registry
	// Logf, when non-nil, receives per-file progress lines.
	Logf func(format string, args ...any)
}

// SensorStats is one sensor's import tally.
type SensorStats struct {
	Files    int `json:"files"`
	Records  int `json:"records"`  // entries delivered past the policy
	Bad      int `json:"bad"`      // malformed lines skipped (lenient mode)
	Filtered int `json:"filtered"` // entries dropped by policy
}

// Stats reports what an import run consumed.
type Stats struct {
	Files    int
	Records  int
	Bad      int
	Filtered int
	// PerSensor is keyed by sensor label, in no particular order; use
	// Sensors for deterministic iteration.
	PerSensor map[string]*SensorStats
}

// Sensors returns the sensor labels in sorted order.
func (s *Stats) Sensors() []string {
	out := make([]string, 0, len(s.PerSensor))
	for name := range s.PerSensor {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func (s *Stats) sensor(name string) *SensorStats {
	if s.PerSensor == nil {
		s.PerSensor = make(map[string]*SensorStats)
	}
	ss := s.PerSensor[name]
	if ss == nil {
		ss = &SensorStats{}
		s.PerSensor[name] = ss
	}
	return ss
}

// connFile is one discovered log file.
type connFile struct {
	sensor string
	path   string
}

// isConnFile reports whether a file name looks like a Zeek conn log:
// "conn" optionally followed by a rotation infix ("conn.2016-12-25.log",
// "conn.14:00:00-15:00:00.log"), with a .log or .jsonl suffix, optionally
// gzipped.
func isConnFile(name string) bool {
	stem := strings.TrimSuffix(name, ".gz")
	if !strings.HasSuffix(stem, ".log") && !strings.HasSuffix(stem, ".jsonl") {
		return false
	}
	return stem == "conn.log" || stem == "conn.jsonl" || strings.HasPrefix(stem, "conn.")
}

// discover lists conn files under root: directly in root (sensor
// DefaultSensor) and one level down (sensor = subdirectory name), in
// deterministic (sensor, name) order.
func discover(root string) ([]connFile, error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("ingest: read dir %s: %w", root, err)
	}
	var out []connFile
	for _, e := range entries {
		if e.IsDir() {
			subEntries, err := os.ReadDir(filepath.Join(root, e.Name()))
			if err != nil {
				return nil, fmt.Errorf("ingest: read sensor dir %s: %w", e.Name(), err)
			}
			for _, se := range subEntries {
				if !se.IsDir() && isConnFile(se.Name()) {
					out = append(out, connFile{sensor: e.Name(), path: filepath.Join(root, e.Name(), se.Name())})
				}
			}
			continue
		}
		if isConnFile(e.Name()) {
			out = append(out, connFile{sensor: DefaultSensor, path: filepath.Join(root, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].sensor != out[j].sensor {
			return out[i].sensor < out[j].sensor
		}
		return out[i].path < out[j].path
	})
	return out, nil
}

// readConnFile streams one conn file, sniffing the format from its first
// byte: Zeek TSV starts with '#', JSON lines with '{'. Gzip is transparent
// by suffix. An empty file yields nothing.
func readConnFile(path string, lenient bool, fn func(*Entry) error) (logio.ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return logio.ReadStats{}, fmt.Errorf("ingest: open %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return logio.ReadStats{}, fmt.Errorf("ingest: gunzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	br := bufio.NewReaderSize(r, 64<<10)
	first, err := br.Peek(1)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return logio.ReadStats{}, nil
		}
		return logio.ReadStats{}, fmt.Errorf("ingest: read %s: %w", path, err)
	}
	if first[0] == '{' {
		return logio.Decode(br, lenient, func(e Entry) error { return fn(&e) })
	}
	return DecodeTSV(br, lenient, fn)
}

// Result is an import run's aggregated output: the BEACON aggregate the
// classifier consumes and the raw per-block DEMAND weights (total bytes),
// plus the run's stats.
type Result struct {
	Beacon  *beacon.Aggregate
	Weights map[netaddr.Block]float64
	Stats   Stats
}

// Demand normalizes the byte weights into a DEMAND dataset (1,000 DU = 1%
// of observed traffic, exactly like the synthetic generator's output).
func (r *Result) Demand() (*demand.Dataset, error) {
	return demand.NewDataset(r.Weights)
}

// Import scans the configured conn-log tree and aggregates every admitted
// entry into BEACON counts and DEMAND byte weights. fn, when non-nil,
// additionally receives each admitted record in deterministic file order —
// the hook the spool converter and streaming consumers use; a single pass
// serves both.
func Import(cfg Config, fn func(beacon.Record)) (*Result, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("ingest: Config.Dir is required")
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	files, err := discover(cfg.Dir)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Beacon:  beacon.NewAggregate(),
		Weights: make(map[netaddr.Block]float64),
	}
	mBytes := cfg.Metrics.Counter("ingest_bytes_total", "Conn-log file bytes consumed (compressed size for gzip).")
	for _, cf := range files {
		ss := res.Stats.sensor(cf.sensor)
		sensorLabel := obs.L("sensor", cf.sensor)
		mFiles := cfg.Metrics.Counter("ingest_files_total", "Conn files read.", sensorLabel)
		mRecords := cfg.Metrics.Counter("ingest_records_total", "Conn entries imported.", sensorLabel)
		mBad := cfg.Metrics.Counter("ingest_bad_lines_total", "Malformed conn-log lines skipped.", sensorLabel)
		mFiltered := cfg.Metrics.Counter("ingest_filtered_records_total", "Conn entries dropped by the subnet policy.", sensorLabel)

		fileRecords, fileFiltered, fileBad := 0, 0, 0
		st, err := readConnFile(cf.path, !cfg.Strict, func(e *Entry) error {
			rec, err := e.Record()
			if err != nil {
				if cfg.Strict {
					return err
				}
				fileBad++
				return nil
			}
			if !cfg.Policy.Admit(rec.IP) {
				fileFiltered++
				return nil
			}
			fileRecords++
			res.Beacon.AddRecord(rec)
			if w := e.Weight(); w > 0 {
				res.Weights[netaddr.BlockFromAddr(rec.IP)] += w
			}
			if fn != nil {
				fn(rec)
			}
			return nil
		})
		fileBad += st.Bad
		ss.Files++
		ss.Records += fileRecords
		ss.Bad += fileBad
		ss.Filtered += fileFiltered
		res.Stats.Files++
		res.Stats.Records += fileRecords
		res.Stats.Bad += fileBad
		res.Stats.Filtered += fileFiltered
		mFiles.Inc()
		mRecords.Add(uint64(fileRecords))
		mBad.Add(uint64(fileBad))
		mFiltered.Add(uint64(fileFiltered))
		if fi, statErr := os.Stat(cf.path); statErr == nil {
			mBytes.Add(uint64(fi.Size()))
		}
		if err != nil {
			return nil, fmt.Errorf("ingest: %s: %w", cf.path, err)
		}
		logf("ingest: %s [%s]: %d records, %d bad, %d filtered",
			cf.path, cf.sensor, fileRecords, fileBad, fileFiltered)
	}
	return res, nil
}

// WriteSpool imports the conn-log tree into a beacon-record spool under
// outDir — the bridge into the live path: point a live.Updater (or
// cellmapd -live-spool) at the spool and the Tailer→Window→Updater chain
// refreshes maps from foreign traffic exactly as it does from beacond's
// own output. Returns the import result alongside the record count.
func WriteSpool(cfg Config, outDir, prefix string, gzipped bool, maxPerFile int) (*Result, error) {
	spool := logio.NewSpool(outDir, prefix, gzipped, maxPerFile)
	var werr error
	res, err := Import(cfg, func(rec beacon.Record) {
		if werr == nil {
			werr = spool.Write(rec)
		}
	})
	if err != nil {
		spool.Close()
		return nil, err
	}
	if werr != nil {
		spool.Close()
		return nil, fmt.Errorf("ingest: write spool: %w", werr)
	}
	if err := spool.Close(); err != nil {
		return nil, fmt.Errorf("ingest: close spool: %w", err)
	}
	return res, nil
}
