package ingest

import (
	"bufio"
	"fmt"
	"io"
	"reflect"
	"strconv"
	"strings"

	"cellspot/internal/logio"
)

// Zeek TSV framing defaults. The #separator directive can override the
// field separator; the unset/empty sentinels follow the header directives
// when present.
const (
	defaultSeparator  = "\t"
	defaultUnsetField = "-"
	defaultEmptyField = "(empty)"
)

// fieldSetter assigns one TSV column value to its Entry field.
type fieldSetter func(e *Entry, value string) error

// connSetters maps zeek tag names to setters, built once by reflection over
// Entry's zeek struct tags — adding a column to Entry is the only step
// needed to ingest it.
var connSetters = buildSetters()

func buildSetters() map[string]fieldSetter {
	out := make(map[string]fieldSetter)
	rt := reflect.TypeOf(Entry{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		tag := f.Tag.Get("zeek")
		if tag == "" || tag == "-" {
			continue
		}
		idx := i
		switch f.Type {
		case reflect.TypeOf(Time{}):
			out[tag] = func(e *Entry, v string) error {
				t, err := parseEpoch(v)
				if err != nil {
					return err
				}
				reflect.ValueOf(e).Elem().Field(idx).Set(reflect.ValueOf(Time{t}))
				return nil
			}
		case reflect.TypeOf(""):
			out[tag] = func(e *Entry, v string) error {
				reflect.ValueOf(e).Elem().Field(idx).SetString(v)
				return nil
			}
		case reflect.TypeOf(int(0)), reflect.TypeOf(int64(0)):
			out[tag] = func(e *Entry, v string) error {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return fmt.Errorf("ingest: field %s: %w", f.Name, err)
				}
				reflect.ValueOf(e).Elem().Field(idx).SetInt(n)
				return nil
			}
		case reflect.TypeOf(float64(0)):
			out[tag] = func(e *Entry, v string) error {
				n, err := strconv.ParseFloat(v, 64)
				if err != nil {
					return fmt.Errorf("ingest: field %s: %w", f.Name, err)
				}
				reflect.ValueOf(e).Elem().Field(idx).SetFloat(n)
				return nil
			}
		default:
			panic(fmt.Sprintf("ingest: unsupported Entry field type %s", f.Type))
		}
	}
	return out
}

// tsvHeader is the mutable per-file header state a Zeek TSV stream carries.
type tsvHeader struct {
	sep     string
	unset   string
	empty   string
	columns []fieldSetter // one per #fields column; nil = unmapped column
	mapped  bool          // a #fields directive has been seen
}

func newTSVHeader() *tsvHeader {
	return &tsvHeader{sep: defaultSeparator, unset: defaultUnsetField, empty: defaultEmptyField}
}

// directive processes one "#..." header line.
func (h *tsvHeader) directive(line string) error {
	name, rest, _ := strings.Cut(line, h.sep)
	if name == line {
		// The #separator line itself is separated by a space, before any
		// custom separator applies.
		name, rest, _ = strings.Cut(line, " ")
	}
	switch name {
	case "#separator":
		sep, err := unescapeSeparator(strings.TrimSpace(rest))
		if err != nil {
			return err
		}
		h.sep = sep
	case "#unset_field":
		h.unset = rest
	case "#empty_field":
		h.empty = rest
	case "#fields":
		cols := strings.Split(rest, h.sep)
		h.columns = make([]fieldSetter, len(cols))
		for i, c := range cols {
			h.columns[i] = connSetters[c] // nil for unknown columns
		}
		h.mapped = true
	}
	// #types, #path, #open, #close, #set_separator: framing we don't need.
	return nil
}

// unescapeSeparator decodes the #separator value, which Zeek writes with
// \xHH escapes (e.g. "\x09" for tab).
func unescapeSeparator(s string) (string, error) {
	if s == "" {
		return "", fmt.Errorf("ingest: empty #separator")
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] == '\\' && i+3 < len(s) && s[i+1] == 'x' {
			v, err := strconv.ParseUint(s[i+2:i+4], 16, 8)
			if err != nil {
				return "", fmt.Errorf("ingest: #separator %q: %w", s, err)
			}
			b.WriteByte(byte(v))
			i += 4
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String(), nil
}

// parseLine decodes one data line under the current header into e.
func (h *tsvHeader) parseLine(line string, e *Entry) error {
	if !h.mapped {
		return fmt.Errorf("ingest: data line before #fields header")
	}
	// Zeek writes every declared column on every line (unset ones carry
	// the sentinel), so a count mismatch means a torn or foreign line —
	// decoding a prefix of it would fabricate a half-empty entry.
	vals := strings.Split(line, h.sep)
	if len(vals) != len(h.columns) {
		return fmt.Errorf("ingest: %d columns, #fields declared %d", len(vals), len(h.columns))
	}
	for i, v := range vals {
		set := h.columns[i]
		if set == nil || v == h.unset {
			continue
		}
		if v == h.empty {
			v = ""
		}
		if err := set(e, v); err != nil {
			return err
		}
	}
	return nil
}

// DecodeTSV streams conn entries from a Zeek TSV log. The #fields header
// drives the column mapping, so reordered or extra columns are handled by
// construction; #separator, #unset_field and #empty_field directives are
// honored. In lenient mode malformed data lines are counted and skipped;
// in strict mode the first one aborts. Lines are capped at
// logio.MaxLineBytes, matching every other log reader in the system.
func DecodeTSV(r io.Reader, lenient bool, fn func(*Entry) error) (logio.ReadStats, error) {
	var st logio.ReadStats
	h := newTSVHeader()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), logio.MaxLineBytes)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" {
			continue
		}
		if line[0] == '#' {
			if err := h.directive(line); err != nil {
				if lenient {
					st.Bad++
					continue
				}
				return st, fmt.Errorf("ingest: line %d: %w", lineNo, err)
			}
			continue
		}
		var e Entry
		if err := h.parseLine(line, &e); err != nil {
			if lenient {
				st.Bad++
				continue
			}
			return st, fmt.Errorf("ingest: line %d: %w", lineNo, err)
		}
		if err := fn(&e); err != nil {
			return st, err
		}
		st.Records++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("ingest: scan: %w", err)
	}
	return st, nil
}
