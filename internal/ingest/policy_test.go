package ingest

import (
	"net/netip"
	"strings"
	"testing"
)

func TestPolicyAdmit(t *testing.T) {
	var nilPolicy *Policy
	if !nilPolicy.Admit(netip.MustParseAddr("10.0.0.1")) {
		t.Error("nil policy rejected an address")
	}

	p := &Policy{
		AlwaysInclude: []netip.Prefix{netip.MustParsePrefix("10.1.0.0/16")},
		NeverInclude: []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/8"),
			netip.MustParsePrefix("2001:db8::/32"),
		},
	}
	cases := []struct {
		addr string
		want bool
	}{
		{"10.1.2.3", true},    // always-include overrides never-include
		{"10.2.2.3", false},   // never-include
		{"192.0.2.1", true},   // matches nothing: admitted
		{"2001:db8::1", false},
		{"2001:db9::1", true},
		{"::ffff:10.2.2.3", false}, // 4-in-6 mapped address unmaps first
	}
	for _, c := range cases {
		if got := p.Admit(netip.MustParseAddr(c.addr)); got != c.want {
			t.Errorf("Admit(%s) = %v, want %v", c.addr, got, c.want)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	p, err := ParsePolicy(strings.NewReader(
		`{"always_include": ["100.64.0.0/10"], "never_include": ["10.0.0.5/8", "fc00::/7"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.AlwaysInclude) != 1 || len(p.NeverInclude) != 2 {
		t.Fatalf("policy = %+v", p)
	}
	// Prefixes are canonicalized (masked): 10.0.0.5/8 -> 10.0.0.0/8.
	if got := p.NeverInclude[0].String(); got != "10.0.0.0/8" {
		t.Errorf("never_include[0] = %s", got)
	}
	if !p.Admit(netip.MustParseAddr("100.70.0.1")) || p.Admit(netip.MustParseAddr("10.9.9.9")) {
		t.Error("parsed policy misbehaves")
	}

	for _, bad := range []string{
		`{"always_include": ["not-a-prefix"]}`,
		`{"unknown_key": []}`,
		`{`,
	} {
		if _, err := ParsePolicy(strings.NewReader(bad)); err == nil {
			t.Errorf("ParsePolicy(%q) accepted", bad)
		}
	}
}
