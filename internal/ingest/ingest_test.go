package ingest

import (
	"bytes"
	"compress/gzip"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/logio"
	"cellspot/internal/obs"
)

// copyTestdataTree clones the checked-in fixture tree into a temp dir and
// adds a gzip rotation shard under sensor-b, so one import run exercises
// TSV, JSONL, multi-sensor layout and gzip at once.
func copyTestdataTree(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	copyFile := func(src, dst string) {
		raw, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(dst), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(dst, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	copyFile("testdata/zeek/conn.log", filepath.Join(root, "conn.log"))
	copyFile("testdata/zeek/conn.reordered.log", filepath.Join(root, "sensor-a", "conn.2016-12-25.log"))
	copyFile("testdata/zeek/sensor-b/conn.jsonl", filepath.Join(root, "sensor-b", "conn.jsonl"))

	// Gzip rotation shard: the golden TSV, compressed.
	raw, err := os.ReadFile("testdata/zeek/conn.log")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	if _, err := gz.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, "sensor-b", "conn.2016-12-26.log.gz"), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	// Noise the discoverer must skip: non-conn logs, nested dirs, temp files.
	copyFile("testdata/zeek/conn.log", filepath.Join(root, "dns.log"))
	copyFile("testdata/zeek/conn.log", filepath.Join(root, "sensor-a", "connection-notes.txt"))
	if err := os.MkdirAll(filepath.Join(root, "sensor-a", "nested"), 0o755); err != nil {
		t.Fatal(err)
	}
	copyFile("testdata/zeek/conn.log", filepath.Join(root, "sensor-a", "nested", "conn.log"))
	return root
}

func TestIsConnFile(t *testing.T) {
	yes := []string{"conn.log", "conn.log.gz", "conn.jsonl", "conn.jsonl.gz",
		"conn.2016-12-25.log", "conn.14:00:00-15:00:00.log.gz", "conn.2016-12-25.jsonl"}
	no := []string{"dns.log", "conn", "conn.gz", "connection.log", "conn.log.bak", "notes.txt", "conn-summary.log"}
	for _, n := range yes {
		if !isConnFile(n) {
			t.Errorf("isConnFile(%q) = false", n)
		}
	}
	for _, n := range no {
		if isConnFile(n) {
			t.Errorf("isConnFile(%q) = true", n)
		}
	}
}

func TestImportMultiSensor(t *testing.T) {
	root := copyTestdataTree(t)
	reg := obs.NewRegistry()
	var streamed []beacon.Record
	res, err := Import(Config{Dir: root, Metrics: reg}, func(rec beacon.Record) {
		streamed = append(streamed, rec)
	})
	if err != nil {
		t.Fatal(err)
	}

	// default: conn.log (4) — dns.log and nested/ skipped.
	// sensor-a: reordered TSV (3).
	// sensor-b: jsonl (3) + gzip golden copy (4).
	want := map[string]SensorStats{
		"default":  {Files: 1, Records: 4},
		"sensor-a": {Files: 1, Records: 3},
		"sensor-b": {Files: 2, Records: 7},
	}
	if got := res.Stats.Sensors(); !reflect.DeepEqual(got, []string{"default", "sensor-a", "sensor-b"}) {
		t.Fatalf("sensors = %v", got)
	}
	for name, w := range want {
		if got := *res.Stats.PerSensor[name]; got != w {
			t.Errorf("sensor %s stats = %+v, want %+v", name, got, w)
		}
	}
	if res.Stats.Files != 4 || res.Stats.Records != 14 || res.Stats.Bad != 0 || res.Stats.Filtered != 0 {
		t.Errorf("totals = %+v", res.Stats)
	}
	if len(streamed) != 14 {
		t.Fatalf("streamed %d records", len(streamed))
	}
	if got := res.Beacon.Totals().Hits; got != 14 {
		t.Errorf("beacon total hits = %d", got)
	}

	// Per-sensor metric labels.
	for name, w := range want {
		if got := reg.Counter("ingest_records_total", "", obs.L("sensor", name)).Value(); got != uint64(w.Records) {
			t.Errorf("ingest_records_total{sensor=%s} = %d, want %d", name, got, w.Records)
		}
		if got := reg.Counter("ingest_files_total", "", obs.L("sensor", name)).Value(); got != uint64(w.Files) {
			t.Errorf("ingest_files_total{sensor=%s} = %d, want %d", name, got, w.Files)
		}
	}
	if reg.Counter("ingest_bytes_total", "").Value() == 0 {
		t.Error("ingest_bytes_total = 0")
	}

	// DEMAND weights: byte sums per block. The golden TSV contributes twice
	// (root copy + sensor-b gzip copy).
	d, err := res.Demand()
	if err != nil {
		t.Fatal(err)
	}
	if d.Blocks() == 0 || d.Total() == 0 {
		t.Errorf("demand dataset empty: %d blocks, %f DU", d.Blocks(), d.Total())
	}
}

func TestImportPolicy(t *testing.T) {
	root := copyTestdataTree(t)
	pol := &Policy{
		AlwaysInclude: []netip.Prefix{netip.MustParsePrefix("10.55.100.32/31")},
		NeverInclude: []netip.Prefix{
			netip.MustParsePrefix("10.0.0.0/8"),
			netip.MustParsePrefix("2001:db8:77::/48"),
		},
	}
	res, err := Import(Config{Dir: root, Policy: pol}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Never-include 10/8 drops 10.55.100.100 (×2 via gzip copy), 10.77.0.4,
	// 10.77.0.5 and 2001:db8:77::9 — but always-include keeps 10.55.100.32
	// (×2) and 10.55.100.33.
	if res.Stats.Filtered != 5 {
		t.Errorf("filtered = %d, want 5", res.Stats.Filtered)
	}
	if res.Stats.Records != 9 {
		t.Errorf("records = %d, want 9", res.Stats.Records)
	}
}

func TestImportLenientVsStrict(t *testing.T) {
	root := t.TempDir()
	body := "#separator \\x09\n" +
		"#fields\tts\tuid\tid.orig_h\tid.orig_p\n" +
		"1482624001.5\tC1\t10.0.0.1\t1000\n" +
		"garbage line without tabs\n" +
		"1482624002.5\tC2\tnot-an-ip\t1001\n" + // parses as TSV, fails Record()
		"1482624003.5\tC3\t10.0.0.3\t1002\n"
	if err := os.WriteFile(filepath.Join(root, "conn.log"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}

	res, err := Import(Config{Dir: root}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Records != 2 || res.Stats.Bad != 2 {
		t.Errorf("lenient stats = %+v, want 2 records / 2 bad", res.Stats)
	}

	if _, err := Import(Config{Dir: root, Strict: true}, nil); err == nil {
		t.Fatal("strict import accepted malformed conn.log")
	}
}

func TestWriteSpool(t *testing.T) {
	root := copyTestdataTree(t)
	out := t.TempDir()
	res, err := WriteSpool(Config{Dir: root}, out, "foreign", true, 5)
	if err != nil {
		t.Fatal(err)
	}
	files, err := logio.SpoolFiles(out, "foreign")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 { // 14 records, 5 per shard
		t.Fatalf("spool shards = %d (%v), want 3", len(files), files)
	}

	// The spool replays into the same aggregate the import built.
	replay := beacon.NewAggregate()
	n := 0
	if _, err := logio.DecodeSpool(out, "foreign", false, func(rec beacon.Record) error {
		replay.AddRecord(rec)
		n++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != res.Stats.Records {
		t.Fatalf("spool replay = %d records, import = %d", n, res.Stats.Records)
	}
	if !replay.Equal(res.Beacon) {
		t.Error("spool replay aggregate differs from import aggregate")
	}
}

func TestImportEmptyAndMissingDir(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "conn.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	res, err := Import(Config{Dir: root}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Files != 1 || res.Stats.Records != 0 {
		t.Errorf("empty-file stats = %+v", res.Stats)
	}
	if _, err := Import(Config{Dir: filepath.Join(root, "nope")}, nil); err == nil {
		t.Error("missing dir accepted")
	}
	if _, err := Import(Config{}, nil); err == nil {
		t.Error("empty Config.Dir accepted")
	}
}

func TestFromRecordRoundTrip(t *testing.T) {
	rec := beacon.Record{
		Time:       time.Unix(1482624001, 384196123).UTC(),
		IP:         netip.MustParseAddr("100.64.3.7"),
		Conn:       "cellular",
		Browser:    "chrome-mobile",
		PageLoadMS: 1234,
	}
	e := FromRecord(rec)
	back, err := e.Record()
	if err != nil {
		t.Fatal(err)
	}
	if back != rec {
		t.Errorf("round trip:\n got %+v\nwant %+v", back, rec)
	}
}
