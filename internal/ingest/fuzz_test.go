package ingest

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// FuzzConnTSV feeds arbitrary bytes through the lenient TSV decoder. The
// decoder must never panic, and whatever it does decode must survive a
// re-encode/re-decode round trip with the same entry count (encoder and
// decoder share one schema, and TSV values can never contain the
// separator, so decoded entries are always re-encodable).
func FuzzConnTSV(f *testing.F) {
	for _, p := range []string{"testdata/zeek/conn.log", "testdata/zeek/conn.reordered.log"} {
		raw, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(raw)
	}
	f.Add([]byte("#separator \\x2c\n#fields,ts,uid\n1.5,C1\n"))
	f.Add([]byte("#fields\tts\n-1.999999999\nnot a timestamp\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		var entries []Entry
		_, err := DecodeTSV(bytes.NewReader(data), true, func(e *Entry) error {
			entries = append(entries, *e)
			return nil
		})
		if err != nil || len(entries) == 0 {
			// Lenient decoding only errors on scanner-level faults
			// (oversize lines); nothing to round-trip.
			return
		}

		var buf bytes.Buffer
		w := NewTSVWriter(&buf)
		for i := range entries {
			if err := w.Write(&entries[i]); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		n := 0
		if _, err := DecodeTSV(strings.NewReader(buf.String()), false, func(*Entry) error {
			n++
			return nil
		}); err != nil {
			t.Fatalf("re-decode: %v\nencoded:\n%s", err, buf.String())
		}
		if n != len(entries) {
			t.Fatalf("round trip lost entries: %d -> %d", len(entries), n)
		}
	})
}
