package ingest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"os"
)

// Policy is the import-time subnet filter, RITA-style: a deployment's
// config names address space that must always enter the pipeline and space
// that never may (RFC1918 interconnects, the sensor's own management nets,
// partner ranges excluded by contract). It runs at ingest, before any
// classification, so filtered traffic never contaminates BEACON or DEMAND
// aggregates.
//
// Semantics: an address matching AlwaysInclude is admitted unconditionally;
// otherwise an address matching NeverInclude is dropped; otherwise it is
// admitted. A nil *Policy admits everything.
type Policy struct {
	AlwaysInclude []netip.Prefix `json:"always_include"`
	NeverInclude  []netip.Prefix `json:"never_include"`
}

// policyFile is the on-disk JSON shape, prefixes as strings.
type policyFile struct {
	AlwaysInclude []string `json:"always_include"`
	NeverInclude  []string `json:"never_include"`
}

// ParsePolicy reads a policy from JSON:
//
//	{"always_include": ["100.64.0.0/10"], "never_include": ["10.0.0.0/8"]}
func ParsePolicy(r io.Reader) (*Policy, error) {
	var pf policyFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&pf); err != nil {
		return nil, fmt.Errorf("ingest: parse policy: %w", err)
	}
	p := &Policy{}
	var err error
	if p.AlwaysInclude, err = parsePrefixes(pf.AlwaysInclude); err != nil {
		return nil, fmt.Errorf("ingest: policy always_include: %w", err)
	}
	if p.NeverInclude, err = parsePrefixes(pf.NeverInclude); err != nil {
		return nil, fmt.Errorf("ingest: policy never_include: %w", err)
	}
	return p, nil
}

// LoadPolicy reads a policy file from disk.
func LoadPolicy(path string) (*Policy, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("ingest: open policy: %w", err)
	}
	defer f.Close()
	return ParsePolicy(f)
}

func parsePrefixes(ss []string) ([]netip.Prefix, error) {
	out := make([]netip.Prefix, 0, len(ss))
	for _, s := range ss {
		p, err := netip.ParsePrefix(s)
		if err != nil {
			return nil, err
		}
		out = append(out, p.Masked())
	}
	return out, nil
}

// Admit reports whether an address passes the policy.
func (p *Policy) Admit(addr netip.Addr) bool {
	if p == nil {
		return true
	}
	addr = addr.Unmap()
	for _, pre := range p.AlwaysInclude {
		if pre.Contains(addr) {
			return true
		}
	}
	for _, pre := range p.NeverInclude {
		if pre.Contains(addr) {
			return false
		}
	}
	return true
}
