// Package report renders experiment output: fixed-width text tables for the
// paper's tables and numeric series (plus CSV) for its figures. Rendering
// is deterministic so experiment output can be diffed across runs.
package report

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a titled text table with aligned columns.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; missing cells render empty, extra cells are an error
// at render time.
func (t *Table) Row(cells ...string) {
	t.rows = append(t.rows, cells)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	for _, row := range t.rows {
		if len(row) > len(t.headers) {
			return fmt.Errorf("report: row has %d cells for %d columns", len(row), len(t.headers))
		}
	}
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, w))
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// F formats a float with the given precision.
func F(v float64, prec int) string {
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// Pct formats a fraction as a percentage with the given precision.
func Pct(v float64, prec int) string {
	return strconv.FormatFloat(v*100, 'f', prec, 64) + "%"
}

// Int formats an integer with thousands separators (1,234,567).
func Int(n int) string {
	s := strconv.Itoa(n)
	neg := strings.HasPrefix(s, "-")
	if neg {
		s = s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	out := strings.Join(parts, ",")
	if neg {
		out = "-" + out
	}
	return out
}

// Series is a titled multi-column numeric dataset standing in for one of
// the paper's figures.
type Series struct {
	Title   string
	Columns []string
	Rows    [][]float64
}

// NewSeries creates a series with the given column names.
func NewSeries(title string, columns ...string) *Series {
	return &Series{Title: title, Columns: columns}
}

// Add appends one row; the number of values must match the columns.
func (s *Series) Add(values ...float64) error {
	if len(values) != len(s.Columns) {
		return fmt.Errorf("report: series %q: %d values for %d columns", s.Title, len(values), len(s.Columns))
	}
	s.Rows = append(s.Rows, values)
	return nil
}

// MustAdd is Add that panics; for experiment code where the column count is
// statically known.
func (s *Series) MustAdd(values ...float64) {
	if err := s.Add(values...); err != nil {
		panic(err)
	}
}

// Render writes the series as an aligned text block with a sampled subset
// of rows when the series is long (maxRows <= 0 renders everything).
func (s *Series) Render(w io.Writer, maxRows int) error {
	t := NewTable(s.Title, s.Columns...)
	rows := s.Rows
	if maxRows > 0 && len(rows) > maxRows {
		// Evenly sample rows, always keeping first and last.
		sampled := make([][]float64, 0, maxRows)
		for i := 0; i < maxRows; i++ {
			idx := i * (len(rows) - 1) / (maxRows - 1)
			sampled = append(sampled, rows[idx])
		}
		rows = sampled
	}
	for _, r := range rows {
		cells := make([]string, len(r))
		for i, v := range r {
			cells[i] = F(v, 4)
		}
		t.Row(cells...)
	}
	return t.Render(w)
}

// RenderCSV writes the series as CSV with a header row.
func (s *Series) RenderCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString(strings.Join(s.Columns, ","))
	b.WriteByte('\n')
	for _, r := range s.Rows {
		for i, v := range r {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
