package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "Name", "Value")
	tb.Row("alpha", "1")
	tb.Row("b", "22222")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Demo\n====") {
		t.Errorf("missing title:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title, underline, header, separator, 2 rows
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[2], "Name ") || !strings.Contains(lines[2], "Value") {
		t.Errorf("header line = %q", lines[2])
	}
	// All data lines equal width (aligned).
	if len(lines[4]) > len(lines[2])+2 {
		t.Errorf("row wider than header area: %q vs %q", lines[4], lines[2])
	}
}

func TestTableRowTooWide(t *testing.T) {
	tb := NewTable("x", "A")
	tb.Row("1", "2")
	if err := tb.Render(&strings.Builder{}); err == nil {
		t.Error("oversized row accepted")
	}
}

func TestTableShortRow(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.Row("1")
	var sb strings.Builder
	if err := tb.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1") {
		t.Error("short row lost")
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Errorf("F = %q", F(3.14159, 2))
	}
	if Pct(0.162, 1) != "16.2%" {
		t.Errorf("Pct = %q", Pct(0.162, 1))
	}
	cases := map[int]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		350687:   "350,687",
		-1234567: "-1,234,567",
	}
	for n, want := range cases {
		if got := Int(n); got != want {
			t.Errorf("Int(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("CDF", "x", "y")
	if err := s.Add(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(1); err == nil {
		t.Error("wrong arity accepted")
	}
	s.MustAdd(3, 4)
	var sb strings.Builder
	if err := s.Render(&sb, 0); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.0000") || !strings.Contains(sb.String(), "4.0000") {
		t.Errorf("render output:\n%s", sb.String())
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAdd did not panic on arity error")
		}
	}()
	s.MustAdd(1, 2, 3)
}

func TestSeriesSampling(t *testing.T) {
	s := NewSeries("big", "x")
	for i := 0; i < 1000; i++ {
		s.MustAdd(float64(i))
	}
	var sb strings.Builder
	if err := s.Render(&sb, 11); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(sb.String(), "\n")
	if lines > 16 {
		t.Errorf("sampled render too long: %d lines", lines)
	}
	// First and last values retained.
	if !strings.Contains(sb.String(), "0.0000") || !strings.Contains(sb.String(), "999.0000") {
		t.Error("sampling dropped endpoints")
	}
}

func TestSeriesCSV(t *testing.T) {
	s := NewSeries("csv", "threshold", "f1")
	s.MustAdd(0.5, 0.99)
	var sb strings.Builder
	if err := s.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "threshold,f1\n0.5,0.99\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}
