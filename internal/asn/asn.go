// Package asn models autonomous systems: identity, country, ground-truth
// role, and a CAIDA-style AS-classification snapshot.
//
// The paper's AS-level filtering (Section 5.1, Table 5) consumes CAIDA's
// AS-classification dataset, which labels ASes Transit/Access, Content, or
// Enterprise — with some ASes missing entirely. This package reproduces both
// the registry (ground truth, generator-side) and the classification snapshot
// (measurement-side, incomplete on purpose).
package asn

import (
	"fmt"
	"sort"
)

// Class is the CAIDA-style AS classification the measurement pipeline sees.
type Class uint8

const (
	// ClassUnknown marks ASes absent from the classification snapshot.
	ClassUnknown Class = iota
	// ClassTransitAccess marks transit and access networks.
	ClassTransitAccess
	// ClassContent marks content and hosting networks.
	ClassContent
	// ClassEnterprise marks enterprise networks.
	ClassEnterprise
)

// String returns the CAIDA-style label.
func (c Class) String() string {
	switch c {
	case ClassTransitAccess:
		return "Transit/Access"
	case ClassContent:
		return "Content"
	case ClassEnterprise:
		return "Enterprise"
	case ClassUnknown:
		return "Unknown"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Role is the ground-truth role of an AS in the synthetic world. The
// measurement pipeline never reads roles; they exist so precision and recall
// can be computed exactly.
type Role uint8

const (
	// RoleFixedISP is a fixed-line-only access ISP.
	RoleFixedISP Role = iota
	// RoleDedicatedCellular is a cellular-only operator AS; may include
	// home broadband delivered over a cellular radio.
	RoleDedicatedCellular
	// RoleMixedOperator serves cellular and fixed-line customers from the
	// same AS.
	RoleMixedOperator
	// RoleCloudHosting is cloud infrastructure (the AWS/DigitalOcean-style
	// false positives of the straw-man AS tagging).
	RoleCloudHosting
	// RoleProxyService operates connection-terminating performance proxies
	// for mobile browsers (the Google/Opera-style false positives).
	RoleProxyService
	// RoleVPNService forwards mobile-client traffic through VPN egress.
	RoleVPNService
	// RoleEnterprise is a non-access enterprise network.
	RoleEnterprise
	// RoleContent is a content/CDN network.
	RoleContent
	// RoleTransit is a backbone transit network.
	RoleTransit
)

// String names the role for reports and debugging.
func (r Role) String() string {
	switch r {
	case RoleFixedISP:
		return "fixed-isp"
	case RoleDedicatedCellular:
		return "dedicated-cellular"
	case RoleMixedOperator:
		return "mixed-operator"
	case RoleCloudHosting:
		return "cloud-hosting"
	case RoleProxyService:
		return "proxy-service"
	case RoleVPNService:
		return "vpn-service"
	case RoleEnterprise:
		return "enterprise"
	case RoleContent:
		return "content"
	case RoleTransit:
		return "transit"
	}
	return fmt.Sprintf("Role(%d)", uint8(r))
}

// IsCellularAccess reports whether the role represents a cellular access
// network (the ground-truth positive set for AS-level identification).
func (r Role) IsCellularAccess() bool {
	return r == RoleDedicatedCellular || r == RoleMixedOperator
}

// AS describes one autonomous system.
type AS struct {
	Number  uint32
	Name    string
	Country string // ISO 3166-1 alpha-2
	Role    Role   // ground truth; generator-side only
	Class   Class  // true class; the snapshot may hide or keep it
}

// Registry is an immutable collection of ASes indexed by number.
type Registry struct {
	byNum map[uint32]*AS
	all   []*AS // sorted by AS number
}

// NewRegistry builds a registry, rejecting duplicate AS numbers.
func NewRegistry(ases []AS) (*Registry, error) {
	r := &Registry{byNum: make(map[uint32]*AS, len(ases))}
	for i := range ases {
		a := ases[i]
		if a.Number == 0 {
			return nil, fmt.Errorf("asn: AS number 0 is reserved")
		}
		if _, dup := r.byNum[a.Number]; dup {
			return nil, fmt.Errorf("asn: duplicate AS%d", a.Number)
		}
		cp := a
		r.byNum[a.Number] = &cp
		r.all = append(r.all, &cp)
	}
	sort.Slice(r.all, func(i, j int) bool { return r.all[i].Number < r.all[j].Number })
	return r, nil
}

// Lookup returns the AS with the given number.
func (r *Registry) Lookup(n uint32) (*AS, bool) {
	a, ok := r.byNum[n]
	return a, ok
}

// All returns every AS ordered by number. Callers must not mutate the slice.
func (r *Registry) All() []*AS { return r.all }

// Len returns the number of ASes.
func (r *Registry) Len() int { return len(r.all) }

// CountRole returns the number of ASes with the given ground-truth role.
func (r *Registry) CountRole(role Role) int {
	n := 0
	for _, a := range r.all {
		if a.Role == role {
			n++
		}
	}
	return n
}

// Snapshot is a CAIDA-style AS-classification dataset: a partial map from AS
// number to class. ASes absent from the snapshot have ClassUnknown, exactly
// like ASes missing from the real CAIDA file.
type Snapshot struct {
	classes map[uint32]Class
}

// SnapshotOption configures BuildSnapshot.
type SnapshotOption func(*snapshotOpts)

type snapshotOpts struct {
	dropEvery int // hide every n'th AS to model CAIDA incompleteness
}

// WithDropEvery hides every n'th AS (by sorted position) from the snapshot,
// modelling the real dataset's missing entries. n <= 0 disables dropping.
func WithDropEvery(n int) SnapshotOption {
	return func(o *snapshotOpts) { o.dropEvery = n }
}

// BuildSnapshot derives a classification snapshot from a registry.
func BuildSnapshot(r *Registry, opts ...SnapshotOption) *Snapshot {
	var o snapshotOpts
	for _, fn := range opts {
		fn(&o)
	}
	s := &Snapshot{classes: make(map[uint32]Class, r.Len())}
	for i, a := range r.All() {
		if o.dropEvery > 0 && (i+1)%o.dropEvery == 0 {
			continue // missing from the dataset
		}
		if a.Class == ClassUnknown {
			continue
		}
		s.classes[a.Number] = a.Class
	}
	return s
}

// Class returns the snapshot's class for an AS; ClassUnknown when absent.
func (s *Snapshot) Class(n uint32) Class {
	return s.classes[n]
}

// Len returns the number of classified ASes in the snapshot.
func (s *Snapshot) Len() int { return len(s.classes) }

// DefaultClassFor returns the class an AS of the given role would carry in a
// CAIDA-style dataset. Access operators and transit networks are
// Transit/Access; proxies, clouds and CDNs are Content; VPN egress is
// Enterprise (they typically rent enterprise space).
func DefaultClassFor(role Role) Class {
	switch role {
	case RoleFixedISP, RoleDedicatedCellular, RoleMixedOperator, RoleTransit:
		return ClassTransitAccess
	case RoleCloudHosting, RoleProxyService, RoleContent:
		return ClassContent
	case RoleVPNService, RoleEnterprise:
		return ClassEnterprise
	}
	return ClassUnknown
}
