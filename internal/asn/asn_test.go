package asn

import "testing"

func TestRegistryBasics(t *testing.T) {
	r, err := NewRegistry([]AS{
		{Number: 65001, Name: "CellCo", Country: "US", Role: RoleDedicatedCellular, Class: ClassTransitAccess},
		{Number: 65002, Name: "MixCo", Country: "DE", Role: RoleMixedOperator, Class: ClassTransitAccess},
		{Number: 65003, Name: "CloudCo", Country: "US", Role: RoleCloudHosting, Class: ClassContent},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	a, ok := r.Lookup(65002)
	if !ok || a.Name != "MixCo" {
		t.Errorf("Lookup(65002) = %v,%v", a, ok)
	}
	if _, ok := r.Lookup(1); ok {
		t.Error("Lookup invented an AS")
	}
	if got := r.CountRole(RoleDedicatedCellular); got != 1 {
		t.Errorf("CountRole = %d", got)
	}
	// sorted by number
	all := r.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Number >= all[i].Number {
			t.Error("All() not sorted")
		}
	}
}

func TestRegistryRejects(t *testing.T) {
	if _, err := NewRegistry([]AS{{Number: 0}}); err == nil {
		t.Error("AS 0 accepted")
	}
	if _, err := NewRegistry([]AS{{Number: 5}, {Number: 5}}); err == nil {
		t.Error("duplicate AS accepted")
	}
}

func TestRoleStringsAndCellular(t *testing.T) {
	cellular := map[Role]bool{
		RoleDedicatedCellular: true,
		RoleMixedOperator:     true,
		RoleFixedISP:          false,
		RoleCloudHosting:      false,
		RoleProxyService:      false,
		RoleVPNService:        false,
		RoleEnterprise:        false,
		RoleContent:           false,
		RoleTransit:           false,
	}
	for role, want := range cellular {
		if role.IsCellularAccess() != want {
			t.Errorf("%s.IsCellularAccess() = %v, want %v", role, !want, want)
		}
		if role.String() == "" || role.String()[0] == 'R' {
			t.Errorf("%d has no string name", role)
		}
	}
	if Role(200).String() != "Role(200)" {
		t.Error("unknown role String")
	}
}

func TestClassStrings(t *testing.T) {
	if ClassTransitAccess.String() != "Transit/Access" ||
		ClassContent.String() != "Content" ||
		ClassEnterprise.String() != "Enterprise" ||
		ClassUnknown.String() != "Unknown" {
		t.Error("class strings wrong")
	}
	if Class(99).String() != "Class(99)" {
		t.Error("unknown class String")
	}
}

func TestSnapshot(t *testing.T) {
	var ases []AS
	for i := uint32(1); i <= 10; i++ {
		ases = append(ases, AS{Number: i, Class: ClassTransitAccess})
	}
	ases[4].Class = ClassUnknown // AS 5 has no class even in truth
	r, err := NewRegistry(ases)
	if err != nil {
		t.Fatal(err)
	}

	full := BuildSnapshot(r)
	if full.Len() != 9 { // AS 5 is unknown
		t.Errorf("full snapshot Len = %d, want 9", full.Len())
	}
	if full.Class(5) != ClassUnknown {
		t.Error("unknown-class AS leaked into snapshot")
	}
	if full.Class(1) != ClassTransitAccess {
		t.Error("classified AS missing")
	}
	if full.Class(9999) != ClassUnknown {
		t.Error("absent AS not unknown")
	}

	partial := BuildSnapshot(r, WithDropEvery(3))
	// positions 3, 6, 9 dropped (AS numbers 3, 6, 9); AS 5 already unknown.
	if partial.Len() != 6 {
		t.Errorf("partial snapshot Len = %d, want 6", partial.Len())
	}
	if partial.Class(3) != ClassUnknown {
		t.Error("dropped AS still classified")
	}
}

func TestDefaultClassFor(t *testing.T) {
	cases := map[Role]Class{
		RoleFixedISP:          ClassTransitAccess,
		RoleDedicatedCellular: ClassTransitAccess,
		RoleMixedOperator:     ClassTransitAccess,
		RoleTransit:           ClassTransitAccess,
		RoleCloudHosting:      ClassContent,
		RoleProxyService:      ClassContent,
		RoleContent:           ClassContent,
		RoleVPNService:        ClassEnterprise,
		RoleEnterprise:        ClassEnterprise,
	}
	for role, want := range cases {
		if got := DefaultClassFor(role); got != want {
			t.Errorf("DefaultClassFor(%s) = %s, want %s", role, got, want)
		}
	}
	if DefaultClassFor(Role(99)) != ClassUnknown {
		t.Error("unknown role should map to unknown class")
	}
}
