package logio

import (
	"errors"
	"os"
	"strings"
	"testing"

	"cellspot/internal/faultline"
)

type faultRec struct {
	N int `json:"n"`
}

// A crash at the seal rename must leave only a .part file — never a sealed
// shard a reader could observe half-written — and a restarted spool must
// sweep the debris and resume numbering without rewriting sealed bytes.
func TestSpoolSealCrashLeavesNoTornShard(t *testing.T) {
	dir := t.TempDir()
	inj := &faultline.StepInjector{
		N: 1, D: faultline.Decision{Crash: true},
		Filter: func(op faultline.Op) bool { return op.Kind == "rename" },
	}
	ffs := faultline.NewFaultFS(faultline.OS(), inj, dir, nil)
	sp := NewSpool(dir, "beacon", false, 2)
	sp.SetFS(ffs)

	var sealErr error
	for i := 0; i < 4; i++ {
		if err := sp.Write(faultRec{N: i}); err != nil {
			sealErr = err
			break
		}
	}
	if !errors.Is(sealErr, faultline.ErrCrashed) {
		t.Fatalf("seal err = %v, want ErrCrashed", sealErr)
	}

	// No sealed shard is visible; the bytes live only in .part debris.
	files, err := SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("crashed seal published shards: %v", files)
	}
	entries, _ := os.ReadDir(dir)
	parts := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), PartSuffix) {
			parts++
		}
	}
	if parts != 1 {
		t.Fatalf("want exactly 1 .part debris file, got %d", parts)
	}

	// Restart: fresh spool sweeps the debris and starts over at shard 0.
	sp2 := NewSpool(dir, "beacon", false, 2)
	for i := 0; i < 2; i++ {
		if err := sp2.Write(faultRec{N: 100 + i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	var got []int
	if _, err := DecodeSpool(dir, "beacon", false, func(r faultRec) error {
		got = append(got, r.N)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != 100 || got[1] != 101 {
		t.Fatalf("post-recovery spool records = %v", got)
	}
}

// A failed fsync during seal must fail the seal (the shard is not published
// with potentially non-durable bytes).
func TestSpoolSealSyncErrorFailsSeal(t *testing.T) {
	dir := t.TempDir()
	inj := &faultline.StepInjector{
		N: 1, D: faultline.Decision{Err: faultline.ErrInjected},
		Filter: func(op faultline.Op) bool { return op.Kind == "sync" },
	}
	ffs := faultline.NewFaultFS(faultline.OS(), inj, dir, nil)
	sp := NewSpool(dir, "beacon", false, 1)
	sp.SetFS(ffs)

	err := sp.Write(faultRec{N: 1}) // maxPerFile=1 seals immediately
	if !errors.Is(err, faultline.ErrInjected) {
		t.Fatalf("seal with failing fsync: err = %v, want ErrInjected", err)
	}
	files, _ := SpoolFiles(dir, "beacon")
	if len(files) != 0 {
		t.Fatalf("failed seal still published shards: %v", files)
	}
}
