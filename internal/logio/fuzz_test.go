package logio

import (
	"strings"
	"testing"
)

// FuzzDecodeLenient checks that lenient decoding survives arbitrary input
// without panicking and accounts for every non-blank line as either a
// record or a bad line.
func FuzzDecodeLenient(f *testing.F) {
	f.Add("{\"id\":1}\n{broken\n\n{\"id\":2}\n")
	f.Add("")
	f.Add("\n\n\n")
	f.Add("null\n")
	f.Add(strings.Repeat(`{"id":3}`+"\n", 50))
	f.Fuzz(func(t *testing.T, in string) {
		type rec struct {
			ID int `json:"id"`
		}
		st, err := Decode(strings.NewReader(in), true, func(rec) error { return nil })
		if err != nil {
			return // scanner-level errors (e.g. oversize line) are allowed
		}
		nonBlank := 0
		for _, line := range strings.Split(in, "\n") {
			if strings.TrimSpace(line) != "" {
				nonBlank++
			}
		}
		if st.Records+st.Bad != nonBlank {
			t.Fatalf("records %d + bad %d != non-blank lines %d", st.Records, st.Bad, nonBlank)
		}
	})
}
