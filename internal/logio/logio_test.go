package logio

import (
	"bufio"
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

type rec struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
}

func TestWriterAndDecode(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for i := 0; i < 5; i++ {
		if err := w.Write(rec{ID: i, Name: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d", w.Count())
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	var got []rec
	st, err := Decode(&buf, false, func(r rec) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5 || st.Bad != 0 {
		t.Errorf("stats = %+v", st)
	}
	if got[3].ID != 3 {
		t.Errorf("records = %v", got)
	}
}

func TestDecodeStrictFailsOnGarbage(t *testing.T) {
	in := strings.NewReader(`{"id":1}` + "\n" + `{garbage` + "\n" + `{"id":2}` + "\n")
	_, err := Decode(in, false, func(rec) error { return nil })
	if err == nil {
		t.Fatal("strict decode accepted garbage")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error does not name the line: %v", err)
	}
}

func TestDecodeLenientSkipsGarbage(t *testing.T) {
	in := strings.NewReader(`{"id":1}` + "\n" + `{trunc` + "\n\n" + `not json at all` + "\n" + `{"id":2}` + "\n")
	n := 0
	st, err := Decode(in, true, func(rec) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 || st.Bad != 2 || n != 2 {
		t.Errorf("stats = %+v, n = %d", st, n)
	}
}

func TestDecodeCallbackErrorStops(t *testing.T) {
	in := strings.NewReader(`{"id":1}` + "\n" + `{"id":2}` + "\n")
	sentinel := errors.New("stop")
	calls := 0
	_, err := Decode(in, false, func(rec) error { calls++; return sentinel })
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
	if calls != 1 {
		t.Errorf("callback ran %d times after error", calls)
	}
}

func TestFileWriterPlainAndGzip(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"plain.jsonl", "zipped.jsonl.gz"} {
		path := filepath.Join(dir, "sub", name)
		fw, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := fw.Write(rec{ID: i}); err != nil {
				t.Fatal(err)
			}
		}
		if err := fw.Close(); err != nil {
			t.Fatal(err)
		}
		sum := 0
		st, err := DecodeFile(path, false, func(r rec) error { sum += r.ID; return nil })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Records != 100 || sum != 4950 {
			t.Errorf("%s: records=%d sum=%d", name, st.Records, sum)
		}
	}
	// Gzip actually compresses: the file must not contain raw JSON.
	raw, err := os.ReadFile(filepath.Join(dir, "sub", "zipped.jsonl.gz"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(raw, []byte(`"id"`)) {
		t.Error("gzip file contains plaintext JSON")
	}
}

func TestDecodeFileMissing(t *testing.T) {
	if _, err := DecodeFile[rec]("/nonexistent/nope.jsonl", false, func(rec) error { return nil }); err == nil {
		t.Error("missing file accepted")
	}
}

func TestDecodeFileBadGzip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.jsonl.gz")
	if err := os.WriteFile(path, []byte("this is not gzip"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFile[rec](path, true, func(rec) error { return nil }); err == nil {
		t.Error("bad gzip accepted")
	}
}

func TestSpoolSharding(t *testing.T) {
	dir := t.TempDir()
	sp := NewSpool(dir, "beacon", false, 40)
	for i := 0; i < 100; i++ {
		if err := sp.Write(rec{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	if sp.Count() != 100 {
		t.Errorf("Count = %d", sp.Count())
	}
	files, err := SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 { // 40 + 40 + 20
		t.Fatalf("shards = %v", files)
	}
	var ids []int
	st, err := DecodeSpool(dir, "beacon", false, func(r rec) error { ids = append(ids, r.ID); return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 100 {
		t.Errorf("decoded %d records", st.Records)
	}
	for i, id := range ids {
		if id != i {
			t.Fatalf("shard order broken at %d: got %d", i, id)
		}
	}
}

func TestSpoolGzipAndEmptyClose(t *testing.T) {
	dir := t.TempDir()
	sp := NewSpool(dir, "d", true, 0)
	if err := sp.Close(); err != nil { // close with nothing written
		t.Fatal(err)
	}
	sp = NewSpool(dir, "d", true, 0)
	for i := 0; i < 10; i++ {
		if err := sp.Write(rec{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}
	files, _ := SpoolFiles(dir, "d")
	if len(files) != 1 || !strings.HasSuffix(files[0], ".jsonl.gz") {
		t.Fatalf("files = %v", files)
	}
	n := 0
	if _, err := DecodeSpool(dir, "d", false, func(rec) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Errorf("decoded %d", n)
	}
}

func TestSpoolFilesIgnoresForeign(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"beacon-0000.jsonl", "other-0000.jsonl", "beacon-readme.txt", "beacon-0001.jsonl"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.Mkdir(filepath.Join(dir, "beacon-9999.jsonl"), 0o755); err != nil {
		t.Fatal(err)
	}
	files, err := SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("files = %v", files)
	}
}

// TestSpoolFilesTwoSpoolsOneDir pins the exact shard pattern: a spool
// prefix must not pick up shards of a longer-prefixed spool sharing the
// directory, nor half-written .tmp leftovers or non-numeric shard names.
func TestSpoolFilesTwoSpoolsOneDir(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{
		"rum-0000.jsonl",
		"rum-0001.jsonl.gz",
		"rum-10000.jsonl", // shard counter past four digits still belongs
		"rum-extra-0000.jsonl",
		"rum-extra-0001.jsonl.gz",
		"rum-0002.jsonl.tmp",
		"rum-0003.jsonl.gz.tmp",
		"rum-abc.jsonl",
		"rum-00.jsonl",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	files, err := SpoolFiles(dir, "rum")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		filepath.Join(dir, "rum-0000.jsonl"),
		filepath.Join(dir, "rum-0001.jsonl.gz"),
		filepath.Join(dir, "rum-10000.jsonl"),
	}
	if !slices.Equal(files, want) {
		t.Fatalf("files = %v, want %v", files, want)
	}
	extra, err := SpoolFiles(dir, "rum-extra")
	if err != nil {
		t.Fatal(err)
	}
	if len(extra) != 2 {
		t.Fatalf("rum-extra files = %v", extra)
	}
}

// TestSpoolSealsAtomically: a crash mid-write (spool abandoned without
// Close) must leave no sealed-but-short shard — only a .part file that no
// spool reader picks up. This is the contract the live tailer and the
// federation shipper rely on: a sealed shard name implies a complete shard.
func TestSpoolSealsAtomically(t *testing.T) {
	dir := t.TempDir()
	sp := NewSpool(dir, "beacon", false, 100)
	for i := 0; i < 60; i++ { // under maxPerFile: shard 0 never rotates
		if err := sp.Write(rec{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	// Crash: no Close. The 60 records live only in beacon-0000.jsonl.part.
	files, err := SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 0 {
		t.Fatalf("mid-write crash left sealed shards: %v", files)
	}
	if _, err := os.Stat(filepath.Join(dir, "beacon-0000.jsonl"+PartSuffix)); err != nil {
		t.Fatalf("active .part file missing: %v", err)
	}

	// A restarted writer sweeps the debris and the spool stays consistent:
	// every sealed shard is complete, no .part survives a clean Close.
	sp2 := NewSpool(dir, "beacon", false, 100)
	for i := 0; i < 150; i++ {
		if err := sp2.Write(rec{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	files, err = SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 { // 100 + 50
		t.Fatalf("sealed shards = %v, want 2", files)
	}
	n := 0
	if _, err := DecodeSpool(dir, "beacon", false, func(rec) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 150 {
		t.Fatalf("decoded %d records, want 150 (short shard sealed?)", n)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), PartSuffix) {
			t.Fatalf(".part survived a clean Close: %s", e.Name())
		}
	}
}

// TestSpoolResumesNumbering: a restarted collector must append new shards
// after the existing ones, never truncate a sealed shard in place — sealed
// bytes may already be consumed by a tailer checkpoint or shipped by a
// federation shipper.
func TestSpoolResumesNumbering(t *testing.T) {
	dir := t.TempDir()
	sp := NewSpool(dir, "beacon", false, 10)
	for i := 0; i < 25; i++ {
		if err := sp.Write(rec{ID: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil { // seals beacon-0000..0002
		t.Fatal(err)
	}
	sp2 := NewSpool(dir, "beacon", false, 10)
	if err := sp2.Write(rec{ID: 100}); err != nil {
		t.Fatal(err)
	}
	if err := sp2.Close(); err != nil {
		t.Fatal(err)
	}
	files, err := SpoolFiles(dir, "beacon")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 || !strings.HasSuffix(files[3], "beacon-0003.jsonl") {
		t.Fatalf("files = %v, want resume at beacon-0003", files)
	}
	var ids []int
	if _, err := DecodeSpool(dir, "beacon", false, func(r rec) error { ids = append(ids, r.ID); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 26 || ids[25] != 100 {
		t.Fatalf("replay = %d records, last %d", len(ids), ids[len(ids)-1])
	}
}

func TestSpoolFilesMissingDir(t *testing.T) {
	if _, err := SpoolFiles("/nonexistent/spool", "x"); err == nil {
		t.Error("missing dir accepted")
	}
}

// TestDecodeOversizeLine drives the scanner's buffer limit: a line beyond
// the 16 MiB cap must surface bufio.ErrTooLong in BOTH modes — lenient
// mode may skip malformed lines, but a line the scanner cannot even
// tokenize is not skippable, exactly like gzip-layer corruption.
func TestDecodeOversizeLine(t *testing.T) {
	oversize := `{"name":"` + strings.Repeat("a", MaxLineBytes) + `"}`
	for _, lenient := range []bool{false, true} {
		in := strings.NewReader(`{"id":1}` + "\n" + oversize + "\n" + `{"id":2}` + "\n")
		st, err := Decode(in, lenient, func(rec) error { return nil })
		if err == nil {
			t.Fatalf("lenient=%v: oversize line decoded without error", lenient)
		}
		if !errors.Is(err, bufio.ErrTooLong) {
			t.Errorf("lenient=%v: err = %v, want bufio.ErrTooLong", lenient, err)
		}
		if !strings.Contains(err.Error(), "scan") {
			t.Errorf("lenient=%v: error does not name the scan layer: %v", lenient, err)
		}
		// Records before the oversize line were already delivered.
		if st.Records != 1 || st.Bad != 0 {
			t.Errorf("lenient=%v: stats = %+v, want 1 record, 0 bad", lenient, st)
		}
	}
}

func TestDecodeTruncatedGzipLenient(t *testing.T) {
	// A gzip stream cut mid-file: lenient decoding should surface the error
	// (corruption at the compression layer is not a skippable line).
	dir := t.TempDir()
	path := filepath.Join(dir, "t.jsonl.gz")
	fw, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		fw.Write(rec{ID: i, Name: strings.Repeat("x", 50)})
	}
	if err := fw.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeFile[rec](path, true, func(rec) error { return nil }); err == nil {
		t.Error("truncated gzip stream decoded without error")
	}
}
