// Package logio implements the log plumbing shared by the BEACON and DEMAND
// datasets: streaming JSONL readers and writers with transparent gzip (by
// file suffix), and directory spools that shard long streams across files
// the way a CDN log pipeline rotates collection output.
//
// Readers offer a strict mode (first malformed line aborts) and a lenient
// mode that skips malformed or truncated lines while counting them — real
// log pipelines must survive partial flushes, and the failure-injection
// tests exercise exactly that.
package logio

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"cellspot/internal/faultline"
)

// Writer encodes one JSON record per line onto an io.Writer.
type Writer struct {
	bw  *bufio.Writer
	enc *json.Encoder
	n   int
}

// NewWriter wraps w in a buffered JSONL writer.
func NewWriter(w io.Writer) *Writer {
	bw := bufio.NewWriterSize(w, 64<<10)
	return &Writer{bw: bw, enc: json.NewEncoder(bw)}
}

// Write appends one record as a JSON line.
func (w *Writer) Write(v any) error {
	if err := w.enc.Encode(v); err != nil {
		return fmt.Errorf("logio: encode record %d: %w", w.n, err)
	}
	w.n++
	return nil
}

// Count returns the number of records written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.bw.Flush() }

// FileWriter is a Writer bound to a file, gzip-compressed when the path
// ends in ".gz".
type FileWriter struct {
	*Writer
	f  faultline.File
	gz *gzip.Writer
}

// Create opens path for writing (truncating), creating parent directories.
func Create(path string) (*FileWriter, error) {
	return CreateFS(path, faultline.OS())
}

// CreateFS is Create with filesystem operations routed through fs — the
// fault-injection hook the spool crash tests use.
func CreateFS(path string, fs faultline.FS) (*FileWriter, error) {
	if err := fs.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("logio: create dir for %s: %w", path, err)
	}
	f, err := fs.Create(path)
	if err != nil {
		return nil, fmt.Errorf("logio: create %s: %w", path, err)
	}
	fw := &FileWriter{f: f}
	// An active spool shard carries a .part suffix; compression is decided
	// by the name it will seal to.
	if strings.HasSuffix(strings.TrimSuffix(path, PartSuffix), ".gz") {
		fw.gz = gzip.NewWriter(f)
		fw.Writer = NewWriter(fw.gz)
	} else {
		fw.Writer = NewWriter(f)
	}
	return fw, nil
}

// Close flushes and closes the file.
func (w *FileWriter) Close() error {
	var errs []error
	if err := w.Flush(); err != nil {
		errs = append(errs, err)
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := w.f.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// closeSync is Close plus an fsync before the file descriptor goes away, so
// a rename that follows publishes only durable bytes.
func (w *FileWriter) closeSync() error {
	var errs []error
	if err := w.Flush(); err != nil {
		errs = append(errs, err)
	}
	if w.gz != nil {
		if err := w.gz.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	if err := w.f.Sync(); err != nil {
		errs = append(errs, err)
	}
	if err := w.f.Close(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// MaxLineBytes bounds one JSONL line. A longer line aborts the scan with
// bufio.ErrTooLong in strict AND lenient modes: the scanner cannot
// re-synchronize past a token it cannot buffer, so the failure is not a
// skippable line. The live tailer and the ingest importer enforce the same
// cap, so no reader of spooled or foreign logs buffers an unbounded line.
const MaxLineBytes = 16 << 20

// ReadStats reports what a lenient read encountered.
type ReadStats struct {
	Records int // successfully decoded records
	Bad     int // malformed lines skipped (lenient mode only)
}

// Decode streams records of type T from r, invoking fn per record. In
// strict mode the first malformed line aborts with an error; in lenient
// mode malformed lines are counted and skipped. fn returning an error stops
// the stream and propagates the error.
func Decode[T any](r io.Reader, lenient bool, fn func(T) error) (ReadStats, error) {
	var st ReadStats
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), MaxLineBytes)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var v T
		if err := json.Unmarshal(raw, &v); err != nil {
			if lenient {
				st.Bad++
				continue
			}
			return st, fmt.Errorf("logio: line %d: %w", line, err)
		}
		if err := fn(v); err != nil {
			return st, err
		}
		st.Records++
	}
	if err := sc.Err(); err != nil {
		return st, fmt.Errorf("logio: scan: %w", err)
	}
	return st, nil
}

// DecodeFile streams records from a file, transparently gunzipping ".gz".
func DecodeFile[T any](path string, lenient bool, fn func(T) error) (ReadStats, error) {
	f, err := os.Open(path)
	if err != nil {
		return ReadStats{}, fmt.Errorf("logio: open %s: %w", path, err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return ReadStats{}, fmt.Errorf("logio: gunzip %s: %w", path, err)
		}
		defer gz.Close()
		r = gz
	}
	return Decode(r, lenient, fn)
}

// PartSuffix marks an actively written, not yet sealed shard file. Part
// files never match IsShardName, so spool readers (the live tailer, the
// federation shipper) only ever observe complete, sealed shards.
const PartSuffix = ".part"

// Spool writes a long record stream sharded across numbered files in a
// directory, rotating after maxPerFile records.
//
// Shards are sealed atomically: the active shard is written as
// <name>.jsonl[.gz].part and renamed to its final name — after an fsync —
// only when it is complete (rotation or Close). A reader that sees a shard
// name therefore sees all of its bytes; a crash mid-write leaves only a
// .part file behind, never a sealed-but-short shard. The price is that
// records in the active shard are invisible until it seals.
//
// A spool pointed at a directory that already holds sealed shards resumes
// numbering after the highest existing shard instead of truncating it —
// a restarted collector must never rewrite bytes a reader (or a shipper's
// checkpoint) has already consumed. Orphaned .part files from a crashed
// writer are swept at first write: their records were never visible, so
// removing them keeps the "sealed means durable and immutable" contract.
type Spool struct {
	dir        string
	prefix     string
	gzip       bool
	maxPerFile int
	fs         faultline.FS
	cur        *FileWriter
	shard      int
	total      int
	inited     bool
}

// NewSpool creates a spool writing files named <prefix>-NNNN.jsonl[.gz]
// under dir. maxPerFile <= 0 means a single shard.
func NewSpool(dir, prefix string, gzipped bool, maxPerFile int) *Spool {
	return &Spool{dir: dir, prefix: prefix, gzip: gzipped, maxPerFile: maxPerFile, fs: faultline.OS()}
}

// SetFS routes the spool's filesystem operations through fs. It must be
// called before the first Write.
func (s *Spool) SetFS(fs faultline.FS) {
	if fs != nil {
		s.fs = fs
	}
}

// Dir returns the spool directory.
func (s *Spool) Dir() string { return s.dir }

// Prefix returns the spool's shard name prefix.
func (s *Spool) Prefix() string { return s.prefix }

func (s *Spool) shardPath(i int) string {
	ext := ".jsonl"
	if s.gzip {
		ext += ".gz"
	}
	return filepath.Join(s.dir, fmt.Sprintf("%s-%04d%s", s.prefix, i, ext))
}

// init scans the spool directory once: resume numbering after existing
// sealed shards and sweep .part debris from a crashed writer.
func (s *Spool) init() error {
	s.inited = true
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil // fresh directory; Create will make it
		}
		return fmt.Errorf("logio: scan spool dir %s: %w", s.dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if IsShardName(name, s.prefix) {
			var idx int
			if _, err := fmt.Sscanf(strings.TrimPrefix(name, s.prefix+"-"), "%d", &idx); err == nil && idx >= s.shard {
				s.shard = idx + 1
			}
			continue
		}
		if strings.HasPrefix(name, s.prefix+"-") && strings.HasSuffix(name, PartSuffix) &&
			IsShardName(strings.TrimSuffix(name, PartSuffix), s.prefix) {
			if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil {
				return fmt.Errorf("logio: sweep %s: %w", name, err)
			}
		}
	}
	return nil
}

// Write appends one record, rotating shards as needed.
func (s *Spool) Write(v any) error {
	if !s.inited {
		if err := s.init(); err != nil {
			return err
		}
	}
	if s.cur == nil {
		fw, err := CreateFS(s.shardPath(s.shard)+PartSuffix, s.fs)
		if err != nil {
			return err
		}
		s.cur = fw
	}
	if err := s.cur.Write(v); err != nil {
		return err
	}
	s.total++
	if s.maxPerFile > 0 && s.cur.Count() >= s.maxPerFile {
		return s.seal()
	}
	return nil
}

// seal finishes the active shard: flush, fsync, close, and rename the
// .part file to its sealed name in one atomic step.
func (s *Spool) seal() error {
	final := s.shardPath(s.shard)
	if err := s.cur.closeSync(); err != nil {
		s.cur = nil
		return err
	}
	s.cur = nil
	if err := s.fs.Rename(final+PartSuffix, final); err != nil {
		return fmt.Errorf("logio: seal %s: %w", filepath.Base(final), err)
	}
	s.shard++
	return nil
}

// Count returns the total number of records written across shards.
func (s *Spool) Count() int { return s.total }

// Close seals the current shard.
func (s *Spool) Close() error {
	if s.cur == nil {
		return nil
	}
	return s.seal()
}

// IsShardName reports whether name is a shard of the named spool: exactly
// <prefix>-NNNN.jsonl[.gz] with four or more digits. The exact match keeps
// spools with a common prefix apart ("rum" must not tail "rum-extra"'s
// shards) and excludes leftovers like half-written ".jsonl.tmp" files.
func IsShardName(name, prefix string) bool {
	rest, ok := strings.CutPrefix(name, prefix+"-")
	if !ok {
		return false
	}
	digits := 0
	for digits < len(rest) && rest[digits] >= '0' && rest[digits] <= '9' {
		digits++
	}
	if digits < 4 {
		return false
	}
	ext := rest[digits:]
	return ext == ".jsonl" || ext == ".jsonl.gz"
}

// SpoolFiles lists a spool's shard files in order. Only exact shard names
// (see IsShardName) are included.
func SpoolFiles(dir, prefix string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logio: read spool dir %s: %w", dir, err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !IsShardName(e.Name(), prefix) {
			continue
		}
		out = append(out, filepath.Join(dir, e.Name()))
	}
	sort.Strings(out)
	return out, nil
}

// DecodeSpool streams every record of a spool in shard order.
func DecodeSpool[T any](dir, prefix string, lenient bool, fn func(T) error) (ReadStats, error) {
	files, err := SpoolFiles(dir, prefix)
	if err != nil {
		return ReadStats{}, err
	}
	var total ReadStats
	for _, f := range files {
		st, err := DecodeFile(f, lenient, fn)
		total.Records += st.Records
		total.Bad += st.Bad
		if err != nil {
			return total, err
		}
	}
	return total, nil
}
