// Package chaos holds the end-to-end fault-injection suite: deterministic
// fault schedules (internal/faultline plans keyed by seed) driven through
// the snapshot store, the federation plane, and the gateway scatter-gather
// path, asserting the system's durability invariants under fire — no torn
// generations, exactly-once folding, no mixed-generation batches — and
// that a fixed-seed schedule replays byte-identically.
//
// The package has no production code; everything lives in the _test files.
// CI runs it under -race as the "chaos" step, plus a determinism gate that
// replays one schedule twice and diffs the event logs byte-for-byte.
package chaos
