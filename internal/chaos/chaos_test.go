package chaos

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/cellmap"
	"cellspot/internal/classify"
	"cellspot/internal/cluster"
	"cellspot/internal/faultline"
	"cellspot/internal/federation"
	"cellspot/internal/live"
	"cellspot/internal/logio"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/snapshot"
)

// seeds is the fixed schedule set every scenario replays. Three seeds per
// scenario is the acceptance floor; each seed is a complete, independent
// fault schedule.
var seeds = []uint64{1, 2, 3}

// outcome compresses an error to a stable token: error strings carry
// ephemeral detail (ports, temp paths), the schedule log must not.
func outcome(err error) string {
	if err != nil {
		return "err"
	}
	return "ok"
}

// --- scenario 1: snapshot publish under fs faults and crashes ----------

func mapPayload(gen int) []byte {
	return []byte(fmt.Sprintf("map-of-generation-%04d\n%s\n", gen, strings.Repeat("entry-line", 50)))
}

func ckPayload(gen int) []byte {
	return []byte(fmt.Sprintf(`{"checkpoint_for":%d}`+"\n", gen))
}

func writeVia(fs faultline.FS, path string, data []byte) error {
	f, err := fs.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// publishGen publishes one labeled generation through fs — both the store
// machinery and the payload writes take faults.
func publishGen(dir string, fs faultline.FS, gen int) error {
	st, err := snapshot.OpenFS(dir, fs)
	if err != nil {
		return err
	}
	_, err = st.Publish(func(staging string) error {
		if err := writeVia(fs, filepath.Join(staging, "cellmap.jsonl"), mapPayload(gen)); err != nil {
			return err
		}
		return writeVia(fs, filepath.Join(staging, "checkpoint.json"), ckPayload(gen))
	})
	return err
}

// verifyIntactStore reopens the store with the real filesystem and asserts
// the no-torn-generation invariant: either no CURRENT, or CURRENT names a
// generation whose files are byte-exact payloads of one label. It returns
// the current seq (0 when unset).
func verifyIntactStore(t *testing.T, dir string, maxGen int) uint64 {
	t.Helper()
	st, err := snapshot.Open(dir)
	if err != nil {
		t.Fatalf("store unopenable after faults: %v", err)
	}
	cur, ok, err := st.Current()
	if err != nil {
		t.Fatalf("CURRENT unreadable after faults: %v", err)
	}
	if !ok {
		return 0
	}
	mb, err := os.ReadFile(cur.Path("cellmap.jsonl"))
	if err != nil {
		t.Fatalf("%s: map missing: %v", cur.Name(), err)
	}
	cb, err := os.ReadFile(cur.Path("checkpoint.json"))
	if err != nil {
		t.Fatalf("%s: checkpoint missing: %v", cur.Name(), err)
	}
	for gen := 1; gen <= maxGen; gen++ {
		if bytes.Equal(mb, mapPayload(gen)) {
			if !bytes.Equal(cb, ckPayload(gen)) {
				t.Fatalf("%s: torn generation: map is gen %d, checkpoint is not", cur.Name(), gen)
			}
			return cur.Seq
		}
	}
	t.Fatalf("%s: map matches no known generation payload (%d bytes)", cur.Name(), len(mb))
	return 0
}

// runSnapshotSchedule replays one seeded schedule: a sequence of publishes
// through a faulty filesystem, each failure followed by intactness checks
// and a clean recovery publish. The returned log is the schedule's full
// event record — byte-identical across replays of the same seed.
func runSnapshotSchedule(t *testing.T, seed uint64) string {
	t.Helper()
	dir := t.TempDir()
	var log bytes.Buffer
	const gens = 10
	var lastSeq uint64
	faults := 0
	for gen := 1; gen <= gens; gen++ {
		// A per-generation seed keeps the draw stream fresh: file keys and
		// sequence numbers repeat across publishes, and a fixed plan would
		// fault every generation at the identical step.
		plan := faultline.NewPlan(seed+uint64(gen)*0x9e3779b9, faultline.PlanConfig{
			WriteErr: 50, ShortWrite: 40, SyncErr: 40, RenameErr: 40, CreateErr: 30, Crash: 40,
		})
		trace := &faultline.Trace{}
		ffs := faultline.NewFaultFS(faultline.OS(), plan, dir, trace)
		err := publishGen(dir, ffs, gen)
		fmt.Fprintf(&log, "publish gen %d: %s\n", gen, outcome(err))
		log.Write(trace.Log())
		seq := verifyIntactStore(t, dir, gen)
		if seq < lastSeq {
			t.Fatalf("gen %d: CURRENT went backwards (%d -> %d)", gen, lastSeq, seq)
		}
		if err == nil && seq <= lastSeq {
			t.Fatalf("gen %d: successful publish did not advance CURRENT (seq %d)", gen, seq)
		}
		lastSeq = seq
		if err != nil {
			faults++
			// Recovery: the same payload published cleanly must land.
			if err := publishGen(dir, faultline.OS(), gen); err != nil {
				t.Fatalf("gen %d: clean recovery publish failed: %v", gen, err)
			}
			seq := verifyIntactStore(t, dir, gen)
			if seq <= lastSeq {
				t.Fatalf("gen %d: recovery publish did not advance CURRENT", gen)
			}
			lastSeq = seq
			fmt.Fprintf(&log, "recover gen %d: ok\n", gen)
		}
	}
	if faults == 0 {
		t.Fatalf("seed %d: schedule injected no faults; scenario proved nothing", seed)
	}
	fmt.Fprintf(&log, "done: %d publishes, %d faulted\n", gens, faults)
	return log.String()
}

func TestChaosSnapshotPublish(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runSnapshotSchedule(t, seed)
			second := runSnapshotSchedule(t, seed)
			requireIdentical(t, first, second)
		})
	}
}

// requireIdentical diffs two schedule logs byte-for-byte, reporting the
// first diverging line on failure.
func requireIdentical(t *testing.T, first, second string) {
	t.Helper()
	if first == second {
		return
	}
	a, b := strings.Split(first, "\n"), strings.Split(second, "\n")
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at line %d:\n  run1: %s\n  run2: %s", i+1, a[i], b[i])
		}
	}
	t.Fatalf("replay diverged in length: %d vs %d lines", len(a), len(b))
}

// --- scenario 2: federation fold under transport faults ----------------

func chaosRecords(n int) []beacon.Record {
	conns := []string{
		netinfo.ConnCellular.String(),
		netinfo.ConnCellular.String(),
		netinfo.ConnWiFi.String(),
		netinfo.ConnUnknown.String(),
	}
	recs := make([]beacon.Record, 0, n)
	for i := 0; i < n; i++ {
		recs = append(recs, beacon.Record{
			Time: time.Unix((17000+int64(i%4))*86400+3600, 0).UTC(),
			IP:   netip.MustParseAddr(fmt.Sprintf("10.%d.%d.%d", (i/13)%120, i%240, 1+(i*7)%250)),
			Conn: conns[i%len(conns)],
		})
	}
	return recs
}

func chaosInputs() live.MapInputs {
	return live.MapInputs{ASOf: func(netaddr.Block) (uint32, bool) { return 64496, true }}
}

// cleanFoldMap is the ground truth: every record folded exactly once into
// one collector-keyed window, built into a map with the receiver's
// defaults. A chaotic delivery that retries, rewinds, and replays must
// produce this byte-for-byte.
func cleanFoldMap(t *testing.T, collector string, recs []beacon.Record) []byte {
	t.Helper()
	win := live.NewMultiWindow(0)
	for _, rec := range recs {
		win.Add(collector, rec)
	}
	m, err := live.BuildMap(win.Merged(), classify.DefaultThreshold, win.Period(), chaosInputs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runFederationSchedule replays one seeded schedule of transport faults
// (resets, 5xx, truncated response bodies, zero-sleep latency) against a
// real shipper→receiver exchange until every sealed byte is durable, then
// proves exactly-once folding by comparing the published map to the clean
// fold. Returns the deterministic event log.
func runFederationSchedule(t *testing.T, seed uint64) string {
	t.Helper()
	const collector = "chaos-c1"
	recs := chaosRecords(240)
	spool := t.TempDir()
	sp := logio.NewSpool(spool, "beacon", false, 60) // 4 sealed shards
	for _, rec := range recs {
		if err := sp.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sp.Close(); err != nil {
		t.Fatal(err)
	}

	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	recv, err := federation.NewReceiver(federation.ReceiverConfig{
		Inputs:     chaosInputs(),
		Store:      store,
		RetryAfter: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	recv.MountRoutes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	plan := faultline.NewPlan(seed, faultline.PlanConfig{
		Reset: 70, ServerErr: 70, PartialBody: 60, Latency: 100,
	})
	trace := &faultline.Trace{}
	shipper, err := federation.NewShipper(federation.ShipperConfig{
		SpoolDir:     spool,
		CollectorID:  collector,
		Target:       srv.URL,
		SegmentBytes: 4 << 10,
		MaxAttempts:  8,
		RetryBase:    time.Millisecond,
		ShipTimeout:  10 * time.Second,
		HTTPClient: &http.Client{Transport: &faultline.Transport{
			Inner: http.DefaultTransport,
			Inj:   plan,
			Trace: trace,
			Sleep: func(time.Duration) {}, // injected latency costs no wall clock
		}},
	})
	if err != nil {
		t.Fatal(err)
	}

	var log bytes.Buffer
	ctx := context.Background()
	done := false
	for round := 0; round < 300 && !done; round++ {
		rep, err := shipper.PollOnce(ctx)
		fmt.Fprintf(&log, "poll %d: segments=%d probes=%d rewinds=%d %s\n",
			round, rep.Segments, rep.Probes, rep.Rewinds, outcome(err))
		if _, err := recv.Tick(); err != nil {
			fmt.Fprintf(&log, "tick %d: err\n", round)
		}
		st, err := shipper.Stats()
		if err != nil {
			t.Fatal(err)
		}
		done = st.SealedBytes > 0 && st.DurableBytes == st.SealedBytes
		if done {
			fmt.Fprintf(&log, "durable after round %d: %d bytes\n", round, st.DurableBytes)
		}
	}
	if !done {
		t.Fatal("spool never became fully durable under the fault schedule")
	}
	if trace.Faults() == 0 {
		t.Fatalf("seed %d: no transport faults fired; scenario proved nothing", seed)
	}

	// Exactly-once: the published map equals the clean single fold.
	cur, ok, err := store.Current()
	if err != nil || !ok {
		t.Fatalf("no published generation (ok=%v err=%v)", ok, err)
	}
	got, err := os.ReadFile(cur.Path(live.MapFile))
	if err != nil {
		t.Fatal(err)
	}
	if want := cleanFoldMap(t, collector, recs); !bytes.Equal(got, want) {
		t.Fatalf("published map diverges from the clean fold: chaotic delivery folded records more or less than once")
	}
	log.Write(trace.Log())
	return log.String()
}

func TestChaosFederationFold(t *testing.T) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			first := runFederationSchedule(t, seed)
			second := runFederationSchedule(t, seed)
			requireIdentical(t, first, second)
		})
	}
}

// TestChaosDeterminismGate is the CI determinism gate in its narrowest
// form: one fixed schedule, replayed twice, event logs diffed
// byte-for-byte. The scenario tests above replay every seed; this one
// exists so the gate has a stable name that survives scenario refactors.
func TestChaosDeterminismGate(t *testing.T) {
	const seed = 0xC0FFEE
	requireIdentical(t, runSnapshotSchedule(t, seed), runSnapshotSchedule(t, seed))
}

// --- scenario 3: gateway scatter-gather under faults and swaps ---------

func chaosMap(t *testing.T, gen int) *cellmap.Map {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, `{"format":"cellspot-map/1","threshold":0.5,"period":"2016-w%02d","entries":16}`+"\n", 30+gen)
	for i := 0; i < 16; i++ {
		fmt.Fprintf(&b, `{"prefix":"10.0.%d.0/24","asn":%d,"ratio":0.7,"du":%d,"country":"DE"}`+"\n",
			i, 100*gen+i, i+1)
	}
	m, err := cellmap.Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestChaosGatewayScatterGather hammers a 3-shard × 2-replica fleet with 8
// concurrent clients through a fault-injecting transport while replicas
// swap generations underneath, asserting the consistency invariants on
// every successful response: a batch never mixes generations, and partial
// answers are explicitly marked degraded. Timing makes this scenario
// schedule-dependent, so it checks invariants rather than replaying a
// byte-identical log; -race supplies the memory-model teeth.
func TestChaosGatewayScatterGather(t *testing.T) {
	for _, seed := range []uint64{11, 12, 13} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			const shards, reps = 3, 2
			gen1, gen2 := chaosMap(t, 1), chaosMap(t, 2)
			ring := cluster.NewRing(shards, cluster.DefaultVNodes)
			topo := cluster.Topology{Format: cluster.TopologyFormat}
			sws := make([][]*cellmap.Swappable, shards)
			for s := 0; s < shards; s++ {
				spec := cluster.ShardSpec{}
				sws[s] = make([]*cellmap.Swappable, reps)
				for j := 0; j < reps; j++ {
					sw := cellmap.NewSwappable(gen1, 1)
					sws[s][j] = sw
					view, err := cluster.NewShardView(sw, ring, s)
					if err != nil {
						t.Fatal(err)
					}
					mux := http.NewServeMux()
					cluster.MountShard(mux, view)
					srv := httptest.NewServer(mux)
					t.Cleanup(srv.Close)
					spec.Replicas = append(spec.Replicas, srv.URL)
				}
				topo.Shards = append(topo.Shards, spec)
			}

			plan := faultline.NewPlan(seed, faultline.PlanConfig{
				Reset: 50, ServerErr: 50, PartialBody: 40,
			})
			g, err := cluster.NewGateway(cluster.GatewayConfig{
				Topology: topo,
				Client: &http.Client{
					Transport: &faultline.Transport{
						Inner: http.DefaultTransport,
						Inj:   plan,
						Sleep: func(time.Duration) {},
					},
					Timeout: 5 * time.Second,
				},
				Attempts:         2,
				HedgeDelay:       2 * time.Millisecond,
				BreakerThreshold: 4,
				BreakerCooldown:  20 * time.Millisecond,
				AllowDegraded:    true,
				CacheSize:        256,
			})
			if err != nil {
				t.Fatal(err)
			}

			var addrs []netip.Addr
			for i := 0; i < 16; i++ {
				addrs = append(addrs, netip.MustParseAddr(fmt.Sprintf("10.0.%d.5", i)))
			}

			var wg sync.WaitGroup
			var mu sync.Mutex
			successes, failures := 0, 0
			for c := 0; c < 8; c++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 40; i++ {
						br, err := g.Batch(context.Background(), addrs)
						if err != nil {
							mu.Lock()
							failures++
							mu.Unlock()
							continue
						}
						if br.Generation != 1 && br.Generation != 2 {
							t.Errorf("batch at unknown generation %d", br.Generation)
						}
						if len(br.Results) != len(addrs) {
							t.Errorf("batch returned %d results for %d addrs", len(br.Results), len(addrs))
						}
						for _, r := range br.Results {
							if r.Degraded {
								if !br.Degraded {
									t.Error("degraded result in a response not marked degraded")
								}
								continue
							}
							if r.Generation != br.Generation {
								t.Errorf("mixed generations in one batch: result %d, response %d",
									r.Generation, br.Generation)
							}
						}
						mu.Lock()
						successes++
						mu.Unlock()
					}
				}()
			}
			// Staggered rolling swap to generation 2 while clients hammer.
			for s := 0; s < shards; s++ {
				for j := 0; j < reps; j++ {
					time.Sleep(3 * time.Millisecond)
					sws[s][j].Swap(gen2, 2)
				}
			}
			wg.Wait()
			if successes == 0 {
				t.Fatalf("no batch ever succeeded under the fault schedule (%d failures)", failures)
			}
			t.Logf("seed %d: %d successes, %d failures", seed, successes, failures)
		})
	}
}
