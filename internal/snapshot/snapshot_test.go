package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func publishFile(t *testing.T, s *Store, name, content string) Generation {
	t.Helper()
	g, err := s.Publish(func(dir string) error {
		return os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644)
	})
	if err != nil {
		t.Fatalf("publish: %v", err)
	}
	return g
}

func TestPublishAndCurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := s.Current(); err != nil || ok {
		t.Fatalf("empty store Current = ok=%v err=%v, want ok=false err=nil", ok, err)
	}

	g1 := publishFile(t, s, "map.jsonl", "one\n")
	if g1.Seq != 1 {
		t.Fatalf("first generation seq = %d, want 1", g1.Seq)
	}
	g2 := publishFile(t, s, "map.jsonl", "two\n")
	if g2.Seq != 2 {
		t.Fatalf("second generation seq = %d, want 2", g2.Seq)
	}

	cur, ok, err := s.Current()
	if err != nil || !ok {
		t.Fatalf("Current: ok=%v err=%v", ok, err)
	}
	if cur.Seq != 2 {
		t.Fatalf("Current seq = %d, want 2", cur.Seq)
	}
	body, err := os.ReadFile(cur.Path("map.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != "two\n" {
		t.Fatalf("current map.jsonl = %q, want %q", body, "two\n")
	}
	// Generation 1 is still fully readable until pruned.
	if _, err := os.ReadFile(g1.Path("map.jsonl")); err != nil {
		t.Fatalf("old generation unreadable: %v", err)
	}
}

func TestPublishFailureLeavesStoreUnchanged(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishFile(t, s, "map.jsonl", "one\n")
	if _, err := s.Publish(func(dir string) error {
		return fmt.Errorf("builder exploded")
	}); err == nil {
		t.Fatal("Publish with failing writer succeeded")
	}
	cur, ok, err := s.Current()
	if err != nil || !ok || cur.Seq != 1 {
		t.Fatalf("after failed publish: cur=%+v ok=%v err=%v, want seq 1", cur, ok, err)
	}
	// No staging debris.
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.Name() != "CURRENT" && e.Name() != "gen-00000001" {
			t.Fatalf("unexpected store entry %q", e.Name())
		}
	}
}

func TestOpenSweepsStaging(t *testing.T) {
	dir := t.TempDir()
	// Simulate a crash mid-publish: a staging dir with a half-written file.
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-gen-00000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-gen-00000007", "map.jsonl"), []byte("part"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, ".tmp-gen-00000007")); !os.IsNotExist(err) {
		t.Fatalf("staging dir survived Open: err=%v", err)
	}
	if _, ok, err := s.Current(); err != nil || ok {
		t.Fatalf("store with only debris: ok=%v err=%v", ok, err)
	}
}

func TestOrphanGenerationIsInertAndSequenceAdvances(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	publishFile(t, s, "map.jsonl", "one\n")
	// Crash between the generation rename and the CURRENT flip: gen-2
	// exists, CURRENT still names gen-1.
	if err := os.MkdirAll(filepath.Join(dir, "gen-00000002"), 0o755); err != nil {
		t.Fatal(err)
	}
	cur, ok, err := s.Current()
	if err != nil || !ok || cur.Seq != 1 {
		t.Fatalf("Current with orphan: %+v ok=%v err=%v, want seq 1", cur, ok, err)
	}
	// The next publish must not collide with the orphan.
	g := publishFile(t, s, "map.jsonl", "three\n")
	if g.Seq != 3 {
		t.Fatalf("publish over orphan seq = %d, want 3", g.Seq)
	}
}

func TestCurrentCorruption(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("gen-00000009\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Current(); err == nil {
		t.Fatal("CURRENT naming a missing generation did not error")
	}
	if err := os.WriteFile(filepath.Join(dir, "CURRENT"), []byte("not-a-gen\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Current(); err == nil {
		t.Fatal("malformed CURRENT did not error")
	}
}

func TestPrune(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		publishFile(t, s, "map.jsonl", fmt.Sprintf("v%d\n", i+1))
	}
	removed, err := s.Prune(2)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 3 {
		t.Fatalf("Prune removed %d, want 3", removed)
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0].Seq != 4 || gens[1].Seq != 5 {
		t.Fatalf("after prune: %+v, want seqs 4,5", gens)
	}
	// keep=0 still refuses to remove the serving generation.
	if _, err := s.Prune(0); err != nil {
		t.Fatal(err)
	}
	cur, ok, err := s.Current()
	if err != nil || !ok || cur.Seq != 5 {
		t.Fatalf("current pruned away: %+v ok=%v err=%v", cur, ok, err)
	}
	if _, err := os.Stat(cur.Dir); err != nil {
		t.Fatalf("current generation dir missing: %v", err)
	}
}

func TestGenerationsOrder(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		publishFile(t, s, "f", "x")
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range gens {
		if g.Seq != uint64(i+1) {
			t.Fatalf("generation %d has seq %d", i, g.Seq)
		}
		if g.Name() != fmt.Sprintf("gen-%08d", i+1) {
			t.Fatalf("generation name %q", g.Name())
		}
	}
}

// TestPruneRespectsPins is the regression test for the history-serving race:
// before pin semantics existed, Prune would RemoveAll a generation while a
// /v1/lookup?gen=N reader was mid-read, handing the reader a torn file.
func TestPruneRespectsPins(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		publishFile(t, s, "map.jsonl", fmt.Sprintf("v%d\n", i+1))
	}

	pinned, ok := s.Pin(2)
	if !ok {
		t.Fatal("Pin(2) on a retained generation failed")
	}
	if _, ok := s.Pin(9); ok {
		t.Fatal("Pin(9) on a never-published generation succeeded")
	}

	removed, err := s.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	// Gens 1, 3, 4 removed; 2 pinned; 5 is CURRENT.
	if removed != 3 {
		t.Fatalf("Prune removed %d, want 3", removed)
	}
	if body, err := os.ReadFile(pinned.Path("map.jsonl")); err != nil || string(body) != "v2\n" {
		t.Fatalf("pinned generation torn: body=%q err=%v", body, err)
	}

	// A second pin on the same seq keeps it alive until both release.
	if _, ok := s.Pin(2); !ok {
		t.Fatal("second Pin(2) failed")
	}
	s.Unpin(2)
	if _, err := s.Prune(1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(pinned.Dir); err != nil {
		t.Fatalf("generation with one remaining pin removed: %v", err)
	}

	// After the last Unpin the generation becomes prunable again.
	s.Unpin(2)
	s.Unpin(2) // over-release is a no-op
	removed, err = s.Prune(1)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("post-unpin Prune removed %d, want 1", removed)
	}
	if _, err := os.Stat(pinned.Dir); !os.IsNotExist(err) {
		t.Fatalf("unpinned generation survived Prune: err=%v", err)
	}
	// Pinning a pruned seq now fails cleanly instead of resurrecting it.
	if _, ok := s.Pin(2); ok {
		t.Fatal("Pin(2) after prune succeeded")
	}
}

// TestGenerationsOrderWithDebris checks Generations() against the messes a
// crashed publisher leaves behind: orphan generations newer than CURRENT,
// .tmp staging directories, and stray non-generation entries.
func TestGenerationsOrderWithDebris(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		publishFile(t, s, "f", "x")
	}
	// Orphan generation above CURRENT (crash between the two renames).
	if err := os.MkdirAll(filepath.Join(dir, "gen-00000007"), 0o755); err != nil {
		t.Fatal(err)
	}
	// In-flight staging directory (publish racing the listing).
	if err := os.MkdirAll(filepath.Join(dir, ".tmp-gen-00000008"), 0o755); err != nil {
		t.Fatal(err)
	}
	// Stray entries that merely look similar.
	if err := os.MkdirAll(filepath.Join(dir, "gen-notanumber"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "gen-00000099"), []byte("a file, not a dir"), 0o644); err != nil {
		t.Fatal(err)
	}

	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{1, 2, 3, 7}
	if len(gens) != len(want) {
		t.Fatalf("Generations() = %+v, want seqs %v", gens, want)
	}
	for i, g := range gens {
		if g.Seq != want[i] {
			t.Fatalf("Generations()[%d].Seq = %d, want %v", i, g.Seq, want)
		}
	}
	// The orphan is inert for Current and skipped by the next publish's
	// numbering, but present in the ascending listing above.
	if cur, ok, err := s.Current(); err != nil || !ok || cur.Seq != 3 {
		t.Fatalf("Current with debris: %+v ok=%v err=%v, want seq 3", cur, ok, err)
	}
}
