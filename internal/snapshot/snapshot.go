// Package snapshot is a versioned on-disk snapshot store: the publish side
// of a serving stack that separates index *build* from index *serve*. A
// builder (the live map updater) writes each new dataset generation into a
// staging directory, the store renames it into place and flips a CURRENT
// pointer atomically, and any number of serving processes poll CURRENT and
// hot-swap when it moves. Old generations are pruned by count.
//
// On-disk layout under the store root:
//
//	CURRENT              — one line, the name of the live generation
//	gen-00000042/        — one complete, immutable generation
//	  cellmap.jsonl      —   (caller-defined files)
//	  checkpoint.json
//	.tmp-gen-00000043/   — staging for an in-flight publish
//
// Crash-recovery invariants:
//
//  1. A generation directory named gen-N exists only in complete form: all
//     files are written and synced inside .tmp-gen-N first, and the whole
//     directory is renamed into place in one atomic step.
//  2. CURRENT is replaced by rename, never rewritten in place, and only
//     after the generation it names is fully published. Readers therefore
//     never observe a CURRENT that points at a partial generation.
//  3. Leftover .tmp-* directories are crash debris; Open sweeps them. A
//     gen-N directory newer than CURRENT (crash between the two renames)
//     is inert: readers ignore it, and the next publish allocates above it.
package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"cellspot/internal/faultline"
)

const (
	currentFile = "CURRENT"
	genPrefix   = "gen-"
	tmpPrefix   = ".tmp-"
)

// Generation names one published dataset version.
type Generation struct {
	// Seq is the monotonically increasing generation number.
	Seq uint64
	// Dir is the generation's directory path.
	Dir string
}

// IsZero reports whether g names no generation.
func (g Generation) IsZero() bool { return g.Dir == "" }

// Name returns the directory base name, e.g. "gen-00000042".
func (g Generation) Name() string { return genName(g.Seq) }

// Path returns the path of a file inside the generation directory.
func (g Generation) Path(file string) string { return filepath.Join(g.Dir, file) }

func genName(seq uint64) string { return fmt.Sprintf("%s%08d", genPrefix, seq) }

func parseGenName(name string) (uint64, bool) {
	s, ok := strings.CutPrefix(name, genPrefix)
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Store is a directory of numbered generations plus a CURRENT pointer.
// Publish and Prune serialize against each other in-process; Current is
// safe to call concurrently from any number of goroutines or processes.
type Store struct {
	dir  string
	fs   faultline.FS
	mu   sync.Mutex
	pins map[uint64]int // generation seq -> in-process pin count
}

// Open creates (if needed) and opens a store rooted at dir, sweeping any
// staging directories left behind by a crashed publish.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, faultline.OS())
}

// OpenFS is Open with every filesystem operation routed through fs — the
// hook the crash-consistency matrix and the chaos suite use to inject
// write/fsync/rename failures and crash points into publishes.
func OpenFS(dir string, fs faultline.FS) (*Store, error) {
	if fs == nil {
		fs = faultline.OS()
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: open %s: %w", dir, err)
	}
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: open %s: %w", dir, err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			if err := fs.RemoveAll(filepath.Join(dir, e.Name())); err != nil {
				return nil, fmt.Errorf("snapshot: sweep staging %s: %w", e.Name(), err)
			}
		}
	}
	return &Store{dir: dir, fs: fs, pins: make(map[uint64]int)}, nil
}

// Pin marks a generation as in use by an in-process reader, shielding it
// from Prune until a matching Unpin. It returns the generation and true when
// the directory exists on disk; a pruned or never-published seq returns
// ok=false and takes no pin. Pins serialize against Prune on the store
// mutex, so a successful Pin guarantees the directory outlives the reader:
// a reader that pins, reads, and unpins never observes a half-removed
// generation.
func (s *Store) Pin(seq uint64) (Generation, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dir := filepath.Join(s.dir, genName(seq))
	if fi, err := s.fs.Stat(dir); err != nil || !fi.IsDir() {
		return Generation{}, false
	}
	s.pins[seq]++
	return Generation{Seq: seq, Dir: dir}, true
}

// Unpin releases one pin taken by Pin. Unpinning a seq with no outstanding
// pins is a no-op.
func (s *Store) Unpin(seq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.pins[seq] <= 1 {
		delete(s.pins, seq)
		return
	}
	s.pins[seq]--
}

// Dir returns the store root.
func (s *Store) Dir() string { return s.dir }

// Current returns the generation CURRENT points at. ok is false when the
// store has never published (no CURRENT file); a CURRENT that names a
// missing or malformed generation is corruption and returns an error.
func (s *Store) Current() (gen Generation, ok bool, err error) {
	raw, err := s.fs.ReadFile(filepath.Join(s.dir, currentFile))
	if os.IsNotExist(err) {
		return Generation{}, false, nil
	}
	if err != nil {
		return Generation{}, false, fmt.Errorf("snapshot: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(raw))
	seq, valid := parseGenName(name)
	if !valid {
		return Generation{}, false, fmt.Errorf("snapshot: CURRENT names %q, not a generation", name)
	}
	dir := filepath.Join(s.dir, name)
	if fi, err := s.fs.Stat(dir); err != nil || !fi.IsDir() {
		return Generation{}, false, fmt.Errorf("snapshot: CURRENT names %s, which does not exist", name)
	}
	return Generation{Seq: seq, Dir: dir}, true, nil
}

// Generations lists every fully published generation in ascending sequence
// order, including any newer than CURRENT (publish crash debris).
func (s *Store) Generations() ([]Generation, error) {
	entries, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: list %s: %w", s.dir, err)
	}
	var out []Generation
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		if seq, ok := parseGenName(e.Name()); ok {
			out = append(out, Generation{Seq: seq, Dir: filepath.Join(s.dir, e.Name())})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out, nil
}

// Publish allocates the next generation number, lets write populate its
// staging directory, then atomically renames the directory into place and
// flips CURRENT to it. On any error the staging directory is removed and
// the store is unchanged.
func (s *Store) Publish(write func(stagingDir string) error) (Generation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	gens, err := s.Generations()
	if err != nil {
		return Generation{}, err
	}
	seq := uint64(1)
	if n := len(gens); n > 0 {
		seq = gens[n-1].Seq + 1
	}
	name := genName(seq)
	staging := filepath.Join(s.dir, tmpPrefix+name)
	if err := s.fs.MkdirAll(staging, 0o755); err != nil {
		return Generation{}, fmt.Errorf("snapshot: stage %s: %w", name, err)
	}
	cleanup := func() { s.fs.RemoveAll(staging) }

	if err := write(staging); err != nil {
		cleanup()
		return Generation{}, fmt.Errorf("snapshot: write %s: %w", name, err)
	}
	if err := s.syncFiles(staging); err != nil {
		cleanup()
		return Generation{}, fmt.Errorf("snapshot: sync %s: %w", name, err)
	}
	final := filepath.Join(s.dir, name)
	if err := s.fs.Rename(staging, final); err != nil {
		cleanup()
		return Generation{}, fmt.Errorf("snapshot: publish %s: %w", name, err)
	}
	if err := s.setCurrent(name); err != nil {
		return Generation{}, err
	}
	s.syncDir(s.dir)
	return Generation{Seq: seq, Dir: final}, nil
}

// setCurrent atomically replaces the CURRENT pointer.
func (s *Store) setCurrent(name string) error {
	tmp := filepath.Join(s.dir, tmpPrefix+currentFile)
	if err := s.writeFileSync(tmp, []byte(name+"\n")); err != nil {
		return fmt.Errorf("snapshot: write CURRENT: %w", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, currentFile)); err != nil {
		s.fs.Remove(tmp)
		return fmt.Errorf("snapshot: flip CURRENT: %w", err)
	}
	return nil
}

// Prune removes old generations, keeping the newest keep of them. The
// generation CURRENT points at (and anything newer) is never removed, so
// keep <= 0 still retains the serving generation. Generations pinned by an
// in-process reader (see Pin) are skipped, not removed — they become
// eligible again on a later Prune after the last Unpin. Returns the number
// of generations removed.
func (s *Store) Prune(keep int) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()

	gens, err := s.Generations()
	if err != nil {
		return 0, err
	}
	cur, ok, err := s.Current()
	if err != nil {
		return 0, err
	}
	removed := 0
	// Candidates are generations strictly older than CURRENT; of the full
	// list, the newest `keep` survive.
	for i, g := range gens {
		if len(gens)-i <= keep {
			break
		}
		if ok && g.Seq >= cur.Seq {
			break
		}
		if s.pins[g.Seq] > 0 {
			continue
		}
		if err := s.fs.RemoveAll(g.Dir); err != nil {
			return removed, fmt.Errorf("snapshot: prune %s: %w", g.Name(), err)
		}
		removed++
	}
	return removed, nil
}

// writeFileSync writes data and syncs it to stable storage before closing.
func (s *Store) writeFileSync(path string, data []byte) error {
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncFiles fsyncs every regular file directly inside dir.
func (s *Store) syncFiles(dir string) error {
	entries, err := s.fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if !e.Type().IsRegular() {
			continue
		}
		f, err := s.fs.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			return err
		}
		err = f.Sync()
		f.Close()
		if err != nil {
			return err
		}
	}
	return nil
}

// syncDir fsyncs a directory so renames inside it are durable. Best effort:
// some filesystems reject directory fsync, and the rename itself is already
// atomic with respect to readers.
func (s *Store) syncDir(dir string) {
	if f, err := s.fs.Open(dir); err == nil {
		f.Sync()
		f.Close()
	}
}
