package snapshot

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cellspot/internal/faultline"
)

// The crash-consistency matrix: inject a failure, then separately a crash
// point, at EVERY mutating filesystem step of a generation publish (staging
// mkdir, each file create/write, each fsync, both renames, the directory
// sync) and assert that a store reopened on the resulting directory always
// recovers to either the old or the new CURRENT — never a torn state, and
// never a CURRENT naming an incomplete generation.

// matrixPayloads are the per-generation file contents; distinct per
// generation so a torn mix is detectable.
func matrixPayloads(gen int) map[string]string {
	return map[string]string{
		"cellmap.jsonl":   fmt.Sprintf("{\"gen\":%d,\"rows\":\"aaaaaaaaaaaaaaaa\"}\n", gen),
		"checkpoint.json": fmt.Sprintf("{\"gen\":%d}\n", gen),
	}
}

// publishVia runs one publish writing matrixPayloads(gen) through fs.
func publishVia(st *Store, fs faultline.FS, gen int) error {
	_, err := st.Publish(func(dir string) error {
		for _, name := range []string{"cellmap.jsonl", "checkpoint.json"} {
			f, err := fs.Create(filepath.Join(dir, name))
			if err != nil {
				return err
			}
			if _, err := f.Write([]byte(matrixPayloads(gen)[name])); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	})
	return err
}

// verifyIntact opens dir fresh (as a restarted process would) and checks
// the old-or-new invariant: CURRENT resolves, and the generation it names
// is complete and internally consistent with exactly one payload set.
// Returns the generation seq CURRENT resolved to (0 = no CURRENT yet).
func verifyIntact(t *testing.T, dir string) uint64 {
	t.Helper()
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after fault: %v", err)
	}
	cur, ok, err := st.Current()
	if err != nil {
		t.Fatalf("Current() after fault: %v", err)
	}
	if !ok {
		return 0
	}
	want := matrixPayloads(int(cur.Seq))
	for name, body := range want {
		got, err := os.ReadFile(cur.Path(name))
		if err != nil {
			t.Fatalf("gen %d incomplete: %s: %v", cur.Seq, name, err)
		}
		if string(got) != body {
			t.Fatalf("gen %d torn: %s = %q, want %q", cur.Seq, name, got, body)
		}
	}
	return cur.Seq
}

func TestPublishCrashConsistencyMatrix(t *testing.T) {
	// Count pass: how many mutating fs ops does one publish perform?
	countDir := t.TempDir()
	counter := &faultline.StepInjector{}
	cfs := faultline.NewFaultFS(faultline.OS(), counter, countDir, nil)
	st, err := OpenFS(countDir, cfs)
	if err != nil {
		t.Fatal(err)
	}
	if err := publishVia(st, cfs, 1); err != nil {
		t.Fatal(err)
	}
	steps := counter.Seen()
	if steps < 10 {
		t.Fatalf("publish performed only %d mutating ops; matrix would be trivial", steps)
	}

	for step := int64(1); step <= steps; step++ {
		for _, mode := range []string{"error", "crash"} {
			t.Run(fmt.Sprintf("%s-at-step-%02d", mode, step), func(t *testing.T) {
				dir := t.TempDir()
				// Baseline generation published cleanly.
				base, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if err := publishVia(base, faultline.OS(), 1); err != nil {
					t.Fatal(err)
				}

				d := faultline.Decision{Err: faultline.ErrInjected}
				if mode == "crash" {
					d = faultline.Decision{Crash: true}
				}
				// The injected fault may land inside OpenFS itself (its
				// MkdirAll is a counted mutating op) — that is a valid
				// matrix point too, handled as a failed publish attempt.
				inj := &faultline.StepInjector{N: step, D: d}
				ffs := faultline.NewFaultFS(faultline.OS(), inj, dir, nil)
				fst, pubErr := OpenFS(dir, ffs)
				if pubErr == nil {
					pubErr = publishVia(fst, ffs, 2)
				}
				if mode == "crash" && pubErr == nil && !ffs.Crashed() {
					t.Fatal("crash step never reached")
				}

				seq := verifyIntact(t, dir)
				if seq != 1 && seq != 2 {
					t.Fatalf("CURRENT resolved to gen %d, want 1 (old) or 2 (new)", seq)
				}
				// A publish that reported success must be visible.
				if pubErr == nil && seq != 2 {
					t.Fatalf("publish reported success but CURRENT is gen %d", seq)
				}

				// The store must accept the next publish after recovery.
				rec, err := Open(dir)
				if err != nil {
					t.Fatal(err)
				}
				if err := publishVia(rec, faultline.OS(), 3); err != nil {
					t.Fatalf("publish after recovery: %v", err)
				}
				cur, ok, err := rec.Current()
				if err != nil || !ok || cur.Seq <= seq {
					t.Fatalf("post-recovery publish: cur=%v ok=%v err=%v", cur, ok, err)
				}
			})
		}
	}
}

// Injected faults must surface as errors, not silent partial publishes:
// a short write inside the staging files either fails the publish or the
// published generation carries the full payload.
func TestPublishShortWriteNeverTears(t *testing.T) {
	for step := int64(1); step <= 3; step++ {
		dir := t.TempDir()
		inj := &faultline.StepInjector{
			N: step, D: faultline.Decision{Short: 3},
			Filter: func(op faultline.Op) bool { return op.Kind == "write" },
		}
		ffs := faultline.NewFaultFS(faultline.OS(), inj, dir, nil)
		st, err := OpenFS(dir, ffs)
		if err != nil {
			t.Fatal(err)
		}
		pubErr := publishVia(st, ffs, 1)
		if inj.Seen() >= step && pubErr == nil {
			t.Fatalf("step %d: short write was swallowed", step)
		}
		if !errors.Is(pubErr, faultline.ErrInjected) {
			t.Fatalf("step %d: err = %v, want ErrInjected", step, pubErr)
		}
		if seq := verifyIntact(t, dir); seq != 0 {
			t.Fatalf("step %d: failed publish left CURRENT at gen %d", step, seq)
		}
	}
}
