// Package beacon implements the BEACON dataset: Real-User-Monitoring beacon
// records carrying Network Information API data, their generation from a
// synthetic world, and the per-block aggregation the classifier consumes.
//
// Two generation paths exist with the same underlying distributions:
//
//   - Aggregate: the fast path. Hit tallies are drawn per block
//     (Poisson/Binomial), never materializing individual records. Used by
//     the full-scale pipeline and benchmarks.
//   - Stream: the record path. Emits individual Records suitable for JSONL
//     logs and the RUM collector examples.
package beacon

import (
	"fmt"
	"iter"
	"math/rand/v2"
	"net/netip"
	"time"

	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/par"
	"cellspot/internal/traffic"
	"cellspot/internal/world"
)

// Record is one RUM beacon hit as logged by the collector.
type Record struct {
	Time       time.Time  `json:"ts"`
	IP         netip.Addr `json:"ip"`
	Conn       string     `json:"conn,omitempty"` // Network Information token; empty when the API is absent
	RAT        string     `json:"rat,omitempty"`  // radio generation ("3g"/"4g"/"5g") on cellular-labeled hits; empty on legacy logs
	Browser    string     `json:"browser"`
	PageLoadMS int        `json:"plt_ms"`
}

// HasAPI reports whether the hit carried Network Information data.
func (r Record) HasAPI() bool { return r.Conn != "" }

// Counts tallies one block's beacon activity. The per-RAT fields split
// Cell by radio generation; logs predating the RAT column leave them zero
// (RATKnown() == 0 with Cell > 0 marks a legacy tally).
type Counts struct {
	Hits   int `json:"hits"`              // all beacon responses
	API    int `json:"api"`               // responses with Network Information data
	Cell   int `json:"cell"`              // responses labeled cellular
	Cell3G int `json:"cell_3g,omitempty"` // cellular labels on a 3G radio
	Cell4G int `json:"cell_4g,omitempty"` // cellular labels on a 4G radio
	Cell5G int `json:"cell_5g,omitempty"` // cellular labels on a 5G radio
}

// RATKnown returns the number of cellular labels carrying a radio
// generation; always <= Cell, and 0 on legacy data.
func (c Counts) RATKnown() int { return c.Cell3G + c.Cell4G + c.Cell5G }

// addRAT increments the counter for one radio generation.
func (c *Counts) addRAT(r netinfo.RAT, n int) {
	switch r {
	case netinfo.RAT3G:
		c.Cell3G += n
	case netinfo.RAT4G:
		c.Cell4G += n
	case netinfo.RAT5G:
		c.Cell5G += n
	}
}

// Aggregate is the per-block BEACON rollup.
type Aggregate struct {
	PerBlock map[netaddr.Block]*Counts
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{PerBlock: make(map[netaddr.Block]*Counts)}
}

// counts returns the block's tally, creating it when absent.
func (a *Aggregate) counts(b netaddr.Block) *Counts {
	c := a.PerBlock[b]
	if c == nil {
		c = &Counts{}
		a.PerBlock[b] = c
	}
	return c
}

// Add accumulates counts for a block.
func (a *Aggregate) Add(b netaddr.Block, hits, api, cell int) {
	c := a.counts(b)
	c.Hits += hits
	c.API += api
	c.Cell += cell
}

// AddCounts accumulates a full tally — including the per-RAT split — for a
// block; checkpoint restore paths use it so RAT counters survive restarts.
func (a *Aggregate) AddCounts(b netaddr.Block, n Counts) {
	c := a.counts(b)
	c.Hits += n.Hits
	c.API += n.API
	c.Cell += n.Cell
	c.Cell3G += n.Cell3G
	c.Cell4G += n.Cell4G
	c.Cell5G += n.Cell5G
}

// AddRecord accumulates one beacon record.
func (a *Aggregate) AddRecord(r Record) {
	c := a.counts(netaddr.BlockFromAddr(r.IP))
	c.Hits++
	if !r.HasAPI() {
		return
	}
	c.API++
	if r.Conn != netinfo.ConnCellular.String() {
		return
	}
	c.Cell++
	if rat, err := netinfo.ParseRAT(r.RAT); err == nil {
		c.addRAT(rat, 1)
	}
}

// Merge folds another aggregate into a, per-RAT columns included.
func (a *Aggregate) Merge(other *Aggregate) {
	for b, oc := range other.PerBlock {
		c := a.counts(b)
		c.Hits += oc.Hits
		c.API += oc.API
		c.Cell += oc.Cell
		c.Cell3G += oc.Cell3G
		c.Cell4G += oc.Cell4G
		c.Cell5G += oc.Cell5G
	}
}

// Ratio returns a block's cellular ratio (cellular hits over API-enabled
// hits) and whether the block has any API-enabled hits at all.
func (a *Aggregate) Ratio(b netaddr.Block) (float64, bool) {
	c := a.PerBlock[b]
	if c == nil || c.API == 0 {
		return 0, false
	}
	return float64(c.Cell) / float64(c.API), true
}

// Blocks returns the number of blocks observed.
func (a *Aggregate) Blocks() int { return len(a.PerBlock) }

// CountFamily returns the number of observed blocks of a family.
func (a *Aggregate) CountFamily(f netaddr.Family) int {
	n := 0
	for b := range a.PerBlock {
		if b.Fam == f {
			n++
		}
	}
	return n
}

// Equal reports whether two aggregates hold exactly the same per-block
// counts — the bit-identical comparison the ingestion and live-path
// equivalence suites are built on.
func (a *Aggregate) Equal(other *Aggregate) bool {
	if len(a.PerBlock) != len(other.PerBlock) {
		return false
	}
	for b, c := range a.PerBlock {
		oc := other.PerBlock[b]
		if oc == nil || *c != *oc {
			return false
		}
	}
	return true
}

// Totals sums counts across all blocks.
func (a *Aggregate) Totals() Counts {
	var t Counts
	for _, c := range a.PerBlock {
		t.Hits += c.Hits
		t.API += c.API
		t.Cell += c.Cell
		t.Cell3G += c.Cell3G
		t.Cell4G += c.Cell4G
		t.Cell5G += c.Cell5G
	}
	return t
}

// GenConfig parameterizes BEACON generation.
type GenConfig struct {
	// Seed drives hit sampling (independent from the world seed).
	Seed uint64

	// TotalHits is the number of beacon responses to model across the
	// whole platform. It does NOT scale with the world's block scale:
	// real beacon volume dwarfs block counts, and the AS-filter rule
	// "fewer than 300 beacon responses" is an absolute threshold.
	TotalHits int

	// BaseHits is the demand-independent Poisson mean of hits per
	// web-active block; the rest of TotalHits is spread by demand.
	BaseHits float64

	// Month sets the collection month (API adoption level).
	Month netinfo.Month

	// Parallelism is the worker count for sharded hit synthesis:
	// 0 = GOMAXPROCS, 1 = the serial oracle path. Aggregates are
	// bit-identical at every setting: blocks are split into fixed-size
	// contiguous shards, each drawing from its own seed-derived PCG
	// stream, merged in shard order.
	Parallelism int
}

// DefaultGenConfig mirrors the paper's December 2016 collection.
func DefaultGenConfig() GenConfig {
	return GenConfig{
		Seed:      2,
		TotalHits: 25_000_000,
		BaseHits:  250,
		Month:     netinfo.December2016,
	}
}

func (c *GenConfig) validate() error {
	if c.TotalHits <= 0 {
		return fmt.Errorf("beacon: TotalHits must be positive")
	}
	if c.BaseHits < 0 {
		return fmt.Errorf("beacon: negative BaseHits")
	}
	if c.Month == (netinfo.Month{}) {
		c.Month = netinfo.December2016
	}
	return nil
}

// blockPlan is the per-block expected hit count and label probabilities.
type blockPlan struct {
	info     *world.BlockInfo
	meanHits float64
	apiProb  float64
}

// plan computes each web-active block's expected hits. The demand-driven
// share of TotalHits is what remains after base hits.
func plan(w *world.World, cfg GenConfig) []blockPlan {
	apiCell, _ := netinfo.ExpectedAPIShare(cfg.Month, 1)
	apiFixed, _ := netinfo.ExpectedAPIShare(cfg.Month, 0)

	var webDemand float64
	nWeb := 0
	for _, b := range w.Blocks {
		if b.WebActive {
			webDemand += b.Demand
			nWeb++
		}
	}
	demandBudget := float64(cfg.TotalHits) - cfg.BaseHits*float64(nWeb)
	if demandBudget < 0 {
		demandBudget = 0
	}

	plans := make([]blockPlan, 0, nWeb)
	for _, b := range w.Blocks {
		if !b.WebActive && b.HitsOverride == 0 {
			continue
		}
		p := blockPlan{info: b, apiProb: apiFixed}
		if b.Cellular {
			p.apiProb = apiCell
		}
		switch {
		case b.HitsOverride > 0:
			// Overridden blocks fix their API hit count; total hits follow.
			p.meanHits = float64(b.HitsOverride) / p.apiProb
		case webDemand > 0:
			p.meanHits = cfg.BaseHits + demandBudget*b.Demand/webDemand
		default:
			p.meanHits = cfg.BaseHits
		}
		plans = append(plans, p)
	}
	return plans
}

// aggStream is the per-shard stream constant of the aggregate path; shard
// s draws from PCG(cfg.Seed, aggStream^s).
const aggStream = 0xbeac0_0001

// ratStream seeds the per-block radio-generation split. RAT draws come
// from their own PCG keyed on the block, NOT from the shard stream: the
// pre-RAT hit/api/cell draw sequences stay bit-identical, and the split is
// a function of (seed, block) alone — trivially parallelism-independent.
const ratStream = 0xbeac0_0003

// ratStreamFor mixes a block identity into the RAT stream constant.
func ratStreamFor(b netaddr.Block) uint64 {
	return ratStream ^ (b.Key*0x9e3779b97f4a7c15 + uint64(b.Fam))
}

// splitRAT partitions cell cellular labels across radio generations by a
// conditional-binomial walk over the mix.
func splitRAT(rng *rand.Rand, cell int, mix netinfo.RATMix) (c3, c4, c5 int) {
	c3 = traffic.Binomial(rng, cell, mix[netinfo.RAT3G])
	rest := cell - c3
	p45 := mix[netinfo.RAT4G] + mix[netinfo.RAT5G]
	if p45 <= 0 {
		c4 = rest
		return c3, c4, 0
	}
	c4 = traffic.Binomial(rng, rest, mix[netinfo.RAT4G]/p45)
	return c3, c4, rest - c4
}

// genShardSize is the number of block plans per sampling shard. Shard
// boundaries depend only on the plan list, never on the worker count, so
// hit tallies are identical at every parallelism level.
const genShardSize = 2048

// tally is one shard-local sampled block outcome awaiting merge.
type tally struct {
	block           netaddr.Block
	hits, api, cell int
	c3, c4, c5      int
}

// Generate draws the per-block BEACON aggregate for a world: the fast path
// used by the pipeline. Hits, API-enabled hits, and cellular labels are
// sampled per block without materializing records. Sampling shards across
// cfg.Parallelism workers (0 = GOMAXPROCS, 1 = serial) with one PCG stream
// per fixed-size shard; shard outputs merge in shard order, so the
// aggregate is bit-identical at every parallelism level.
func Generate(w *world.World, cfg GenConfig) (*Aggregate, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plans := plan(w, cfg)
	nShards := par.Shards(len(plans), genShardSize)
	outs := make([][]tally, nShards)
	par.Do(nShards, cfg.Parallelism, func(s int) {
		rng := rand.New(rand.NewPCG(cfg.Seed, aggStream^uint64(s)))
		lo, hi := par.Span(s, len(plans), genShardSize)
		buf := make([]tally, 0, hi-lo)
		for _, p := range plans[lo:hi] {
			hits := traffic.PoissonSmall(rng, p.meanHits)
			var api int
			if p.info.HitsOverride > 0 {
				api = p.info.HitsOverride
				if hits < api {
					hits = api
				}
			} else {
				if hits == 0 {
					continue
				}
				api = traffic.Binomial(rng, hits, p.apiProb)
			}
			cell := traffic.Binomial(rng, api, p.info.CellLabelProb)
			t := tally{block: p.info.Block, hits: hits, api: api, cell: cell}
			if cell > 0 && p.info.Cellular {
				rrng := rand.New(rand.NewPCG(cfg.Seed, ratStreamFor(p.info.Block)))
				t.c3, t.c4, t.c5 = splitRAT(rrng, cell, p.info.RAT.Mix(cfg.Month))
			}
			buf = append(buf, t)
		}
		outs[s] = buf
	})
	agg := NewAggregate()
	for _, ts := range outs {
		for _, t := range ts {
			c := agg.counts(t.block)
			c.Hits += t.hits
			c.API += t.api
			c.Cell += t.cell
			c.Cell3G += t.c3
			c.Cell4G += t.c4
			c.Cell5G += t.c5
		}
	}
	return agg, nil
}

// Stream emits individual beacon records for a world. The caller bounds the
// volume through cfg.TotalHits; timestamps spread uniformly over the month.
// The record path draws browser and connection type per hit with the same
// marginal distributions the aggregate path uses.
func Stream(w *world.World, cfg GenConfig) (iter.Seq[Record], error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	plans := plan(w, cfg)
	start := time.Date(cfg.Month.Year, time.Month(cfg.Month.Mon), 1, 0, 0, 0, 0, time.UTC)
	monthDur := start.AddDate(0, 1, 0).Sub(start)

	return func(yield func(Record) bool) {
		rng := rand.New(rand.NewPCG(cfg.Seed, 0xbeac0_0002))
		// RAT draws come from their own stream so the pre-RAT record
		// sequence (timestamps, IPs, browsers, labels) is unchanged.
		ratRng := rand.New(rand.NewPCG(cfg.Seed, 0xbeac0_0004))
		for _, p := range plans {
			hits := traffic.PoissonSmall(rng, p.meanHits)
			forcedAPI := p.info.HitsOverride
			if forcedAPI > hits {
				hits = forcedAPI
			}
			for h := 0; h < hits; h++ {
				rec := Record{
					Time:       start.Add(time.Duration(rng.Int64N(int64(monthDur)))),
					IP:         p.info.Block.HostAddr(uint64(rng.Uint32())),
					Browser:    netinfo.SampleBrowser(rng, p.info.Cellular).String(),
					PageLoadMS: 400 + int(traffic.LogNormal(rng, 6.2, 0.7)),
				}
				hasAPI := h < forcedAPI
				if forcedAPI == 0 {
					hasAPI = rng.Float64() < p.apiProb
				}
				if hasAPI {
					conn := sampleConn(rng, p.info)
					rec.Conn = conn.String()
					if conn == netinfo.ConnCellular && p.info.Cellular {
						rec.RAT = sampleRAT(ratRng, p.info.RAT.Mix(cfg.Month)).String()
					}
				}
				if !yield(rec) {
					return
				}
			}
		}
	}, nil
}

// sampleRAT draws a radio generation from a mix.
func sampleRAT(rng *rand.Rand, mix netinfo.RATMix) netinfo.RAT {
	u := rng.Float64()
	cum := 0.0
	for r := netinfo.RAT(0); r < netinfo.NumRATs; r++ {
		cum += mix[r]
		if u < cum {
			return r
		}
	}
	return netinfo.RAT4G
}

// sampleConn draws the reported ConnectionType for an API-enabled hit.
func sampleConn(rng *rand.Rand, b *world.BlockInfo) netinfo.ConnectionType {
	if rng.Float64() < b.CellLabelProb {
		return netinfo.ConnCellular
	}
	if b.Cellular {
		return netinfo.ConnWiFi // tethered / hotspot devices
	}
	// Fixed lines: mostly WiFi devices, some wired, rare oddities.
	u := rng.Float64()
	switch {
	case u < 0.85:
		return netinfo.ConnWiFi
	case u < 0.995:
		return netinfo.ConnEthernet
	case u < 0.998:
		return netinfo.ConnWiMAX
	default:
		return netinfo.ConnBluetooth
	}
}
