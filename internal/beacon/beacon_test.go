package beacon

import (
	"math"
	"testing"

	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/world"
)

var cachedWorld *world.World

func smallWorld(t testing.TB) *world.World {
	t.Helper()
	if cachedWorld == nil {
		cfg := world.DefaultConfig()
		cfg.Scale = 0.002
		w, err := world.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func TestAggregateBasics(t *testing.T) {
	a := NewAggregate()
	b := netaddr.V4Block(1, 2, 3)
	a.Add(b, 10, 5, 4)
	a.Add(b, 10, 5, 1)
	r, ok := a.Ratio(b)
	if !ok || math.Abs(r-0.5) > 1e-12 {
		t.Errorf("ratio = %g,%v, want 0.5", r, ok)
	}
	if _, ok := a.Ratio(netaddr.V4Block(9, 9, 9)); ok {
		t.Error("ratio for unseen block")
	}
	noAPI := netaddr.V4Block(4, 4, 4)
	a.Add(noAPI, 7, 0, 0)
	if _, ok := a.Ratio(noAPI); ok {
		t.Error("ratio defined with zero API hits")
	}
	tot := a.Totals()
	if tot.Hits != 27 || tot.API != 10 || tot.Cell != 5 {
		t.Errorf("totals = %+v", tot)
	}
	if a.Blocks() != 2 || a.CountFamily(netaddr.IPv4) != 2 || a.CountFamily(netaddr.IPv6) != 0 {
		t.Error("block counting wrong")
	}
}

func TestAggregateMergeAndRecords(t *testing.T) {
	a, b := NewAggregate(), NewAggregate()
	rec := Record{IP: netaddr.V4Block(5, 6, 7).HostAddr(9), Conn: "cellular", Browser: "Chrome Mobile"}
	b.AddRecord(rec)
	b.AddRecord(Record{IP: netaddr.V4Block(5, 6, 7).HostAddr(10), Conn: "wifi"})
	b.AddRecord(Record{IP: netaddr.V4Block(5, 6, 7).HostAddr(11)}) // no API
	a.Merge(b)
	c := a.PerBlock[netaddr.V4Block(5, 6, 7)]
	if c == nil || c.Hits != 3 || c.API != 2 || c.Cell != 1 {
		t.Fatalf("merged counts = %+v", c)
	}
	if !rec.HasAPI() {
		t.Error("HasAPI false for conn-bearing record")
	}
}

func TestGenerateVolumeAndAPIShare(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultGenConfig()
	cfg.TotalHits = 4_000_000
	agg, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tot := agg.Totals()
	if math.Abs(float64(tot.Hits)-float64(cfg.TotalHits)) > 0.05*float64(cfg.TotalHits) {
		t.Errorf("total hits = %d, want ~%d", tot.Hits, cfg.TotalHits)
	}
	apiShare := float64(tot.API) / float64(tot.Hits)
	// Paper Fig 1: ~13.2% of hits carry the API in Dec 2016.
	if apiShare < 0.08 || apiShare > 0.19 {
		t.Errorf("API share = %.3f, want near 0.132", apiShare)
	}
	if tot.Cell == 0 || tot.Cell >= tot.API {
		t.Errorf("cellular labels = %d of %d API hits", tot.Cell, tot.API)
	}
}

func TestGenerateRatioSeparation(t *testing.T) {
	w := smallWorld(t)
	agg, err := Generate(w, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Ground-truth cellular CGNAT blocks should sit at high ratios,
	// fixed blocks at ~0 (Fig 2's bimodality).
	var cellHigh, cellTotal, fixedLow, fixedTotal int
	for _, bi := range w.Blocks {
		r, ok := agg.Ratio(bi.Block)
		if !ok {
			continue
		}
		if bi.Cellular && bi.CellLabelProb > 0.8 {
			cellTotal++
			if r > 0.5 {
				cellHigh++
			}
		} else if !bi.Cellular && bi.CellLabelProb < 0.01 {
			fixedTotal++
			if r < 0.1 {
				fixedLow++
			}
		}
	}
	if cellTotal == 0 || fixedTotal == 0 {
		t.Fatal("no classified blocks observed")
	}
	if frac := float64(cellHigh) / float64(cellTotal); frac < 0.95 {
		t.Errorf("high-ratio fraction of CGNAT blocks = %.3f, want > 0.95", frac)
	}
	if frac := float64(fixedLow) / float64(fixedTotal); frac < 0.97 {
		t.Errorf("low-ratio fraction of fixed blocks = %.3f, want > 0.97", frac)
	}
}

func TestGenerateBeaconlessInvisible(t *testing.T) {
	w := smallWorld(t)
	agg, err := Generate(w, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, bi := range w.Blocks {
		if bi.WebActive || bi.HitsOverride > 0 {
			continue
		}
		if _, seen := agg.PerBlock[bi.Block]; seen {
			t.Fatalf("beacon-less block %v appeared in BEACON", bi.Block)
		}
	}
}

func TestGenerateHitsOverride(t *testing.T) {
	w := smallWorld(t)
	agg, err := Generate(w, DefaultGenConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, bi := range w.Blocks {
		if bi.HitsOverride == 0 {
			continue
		}
		c := agg.PerBlock[bi.Block]
		if c == nil {
			t.Fatalf("override block %v missing from BEACON", bi.Block)
		}
		if c.API != bi.HitsOverride {
			t.Fatalf("override block %v has %d API hits, want %d", bi.Block, c.API, bi.HitsOverride)
		}
		if c.Hits < c.API {
			t.Fatalf("override block %v has fewer hits than API hits", bi.Block)
		}
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultGenConfig()
	cfg.TotalHits = 500_000
	a1, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a1.Blocks() != a2.Blocks() {
		t.Fatal("block counts differ")
	}
	for b, c1 := range a1.PerBlock {
		c2 := a2.PerBlock[b]
		if c2 == nil || *c1 != *c2 {
			t.Fatalf("counts differ for %v: %+v vs %+v", b, c1, c2)
		}
	}
}

func TestGenerateRejectsBadConfig(t *testing.T) {
	w := smallWorld(t)
	if _, err := Generate(w, GenConfig{TotalHits: 0}); err == nil {
		t.Error("zero TotalHits accepted")
	}
	if _, err := Generate(w, GenConfig{TotalHits: 10, BaseHits: -1}); err == nil {
		t.Error("negative BaseHits accepted")
	}
	if _, err := Stream(w, GenConfig{}); err == nil {
		t.Error("Stream with zero TotalHits accepted")
	}
}

func TestStreamMatchesAggregateMarginals(t *testing.T) {
	cfg := world.DefaultConfig()
	cfg.Scale = 0.0005
	w, err := world.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	gcfg := DefaultGenConfig()
	gcfg.TotalHits = 300_000
	gcfg.BaseHits = 20

	seq, err := Stream(w, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	streamed := NewAggregate()
	browsers := map[string]int{}
	n := 0
	for rec := range seq {
		if !rec.IP.IsValid() {
			t.Fatal("invalid IP in record")
		}
		if rec.Conn != "" {
			if _, err := netinfo.ParseConnectionType(rec.Conn); err != nil {
				t.Fatalf("bad conn token %q", rec.Conn)
			}
		}
		browsers[rec.Browser]++
		streamed.AddRecord(rec)
		n++
	}
	if n < gcfg.TotalHits/2 {
		t.Fatalf("streamed only %d records", n)
	}
	direct, err := Generate(w, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	st, dt := streamed.Totals(), direct.Totals()
	apiStream := float64(st.API) / float64(st.Hits)
	apiDirect := float64(dt.API) / float64(dt.Hits)
	if math.Abs(apiStream-apiDirect) > 0.03 {
		t.Errorf("API share: stream %.3f vs aggregate %.3f", apiStream, apiDirect)
	}
	cellStream := float64(st.Cell) / float64(st.API)
	cellDirect := float64(dt.Cell) / float64(dt.API)
	if math.Abs(cellStream-cellDirect) > 0.06 {
		t.Errorf("cellular label share: stream %.3f vs aggregate %.3f", cellStream, cellDirect)
	}
	if browsers[netinfo.ChromeMobile.String()] == 0 || browsers[netinfo.ChromeDesktop.String()] == 0 {
		t.Error("browser sampling missing expected families")
	}
}

func TestStreamEarlyStop(t *testing.T) {
	w := smallWorld(t)
	gcfg := DefaultGenConfig()
	seq, err := Stream(w, gcfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range seq {
		n++
		if n >= 10 {
			break
		}
	}
	if n != 10 {
		t.Errorf("early stop yielded %d", n)
	}
}

func BenchmarkGenerateAggregate(b *testing.B) {
	w := smallWorld(b)
	cfg := DefaultGenConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
