package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

// hEntry is a test map entry; rat is optional (nil = legacy line).
type hEntry struct {
	prefix  string
	asn     uint32
	ratio   float64
	du      float64
	country string
	rat     []float64
}

func mapJSONL(t testing.TB, period string, entries []hEntry) string {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, `{"format":"cellspot-map/1","threshold":0.5,"period":%q,"entries":%d}`+"\n",
		period, len(entries))
	for _, e := range entries {
		if e.rat != nil {
			raw, err := json.Marshal(e.rat)
			if err != nil {
				t.Fatal(err)
			}
			fmt.Fprintf(&b, `{"prefix":%q,"asn":%d,"ratio":%g,"du":%g,"country":%q,"rat":%s}`+"\n",
				e.prefix, e.asn, e.ratio, e.du, e.country, raw)
		} else {
			fmt.Fprintf(&b, `{"prefix":%q,"asn":%d,"ratio":%g,"du":%g,"country":%q}`+"\n",
				e.prefix, e.asn, e.ratio, e.du, e.country)
		}
	}
	return b.String()
}

func mkMap(t testing.TB, period string, entries []hEntry) *cellmap.Map {
	t.Helper()
	m, err := cellmap.Read(strings.NewReader(mapJSONL(t, period, entries)))
	if err != nil {
		t.Fatalf("mkMap: %v", err)
	}
	return m
}

// publishGen publishes one map (with a meta sidecar unless noMeta) and
// returns its seq.
func publishGen(t testing.TB, store *snapshot.Store, period string, entries []hEntry, noMeta bool) uint64 {
	t.Helper()
	gen, err := store.Publish(func(dir string) error {
		if err := os.WriteFile(filepath.Join(dir, DefaultMapFile),
			[]byte(mapJSONL(t, period, entries)), 0o644); err != nil {
			return err
		}
		if noMeta {
			return nil
		}
		return WriteMeta(dir, GenMeta{
			BuiltUnix: 1480000000,
			Entries:   len(entries),
			Period:    period,
			Threshold: 0.5,
			DayFirst:  "2016-12-01",
			DayLast:   "2016-12-31",
			RAT:       len(entries) > 0 && entries[0].rat != nil,
		})
	})
	if err != nil {
		t.Fatalf("publish %s: %v", period, err)
	}
	return gen.Seq
}

func baseEntries() []hEntry {
	return []hEntry{
		{prefix: "10.0.0.0/24", asn: 100, ratio: 0.6, du: 3, country: "DE"},
		{prefix: "2001:db8::/48", asn: 200, ratio: 0.7, du: 1, country: "SE"},
	}
}

func TestIndexBootMetadata(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishGen(t, store, "2016-10", baseEntries(), true) // legacy: no sidecar
	publishGen(t, store, "2016-11", baseEntries(), false)
	ix, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	gens := ix.Generations()
	if len(gens) != 2 {
		t.Fatalf("Generations() = %d entries, want 2", len(gens))
	}
	// The legacy generation's metadata comes from the map header fallback:
	// period/threshold/entries recovered, build time from the dir mtime.
	g1 := gens[0]
	if g1.Seq != 1 || g1.Meta.Period != "2016-10" || g1.Meta.Entries != 2 || g1.Meta.Threshold != 0.5 {
		t.Errorf("fallback meta = %+v", g1)
	}
	if g1.Meta.BuiltUnix == 0 {
		t.Error("fallback meta has no build time")
	}
	// The sidecar generation carries its full sidecar verbatim.
	g2 := gens[1]
	if g2.Seq != 2 || g2.Meta.BuiltUnix != 1480000000 || g2.Meta.DayFirst != "2016-12-01" || g2.Meta.DayLast != "2016-12-31" {
		t.Errorf("sidecar meta = %+v", g2)
	}
	if oldest, ok := ix.Oldest(); !ok || oldest != 1 {
		t.Errorf("Oldest() = %d, %v", oldest, ok)
	}
}

func TestAtLoadsEvictsAndReloads(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		es := baseEntries()
		es[0].ratio = 0.1 * float64(i+1) // distinguishable per generation
		publishGen(t, store, fmt.Sprintf("2016-%02d", i+1), es, false)
	}
	reg := obs.NewRegistry()
	ix, err := New(Config{Store: store, MaxResident: 2, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Touch every generation; with MaxResident 2 the LRU must evict.
	for seq := uint64(1); seq <= 5; seq++ {
		m, err := ix.At(seq)
		if err != nil {
			t.Fatalf("At(%d): %v", seq, err)
		}
		if want := fmt.Sprintf("2016-%02d", seq); m.Period != want {
			t.Errorf("At(%d).Period = %q, want %q", seq, m.Period, want)
		}
	}
	if got := ix.mEvictions.Value(); got != 3 {
		t.Errorf("evictions = %d, want 3", got)
	}
	if got := ix.mResident.Value(); got != 2 {
		t.Errorf("resident gauge = %d, want 2", got)
	}
	// An evicted generation reloads transparently with the same content.
	m1, err := ix.At(1)
	if err != nil {
		t.Fatalf("reload At(1): %v", err)
	}
	if m1.Period != "2016-01" || m1.Entries()[0].Ratio != 0.1 {
		t.Errorf("reloaded gen 1 = period %q ratio %g", m1.Period, m1.Entries()[0].Ratio)
	}
	if got := ix.mLoads.Value(); got != 6 {
		t.Errorf("loads = %d, want 6 (5 + 1 reload)", got)
	}
}

func TestAtPrunedSeq(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		publishGen(t, store, fmt.Sprintf("m%d", i+1), baseEntries(), false)
	}
	ix, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Prune(2); err != nil { // gens 1,2 removed
		t.Fatal(err)
	}
	_, err = ix.At(1)
	var perr *PrunedError
	if !errors.As(err, &perr) {
		t.Fatalf("At(pruned) error = %v, want *PrunedError", err)
	}
	if perr.Seq != 1 || perr.Oldest != 3 {
		t.Errorf("PrunedError = %+v, want Seq 1 Oldest 3", perr)
	}
	// A never-published seq gets the same shape.
	if _, err := ix.At(99); !errors.As(err, &perr) || perr.Seq != 99 || perr.Oldest != 3 {
		t.Errorf("At(99) = %v", err)
	}
	// The refresh that backed the 404 also dropped the pruned metadata.
	if gens := ix.Generations(); len(gens) != 2 || gens[0].Seq != 3 {
		t.Errorf("post-prune Generations() = %+v", gens)
	}
}

// TestAtSeesNewPublishWithoutExplicitRefresh: a gen published after boot
// is found by the single rescan inside At, so lookups racing the store
// poller do not 404 spuriously.
func TestAtSeesNewPublish(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publishGen(t, store, "m1", baseEntries(), false)
	ix, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	publishGen(t, store, "m2", baseEntries(), false)
	m, err := ix.At(2)
	if err != nil {
		t.Fatalf("At(new publish): %v", err)
	}
	if m.Period != "m2" {
		t.Errorf("Period = %q", m.Period)
	}
}

func TestTimelineChangePoints(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	// gen 1: address not cellular. gen 2: becomes cellular (legacy map,
	// no RAT). gen 3: same label state, ratio drifts (no change-point).
	// gen 4: ASN changes and the RAT column appears. gen 5: unchanged.
	other := []hEntry{{prefix: "192.0.2.0/24", asn: 7, ratio: 0.5, du: 1, country: "US"}}
	publishGen(t, store, "m1", other, false)
	cell := func(asn uint32, ratio float64, rat []float64) []hEntry {
		return append([]hEntry{{prefix: "10.0.0.0/24", asn: asn, ratio: ratio, du: 2, country: "DE", rat: rat}}, other...)
	}
	publishGen(t, store, "m2", cell(100, 0.6, nil), true)
	publishGen(t, store, "m3", cell(100, 0.8, nil), false)
	publishGen(t, store, "m4", cell(101, 0.8, []float64{0.1, 0.6, 0.3}), false)
	publishGen(t, store, "m5", cell(101, 0.8, []float64{0.1, 0.5, 0.4}), false)

	ix, err := New(Config{Store: store, MaxResident: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr := "10.0.0.9"
	resp, err := ix.Timeline(mustAddr(t, addr), addr)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Addr != addr || resp.OldestGen != 1 || resp.NewestGen != 5 || resp.Examined != 5 {
		t.Errorf("timeline envelope = %+v", resp)
	}
	if len(resp.Changes) != 3 {
		t.Fatalf("change-points = %+v, want 3", resp.Changes)
	}
	c := resp.Changes
	if c[0].Generation != 1 || c[0].Cellular {
		t.Errorf("first point = %+v, want non-cellular @1", c[0])
	}
	if c[1].Generation != 2 || !c[1].Cellular || c[1].ASN != 100 || c[1].Ratio != 0.6 || c[1].RAT != nil {
		t.Errorf("became-cellular point = %+v", c[1])
	}
	if c[2].Generation != 4 || c[2].ASN != 101 || len(c[2].RAT) != 3 || c[2].RAT[2] != 0.3 {
		t.Errorf("ASN-change point = %+v", c[2])
	}

	// An address that never changes state yields exactly one point.
	resp2, err := ix.Timeline(mustAddr(t, "192.0.2.5"), "192.0.2.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp2.Changes) != 1 || !resp2.Changes[0].Cellular || resp2.Changes[0].ASN != 7 {
		t.Errorf("stable timeline = %+v", resp2.Changes)
	}
}

func TestRefreshDropsResidentOfPrunedGen(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		publishGen(t, store, fmt.Sprintf("m%d", i+1), baseEntries(), false)
	}
	ix, err := New(Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.At(1); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Prune(1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Refresh(); err != nil {
		t.Fatal(err)
	}
	ix.mu.Lock()
	_, stillResident := ix.resident[1]
	ix.mu.Unlock()
	if stillResident {
		t.Error("pruned generation still resident after Refresh")
	}
	if gens := ix.Generations(); len(gens) != 1 || gens[0].Seq != 3 {
		t.Errorf("Generations() = %+v", gens)
	}
}
