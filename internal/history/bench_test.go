package history

import (
	"fmt"
	"testing"

	"cellspot/internal/snapshot"
)

// BenchmarkHistoryLookup measures a generation-addressed lookup through
// the index. "resident" is the steady state (the generation is in the
// LRU); "reload" forces a disk load + index rebuild on every iteration by
// keeping the working set one generation wider than the residency bound —
// the cost a client pays the first time it pins a cold generation.
func BenchmarkHistoryLookup(b *testing.B) {
	const gens = 4
	store, err := snapshot.Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	var entries []hEntry
	for i := 0; i < 256; i++ {
		entries = append(entries, hEntry{
			prefix: fmt.Sprintf("10.%d.%d.0/24", i/256, i%256), asn: uint32(100 + i),
			ratio: 0.5, du: 1, country: "DE", rat: []float64{0.2, 0.7, 0.1},
		})
	}
	for g := 0; g < gens; g++ {
		publishGen(b, store, fmt.Sprintf("2016-%02d", g+1), entries, false)
	}
	addr := mustAddr(b, "10.0.17.9")

	b.Run("resident", func(b *testing.B) {
		ix, err := New(Config{Store: store, MaxResident: gens})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ix.At(2); err != nil { // warm
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m, err := ix.At(2)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := m.Lookup(addr); !ok {
				b.Fatal("miss")
			}
		}
	})

	b.Run("reload", func(b *testing.B) {
		ix, err := New(Config{Store: store, MaxResident: 1})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			// Alternate between two generations with a one-slot LRU:
			// every At is a cold load.
			m, err := ix.At(uint64(i%2) + 1)
			if err != nil {
				b.Fatal(err)
			}
			if _, ok := m.Lookup(addr); !ok {
				b.Fatal("miss")
			}
		}
	})
}
