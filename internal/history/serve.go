package history

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"cellspot/internal/cellmap"
)

// NotRetainedError is the JSON body of a 404 for a generation-addressed
// request whose seq the store no longer retains. OldestGeneration lets the
// client re-anchor: it names the earliest seq still answerable (absent
// when the store retains nothing at all).
type NotRetainedError struct {
	Error            string `json:"error"`
	OldestGeneration uint64 `json:"oldest_generation,omitempty"`
}

// Mount registers the history-aware lookup service: the full MountSource
// surface plus time travel.
//
//	GET  /v1/lookup?ip=ADDR        — current map, identical to MountSource
//	GET  /v1/lookup?ip=ADDR&gen=N  — pinned past generation, 404 if pruned
//	POST /v1/lookup/batch          — current generation only (gen → 400)
//	GET  /v1/history?ip=ADDR       — label change-points across retention
//	GET  /v1/generations           — retained generations with metadata
//	GET  /v1/info                  — current dataset metadata
//
// A gen=N answer goes through the same LookupAddr/WriteJSON path as a
// current answer, so serving generation N from history is byte-identical
// to serving it as current.
func Mount(r cellmap.Router, src cellmap.Source, ix *Index) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, req *http.Request) {
		addr, name, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		q := req.URL.Query()
		if !q.Has("gen") {
			m, gen := src.Current()
			cellmap.WriteJSON(w, cellmap.LookupAddr(m, gen, addr, name))
			return
		}
		seq, err := strconv.ParseUint(q.Get("gen"), 10, 64)
		if err != nil || seq == 0 {
			cellmap.WriteError(w, http.StatusBadRequest, "bad gen: want a positive generation number")
			return
		}
		m, err := ix.At(seq)
		if err != nil {
			WriteAtError(w, err)
			return
		}
		cellmap.WriteJSON(w, cellmap.LookupAddr(m, seq, addr, name))
	})
	r.HandleFunc("POST /v1/lookup/batch", func(w http.ResponseWriter, req *http.Request) {
		// DecodeBatch rejects a gen parameter itself: the batch path
		// serves only the current generation.
		addrs, names, ok := cellmap.DecodeBatch(w, req, cellmap.DefaultBatchLimit)
		if !ok {
			return
		}
		m, gen := src.Current()
		resp := cellmap.BatchResponse{Generation: gen, Results: make([]cellmap.LookupResponse, 0, len(addrs))}
		for i, a := range addrs {
			resp.Results = append(resp.Results, cellmap.LookupAddr(m, gen, a, names[i]))
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/history", func(w http.ResponseWriter, req *http.Request) {
		addr, name, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		resp, err := ix.Timeline(addr, name)
		if err != nil {
			cellmap.WriteError(w, http.StatusInternalServerError, "history walk: "+err.Error())
			return
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/generations", func(w http.ResponseWriter, _ *http.Request) {
		gens := ix.Generations()
		cellmap.WriteJSON(w, struct {
			Generations []GenInfo `json:"generations"`
		}{Generations: gens})
	})
	cellmap.MountInfo(r, src)
}

// WriteAtError maps an Index.At failure onto the wire: a pruned seq is the
// client's 404 (with the oldest retained seq to re-anchor on); anything
// else is a server-side 500.
func WriteAtError(w http.ResponseWriter, err error) {
	var perr *PrunedError
	if errors.As(err, &perr) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(NotRetainedError{Error: perr.Error(), OldestGeneration: perr.Oldest})
		return
	}
	cellmap.WriteError(w, http.StatusInternalServerError, "loading generation: "+err.Error())
}
