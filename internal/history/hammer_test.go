package history

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cellspot/internal/snapshot"
)

// TestHistoryPruneHammer is the -race gate for the history index: a
// publisher staggering new generations, a pruner tightening retention, a
// refresher (the serving node's swap poller), and many readers doing gen=N
// lookups and full /v1/history walks — all concurrently. Every lookup must
// either return the generation's exact content (the entry's ASN encodes
// the seq, so a cross-generation mixup is detectable) or fail with a clean
// PrunedError; any other error is a torn read.
func TestHistoryPruneHammer(t *testing.T) {
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	genEntries := func(seq uint64) []hEntry {
		return []hEntry{{
			prefix: "10.0.0.0/24", asn: uint32(1000 + seq),
			ratio: float64(seq%100) / 100, du: 1, country: "DE",
			rat: []float64{0.2, 0.7, 0.1},
		}}
	}
	publish := func(expect uint64) {
		gen, err := store.Publish(func(dir string) error {
			if err := os.WriteFile(filepath.Join(dir, DefaultMapFile),
				[]byte(mapJSONL(t, fmt.Sprintf("p%d", expect), genEntries(expect))), 0o644); err != nil {
				return err
			}
			return WriteMeta(dir, GenMeta{Entries: 1, Period: fmt.Sprintf("p%d", expect), Threshold: 0.5, RAT: true})
		})
		if err != nil {
			t.Errorf("publish %d: %v", expect, err)
			return
		}
		if gen.Seq != expect {
			t.Errorf("publish allocated seq %d, want %d", gen.Seq, expect)
		}
	}
	publish(1)

	ix, err := New(Config{Store: store, MaxResident: 3})
	if err != nil {
		t.Fatal(err)
	}

	const totalGens = 40
	var latest atomic.Uint64
	latest.Store(1)
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1) // publisher: staggered generations 2..totalGens
	go func() {
		defer wg.Done()
		defer close(done)
		for seq := uint64(2); seq <= totalGens; seq++ {
			publish(seq)
			latest.Store(seq)
		}
	}()

	wg.Add(1) // pruner: keeps tightening retention under the readers
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if _, err := store.Prune(4); err != nil {
				t.Errorf("prune: %v", err)
				return
			}
		}
	}()

	wg.Add(1) // refresher: the serving node's swap-poll rescan
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := ix.Refresh(); err != nil {
				t.Errorf("refresh: %v", err)
				return
			}
		}
	}()

	for r := 0; r < 4; r++ { // gen=N readers
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(r)))
			for {
				select {
				case <-done:
					return
				default:
				}
				seq := uint64(rng.Int63n(int64(latest.Load()))) + 1
				m, err := ix.At(seq)
				if err != nil {
					var perr *PrunedError
					if errors.As(err, &perr) {
						continue // cleanly pruned: the allowed outcome
					}
					t.Errorf("At(%d): torn read: %v", seq, err)
					return
				}
				e, ok := m.Lookup(mustAddr(t, "10.0.0.9"))
				if !ok || e.ASN != uint32(1000+seq) {
					t.Errorf("At(%d) served wrong content: ok=%v asn=%d", seq, ok, e.ASN)
					return
				}
			}
		}(r)
	}

	for r := 0; r < 2; r++ { // /v1/history walkers
		wg.Add(1)
		go func() {
			defer wg.Done()
			addr := mustAddr(t, "10.0.0.9")
			for {
				select {
				case <-done:
					return
				default:
				}
				tl, err := ix.Timeline(addr, "10.0.0.9")
				if err != nil {
					t.Errorf("timeline: %v", err)
					return
				}
				// Every change-point's content must match its generation:
				// the ASN encodes the seq by construction.
				for _, c := range tl.Changes {
					if !c.Cellular || c.ASN != uint32(1000+c.Generation) {
						t.Errorf("timeline point mixes generations: %+v", c)
						return
					}
				}
			}
		}()
	}

	wg.Wait()

	// Quiesced store: whatever survived the final prunes still answers.
	if err := ix.Refresh(); err != nil {
		t.Fatal(err)
	}
	gens := ix.Generations()
	if len(gens) == 0 {
		t.Fatal("no generations retained after hammer")
	}
	for _, gi := range gens {
		m, err := ix.At(gi.Seq)
		if err != nil {
			t.Fatalf("post-hammer At(%d): %v", gi.Seq, err)
		}
		if e, ok := m.Lookup(mustAddr(t, "10.0.0.9")); !ok || e.ASN != uint32(1000+gi.Seq) {
			t.Fatalf("post-hammer gen %d content wrong", gi.Seq)
		}
	}
	// No pins may leak: after the hammer every surviving old generation is
	// prunable again.
	if _, err := store.Prune(1); err != nil {
		t.Fatal(err)
	}
	if err := ix.Refresh(); err != nil {
		t.Fatal(err)
	}
	if got := len(ix.Generations()); got != 1 {
		t.Errorf("after Prune(1) %d generations survive — leaked pins?", got)
	}
}
