package history

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"cellspot/internal/cellmap"
	"cellspot/internal/snapshot"
)

func mustAddr(t testing.TB, s string) netip.Addr {
	t.Helper()
	a, err := netip.ParseAddr(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func get(t testing.TB, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// historyServer publishes n distinguishable generations and mounts the
// history service with the newest as current.
func historyServer(t testing.TB, n int) (*httptest.Server, *snapshot.Store, *Index, []*cellmap.Map) {
	t.Helper()
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var maps []*cellmap.Map
	for i := 0; i < n; i++ {
		es := baseEntries()
		es[0].ratio = 0.1 * float64(i+1)
		es[0].asn = uint32(100 + i)
		if i%2 == 1 { // odd generations carry the RAT column
			es[0].rat = []float64{0.2, 0.7, 0.1}
		}
		publishGen(t, store, fmt.Sprintf("2016-%02d", i+1), es, i == 0)
		maps = append(maps, mkMap(t, fmt.Sprintf("2016-%02d", i+1), es))
	}
	ix, err := New(Config{Store: store, MaxResident: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := cellmap.NewSwappable(maps[n-1], uint64(n))
	mux := http.NewServeMux()
	Mount(mux, src, ix)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv, store, ix, maps
}

// TestGenLookupByteIdentical pins the acceptance criterion: answering
// /v1/lookup?ip=X&gen=N from history is byte-for-byte what a node serving
// generation N as current would answer.
func TestGenLookupByteIdentical(t *testing.T) {
	srv, _, _, maps := historyServer(t, 4)
	for seq := 1; seq <= 4; seq++ {
		refMux := http.NewServeMux()
		cellmap.MountSource(refMux, cellmap.NewSwappable(maps[seq-1], uint64(seq)))
		ref := httptest.NewServer(refMux)
		for _, ip := range []string{"10.0.0.9", "2001:db8::42", "192.0.2.1"} {
			code, got := get(t, srv.URL+fmt.Sprintf("/v1/lookup?ip=%s&gen=%d", ip, seq))
			refCode, want := get(t, ref.URL+"/v1/lookup?ip="+ip)
			if code != refCode || string(got) != string(want) {
				t.Errorf("gen %d ip %s: history (%d) %q vs current (%d) %q",
					seq, ip, code, got, refCode, want)
			}
		}
		ref.Close()
	}
}

func TestGenLookupErrors(t *testing.T) {
	srv, store, _, _ := historyServer(t, 4)
	if _, err := store.Prune(2); err != nil {
		t.Fatal(err)
	}

	// Pruned generation: 404 with the oldest retained seq in the body.
	code, body := get(t, srv.URL+"/v1/lookup?ip=10.0.0.9&gen=1")
	if code != http.StatusNotFound {
		t.Fatalf("pruned gen: status %d, want 404 (%s)", code, body)
	}
	var nre NotRetainedError
	if err := json.Unmarshal(body, &nre); err != nil {
		t.Fatalf("404 body is not JSON: %v (%s)", err, body)
	}
	if nre.OldestGeneration != 3 || !strings.Contains(nre.Error, "oldest available is 3") {
		t.Errorf("404 body = %+v", nre)
	}

	// Malformed and zero gen values are client errors.
	for _, g := range []string{"abc", "0", "-1", "1.5"} {
		code, body := get(t, srv.URL+"/v1/lookup?ip=10.0.0.9&gen="+g)
		if code != http.StatusBadRequest {
			t.Errorf("gen=%s: status %d, want 400 (%s)", g, code, body)
		}
	}

	// The current-map path is unaffected by pruning.
	code, body = get(t, srv.URL+"/v1/lookup?ip=10.0.0.9")
	if code != http.StatusOK {
		t.Fatalf("current lookup: status %d (%s)", code, body)
	}
	var lr cellmap.LookupResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if lr.Generation != 4 || lr.ASN != 103 {
		t.Errorf("current lookup = %+v", lr)
	}
}

func TestBatchRejectsGenOnHistoryMount(t *testing.T) {
	srv, _, _, _ := historyServer(t, 2)
	resp, err := http.Post(srv.URL+"/v1/lookup/batch?gen=1", "application/json",
		strings.NewReader(`{"ips":["10.0.0.9"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with gen: status %d, want 400", resp.StatusCode)
	}
	var e cellmap.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e.Error, "gen parameter") {
		t.Errorf("400 body = %+v (%v)", e, err)
	}

	// A plain batch still works and answers from the current generation.
	resp2, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json",
		strings.NewReader(`{"ips":["10.0.0.9","192.0.2.1"]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var br cellmap.BatchResponse
	if err := json.NewDecoder(resp2.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Generation != 2 || len(br.Results) != 2 {
		t.Errorf("batch = %+v", br)
	}
}

func TestHistoryEndpoint(t *testing.T) {
	srv, _, _, _ := historyServer(t, 4)
	code, body := get(t, srv.URL+"/v1/history?ip=10.0.0.9")
	if code != http.StatusOK {
		t.Fatalf("history: status %d (%s)", code, body)
	}
	var tl TimelineResponse
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Addr != "10.0.0.9" || tl.Examined != 4 || tl.OldestGen != 1 || tl.NewestGen != 4 {
		t.Errorf("timeline envelope = %+v", tl)
	}
	// The fixture changes the ASN every generation, so every generation
	// opens a change-point, and RAT rides along on odd generations.
	if len(tl.Changes) != 4 {
		t.Fatalf("changes = %+v", tl.Changes)
	}
	for i, c := range tl.Changes {
		if c.Generation != uint64(i+1) || c.ASN != uint32(100+i) {
			t.Errorf("change[%d] = %+v", i, c)
		}
		if wantRAT := i%2 == 1; (c.RAT != nil) != wantRAT {
			t.Errorf("change[%d] RAT presence = %v, want %v", i, c.RAT != nil, wantRAT)
		}
	}

	// Missing and malformed ip are client errors.
	if code, _ := get(t, srv.URL+"/v1/history"); code != http.StatusBadRequest {
		t.Errorf("missing ip: status %d", code)
	}
	if code, _ := get(t, srv.URL+"/v1/history?ip=zz"); code != http.StatusBadRequest {
		t.Errorf("bad ip: status %d", code)
	}
}

func TestGenerationsEndpoint(t *testing.T) {
	srv, _, _, _ := historyServer(t, 3)
	code, body := get(t, srv.URL+"/v1/generations")
	if code != http.StatusOK {
		t.Fatalf("generations: status %d", code)
	}
	var resp struct {
		Generations []GenInfo `json:"generations"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Generations) != 3 {
		t.Fatalf("generations = %+v", resp.Generations)
	}
	for i, g := range resp.Generations {
		if g.Seq != uint64(i+1) || g.Meta.Period != fmt.Sprintf("2016-%02d", i+1) {
			t.Errorf("generation[%d] = %+v", i, g)
		}
	}
	// Generation 1 was published without a sidecar: the fallback still
	// fills entries and period from the map header.
	if resp.Generations[0].Meta.Entries != 2 {
		t.Errorf("fallback entries = %+v", resp.Generations[0].Meta)
	}
}
