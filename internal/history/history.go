// Package history serves the snapshot store's retained past: an immutable
// per-process index over every published map generation, answering
// generation-addressed lookups (`/v1/lookup?ip=X&gen=N`) and label
// timelines (`/v1/history?ip=X` — "when did this block become cellular?").
//
// The index holds cheap metadata (sequence, build time, entry count, day
// window) for ALL retained generations — read at boot and refreshed on
// every swap — but keeps only a bounded LRU of generations resident as
// loaded cellmap.Maps. An evicted generation is reloaded from disk on the
// next request that needs it. Loads pin the generation in the snapshot
// store for their duration, so a concurrent Prune can never tear a read:
// a generation either loads completely or the request gets a clean 404
// naming the oldest seq still available.
package history

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

const (
	// MetaFile is the per-generation metadata sidecar's file name.
	MetaFile = "meta.json"
	// DefaultMapFile matches live.MapFile; Config.MapFile overrides.
	DefaultMapFile = "cellmap.jsonl"
	// DefaultMaxResident is the LRU bound on generations held in memory.
	DefaultMaxResident = 4

	metaFormat = "cellspot-genmeta/1"
)

// GenMeta is the cheap per-generation metadata the index keeps for every
// retained generation. Publishers write it as a meta.json sidecar next to
// the map; generations predating the sidecar get a fallback derived from
// the map header and directory mtime (with RAT unknown, reported false).
type GenMeta struct {
	Format    string  `json:"format"`
	BuiltUnix int64   `json:"built_unix"` // publish wall-clock, seconds
	Entries   int     `json:"entries"`
	Period    string  `json:"period"`
	Threshold float64 `json:"threshold"`
	// DayFirst/DayLast bound the live window's day span ("2016-12-25");
	// empty for offline/scenario builds that have no day window.
	DayFirst string `json:"day_first,omitempty"`
	DayLast  string `json:"day_last,omitempty"`
	// RAT reports whether the map carries the per-RAT column.
	RAT bool `json:"rat"`
}

// WriteMeta writes the metadata sidecar into a generation (or staging)
// directory, stamping the format name.
func WriteMeta(dir string, meta GenMeta) error {
	meta.Format = metaFormat
	raw, err := json.Marshal(meta)
	if err != nil {
		return fmt.Errorf("history: encode meta: %w", err)
	}
	return os.WriteFile(filepath.Join(dir, MetaFile), append(raw, '\n'), 0o644)
}

// GenInfo pairs a generation sequence with its metadata.
type GenInfo struct {
	Seq  uint64  `json:"generation"`
	Meta GenMeta `json:"meta"`
}

// PrunedError reports a generation-addressed request for a seq the store
// no longer (or never) retained, carrying the oldest seq still available
// so clients can re-anchor their walk.
type PrunedError struct {
	Seq    uint64
	Oldest uint64 // 0 when the store retains nothing
}

func (e *PrunedError) Error() string {
	if e.Oldest == 0 {
		return fmt.Sprintf("generation %d is not retained (store is empty)", e.Seq)
	}
	return fmt.Sprintf("generation %d is not retained; oldest available is %d", e.Seq, e.Oldest)
}

// Config parameterizes an Index.
type Config struct {
	// Store is the snapshot store to index. Required.
	Store *snapshot.Store
	// MapFile is the map's file name inside each generation
	// (DefaultMapFile when empty).
	MapFile string
	// MaxResident bounds how many generations stay loaded in memory
	// (DefaultMaxResident when <= 0). The bound applies to fully loaded
	// maps; in-flight loads are never evicted.
	MaxResident int
	// Metrics optionally registers the index's counters/gauges.
	Metrics *obs.Registry
}

// resident is one loaded (or loading) generation. ready is closed when the
// load finishes; afterwards exactly one of m/err is set.
type resident struct {
	ready   chan struct{}
	m       *cellmap.Map
	err     error
	lastUse uint64 // LRU clock tick of the last touch
}

// Index is the per-process history index. All methods are safe for
// concurrent use; the underlying maps are immutable once loaded.
type Index struct {
	cfg Config

	mu       sync.Mutex
	gens     []GenInfo // ascending seq, metadata for every retained gen
	resident map[uint64]*resident
	clock    uint64 // LRU clock

	mLoads      *obs.Counter
	mEvictions  *obs.Counter
	mPruned404s *obs.Counter
	mResident   *obs.Gauge
	mRetained   *obs.Gauge
}

// New opens an index over the store and performs the boot metadata scan.
func New(cfg Config) (*Index, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("history: Config.Store is required")
	}
	if cfg.MapFile == "" {
		cfg.MapFile = DefaultMapFile
	}
	if cfg.MaxResident <= 0 {
		cfg.MaxResident = DefaultMaxResident
	}
	ix := &Index{cfg: cfg, resident: make(map[uint64]*resident)}
	if reg := cfg.Metrics; reg != nil {
		ix.mLoads = reg.Counter("history_generation_loads_total", "Generations loaded from disk into the history index.")
		ix.mEvictions = reg.Counter("history_generation_evictions_total", "Resident generations evicted by the history LRU.")
		ix.mPruned404s = reg.Counter("history_pruned_requests_total", "Generation-addressed requests answered 404 because the seq is not retained.")
		ix.mResident = reg.Gauge("history_resident_generations", "Generations currently loaded in the history index.")
		ix.mRetained = reg.Gauge("history_retained_generations", "Generations the history index knows about on disk.")
	}
	if err := ix.Refresh(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Refresh rescans the store's retained generations, reading metadata for
// newly published ones and dropping pruned ones (including their resident
// maps). Called at boot and after every observed swap; cheap for unchanged
// stores (one ReadDir plus meta reads for unseen seqs only).
func (ix *Index) Refresh() error {
	gens, err := ix.cfg.Store.Generations()
	if err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()

	known := make(map[uint64]GenInfo, len(ix.gens))
	for _, gi := range ix.gens {
		known[gi.Seq] = gi
	}
	out := make([]GenInfo, 0, len(gens))
	onDisk := make(map[uint64]bool, len(gens))
	for _, g := range gens {
		onDisk[g.Seq] = true
		if gi, ok := known[g.Seq]; ok {
			out = append(out, gi)
			continue
		}
		meta, err := ix.readMeta(g)
		if err != nil {
			// A generation pruned between ReadDir and the meta read, or
			// debris without a map: skip it rather than fail the scan.
			continue
		}
		out = append(out, GenInfo{Seq: g.Seq, Meta: meta})
	}
	// out is already ascending: store listing is sorted and the merge
	// preserves order.
	ix.gens = out
	for seq, r := range ix.resident {
		if !onDisk[seq] {
			// Only fully loaded entries are dropped; an in-flight load
			// holds a store pin, so its directory cannot have vanished.
			select {
			case <-r.ready:
				delete(ix.resident, seq)
			default:
			}
		}
	}
	ix.mRetained.Set(int64(len(ix.gens)))
	ix.mResident.Set(int64(len(ix.resident)))
	return nil
}

// readMeta loads a generation's sidecar, falling back to the map header
// plus directory mtime for generations that predate the sidecar.
func (ix *Index) readMeta(g snapshot.Generation) (GenMeta, error) {
	raw, err := os.ReadFile(g.Path(MetaFile))
	if err == nil {
		var meta GenMeta
		if err := json.Unmarshal(raw, &meta); err == nil && meta.Format == metaFormat {
			return meta, nil
		}
		// Malformed sidecar: fall through to the header fallback.
	}
	f, err := os.Open(g.Path(ix.cfg.MapFile))
	if err != nil {
		return GenMeta{}, err
	}
	defer f.Close()
	st, err := cellmap.ReadStats(f)
	if err != nil {
		return GenMeta{}, err
	}
	meta := GenMeta{
		Entries:   st.Entries,
		Period:    st.Period,
		Threshold: st.Threshold,
	}
	if fi, err := os.Stat(g.Dir); err == nil {
		meta.BuiltUnix = fi.ModTime().Unix()
	}
	return meta, nil
}

// Generations returns metadata for every retained generation, ascending.
func (ix *Index) Generations() []GenInfo {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return append([]GenInfo(nil), ix.gens...)
}

// Oldest returns the oldest retained seq; ok is false on an empty store.
func (ix *Index) Oldest() (uint64, bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.gens) == 0 {
		return 0, false
	}
	return ix.gens[0].Seq, true
}

// oldestLocked requires ix.mu held.
func (ix *Index) oldestLocked() uint64 {
	if len(ix.gens) == 0 {
		return 0
	}
	return ix.gens[0].Seq
}

// knownLocked reports whether seq is in the retained metadata list.
func (ix *Index) knownLocked(seq uint64) bool {
	i := sort.Search(len(ix.gens), func(i int) bool { return ix.gens[i].Seq >= seq })
	return i < len(ix.gens) && ix.gens[i].Seq == seq
}

// At returns the map of a retained generation, loading (and possibly
// evicting) as needed. A seq the store does not retain returns a
// *PrunedError carrying the oldest available seq. Concurrent calls for the
// same seq share one load.
func (ix *Index) At(seq uint64) (*cellmap.Map, error) {
	ix.mu.Lock()
	if r, ok := ix.resident[seq]; ok {
		ix.clock++
		r.lastUse = ix.clock
		ix.mu.Unlock()
		<-r.ready
		// A failed load was removed from the table by the loader; a
		// caller that raced it just retries through the normal path.
		if r.err != nil {
			return nil, r.err
		}
		return r.m, nil
	}
	if !ix.knownLocked(seq) {
		// The seq may have been published after our last refresh (a
		// lookup racing the store poller): rescan once before 404ing.
		ix.mu.Unlock()
		if err := ix.Refresh(); err != nil {
			return nil, err
		}
		ix.mu.Lock()
		if !ix.knownLocked(seq) {
			perr := &PrunedError{Seq: seq, Oldest: ix.oldestLocked()}
			ix.mu.Unlock()
			ix.mPruned404s.Inc()
			return nil, perr
		}
		if r, ok := ix.resident[seq]; ok { // loaded by a racing caller
			ix.clock++
			r.lastUse = ix.clock
			ix.mu.Unlock()
			<-r.ready
			if r.err != nil {
				return nil, r.err
			}
			return r.m, nil
		}
	}
	ix.clock++
	r := &resident{ready: make(chan struct{}), lastUse: ix.clock}
	ix.resident[seq] = r
	ix.mu.Unlock()

	m, err := ix.load(seq)

	ix.mu.Lock()
	r.m, r.err = m, err
	if err != nil {
		delete(ix.resident, seq)
	} else {
		ix.evictLocked()
	}
	ix.mResident.Set(int64(len(ix.resident)))
	ix.mu.Unlock()
	close(r.ready)

	if err != nil {
		var perr *PrunedError
		if errors.As(err, &perr) {
			ix.mPruned404s.Inc()
		}
		return nil, err
	}
	ix.mLoads.Inc()
	return m, nil
}

// load reads one generation's map from disk under a store pin, so Prune
// cannot remove the directory mid-read.
func (ix *Index) load(seq uint64) (*cellmap.Map, error) {
	gen, ok := ix.cfg.Store.Pin(seq)
	if !ok {
		// Pruned between the metadata scan and this load: resync the
		// metadata so the 404 names the true oldest.
		if err := ix.Refresh(); err != nil {
			return nil, err
		}
		ix.mu.Lock()
		perr := &PrunedError{Seq: seq, Oldest: ix.oldestLocked()}
		ix.mu.Unlock()
		return nil, perr
	}
	defer ix.cfg.Store.Unpin(seq)
	f, err := os.Open(gen.Path(ix.cfg.MapFile))
	if err != nil {
		return nil, fmt.Errorf("history: open gen %d: %w", seq, err)
	}
	defer f.Close()
	m, err := cellmap.Read(f)
	if err != nil {
		return nil, fmt.Errorf("history: read gen %d: %w", seq, err)
	}
	return m, nil
}

// evictLocked drops least-recently-used loaded generations beyond the
// resident bound. In-flight loads are skipped (their readers hold the
// entry); requires ix.mu held.
func (ix *Index) evictLocked() {
	for len(ix.resident) > ix.cfg.MaxResident {
		var victim uint64
		var oldest uint64
		found := false
		for seq, r := range ix.resident {
			select {
			case <-r.ready:
			default:
				if r.m == nil && r.err == nil {
					continue // still loading
				}
			}
			if !found || r.lastUse < oldest {
				victim, oldest, found = seq, r.lastUse, true
			}
		}
		if !found {
			return
		}
		delete(ix.resident, victim)
		ix.mEvictions.Inc()
	}
}

// ChangePoint is one step of a block's label timeline: the state the
// address had from this generation onward, emitted when the state (the
// cellular bit, covering prefix, or owning ASN) differs from the previous
// retained generation. The first retained generation always emits, so a
// timeline's first entry is the oldest known state.
type ChangePoint struct {
	Generation uint64  `json:"generation"`
	Period     string  `json:"period,omitempty"`
	Cellular   bool    `json:"cellular"`
	Prefix     string  `json:"prefix,omitempty"`
	ASN        uint32  `json:"asn,omitempty"`
	Ratio      float64 `json:"ratio,omitempty"`
	// RAT is the [3G, 4G, 5G] split at this change-point; absent on
	// legacy generations without the RAT column.
	RAT []float64 `json:"rat,omitempty"`
}

// TimelineResponse is the /v1/history answer.
type TimelineResponse struct {
	Addr string `json:"addr"`
	// OldestGen/NewestGen bound the retained range the walk covered.
	OldestGen uint64 `json:"oldest_generation"`
	NewestGen uint64 `json:"newest_generation"`
	// Examined counts generations actually compared (those pruned
	// mid-walk are skipped, never guessed about).
	Examined int           `json:"generations_examined"`
	Changes  []ChangePoint `json:"changes"`
}

// sameState reports whether two change-points describe the same label
// state. Ratio and RAT drift do not open a new change-point — they are
// continuous measurements, not label transitions — but the values attached
// to each emitted point are those of its generation.
func sameState(a, b ChangePoint) bool {
	return a.Cellular == b.Cellular && a.Prefix == b.Prefix && a.ASN == b.ASN
}

// Timeline walks every retained generation in ascending order and returns
// the address's label change-points. Generations pruned while the walk is
// in flight are skipped. name is the textual address to echo.
func (ix *Index) Timeline(addr netip.Addr, name string) (TimelineResponse, error) {
	gens := ix.Generations()
	resp := TimelineResponse{Addr: name}
	var prev ChangePoint
	first := true
	for _, gi := range gens {
		m, err := ix.At(gi.Seq)
		if err != nil {
			var perr *PrunedError
			if errors.As(err, &perr) {
				continue
			}
			return TimelineResponse{}, err
		}
		cur := ChangePoint{Generation: gi.Seq, Period: m.Period}
		if e, ok := m.Lookup(addr); ok {
			cur.Cellular = true
			cur.Prefix = e.Prefix.String()
			cur.ASN = e.ASN
			cur.Ratio = e.Ratio
			cur.RAT = e.RAT
		}
		if resp.Examined == 0 {
			resp.OldestGen = gi.Seq
		}
		resp.NewestGen = gi.Seq
		resp.Examined++
		if first || !sameState(prev, cur) {
			resp.Changes = append(resp.Changes, cur)
			first = false
		}
		prev = cur
	}
	return resp, nil
}
