package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
	"cellspot/internal/obs/httpmw"
)

// tmEntry is one entry of a hand-built test map.
type tmEntry struct {
	prefix  string
	asn     uint32
	ratio   float64
	du      float64
	country string
}

// mkMap assembles a cellmap from explicit entries via the wire format, so
// tests control exactly which prefixes exist at which generation.
func mkMap(t testing.TB, period string, entries []tmEntry) *cellmap.Map {
	t.Helper()
	var b strings.Builder
	fmt.Fprintf(&b, `{"format":"cellspot-map/1","threshold":0.5,"period":%q,"entries":%d}`+"\n",
		period, len(entries))
	for _, e := range entries {
		fmt.Fprintf(&b, `{"prefix":%q,"asn":%d,"ratio":%g,"du":%g,"country":%q}`+"\n",
			e.prefix, e.asn, e.ratio, e.du, e.country)
	}
	m, err := cellmap.Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("mkMap: %v", err)
	}
	return m
}

// genOneEntries is the generation-1 dataset: 16 v4 unit blocks and 4 v6
// unit blocks, each with metadata that differs per prefix so a wrong
// answer is distinguishable from a right one.
func genOneEntries() []tmEntry {
	var es []tmEntry
	for i := 0; i < 16; i++ {
		es = append(es, tmEntry{
			prefix: fmt.Sprintf("10.0.%d.0/24", i), asn: uint32(100 + i),
			ratio: 0.25 + float64(i)/100, du: float64(i + 1), country: "DE",
		})
	}
	for i := 0; i < 4; i++ {
		es = append(es, tmEntry{
			prefix: fmt.Sprintf("2001:db8:%d::/48", i), asn: uint32(200 + i),
			ratio: 0.5, du: float64(i), country: "SE",
		})
	}
	return es
}

// genTwoEntries evolves generation 1: every ratio changes and 8 new
// prefixes appear, so answers from the two generations are tellable apart
// for every address.
func genTwoEntries() []tmEntry {
	es := genOneEntries()
	for i := range es {
		es[i].ratio += 0.4
	}
	for i := 0; i < 8; i++ {
		es = append(es, tmEntry{
			prefix: fmt.Sprintf("10.1.%d.0/24", i), asn: uint32(300 + i),
			ratio: 0.9, du: 42, country: "US",
		})
	}
	return es
}

// testFleet is an in-process shard fleet: shards × replicas httptest
// servers, each serving its own Swappable behind a ShardView.
type testFleet struct {
	topo Topology
	ring *Ring
	sws  [][]*cellmap.Swappable
	srvs [][]*httptest.Server
}

func newTestFleet(t testing.TB, shards, reps int, m *cellmap.Map, gen uint64) *testFleet {
	t.Helper()
	f := &testFleet{ring: NewRing(shards, DefaultVNodes)}
	f.topo = Topology{Format: TopologyFormat}
	for s := 0; s < shards; s++ {
		var (
			sws  []*cellmap.Swappable
			srvs []*httptest.Server
			urls []string
		)
		for j := 0; j < reps; j++ {
			sw := cellmap.NewSwappable(m, gen)
			view, err := NewShardView(sw, f.ring, s)
			if err != nil {
				t.Fatal(err)
			}
			mux := http.NewServeMux()
			MountShard(mux, view)
			srv := httptest.NewServer(mux)
			t.Cleanup(srv.Close)
			sws = append(sws, sw)
			srvs = append(srvs, srv)
			urls = append(urls, srv.URL)
		}
		f.sws = append(f.sws, sws)
		f.srvs = append(f.srvs, srvs)
		f.topo.Shards = append(f.topo.Shards, ShardSpec{Replicas: urls})
	}
	return f
}

// swap hot-swaps one replica to a new map generation.
func (f *testFleet) swap(s, j int, m *cellmap.Map, gen uint64) { f.sws[s][j].Swap(m, gen) }

// kill closes one replica's server, severing in-flight connections too.
func (f *testFleet) kill(s, j int) {
	f.srvs[s][j].CloseClientConnections()
	f.srvs[s][j].Close()
}

// gateway builds a gateway over the fleet plus an instrumented HTTP
// front, returning the gateway, its server, and the metrics registry.
func (f *testFleet) gateway(t testing.TB, tune func(*GatewayConfig)) (*Gateway, *httptest.Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	cfg := GatewayConfig{Topology: f.topo, Registry: reg, Logf: t.Logf}
	if tune != nil {
		tune(&cfg)
	}
	g, err := NewGateway(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mux := httpmw.NewMux(reg)
	g.Mount(mux)
	mux.Handle("GET /metrics", reg.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return g, srv, reg
}

// coveredAddrs returns one representative host address inside every v4
// and v6 prefix of the generation-1/2 datasets, plus a few misses.
func coveredAddrs() []netip.Addr {
	var out []netip.Addr
	for i := 0; i < 16; i++ {
		out = append(out, netip.MustParseAddr(fmt.Sprintf("10.0.%d.9", i)))
	}
	for i := 0; i < 8; i++ {
		out = append(out, netip.MustParseAddr(fmt.Sprintf("10.1.%d.9", i)))
	}
	for i := 0; i < 4; i++ {
		out = append(out, netip.MustParseAddr(fmt.Sprintf("2001:db8:%d::77", i)))
	}
	out = append(out,
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("198.51.100.200"),
		netip.MustParseAddr("2001:db9::1"),
	)
	return out
}

// addrOwnedBy finds a covered address the ring assigns to shard s.
func addrOwnedBy(t testing.TB, ring *Ring, s int) netip.Addr {
	t.Helper()
	for _, a := range coveredAddrs() {
		if ring.Owner(a) == s {
			return a
		}
	}
	t.Fatalf("no covered address owned by shard %d", s)
	return netip.Addr{}
}
