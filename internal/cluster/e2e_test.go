package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellspot/internal/cellmap"
)

// TestClusterE2E is the acceptance test of the serving cluster: a
// 3-shard × 2-replica in-process fleet takes concurrent single and batch
// traffic through a gateway while one replica hot-swaps a generation
// ahead of the fleet, the rest roll forward, and one replica is killed
// outright. Every 200 answer must match the dataset of the generation it
// claims — zero wrong answers — and every batch must be internally
// uniform — zero mixed generations. Run under -race in CI.
func TestClusterE2E(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	maps := map[uint64]*cellmap.Map{1: m1, 2: m2}

	// Ground truth per generation and address.
	expected := map[uint64]map[netip.Addr]cellmap.LookupResponse{1: {}, 2: {}}
	for gen, m := range maps {
		for _, a := range coveredAddrs() {
			expected[gen][a] = cellmap.LookupAddr(m, gen, a, a.String())
		}
	}

	f := newTestFleet(t, 3, 2, m1, 1)
	g, srv, _ := f.gateway(t, func(c *GatewayConfig) {
		c.HedgeDelay = 10 * time.Millisecond
		c.Backoff = 5 * time.Millisecond
		c.HealthInterval = 20 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		g.Run(ctx)
	}()

	// Wait for the health view to see the whole fleet.
	waitFor(t, time.Second, func() bool {
		for _, r := range g.Health().Replicas {
			if !r.Up {
				return false
			}
		}
		return true
	})

	var (
		stop        = make(chan struct{})
		wg          sync.WaitGroup
		singleOK    atomic.Int64
		batchOKGen1 atomic.Int64
		batchOKGen2 atomic.Int64
		tolerated   atomic.Int64 // 5xx during the transition window
	)
	addrs := coveredAddrs()
	client := &http.Client{Timeout: 2 * time.Second}

	checkResult := func(kind string, gen uint64, r cellmap.LookupResponse) {
		a, err := netip.ParseAddr(r.Addr)
		if err != nil {
			t.Errorf("%s: unparseable addr %q in answer", kind, r.Addr)
			return
		}
		want, known := expected[gen][a]
		if !known {
			t.Errorf("%s: answer claims unknown generation %d", kind, gen)
			return
		}
		if !reflect.DeepEqual(r, want) {
			t.Errorf("%s: WRONG ANSWER for %s at generation %d: got %+v, want %+v",
				kind, a, gen, r, want)
		}
	}

	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 99))
			for {
				select {
				case <-stop:
					return
				default:
				}
				a := addrs[rng.IntN(len(addrs))]
				resp, err := client.Get(srv.URL + "/v1/lookup?ip=" + a.String())
				if err != nil {
					t.Errorf("single lookup transport error: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var lr cellmap.LookupResponse
					if err := json.Unmarshal(body, &lr); err != nil {
						t.Errorf("single lookup bad body: %v", err)
						return
					}
					checkResult("single", lr.Generation, lr)
					singleOK.Add(1)
				case resp.StatusCode >= 500:
					tolerated.Add(1) // replica churn; never a wrong answer
				default:
					t.Errorf("single lookup status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(uint64(w + 1))
	}

	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 7))
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Random non-empty subset, shuffled, spanning shards.
				n := 1 + rng.IntN(len(addrs))
				perm := rng.Perm(len(addrs))[:n]
				ips := make([]string, n)
				for i, idx := range perm {
					ips[i] = addrs[idx].String()
				}
				payload, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
				if err != nil {
					t.Error(err)
					return
				}
				resp, err := client.Post(srv.URL+"/v1/lookup/batch", "application/json", bytes.NewReader(payload))
				if err != nil {
					t.Errorf("batch transport error: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var br cellmap.BatchResponse
					if err := json.Unmarshal(body, &br); err != nil {
						t.Errorf("batch bad body: %v", err)
						return
					}
					if len(br.Results) != n {
						t.Errorf("batch: %d results for %d addresses", len(br.Results), n)
						return
					}
					for _, r := range br.Results {
						if r.Generation != br.Generation {
							t.Errorf("MIXED-GENERATION BATCH: result at %d inside response at %d",
								r.Generation, br.Generation)
						}
						checkResult("batch", br.Generation, r)
					}
					switch br.Generation {
					case 1:
						batchOKGen1.Add(1)
					case 2:
						batchOKGen2.Add(1)
					default:
						t.Errorf("batch at unknown generation %d", br.Generation)
					}
				case resp.StatusCode >= 500:
					tolerated.Add(1) // generation split or dead replica
				default:
					t.Errorf("batch status %d: %s", resp.StatusCode, body)
					return
				}
			}
		}(uint64(w + 50))
	}

	// Phase 1: steady state at generation 1.
	time.Sleep(80 * time.Millisecond)

	// Phase 2: hot-swap one replica a full generation ahead of the fleet
	// — the gateway must keep batches uniform while shard 0's replicas
	// disagree with the rest of the fleet.
	f.swap(0, 0, m2, 2)
	time.Sleep(60 * time.Millisecond)

	// Phase 3: roll the rest of the fleet forward, staggered.
	for _, rj := range [][2]int{{0, 1}, {1, 0}, {1, 1}, {2, 0}} {
		f.swap(rj[0], rj[1], m2, 2)
		time.Sleep(5 * time.Millisecond)
	}

	// Phase 4: kill the straggler replica outright mid-traffic; shard 2
	// keeps serving from its surviving replica.
	f.kill(2, 1)
	time.Sleep(120 * time.Millisecond)

	close(stop)
	wg.Wait()
	cancel()
	<-healthDone

	if singleOK.Load() == 0 {
		t.Error("no single lookups succeeded")
	}
	if batchOKGen1.Load() == 0 {
		t.Error("no batch succeeded at generation 1 (traffic never observed the old generation)")
	}
	if batchOKGen2.Load() == 0 {
		t.Error("no batch succeeded at generation 2 (traffic never observed the new generation)")
	}
	t.Logf("singles ok=%d, batches ok gen1=%d gen2=%d, tolerated 5xx=%d",
		singleOK.Load(), batchOKGen1.Load(), batchOKGen2.Load(), tolerated.Load())

	// The fleet's steady state after the storm: every surviving replica
	// up at generation 2, the killed one down.
	waitFor(t, 2*time.Second, func() bool {
		h := g.Health()
		for _, r := range h.Replicas {
			dead := r.Shard == 2 && r.Replica == 1
			if dead && r.Up {
				return false
			}
			if !dead && (!r.Up || r.Generation != 2) {
				return false
			}
		}
		return h.QuorumGeneration == 2
	})

	// Acceptance: the gateway metrics are on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		`cluster_shard_requests_total{shard="0"}`,
		`cluster_shard_requests_total{shard="2"}`,
		`cluster_shard_errors_total{shard="2"}`,
		`cluster_hedged_requests_total{shard="0"}`,
		"cluster_fanout_seconds_bucket",
		"cluster_generation_conflicts_total",
		`cluster_replica_up{replica="1",shard="2"} 0`,
		`cluster_replica_generation{replica="0",shard="1"} 2`,
	} {
		if !strings.Contains(string(metrics), fam) {
			t.Errorf("metric %q missing from gateway /metrics", fam)
		}
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t testing.TB, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("condition not reached within %v", d)
}
