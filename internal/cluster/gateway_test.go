package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"cellspot/internal/cellmap"
)

func TestGatewayRoutesSingleLookups(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 3, 2, m, 1)
	g, srv, _ := f.gateway(t, nil)
	g.CheckNow(context.Background())

	for _, a := range coveredAddrs() {
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + a.String())
		if err != nil {
			t.Fatal(err)
		}
		var lr cellmap.LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", a, resp.StatusCode)
		}
		if want := cellmap.LookupAddr(m, 1, a, a.String()); !reflect.DeepEqual(lr, want) {
			t.Errorf("%s: got %+v, want %+v", a, lr, want)
		}
	}

	// Gateway-side input validation mirrors the single-node service.
	for _, q := range []string{"", "?ip=nope"} {
		resp, err := http.Get(srv.URL + "/v1/lookup" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("lookup%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

func TestGatewaySurvivesReplicaDeath(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 3, 2, m, 1)
	g, srv, _ := f.gateway(t, func(c *GatewayConfig) {
		c.HedgeDelay = 5 * time.Millisecond
		c.Backoff = 5 * time.Millisecond
	})
	g.CheckNow(context.Background())

	// Kill one replica of every shard: every request now has exactly one
	// live replica to land on.
	for s := 0; s < 3; s++ {
		f.kill(s, 0)
	}
	for _, a := range coveredAddrs() {
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + a.String())
		if err != nil {
			t.Fatal(err)
		}
		var lr cellmap.LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d after replica death", a, resp.StatusCode)
		}
		if want := cellmap.LookupAddr(m, 1, a, a.String()); !reflect.DeepEqual(lr, want) {
			t.Errorf("%s: got %+v, want %+v", a, lr, want)
		}
	}
}

func TestGatewayAllReplicasDown(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 2, 1, m, 1)
	_, srv, _ := f.gateway(t, func(c *GatewayConfig) {
		c.Backoff = time.Millisecond
	})
	f.kill(0, 0)
	f.kill(1, 0)
	resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502", resp.StatusCode)
	}
	var e cellmap.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("502 body %v not the JSON error convention (%v)", e, err)
	}
}

// TestGatewayHedging pins the hedged-request path: when the replica a
// request lands on stalls past the hedge delay, the gateway must fire a
// second request at the other replica and serve its answer instead of
// waiting out the stall.
func TestGatewayHedging(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 1, 2, m, 1)

	// Replace replica 0 with a stalling proxy to the real handler.
	slowTarget := f.srvs[0][0].Config.Handler
	stall := make(chan struct{})
	f.srvs[0][0].Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-stall:
		case <-r.Context().Done():
			return
		}
		slowTarget.ServeHTTP(w, r)
	})
	defer close(stall)

	g, srv, reg := f.gateway(t, func(c *GatewayConfig) {
		c.HedgeDelay = 3 * time.Millisecond
	})
	g.CheckNow(context.Background())
	// Health probes also hit the stalling replica; mark both up by hand so
	// replica order is purely round-robin.
	for _, rep := range g.replicas[0] {
		rep.up.Store(true)
		rep.gen.Store(1)
	}

	addr := addrOwnedBy(t, f.ring, 0)
	// Over several requests, round-robin starts on the stalled replica
	// about half the time; each such request must be rescued by a hedge
	// well before the client timeout.
	for i := 0; i < 6; i++ {
		start := time.Now()
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + addr.String())
		if err != nil {
			t.Fatal(err)
		}
		var lr cellmap.LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
		if want := cellmap.LookupAddr(m, 1, addr, addr.String()); !reflect.DeepEqual(lr, want) {
			t.Errorf("request %d: got %+v, want %+v", i, lr, want)
		}
		if d := time.Since(start); d > time.Second {
			t.Errorf("request %d took %v despite hedging", i, d)
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `cluster_hedged_requests_total{shard="0"}`) {
		t.Fatalf("hedge counter missing from exposition:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), `cluster_hedged_requests_total{shard="0"} 0`) {
		t.Error("no hedges fired against a stalled replica")
	}
}

func TestGatewayBatchMergesInRequestOrder(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 3, 1, m, 1)
	g, srv, _ := f.gateway(t, nil)
	g.CheckNow(context.Background())

	addrs := coveredAddrs()
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	body, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var br cellmap.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if br.Generation != 1 || len(br.Results) != len(addrs) {
		t.Fatalf("batch = gen %d, %d results", br.Generation, len(br.Results))
	}
	for i, a := range addrs {
		if want := cellmap.LookupAddr(m, 1, a, a.String()); !reflect.DeepEqual(br.Results[i], want) {
			t.Errorf("result %d (%s): got %+v, want %+v", i, a, br.Results[i], want)
		}
	}
}

// TestGatewayBatchGenerationReconciliation: one shard's primary replica
// lags a generation behind while its sibling has caught up. The guard
// must notice the mix and re-query the laggard shard, landing on the
// caught-up sibling, so the final batch is uniform at the new generation.
func TestGatewayBatchGenerationReconciliation(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	f := newTestFleet(t, 2, 2, m1, 1)

	// Shard 0: both replicas at gen 2. Shard 1: replica 0 stuck at gen 1,
	// replica 1 at gen 2.
	f.swap(0, 0, m2, 2)
	f.swap(0, 1, m2, 2)
	f.swap(1, 1, m2, 2)

	g, srv, reg := f.gateway(t, func(c *GatewayConfig) {
		c.Backoff = time.Millisecond
	})
	g.CheckNow(context.Background())

	addrs := coveredAddrs()
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	body, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	// Run several batches: round-robin guarantees some first-round gathers
	// hit the stale replica and need reconciliation.
	sawConflict := false
	for i := 0; i < 8; i++ {
		resp, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var br cellmap.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: status %d", i, resp.StatusCode)
		}
		if br.Generation != 2 {
			t.Fatalf("batch %d: generation %d, want 2", i, br.Generation)
		}
		for j, a := range addrs {
			if want := cellmap.LookupAddr(m2, 2, a, a.String()); !reflect.DeepEqual(br.Results[j], want) {
				t.Fatalf("batch %d result %d (%s): got %+v, want %+v", i, j, a, br.Results[j], want)
			}
		}
	}
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "cluster_generation_conflicts_total ") &&
			!strings.HasSuffix(line, " 0") {
			sawConflict = true
		}
	}
	if !sawConflict {
		t.Error("reconciliation never exercised: conflict counter stayed 0")
	}
}

// TestGatewayBatchGenerationSplit: when a shard has no replica at the
// fleet's newest generation, the guard must fail the batch rather than
// mix generations.
func TestGatewayBatchGenerationSplit(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	f := newTestFleet(t, 2, 1, m1, 1)
	f.swap(0, 0, m2, 2) // shard 1 can only ever answer gen 1

	g, srv, _ := f.gateway(t, func(c *GatewayConfig) {
		c.Backoff = time.Millisecond
		c.GenRounds = 2
	})
	g.CheckNow(context.Background())

	// Addresses spanning both shards force the conflict.
	a0 := addrOwnedBy(t, f.ring, 0)
	a1 := addrOwnedBy(t, f.ring, 1)
	body := fmt.Sprintf(`{"ips":[%q,%q]}`, a0, a1)
	resp, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var e cellmap.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Errorf("503 body %v not the JSON error convention (%v)", e, err)
	}
}

func TestGatewayBatchLimit(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 2, 1, m, 1)
	_, srv, _ := f.gateway(t, func(c *GatewayConfig) {
		c.BatchLimit = 4
	})
	body := `{"ips":["10.0.0.1","10.0.1.1","10.0.2.1","10.0.3.1","10.0.4.1"]}`
	resp, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("status = %d, want 413", resp.StatusCode)
	}
}

func TestGatewayHealthView(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 2, 2, m, 5)
	f.kill(1, 1)
	g, srv, _ := f.gateway(t, nil)
	g.CheckNow(context.Background())

	resp, err := http.Get(srv.URL + "/v1/cluster/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h GatewayHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Shards != 2 || len(h.Replicas) != 4 {
		t.Fatalf("health = %+v", h)
	}
	if h.QuorumGeneration != 5 {
		t.Errorf("quorum generation = %d, want 5", h.QuorumGeneration)
	}
	up, down := 0, 0
	for _, r := range h.Replicas {
		if r.Up {
			up++
			if r.Generation != 5 {
				t.Errorf("up replica at generation %d", r.Generation)
			}
		} else {
			down++
		}
	}
	if up != 3 || down != 1 {
		t.Errorf("up=%d down=%d, want 3/1", up, down)
	}
}

// TestQuorumGenDeprioritizesLaggards pins replicaOrder: an up-but-lagging
// replica sorts after up replicas at the quorum generation.
func TestQuorumGenDeprioritizesLaggards(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	f := newTestFleet(t, 1, 3, m, 2)
	f.swap(0, 1, m, 1) // replica 1 lags
	g, _, _ := f.gateway(t, nil)
	g.CheckNow(context.Background())

	if q := g.quorumGen(); q != 2 {
		t.Fatalf("quorum generation = %d, want 2", q)
	}
	for trial := 0; trial < 6; trial++ {
		order := g.replicaOrder(0, g.quorumGen())
		if len(order) != 3 {
			t.Fatalf("order has %d replicas", len(order))
		}
		if last := order[2]; last.index != 1 {
			t.Errorf("trial %d: lagging replica ranked %v, want last", trial,
				[]int{order[0].index, order[1].index, order[2].index})
		}
	}
}
