package cluster

import (
	"net/netip"
	"sync"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
)

// lookupCache is the gateway's generation-keyed response cache: an LRU of
// per-address lookup answers, all belonging to one map generation at a
// time. The key is conceptually (generation, addr); because PR 4's
// invariant makes generations fleet-wide and monotonic, the cache holds
// only the newest generation it has observed and invalidates wholesale
// the moment a newer one appears — from a health probe or a response
// body, whichever arrives first. That makes staleness structurally
// impossible: every cached answer carries the cache's current generation,
// and anything older is unreachable the instant the swap is visible.
//
// One mutex guards the whole structure. The gateway path does network
// I/O around every cache touch, so lock contention is noise there; the
// all-hit fast path takes the lock once per batch.
type lookupCache struct {
	mu    sync.Mutex
	cap   int
	gen   uint64
	items map[netip.Addr]*cacheItem
	head  *cacheItem // most recently used
	tail  *cacheItem // next eviction victim

	mHits          *obs.Counter
	mMisses        *obs.Counter
	mInvalidations *obs.Counter
	mEntries       *obs.Gauge
}

type cacheItem struct {
	addr       netip.Addr
	resp       cellmap.LookupResponse
	prev, next *cacheItem
}

// newLookupCache sizes a cache and registers its metrics; reg may be nil
// (obs constructors no-op on nil).
func newLookupCache(capacity int, reg *obs.Registry) *lookupCache {
	return &lookupCache{
		cap:   capacity,
		items: make(map[netip.Addr]*cacheItem, capacity),
		mHits: reg.Counter("cluster_cache_hits_total",
			"Gateway lookups answered from the generation-keyed cache."),
		mMisses: reg.Counter("cluster_cache_misses_total",
			"Gateway lookups that missed the cache and went to a shard."),
		mInvalidations: reg.Counter("cluster_cache_invalidations_total",
			"Wholesale cache invalidations triggered by observing a newer generation."),
		mEntries: reg.Gauge("cluster_cache_entries",
			"Entries resident in the gateway lookup cache."),
	}
}

// generation returns the generation the cache currently holds.
func (c *lookupCache) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// observe folds an externally seen generation into the cache: seeing a
// newer generation anywhere (health probe, response body) invalidates
// everything from before it.
func (c *lookupCache) observe(gen uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.advanceLocked(gen)
	c.mu.Unlock()
}

func (c *lookupCache) advanceLocked(gen uint64) {
	if gen <= c.gen {
		return
	}
	if len(c.items) > 0 {
		c.mInvalidations.Inc()
	}
	c.gen = gen
	clear(c.items)
	c.head, c.tail = nil, nil
	c.mEntries.Set(0)
}

// get returns the cached answer for addr, which always belongs to the
// cache's current generation, plus that generation.
func (c *lookupCache) get(addr netip.Addr) (cellmap.LookupResponse, uint64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	it, ok := c.items[addr]
	if !ok {
		c.mMisses.Inc()
		return cellmap.LookupResponse{}, c.gen, false
	}
	c.mHits.Inc()
	c.touchLocked(it)
	return it.resp, c.gen, true
}

// getMany fills out[i]/hit[i] for every addrs[i] present, under one lock
// acquisition so all hits are guaranteed to share the returned
// generation — the batch path's uniformity depends on that atomicity.
func (c *lookupCache) getMany(addrs []netip.Addr, out []cellmap.LookupResponse, hit []bool) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range addrs {
		it, ok := c.items[a]
		if !ok {
			c.mMisses.Inc()
			continue
		}
		c.mHits.Inc()
		c.touchLocked(it)
		out[i], hit[i] = it.resp, true
	}
	return c.gen
}

// put stores an answer observed at gen. An answer from a newer generation
// first invalidates everything older; an answer from an older generation
// is dropped — caching it would be the stale-read bug this design exists
// to prevent.
func (c *lookupCache) put(gen uint64, addr netip.Addr, resp cellmap.LookupResponse) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.advanceLocked(gen)
	if gen < c.gen {
		return
	}
	if it, ok := c.items[addr]; ok {
		it.resp = resp
		c.touchLocked(it)
		return
	}
	it := &cacheItem{addr: addr, resp: resp}
	c.items[addr] = it
	c.pushFrontLocked(it)
	if len(c.items) > c.cap {
		victim := c.tail
		c.unlinkLocked(victim)
		delete(c.items, victim.addr)
	}
	c.mEntries.Set(int64(len(c.items)))
}

// len reports resident entries (tests and the health path).
func (c *lookupCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

func (c *lookupCache) touchLocked(it *cacheItem) {
	if c.head == it {
		return
	}
	c.unlinkLocked(it)
	c.pushFrontLocked(it)
}

func (c *lookupCache) pushFrontLocked(it *cacheItem) {
	it.prev = nil
	it.next = c.head
	if c.head != nil {
		c.head.prev = it
	}
	c.head = it
	if c.tail == nil {
		c.tail = it
	}
}

func (c *lookupCache) unlinkLocked(it *cacheItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		c.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		c.tail = it.prev
	}
	it.prev, it.next = nil, nil
}
