package cluster

import (
	"fmt"
	"net/http"
	"net/netip"
	"strconv"

	"cellspot/internal/cellmap"
	"cellspot/internal/history"
)

// checkOwned answers the 421 itself (and counts the misroute) when addr is
// outside this shard's partition.
func (v *ShardView) checkOwned(w http.ResponseWriter, addr netip.Addr) bool {
	owner := v.ring.Owner(addr)
	if owner == v.id {
		return true
	}
	v.mMisrouted.Inc()
	cellmap.WriteError(w, http.StatusMisdirectedRequest,
		fmt.Sprintf("address %s belongs to shard %d, this is shard %d", addr, owner, v.id))
	return false
}

// MountShardHistory registers the partition-filtered lookup service with
// time travel — the shard-node counterpart of history.Mount, used INSTEAD
// of MountShard on nodes that run a history index over their snapshot
// store:
//
//	GET  /v1/lookup?ip=ADDR        — owned addresses, current map
//	GET  /v1/lookup?ip=ADDR&gen=N  — owned addresses, pinned generation
//	POST /v1/lookup/batch          — current generation only (gen → 400)
//	GET  /v1/history?ip=ADDR       — owned addresses, label timeline
//	GET  /v1/generations           — retained generations with metadata
//	GET  /v1/cluster/health        — shard id, generation, owned entries
//	GET  /v1/info                  — dataset metadata
//
// Ownership is checked before any generation is loaded, so a misrouted
// history request cannot pin a generation on the wrong shard. The gen=N
// answer goes through the same LookupAddr/WriteJSON path as the current
// one — byte-identical to serving that generation as current.
func MountShardHistory(r cellmap.Router, v *ShardView, ix *history.Index) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, req *http.Request) {
		addr, name, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		if !v.checkOwned(w, addr) {
			return
		}
		query := req.URL.Query()
		if !query.Has("gen") {
			m, gen := v.src.Current()
			cellmap.WriteJSON(w, cellmap.LookupAddr(m, gen, addr, name))
			return
		}
		seq, err := strconv.ParseUint(query.Get("gen"), 10, 64)
		if err != nil || seq == 0 {
			cellmap.WriteError(w, http.StatusBadRequest, "bad gen: want a positive generation number")
			return
		}
		m, err := ix.At(seq)
		if err != nil {
			history.WriteAtError(w, err)
			return
		}
		cellmap.WriteJSON(w, cellmap.LookupAddr(m, seq, addr, name))
	})
	r.HandleFunc("POST /v1/lookup/batch", func(w http.ResponseWriter, req *http.Request) {
		addrs, names, ok := cellmap.DecodeBatch(w, req, cellmap.DefaultBatchLimit)
		if !ok {
			return
		}
		for _, a := range addrs {
			if !v.checkOwned(w, a) {
				return
			}
		}
		m, gen := v.src.Current()
		resp := cellmap.BatchResponse{Generation: gen, Results: make([]cellmap.LookupResponse, 0, len(addrs))}
		for i, a := range addrs {
			resp.Results = append(resp.Results, cellmap.LookupAddr(m, gen, a, names[i]))
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/history", func(w http.ResponseWriter, req *http.Request) {
		addr, name, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		if !v.checkOwned(w, addr) {
			return
		}
		resp, err := ix.Timeline(addr, name)
		if err != nil {
			cellmap.WriteError(w, http.StatusInternalServerError, "history walk: "+err.Error())
			return
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/generations", func(w http.ResponseWriter, _ *http.Request) {
		cellmap.WriteJSON(w, struct {
			Generations []history.GenInfo `json:"generations"`
		}{Generations: ix.Generations()})
	})
	r.HandleFunc("GET /v1/cluster/health", func(w http.ResponseWriter, _ *http.Request) {
		m, gen := v.src.Current()
		cellmap.WriteJSON(w, HealthResponse{
			Shard:        v.id,
			Shards:       v.ring.Shards(),
			Generation:   gen,
			Entries:      v.ownedEntries(m),
			TotalEntries: m.Len(),
			Period:       m.Period,
		})
	})
	cellmap.MountInfo(r, v.src)
}
