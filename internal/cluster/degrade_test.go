package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"cellspot/internal/cellmap"
)

// --- circuit breaker unit behavior ---

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(3, 50*time.Millisecond, 0, nil)

	for i := 0; i < 2; i++ {
		b.record(false, 0, now)
	}
	if got := b.stateName(); got != "closed" {
		t.Fatalf("after 2 failures: %s, want closed", got)
	}
	b.record(false, 0, now)
	if got := b.stateName(); got != "open" {
		t.Fatalf("after 3rd failure: %s, want open", got)
	}
	if b.allow(now.Add(10 * time.Millisecond)) {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}
	if b.acquire(now.Add(10 * time.Millisecond)) {
		t.Fatal("open breaker acquired inside cooldown")
	}

	// Cooldown elapses: exactly one half-open probe slot.
	later := now.Add(60 * time.Millisecond)
	if !b.allow(later) {
		t.Fatal("cooled-down breaker refused ranking")
	}
	if !b.acquire(later) {
		t.Fatal("cooled-down breaker refused the probe")
	}
	if b.acquire(later) {
		t.Fatal("second concurrent probe acquired")
	}
	// An abandoned probe frees the slot without a verdict.
	b.abandon()
	if got := b.stateName(); got != "half-open" {
		t.Fatalf("after abandon: %s, want half-open", got)
	}
	if !b.acquire(later) {
		t.Fatal("probe slot not freed by abandon")
	}
	// Failed probe: open again for a full cooldown.
	b.record(false, 0, later)
	if got := b.stateName(); got != "open" {
		t.Fatalf("after failed probe: %s, want open", got)
	}
	// Successful probe after the next cooldown closes it.
	final := later.Add(60 * time.Millisecond)
	if !b.acquire(final) {
		t.Fatal("breaker refused probe after second cooldown")
	}
	b.record(true, 0, final)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("after successful probe: %s, want closed", got)
	}
}

func TestBreakerLatencyBudget(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newBreaker(2, 50*time.Millisecond, 10*time.Millisecond, nil)
	// Technically successful answers over budget are brownout failures.
	b.record(true, 20*time.Millisecond, now)
	b.record(true, 30*time.Millisecond, now)
	if got := b.stateName(); got != "open" {
		t.Fatalf("slow successes did not trip the breaker: %s", got)
	}
	// A fast success closes it again via the half-open probe.
	later := now.Add(60 * time.Millisecond)
	if !b.acquire(later) {
		t.Fatal("no probe after cooldown")
	}
	b.record(true, 1*time.Millisecond, later)
	if got := b.stateName(); got != "closed" {
		t.Fatalf("fast probe did not close: %s", got)
	}
}

// --- breaker integration: flaky replica trips, probe recovers ---

func TestGatewayBreakerTripsAndRecovers(t *testing.T) {
	var failing atomic.Bool
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() {
			cellmap.WriteError(w, http.StatusServiceUnavailable, "induced outage")
			return
		}
		cellmap.WriteJSON(w, cellmap.LookupResponse{Addr: r.URL.Query().Get("ip"), Generation: 1})
	}))
	defer srv.Close()

	topo := Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{srv.URL}}}}
	g, err := NewGateway(GatewayConfig{
		Topology:         topo,
		Attempts:         1,
		BreakerThreshold: 2,
		BreakerCooldown:  80 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := netip.MustParseAddr("10.0.0.9")

	failing.Store(true)
	for i := 0; i < 2; i++ {
		if _, _, err := g.Lookup(context.Background(), addr); err == nil {
			t.Fatal("lookup against failing replica succeeded")
		}
	}
	if got := g.Health().Replicas[0].Breaker; got != "open" {
		t.Fatalf("breaker after threshold failures: %s, want open", got)
	}
	// Still open: the forced last-resort attempt keeps returning the real
	// error rather than a synthetic refusal.
	if _, _, err := g.Lookup(context.Background(), addr); err == nil {
		t.Fatal("lookup during open breaker succeeded")
	}

	// Replica heals; after the cooldown one probe closes the breaker.
	failing.Store(false)
	time.Sleep(100 * time.Millisecond)
	status, body, err := g.Lookup(context.Background(), addr)
	if err != nil || status != http.StatusOK {
		t.Fatalf("probe lookup: status=%d err=%v", status, err)
	}
	if !bytes.Contains(body, []byte(addr.String())) {
		t.Fatalf("probe lookup body: %s", body)
	}
	if got := g.Health().Replicas[0].Breaker; got != "closed" {
		t.Fatalf("breaker after successful probe: %s, want closed", got)
	}
}

// --- satellite 2: cancellation through the hedged request path ---

// stallServer answers only when its request context dies, recording that
// the abort actually reached it.
type stallServer struct {
	srv      *httptest.Server
	started  chan struct{} // one tick per accepted request
	aborted  chan struct{} // one tick per request whose ctx was cancelled
	deadline atomic.Value  // last observed DeadlineHeader value (string)
}

func newStallServer(t *testing.T) *stallServer {
	s := &stallServer{started: make(chan struct{}, 8), aborted: make(chan struct{}, 8)}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.deadline.Store(r.Header.Get(DeadlineHeader))
		s.started <- struct{}{}
		<-r.Context().Done()
		s.aborted <- struct{}{}
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func waitTick(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(5 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

func TestGatewayCancelMidHedgeAbortsBothTries(t *testing.T) {
	a, b := newStallServer(t), newStallServer(t)
	topo := Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{a.srv.URL, b.srv.URL}}}}
	g, err := NewGateway(GatewayConfig{
		Topology:   topo,
		Client:     &http.Client{}, // no flat timeout; cancellation governs
		Attempts:   1,
		HedgeDelay: 10 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.Lookup(ctx, netip.MustParseAddr("10.0.0.9"))
		errc <- err
	}()

	// First try fires, then the hedge: both replicas are now serving.
	waitTick(t, a.started, "first try")
	waitTick(t, b.started, "hedge try")

	// Client disconnects: BOTH in-flight requests must abort.
	cancel()
	waitTick(t, a.aborted, "first try abort")
	waitTick(t, b.aborted, "hedge try abort")
	if err := <-errc; err == nil {
		t.Fatal("cancelled lookup reported success")
	}
}

func TestGatewayWinnerCancelsLosingHedge(t *testing.T) {
	loser := newStallServer(t)
	winner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cellmap.WriteJSON(w, cellmap.LookupResponse{Addr: r.URL.Query().Get("ip"), Generation: 1})
	}))
	defer winner.Close()

	topo := Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{loser.srv.URL, winner.URL}}}}
	g, err := NewGateway(GatewayConfig{
		Topology:   topo,
		Client:     &http.Client{},
		Attempts:   1,
		HedgeDelay: 10 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pin the stalling replica first in rank so it gets the initial try
	// and the healthy one the hedge.
	g.replicas[0][0].up.Store(true)

	status, _, err := g.Lookup(context.Background(), netip.MustParseAddr("10.0.0.9"))
	if err != nil || status != http.StatusOK {
		t.Fatalf("lookup: status=%d err=%v", status, err)
	}
	// The losing try must be aborted by the winner — the parent context
	// (Background) never dies, so only per-try cancellation explains it.
	waitTick(t, loser.aborted, "loser abort after winner")
}

// --- deadline propagation gateway → shard ---

func TestGatewayPropagatesDeadline(t *testing.T) {
	rep := newStallServer(t)
	topo := Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{rep.srv.URL}}}}
	g, err := NewGateway(GatewayConfig{Topology: topo, Client: &http.Client{}, Attempts: 1})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(300 * time.Millisecond)
	ctx, cancel := context.WithDeadline(context.Background(), deadline)
	defer cancel()
	if _, _, err := g.Lookup(ctx, netip.MustParseAddr("10.0.0.9")); err == nil {
		t.Fatal("stalled lookup succeeded")
	}
	raw, _ := rep.deadline.Load().(string)
	if raw == "" {
		t.Fatal("no deadline header propagated")
	}
	micros, err := strconv.ParseInt(raw, 10, 64)
	if err != nil {
		t.Fatalf("bad deadline header %q: %v", raw, err)
	}
	if got := time.UnixMicro(micros); got.Sub(deadline).Abs() > time.Millisecond {
		t.Fatalf("propagated deadline %v, want %v", got, deadline)
	}
}

func TestShardRefusesExpiredDeadline(t *testing.T) {
	f := newTestFleet(t, 1, 1, mkMap(t, "2016-w34", genOneEntries()), 1)
	url := f.srvs[0][0].URL
	addr := addrOwnedBy(t, f.ring, 0)

	req, _ := http.NewRequest(http.MethodGet, url+"/v1/lookup?ip="+addr.String(), nil)
	req.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(-time.Second).UnixMicro(), 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("expired deadline: status %d, want 504", resp.StatusCode)
	}

	// A live deadline is honored normally.
	req, _ = http.NewRequest(http.MethodGet, url+"/v1/lookup?ip="+addr.String(), nil)
	req.Header.Set(DeadlineHeader, strconv.FormatInt(time.Now().Add(time.Minute).UnixMicro(), 10))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("live deadline: status %d, want 200", resp.StatusCode)
	}
}

// --- admission control on shard nodes ---

func TestShardAdmissionControlSheds(t *testing.T) {
	sw := cellmap.NewSwappable(mkMap(t, "2016-w34", genOneEntries()), 1)
	ring := NewRing(1, DefaultVNodes)
	view, err := NewShardView(sw, ring, 0)
	if err != nil {
		t.Fatal(err)
	}
	view.SetMaxInflight(1)
	mux := http.NewServeMux()
	MountShard(mux, view)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	// Hold the only admission slot: a batch POST blocks reading its body
	// (the slot is taken before the body is consumed).
	pr, pw := io.Pipe()
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/lookup/batch", pr)
	req.Header.Set("Content-Type", "application/json")
	done := make(chan *http.Response, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		done <- resp
	}()

	// The slot is held once the handler is in DecodeBatch; poll until the
	// second request sheds.
	var shed *http.Response
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.0.9")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			shed = resp
			break
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("unexpected status %d while waiting for shed", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			t.Fatal("admission control never shed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := shed.Header.Get("Retry-After"); got == "" {
		t.Fatal("shed response missing Retry-After")
	}

	// Release the slot; the node serves again.
	fmt.Fprint(pw, `{"ips":["10.0.0.9"]}`)
	pw.Close()
	if resp := <-done; resp == nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("held batch request: %+v", resp)
	}
	resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.0.9")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release lookup: status %d", resp.StatusCode)
	}
}

// --- degraded batch mode ---

// splitBySpan picks covered addresses until the batch spans all shards.
func batchSpanningAll(t *testing.T, ring *Ring, shards int) []netip.Addr {
	t.Helper()
	var out []netip.Addr
	seen := make(map[int]bool)
	for _, a := range coveredAddrs() {
		out = append(out, a)
		seen[ring.Owner(a)] = true
	}
	if len(seen) != shards {
		t.Fatalf("covered addresses span %d shards, want %d", len(seen), shards)
	}
	return out
}

func postBatch(t *testing.T, url string, addrs []netip.Addr) (*http.Response, cellmap.BatchResponse) {
	t.Helper()
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	payload, _ := json.Marshal(cellmap.BatchRequest{IPs: ips})
	resp, err := http.Post(url+"/v1/lookup/batch", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var br cellmap.BatchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			t.Fatalf("decode batch response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp, br
}

func TestGatewayDegradedBatchMode(t *testing.T) {
	const shards = 3
	m := mkMap(t, "2016-w34", genOneEntries())

	// Strict fleet: one dark shard fails the whole batch (the default,
	// unchanged behavior).
	strict := newTestFleet(t, shards, 1, m, 1)
	_, strictSrv, _ := strict.gateway(t, func(c *GatewayConfig) {
		c.Attempts = 1
		c.HedgeDelay = 5 * time.Millisecond
	})
	addrs := batchSpanningAll(t, strict.ring, shards)
	strict.kill(2, 0)
	resp, _ := postBatch(t, strictSrv.URL, addrs)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("strict mode served a batch with a dark shard: %d", resp.StatusCode)
	}

	// Degraded fleet: same outage, partial answer with explicit markers.
	deg := newTestFleet(t, shards, 1, m, 1)
	_, degSrv, _ := deg.gateway(t, func(c *GatewayConfig) {
		c.Attempts = 1
		c.HedgeDelay = 5 * time.Millisecond
		c.AllowDegraded = true
		c.CacheSize = 256
	})
	addrs = batchSpanningAll(t, deg.ring, shards)
	deg.kill(2, 0)

	check := func(br cellmap.BatchResponse) (degraded int) {
		if !br.Degraded {
			t.Fatal("response not marked degraded")
		}
		for i, r := range br.Results {
			owner := deg.ring.Owner(addrs[i])
			if owner == 2 {
				if !r.Degraded {
					t.Fatalf("addr %s (dark shard) not marked degraded: %+v", addrs[i], r)
				}
				if r.Cellular || r.Prefix != "" || r.Generation != 0 {
					t.Fatalf("degraded placeholder carries data: %+v", r)
				}
				degraded++
			} else {
				if r.Degraded {
					t.Fatalf("addr %s (live shard %d) marked degraded", addrs[i], owner)
				}
				if r.Addr != addrs[i].String() {
					t.Fatalf("result %d out of order: %s != %s", i, r.Addr, addrs[i])
				}
			}
		}
		if degraded == 0 {
			t.Fatal("no degraded placeholders in a batch spanning the dark shard")
		}
		if br.Generation != 1 {
			t.Fatalf("degraded batch generation %d, want 1", br.Generation)
		}
		return degraded
	}

	resp, br := postBatch(t, degSrv.URL, addrs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded batch: status %d", resp.StatusCode)
	}
	first := check(br)

	// Degraded placeholders must not be cached: the second batch (live
	// results now cache hits) still reports its dark addresses degraded at
	// the response level — a cached placeholder would surface as a silent
	// non-degraded miss instead.
	resp, br = postBatch(t, degSrv.URL, addrs)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second degraded batch: status %d", resp.StatusCode)
	}
	if got := check(br); got != first {
		t.Fatalf("second batch degraded %d addrs, first %d", got, first)
	}

	// A batch aimed entirely at the dark shard is a majority-dark batch:
	// strict failure even in degraded mode.
	var darkOnly []netip.Addr
	for _, a := range addrs {
		if deg.ring.Owner(a) == 2 {
			darkOnly = append(darkOnly, a)
		}
	}
	resp, _ = postBatch(t, degSrv.URL, darkOnly)
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("single-shard dark batch served degraded: %d", resp.StatusCode)
	}
}
