package cluster

import (
	"math/rand/v2"
	"net/netip"
	"testing"

	"cellspot/internal/netaddr"
)

// sampleBlocks yields a deterministic spread of v4 and v6 unit blocks.
func sampleBlocks(n int) []netaddr.Block {
	rng := rand.New(rand.NewPCG(7, 11))
	out := make([]netaddr.Block, 0, n)
	for i := 0; i < n; i++ {
		if i%4 == 3 {
			out = append(out, netaddr.V6Block(rng.Uint64()))
		} else {
			out = append(out, netaddr.Block{Fam: netaddr.IPv4, Key: rng.Uint64() & 0xffffff})
		}
	}
	return out
}

func TestRingDeterministic(t *testing.T) {
	a := NewRing(5, 64)
	b := NewRing(5, 64)
	for _, blk := range sampleBlocks(2000) {
		if a.OwnerBlock(blk) != b.OwnerBlock(blk) {
			t.Fatalf("two identically-built rings disagree on %v", blk)
		}
	}
	// Owner must agree with OwnerBlock through the address path.
	addr := netip.MustParseAddr("203.0.113.77")
	if a.Owner(addr) != a.OwnerBlock(netaddr.BlockFromAddr(addr)) {
		t.Error("Owner and OwnerBlock disagree")
	}
}

func TestRingCoverageAndBalance(t *testing.T) {
	const shards = 3
	r := NewRing(shards, 64)
	counts := make([]int, shards)
	blocks := sampleBlocks(12000)
	for _, blk := range blocks {
		s := r.OwnerBlock(blk)
		if s < 0 || s >= shards {
			t.Fatalf("owner %d out of range", s)
		}
		counts[s]++
	}
	// With 64 vnodes per shard the partition is close to even; a shard
	// below a third of its fair share means the ring is broken.
	fair := len(blocks) / shards
	for s, c := range counts {
		if c < fair/3 {
			t.Errorf("shard %d owns %d of %d blocks (fair %d): ring badly imbalanced",
				s, c, len(blocks), fair)
		}
	}
}

// TestRingStability pins the consistent-hashing property: growing the
// fleet by one shard must move only a minority of the keyspace, not
// reshuffle it wholesale (mod-N hashing would move ~3/4 at N=3→4).
func TestRingStability(t *testing.T) {
	before := NewRing(3, 64)
	after := NewRing(4, 64)
	blocks := sampleBlocks(12000)
	moved := 0
	for _, blk := range blocks {
		a, b := before.OwnerBlock(blk), after.OwnerBlock(blk)
		if a != b {
			moved++
			// Every moved key must land on the new shard; keys moving
			// between old shards would mean placement is not consistent.
			if b != 3 {
				t.Fatalf("block %v moved %d -> %d, not to the new shard", blk, a, b)
			}
		}
	}
	if frac := float64(moved) / float64(len(blocks)); frac > 0.45 {
		t.Errorf("adding a 4th shard moved %.0f%% of the keyspace, want ~25%%", frac*100)
	}
}

func TestRingReplicaAddressesIrrelevant(t *testing.T) {
	t1 := Topology{Format: TopologyFormat, Shards: []ShardSpec{
		{Replicas: []string{"http://a:1"}}, {Replicas: []string{"http://b:1"}},
	}}
	t2 := Topology{Format: TopologyFormat, Shards: []ShardSpec{
		{Replicas: []string{"http://x:9", "http://y:9"}}, {Replicas: []string{"http://z:9"}},
	}}
	r1, r2 := t1.Ring(), t2.Ring()
	for _, blk := range sampleBlocks(1000) {
		if r1.OwnerBlock(blk) != r2.OwnerBlock(blk) {
			t.Fatal("replica addresses influenced key placement")
		}
	}
}
