package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cellspot/internal/cellmap"
	"cellspot/internal/history"
	"cellspot/internal/obs"
	"cellspot/internal/snapshot"
)

// historyFixture is one shard node with a two-generation snapshot store:
// generation 1 is the old dataset, generation 2 the current one, with
// every shared prefix's metadata differing so answers are attributable.
type historyFixture struct {
	store *snapshot.Store
	ix    *history.Index
	sw    *cellmap.Swappable
	srv   *httptest.Server
	ring  *Ring
}

func newHistoryFixture(t *testing.T, shards, shardID int) *historyFixture {
	t.Helper()
	store, err := snapshot.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	publish := func(m *cellmap.Map) {
		t.Helper()
		if _, err := store.Publish(func(dir string) error {
			f, err := os.Create(filepath.Join(dir, history.DefaultMapFile))
			if err != nil {
				return err
			}
			if err := m.Write(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			return history.WriteMeta(dir, history.GenMeta{
				Entries: m.Len(), Period: m.Period, Threshold: m.Threshold,
			})
		}); err != nil {
			t.Fatal(err)
		}
	}
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	publish(m1)
	publish(m2)

	ix, err := history.New(history.Config{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	ring := NewRing(shards, DefaultVNodes)
	sw := cellmap.NewSwappable(m2, 2)
	view, err := NewShardView(sw, ring, shardID)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	MountShardHistory(mux, view, ix)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return &historyFixture{store: store, ix: ix, sw: sw, srv: srv, ring: ring}
}

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestGatewayGenRoutesAroundCache pins the cache-bypass invariant: a gen=N
// lookup is never answered from the response cache and never stored into
// it, in either order relative to current-generation traffic.
func TestGatewayGenRoutesAroundCache(t *testing.T) {
	fx := newHistoryFixture(t, 1, 0)
	gw, err := NewGateway(GatewayConfig{
		Topology:  Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{fx.srv.URL}}}},
		Registry:  obs.NewRegistry(),
		CacheSize: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.CheckNow(context.Background())
	gmux := http.NewServeMux()
	gw.Mount(gmux)
	gsrv := httptest.NewServer(gmux)
	defer gsrv.Close()

	ip := "10.0.3.9" // covered in both generations with differing metadata
	lookup := func(url string) cellmap.LookupResponse {
		t.Helper()
		code, body := getBody(t, url)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", url, code, body)
		}
		var lr cellmap.LookupResponse
		if err := json.Unmarshal(body, &lr); err != nil {
			t.Fatal(err)
		}
		return lr
	}

	// 1. A gen=1 lookup on a cold cache answers from generation 1.
	old := lookup(gsrv.URL + "/v1/lookup?ip=" + ip + "&gen=1")
	if old.Generation != 1 || old.Ratio != 0.28 {
		t.Fatalf("gen=1 answer = %+v", old)
	}
	// 2. If that answer had been cached, this current lookup would serve
	// generation-1 data. It must see generation 2.
	cur := lookup(gsrv.URL + "/v1/lookup?ip=" + ip)
	if cur.Generation != 2 || cur.Ratio != 0.68 {
		t.Fatalf("current answer after gen lookup = %+v", cur)
	}
	// 3. Now the cache holds the current answer; a gen=1 lookup must still
	// bypass the cache read and answer from generation 1.
	again := lookup(gsrv.URL + "/v1/lookup?ip=" + ip + "&gen=1")
	if again.Generation != 1 || again.Ratio != 0.28 {
		t.Fatalf("gen=1 after caching current = %+v", again)
	}

	// Malformed gen fails at the gateway.
	for _, g := range []string{"0", "x"} {
		if code, _ := getBody(t, gsrv.URL+"/v1/lookup?ip="+ip+"&gen="+g); code != http.StatusBadRequest {
			t.Errorf("gen=%s: status %d, want 400", g, code)
		}
	}
	// A pruned/unknown generation's 404 is proxied through, body intact.
	code, body := getBody(t, gsrv.URL+"/v1/lookup?ip="+ip+"&gen=99")
	if code != http.StatusNotFound {
		t.Fatalf("gen=99: status %d (%s)", code, body)
	}
	var nre history.NotRetainedError
	if err := json.Unmarshal(body, &nre); err != nil || nre.OldestGeneration != 1 {
		t.Errorf("proxied 404 body = %s (%v)", body, err)
	}

	// A batch with a gen parameter is rejected at the gateway edge.
	resp, err := http.Post(gsrv.URL+"/v1/lookup/batch?gen=1", "application/json",
		strings.NewReader(`{"ips":["`+ip+`"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("batch with gen: status %d, want 400", resp.StatusCode)
	}
}

func TestGatewayHistoryForwarding(t *testing.T) {
	fx := newHistoryFixture(t, 1, 0)
	gw, err := NewGateway(GatewayConfig{
		Topology: Topology{Format: TopologyFormat, Shards: []ShardSpec{{Replicas: []string{fx.srv.URL}}}},
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.CheckNow(context.Background())
	gmux := http.NewServeMux()
	gw.Mount(gmux)
	gsrv := httptest.NewServer(gmux)
	defer gsrv.Close()

	// 10.1.0.9 exists only in generation 2: the timeline shows the block
	// appearing.
	code, body := getBody(t, gsrv.URL+"/v1/history?ip=10.1.0.9")
	if code != http.StatusOK {
		t.Fatalf("history: status %d (%s)", code, body)
	}
	var tl history.TimelineResponse
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatal(err)
	}
	if tl.Examined != 2 || len(tl.Changes) != 2 {
		t.Fatalf("timeline = %+v", tl)
	}
	if tl.Changes[0].Cellular || !tl.Changes[1].Cellular || tl.Changes[1].Generation != 2 || tl.Changes[1].ASN != 300 {
		t.Errorf("changes = %+v", tl.Changes)
	}

	if code, _ := getBody(t, gsrv.URL+"/v1/history"); code != http.StatusBadRequest {
		t.Errorf("missing ip: status %d, want 400", code)
	}
}

// TestShardHistoryOwnership: history routes refuse foreign addresses with
// 421 before touching the history index, like every shard route.
func TestShardHistoryOwnership(t *testing.T) {
	fx := newHistoryFixture(t, 3, 0)
	foreign := addrOwnedBy(t, fx.ring, 1)
	for _, path := range []string{
		"/v1/lookup?ip=" + foreign.String() + "&gen=1",
		"/v1/history?ip=" + foreign.String(),
	} {
		code, body := getBody(t, fx.srv.URL+path)
		if code != http.StatusMisdirectedRequest {
			t.Errorf("%s: status %d, want 421 (%s)", path, code, body)
		}
	}
	owned := addrOwnedBy(t, fx.ring, 0)
	code, body := getBody(t, fx.srv.URL+"/v1/lookup?ip="+owned.String()+"&gen=1")
	if code != http.StatusOK {
		t.Errorf("owned gen lookup: status %d (%s)", code, body)
	}
	var lr cellmap.LookupResponse
	if err := json.Unmarshal(body, &lr); err != nil || lr.Generation != 1 {
		t.Errorf("owned gen lookup = %s (%v)", body, err)
	}
	code, body = getBody(t, fx.srv.URL+"/v1/history?ip="+owned.String())
	if code != http.StatusOK {
		t.Errorf("owned history: status %d (%s)", code, body)
	}
	// /v1/generations rides along on shard nodes.
	code, body = getBody(t, fx.srv.URL+"/v1/generations")
	if code != http.StatusOK {
		t.Fatalf("generations: status %d", code)
	}
	var gens struct {
		Generations []history.GenInfo `json:"generations"`
	}
	if err := json.Unmarshal(body, &gens); err != nil || len(gens.Generations) != 2 {
		t.Errorf("generations body = %s (%v)", body, err)
	}
}
