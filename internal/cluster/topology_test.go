package cluster

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const validTopology = `{
  "format": "cellspot-topology/1",
  "vnodes": 32,
  "shards": [
    {"replicas": ["http://127.0.0.1:9001", "http://127.0.0.1:9002"]},
    {"replicas": ["http://127.0.0.1:9003", "http://127.0.0.1:9004"]},
    {"replicas": ["http://127.0.0.1:9005"]}
  ]
}`

func TestParseTopology(t *testing.T) {
	topo, err := ParseTopology(strings.NewReader(validTopology))
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumShards() != 3 || topo.VNodes != 32 {
		t.Errorf("topology = %+v", topo)
	}
	if len(topo.Shards[0].Replicas) != 2 || len(topo.Shards[2].Replicas) != 1 {
		t.Errorf("replicas = %+v", topo.Shards)
	}
}

func TestLoadTopology(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	if err := os.WriteFile(path, []byte(validTopology), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := LoadTopology(path)
	if err != nil {
		t.Fatal(err)
	}
	if topo.NumShards() != 3 {
		t.Errorf("shards = %d", topo.NumShards())
	}
	if _, err := LoadTopology(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestTopologyValidation(t *testing.T) {
	cases := map[string]string{
		"wrong format":  `{"format":"nope/9","shards":[{"replicas":["http://a:1"]}]}`,
		"no shards":     `{"format":"cellspot-topology/1","shards":[]}`,
		"empty replica": `{"format":"cellspot-topology/1","shards":[{"replicas":[]}]}`,
		"bad scheme":    `{"format":"cellspot-topology/1","shards":[{"replicas":["ftp://a:1"]}]}`,
		"no host":       `{"format":"cellspot-topology/1","shards":[{"replicas":["http://"]}]}`,
		"has path":      `{"format":"cellspot-topology/1","shards":[{"replicas":["http://a:1/v1"]}]}`,
		"duplicate":     `{"format":"cellspot-topology/1","shards":[{"replicas":["http://a:1"]},{"replicas":["http://a:1"]}]}`,
		"unknown field": `{"format":"cellspot-topology/1","shards":[{"replicas":["http://a:1"]}],"extra":1}`,
		"neg vnodes":    `{"format":"cellspot-topology/1","vnodes":-3,"shards":[{"replicas":["http://a:1"]}]}`,
	}
	for name, doc := range cases {
		if _, err := ParseTopology(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestParseShardID(t *testing.T) {
	topo, err := ParseTopology(strings.NewReader(validTopology))
	if err != nil {
		t.Fatal(err)
	}
	if id, err := ParseShardID("1/3", topo); err != nil || id != 1 {
		t.Errorf("1/3 = %d, %v", id, err)
	}
	for _, bad := range []string{"", "1", "x/3", "1/x", "1/4", "3/3", "-1/3"} {
		if _, err := ParseShardID(bad, topo); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
