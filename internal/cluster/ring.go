package cluster

import (
	"fmt"
	"net/netip"
	"sort"

	"cellspot/internal/netaddr"
)

// Ring is a deterministic consistent-hash partitioning of the prefix
// keyspace across shards. Each shard projects vnodes points onto a 64-bit
// hash circle; a unit block (IPv4 /24 or IPv6 /48) belongs to the shard
// owning the first point at or after the block's hash.
//
// Determinism is the load-bearing property: the ring is a pure function
// of (shards, vnodes), so every gateway and every shard node computes the
// identical Owner for every address with no coordination. Replica
// addresses are deliberately not hashed — replacing a replica moves no
// keys, and growing N shards to N+1 moves only the ~1/(N+1) of the
// keyspace that the new shard's points capture.
type Ring struct {
	points []ringPoint // sorted by hash
	shards int
	vnodes int
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for the given shard and virtual-node counts.
func NewRing(shards, vnodes int) *Ring {
	if shards <= 0 {
		panic(fmt.Sprintf("cluster: NewRing with %d shards", shards))
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &Ring{
		points: make([]ringPoint, 0, shards*vnodes),
		shards: shards,
		vnodes: vnodes,
	}
	var key [16]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			putUint64(key[0:8], uint64(s))
			putUint64(key[8:16], uint64(v))
			r.points = append(r.points, ringPoint{hash: fnv1a(key[:]), shard: s})
		}
	}
	// Ties broken by shard id so equal hashes still sort identically on
	// every node (fnv collisions are unlikely but must not be ambiguous).
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count N.
func (r *Ring) Shards() int { return r.shards }

// OwnerBlock returns the shard owning a unit block.
func (r *Ring) OwnerBlock(b netaddr.Block) int {
	var key [9]byte
	key[0] = byte(b.Fam)
	putUint64(key[1:9], b.Key)
	h := fnv1a(key[:])
	// First point with hash >= h, wrapping to points[0].
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// Owner returns the shard owning the unit block containing addr. This is
// the Shard(addr) function every node agrees on.
func (r *Ring) Owner(addr netip.Addr) int {
	return r.OwnerBlock(netaddr.BlockFromAddr(addr))
}

func putUint64(dst []byte, v uint64) {
	for i := 0; i < 8; i++ {
		dst[i] = byte(v >> (8 * (7 - i)))
	}
}

// fnv1a is the 64-bit FNV-1a hash, inlined so ring placement can never
// drift with a library change.
func fnv1a(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
