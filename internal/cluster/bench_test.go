package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"cellspot/internal/cellmap"
)

// BenchmarkGatewayBatch measures scatter-gather batch lookup throughput
// through the full HTTP path: gateway fan-out to a 3-shard × 2-replica
// in-process fleet and merge, 128 addresses per batch. Reported addrs/s
// is the end-to-end lookup rate one gateway sustains serially; concurrent
// clients scale it until the fleet saturates.
func BenchmarkGatewayBatch(b *testing.B) {
	m := mkMap(b, "2016-12", genTwoEntries())
	f := newTestFleet(b, 3, 2, m, 1)
	g, srv, _ := f.gateway(b, nil)
	g.CheckNow(context.Background())

	const batchSize = 128
	ips := make([]string, batchSize)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.%d.%d", i%16, i)
	}
	payload, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Post(srv.URL+"/v1/lookup/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(batchSize*b.N)/b.Elapsed().Seconds(), "addrs/s")
}
