package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"cellspot/internal/cellmap"
)

// BenchmarkGatewayBatch measures scatter-gather batch lookup throughput
// through the full HTTP path: gateway fan-out to a 3-shard × 2-replica
// in-process fleet and merge, 128 addresses per batch. Reported addrs/s
// is the end-to-end lookup rate one gateway sustains serially; concurrent
// clients scale it until the fleet saturates.
//
// The nocache variant is the PR 4 baseline (every batch fans out); cache
// is the steady state with the generation-keyed response cache warm, where
// repeat batches never leave the gateway.
func BenchmarkGatewayBatch(b *testing.B) {
	b.Run("nocache", func(b *testing.B) { benchGatewayBatch(b, 0) })
	b.Run("cache", func(b *testing.B) { benchGatewayBatch(b, 1024) })
}

func benchGatewayBatch(b *testing.B, cacheSize int) {
	m := mkMap(b, "2016-12", genTwoEntries())
	f := newTestFleet(b, 3, 2, m, 1)
	g, srv, _ := f.gateway(b, func(c *GatewayConfig) {
		c.CacheSize = cacheSize
	})
	g.CheckNow(context.Background())

	const batchSize = 128
	ips := make([]string, batchSize)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.0.%d.%d", i%16, i)
	}
	payload, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{Timeout: 10 * time.Second}

	do := func() {
		resp, err := client.Post(srv.URL+"/v1/lookup/batch", "application/json", bytes.NewReader(payload))
		if err != nil {
			b.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	do() // warm the cache (and the connections) outside the timed region

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		do()
	}
	b.StopTimer()
	b.ReportMetric(float64(batchSize*b.N)/b.Elapsed().Seconds(), "addrs/s")
}
