package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
)

// GatewayConfig parameterizes a Gateway. Zero values take the defaults
// noted per field.
type GatewayConfig struct {
	// Topology describes the fleet (required, must validate).
	Topology Topology
	// Client issues all shard traffic. Default: 2s total timeout.
	Client *http.Client
	// Registry receives the gateway metrics; nil disables them.
	Registry *obs.Registry
	// Attempts is how many full replica passes a request gets before the
	// gateway gives up on a shard. Default 2.
	Attempts int
	// Backoff is the sleep before the second pass, doubling per pass.
	// Default 25ms.
	Backoff time.Duration
	// HedgeDelay is the wait before hedging to the next replica while the
	// shard's latency tracker is still cold. Once warm, the shard's p95
	// (clamped to [1ms, 250ms]) replaces it. Default 25ms.
	HedgeDelay time.Duration
	// BatchLimit caps batch fan-out requests. Default
	// cellmap.DefaultBatchLimit.
	BatchLimit int
	// CacheSize is the capacity (addresses) of the generation-keyed
	// response cache; 0 disables caching. The cache holds answers of the
	// newest generation the gateway has observed and is invalidated
	// wholesale the moment a newer generation appears.
	CacheSize int
	// GenRounds is how many reconciliation rounds a mixed-generation
	// batch gets before failing. Default 3.
	GenRounds int
	// HealthInterval is the health-check cadence. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 500ms.
	HealthTimeout time.Duration
	// BreakerThreshold is how many consecutive request-path failures open a
	// replica's circuit breaker. Default 5; negative disables breakers.
	BreakerThreshold int
	// BreakerCooldown is how long an open breaker refuses traffic before
	// letting a half-open probe through. Default 1s.
	BreakerCooldown time.Duration
	// BreakerLatencyBudget, when positive, counts successful answers slower
	// than this as breaker failures (brownout detection). Default off.
	BreakerLatencyBudget time.Duration
	// AllowDegraded opts the gateway into degraded batch mode: when a
	// minority of a batch's shards cannot answer, the batch succeeds with
	// per-address placeholders marked "degraded" instead of failing whole.
	// Default false — strict whole-batch failure, the historical behavior.
	AllowDegraded bool
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

func (c *GatewayConfig) fillDefaults() {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if c.Attempts <= 0 {
		c.Attempts = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 25 * time.Millisecond
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = cellmap.DefaultBatchLimit
	}
	if c.GenRounds <= 0 {
		c.GenRounds = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 5
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
}

// Gateway fronts the shard fleet: it owns the routing decision (via the
// ring), replica selection, retries, hedging, and the batch
// scatter-gather with its generation-consistency guard. Gateways are
// stateless with respect to the dataset — they hold no map, only the
// topology and a continuously refreshed health view — so any number of
// them can run behind a load balancer.
type Gateway struct {
	cfg      GatewayConfig
	ring     *Ring
	replicas [][]*replica // [shard][replica]
	rr       []atomic.Uint64
	lat      []*latencyTracker
	cache    *lookupCache // nil when CacheSize is 0

	mRequests  []*obs.Counter // per shard
	mErrors    []*obs.Counter
	mHedges    []*obs.Counter
	mFanout    *obs.Histogram
	mConflicts *obs.Counter
	mDegraded  *obs.Counter
}

// NewGateway validates the topology and builds a gateway. Call Run (or
// CheckNow) to populate the health view; until then every replica counts
// as down and requests fall back to blind ordering.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	g := &Gateway{
		cfg:  cfg,
		ring: cfg.Topology.Ring(),
		rr:   make([]atomic.Uint64, cfg.Topology.NumShards()),
		lat:  make([]*latencyTracker, cfg.Topology.NumShards()),
	}
	reg := cfg.Registry
	if cfg.CacheSize > 0 {
		g.cache = newLookupCache(cfg.CacheSize, reg)
	}
	g.mFanout = reg.Histogram("cluster_fanout_seconds",
		"Batch scatter-gather wall time in seconds.", obs.DefBuckets)
	g.mConflicts = reg.Counter("cluster_generation_conflicts_total",
		"Batch rounds that observed mixed shard generations.")
	g.mDegraded = reg.Counter("cluster_degraded_batches_total",
		"Batches answered partially because a minority of shards was dark.")
	for s, spec := range cfg.Topology.Shards {
		g.lat[s] = &latencyTracker{}
		label := obs.L("shard", strconv.Itoa(s))
		g.mRequests = append(g.mRequests, reg.Counter("cluster_shard_requests_total",
			"Requests sent to shard replicas.", label))
		g.mErrors = append(g.mErrors, reg.Counter("cluster_shard_errors_total",
			"Failed requests to shard replicas.", label))
		g.mHedges = append(g.mHedges, reg.Counter("cluster_hedged_requests_total",
			"Hedge requests fired after the latency threshold.", label))
		var reps []*replica
		for j, u := range spec.Replicas {
			rep := &replica{
				shard: s,
				index: j,
				url:   strings.TrimSuffix(u, "/"),
				mUp: reg.Gauge("cluster_replica_up",
					"1 when the replica's last health probe succeeded.",
					label, obs.L("replica", strconv.Itoa(j))),
				mGen: reg.Gauge("cluster_replica_generation",
					"Map generation the replica last reported.",
					label, obs.L("replica", strconv.Itoa(j))),
			}
			if cfg.BreakerThreshold > 0 {
				rep.br = newBreaker(int64(cfg.BreakerThreshold), cfg.BreakerCooldown,
					cfg.BreakerLatencyBudget,
					reg.Gauge("cluster_breaker_state",
						"Replica circuit breaker: 0 closed, 1 half-open, 2 open.",
						label, obs.L("replica", strconv.Itoa(j))))
			}
			reps = append(reps, rep)
		}
		g.replicas = append(g.replicas, reps)
	}
	return g, nil
}

// Ring exposes the gateway's partitioning (shared with shard nodes).
func (g *Gateway) Ring() *Ring { return g.ring }

// replicaOrder ranks a shard's replicas for one request: healthy replicas
// at or above minGen first, then healthy laggards, then everything else —
// each class rotated round-robin so load spreads across equals. minGen 0
// means "any generation". Replicas whose circuit breaker refuses traffic
// are excluded — unless that would leave nothing, in which case they all
// come back (a long-shot attempt beats refusing the request outright, and
// keeps the all-replicas-down error path intact).
func (g *Gateway) replicaOrder(shard int, minGen uint64) []*replica {
	reps := g.replicas[shard]
	n := len(reps)
	start := int(g.rr[shard].Add(1)) % n
	now := time.Now()
	order := make([]*replica, 0, n)
	refused := make([]*replica, 0, n)
	for class := 0; class < 3 && len(order)+len(refused) < n; class++ {
		for k := 0; k < n; k++ {
			rep := reps[(start+k)%n]
			up := rep.up.Load()
			var c int
			switch {
			case up && rep.gen.Load() >= minGen:
				c = 0
			case up:
				c = 1
			default:
				c = 2
			}
			if c != class {
				continue
			}
			if rep.br.allow(now) {
				order = append(order, rep)
			} else {
				refused = append(refused, rep)
			}
		}
	}
	if len(order) == 0 {
		return refused
	}
	return order
}

// tryResult is one replica attempt's outcome.
type tryResult struct {
	status int
	body   []byte
	err    error
	rep    *replica
	dur    time.Duration
}

// DeadlineHeader carries the gateway's request deadline to shard nodes as
// unix microseconds, so a shard can refuse work whose caller is already
// gone instead of computing an answer nobody will read.
const DeadlineHeader = "X-Cellspot-Deadline"

// issueOne sends build(rep), reports into ch, and owns the attempt's
// bookkeeping (error counters, consecutive-failure count, breaker verdict,
// latency sample, health flip on transport errors). Recording lives here —
// not in the receive loop — because hedging abandons losers, and an
// abandoned attempt's outcome must still be folded in. The one exception:
// an attempt cancelled from outside (caller gone, or a hedge sibling won)
// says nothing about the replica, so it records no verdict at all.
func (g *Gateway) issueOne(ctx context.Context, rep *replica, build func(url string) (*http.Request, error), ch chan<- tryResult) {
	g.mRequests[rep.shard].Inc()
	start := time.Now()
	res := g.doOne(ctx, rep, build)
	res.dur = time.Since(start)
	if ctx.Err() != nil && res.err != nil {
		rep.br.abandon()
	} else if res.ok() {
		rep.fails.Store(0)
		rep.br.record(true, res.dur, time.Now())
		g.lat[rep.shard].observe(res.dur)
	} else {
		g.mErrors[rep.shard].Inc()
		rep.fails.Add(1)
		rep.br.record(false, res.dur, time.Now())
		if res.err != nil {
			// Transport-level failure: flip the health view now instead of
			// waiting for the next probe.
			g.markDown(rep)
		}
	}
	ch <- res // buffered to the launch count; never blocks
}

func (g *Gateway) doOne(ctx context.Context, rep *replica, build func(url string) (*http.Request, error)) tryResult {
	req, err := build(rep.url)
	if err != nil {
		return tryResult{err: err, rep: rep}
	}
	if dl, ok := ctx.Deadline(); ok {
		req.Header.Set(DeadlineHeader, strconv.FormatInt(dl.UnixMicro(), 10))
	}
	resp, err := g.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		return tryResult{err: err, rep: rep}
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return tryResult{err: err, rep: rep}
	}
	return tryResult{status: resp.StatusCode, body: body, rep: rep}
}

// ok reports whether an attempt's answer should be served. 4xx answers
// other than 421 are served (they are the client's error); 421 means the
// fleet disagrees about ownership and trying another replica is useless
// but serving it would be wrong, so it counts as a failure. 5xx and
// transport errors count as failures and move on to the next replica.
func (t tryResult) ok() bool {
	return t.err == nil && t.status < 500 && t.status != http.StatusMisdirectedRequest
}

// hedgedTry runs one pass over order: fire the first replica, hedge to
// the next after the shard's hedge delay, and keep escalating — each
// subsequent hedge waits the same delay. The first serveable answer wins.
// Every try runs under its own cancellable context, so when a winner
// returns — or the caller disconnects — the losing in-flight requests are
// aborted instead of running to completion against busy replicas.
//
// Launching consults each replica's circuit breaker (acquire, the mutating
// check): a refused replica is skipped. If nothing at all is acquirable,
// the first replica is tried anyway — a last-resort attempt keeps the
// request path honest (a real error, not a synthetic refusal) when a whole
// shard's breakers are open.
func (g *Gateway) hedgedTry(ctx context.Context, shard int, order []*replica, build func(url string) (*http.Request, error)) (tryResult, bool) {
	if len(order) == 0 {
		return tryResult{}, false
	}
	ch := make(chan tryResult, len(order))
	cancels := make([]context.CancelFunc, 0, len(order))
	defer func() {
		for _, c := range cancels {
			c()
		}
	}()

	next, launched := 0, 0
	launch := func(force bool) bool {
		for next < len(order) {
			rep := order[next]
			next++
			if !force && !rep.br.acquire(time.Now()) {
				continue
			}
			tryCtx, cancel := context.WithCancel(ctx)
			cancels = append(cancels, cancel)
			launched++
			go g.issueOne(tryCtx, rep, build, ch)
			return true
		}
		return false
	}
	if !launch(false) {
		next = 0
		launch(true)
	}

	delay := g.hedgeDelay(shard)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	failed := 0
	for {
		select {
		case <-ctx.Done():
			return tryResult{err: ctx.Err()}, false
		case <-timer.C:
			if launch(false) {
				g.mHedges[shard].Inc()
				timer.Reset(delay)
			}
		case res := <-ch:
			if res.ok() {
				return res, true
			}
			failed++
			// Skip the hedge wait: we know the last try failed.
			if !launch(false) && failed == launched {
				return res, false
			}
		}
	}
}

// forward routes one request to a shard with retries, backoff, and
// hedging. minGen biases replica choice toward replicas at or above that
// generation.
func (g *Gateway) forward(ctx context.Context, shard int, minGen uint64, build func(url string) (*http.Request, error)) (tryResult, error) {
	var last tryResult
	for attempt := 0; attempt < g.cfg.Attempts; attempt++ {
		if attempt > 0 {
			backoff := g.cfg.Backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return tryResult{}, ctx.Err()
			case <-time.After(backoff):
			}
		}
		res, ok := g.hedgedTry(ctx, shard, g.replicaOrder(shard, minGen), build)
		if ok {
			return res, nil
		}
		last = res
	}
	if last.err != nil {
		return tryResult{}, fmt.Errorf("shard %d unavailable: %w", shard, last.err)
	}
	return tryResult{}, fmt.Errorf("shard %d unavailable: last status %d", shard, last.status)
}

// hedgeDelay picks the hedge threshold for a shard: its observed p95 once
// the tracker is warm, the configured default until then.
func (g *Gateway) hedgeDelay(shard int) time.Duration {
	if p95, ok := g.lat[shard].p95(); ok {
		return clampDuration(p95, time.Millisecond, 250*time.Millisecond)
	}
	return g.cfg.HedgeDelay
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Lookup routes one address to its owning shard and returns the shard's
// raw answer (status + body), ready to proxy. With caching enabled, a hit
// answers locally from the cache's current generation; a miss is
// forwarded (biased toward replicas at or past that generation) and the
// answer cached under the generation it carries.
func (g *Gateway) Lookup(ctx context.Context, addr netip.Addr) (int, []byte, error) {
	var minGen uint64
	if g.cache != nil {
		if resp, _, ok := g.cache.get(addr); ok {
			body, err := json.Marshal(resp)
			if err != nil {
				return 0, nil, err
			}
			return http.StatusOK, append(body, '\n'), nil
		}
		minGen = g.cache.generation()
	}
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, minGen, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url+"/v1/lookup?ip="+addr.String(), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	if g.cache != nil && res.status == http.StatusOK {
		var lr cellmap.LookupResponse
		if err := json.Unmarshal(res.body, &lr); err == nil {
			g.cache.put(lr.Generation, addr, lr)
		}
	}
	return res.status, res.body, nil
}

// LookupGen routes a generation-addressed lookup to the owning shard. It
// bypasses the response cache in both directions: the cache holds only
// newest-generation answers, so a pinned-generation request must never be
// served from it, and a pinned-generation answer must never be stored in
// it — either would hand a history client current data (or vice versa).
func (g *Gateway) LookupGen(ctx context.Context, addr netip.Addr, gen uint64) (int, []byte, error) {
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, 0, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/v1/lookup?ip=%s&gen=%d", url, addr, gen), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	return res.status, res.body, nil
}

// History forwards a timeline walk to the shard owning the address,
// uncached: the walk's answer changes with every publish and prune, and
// only the owning shard's history index has the retained generations.
func (g *Gateway) History(ctx context.Context, addr netip.Addr) (int, []byte, error) {
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, 0, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url+"/v1/history?ip="+addr.String(), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	return res.status, res.body, nil
}

// shardFetch posts one sub-batch to a shard and decodes the answer.
func (g *Gateway) shardFetch(ctx context.Context, shard int, minGen uint64, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	payload, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	res, err := g.forward(ctx, shard, minGen, func(url string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/lookup/batch", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	if res.status != http.StatusOK {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: status %d: %s",
			shard, res.status, strings.TrimSpace(string(res.body)))
	}
	var br cellmap.BatchResponse
	if err := json.Unmarshal(res.body, &br); err != nil {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: bad batch body: %w", shard, err)
	}
	if len(br.Results) != len(addrs) {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: %d results for %d addresses",
			shard, len(br.Results), len(addrs))
	}
	return br, nil
}

// Batch answers a batch lookup, serving what it can from the cache and
// scatter-gathering the rest. Every response is generation-uniform: all
// results carry one generation, whether they came from the cache, the
// fleet, or (transiently) both.
//
// The merge rule: cache hits are valid only at the cache's generation,
// so misses are fetched with that generation as the floor. If the fleet
// answers at a newer generation (a swap landed between the cache read
// and the fetch), mixing would violate uniformity — the gateway refetches
// the whole batch at the new generation instead. The refetch can recurse
// at most as long as generations keep advancing mid-request, which the
// deployment invariant makes a transient of rolling swaps, not a loop.
func (g *Gateway) Batch(ctx context.Context, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	start := time.Now()
	defer func() { g.mFanout.Observe(time.Since(start).Seconds()) }()
	resp, err := g.batchCached(ctx, addrs)
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	return resp, nil
}

// batchSpan counts the distinct shards a batch touches. Degraded-mode
// minority decisions are made against the client's full batch, not a
// cache-miss subset — otherwise a warm cache could shrink the miss set to
// exactly the dark shard and flip "1 of 3 shards dark" into "1 of 1".
func (g *Gateway) batchSpan(addrs []netip.Addr) int {
	seen := make(map[int]struct{}, 4)
	for _, a := range addrs {
		seen[g.ring.Owner(a)] = struct{}{}
	}
	return len(seen)
}

func (g *Gateway) batchCached(ctx context.Context, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	if g.cache == nil {
		return g.batchFetch(ctx, addrs, 0, 0)
	}
	span := g.batchSpan(addrs)
	out := make([]cellmap.LookupResponse, len(addrs))
	hit := make([]bool, len(addrs))
	cgen := g.cache.getMany(addrs, out, hit)

	miss := make([]netip.Addr, 0, len(addrs))
	for i, h := range hit {
		if !h {
			miss = append(miss, addrs[i])
		}
	}
	if len(miss) == 0 {
		return cellmap.BatchResponse{Generation: cgen, Results: out}, nil
	}

	fetched, err := g.batchFetch(ctx, miss, cgen, span)
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	g.cache.observe(fetched.Generation)
	if fetched.Generation != cgen && len(miss) < len(addrs) {
		// A swap landed between the cache read and the fetch: the hits
		// belong to an older snapshot than the fetched answers. Refetch
		// everything at the new generation rather than mix.
		fetched, err = g.batchFetch(ctx, addrs, fetched.Generation, span)
		if err != nil {
			return cellmap.BatchResponse{}, err
		}
		g.cache.observe(fetched.Generation)
		for i, r := range fetched.Results {
			if r.Degraded {
				// A placeholder is an admission of ignorance, not an
				// answer; caching it would serve the outage after it ends.
				continue
			}
			g.cache.put(fetched.Generation, addrs[i], r)
		}
		return fetched, nil
	}
	k := 0
	for i, h := range hit {
		if !h {
			out[i] = fetched.Results[k]
			if !out[i].Degraded {
				g.cache.put(fetched.Generation, addrs[i], out[i])
			}
			k++
		}
	}
	return cellmap.BatchResponse{Generation: fetched.Generation, Results: out, Degraded: fetched.Degraded}, nil
}

// batchFetch scatter-gathers a batch lookup across the owning shards and
// merges the answers back into request order. minGen biases replica
// selection toward replicas at or past that generation. span is the shard
// count of the client's full batch for degraded-mode minority decisions
// (0 means "this call is the full batch").
//
// The generation-consistency guard: a response is only returned when
// every sub-answer carries the same generation. When a gather observes a
// mix, the gateway re-queries the lagging shards — biased toward replicas
// the health view says have reached the target generation — for up to
// GenRounds rounds, then fails with ErrGenerationSplit rather than serve
// a frankenbatch spanning two snapshots.
func (g *Gateway) batchFetch(ctx context.Context, addrs []netip.Addr, minGen uint64, span int) (cellmap.BatchResponse, error) {
	// Group addresses by owning shard, remembering request positions.
	groups := make(map[int][]int)
	for i, a := range addrs {
		s := g.ring.Owner(a)
		groups[s] = append(groups[s], i)
	}
	if span < len(groups) {
		span = len(groups)
	}
	sub := make(map[int][]netip.Addr, len(groups))
	for s, idxs := range groups {
		as := make([]netip.Addr, len(idxs))
		for k, i := range idxs {
			as[k] = addrs[i]
		}
		sub[s] = as
	}

	results := make(map[int]cellmap.BatchResponse, len(groups))
	// dark accumulates shards that could not answer. In strict mode (the
	// default) any entry fails the batch; in degraded mode a minority of
	// dark shards is tolerated and their addresses answered with explicit
	// placeholders.
	dark := make(map[int]error)
	fetch := func(shards []int, minGen uint64) {
		var (
			mu sync.Mutex
			wg sync.WaitGroup
		)
		for _, s := range shards {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				br, err := g.shardFetch(ctx, s, minGen, sub[s])
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					dark[s] = err
					delete(results, s)
					return
				}
				results[s] = br
				delete(dark, s)
			}(s)
		}
		wg.Wait()
	}
	// tolerate reports whether the dark set is acceptable: degraded mode
	// on, a strict minority of the batch's shard span dark (a single-shard
	// batch therefore never degrades), and the caller's context live (a
	// cancelled scatter says nothing about shard health).
	tolerate := func() error {
		if len(dark) == 0 {
			return nil
		}
		var anyErr error
		for _, err := range dark {
			anyErr = err
			break
		}
		if !g.cfg.AllowDegraded || 2*len(dark) >= span || ctx.Err() != nil {
			return anyErr
		}
		return nil
	}

	all := make([]int, 0, len(groups))
	for s := range groups {
		all = append(all, s)
	}
	fetch(all, minGen)
	if err := tolerate(); err != nil {
		return cellmap.BatchResponse{}, err
	}

	for round := 0; ; round++ {
		// minGen is a floor, not just a routing bias: an answer below it
		// would be stale relative to what the caller (the cache) has
		// already observed, so shards below the target count as lagging
		// even when they agree with each other.
		target := minGen
		for _, br := range results {
			if br.Generation > target {
				target = br.Generation
			}
		}
		mixed := false
		for _, br := range results {
			if br.Generation != target {
				mixed = true
				break
			}
		}
		if !mixed {
			break
		}
		g.mConflicts.Inc()
		if round >= g.cfg.GenRounds {
			return cellmap.BatchResponse{}, ErrGenerationSplit
		}
		var lagging []int
		for s, br := range results {
			if br.Generation != target {
				lagging = append(lagging, s)
			}
		}
		g.logf("batch: generations split (target %d, %d shards behind), round %d", target, len(lagging), round+1)
		// Give an in-flight rolling swap a moment to land before asking
		// the laggards again.
		select {
		case <-ctx.Done():
			return cellmap.BatchResponse{}, ctx.Err()
		case <-time.After(g.cfg.Backoff):
		}
		fetch(lagging, target)
		if err := tolerate(); err != nil {
			return cellmap.BatchResponse{}, err
		}
	}

	// With every reached shard converged, Generation is their common value;
	// minGen covers the corner where the whole (tolerated) fetch was dark —
	// the caller's cache generation is the only honest label left.
	out := cellmap.BatchResponse{Generation: minGen, Results: make([]cellmap.LookupResponse, len(addrs))}
	for s, idxs := range groups {
		br, ok := results[s]
		if !ok {
			// Dark shard under degraded mode: explicit placeholders, never
			// silent zero-value answers a client could mistake for data.
			for k, i := range idxs {
				out.Results[i] = cellmap.LookupResponse{Addr: sub[s][k].String(), Degraded: true}
			}
			out.Degraded = true
			continue
		}
		out.Generation = br.Generation
		for k, i := range idxs {
			out.Results[i] = br.Results[k]
		}
	}
	if out.Degraded {
		g.mDegraded.Inc()
		g.logf("batch: degraded answer, %d/%d shards dark", len(dark), len(groups))
	}
	return out, nil
}

// ErrGenerationSplit reports that the fleet could not converge on one
// generation within the reconciliation budget.
var ErrGenerationSplit = fmt.Errorf("cluster: shards split across generations, retry later")

// Mount registers the gateway's routes on r:
//
//	GET  /v1/lookup?ip=ADDR  — routed to the owning shard
//	POST /v1/lookup/batch    — scatter-gather, one generation
//	GET  /v1/cluster/health  — the gateway's fleet view
func (g *Gateway) Mount(r cellmap.Router) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, req *http.Request) {
		query := req.URL.Query()
		q := query.Get("ip")
		if q == "" {
			cellmap.WriteError(w, http.StatusBadRequest, "missing ip parameter")
			return
		}
		addr, err := netip.ParseAddr(q)
		if err != nil {
			cellmap.WriteError(w, http.StatusBadRequest, "bad ip: "+err.Error())
			return
		}
		var status int
		var body []byte
		if query.Has("gen") {
			// Generation-addressed: route around the cache entirely.
			seq, perr := strconv.ParseUint(query.Get("gen"), 10, 64)
			if perr != nil || seq == 0 {
				cellmap.WriteError(w, http.StatusBadRequest, "bad gen: want a positive generation number")
				return
			}
			status, body, err = g.LookupGen(req.Context(), addr, seq)
		} else {
			status, body, err = g.Lookup(req.Context(), addr)
		}
		if err != nil {
			cellmap.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
	})
	r.HandleFunc("GET /v1/history", func(w http.ResponseWriter, req *http.Request) {
		addr, _, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		status, body, err := g.History(req.Context(), addr)
		if err != nil {
			cellmap.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
	})
	r.HandleFunc("POST /v1/lookup/batch", func(w http.ResponseWriter, req *http.Request) {
		addrs, _, ok := cellmap.DecodeBatch(w, req, g.cfg.BatchLimit)
		if !ok {
			return
		}
		resp, err := g.Batch(req.Context(), addrs)
		if err != nil {
			code := http.StatusBadGateway
			if err == ErrGenerationSplit {
				code = http.StatusServiceUnavailable
			}
			cellmap.WriteError(w, code, err.Error())
			return
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/cluster/health", func(w http.ResponseWriter, _ *http.Request) {
		cellmap.WriteJSON(w, g.Health())
	})
}

// latencyTracker keeps a small ring of recent request latencies per shard
// and answers "what is p95 right now" for the hedging policy. A mutex is
// fine here: the gateway path does network I/O around it.
type latencyTracker struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // filled entries
	idx     int // next write position
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.idx] = d
	t.idx = (t.idx + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}
	t.mu.Unlock()
}

// p95 returns the 95th-percentile latency, or ok=false while fewer than
// 16 samples are in (hedging then uses the configured default).
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < 16 {
		return 0, false
	}
	tmp := make([]time.Duration, t.n)
	copy(tmp, t.samples[:t.n])
	// Insertion sort: n <= 128 and this runs once per request at most.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[(len(tmp)*95)/100], true
}
