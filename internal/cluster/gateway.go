package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
)

// GatewayConfig parameterizes a Gateway. Zero values take the defaults
// noted per field.
type GatewayConfig struct {
	// Topology describes the fleet (required, must validate).
	Topology Topology
	// Client issues all shard traffic. Default: 2s total timeout.
	Client *http.Client
	// Registry receives the gateway metrics; nil disables them.
	Registry *obs.Registry
	// Attempts is how many full replica passes a request gets before the
	// gateway gives up on a shard. Default 2.
	Attempts int
	// Backoff is the sleep before the second pass, doubling per pass.
	// Default 25ms.
	Backoff time.Duration
	// HedgeDelay is the wait before hedging to the next replica while the
	// shard's latency tracker is still cold. Once warm, the shard's p95
	// (clamped to [1ms, 250ms]) replaces it. Default 25ms.
	HedgeDelay time.Duration
	// BatchLimit caps batch fan-out requests. Default
	// cellmap.DefaultBatchLimit.
	BatchLimit int
	// CacheSize is the capacity (addresses) of the generation-keyed
	// response cache; 0 disables caching. The cache holds answers of the
	// newest generation the gateway has observed and is invalidated
	// wholesale the moment a newer generation appears.
	CacheSize int
	// GenRounds is how many reconciliation rounds a mixed-generation
	// batch gets before failing. Default 3.
	GenRounds int
	// HealthInterval is the health-check cadence. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one health probe. Default 500ms.
	HealthTimeout time.Duration
	// Logf receives operational log lines; nil silences them.
	Logf func(format string, args ...any)
}

func (c *GatewayConfig) fillDefaults() {
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Second}
	}
	if c.Attempts <= 0 {
		c.Attempts = 2
	}
	if c.Backoff <= 0 {
		c.Backoff = 25 * time.Millisecond
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 25 * time.Millisecond
	}
	if c.BatchLimit <= 0 {
		c.BatchLimit = cellmap.DefaultBatchLimit
	}
	if c.GenRounds <= 0 {
		c.GenRounds = 3
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 500 * time.Millisecond
	}
}

// Gateway fronts the shard fleet: it owns the routing decision (via the
// ring), replica selection, retries, hedging, and the batch
// scatter-gather with its generation-consistency guard. Gateways are
// stateless with respect to the dataset — they hold no map, only the
// topology and a continuously refreshed health view — so any number of
// them can run behind a load balancer.
type Gateway struct {
	cfg      GatewayConfig
	ring     *Ring
	replicas [][]*replica // [shard][replica]
	rr       []atomic.Uint64
	lat      []*latencyTracker
	cache    *lookupCache // nil when CacheSize is 0

	mRequests  []*obs.Counter // per shard
	mErrors    []*obs.Counter
	mHedges    []*obs.Counter
	mFanout    *obs.Histogram
	mConflicts *obs.Counter
}

// NewGateway validates the topology and builds a gateway. Call Run (or
// CheckNow) to populate the health view; until then every replica counts
// as down and requests fall back to blind ordering.
func NewGateway(cfg GatewayConfig) (*Gateway, error) {
	if err := cfg.Topology.Validate(); err != nil {
		return nil, err
	}
	cfg.fillDefaults()
	g := &Gateway{
		cfg:  cfg,
		ring: cfg.Topology.Ring(),
		rr:   make([]atomic.Uint64, cfg.Topology.NumShards()),
		lat:  make([]*latencyTracker, cfg.Topology.NumShards()),
	}
	reg := cfg.Registry
	if cfg.CacheSize > 0 {
		g.cache = newLookupCache(cfg.CacheSize, reg)
	}
	g.mFanout = reg.Histogram("cluster_fanout_seconds",
		"Batch scatter-gather wall time in seconds.", obs.DefBuckets)
	g.mConflicts = reg.Counter("cluster_generation_conflicts_total",
		"Batch rounds that observed mixed shard generations.")
	for s, spec := range cfg.Topology.Shards {
		g.lat[s] = &latencyTracker{}
		label := obs.L("shard", strconv.Itoa(s))
		g.mRequests = append(g.mRequests, reg.Counter("cluster_shard_requests_total",
			"Requests sent to shard replicas.", label))
		g.mErrors = append(g.mErrors, reg.Counter("cluster_shard_errors_total",
			"Failed requests to shard replicas.", label))
		g.mHedges = append(g.mHedges, reg.Counter("cluster_hedged_requests_total",
			"Hedge requests fired after the latency threshold.", label))
		var reps []*replica
		for j, u := range spec.Replicas {
			rep := &replica{
				shard: s,
				index: j,
				url:   strings.TrimSuffix(u, "/"),
				mUp: reg.Gauge("cluster_replica_up",
					"1 when the replica's last health probe succeeded.",
					label, obs.L("replica", strconv.Itoa(j))),
				mGen: reg.Gauge("cluster_replica_generation",
					"Map generation the replica last reported.",
					label, obs.L("replica", strconv.Itoa(j))),
			}
			reps = append(reps, rep)
		}
		g.replicas = append(g.replicas, reps)
	}
	return g, nil
}

// Ring exposes the gateway's partitioning (shared with shard nodes).
func (g *Gateway) Ring() *Ring { return g.ring }

// replicaOrder ranks a shard's replicas for one request: healthy replicas
// at or above minGen first, then healthy laggards, then everything else —
// each class rotated round-robin so load spreads across equals. minGen 0
// means "any generation".
func (g *Gateway) replicaOrder(shard int, minGen uint64) []*replica {
	reps := g.replicas[shard]
	n := len(reps)
	start := int(g.rr[shard].Add(1)) % n
	order := make([]*replica, 0, n)
	for class := 0; class < 3 && len(order) < n; class++ {
		for k := 0; k < n; k++ {
			rep := reps[(start+k)%n]
			up := rep.up.Load()
			var c int
			switch {
			case up && rep.gen.Load() >= minGen:
				c = 0
			case up:
				c = 1
			default:
				c = 2
			}
			if c == class {
				order = append(order, rep)
			}
		}
	}
	return order
}

// tryResult is one replica attempt's outcome.
type tryResult struct {
	status int
	body   []byte
	err    error
	rep    *replica
	dur    time.Duration
}

// issueOne sends build(rep) and reports into ch.
func (g *Gateway) issueOne(ctx context.Context, rep *replica, build func(url string) (*http.Request, error), ch chan<- tryResult) {
	g.mRequests[rep.shard].Inc()
	start := time.Now()
	req, err := build(rep.url)
	if err != nil {
		ch <- tryResult{err: err, rep: rep}
		return
	}
	resp, err := g.cfg.Client.Do(req.WithContext(ctx))
	if err != nil {
		ch <- tryResult{err: err, rep: rep}
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		ch <- tryResult{err: err, rep: rep}
		return
	}
	ch <- tryResult{status: resp.StatusCode, body: body, rep: rep, dur: time.Since(start)}
}

// ok reports whether an attempt's answer should be served. 4xx answers
// other than 421 are served (they are the client's error); 421 means the
// fleet disagrees about ownership and trying another replica is useless
// but serving it would be wrong, so it counts as a failure. 5xx and
// transport errors count as failures and move on to the next replica.
func (t tryResult) ok() bool {
	return t.err == nil && t.status < 500 && t.status != http.StatusMisdirectedRequest
}

// hedgedTry runs one pass over order: fire the first replica, hedge to
// the next after the shard's hedge delay, and keep escalating — each
// subsequent hedge waits the same delay. The first serveable answer wins;
// losers are abandoned (their goroutines drain on their own).
func (g *Gateway) hedgedTry(ctx context.Context, shard int, order []*replica, build func(url string) (*http.Request, error)) (tryResult, bool) {
	if len(order) == 0 {
		return tryResult{}, false
	}
	ch := make(chan tryResult, len(order))
	launched := 1
	go g.issueOne(ctx, order[0], build, ch)

	delay := g.hedgeDelay(shard)
	timer := time.NewTimer(delay)
	defer timer.Stop()

	failed := 0
	for {
		select {
		case <-ctx.Done():
			return tryResult{err: ctx.Err()}, false
		case <-timer.C:
			if launched < len(order) {
				g.mHedges[shard].Inc()
				go g.issueOne(ctx, order[launched], build, ch)
				launched++
				timer.Reset(delay)
			}
		case res := <-ch:
			if res.ok() {
				res.rep.fails.Store(0)
				g.lat[shard].observe(res.dur)
				return res, true
			}
			g.mErrors[shard].Inc()
			res.rep.fails.Add(1)
			if res.err != nil {
				// Transport-level failure: flip the health view now
				// instead of waiting for the next probe.
				g.markDown(res.rep)
			}
			failed++
			if launched < len(order) {
				// Skip the hedge wait: we know the last try failed.
				go g.issueOne(ctx, order[launched], build, ch)
				launched++
			} else if failed == launched {
				return res, false
			}
		}
	}
}

// forward routes one request to a shard with retries, backoff, and
// hedging. minGen biases replica choice toward replicas at or above that
// generation.
func (g *Gateway) forward(ctx context.Context, shard int, minGen uint64, build func(url string) (*http.Request, error)) (tryResult, error) {
	var last tryResult
	for attempt := 0; attempt < g.cfg.Attempts; attempt++ {
		if attempt > 0 {
			backoff := g.cfg.Backoff << (attempt - 1)
			select {
			case <-ctx.Done():
				return tryResult{}, ctx.Err()
			case <-time.After(backoff):
			}
		}
		res, ok := g.hedgedTry(ctx, shard, g.replicaOrder(shard, minGen), build)
		if ok {
			return res, nil
		}
		last = res
	}
	if last.err != nil {
		return tryResult{}, fmt.Errorf("shard %d unavailable: %w", shard, last.err)
	}
	return tryResult{}, fmt.Errorf("shard %d unavailable: last status %d", shard, last.status)
}

// hedgeDelay picks the hedge threshold for a shard: its observed p95 once
// the tracker is warm, the configured default until then.
func (g *Gateway) hedgeDelay(shard int) time.Duration {
	if p95, ok := g.lat[shard].p95(); ok {
		return clampDuration(p95, time.Millisecond, 250*time.Millisecond)
	}
	return g.cfg.HedgeDelay
}

func clampDuration(d, lo, hi time.Duration) time.Duration {
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Lookup routes one address to its owning shard and returns the shard's
// raw answer (status + body), ready to proxy. With caching enabled, a hit
// answers locally from the cache's current generation; a miss is
// forwarded (biased toward replicas at or past that generation) and the
// answer cached under the generation it carries.
func (g *Gateway) Lookup(ctx context.Context, addr netip.Addr) (int, []byte, error) {
	var minGen uint64
	if g.cache != nil {
		if resp, _, ok := g.cache.get(addr); ok {
			body, err := json.Marshal(resp)
			if err != nil {
				return 0, nil, err
			}
			return http.StatusOK, append(body, '\n'), nil
		}
		minGen = g.cache.generation()
	}
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, minGen, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url+"/v1/lookup?ip="+addr.String(), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	if g.cache != nil && res.status == http.StatusOK {
		var lr cellmap.LookupResponse
		if err := json.Unmarshal(res.body, &lr); err == nil {
			g.cache.put(lr.Generation, addr, lr)
		}
	}
	return res.status, res.body, nil
}

// LookupGen routes a generation-addressed lookup to the owning shard. It
// bypasses the response cache in both directions: the cache holds only
// newest-generation answers, so a pinned-generation request must never be
// served from it, and a pinned-generation answer must never be stored in
// it — either would hand a history client current data (or vice versa).
func (g *Gateway) LookupGen(ctx context.Context, addr netip.Addr, gen uint64) (int, []byte, error) {
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, 0, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet,
			fmt.Sprintf("%s/v1/lookup?ip=%s&gen=%d", url, addr, gen), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	return res.status, res.body, nil
}

// History forwards a timeline walk to the shard owning the address,
// uncached: the walk's answer changes with every publish and prune, and
// only the owning shard's history index has the retained generations.
func (g *Gateway) History(ctx context.Context, addr netip.Addr) (int, []byte, error) {
	shard := g.ring.Owner(addr)
	res, err := g.forward(ctx, shard, 0, func(url string) (*http.Request, error) {
		return http.NewRequest(http.MethodGet, url+"/v1/history?ip="+addr.String(), nil)
	})
	if err != nil {
		return 0, nil, err
	}
	return res.status, res.body, nil
}

// shardFetch posts one sub-batch to a shard and decodes the answer.
func (g *Gateway) shardFetch(ctx context.Context, shard int, minGen uint64, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	ips := make([]string, len(addrs))
	for i, a := range addrs {
		ips[i] = a.String()
	}
	payload, err := json.Marshal(cellmap.BatchRequest{IPs: ips})
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	res, err := g.forward(ctx, shard, minGen, func(url string) (*http.Request, error) {
		req, err := http.NewRequest(http.MethodPost, url+"/v1/lookup/batch", bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		return req, nil
	})
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	if res.status != http.StatusOK {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: status %d: %s",
			shard, res.status, strings.TrimSpace(string(res.body)))
	}
	var br cellmap.BatchResponse
	if err := json.Unmarshal(res.body, &br); err != nil {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: bad batch body: %w", shard, err)
	}
	if len(br.Results) != len(addrs) {
		return cellmap.BatchResponse{}, fmt.Errorf("shard %d: %d results for %d addresses",
			shard, len(br.Results), len(addrs))
	}
	return br, nil
}

// Batch answers a batch lookup, serving what it can from the cache and
// scatter-gathering the rest. Every response is generation-uniform: all
// results carry one generation, whether they came from the cache, the
// fleet, or (transiently) both.
//
// The merge rule: cache hits are valid only at the cache's generation,
// so misses are fetched with that generation as the floor. If the fleet
// answers at a newer generation (a swap landed between the cache read
// and the fetch), mixing would violate uniformity — the gateway refetches
// the whole batch at the new generation instead. The refetch can recurse
// at most as long as generations keep advancing mid-request, which the
// deployment invariant makes a transient of rolling swaps, not a loop.
func (g *Gateway) Batch(ctx context.Context, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	start := time.Now()
	defer func() { g.mFanout.Observe(time.Since(start).Seconds()) }()
	resp, err := g.batchCached(ctx, addrs)
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	return resp, nil
}

func (g *Gateway) batchCached(ctx context.Context, addrs []netip.Addr) (cellmap.BatchResponse, error) {
	if g.cache == nil {
		return g.batchFetch(ctx, addrs, 0)
	}
	out := make([]cellmap.LookupResponse, len(addrs))
	hit := make([]bool, len(addrs))
	cgen := g.cache.getMany(addrs, out, hit)

	miss := make([]netip.Addr, 0, len(addrs))
	for i, h := range hit {
		if !h {
			miss = append(miss, addrs[i])
		}
	}
	if len(miss) == 0 {
		return cellmap.BatchResponse{Generation: cgen, Results: out}, nil
	}

	fetched, err := g.batchFetch(ctx, miss, cgen)
	if err != nil {
		return cellmap.BatchResponse{}, err
	}
	g.cache.observe(fetched.Generation)
	if fetched.Generation != cgen && len(miss) < len(addrs) {
		// A swap landed between the cache read and the fetch: the hits
		// belong to an older snapshot than the fetched answers. Refetch
		// everything at the new generation rather than mix.
		fetched, err = g.batchFetch(ctx, addrs, fetched.Generation)
		if err != nil {
			return cellmap.BatchResponse{}, err
		}
		g.cache.observe(fetched.Generation)
		for i, r := range fetched.Results {
			g.cache.put(fetched.Generation, addrs[i], r)
		}
		return fetched, nil
	}
	k := 0
	for i, h := range hit {
		if !h {
			out[i] = fetched.Results[k]
			g.cache.put(fetched.Generation, addrs[i], out[i])
			k++
		}
	}
	return cellmap.BatchResponse{Generation: fetched.Generation, Results: out}, nil
}

// batchFetch scatter-gathers a batch lookup across the owning shards and
// merges the answers back into request order. minGen biases replica
// selection toward replicas at or past that generation.
//
// The generation-consistency guard: a response is only returned when
// every sub-answer carries the same generation. When a gather observes a
// mix, the gateway re-queries the lagging shards — biased toward replicas
// the health view says have reached the target generation — for up to
// GenRounds rounds, then fails with ErrGenerationSplit rather than serve
// a frankenbatch spanning two snapshots.
func (g *Gateway) batchFetch(ctx context.Context, addrs []netip.Addr, minGen uint64) (cellmap.BatchResponse, error) {
	// Group addresses by owning shard, remembering request positions.
	groups := make(map[int][]int)
	for i, a := range addrs {
		s := g.ring.Owner(a)
		groups[s] = append(groups[s], i)
	}
	sub := make(map[int][]netip.Addr, len(groups))
	for s, idxs := range groups {
		as := make([]netip.Addr, len(idxs))
		for k, i := range idxs {
			as[k] = addrs[i]
		}
		sub[s] = as
	}

	results := make(map[int]cellmap.BatchResponse, len(groups))
	fetch := func(shards []int, minGen uint64) error {
		var (
			mu      sync.Mutex
			wg      sync.WaitGroup
			firstEB error
		)
		for _, s := range shards {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				br, err := g.shardFetch(ctx, s, minGen, sub[s])
				mu.Lock()
				defer mu.Unlock()
				if err != nil {
					if firstEB == nil {
						firstEB = err
					}
					return
				}
				results[s] = br
			}(s)
		}
		wg.Wait()
		return firstEB
	}

	all := make([]int, 0, len(groups))
	for s := range groups {
		all = append(all, s)
	}
	if err := fetch(all, minGen); err != nil {
		return cellmap.BatchResponse{}, err
	}

	for round := 0; ; round++ {
		// minGen is a floor, not just a routing bias: an answer below it
		// would be stale relative to what the caller (the cache) has
		// already observed, so shards below the target count as lagging
		// even when they agree with each other.
		target := minGen
		for _, br := range results {
			if br.Generation > target {
				target = br.Generation
			}
		}
		mixed := false
		for _, br := range results {
			if br.Generation != target {
				mixed = true
				break
			}
		}
		if !mixed {
			break
		}
		g.mConflicts.Inc()
		if round >= g.cfg.GenRounds {
			return cellmap.BatchResponse{}, ErrGenerationSplit
		}
		var lagging []int
		for s, br := range results {
			if br.Generation != target {
				lagging = append(lagging, s)
			}
		}
		g.logf("batch: generations split (target %d, %d shards behind), round %d", target, len(lagging), round+1)
		// Give an in-flight rolling swap a moment to land before asking
		// the laggards again.
		select {
		case <-ctx.Done():
			return cellmap.BatchResponse{}, ctx.Err()
		case <-time.After(g.cfg.Backoff):
		}
		if err := fetch(lagging, target); err != nil {
			return cellmap.BatchResponse{}, err
		}
	}

	out := cellmap.BatchResponse{Results: make([]cellmap.LookupResponse, len(addrs))}
	for s, idxs := range groups {
		br := results[s]
		out.Generation = br.Generation
		for k, i := range idxs {
			out.Results[i] = br.Results[k]
		}
	}
	return out, nil
}

// ErrGenerationSplit reports that the fleet could not converge on one
// generation within the reconciliation budget.
var ErrGenerationSplit = fmt.Errorf("cluster: shards split across generations, retry later")

// Mount registers the gateway's routes on r:
//
//	GET  /v1/lookup?ip=ADDR  — routed to the owning shard
//	POST /v1/lookup/batch    — scatter-gather, one generation
//	GET  /v1/cluster/health  — the gateway's fleet view
func (g *Gateway) Mount(r cellmap.Router) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, req *http.Request) {
		query := req.URL.Query()
		q := query.Get("ip")
		if q == "" {
			cellmap.WriteError(w, http.StatusBadRequest, "missing ip parameter")
			return
		}
		addr, err := netip.ParseAddr(q)
		if err != nil {
			cellmap.WriteError(w, http.StatusBadRequest, "bad ip: "+err.Error())
			return
		}
		var status int
		var body []byte
		if query.Has("gen") {
			// Generation-addressed: route around the cache entirely.
			seq, perr := strconv.ParseUint(query.Get("gen"), 10, 64)
			if perr != nil || seq == 0 {
				cellmap.WriteError(w, http.StatusBadRequest, "bad gen: want a positive generation number")
				return
			}
			status, body, err = g.LookupGen(req.Context(), addr, seq)
		} else {
			status, body, err = g.Lookup(req.Context(), addr)
		}
		if err != nil {
			cellmap.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
	})
	r.HandleFunc("GET /v1/history", func(w http.ResponseWriter, req *http.Request) {
		addr, _, ok := cellmap.ParseLookupAddr(w, req)
		if !ok {
			return
		}
		status, body, err := g.History(req.Context(), addr)
		if err != nil {
			cellmap.WriteError(w, http.StatusBadGateway, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write(body)
	})
	r.HandleFunc("POST /v1/lookup/batch", func(w http.ResponseWriter, req *http.Request) {
		addrs, _, ok := cellmap.DecodeBatch(w, req, g.cfg.BatchLimit)
		if !ok {
			return
		}
		resp, err := g.Batch(req.Context(), addrs)
		if err != nil {
			code := http.StatusBadGateway
			if err == ErrGenerationSplit {
				code = http.StatusServiceUnavailable
			}
			cellmap.WriteError(w, code, err.Error())
			return
		}
		cellmap.WriteJSON(w, resp)
	})
	r.HandleFunc("GET /v1/cluster/health", func(w http.ResponseWriter, _ *http.Request) {
		cellmap.WriteJSON(w, g.Health())
	})
}

// latencyTracker keeps a small ring of recent request latencies per shard
// and answers "what is p95 right now" for the hedging policy. A mutex is
// fine here: the gateway path does network I/O around it.
type latencyTracker struct {
	mu      sync.Mutex
	samples [128]time.Duration
	n       int // filled entries
	idx     int // next write position
}

func (t *latencyTracker) observe(d time.Duration) {
	t.mu.Lock()
	t.samples[t.idx] = d
	t.idx = (t.idx + 1) % len(t.samples)
	if t.n < len(t.samples) {
		t.n++
	}
	t.mu.Unlock()
}

// p95 returns the 95th-percentile latency, or ok=false while fewer than
// 16 samples are in (hedging then uses the configured default).
func (t *latencyTracker) p95() (time.Duration, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n < 16 {
		return 0, false
	}
	tmp := make([]time.Duration, t.n)
	copy(tmp, t.samples[:t.n])
	// Insertion sort: n <= 128 and this runs once per request at most.
	for i := 1; i < len(tmp); i++ {
		for j := i; j > 0 && tmp[j] < tmp[j-1]; j-- {
			tmp[j], tmp[j-1] = tmp[j-1], tmp[j]
		}
	}
	return tmp[(len(tmp)*95)/100], true
}
