package cluster

import (
	"sync"
	"time"

	"cellspot/internal/obs"
)

// breaker is a per-replica circuit breaker on the gateway's request path.
// It complements the health loop: probes run on a timer, but a replica that
// accepts TCP and then fails or crawls burns a request's whole retry budget
// between probes. The breaker reacts at request speed.
//
//	closed    — traffic flows; BreakerThreshold consecutive failures trip it
//	open      — traffic refused until BreakerCooldown elapses
//	half-open — exactly one probe request is let through; success closes
//	            the breaker, failure re-opens it for another cooldown
//
// A successful answer slower than the latency budget (when one is set)
// counts as a failure: a replica that technically answers but blows the
// hedging budget is a brownout, and routing around it is the point.
//
// Ranking uses the read-only allow(); the mutating acquire() runs only when
// a request is actually issued, so the half-open probe slot is never leaked
// by a replica that was ranked but not contacted. Abandoned attempts
// (caller context cancelled) call abandon() — no verdict, probe slot freed.
type breaker struct {
	threshold int64
	cooldown  time.Duration
	latBudget time.Duration // 0 disables the latency criterion

	mu       sync.Mutex
	state    int // 0 closed, 1 half-open, 2 open
	fails    int64
	openedAt time.Time
	probing  bool

	mState *obs.Gauge // cluster_breaker_state: 0/1/2 as above
}

const (
	breakerClosed = iota
	breakerHalfOpen
	breakerOpen
)

func newBreaker(threshold int64, cooldown, latBudget time.Duration, mState *obs.Gauge) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, latBudget: latBudget, mState: mState}
}

// allow reports whether ranking should consider this replica. Read-only:
// it never claims the half-open probe slot.
func (b *breaker) allow(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state != breakerOpen || now.Sub(b.openedAt) >= b.cooldown
}

// acquire claims the right to issue one request. An open breaker past its
// cooldown transitions to half-open and grants the single probe slot.
func (b *breaker) acquire(now time.Time) bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.setState(breakerHalfOpen)
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// record folds one completed attempt's outcome in.
func (b *breaker) record(ok bool, dur time.Duration, now time.Time) {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if ok && (b.latBudget <= 0 || dur <= b.latBudget) {
		b.fails = 0
		b.setState(breakerClosed)
		return
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: another full cooldown.
		b.openedAt = now
		b.setState(breakerOpen)
	case breakerClosed:
		b.fails++
		if b.threshold > 0 && b.fails >= b.threshold {
			b.openedAt = now
			b.fails = 0
			b.setState(breakerOpen)
		}
	}
	// Already open: a forced last-resort attempt failed; the original
	// cooldown keeps counting so recovery is not pushed out by traffic.
}

// abandon releases the probe slot without a verdict — the attempt was
// cancelled (caller gone, hedge winner elsewhere), which says nothing about
// the replica.
func (b *breaker) abandon() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// setState transitions and mirrors into the gauge. Callers hold b.mu.
func (b *breaker) setState(s int) {
	if b.state == s {
		return
	}
	b.state = s
	b.mState.Set(int64(s))
}

// stateName snapshots the state for the health response.
func (b *breaker) stateName() string {
	if b == nil {
		return "closed"
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		return "half-open"
	case breakerOpen:
		return "open"
	default:
		return "closed"
	}
}
