package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
)

func TestShardViewFiltering(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	ring := NewRing(3, DefaultVNodes)
	sw := cellmap.NewSwappable(m, 7)
	view, err := NewShardView(sw, ring, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	view.EnableMetrics(reg)
	mux := http.NewServeMux()
	MountShard(mux, view)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	owned := addrOwnedBy(t, ring, 0)
	resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + owned.String())
	if err != nil {
		t.Fatal(err)
	}
	var lr cellmap.LookupResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owned lookup: status %d", resp.StatusCode)
	}
	if lr.Generation != 7 {
		t.Errorf("owned lookup generation = %d, want 7", lr.Generation)
	}
	if want := cellmap.LookupAddr(m, 7, owned, owned.String()); !reflect.DeepEqual(lr, want) {
		t.Errorf("owned lookup = %+v, want %+v", lr, want)
	}

	// A misrouted address must be refused with 421, naming the owner.
	foreign := addrOwnedBy(t, ring, 1)
	resp, err = http.Get(srv.URL + "/v1/lookup?ip=" + foreign.String())
	if err != nil {
		t.Fatal(err)
	}
	var e cellmap.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMisdirectedRequest {
		t.Fatalf("foreign lookup: status %d, want 421", resp.StatusCode)
	}
	if !strings.Contains(e.Error, "shard 1") || !strings.Contains(e.Error, "shard 0") {
		t.Errorf("421 body does not name owner and self: %q", e.Error)
	}

	// A batch containing any foreign address is refused whole.
	body := fmt.Sprintf(`{"ips":[%q,%q]}`, owned, foreign)
	bresp, err := http.Post(srv.URL+"/v1/lookup/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusMisdirectedRequest {
		t.Errorf("mixed-ownership batch: status %d, want 421", bresp.StatusCode)
	}

	// The misrouted counter saw both refusals.
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cluster_misrouted_total 2") {
		t.Errorf("cluster_misrouted_total != 2 in:\n%s", buf.String())
	}
}

func TestShardHealthEndpoint(t *testing.T) {
	m := mkMap(t, "2016-12", genOneEntries())
	ring := NewRing(3, DefaultVNodes)
	sw := cellmap.NewSwappable(m, 3)
	view, err := NewShardView(sw, ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	MountShard(mux, view)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func() HealthResponse {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/cluster/health")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("health: status %d", resp.StatusCode)
		}
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return h
	}
	h := get()
	if h.Shard != 2 || h.Shards != 3 || h.Generation != 3 || h.Period != "2016-12" {
		t.Errorf("health = %+v", h)
	}
	// The owned count must match an independent computation (it may
	// legitimately be 0 for a small map on an unlucky shard).
	indep, err := NewShardView(cellmap.Static{M: m}, ring, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalEntries != m.Len() || h.Entries != indep.ownedEntries(m) {
		t.Errorf("entry counts = %+v (map has %d, shard owns %d)", h, m.Len(), indep.ownedEntries(m))
	}

	// Health tracks a hot swap: generation and counts update.
	m2 := mkMap(t, "2017-01", genTwoEntries())
	sw.Swap(m2, 9)
	h2 := get()
	if h2.Generation != 9 || h2.TotalEntries != m2.Len() || h2.Period != "2017-01" {
		t.Errorf("post-swap health = %+v", h2)
	}

	// /v1/info rides along on shard nodes.
	resp, err := http.Get(srv.URL + "/v1/info")
	if err != nil {
		t.Fatal(err)
	}
	var info cellmap.Info
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Generation != 9 || info.Entries != m2.Len() {
		t.Errorf("info = %+v", info)
	}
}

// TestOwnedEntriesPartition: with unit-block-only entries, every entry is
// owned by exactly one shard, so the per-shard owned counts must
// partition the map exactly.
func TestOwnedEntriesPartition(t *testing.T) {
	m := mkMap(t, "x", genOneEntries())
	ring := NewRing(3, DefaultVNodes)
	total := 0
	for s := 0; s < 3; s++ {
		view, err := NewShardView(cellmap.Static{M: m}, ring, s)
		if err != nil {
			t.Fatal(err)
		}
		total += view.ownedEntries(m)
	}
	if total != m.Len() {
		t.Errorf("owned counts sum to %d, map has %d entries", total, m.Len())
	}
}
