// Package cluster turns the single-node lookup service into a shardable,
// replicated fleet: a deterministic consistent-hash ring partitions the
// prefix keyspace (netaddr unit blocks) across N shards, every shard runs
// R interchangeable replicas, and a stateless gateway routes single
// lookups to the owning shard and scatter-gathers batch lookups across
// shards — with health checking, retry, hedging, and a guard that keeps
// every batch response on one map generation.
//
// The fleet is described by a static topology file every node loads at
// boot. Routing is a pure function of (shard count, vnodes, address), so
// gateways and shards agree on ownership without any coordination
// traffic; replica addresses never influence key placement, which means
// replacing or adding a replica moves no data.
package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/url"
	"os"
	"strconv"
	"strings"
)

// TopologyFormat is the format tag a topology file must carry.
const TopologyFormat = "cellspot-topology/1"

// DefaultVNodes is the virtual-node count per shard when the topology
// file leaves vnodes unset. 64 points per shard keeps the maximum/mean
// keyspace imbalance within a few percent for small fleets.
const DefaultVNodes = 64

// ShardSpec lists one shard's interchangeable replicas by base URL.
type ShardSpec struct {
	Replicas []string `json:"replicas"`
}

// Topology is the static cluster description: who serves which partition.
// The partition layout is fully determined by len(Shards) and VNodes;
// replica URLs only tell the gateway where to send traffic.
type Topology struct {
	Format string      `json:"format"`
	VNodes int         `json:"vnodes,omitempty"`
	Shards []ShardSpec `json:"shards"`
}

// NumShards returns the shard count N.
func (t Topology) NumShards() int { return len(t.Shards) }

// LoadTopology reads and validates a topology file.
func LoadTopology(path string) (Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return Topology{}, fmt.Errorf("cluster: open topology: %w", err)
	}
	defer f.Close()
	return ParseTopology(f)
}

// ParseTopology decodes and validates a topology document.
func ParseTopology(r io.Reader) (Topology, error) {
	var t Topology
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&t); err != nil {
		return Topology{}, fmt.Errorf("cluster: parse topology: %w", err)
	}
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

// Validate checks the invariants every node relies on. A topology that
// fails validation must abort boot: a node running with a malformed or
// disagreeing topology would silently misroute the keyspace.
func (t Topology) Validate() error {
	if t.Format != TopologyFormat {
		return fmt.Errorf("cluster: topology format %q, want %q", t.Format, TopologyFormat)
	}
	if t.VNodes < 0 {
		return fmt.Errorf("cluster: negative vnodes %d", t.VNodes)
	}
	if len(t.Shards) == 0 {
		return fmt.Errorf("cluster: topology has no shards")
	}
	seen := make(map[string]string, len(t.Shards)*2)
	for i, s := range t.Shards {
		if len(s.Replicas) == 0 {
			return fmt.Errorf("cluster: shard %d has no replicas", i)
		}
		for j, raw := range s.Replicas {
			where := fmt.Sprintf("shard %d replica %d", i, j)
			u, err := url.Parse(raw)
			if err != nil {
				return fmt.Errorf("cluster: %s: bad url %q: %w", where, raw, err)
			}
			if u.Scheme != "http" && u.Scheme != "https" {
				return fmt.Errorf("cluster: %s: url %q must be http or https", where, raw)
			}
			if u.Host == "" {
				return fmt.Errorf("cluster: %s: url %q has no host", where, raw)
			}
			if u.Path != "" && u.Path != "/" {
				return fmt.Errorf("cluster: %s: url %q must not carry a path", where, raw)
			}
			key := strings.TrimSuffix(raw, "/")
			if prev, dup := seen[key]; dup {
				return fmt.Errorf("cluster: replica %q listed twice (%s and %s)", raw, prev, where)
			}
			seen[key] = where
		}
	}
	return nil
}

// vnodes returns the effective virtual-node count.
func (t Topology) vnodes() int {
	if t.VNodes > 0 {
		return t.VNodes
	}
	return DefaultVNodes
}

// Ring builds the topology's consistent-hash ring.
func (t Topology) Ring() *Ring {
	return NewRing(len(t.Shards), t.vnodes())
}

// ParseShardID parses the -shard i/N flag form and cross-checks N against
// the topology, catching the operator error of pointing a node at a
// topology file from a different fleet size.
func ParseShardID(spec string, t Topology) (int, error) {
	idx, total, ok := strings.Cut(spec, "/")
	if !ok {
		return 0, fmt.Errorf("cluster: shard spec %q not of the form i/N", spec)
	}
	i, err := strconv.Atoi(idx)
	if err != nil {
		return 0, fmt.Errorf("cluster: shard spec %q: bad index: %w", spec, err)
	}
	n, err := strconv.Atoi(total)
	if err != nil {
		return 0, fmt.Errorf("cluster: shard spec %q: bad count: %w", spec, err)
	}
	if n != t.NumShards() {
		return 0, fmt.Errorf("cluster: shard spec %q names %d shards but topology has %d",
			spec, n, t.NumShards())
	}
	if i < 0 || i >= n {
		return 0, fmt.Errorf("cluster: shard index %d out of range [0,%d)", i, n)
	}
	return i, nil
}
