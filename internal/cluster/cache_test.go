package cluster

import (
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"net/netip"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellspot/internal/cellmap"
	"cellspot/internal/obs"
)

func cacheResp(addr string, gen uint64) cellmap.LookupResponse {
	return cellmap.LookupResponse{Addr: addr, Generation: gen, Cellular: true, Prefix: addr + "/32"}
}

// TestLookupCacheUnit exercises the cache in isolation: LRU order,
// generation advance semantics, and the refusal to cache the past.
func TestLookupCacheUnit(t *testing.T) {
	reg := obs.NewRegistry()
	c := newLookupCache(2, reg)

	a1 := netip.MustParseAddr("10.0.0.1")
	a2 := netip.MustParseAddr("10.0.0.2")
	a3 := netip.MustParseAddr("10.0.0.3")

	if _, gen, ok := c.get(a1); ok || gen != 0 {
		t.Fatalf("empty cache returned a hit (gen %d)", gen)
	}
	c.put(1, a1, cacheResp("10.0.0.1", 1))
	c.put(1, a2, cacheResp("10.0.0.2", 1))
	if r, gen, ok := c.get(a1); !ok || gen != 1 || r.Addr != "10.0.0.1" {
		t.Fatalf("get(a1) = %+v gen=%d ok=%v", r, gen, ok)
	}

	// a1 was just touched, so inserting a3 over capacity must evict a2.
	c.put(1, a3, cacheResp("10.0.0.3", 1))
	if c.len() != 2 {
		t.Fatalf("len = %d after eviction, want 2", c.len())
	}
	if _, _, ok := c.get(a2); ok {
		t.Fatal("a2 survived eviction but was least recently used")
	}
	if _, _, ok := c.get(a1); !ok {
		t.Fatal("a1 evicted despite being most recently used")
	}

	// An answer from an older generation must never enter the cache.
	c.observe(5)
	if c.len() != 0 || c.generation() != 5 {
		t.Fatalf("observe(5): len=%d gen=%d, want empty at 5", c.len(), c.generation())
	}
	c.put(3, a1, cacheResp("10.0.0.1", 3))
	if c.len() != 0 {
		t.Fatal("stale-generation put was cached")
	}
	// A newer-generation put advances and lands.
	c.put(7, a1, cacheResp("10.0.0.1", 7))
	if r, gen, ok := c.get(a1); !ok || gen != 7 || r.Generation != 7 {
		t.Fatalf("get after gen-7 put = %+v gen=%d ok=%v", r, gen, ok)
	}

	// getMany is atomic: all hits share the returned generation.
	c.put(7, a2, cacheResp("10.0.0.2", 7))
	out := make([]cellmap.LookupResponse, 3)
	hit := make([]bool, 3)
	gen := c.getMany([]netip.Addr{a1, a2, a3}, out, hit)
	if gen != 7 || !hit[0] || !hit[1] || hit[2] {
		t.Fatalf("getMany gen=%d hits=%v", gen, hit)
	}

	// Metrics reflect the traffic above.
	if c.mHits.Value() == 0 || c.mMisses.Value() == 0 || c.mInvalidations.Value() == 0 {
		t.Errorf("counters hits=%d misses=%d invalidations=%d, want all > 0",
			c.mHits.Value(), c.mMisses.Value(), c.mInvalidations.Value())
	}
	if c.mEntries.Value() != 2 {
		t.Errorf("entries gauge = %d, want 2", c.mEntries.Value())
	}
	_ = reg

	// nil cache (caching disabled) is a no-op for write paths.
	var nc *lookupCache
	nc.observe(1)
	nc.put(1, a1, cacheResp("10.0.0.1", 1))
	if nc.len() != 0 {
		t.Fatal("nil cache reported entries")
	}
}

// TestGatewayCacheServing pins the serving semantics end to end: a repeat
// single lookup is answered from the cache byte-for-byte identically, a
// repeat batch is an all-hit, and a fleet-wide swap observed by a health
// probe invalidates everything so the next answer is the new generation's.
func TestGatewayCacheServing(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	f := newTestFleet(t, 2, 1, m1, 1)
	g, srv, reg := f.gateway(t, func(c *GatewayConfig) {
		c.CacheSize = 64
	})
	ctx := context.Background()
	g.CheckNow(ctx)

	get := func(a netip.Addr) (int, []byte) {
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + a.String())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	_ = reg

	addr := coveredAddrs()[0]
	st1, body1 := get(addr)
	if st1 != http.StatusOK {
		t.Fatalf("first lookup: status %d: %s", st1, body1)
	}
	hitsBefore := g.cache.mHits.Value()
	st2, body2 := get(addr)
	if st2 != http.StatusOK || string(body2) != string(body1) {
		t.Fatalf("cached lookup differs: status %d body %q want %q", st2, body2, body1)
	}
	if got := g.cache.mHits.Value(); got != hitsBefore+1 {
		t.Fatalf("cache hits %v after repeat lookup, want %v", got, hitsBefore+1)
	}

	// A miss (uncachable 404-class answer is still a 200 JSON miss here)
	// caches too: non-cellular answers are answers.
	missAddr := netip.MustParseAddr("192.0.2.1")
	_, mb1 := get(missAddr)
	_, mb2 := get(missAddr)
	if string(mb1) != string(mb2) {
		t.Fatalf("negative answer not cached identically: %q vs %q", mb1, mb2)
	}

	// Batch path: first populates, second is an all-hit at one generation.
	addrs := coveredAddrs()[:8]
	br1, err := g.Batch(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	hitsBefore = g.cache.mHits.Value()
	br2, err := g.Batch(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if br2.Generation != br1.Generation || len(br2.Results) != len(br1.Results) {
		t.Fatalf("cached batch shape differs: %+v vs %+v", br2, br1)
	}
	for i := range br2.Results {
		if !reflect.DeepEqual(br2.Results[i], br1.Results[i]) {
			t.Fatalf("cached batch result %d differs: %+v vs %+v", i, br2.Results[i], br1.Results[i])
		}
	}
	if got := g.cache.mHits.Value(); got < hitsBefore+uint64(len(addrs)) {
		t.Fatalf("cache hits %v after all-hit batch, want >= %v", got, hitsBefore+uint64(len(addrs)))
	}

	// Swap the fleet to generation 2; the health probe observes it and the
	// cache drops generation 1 wholesale.
	f.swap(0, 0, m2, 2)
	f.swap(1, 0, m2, 2)
	g.CheckNow(ctx)
	if g.cache.generation() != 2 || g.cache.len() != 0 {
		t.Fatalf("after swap: cache gen=%d len=%d, want 2 and empty",
			g.cache.generation(), g.cache.len())
	}
	if g.cache.mInvalidations.Value() == 0 {
		t.Error("invalidation counter did not move on swap")
	}
	st3, body3 := get(addr)
	var lr cellmap.LookupResponse
	if st3 != http.StatusOK || json.Unmarshal(body3, &lr) != nil || lr.Generation != 2 {
		t.Fatalf("post-swap lookup: status %d gen %d body %s", st3, lr.Generation, body3)
	}
	want := cellmap.LookupAddr(m2, 2, addr, addr.String())
	if !reflect.DeepEqual(lr, want) {
		t.Fatalf("post-swap answer %+v, want %+v", lr, want)
	}

	// The cache family names are exported on /metrics.
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, fam := range []string{
		"cluster_cache_hits_total",
		"cluster_cache_misses_total",
		"cluster_cache_invalidations_total",
		"cluster_cache_entries",
	} {
		if !strings.Contains(string(metrics), fam) {
			t.Errorf("metric %q missing from gateway /metrics", fam)
		}
	}
}

// TestGatewayCacheSwapHammer is the invalidation torture test, run under
// -race in CI: a 3×2 fleet rolls through six generations while batch
// clients hammer the cached gateway. Three properties must hold for every
// single 200 answer:
//
//  1. zero mixed-generation batches — all results in a response carry the
//     response's generation;
//  2. zero stale-generation responses — each client's observed generation
//     never decreases (the cache can only move forward);
//  3. zero wrong answers — every result matches the dataset of the
//     generation it claims.
func TestGatewayCacheSwapHammer(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())

	const lastGen = 6
	maps := map[uint64]*cellmap.Map{}
	expected := map[uint64]map[netip.Addr]cellmap.LookupResponse{}
	for gen := uint64(1); gen <= lastGen; gen++ {
		m := m1
		if gen%2 == 0 {
			m = m2
		}
		maps[gen] = m
		expected[gen] = map[netip.Addr]cellmap.LookupResponse{}
		for _, a := range coveredAddrs() {
			expected[gen][a] = cellmap.LookupAddr(m, gen, a, a.String())
		}
	}

	f := newTestFleet(t, 3, 2, m1, 1)
	g, _, _ := f.gateway(t, func(c *GatewayConfig) {
		c.CacheSize = 1024
		c.HedgeDelay = 10 * time.Millisecond
		c.Backoff = 5 * time.Millisecond
		c.HealthInterval = 10 * time.Millisecond
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	healthDone := make(chan struct{})
	go func() {
		defer close(healthDone)
		g.Run(ctx)
	}()
	waitFor(t, time.Second, func() bool {
		for _, r := range g.Health().Replicas {
			if !r.Up {
				return false
			}
		}
		return true
	})

	var (
		stop      = make(chan struct{})
		wg        sync.WaitGroup
		served    atomic.Int64
		tolerated atomic.Int64
	)
	addrs := coveredAddrs()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(seed, 0xcafe))
			var lastSeen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				n := 1 + rng.IntN(len(addrs))
				perm := rng.Perm(len(addrs))[:n]
				batch := make([]netip.Addr, n)
				for i, idx := range perm {
					batch[i] = addrs[idx]
				}
				br, err := g.Batch(ctx, batch)
				if err != nil {
					tolerated.Add(1) // mid-swap generation split; retried by design
					continue
				}
				if br.Generation < lastSeen {
					t.Errorf("STALE RESPONSE: generation went backwards %d -> %d", lastSeen, br.Generation)
					return
				}
				lastSeen = br.Generation
				exp, known := expected[br.Generation]
				if !known {
					t.Errorf("batch claims unknown generation %d", br.Generation)
					return
				}
				for _, r := range br.Results {
					if r.Generation != br.Generation {
						t.Errorf("MIXED-GENERATION BATCH: result at %d inside response at %d",
							r.Generation, br.Generation)
						return
					}
					a, err := netip.ParseAddr(r.Addr)
					if err != nil {
						t.Errorf("unparseable addr %q in result", r.Addr)
						return
					}
					if want := exp[a]; !reflect.DeepEqual(r, want) {
						t.Errorf("WRONG ANSWER for %s at generation %d: got %+v, want %+v",
							a, br.Generation, r, want)
						return
					}
				}
				served.Add(1)
			}
		}(uint64(w + 1))
	}

	// Roll the fleet through generations 2..lastGen, each swap staggered
	// so the gateway keeps seeing mixed fleets mid-roll.
	for gen := uint64(2); gen <= lastGen; gen++ {
		time.Sleep(30 * time.Millisecond)
		for s := 0; s < 3; s++ {
			for j := 0; j < 2; j++ {
				f.swap(s, j, maps[gen], gen)
				time.Sleep(2 * time.Millisecond)
			}
		}
	}
	time.Sleep(60 * time.Millisecond)

	close(stop)
	wg.Wait()
	cancel()
	<-healthDone

	if served.Load() == 0 {
		t.Fatal("no batches served")
	}
	hits := g.cache.mHits.Value()
	if hits == 0 {
		t.Error("hammer never hit the cache — the cached path was not exercised")
	}
	if g.cache.generation() != lastGen {
		t.Errorf("cache settled at generation %d, want %d", g.cache.generation(), lastGen)
	}
	t.Logf("served=%d tolerated=%d cacheHits=%v entries=%d",
		served.Load(), tolerated.Load(), hits, g.cache.len())
}

// TestGatewayCacheRefetchOnMidBatchSwap forces the narrow race the merge
// rule exists for: the cache holds generation-1 hits, the fleet has moved
// to generation 2, and a batch with both hits and misses arrives. The
// gateway must not stitch gen-1 cache hits onto gen-2 fetched answers.
func TestGatewayCacheRefetchOnMidBatchSwap(t *testing.T) {
	m1 := mkMap(t, "2016-12", genOneEntries())
	m2 := mkMap(t, "2017-01", genTwoEntries())
	f := newTestFleet(t, 2, 1, m1, 1)
	g, _, _ := f.gateway(t, func(c *GatewayConfig) {
		c.CacheSize = 64
		c.Backoff = 2 * time.Millisecond
	})
	ctx := context.Background()
	g.CheckNow(ctx)

	addrs := coveredAddrs()[:6]
	if _, err := g.Batch(ctx, addrs[:3]); err != nil {
		t.Fatal(err)
	}
	if g.cache.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", g.cache.len())
	}

	// Swap the fleet under the cache's feet — no health probe runs, so the
	// cache still believes generation 1 when the next batch arrives.
	f.swap(0, 0, m2, 2)
	f.swap(1, 0, m2, 2)

	br, err := g.Batch(ctx, addrs)
	if err != nil {
		t.Fatal(err)
	}
	if br.Generation != 2 {
		t.Fatalf("post-swap batch at generation %d, want 2", br.Generation)
	}
	for i, r := range br.Results {
		if r.Generation != 2 {
			t.Fatalf("result %d at generation %d inside a generation-2 batch", i, r.Generation)
		}
		want := cellmap.LookupAddr(m2, 2, addrs[i], addrs[i].String())
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("result %d = %+v, want %+v", i, r, want)
		}
	}
	if g.cache.generation() != 2 {
		t.Fatalf("cache generation %d after refetch, want 2", g.cache.generation())
	}
}
