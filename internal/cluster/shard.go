package cluster

import (
	"fmt"
	"net/http"
	"net/netip"
	"strconv"
	"sync/atomic"
	"time"

	"cellspot/internal/cellmap"
	"cellspot/internal/netaddr"
	"cellspot/internal/obs"
)

// HealthResponse is the body of GET /v1/cluster/health on a shard node:
// the facts the gateway's health checker routes on.
type HealthResponse struct {
	Shard      int    `json:"shard"`
	Shards     int    `json:"shards"`
	Generation uint64 `json:"generation"`
	// Entries counts the served entries this shard owns (an entry is owned
	// when any unit block it covers hashes to the shard).
	Entries int `json:"entries"`
	// TotalEntries counts the full resident map, for comparison.
	TotalEntries int    `json:"total_entries"`
	Period       string `json:"period,omitempty"`
}

// ShardView is one node's partition-filtered view over a map source. The
// full map stays resident (it is already loaded from the snapshot store,
// and aggregated prefixes may straddle shard boundaries at block
// granularity), but the request path only answers addresses the ring
// assigns to this shard; anything else is a 421 naming the owner, so a
// misconfigured client or stale gateway fails loudly instead of silently
// double-serving the keyspace.
type ShardView struct {
	src  cellmap.Source
	ring *Ring
	id   int

	// owned caches the owned-entry count per map pointer: the count walk
	// expands every prefix once, so health checks must not repeat it.
	owned atomic.Pointer[ownedCount]

	// maxInflight bounds concurrently served lookup/batch requests; beyond
	// it the node sheds with 503 + Retry-After instead of queueing into
	// collapse. 0 means unbounded. Health and info stay exempt so the
	// gateway's view of a shedding node remains accurate.
	maxInflight int64
	inflight    atomic.Int64

	mMisrouted *obs.Counter
	mOwned     *obs.Gauge
	mShed      *obs.Counter
}

type ownedCount struct {
	m *cellmap.Map
	n int
}

// NewShardView wraps src as shard id of the ring's partitioning.
func NewShardView(src cellmap.Source, ring *Ring, id int) (*ShardView, error) {
	if id < 0 || id >= ring.Shards() {
		return nil, fmt.Errorf("cluster: shard id %d out of range [0,%d)", id, ring.Shards())
	}
	return &ShardView{src: src, ring: ring, id: id}, nil
}

// ID returns the shard index this view serves.
func (v *ShardView) ID() int { return v.id }

// SetMaxInflight bounds concurrent lookup/batch requests (0 = unbounded).
// Call before mounting; the limit is read without synchronization.
func (v *ShardView) SetMaxInflight(n int) {
	if n < 0 {
		n = 0
	}
	v.maxInflight = int64(n)
}

// EnableMetrics registers the shard-side cluster metrics:
//
//	cluster_misrouted_total  counter: requests for addresses this shard
//	                         does not own (each one is a routing bug)
//	cluster_owned_entries    gauge: owned entries in the served map
func (v *ShardView) EnableMetrics(reg *obs.Registry) {
	v.mMisrouted = reg.Counter("cluster_misrouted_total",
		"Requests for addresses outside this shard's partition.")
	v.mOwned = reg.Gauge("cluster_owned_entries",
		"Entries of the served map owned by this shard.")
	v.mShed = reg.Counter("cluster_shed_total",
		"Requests refused by admission control (in-flight bound).")
	m, _ := v.src.Current()
	v.mOwned.Set(int64(v.ownedEntries(m)))
}

// Owns reports whether this shard's partition covers addr.
func (v *ShardView) Owns(addr netip.Addr) bool {
	return v.ring.Owner(addr) == v.id
}

// ownedEntries counts entries the shard owns in m, caching per map
// pointer so a hot-swap recomputes exactly once.
func (v *ShardView) ownedEntries(m *cellmap.Map) int {
	if c := v.owned.Load(); c != nil && c.m == m {
		return c.n
	}
	n := 0
	for _, e := range m.Entries() {
		blocks, ok := netaddr.ExpandPrefix(e.Prefix)
		if !ok {
			// Wider than the expansion bound; attribute by base block.
			if v.ring.OwnerBlock(netaddr.BlockFromAddr(e.Prefix.Addr())) == v.id {
				n++
			}
			continue
		}
		for _, b := range blocks {
			if v.ring.OwnerBlock(b) == v.id {
				n++
				break
			}
		}
	}
	v.owned.Store(&ownedCount{m: m, n: n})
	v.mOwned.Set(int64(n))
	return n
}

// MountShard registers the partition-filtered lookup service on r:
//
//	GET  /v1/lookup?ip=ADDR  — owned addresses only; 421 otherwise
//	POST /v1/lookup/batch    — every address must be owned
//	GET  /v1/cluster/health  — shard id, generation, owned entry count
//	GET  /v1/info            — the usual dataset metadata
//
// Like the single-node service, every handler resolves the source exactly
// once per request, so one response never mixes generations.
//
// Lookup and batch run behind two degradation guards: admission control
// (SetMaxInflight; excess requests get 503 + Retry-After instead of
// queueing) and deadline enforcement (a request whose propagated gateway
// deadline — see DeadlineHeader — already passed gets 504 without touching
// the map; its caller stopped listening).
func MountShard(r cellmap.Router, v *ShardView) {
	r.HandleFunc("GET /v1/lookup", v.guard(func(w http.ResponseWriter, req *http.Request) {
		q := req.URL.Query().Get("ip")
		if q == "" {
			cellmap.WriteError(w, http.StatusBadRequest, "missing ip parameter")
			return
		}
		addr, err := netip.ParseAddr(q)
		if err != nil {
			cellmap.WriteError(w, http.StatusBadRequest, "bad ip: "+err.Error())
			return
		}
		if owner := v.ring.Owner(addr); owner != v.id {
			v.mMisrouted.Inc()
			cellmap.WriteError(w, http.StatusMisdirectedRequest,
				fmt.Sprintf("address %s belongs to shard %d, this is shard %d", addr, owner, v.id))
			return
		}
		m, gen := v.src.Current()
		cellmap.WriteJSON(w, cellmap.LookupAddr(m, gen, addr, q))
	}))
	r.HandleFunc("POST /v1/lookup/batch", v.guard(func(w http.ResponseWriter, req *http.Request) {
		addrs, names, ok := cellmap.DecodeBatch(w, req, cellmap.DefaultBatchLimit)
		if !ok {
			return
		}
		for _, a := range addrs {
			if owner := v.ring.Owner(a); owner != v.id {
				v.mMisrouted.Inc()
				cellmap.WriteError(w, http.StatusMisdirectedRequest,
					fmt.Sprintf("address %s belongs to shard %d, this is shard %d", a, owner, v.id))
				return
			}
		}
		m, gen := v.src.Current()
		resp := cellmap.BatchResponse{Generation: gen, Results: make([]cellmap.LookupResponse, 0, len(addrs))}
		for i, a := range addrs {
			resp.Results = append(resp.Results, cellmap.LookupAddr(m, gen, a, names[i]))
		}
		cellmap.WriteJSON(w, resp)
	}))
	r.HandleFunc("GET /v1/cluster/health", func(w http.ResponseWriter, _ *http.Request) {
		m, gen := v.src.Current()
		cellmap.WriteJSON(w, HealthResponse{
			Shard:        v.id,
			Shards:       v.ring.Shards(),
			Generation:   gen,
			Entries:      v.ownedEntries(m),
			TotalEntries: m.Len(),
			Period:       m.Period,
		})
	})
	cellmap.MountInfo(r, v.src)
}

// guard wraps a serving handler with the shard's degradation policy:
// deadline enforcement first (free), then the in-flight bound.
func (v *ShardView) guard(next http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, req *http.Request) {
		if h := req.Header.Get(DeadlineHeader); h != "" {
			if micros, err := strconv.ParseInt(h, 10, 64); err == nil {
				if !time.Now().Before(time.UnixMicro(micros)) {
					cellmap.WriteError(w, http.StatusGatewayTimeout,
						"request deadline expired before processing")
					return
				}
			}
		}
		if v.maxInflight > 0 {
			if v.inflight.Add(1) > v.maxInflight {
				v.inflight.Add(-1)
				v.mShed.Inc()
				w.Header().Set("Retry-After", "1")
				cellmap.WriteError(w, http.StatusServiceUnavailable,
					"shard at capacity, retry")
				return
			}
			defer v.inflight.Add(-1)
		}
		next(w, req)
	}
}
