package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cellspot/internal/obs"
)

// replica is the gateway's live view of one shard replica. All fields
// besides the immutable identity are atomics: the health loop, the
// request path, and the status endpoint read and write them concurrently.
type replica struct {
	shard int
	index int
	url   string // base URL, no trailing slash

	up    atomic.Bool
	gen   atomic.Uint64
	fails atomic.Int64 // consecutive request-path failures
	br    *breaker     // nil when breakers are disabled

	mUp  *obs.Gauge
	mGen *obs.Gauge
}

// ReplicaStatus is one replica's row in the gateway health response.
type ReplicaStatus struct {
	Shard      int    `json:"shard"`
	Replica    int    `json:"replica"`
	URL        string `json:"url"`
	Up         bool   `json:"up"`
	Generation uint64 `json:"generation"`
	// Breaker is the replica's circuit-breaker state: "closed",
	// "half-open", or "open".
	Breaker string `json:"breaker"`
}

// GatewayHealth is the body of GET /v1/cluster/health on a gateway: the
// fleet as the gateway currently sees it.
type GatewayHealth struct {
	Shards           int             `json:"shards"`
	QuorumGeneration uint64          `json:"quorum_generation"`
	Replicas         []ReplicaStatus `json:"replicas"`
}

// checkReplica probes one replica's health endpoint and folds the answer
// into the gateway's view.
func (g *Gateway) checkReplica(ctx context.Context, rep *replica) {
	ctx, cancel := context.WithTimeout(ctx, g.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rep.url+"/v1/cluster/health", nil)
	if err != nil {
		g.markDown(rep)
		return
	}
	resp, err := g.cfg.Client.Do(req)
	if err != nil {
		g.markDown(rep)
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		g.markDown(rep)
		return
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		g.markDown(rep)
		return
	}
	if h.Shard != rep.shard || h.Shards != g.ring.Shards() {
		// The node answering here serves a different partition than the
		// topology claims — treat as down and say why once.
		if rep.up.Swap(false) {
			g.logf("replica %s: topology mismatch: reports shard %d/%d, expected %d/%d",
				rep.url, h.Shard, h.Shards, rep.shard, g.ring.Shards())
		}
		rep.mUp.Set(0)
		return
	}
	rep.gen.Store(h.Generation)
	rep.mGen.Set(int64(h.Generation))
	// A probe is often the first place a rolling swap becomes visible;
	// fold it into the cache so stale entries die before the next lookup.
	g.cache.observe(h.Generation)
	if !rep.up.Swap(true) {
		g.logf("replica %s (shard %d) up at generation %d", rep.url, rep.shard, h.Generation)
	}
	rep.mUp.Set(1)
	rep.fails.Store(0)
}

func (g *Gateway) markDown(rep *replica) {
	if rep.up.Swap(false) {
		g.logf("replica %s (shard %d) down", rep.url, rep.shard)
	}
	rep.mUp.Set(0)
}

// CheckNow sweeps every replica once, concurrently. Run calls it on every
// tick; callers may use it to warm the view before taking traffic.
func (g *Gateway) CheckNow(ctx context.Context) {
	var wg sync.WaitGroup
	for _, shard := range g.replicas {
		for _, rep := range shard {
			wg.Add(1)
			go func(rep *replica) {
				defer wg.Done()
				g.checkReplica(ctx, rep)
			}(rep)
		}
	}
	wg.Wait()
}

// Run drives the health loop until ctx is done.
func (g *Gateway) Run(ctx context.Context) {
	t := time.NewTicker(g.cfg.HealthInterval)
	defer t.Stop()
	g.CheckNow(ctx)
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			g.CheckNow(ctx)
		}
	}
}

// quorumGen returns the fleet's quorum generation: the highest generation
// that a majority of up replicas have reached. Replicas below it are
// laggards — deprioritized, not excluded, since a stale answer at a
// uniform generation still beats no answer.
func (g *Gateway) quorumGen() uint64 {
	gens := make([]uint64, 0, 8)
	for _, shard := range g.replicas {
		for _, rep := range shard {
			if rep.up.Load() {
				gens = append(gens, rep.gen.Load())
			}
		}
	}
	if len(gens) == 0 {
		return 0
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	return gens[len(gens)/2]
}

// Health snapshots the gateway's view of the fleet.
func (g *Gateway) Health() GatewayHealth {
	h := GatewayHealth{Shards: g.ring.Shards(), QuorumGeneration: g.quorumGen()}
	for _, shard := range g.replicas {
		for _, rep := range shard {
			h.Replicas = append(h.Replicas, ReplicaStatus{
				Shard:      rep.shard,
				Replica:    rep.index,
				URL:        rep.url,
				Up:         rep.up.Load(),
				Generation: rep.gen.Load(),
				Breaker:    rep.br.stateName(),
			})
		}
	}
	return h
}

func (g *Gateway) logf(format string, args ...any) {
	if g.cfg.Logf != nil {
		g.cfg.Logf(format, args...)
	}
}
