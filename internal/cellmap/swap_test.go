package cellmap

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cellspot/internal/netaddr"
	"cellspot/internal/obs"
)

// genMap builds a map whose every entry carries ASN = asnTag, over nBlocks
// /24 blocks under 10.gen.0.0. Tagging all entries with the generation's
// ASN lets readers detect a torn map: any lookup returning a mix of tags,
// or a tag inconsistent with the generation it loaded, is a race.
func genMap(t testing.TB, asnTag uint32, nBlocks int) *Map {
	t.Helper()
	detected := make(netaddr.Set)
	for i := 0; i < nBlocks; i++ {
		detected.Add(netaddr.V4Block(10, byte(i>>8), byte(i)))
	}
	m, err := Build(0.5, fmt.Sprintf("gen-%d", asnTag), Inputs{
		Detected: detected,
		ASOf:     func(netaddr.Block) (uint32, bool) { return asnTag, true },
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestSwappableConcurrentLookups hammers lookups from many goroutines while
// generations swap concurrently. Every reader loads the current (map,
// generation) pair once, then resolves several addresses against it: each
// answer must come from exactly the loaded generation — a complete old map
// or a complete new map, never a mix. Run under -race.
func TestSwappableConcurrentLookups(t *testing.T) {
	const (
		generations = 8
		readers     = 8
		nBlocks     = 64
	)
	maps := make([]*Map, generations)
	for g := range maps {
		maps[g] = genMap(t, uint32(1000+g+1), nBlocks)
	}

	reg := obs.NewRegistry()
	sw := NewSwappable(maps[0], 1)
	sw.EnableMetrics(reg)

	addrs := []netip.Addr{
		netip.MustParseAddr("10.0.0.1"),
		netip.MustParseAddr("10.0.7.200"),
		netip.MustParseAddr("10.0.63.9"),
	}

	done := make(chan struct{})
	var lookups atomic.Int64
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				m, gen := sw.Current()
				want := uint32(1000 + gen)
				for _, a := range addrs {
					e, ok := m.Lookup(a)
					if !ok {
						t.Errorf("gen %d: lookup %s missed", gen, a)
						return
					}
					if e.ASN != want {
						t.Errorf("gen %d: lookup %s returned ASN %d, want %d (torn map)", gen, a, e.ASN, want)
						return
					}
				}
				lookups.Add(1)
			}
		}()
	}

	// Swap through every generation while the readers run.
	for g := 1; g < generations; g++ {
		time.Sleep(2 * time.Millisecond)
		sw.Swap(maps[g], uint64(g+1))
	}
	time.Sleep(2 * time.Millisecond)
	close(done)
	wg.Wait()

	if n := lookups.Load(); n == 0 {
		t.Fatal("no lookups completed")
	}
	if gen := sw.Generation(); gen != generations {
		t.Fatalf("final generation = %d, want %d", gen, generations)
	}
}

// TestSwappableHTTPSwapVisibility drives the served routes across a swap:
// /v1/info and /v1/lookup must flip together to the new generation, and the
// gauges must track the served map.
func TestSwappableHTTPSwapVisibility(t *testing.T) {
	reg := obs.NewRegistry()
	sw := NewSwappable(genMap(t, 77, 4), 1)
	sw.EnableMetrics(reg)

	mux := http.NewServeMux()
	MountSource(mux, sw)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	getInfo := func() Info {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/info")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var info Info
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		return info
	}
	lookupASN := func(ip string) uint32 {
		t.Helper()
		resp, err := http.Get(srv.URL + "/v1/lookup?ip=" + ip)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var lr LookupResponse
		if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
			t.Fatal(err)
		}
		return lr.ASN
	}

	if info := getInfo(); info.Generation != 1 || info.Entries != 1 {
		t.Fatalf("before swap: %+v", info)
	}
	if asn := lookupASN("10.0.0.1"); asn != 77 {
		t.Fatalf("before swap: ASN %d, want 77", asn)
	}

	sw.Swap(genMap(t, 88, 8), 2)

	info := getInfo()
	if info.Generation != 2 {
		t.Fatalf("after swap: generation %d, want 2", info.Generation)
	}
	if asn := lookupASN("10.0.0.1"); asn != 88 {
		t.Fatalf("after swap: ASN %d, want 88", asn)
	}
	if v := reg.Gauge("cellmap_generation", "").Value(); v != 2 {
		t.Fatalf("cellmap_generation = %d, want 2", v)
	}
	if v := reg.Gauge("cellmap_entries", "").Value(); int(v) != info.Entries {
		t.Fatalf("cellmap_entries = %d, want %d", v, info.Entries)
	}
	if v := reg.Counter("cellmap_swap_total", "").Value(); v != 1 {
		t.Fatalf("cellmap_swap_total = %d, want 1", v)
	}
}

// TestSwappableMetricsOptional: a Swappable without EnableMetrics must swap
// and serve without touching metrics (nil obs handles no-op).
func TestSwappableMetricsOptional(t *testing.T) {
	sw := NewSwappable(Empty("none"), 0)
	if _, ok := sw.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty map answered a lookup")
	}
	sw.Swap(genMap(t, 5, 2), 1)
	if e, ok := sw.Lookup(netip.MustParseAddr("10.0.0.1")); !ok || e.ASN != 5 {
		t.Fatalf("after swap: %+v ok=%v", e, ok)
	}
}

// BenchmarkSwapUnderLoad measures lookup latency while a background
// goroutine hot-swaps generations continuously. Besides the mean ns/op it
// reports the lookup p99 in nanoseconds — the guardrail that a swap never
// stalls the read path.
func BenchmarkSwapUnderLoad(b *testing.B) {
	const nBlocks = 4096
	mapA := genMap(b, 1001, nBlocks)
	mapB := genMap(b, 1002, nBlocks)
	sw := NewSwappable(mapA, 1)

	stop := make(chan struct{})
	var swapperDone sync.WaitGroup
	swapperDone.Add(1)
	go func() {
		defer swapperDone.Done()
		gen := uint64(1)
		for {
			select {
			case <-stop:
				return
			default:
			}
			gen++
			m := mapA
			if gen%2 == 0 {
				m = mapB
			}
			sw.Swap(m, gen)
			time.Sleep(100 * time.Microsecond)
		}
	}()

	addr := netip.MustParseAddr("10.0.8.77")
	var mu sync.Mutex
	var all []float64

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 1024)
		for pb.Next() {
			start := time.Now()
			if _, ok := sw.Lookup(addr); !ok {
				b.Error("lookup missed")
				return
			}
			local = append(local, float64(time.Since(start).Nanoseconds()))
		}
		mu.Lock()
		all = append(all, local...)
		mu.Unlock()
	})
	b.StopTimer()
	close(stop)
	swapperDone.Wait()

	if len(all) > 0 {
		sort.Float64s(all)
		b.ReportMetric(all[min(len(all)*99/100, len(all)-1)], "p99-ns")
	}
}
