package cellmap

import (
	"fmt"
	"net/netip"
	"strings"
	"testing"
)

// allocTestMap builds a map with enough entries that the index takes
// non-trivial shapes (nesting comes from Read, which accepts any disjoint
// set; Build's aggregation output is disjoint by construction).
func allocTestMap(t testing.TB) *Map {
	t.Helper()
	var b strings.Builder
	const n = 512
	fmt.Fprintf(&b, `{"format":"cellspot-map/1","threshold":0.5,"period":"2016-12","entries":%d}`+"\n", n+4)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `{"prefix":"10.%d.%d.0/24","asn":%d,"ratio":0.5,"du":%d,"country":"DE"}`+"\n",
			i/200, i%256, 100+i, i)
	}
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&b, `{"prefix":"2001:db8:%d::/48","asn":%d,"ratio":0.75,"du":7,"country":"SE"}`+"\n",
			i, 900+i)
	}
	m, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestZeroAllocServingPath is the allocation regression gate for the
// single-node request path: Map.Lookup and LookupAddr must both run
// without allocating, on hits and misses, v4 and v6. CI runs this test by
// name so a regression fails the build.
func TestZeroAllocServingPath(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	m := allocTestMap(t)
	probes := []struct {
		name string
		addr netip.Addr
	}{
		{"v4-hit", netip.MustParseAddr("10.0.7.99")},
		{"v4-miss", netip.MustParseAddr("192.0.2.1")},
		{"v6-hit", netip.MustParseAddr("2001:db8:2::1")},
		{"v6-miss", netip.MustParseAddr("2001:db9::1")},
	}
	for _, p := range probes {
		p := p
		t.Run("Lookup/"+p.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(1000, func() {
				m.Lookup(p.addr)
			}); n != 0 {
				t.Errorf("Map.Lookup(%s) allocates %.1f times per op, want 0", p.addr, n)
			}
		})
		t.Run("LookupAddr/"+p.name, func(t *testing.T) {
			name := p.addr.String()
			if n := testing.AllocsPerRun(1000, func() {
				LookupAddr(m, 3, p.addr, name)
			}); n != 0 {
				t.Errorf("LookupAddr(%s) allocates %.1f times per op, want 0", p.addr, n)
			}
		})
	}
}

// TestLookupAddrEcho pins the echo contract: the answer carries the name
// the caller supplied (the client's own spelling), and hits carry the
// cached prefix string identical to Prefix.String().
func TestLookupAddrEcho(t *testing.T) {
	m := allocTestMap(t)
	addr := netip.MustParseAddr("10.0.7.99")
	resp := LookupAddr(m, 3, addr, "10.0.7.99")
	if resp.Addr != "10.0.7.99" || !resp.Cellular || resp.Generation != 3 {
		t.Fatalf("unexpected response %+v", resp)
	}
	e, ok := m.Lookup(addr)
	if !ok || resp.Prefix != e.Prefix.String() {
		t.Fatalf("cached prefix string %q != %q", resp.Prefix, e.Prefix.String())
	}
	miss := LookupAddr(m, 3, netip.MustParseAddr("192.0.2.1"), "192.0.2.1")
	if miss.Cellular || miss.Prefix != "" || miss.Addr != "192.0.2.1" {
		t.Fatalf("unexpected miss response %+v", miss)
	}
}
