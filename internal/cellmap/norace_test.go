//go:build !race

package cellmap

// raceEnabled lets allocation-counting tests skip under -race, where the
// runtime's instrumentation makes AllocsPerRun meaningless.
const raceEnabled = false
