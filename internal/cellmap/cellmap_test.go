package cellmap

import (
	"bytes"
	"math"
	"net/netip"
	"strings"
	"testing"

	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/netaddr"
)

func fixtureInputs(t *testing.T) Inputs {
	t.Helper()
	det := netaddr.NewSet(
		netaddr.V4Block(10, 0, 0), netaddr.V4Block(10, 0, 1), // AS1 -> /23
		netaddr.V4Block(10, 0, 4),       // AS1 lone
		netaddr.V4Block(20, 5, 0),       // AS2
		netaddr.V6Block(0x20010db80000), // AS2 v6
		netaddr.V4Block(99, 9, 9),       // unmapped: dropped
	)
	agg := beacon.NewAggregate()
	agg.Add(netaddr.V4Block(10, 0, 0), 100, 40, 38)
	agg.Add(netaddr.V4Block(10, 0, 1), 100, 10, 8)
	agg.Add(netaddr.V4Block(10, 0, 4), 100, 20, 19)
	agg.Add(netaddr.V4Block(20, 5, 0), 100, 30, 30)
	agg.Add(netaddr.V6Block(0x20010db80000), 100, 10, 9)
	ds, err := demand.NewDataset(map[netaddr.Block]float64{
		netaddr.V4Block(10, 0, 0):       40,
		netaddr.V4Block(10, 0, 1):       10,
		netaddr.V4Block(10, 0, 4):       20,
		netaddr.V4Block(20, 5, 0):       25,
		netaddr.V6Block(0x20010db80000): 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return Inputs{
		Detected: det,
		Beacon:   agg,
		Demand:   ds,
		ASOf: func(b netaddr.Block) (uint32, bool) {
			switch {
			case b.Key>>16 == 10 && !b.IsV6():
				return 1, true
			case b == netaddr.V4Block(20, 5, 0), b.IsV6():
				return 2, true
			}
			return 0, false
		},
		CountryOf: func(a uint32) (string, bool) {
			if a == 1 {
				return "DE", true
			}
			return "US", true
		},
	}
}

func TestBuild(t *testing.T) {
	m, err := Build(0.5, "2016-12", fixtureInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	// /23 + lone /24 for AS1, /24 + /48 for AS2.
	if m.Len() != 4 {
		t.Fatalf("entries = %v", m.Entries())
	}
	var merged *Entry
	for i := range m.Entries() {
		e := &m.Entries()[i]
		if e.Prefix.String() == "10.0.0.0/23" {
			merged = e
		}
	}
	if merged == nil {
		t.Fatal("adjacent blocks not merged into /23")
	}
	if merged.ASN != 1 || merged.Country != "DE" {
		t.Errorf("merged entry = %+v", merged)
	}
	// Hit-weighted ratio: (38+8)/(40+10).
	if math.Abs(merged.Ratio-46.0/50) > 1e-9 {
		t.Errorf("merged ratio = %g", merged.Ratio)
	}
	// DU: normalized over 100 raw -> /23 covers 50% of demand.
	if math.Abs(merged.DU-50000) > 1e-6 {
		t.Errorf("merged DU = %g", merged.DU)
	}
	if math.Abs(m.TotalDU()-demand.TotalDU) > 1e-6 {
		t.Errorf("total DU = %g (unmapped 99.9.9.0/24 carried no demand)", m.TotalDU())
	}
}

func TestLookup(t *testing.T) {
	m, err := Build(0.5, "2016-12", fixtureInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	e, ok := m.Lookup(netip.MustParseAddr("10.0.1.200"))
	if !ok || e.Prefix.String() != "10.0.0.0/23" {
		t.Errorf("Lookup in merged prefix = %+v,%v", e, ok)
	}
	if _, ok := m.Lookup(netip.MustParseAddr("10.0.2.1")); ok {
		t.Error("gap address matched")
	}
	if _, ok := m.Lookup(netip.MustParseAddr("99.9.9.9")); ok {
		t.Error("unmapped block published")
	}
	e6, ok := m.Lookup(netip.MustParseAddr("2001:db8::42"))
	if !ok || e6.ASN != 2 {
		t.Errorf("v6 lookup = %+v,%v", e6, ok)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	m, err := Build(0.5, "2016-12", fixtureInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Write(&buf); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Len() != m.Len() || m2.Threshold != 0.5 || m2.Period != "2016-12" {
		t.Fatalf("round trip lost data: %d entries, th=%g", m2.Len(), m2.Threshold)
	}
	for i := range m.Entries() {
		a, b := m.Entries()[i], m2.Entries()[i]
		if a.Prefix != b.Prefix || a.ASN != b.ASN || math.Abs(a.DU-b.DU) > 1e-9 {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a, b)
		}
	}
	// Lookups work on the deserialized map.
	if _, ok := m2.Lookup(netip.MustParseAddr("10.0.4.7")); !ok {
		t.Error("lookup broken after round trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "{oops\n",
		"wrong format":   `{"format":"something-else","entries":0}` + "\n",
		"bad entry":      `{"format":"cellspot-map/1","entries":1}` + "\n{nope\n",
		"invalid prefix": `{"format":"cellspot-map/1","entries":1}` + "\n" + `{"prefix":"","asn":1}` + "\n",
		"truncated":      `{"format":"cellspot-map/1","entries":5}` + "\n" + `{"prefix":"10.0.0.0/24","asn":1}` + "\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadRejectsDuplicateBlock is the regression test for the silent
// last-wins shadowing bug: a file carrying the same block twice used to be
// accepted, with whichever entry sorted last winning the index. Read must
// instead fail, naming the duplicated block.
func TestReadRejectsDuplicateBlock(t *testing.T) {
	in := `{"format":"cellspot-map/1","entries":3}` + "\n" +
		`{"prefix":"10.0.0.0/24","asn":1,"du":5}` + "\n" +
		`{"prefix":"10.0.1.0/24","asn":1,"du":6}` + "\n" +
		`{"prefix":"10.0.0.0/24","asn":2,"du":7}` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("duplicate block accepted")
	}
	if !strings.Contains(err.Error(), "duplicate block 10.0.0.0/24") {
		t.Errorf("error does not name the duplicate block: %v", err)
	}

	// Nested (non-identical) prefixes remain legal: longest-prefix match
	// disambiguates them, so they are not duplicates.
	nested := `{"format":"cellspot-map/1","entries":2}` + "\n" +
		`{"prefix":"10.0.0.0/23","asn":1}` + "\n" +
		`{"prefix":"10.0.0.0/24","asn":2}` + "\n"
	if _, err := Read(strings.NewReader(nested)); err != nil {
		t.Errorf("nested prefixes rejected: %v", err)
	}
}

// TestReadRejectsHostBits covers the companion hole: a prefix with host
// bits set would collide with its masked twin in the index while escaping
// an exact-equality duplicate check.
func TestReadRejectsHostBits(t *testing.T) {
	in := `{"format":"cellspot-map/1","entries":1}` + "\n" +
		`{"prefix":"10.0.0.7/24","asn":1}` + "\n"
	_, err := Read(strings.NewReader(in))
	if err == nil {
		t.Fatal("non-canonical prefix accepted")
	}
	if !strings.Contains(err.Error(), "host bits") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestBuildEmpty(t *testing.T) {
	in := fixtureInputs(t)
	in.Detected = netaddr.NewSet()
	m, err := Build(0.5, "x", in)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 0 {
		t.Error("empty detection produced entries")
	}
	if _, ok := m.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Error("empty map matched")
	}
}
