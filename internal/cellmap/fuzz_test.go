package cellmap

import (
	"bytes"
	"strings"
	"testing"

	"cellspot/internal/netaddr"
)

// FuzzRead checks that arbitrary bytes never panic the deserializer and
// that anything it accepts re-serializes and re-parses consistently.
func FuzzRead(f *testing.F) {
	f.Add(`{"format":"cellspot-map/1","entries":1}` + "\n" + `{"prefix":"10.0.0.0/24","asn":1,"du":5}` + "\n")
	f.Add(`{"format":"cellspot-map/1","entries":0}` + "\n")
	f.Add("")
	f.Add("{garbage")
	f.Add(`{"format":"cellspot-map/1","entries":2}` + "\n" + `{"prefix":"2001:db8::/48"}` + "\n")
	// Duplicate block: must be rejected, never silently last-wins.
	f.Add(`{"format":"cellspot-map/1","entries":2}` + "\n" +
		`{"prefix":"10.0.0.0/24","asn":1}` + "\n" + `{"prefix":"10.0.0.0/24","asn":2}` + "\n")
	// Non-canonical prefix (host bits set): rejected, would shadow its
	// masked twin in the index.
	f.Add(`{"format":"cellspot-map/1","entries":1}` + "\n" + `{"prefix":"10.0.0.9/24","asn":1}` + "\n")
	// Nested prefixes: legal, resolved by longest-prefix match.
	f.Add(`{"format":"cellspot-map/1","entries":2}` + "\n" +
		`{"prefix":"10.0.0.0/23","asn":1}` + "\n" + `{"prefix":"10.0.0.0/24","asn":2}` + "\n")
	// Unsorted input: Read must sort before indexing and dup-checking.
	f.Add(`{"format":"cellspot-map/1","entries":3}` + "\n" +
		`{"prefix":"10.0.2.0/24","asn":3}` + "\n" + `{"prefix":"10.0.0.0/24","asn":1}` + "\n" +
		`{"prefix":"10.0.1.0/24","asn":2}` + "\n")
	// Blank interior lines are tolerated; header count still enforced.
	f.Add(`{"format":"cellspot-map/1","entries":1}` + "\n\n" + `{"prefix":"192.0.2.0/24","asn":7}` + "\n\n")
	// Header promising more entries than the body delivers (truncation).
	f.Add(`{"format":"cellspot-map/1","entries":9}` + "\n" + `{"prefix":"10.0.0.0/24","asn":1}` + "\n")
	// Mixed-family body with v6 metadata fields.
	f.Add(`{"format":"cellspot-map/1","entries":2}` + "\n" +
		`{"prefix":"2001:db8:5::/48","asn":64512,"country":"DE","ratio":0.75,"du":12.5}` + "\n" +
		`{"prefix":"198.51.100.0/24","asn":64513,"ratio":1}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if m2.Len() != m.Len() {
			t.Fatalf("round trip changed entry count: %d vs %d", m.Len(), m2.Len())
		}
	})
}

// FuzzParseBlock exercises the prefix grammar the map artifact is written
// in. Every constructible block must survive ParseBlock(b.String()) == b,
// and arbitrary strings must either be rejected or parse to a block that
// itself round-trips — malformed input never panics or produces a
// non-canonical block.
func FuzzParseBlock(f *testing.F) {
	// IPv4 /24 and IPv6 /48 corpus entries, plus malformed shapes.
	f.Add(false, uint64(0x0a0000), "10.0.0.0/24")
	f.Add(false, uint64(0xffffff), "255.255.255.0/24")
	f.Add(true, uint64(0x20010db80000), "2001:db8::/48")
	f.Add(true, uint64(0), "::/48")
	f.Add(false, uint64(0), "10.0.0.1/24")  // host bits set
	f.Add(false, uint64(1), "10.0.0.0/16")  // wrong v4 length
	f.Add(true, uint64(2), "2001:db8::/64") // wrong v6 length
	f.Add(false, uint64(3), "10.0.0.0/240") // absurd length
	f.Add(true, uint64(4), "not a prefix")  // garbage
	f.Add(false, uint64(5), "10.0.0.0")     // missing length
	f.Fuzz(func(t *testing.T, v6 bool, key uint64, raw string) {
		// Block-first: any in-range key must round-trip exactly.
		b := netaddr.Block{Fam: netaddr.IPv4, Key: key & 0xffffff}
		if v6 {
			b = netaddr.Block{Fam: netaddr.IPv6, Key: key & 0xffff_ffff_ffff}
		}
		got, err := netaddr.ParseBlock(b.String())
		if err != nil {
			t.Fatalf("own String %q rejected: %v", b.String(), err)
		}
		if got != b {
			t.Fatalf("round trip %v: got %v", b, got)
		}

		// String-first: accepted inputs must be canonical; rejected ones
		// must simply return an error (no panic).
		p, err := netaddr.ParseBlock(raw)
		if err != nil {
			return
		}
		again, err := netaddr.ParseBlock(p.String())
		if err != nil || again != p {
			t.Fatalf("accepted %q -> %v but canonical re-parse gave %v (%v)", raw, p, again, err)
		}
	})
}
