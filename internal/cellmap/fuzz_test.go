package cellmap

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary bytes never panic the deserializer and
// that anything it accepts re-serializes and re-parses consistently.
func FuzzRead(f *testing.F) {
	f.Add(`{"format":"cellspot-map/1","entries":1}` + "\n" + `{"prefix":"10.0.0.0/24","asn":1,"du":5}` + "\n")
	f.Add(`{"format":"cellspot-map/1","entries":0}` + "\n")
	f.Add("")
	f.Add("{garbage")
	f.Add(`{"format":"cellspot-map/1","entries":2}` + "\n" + `{"prefix":"2001:db8::/48"}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		m, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := m.Write(&buf); err != nil {
			t.Fatalf("accepted input failed to serialize: %v", err)
		}
		m2, err := Read(&buf)
		if err != nil {
			t.Fatalf("own output rejected: %v", err)
		}
		if m2.Len() != m.Len() {
			t.Fatalf("round trip changed entry count: %d vs %d", m.Len(), m2.Len())
		}
	})
}
