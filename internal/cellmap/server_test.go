package cellmap

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
)

func testServer(t *testing.T) (*httptest.Server, *Map) {
	t.Helper()
	m, err := Build(0.5, "2016-12", fixtureInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHandlerLookup(t *testing.T) {
	srv, _ := testServer(t)
	var resp LookupResponse
	if code := getJSON(t, srv.URL+"/v1/lookup?ip=10.0.1.9", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !resp.Cellular || resp.Prefix != "10.0.0.0/23" || resp.ASN != 1 || resp.Country != "DE" {
		t.Errorf("response = %+v", resp)
	}
	if code := getJSON(t, srv.URL+"/v1/lookup?ip=203.0.113.9", &resp); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if resp.Cellular {
		t.Error("non-cellular address reported cellular")
	}
}

func TestHandlerLookupErrors(t *testing.T) {
	srv, _ := testServer(t)
	for _, q := range []string{"", "?ip=", "?ip=not-an-ip"} {
		resp, err := http.Get(srv.URL + "/v1/lookup" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("lookup%s returned %d", q, resp.StatusCode)
		}
		// Error answers are JSON with the right Content-Type, like the
		// success path — clients of a JSON API must never see text/plain.
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("lookup%s error Content-Type = %q", q, ct)
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Errorf("lookup%s error body is not JSON: %v", q, err)
		} else if e.Error == "" {
			t.Errorf("lookup%s error body has empty message", q)
		}
		resp.Body.Close()
	}
	// POST is rejected by the method-scoped route.
	resp, err := http.Post(srv.URL+"/v1/lookup?ip=10.0.0.1", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST accepted")
	}
}

// TestWriteJSONEncodeFailure drives the 500 path: an unmarshalable value
// must yield a JSON error body with the JSON Content-Type, not a
// half-written 200 or a text/plain fallback.
func TestWriteJSONEncodeFailure(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteJSON(rec, make(chan int))
	if rec.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var e ErrorResponse
	if err := json.NewDecoder(rec.Body).Decode(&e); err != nil {
		t.Fatalf("500 body is not JSON: %v", err)
	}
	if e.Error == "" {
		t.Error("500 body has empty message")
	}
}

func TestHandlerInfo(t *testing.T) {
	srv, m := testServer(t)
	var info Info
	if code := getJSON(t, srv.URL+"/v1/info", &info); code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if info.Entries != m.Len() || info.Period != "2016-12" || info.Format != formatName {
		t.Errorf("info = %+v", info)
	}
}

func TestHandlerConcurrent(t *testing.T) {
	srv, _ := testServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/lookup?ip=10.0.4.200")
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
