package cellmap

import (
	"net/netip"
	"sync/atomic"

	"cellspot/internal/obs"
)

// Source yields the map a request handler should serve right now, plus the
// generation number it belongs to. Implementations must return internally
// consistent pairs: handlers call Current once per request and answer the
// whole request from that one map.
type Source interface {
	Current() (*Map, uint64)
}

// Static wraps an immutable map as a Source at generation 0.
type Static struct{ M *Map }

// Current returns the wrapped map.
func (s Static) Current() (*Map, uint64) { return s.M, 0 }

// versioned pairs a map with its generation so both swap in one atomic
// pointer store.
type versioned struct {
	m   *Map
	gen uint64
}

// Swappable serves a map that can be replaced without downtime: lookups
// load the current generation with one atomic pointer read, and Swap
// publishes a fully built replacement in one atomic pointer write. In-flight
// requests keep the generation they loaded; there is no window in which a
// reader can observe a partially swapped map.
type Swappable struct {
	cur atomic.Pointer[versioned]

	// Swap-path metrics; nil without EnableMetrics (obs no-ops on nil).
	mSwaps   *obs.Counter
	mGen     *obs.Gauge
	mEntries *obs.Gauge
}

// NewSwappable returns a handle serving m as generation gen. m must be
// non-nil (use Empty for a placeholder before the first real generation).
func NewSwappable(m *Map, gen uint64) *Swappable {
	s := &Swappable{}
	s.cur.Store(&versioned{m: m, gen: gen})
	return s
}

// Empty returns a valid map with no entries: every lookup misses. It is the
// placeholder a server starts from when no generation exists yet.
func Empty(period string) *Map { return &Map{Period: period} }

// EnableMetrics registers the swap-path metrics on reg and initializes them
// from the current generation:
//
//	cellmap_generation  gauge: generation number currently served
//	cellmap_entries     gauge: prefixes in the served map
//	cellmap_swap_total  counter: completed hot swaps
func (s *Swappable) EnableMetrics(reg *obs.Registry) {
	s.mGen = reg.Gauge("cellmap_generation", "Map generation currently served.")
	s.mEntries = reg.Gauge("cellmap_entries", "Prefixes in the served map.")
	s.mSwaps = reg.Counter("cellmap_swap_total", "Completed map hot swaps.")
	m, gen := s.Current()
	s.mGen.Set(int64(gen))
	s.mEntries.Set(int64(m.Len()))
}

// Current returns the served map and its generation.
func (s *Swappable) Current() (*Map, uint64) {
	v := s.cur.Load()
	return v.m, v.gen
}

// Generation returns the generation number currently served.
func (s *Swappable) Generation() uint64 {
	return s.cur.Load().gen
}

// Swap atomically replaces the served map. Readers that loaded the old
// generation finish against it; new loads observe the new one.
func (s *Swappable) Swap(m *Map, gen uint64) {
	s.cur.Store(&versioned{m: m, gen: gen})
	s.mSwaps.Inc()
	s.mGen.Set(int64(gen))
	s.mEntries.Set(int64(m.Len()))
}

// Lookup resolves addr against the currently served generation.
func (s *Swappable) Lookup(addr netip.Addr) (Entry, bool) {
	return s.cur.Load().m.Lookup(addr)
}
