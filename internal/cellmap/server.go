package cellmap

import (
	"encoding/json"
	"net/http"
	"net/netip"
)

// LookupResponse is the JSON answer of the lookup service.
type LookupResponse struct {
	Addr     string  `json:"addr"`
	Cellular bool    `json:"cellular"`
	Prefix   string  `json:"prefix,omitempty"`
	ASN      uint32  `json:"asn,omitempty"`
	Country  string  `json:"country,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	DU       float64 `json:"du,omitempty"`
}

// Info summarizes a served map.
type Info struct {
	Format    string  `json:"format"`
	Period    string  `json:"period"`
	Threshold float64 `json:"threshold"`
	Entries   int     `json:"entries"`
	TotalDU   float64 `json:"total_du"`
}

// Handler serves a cellular map over HTTP — the lookup microservice a CDN
// would put in front of the published dataset:
//
//	GET /v1/lookup?ip=ADDR — per-address cellular lookup
//	GET /v1/info           — dataset metadata
//
// The map is immutable once built, so the handler is safe for concurrent
// use.
func Handler(m *Map) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("ip")
		if q == "" {
			http.Error(w, "missing ip parameter", http.StatusBadRequest)
			return
		}
		addr, err := netip.ParseAddr(q)
		if err != nil {
			http.Error(w, "bad ip: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp := LookupResponse{Addr: addr.String()}
		if e, ok := m.Lookup(addr); ok {
			resp.Cellular = true
			resp.Prefix = e.Prefix.String()
			resp.ASN = e.ASN
			resp.Country = e.Country
			resp.Ratio = e.Ratio
			resp.DU = e.DU
		}
		writeJSON(w, resp)
	})
	mux.HandleFunc("GET /v1/info", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, Info{
			Format:    formatName,
			Period:    m.Period,
			Threshold: m.Threshold,
			Entries:   m.Len(),
			TotalDU:   m.TotalDU(),
		})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
