package cellmap

import (
	"encoding/json"
	"net/http"
	"net/netip"
)

// LookupResponse is the JSON answer of the lookup service.
type LookupResponse struct {
	Addr     string  `json:"addr"`
	Cellular bool    `json:"cellular"`
	Prefix   string  `json:"prefix,omitempty"`
	ASN      uint32  `json:"asn,omitempty"`
	Country  string  `json:"country,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	DU       float64 `json:"du,omitempty"`
}

// ErrorResponse is the JSON body of every non-2xx answer: clients of a
// JSON API get JSON on the error path too, with the same Content-Type.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Info summarizes a served map.
type Info struct {
	Format    string  `json:"format"`
	Period    string  `json:"period"`
	Threshold float64 `json:"threshold"`
	Entries   int     `json:"entries"`
	TotalDU   float64 `json:"total_du"`
	// Generation is the snapshot-store generation being served; 0 for a
	// statically loaded map.
	Generation uint64 `json:"generation"`
}

// Router is the route-registration surface MountRoutes needs; both
// *http.ServeMux and the instrumented httpmw.Mux satisfy it.
type Router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// MountRoutes registers the lookup service's routes on r over an immutable
// map; see MountSource for the general form.
func MountRoutes(r Router, m *Map) {
	MountSource(r, Static{M: m})
}

// MountSource registers the lookup service's routes on r — the lookup
// microservice a CDN would put in front of the published dataset:
//
//	GET /v1/lookup?ip=ADDR — per-address cellular lookup
//	GET /v1/info           — dataset metadata, including the generation
//
// Every request resolves src.Current() exactly once and answers entirely
// from that map, so a concurrent hot swap can never make one response mix
// two generations. Maps are immutable once built, so the handlers are safe
// for any number of concurrent requests.
func MountSource(r Router, src Source) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("ip")
		if q == "" {
			writeError(w, http.StatusBadRequest, "missing ip parameter")
			return
		}
		addr, err := netip.ParseAddr(q)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad ip: "+err.Error())
			return
		}
		m, _ := src.Current()
		resp := LookupResponse{Addr: addr.String()}
		if e, ok := m.Lookup(addr); ok {
			resp.Cellular = true
			resp.Prefix = e.Prefix.String()
			resp.ASN = e.ASN
			resp.Country = e.Country
			resp.Ratio = e.Ratio
			resp.DU = e.DU
		}
		writeJSON(w, resp)
	})
	r.HandleFunc("GET /v1/info", func(w http.ResponseWriter, _ *http.Request) {
		m, gen := src.Current()
		writeJSON(w, Info{
			Format:     formatName,
			Period:     m.Period,
			Threshold:  m.Threshold,
			Entries:    m.Len(),
			TotalDU:    m.TotalDU(),
			Generation: gen,
		})
	})
}

// Handler serves a cellular map on a plain mux; see MountRoutes.
func Handler(m *Map) http.Handler {
	mux := http.NewServeMux()
	MountRoutes(mux, m)
	return mux
}

// writeJSON marshals v before touching the ResponseWriter, so an encoding
// failure can still produce a well-formed 500 instead of a half-written
// 200.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}
