package cellmap

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/netip"
)

// LookupResponse is the JSON answer of the lookup service.
type LookupResponse struct {
	Addr     string  `json:"addr"`
	Cellular bool    `json:"cellular"`
	Prefix   string  `json:"prefix,omitempty"`
	ASN      uint32  `json:"asn,omitempty"`
	Country  string  `json:"country,omitempty"`
	Ratio    float64 `json:"ratio,omitempty"`
	DU       float64 `json:"du,omitempty"`
	// RAT is the prefix's [3G, 4G, 5G] traffic split; absent on legacy
	// maps without the RAT column and on non-cellular answers.
	RAT []float64 `json:"rat,omitempty"`
	// Generation is the map generation the answer was resolved against;
	// 0 for a statically loaded map. In a sharded cluster it lets clients
	// (and the gateway's consistency guard) see which snapshot answered.
	Generation uint64 `json:"generation,omitempty"`
	// Degraded marks a placeholder, not an answer: the shard owning this
	// address was unreachable and the gateway was configured to return
	// partial batches. All data fields are zero; retry for a real answer.
	Degraded bool `json:"degraded,omitempty"`
}

// BatchRequest is the body of POST /v1/lookup/batch.
type BatchRequest struct {
	IPs []string `json:"ips"`
}

// BatchResponse answers a batch lookup. Every result was resolved against
// the single map generation named in Generation — a batch never mixes
// generations, whether answered by one node or scatter-gathered across a
// cluster. When Degraded is set (gateway degraded mode only), a minority
// of shards was unreachable and their results are per-address placeholders
// with Degraded set; all real results still share one generation.
type BatchResponse struct {
	Generation uint64           `json:"generation"`
	Results    []LookupResponse `json:"results"`
	Degraded   bool             `json:"degraded,omitempty"`
}

// DefaultBatchLimit caps how many addresses one batch request may carry.
const DefaultBatchLimit = 1024

// maxBatchBody bounds the batch request body; at the address-count cap a
// request is far below this, so hitting it means a hostile or broken client.
const maxBatchBody = 1 << 20

// ErrorResponse is the JSON body of every non-2xx answer: clients of a
// JSON API get JSON on the error path too, with the same Content-Type.
type ErrorResponse struct {
	Error string `json:"error"`
}

// Info summarizes a served map.
type Info struct {
	Format    string  `json:"format"`
	Period    string  `json:"period"`
	Threshold float64 `json:"threshold"`
	Entries   int     `json:"entries"`
	TotalDU   float64 `json:"total_du"`
	// Generation is the snapshot-store generation being served; 0 for a
	// statically loaded map.
	Generation uint64 `json:"generation"`
}

// Router is the route-registration surface MountRoutes needs; both
// *http.ServeMux and the instrumented httpmw.Mux satisfy it.
type Router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// MountRoutes registers the lookup service's routes on r over an immutable
// map; see MountSource for the general form.
func MountRoutes(r Router, m *Map) {
	MountSource(r, Static{M: m})
}

// MountSource registers the lookup service's routes on r — the lookup
// microservice a CDN would put in front of the published dataset:
//
//	GET  /v1/lookup?ip=ADDR — per-address cellular lookup
//	POST /v1/lookup/batch   — many addresses, one generation
//	GET  /v1/info           — dataset metadata, including the generation
//
// Every request resolves src.Current() exactly once and answers entirely
// from that map, so a concurrent hot swap can never make one response mix
// two generations. Maps are immutable once built, so the handlers are safe
// for any number of concurrent requests.
func MountSource(r Router, src Source) {
	r.HandleFunc("GET /v1/lookup", func(w http.ResponseWriter, r *http.Request) {
		addr, name, ok := ParseLookupAddr(w, r)
		if !ok {
			return
		}
		m, gen := src.Current()
		WriteJSON(w, LookupAddr(m, gen, addr, name))
	})
	r.HandleFunc("POST /v1/lookup/batch", func(w http.ResponseWriter, r *http.Request) {
		addrs, names, ok := DecodeBatch(w, r, DefaultBatchLimit)
		if !ok {
			return
		}
		m, gen := src.Current()
		resp := BatchResponse{Generation: gen, Results: make([]LookupResponse, 0, len(addrs))}
		for i, a := range addrs {
			resp.Results = append(resp.Results, LookupAddr(m, gen, a, names[i]))
		}
		WriteJSON(w, resp)
	})
	MountInfo(r, src)
}

// MountInfo registers only GET /v1/info; cluster shard nodes mount it next
// to their partition-filtered lookup routes.
func MountInfo(r Router, src Source) {
	r.HandleFunc("GET /v1/info", func(w http.ResponseWriter, _ *http.Request) {
		m, gen := src.Current()
		WriteJSON(w, Info{
			Format:     formatName,
			Period:     m.Period,
			Threshold:  m.Threshold,
			Entries:    m.Len(),
			TotalDU:    m.TotalDU(),
			Generation: gen,
		})
	})
}

// LookupAddr resolves one address against m and shapes the service answer,
// stamped with the generation m belongs to. name is the textual form of
// addr to echo back — handlers pass the string the client sent, so the
// whole call is allocation-free: the index walk is flat-array only, the
// prefix string is cached at build time, and every other field is a value
// copy. The allocation regression test pins this at 0 allocs/op.
func LookupAddr(m *Map, gen uint64, addr netip.Addr, name string) LookupResponse {
	resp := LookupResponse{Addr: name, Generation: gen}
	if i, ok := m.lookupIdx(addr); ok {
		e := &m.entries[i]
		resp.Cellular = true
		resp.Prefix = m.prefixStr[i]
		resp.ASN = e.ASN
		resp.Country = e.Country
		resp.Ratio = e.Ratio
		resp.DU = e.DU
		// Slice-header copy of the immutable entry's column: alloc-free.
		resp.RAT = e.RAT
	}
	return resp
}

// ParseLookupAddr extracts and validates the ip query parameter, answering
// the error itself (JSON body, like every error path) when absent or bad.
// It returns both the parsed address and the string the client sent, so
// the answer can echo the request without re-stringifying.
func ParseLookupAddr(w http.ResponseWriter, r *http.Request) (netip.Addr, string, bool) {
	q := r.URL.Query().Get("ip")
	if q == "" {
		WriteError(w, http.StatusBadRequest, "missing ip parameter")
		return netip.Addr{}, "", false
	}
	addr, err := netip.ParseAddr(q)
	if err != nil {
		WriteError(w, http.StatusBadRequest, "bad ip: "+err.Error())
		return netip.Addr{}, "", false
	}
	return addr, q, true
}

// DecodeBatch reads and validates a batch lookup body, enforcing the
// address-count cap and the body-size bound. On any failure it writes the
// JSON error response itself — 413 on overflow, 400 otherwise — and
// returns ok=false. It returns the parsed addresses alongside the strings
// the client sent (position-matched), so handlers can echo without
// re-stringifying. Shared by the single-node handler, shard nodes, and
// the gateway so every tier speaks the identical wire format.
func DecodeBatch(w http.ResponseWriter, r *http.Request, limit int) ([]netip.Addr, []string, bool) {
	if limit <= 0 {
		limit = DefaultBatchLimit
	}
	// The batch path serves only the current generation; silently ignoring
	// a gen parameter would answer a history query with current data.
	// Reject it outright until batch history serving exists.
	if r.URL.Query().Has("gen") {
		WriteError(w, http.StatusBadRequest,
			"gen parameter is not supported on batch lookups; use GET /v1/lookup?ip=X&gen=N per address")
		return nil, nil, false
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBatchBody)
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			WriteError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("batch body exceeds %d bytes", tooBig.Limit))
			return nil, nil, false
		}
		WriteError(w, http.StatusBadRequest, "bad batch request: "+err.Error())
		return nil, nil, false
	}
	if len(req.IPs) == 0 {
		WriteError(w, http.StatusBadRequest, "empty batch: body must carry a non-empty ips array")
		return nil, nil, false
	}
	if len(req.IPs) > limit {
		WriteError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("batch of %d addresses exceeds limit %d", len(req.IPs), limit))
		return nil, nil, false
	}
	addrs := make([]netip.Addr, 0, len(req.IPs))
	for i, s := range req.IPs {
		a, err := netip.ParseAddr(s)
		if err != nil {
			WriteError(w, http.StatusBadRequest, fmt.Sprintf("bad ip at index %d: %v", i, err))
			return nil, nil, false
		}
		addrs = append(addrs, a)
	}
	return addrs, req.IPs, true
}

// Handler serves a cellular map on a plain mux; see MountRoutes.
func Handler(m *Map) http.Handler {
	mux := http.NewServeMux()
	MountRoutes(mux, m)
	return mux
}

// WriteJSON marshals v before touching the ResponseWriter, so an encoding
// failure can still produce a well-formed 500 instead of a half-written
// 200.
func WriteJSON(w http.ResponseWriter, v any) {
	body, err := json.Marshal(v)
	if err != nil {
		WriteError(w, http.StatusInternalServerError, "encoding response: "+err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(append(body, '\n'))
}

// WriteError answers with the service's JSON error body convention.
func WriteError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: msg})
}
