package cellmap

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func postBatch(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url+"/v1/lookup/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestBatchLookup(t *testing.T) {
	srv, m := testServer(t)
	resp, body := postBatch(t, srv.URL, `{"ips":["10.0.1.9","203.0.113.9","2001:db8::42"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var br BatchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 3 {
		t.Fatalf("results = %d, want 3", len(br.Results))
	}
	if !br.Results[0].Cellular || br.Results[0].Prefix != "10.0.0.0/23" {
		t.Errorf("result[0] = %+v", br.Results[0])
	}
	if br.Results[1].Cellular {
		t.Errorf("non-cellular address reported cellular: %+v", br.Results[1])
	}
	if !br.Results[2].Cellular || br.Results[2].ASN != 2 {
		t.Errorf("result[2] = %+v", br.Results[2])
	}
	// Every result agrees with a direct single lookup against the same map.
	for _, r := range br.Results {
		var single LookupResponse
		if code := getJSON(t, srv.URL+"/v1/lookup?ip="+r.Addr, &single); code != http.StatusOK {
			t.Fatalf("single lookup %s: status %d", r.Addr, code)
		}
		if !reflect.DeepEqual(single, r) {
			t.Errorf("batch and single answers differ for %s: %+v vs %+v", r.Addr, r, single)
		}
	}
	_ = m
}

func TestBatchErrors(t *testing.T) {
	srv, _ := testServer(t)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"malformed json", `{nope`, http.StatusBadRequest},
		{"empty batch", `{"ips":[]}`, http.StatusBadRequest},
		{"missing ips", `{}`, http.StatusBadRequest},
		{"bad address", `{"ips":["10.0.0.1","not-an-ip"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postBatch(t, srv.URL, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s: Content-Type = %q", tc.name, ct)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q not the JSON convention (%v)", tc.name, body, err)
		}
	}
}

// TestBatchOverflow pins the request-size cap: one address over
// DefaultBatchLimit must yield 413 with a JSON error body naming the limit.
func TestBatchOverflow(t *testing.T) {
	srv, _ := testServer(t)
	ips := make([]string, DefaultBatchLimit+1)
	for i := range ips {
		ips[i] = fmt.Sprintf("10.%d.%d.%d", i>>16&255, i>>8&255, i&255)
	}
	body, err := json.Marshal(BatchRequest{IPs: ips})
	if err != nil {
		t.Fatal(err)
	}
	resp, raw := postBatch(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413", resp.StatusCode)
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil {
		t.Fatalf("413 body is not JSON: %v", err)
	}
	if !strings.Contains(e.Error, fmt.Sprint(DefaultBatchLimit)) {
		t.Errorf("413 body does not name the limit: %q", e.Error)
	}

	// Exactly at the limit is served.
	okBody, err := json.Marshal(BatchRequest{IPs: ips[:DefaultBatchLimit]})
	if err != nil {
		t.Fatal(err)
	}
	resp2, raw2 := postBatch(t, srv.URL, string(okBody))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("at-limit batch: status = %d: %s", resp2.StatusCode, raw2)
	}
	var br BatchResponse
	if err := json.Unmarshal(raw2, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != DefaultBatchLimit {
		t.Errorf("at-limit results = %d", len(br.Results))
	}
}

// TestBatchBodyCap drives the byte-size bound independently of the address
// count: a huge body must be cut off with 413, not buffered wholesale.
func TestBatchBodyCap(t *testing.T) {
	srv, _ := testServer(t)
	huge := `{"ips":["` + strings.Repeat("x", maxBatchBody+1024) + `"]}`
	resp, raw := postBatch(t, srv.URL, huge)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413 (%s)", resp.StatusCode, raw)
	}
	var e ErrorResponse
	if err := json.Unmarshal(raw, &e); err != nil || e.Error == "" {
		t.Errorf("413 body %q not the JSON convention (%v)", raw, err)
	}
}

// TestBatchGenerationConsistency checks that one batch response never mixes
// generations: all results carry the response generation even when swaps
// race the request.
func TestBatchGenerationConsistency(t *testing.T) {
	m, err := Build(0.5, "2016-12", fixtureInputs(t))
	if err != nil {
		t.Fatal(err)
	}
	sw := NewSwappable(m, 1)
	mux := http.NewServeMux()
	MountSource(mux, sw)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		for gen := uint64(2); gen < 200; gen++ {
			sw.Swap(m, gen)
		}
	}()
	for i := 0; i < 50; i++ {
		resp, raw := postBatch(t, srv.URL, `{"ips":["10.0.1.9","10.0.4.7","2001:db8::1"]}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var br BatchResponse
		if err := json.Unmarshal(raw, &br); err != nil {
			t.Fatal(err)
		}
		for _, r := range br.Results {
			if r.Generation != br.Generation {
				t.Fatalf("mixed generations in one batch: result %d vs response %d",
					r.Generation, br.Generation)
			}
		}
	}
	<-done
}
