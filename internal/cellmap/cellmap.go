// Package cellmap builds the deliverable artifact of the paper's method: a
// queryable, serializable map of cellular IP space. Detected /24 and /48
// blocks are grouped per AS, merged into minimal covering CIDRs, annotated
// with country, demand and mean cellular ratio, and indexed in a radix trie
// for per-address lookups — the MaxMind-style dataset a CDN or content
// provider would publish and consume for request routing and performance
// triage.
package cellmap

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/netip"
	"sort"

	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/demand"
	"cellspot/internal/logio"
	"cellspot/internal/lpm"
	"cellspot/internal/netaddr"
)

// Entry is one published cellular prefix.
type Entry struct {
	Prefix  netip.Prefix `json:"prefix"`
	ASN     uint32       `json:"asn"`
	Country string       `json:"country,omitempty"`
	// Ratio is the hit-weighted mean cellular ratio of the blocks the
	// prefix covers; DU their combined demand units.
	Ratio float64 `json:"ratio"`
	DU    float64 `json:"du"`
	// RAT, when present, is the prefix's radio-generation traffic split
	// [3G, 4G, 5G] as shares of RAT-labeled cellular hits (indexed by
	// netinfo.RAT). Nil on maps built from logs predating the RAT column;
	// readers treat an absent column as a legacy map, so old and new
	// generations serve side by side from one history index.
	RAT []float64 `json:"rat,omitempty"`
}

// Map is a complete cellular-space dataset.
type Map struct {
	// Threshold is the classifier operating point the map was built at.
	Threshold float64 `json:"threshold"`
	// Period labels the collection window, e.g. "2016-12".
	Period string `json:"period"`

	entries []Entry
	// idx is the flat longest-prefix matcher over entries: immutable,
	// pointer-free, zero allocations per lookup. prefixStr caches each
	// entry's textual prefix so the request path never re-stringifies.
	idx       *lpm.Matcher
	prefixStr []string
}

// Inputs bundles the measurement data a map is built from.
type Inputs struct {
	Detected  netaddr.Set
	Beacon    *beacon.Aggregate
	Demand    *demand.Dataset
	ASOf      func(netaddr.Block) (uint32, bool)
	CountryOf func(uint32) (string, bool)
}

// Build assembles a map from a classification run. Blocks that cannot be
// mapped to an AS are dropped (they could not be published usefully).
func Build(threshold float64, period string, in Inputs) (*Map, error) {
	byAS := make(map[uint32][]netaddr.Block)
	for b := range in.Detected {
		a, ok := in.ASOf(b)
		if !ok {
			continue
		}
		byAS[a] = append(byAS[a], b)
	}
	m := &Map{Threshold: threshold, Period: period}
	asns := make([]uint32, 0, len(byAS))
	for a := range byAS {
		asns = append(asns, a)
	}
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	for _, a := range asns {
		country := ""
		if in.CountryOf != nil {
			country, _ = in.CountryOf(a)
		}
		for _, p := range netaddr.AggregateBlocks(byAS[a]) {
			e := Entry{Prefix: p, ASN: a, Country: country}
			blocks, ok := netaddr.ExpandPrefix(p)
			if !ok {
				return nil, fmt.Errorf("cellmap: cannot expand %s", p)
			}
			var hits, cells int
			for _, b := range blocks {
				if in.Demand != nil {
					e.DU += in.Demand.DU(b)
				}
				if in.Beacon != nil {
					if c := in.Beacon.PerBlock[b]; c != nil {
						hits += c.API
						cells += c.Cell
					}
				}
			}
			if hits > 0 {
				e.Ratio = float64(cells) / float64(hits)
			}
			if shares, ok := classify.RATShares(in.Beacon, blocks); ok {
				e.RAT = shares[:]
			}
			m.entries = append(m.entries, e)
		}
	}
	m.sortEntries()
	m.index()
	return m, nil
}

func (m *Map) sortEntries() {
	sort.Slice(m.entries, func(i, j int) bool {
		a, b := m.entries[i].Prefix, m.entries[j].Prefix
		if c := a.Addr().Compare(b.Addr()); c != 0 {
			return c < 0
		}
		return a.Bits() < b.Bits()
	})
}

func (m *Map) index() {
	es := make([]lpm.Entry, len(m.entries))
	m.prefixStr = make([]string, len(m.entries))
	for i, e := range m.entries {
		es[i] = lpm.Entry{Prefix: e.Prefix, Value: int32(i)}
		m.prefixStr[i] = e.Prefix.String()
	}
	// Prefixes are valid, masked, and deduplicated by construction —
	// Build and Read both guarantee it — so a build failure here is a
	// program bug, not bad input.
	idx, err := lpm.Build(es)
	if err != nil {
		panic(fmt.Sprintf("cellmap: index: %v", err))
	}
	m.idx = idx
}

// lookupIdx resolves addr to an entries index with zero allocations; it
// is the hot core under Lookup and LookupAddr. A never-indexed map (the
// Empty placeholder) misses everything.
func (m *Map) lookupIdx(addr netip.Addr) (int, bool) {
	i, ok := m.idx.Lookup(addr)
	return int(i), ok
}

// Len returns the number of published prefixes.
func (m *Map) Len() int { return len(m.entries) }

// Entries returns the published prefixes in address order. Callers must
// not mutate the slice.
func (m *Map) Entries() []Entry { return m.entries }

// HasRAT reports whether any entry carries the per-RAT traffic split —
// i.e. the map was built from logs with the RAT column. Publishers record
// it in generation metadata so the history index can tell RAT-aware and
// legacy generations apart without loading them.
func (m *Map) HasRAT() bool {
	for _, e := range m.entries {
		if e.RAT != nil {
			return true
		}
	}
	return false
}

// TotalDU returns the demand the map covers.
func (m *Map) TotalDU() float64 {
	s := 0.0
	for _, e := range m.entries {
		s += e.DU
	}
	return s
}

// Lookup reports whether addr falls inside published cellular space and,
// when it does, the covering entry.
func (m *Map) Lookup(addr netip.Addr) (Entry, bool) {
	i, ok := m.lookupIdx(addr)
	if !ok {
		return Entry{}, false
	}
	return m.entries[i], true
}

// header is the serialized first line of a map file.
type header struct {
	Format    string  `json:"format"`
	Threshold float64 `json:"threshold"`
	Period    string  `json:"period"`
	Entries   int     `json:"entries"`
}

const formatName = "cellspot-map/1"

// Write serializes the map as JSONL: a header line followed by one entry
// per line.
func (m *Map) Write(w io.Writer) error {
	lw := logio.NewWriter(w)
	if err := lw.Write(header{Format: formatName, Threshold: m.Threshold, Period: m.Period, Entries: len(m.entries)}); err != nil {
		return err
	}
	for _, e := range m.entries {
		if err := lw.Write(e); err != nil {
			return err
		}
	}
	return lw.Flush()
}

// Stats summarizes a serialized map from its header line alone.
type Stats struct {
	Period    string
	Threshold float64
	Entries   int
}

// ReadStats decodes just the header of a serialized map without loading
// entries — the cheap metadata path the history index takes for legacy
// generations that predate the meta sidecar.
func ReadStats(r io.Reader) (Stats, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return Stats{}, fmt.Errorf("cellmap: read header: %w", err)
		}
		return Stats{}, fmt.Errorf("cellmap: empty input")
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return Stats{}, fmt.Errorf("cellmap: parse header: %w", err)
	}
	if hdr.Format != formatName {
		return Stats{}, fmt.Errorf("cellmap: unknown format %q", hdr.Format)
	}
	return Stats{Period: hdr.Period, Threshold: hdr.Threshold, Entries: hdr.Entries}, nil
}

// Read deserializes a map written by WriteTo and rebuilds the lookup index.
func Read(r io.Reader) (*Map, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("cellmap: read header: %w", err)
		}
		return nil, fmt.Errorf("cellmap: empty input")
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("cellmap: parse header: %w", err)
	}
	if hdr.Format != formatName {
		return nil, fmt.Errorf("cellmap: unknown format %q", hdr.Format)
	}
	m := &Map{Threshold: hdr.Threshold, Period: hdr.Period}
	line := 1
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var e Entry
		if err := json.Unmarshal(raw, &e); err != nil {
			return nil, fmt.Errorf("cellmap: line %d: %w", line, err)
		}
		if !e.Prefix.IsValid() {
			return nil, fmt.Errorf("cellmap: line %d: invalid prefix", line)
		}
		// Canonical form only: a prefix with host bits set would collide
		// with its masked twin in the index while comparing unequal here.
		if e.Prefix != e.Prefix.Masked() {
			return nil, fmt.Errorf("cellmap: line %d: prefix %s has host bits set", line, e.Prefix)
		}
		// The RAT column is optional (legacy maps omit it) but when
		// present it must be a complete, sane share vector.
		if e.RAT != nil {
			if len(e.RAT) != 3 {
				return nil, fmt.Errorf("cellmap: line %d: RAT column has %d shares, want 3", line, len(e.RAT))
			}
			for _, s := range e.RAT {
				if s < 0 || s > 1 {
					return nil, fmt.Errorf("cellmap: line %d: RAT share %v out of [0,1]", line, s)
				}
			}
		}
		m.entries = append(m.entries, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cellmap: scan: %w", err)
	}
	if len(m.entries) != hdr.Entries {
		return nil, fmt.Errorf("cellmap: header promises %d entries, file has %d (truncated?)",
			hdr.Entries, len(m.entries))
	}
	m.sortEntries()
	// Duplicate prefixes would silently shadow each other in the index
	// (last insert wins), so a corrupt or hand-edited file could serve
	// whichever entry happened to sort last. Reject instead of guessing.
	for i := 1; i < len(m.entries); i++ {
		if m.entries[i].Prefix == m.entries[i-1].Prefix {
			return nil, fmt.Errorf("cellmap: duplicate block %s", m.entries[i].Prefix)
		}
	}
	m.index()
	return m, nil
}
