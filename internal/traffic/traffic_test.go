package traffic

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"cellspot/internal/stats"
)

func almostOne(t *testing.T, name string, xs []float64) {
	t.Helper()
	if s := stats.Sum(xs); math.Abs(s-1) > 1e-9 {
		t.Errorf("%s sums to %g, want 1", name, s)
	}
}

func TestZipfWeights(t *testing.T) {
	w := ZipfWeights(5, 1)
	almostOne(t, "zipf", w)
	for i := 1; i < len(w); i++ {
		if w[i] > w[i-1] {
			t.Error("zipf weights not decreasing")
		}
	}
	u := ZipfWeights(4, 0)
	for _, v := range u {
		if math.Abs(v-0.25) > 1e-12 {
			t.Errorf("s=0 not uniform: %v", u)
		}
	}
	if ZipfWeights(0, 1) != nil {
		t.Error("n=0 should return nil")
	}
}

func TestHeavySplitConcentration(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	// Model the paper's mixed EU operator: 514 active cellular /24s where
	// 25 carry 99.3% of cellular demand.
	w := HeavySplit(rng, 514, 25, 0.993)
	almostOne(t, "heavy split", w)
	head := 0.0
	for _, v := range w[:25] {
		head += v
	}
	if math.Abs(head-0.993) > 1e-9 {
		t.Errorf("head share = %g, want 0.993", head)
	}
	// The paper observes demand dropping by nearly two orders of magnitude
	// right after the heavy head.
	minHead := math.Inf(1)
	for _, v := range w[:25] {
		if v < minHead {
			minHead = v
		}
	}
	maxTail := 0.0
	for _, v := range w[25:] {
		if v > maxTail {
			maxTail = v
		}
	}
	if maxTail*5 > minHead {
		t.Errorf("head/tail separation too weak: min head %g, max tail %g", minHead, maxTail)
	}
}

func TestHeavySplitClamping(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	if HeavySplit(rng, 0, 5, 0.9) != nil {
		t.Error("n=0 should return nil")
	}
	w := HeavySplit(rng, 3, 10, 2.0) // heavy > n, share > 1
	almostOne(t, "clamped", w)
	w = HeavySplit(rng, 5, 0, -1) // heavy < 1, share < 0
	if len(w) != 5 {
		t.Fatalf("len = %d", len(w))
	}
	// All mass in the tail when heavyShare=0.
	if w[0] != 0 {
		t.Errorf("head got weight %g with zero share", w[0])
	}
}

func TestHeavySplitAllHeavy(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	w := HeavySplit(rng, 4, 4, 0.5) // no tail: head absorbs everything
	almostOne(t, "all-heavy", w)
}

func TestGradualSplit(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	w := GradualSplit(rng, 1000)
	almostOne(t, "gradual", w)
	if GradualSplit(rng, 0) != nil {
		t.Error("n=0 should return nil")
	}
	// Gradual means far less concentrated than the CGNAT split: the top 25
	// of 1000 should carry well under 90%.
	if got := stats.TopShare(w, 25); got > 0.9 {
		t.Errorf("gradual top-25 share = %g, too concentrated", got)
	}
}

func TestDiscreteSampler(t *testing.T) {
	d, err := NewDiscrete([]float64{1, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d", d.Len())
	}
	rng := rand.New(rand.NewPCG(2, 2))
	counts := [3]int{}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[d.Sample(rng)]++
	}
	if counts[1] != 0 {
		t.Errorf("zero-weight category sampled %d times", counts[1])
	}
	if got := float64(counts[0]) / n; math.Abs(got-0.25) > 0.01 {
		t.Errorf("category 0 rate = %g, want 0.25", got)
	}
}

func TestDiscreteErrors(t *testing.T) {
	if _, err := NewDiscrete(nil); err == nil {
		t.Error("empty weights accepted")
	}
	if _, err := NewDiscrete([]float64{0, 0}); err == nil {
		t.Error("all-zero weights accepted")
	}
	if _, err := NewDiscrete([]float64{1, -1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewDiscrete([]float64{math.NaN()}); err == nil {
		t.Error("NaN weight accepted")
	}
}

func TestDailyFactors(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	f := DailyFactors(rng, 7, 0.05)
	if len(f) != 7 {
		t.Fatalf("len = %d", len(f))
	}
	mean := stats.Sum(f) / 7
	if math.Abs(mean-1) > 1e-9 {
		t.Errorf("mean = %g, want 1", mean)
	}
	for _, v := range f {
		if v <= 0 {
			t.Errorf("non-positive factor %g", v)
		}
	}
	if DailyFactors(rng, 0, 0.1) != nil {
		t.Error("days=0 should return nil")
	}
}

func TestBinomial(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 10))
	if Binomial(rng, 0, 0.5) != 0 || Binomial(rng, -3, 0.5) != 0 {
		t.Error("n<=0 should return 0")
	}
	if Binomial(rng, 10, 0) != 0 {
		t.Error("p=0 should return 0")
	}
	if Binomial(rng, 10, 1) != 10 {
		t.Error("p=1 should return n")
	}
	for _, tc := range []struct {
		n int
		p float64
	}{{20, 0.3}, {500, 0.1}, {10000, 0.7}} {
		const rounds = 5000
		sum := 0
		for i := 0; i < rounds; i++ {
			k := Binomial(rng, tc.n, tc.p)
			if k < 0 || k > tc.n {
				t.Fatalf("Binomial(%d,%g) = %d out of range", tc.n, tc.p, k)
			}
			sum += k
		}
		mean := float64(sum) / rounds
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > want*0.05+0.5 {
			t.Errorf("Binomial(%d,%g) mean = %g, want %g", tc.n, tc.p, mean, want)
		}
	}
}

func TestPoissonSmall(t *testing.T) {
	rng := rand.New(rand.NewPCG(6, 6))
	if PoissonSmall(rng, 0) != 0 {
		t.Error("mean 0 should return 0")
	}
	if PoissonSmall(rng, -5) != 0 {
		t.Error("negative mean should return 0")
	}
	for _, mean := range []float64{0.5, 3, 30, 1000} {
		const n = 20000
		sum := 0
		for i := 0; i < n; i++ {
			sum += PoissonSmall(rng, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.05 {
			t.Errorf("mean %g: sampled mean %g", mean, got)
		}
	}
}

// Property: HeavySplit output is a probability vector for any sane input.
func TestHeavySplitProperty(t *testing.T) {
	f := func(seed uint64, nRaw, heavyRaw uint16, shareRaw float64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		n := int(nRaw%2000) + 1
		heavy := int(heavyRaw % 100)
		share := math.Mod(math.Abs(shareRaw), 1.2) // sometimes >1 to test clamping
		w := HeavySplit(rng, n, heavy, share)
		if len(w) != n {
			return false
		}
		sum := 0.0
		for _, v := range w {
			if v < 0 || math.IsNaN(v) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: ZipfWeights is a decreasing probability vector.
func TestZipfProperty(t *testing.T) {
	f := func(nRaw uint16, sRaw float64) bool {
		n := int(nRaw%1000) + 1
		s := math.Mod(math.Abs(sRaw), 3)
		w := ZipfWeights(n, s)
		sum := 0.0
		for i, v := range w {
			if v < 0 || (i > 0 && v > w[i-1]+1e-15) {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkHeavySplit(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	for i := 0; i < b.N; i++ {
		HeavySplit(rng, 514, 25, 0.993)
	}
}

func BenchmarkDiscreteSample(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 1))
	d, _ := NewDiscrete(ZipfWeights(10000, 1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Sample(rng)
	}
}
