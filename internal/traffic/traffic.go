// Package traffic provides the workload-shaping primitives the synthetic
// world uses to reproduce the paper's demand distributions: bounded Zipf
// rank weights for heavy-tailed popularity, log-normal noise, explicit
// heavy-hitter splits (the CGNAT concentration behind Fig 8), discrete
// samplers, and per-day demand factors for the 7-day DEMAND window.
package traffic

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
)

// ZipfWeights returns n weights proportional to 1/rank^s, normalized to sum
// to 1. s=0 yields a uniform distribution. n<=0 returns nil.
func ZipfWeights(n int, s float64) []float64 {
	if n <= 0 {
		return nil
	}
	w := make([]float64, n)
	sum := 0.0
	for i := range w {
		w[i] = math.Pow(float64(i+1), -s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// LogNormal samples exp(N(mu, sigma^2)).
func LogNormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// HeavySplit returns n non-negative weights summing to 1 in which the first
// `heavy` entries jointly carry `heavyShare` of the mass with a Zipf(s=1)
// profile, and the remaining entries share the rest with a steeply decaying
// tail. This reproduces the paper's CGNAT effect: ~25 /24 subnets carrying
// 99.3% of a large operator's cellular demand, with demand in the next
// subnet dropping by nearly two orders of magnitude (Fig 8).
//
// heavy is clamped to [1, n]; heavyShare to [0, 1]. n <= 0 returns nil.
func HeavySplit(rng *rand.Rand, n, heavy int, heavyShare float64) []float64 {
	if n <= 0 {
		return nil
	}
	if heavy < 1 {
		heavy = 1
	}
	if heavy > n {
		heavy = n
	}
	if heavyShare < 0 {
		heavyShare = 0
	}
	if heavyShare > 1 {
		heavyShare = 1
	}
	out := make([]float64, n)
	// Heavy head: Zipf with multiplicative jitter.
	head := ZipfWeights(heavy, 1.0)
	hsum := 0.0
	for i := range head {
		head[i] *= LogNormal(rng, 0, 0.3)
		hsum += head[i]
	}
	for i := range head {
		out[i] = head[i] / hsum * heavyShare
	}
	// Tail: exponential decay in rank so the post-head drop is steep.
	tail := n - heavy
	if tail > 0 {
		tw := make([]float64, tail)
		tsum := 0.0
		for i := range tw {
			tw[i] = math.Exp(-4*float64(i)/float64(tail)) * LogNormal(rng, 0, 0.5)
			tsum += tw[i]
		}
		rest := 1 - heavyShare
		for i := range tw {
			out[heavy+i] = tw[i] / tsum * rest
		}
	} else {
		// No tail: renormalize the head to absorb the full mass.
		f := 1 / heavyShare
		if heavyShare == 0 {
			f = 0
		}
		for i := range out {
			out[i] *= f
		}
	}
	return out
}

// GradualSplit returns n weights summing to 1 that decay gradually
// (log-normal multiplicative spread around a shallow power law), modelling
// fixed-line subnets whose demand the paper finds "more gradually
// distributed" than cellular. n <= 0 returns nil.
func GradualSplit(rng *rand.Rand, n int) []float64 {
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	sum := 0.0
	for i := range out {
		out[i] = math.Pow(float64(i+1), -0.7) * LogNormal(rng, 0, 0.6)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Discrete is a cumulative-weight discrete sampler over indices [0, n).
type Discrete struct {
	cum []float64
}

// NewDiscrete builds a sampler from non-negative weights. At least one
// weight must be positive.
func NewDiscrete(weights []float64) (*Discrete, error) {
	if len(weights) == 0 {
		return nil, fmt.Errorf("traffic: empty weight vector")
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("traffic: bad weight %g at index %d", w, i)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("traffic: all weights zero")
	}
	for i := range cum {
		cum[i] /= total
	}
	return &Discrete{cum: cum}, nil
}

// Sample draws an index with probability proportional to its weight.
func (d *Discrete) Sample(rng *rand.Rand) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(d.cum, u)
	if i >= len(d.cum) {
		i = len(d.cum) - 1
	}
	return i
}

// Len returns the number of categories.
func (d *Discrete) Len() int { return len(d.cum) }

// DailyFactors returns `days` multiplicative demand factors with mean ~1,
// modelling the day-to-day variation the paper smooths out with its 7-day
// window: a mild weekend swell plus log-normal jitter.
func DailyFactors(rng *rand.Rand, days int, jitter float64) []float64 {
	if days <= 0 {
		return nil
	}
	out := make([]float64, days)
	sum := 0.0
	for i := range out {
		weekday := i % 7
		base := 1.0
		if weekday == 5 || weekday == 6 {
			base = 1.15 // weekend
		}
		out[i] = base * LogNormal(rng, 0, jitter)
		sum += out[i]
	}
	mean := sum / float64(days)
	for i := range out {
		out[i] /= mean
	}
	return out
}

// Binomial samples Binomial(n, p). Small n uses direct Bernoulli trials;
// large n uses a normal approximation clamped to [0, n].
func Binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mean := float64(n) * p
	sd := math.Sqrt(mean * (1 - p))
	v := int(mean + sd*rng.NormFloat64() + 0.5)
	if v < 0 {
		v = 0
	}
	if v > n {
		v = n
	}
	return v
}

// PoissonSmall samples a Poisson variate with the inverse-transform method;
// suitable for the small means used for per-block beacon hit counts.
// Means above ~700 fall back to a normal approximation.
func PoissonSmall(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 700 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
