// Package par provides the deterministic work-sharding primitives the
// pipeline's parallel stages share: a resolver for the Parallelism knob
// (0 = GOMAXPROCS, 1 = serial oracle) and an index-space runner whose
// observable results are independent of worker count and scheduling.
//
// The contract every caller relies on: work is split into shards whose
// boundaries depend only on the input (never on the worker count), each
// shard derives its own RNG stream as PCG(seed, streamConst^shardIndex),
// and shard outputs are merged in shard-index order. Under that contract
// Do(n, 1, fn) and Do(n, k, fn) produce bit-identical results, so the
// serial path doubles as the correctness oracle for the parallel one.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cellspot/internal/obs"
)

// Metrics holds the worker-utilization counters Do records when installed
// via SetMetrics: how many sharded runs executed, how many shards they
// covered, and how many worker goroutines were launched (serial runs
// launch none). Shards/Runs approximates average run width; Workers/Runs
// shows how much of the Parallelism knob is actually being used.
type Metrics struct {
	Runs    *obs.Counter // Do invocations with n > 0
	Shards  *obs.Counter // shard executions (fn calls)
	Workers *obs.Counter // goroutines launched by parallel runs
}

var metrics atomic.Pointer[Metrics]

// SetMetrics installs process-wide Do instrumentation; nil disables it.
// The pointer swap is atomic, so it is safe against in-flight Do calls;
// when several pipeline runs race, the last installation wins.
func SetMetrics(m *Metrics) { metrics.Store(m) }

// Workers resolves a Parallelism knob into a concrete worker count:
// 0 selects runtime.GOMAXPROCS(0), negative values clamp to 1 (serial),
// and positive values are used as given.
func Workers(parallelism int) int {
	switch {
	case parallelism == 0:
		return runtime.GOMAXPROCS(0)
	case parallelism < 1:
		return 1
	}
	return parallelism
}

// Do runs fn(i) for every shard index i in [0, n) using at most `workers`
// goroutines (after Workers resolution). workers <= 1 runs every shard
// inline in index order — the serial oracle path. fn must not communicate
// across shards; each invocation writes only shard-local state (typically
// results[i]), which the caller merges in index order afterwards.
func Do(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	m := metrics.Load()
	if m != nil {
		m.Runs.Inc()
		m.Shards.Add(uint64(n))
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	if m != nil {
		m.Workers.Add(uint64(workers))
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Shards returns the number of fixed-size shards covering n items. Shard s
// spans [s*size, min((s+1)*size, n)): boundaries depend only on n and size,
// never on the worker count, which is what keeps shard RNG streams stable
// across parallelism levels.
func Shards(n, size int) int {
	if n <= 0 || size <= 0 {
		return 0
	}
	return (n + size - 1) / size
}

// Span returns shard s's half-open item range [lo, hi) for n items split
// into fixed-size shards.
func Span(s, n, size int) (lo, hi int) {
	lo = s * size
	hi = lo + size
	if hi > n {
		hi = n
	}
	return lo, hi
}
