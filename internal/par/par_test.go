package par

import (
	"math/rand/v2"
	"runtime"
	"sync/atomic"
	"testing"

	"cellspot/internal/obs"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3); got != 1 {
		t.Errorf("Workers(-3) = %d, want 1", got)
	}
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d, want 7", got)
	}
}

func TestDoCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		const n = 237
		var counts [n]atomic.Int32
		Do(n, workers, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestDoSerialRunsInOrder(t *testing.T) {
	var order []int
	Do(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestDoEmptyAndNegative(t *testing.T) {
	ran := false
	Do(0, 4, func(int) { ran = true })
	Do(-5, 4, func(int) { ran = true })
	if ran {
		t.Error("fn ran for empty index space")
	}
}

// TestDoShardDeterminism is the package-level statement of the pipeline's
// core contract: per-shard PCG streams merged in shard order give identical
// results at any worker count.
func TestDoShardDeterminism(t *testing.T) {
	run := func(workers int) []uint64 {
		const n, size = 1000, 64
		nShards := Shards(n, size)
		out := make([]uint64, n)
		Do(nShards, workers, func(s int) {
			rng := rand.New(rand.NewPCG(42, 0xabcd^uint64(s)))
			lo, hi := Span(s, n, size)
			for i := lo; i < hi; i++ {
				out[i] = rng.Uint64()
			}
		})
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 16} {
		got := run(workers)
		for i := range serial {
			if got[i] != serial[i] {
				t.Fatalf("workers=%d: diverged at index %d", workers, i)
			}
		}
	}
}

func TestDoMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	m := &Metrics{
		Runs:    reg.Counter("par_do_runs_total", ""),
		Shards:  reg.Counter("par_shards_total", ""),
		Workers: reg.Counter("par_workers_launched_total", ""),
	}
	SetMetrics(m)
	t.Cleanup(func() { SetMetrics(nil) })

	Do(10, 1, func(int) {}) // serial: shards counted, no workers launched
	Do(10, 4, func(int) {})
	Do(0, 4, func(int) {}) // empty runs are not counted

	if got := m.Runs.Value(); got != 2 {
		t.Errorf("runs = %d, want 2", got)
	}
	if got := m.Shards.Value(); got != 20 {
		t.Errorf("shards = %d, want 20", got)
	}
	if got := m.Workers.Value(); got != 4 {
		t.Errorf("workers = %d, want 4", got)
	}
}

func TestShardsAndSpan(t *testing.T) {
	if Shards(0, 10) != 0 || Shards(10, 0) != 0 {
		t.Error("degenerate shard counts not zero")
	}
	if got := Shards(100, 32); got != 4 {
		t.Errorf("Shards(100,32) = %d, want 4", got)
	}
	lo, hi := Span(3, 100, 32)
	if lo != 96 || hi != 100 {
		t.Errorf("Span(3,100,32) = [%d,%d), want [96,100)", lo, hi)
	}
	// Spans tile the index space exactly.
	covered := 0
	for s := 0; s < Shards(100, 32); s++ {
		l, h := Span(s, 100, 32)
		covered += h - l
	}
	if covered != 100 {
		t.Errorf("spans cover %d of 100", covered)
	}
}
