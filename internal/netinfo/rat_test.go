package netinfo

import (
	"math"
	"testing"
)

func TestMonthIndexEdgeCases(t *testing.T) {
	cases := []struct {
		m    Month
		want int
	}{
		{Month{2015, 1}, 0},
		{Month{2015, 12}, 11},
		{Month{2016, 1}, 12},
		{Month{2016, 12}, 23},
		{Month{2017, 1}, 24},
		// Pre-2015 months index negative, one step per month.
		{Month{2014, 12}, -1},
		{Month{2014, 1}, -12},
		{Month{2013, 12}, -13},
		{Month{2010, 6}, -55},
	}
	for _, c := range cases {
		if got := c.m.Index(); got != c.want {
			t.Errorf("%v.Index() = %d, want %d", c.m, got, c.want)
		}
	}
}

func TestMonthNextAcrossBoundaries(t *testing.T) {
	cases := []struct {
		m, want Month
	}{
		{Month{2016, 11}, Month{2016, 12}},
		{Month{2016, 12}, Month{2017, 1}},
		{Month{2014, 12}, Month{2015, 1}},
		{Month{1999, 12}, Month{2000, 1}},
	}
	for _, c := range cases {
		if got := c.m.Next(); got != c.want {
			t.Errorf("%v.Next() = %v, want %v", c.m, got, c.want)
		}
	}
	// Next always advances the index by exactly one, including across years
	// and through the pre-2015 negative range.
	m := Month{2013, 10}
	for i := 0; i < 60; i++ {
		n := m.Next()
		if n.Index() != m.Index()+1 {
			t.Fatalf("%v.Next() = %v: index %d -> %d, want +1", m, n, m.Index(), n.Index())
		}
		if n.Mon < 1 || n.Mon > 12 {
			t.Fatalf("%v.Next() = %v: month out of range", m, n)
		}
		m = n
	}
}

func TestRATTokenRoundTrip(t *testing.T) {
	for _, r := range []RAT{RAT3G, RAT4G, RAT5G} {
		got, err := ParseRAT(r.String())
		if err != nil || got != r {
			t.Errorf("ParseRAT(%q) = %v, %v", r.String(), got, err)
		}
	}
	if _, err := ParseRAT("6g"); err == nil {
		t.Error("ParseRAT accepted unknown token")
	}
}

func checkMix(t *testing.T, label string, mix RATMix) {
	t.Helper()
	sum := 0.0
	for r, v := range mix {
		if v < 0 || v > 1 {
			t.Fatalf("%s: share[%d] = %v out of [0,1]", label, r, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("%s: mix sums to %v, want 1", label, sum)
	}
}

func TestBaselineRATMix(t *testing.T) {
	// Valid at every month across and beyond the modelled window.
	m := Month{2013, 1}
	for i := 0; i < 160; i++ {
		checkMix(t, m.String(), BaselineRATMix(m))
		m = m.Next()
	}
	// No 5G during the paper's collection window; LTE already dominant.
	dec16 := BaselineRATMix(December2016)
	if dec16[RAT5G] != 0 {
		t.Errorf("Dec 2016 5G share = %v, want 0", dec16[RAT5G])
	}
	if dec16[RAT4G] <= dec16[RAT3G] {
		t.Errorf("Dec 2016 mix %v: want 4G > 3G", dec16)
	}
	// 5G share is monotonically nondecreasing, 3G nonincreasing.
	prev := BaselineRATMix(Month{2015, 1})
	m = Month{2015, 2}
	for i := 0; i < 130; i++ {
		cur := BaselineRATMix(m)
		if cur[RAT5G] < prev[RAT5G]-1e-12 {
			t.Fatalf("5G share shrank at %v: %v -> %v", m, prev[RAT5G], cur[RAT5G])
		}
		if cur[RAT3G] > prev[RAT3G]+1e-12 {
			t.Fatalf("3G share grew at %v: %v -> %v", m, prev[RAT3G], cur[RAT3G])
		}
		prev, m = cur, m.Next()
	}
}

func TestRATProfileMix(t *testing.T) {
	m := Month{2022, 1}
	base := RATProfile{FiveG: true}.Mix(m)
	checkMix(t, "base", base)
	if base != BaselineRATMix(m) {
		t.Errorf("zero-lag 5G profile %v != baseline %v", base, BaselineRATMix(m))
	}

	// A laggard sits earlier on the curve: less 5G than the baseline.
	lag := RATProfile{LagMonths: 18, FiveG: true}.Mix(m)
	checkMix(t, "lag", lag)
	if lag[RAT5G] >= base[RAT5G] {
		t.Errorf("18-month laggard 5G share %v >= baseline %v", lag[RAT5G], base[RAT5G])
	}
	if lag != BaselineRATMix(Month{2020, 7}) {
		t.Errorf("lagged mix %v != baseline 18 months earlier %v", lag, BaselineRATMix(Month{2020, 7}))
	}

	// A leader sits later on the curve, including lags that push Mon
	// outside 1..12.
	lead := RATProfile{LagMonths: -13, FiveG: true}.Mix(m)
	checkMix(t, "lead", lead)
	if lead != BaselineRATMix(Month{2023, 2}) {
		t.Errorf("leading mix %v != baseline 13 months later %v", lead, BaselineRATMix(Month{2023, 2}))
	}

	// Without a 5G deployment the NR share rides on LTE instead.
	no5g := RATProfile{}.Mix(m)
	checkMix(t, "no5g", no5g)
	if no5g[RAT5G] != 0 {
		t.Errorf("no-5G profile has 5G share %v", no5g[RAT5G])
	}
	if math.Abs(no5g[RAT4G]-(base[RAT4G]+base[RAT5G])) > 1e-9 {
		t.Errorf("no-5G 4G share %v, want %v", no5g[RAT4G], base[RAT4G]+base[RAT5G])
	}
	if no5g[RAT3G] != base[RAT3G] {
		t.Errorf("no-5G 3G share %v changed from %v", no5g[RAT3G], base[RAT3G])
	}
}
