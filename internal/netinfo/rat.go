package netinfo

import "fmt"

// RAT is a radio access technology generation. The paper's world model only
// distinguishes "cellular vs not"; the related 5G-era work frames the
// interesting questions as 3G/4G/5G coexistence and migration, so the world
// model carries a per-operator RAT mix keyed off the measurement month.
type RAT uint8

const (
	// RAT3G covers UMTS/HSPA-class radios.
	RAT3G RAT = iota
	// RAT4G covers LTE-class radios.
	RAT4G
	// RAT5G covers NR-class radios.
	RAT5G
	// NumRATs is the number of modelled radio generations.
	NumRATs = 3
)

// String returns the lowercase wire token ("3g", "4g", "5g").
func (r RAT) String() string {
	switch r {
	case RAT3G:
		return "3g"
	case RAT4G:
		return "4g"
	case RAT5G:
		return "5g"
	}
	return fmt.Sprintf("RAT(%d)", uint8(r))
}

// ParseRAT parses a wire token as produced by String.
func ParseRAT(s string) (RAT, error) {
	switch s {
	case "3g":
		return RAT3G, nil
	case "4g":
		return RAT4G, nil
	case "5g":
		return RAT5G, nil
	}
	return 0, fmt.Errorf("netinfo: unknown RAT %q", s)
}

// RATMix is the share of cellular traffic carried per radio generation,
// indexed by RAT. A valid mix is nonnegative and sums to 1.
type RATMix [NumRATs]float64

// normalize rescales the mix to sum to 1; an all-zero mix becomes pure 4G
// (the dominant technology across the modelled window).
func (x RATMix) normalize() RATMix {
	sum := 0.0
	for _, v := range x {
		sum += v
	}
	if sum <= 0 {
		return RATMix{RAT4G: 1}
	}
	for i := range x {
		x[i] /= sum
	}
	return x
}

// ratKnot anchors the baseline adoption curve at one month index.
type ratKnot struct {
	idx int // Month.Index()
	mix RATMix
}

// baselineKnots traces global adoption: 3G still carrying roughly half of
// cellular traffic in early 2015, LTE dominant by the paper's Dec 2016
// window, NR appearing in 2019 and taking the majority share by mid-decade.
// Mixes between knots are interpolated linearly.
var baselineKnots = []ratKnot{
	{idx: Month{Year: 2015, Mon: 1}.Index(), mix: RATMix{0.55, 0.45, 0}},
	{idx: Month{Year: 2016, Mon: 12}.Index(), mix: RATMix{0.30, 0.70, 0}},
	{idx: Month{Year: 2019, Mon: 4}.Index(), mix: RATMix{0.15, 0.84, 0.01}},
	{idx: Month{Year: 2022, Mon: 1}.Index(), mix: RATMix{0.05, 0.60, 0.35}},
	{idx: Month{Year: 2025, Mon: 1}.Index(), mix: RATMix{0.01, 0.39, 0.60}},
}

// BaselineRATMix returns the global radio-generation traffic mix for a
// month: flat before the first and after the last knot, linear in between.
func BaselineRATMix(m Month) RATMix {
	i := m.Index()
	if i <= baselineKnots[0].idx {
		return baselineKnots[0].mix
	}
	last := baselineKnots[len(baselineKnots)-1]
	if i >= last.idx {
		return last.mix
	}
	for k := 1; k < len(baselineKnots); k++ {
		lo, hi := baselineKnots[k-1], baselineKnots[k]
		if i > hi.idx {
			continue
		}
		t := float64(i-lo.idx) / float64(hi.idx-lo.idx)
		var out RATMix
		for r := range out {
			out[r] = lo.mix[r] + (hi.mix[r]-lo.mix[r])*t
		}
		return out.normalize()
	}
	return last.mix
}

// RATProfile shapes one operator's adoption relative to the baseline curve.
// The zero value is a laggard without a 5G deployment.
type RATProfile struct {
	// LagMonths shifts the operator's position on the adoption curve:
	// positive values adopt later than the baseline, negative earlier.
	LagMonths int
	// FiveG reports whether the operator has deployed NR at all; without
	// it the baseline's 5G share is carried on LTE instead.
	FiveG bool
}

// Mix returns the operator's radio-generation traffic mix for a month.
func (p RATProfile) Mix(m Month) RATMix {
	shifted := Month{Year: m.Year, Mon: m.Mon - p.LagMonths}
	// Month arithmetic via Index keeps Mon in 1..12 irrelevant here: the
	// baseline curve only consumes the index, which is linear in months.
	mix := baselineRATMixByIndex(shifted.Index())
	if !p.FiveG {
		mix[RAT4G] += mix[RAT5G]
		mix[RAT5G] = 0
	}
	return mix.normalize()
}

// baselineRATMixByIndex is BaselineRATMix on a raw month index, used when a
// lag shift pushes Mon outside 1..12.
func baselineRATMixByIndex(i int) RATMix {
	// Reconstruct a Month with the same index; Index is linear so any
	// (Year, Mon) pair with that index works.
	y, mo := 2015+i/12, i%12+1
	if mo < 1 {
		y--
		mo += 12
	}
	return BaselineRATMix(Month{Year: y, Mon: mo})
}
