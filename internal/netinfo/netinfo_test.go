package netinfo

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestConnectionTypeRoundTrip(t *testing.T) {
	for _, c := range []ConnectionType{ConnUnknown, ConnCellular, ConnWiFi, ConnEthernet, ConnBluetooth, ConnWiMAX} {
		got, err := ParseConnectionType(c.String())
		if err != nil {
			t.Fatalf("parse %q: %v", c.String(), err)
		}
		if got != c {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
	if _, err := ParseConnectionType("5g-psychic"); err == nil {
		t.Error("garbage connection type accepted")
	}
	if got, err := ParseConnectionType(""); err != nil || got != ConnUnknown {
		t.Error("empty string should parse to unknown")
	}
}

func TestMonth(t *testing.T) {
	m := Month{2016, 12}
	if m.String() != "2016-12" {
		t.Errorf("String = %q", m.String())
	}
	if m.Index() != 23 {
		t.Errorf("Index = %d, want 23", m.Index())
	}
	if m.Next() != (Month{2017, 1}) {
		t.Errorf("Next = %v", m.Next())
	}
	if (Month{2015, 3}).Next() != (Month{2015, 4}) {
		t.Error("mid-year Next wrong")
	}
}

func TestBrowserSharesSumToOne(t *testing.T) {
	for _, cellular := range []bool{true, false} {
		sum := 0.0
		for _, b := range Browsers() {
			sum += BrowserShare(b, cellular)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("shares(cellular=%v) sum to %g", cellular, sum)
		}
	}
}

func TestAPIShareDec2016(t *testing.T) {
	// Paper: 13.2% of beacon hits carried the API in Dec 2016, with Google
	// browsers contributing 96.7% of enabled hits.
	total, byBrowser := ExpectedAPIShare(December2016, 0.162)
	if total < 0.11 || total > 0.15 {
		t.Errorf("Dec 2016 API share = %.3f, want near 0.132", total)
	}
	google := 0.0
	for b, s := range byBrowser {
		if b.IsGoogle() {
			google += s
		}
	}
	if frac := google / total; frac < 0.93 {
		t.Errorf("Google share of enabled hits = %.3f, want > 0.93", frac)
	}
	if byBrowser[MobileSafari] != 0 {
		t.Error("iOS Safari must not report Network Information in the window")
	}
	// Chrome Mobile dominates, then Android WebKit (Fig 1).
	if byBrowser[ChromeMobile] <= byBrowser[AndroidWebKit] {
		t.Error("Chrome Mobile should exceed Android WebKit")
	}
	if byBrowser[AndroidWebKit] <= byBrowser[FirefoxMobile] {
		t.Error("Android WebKit should exceed Firefox Mobile")
	}
}

func TestAPIShareGrowth(t *testing.T) {
	// Fig 1: share grows monotonically from 2015-09 through 2017-06 and
	// reaches ~15% by June 2017.
	prev := -1.0
	m := Month{2015, 9}
	for m.Index() <= (Month{2017, 6}).Index() {
		total, _ := ExpectedAPIShare(m, 0.162)
		if total < prev-1e-12 {
			t.Errorf("API share decreased at %s: %.4f -> %.4f", m, prev, total)
		}
		prev = total
		m = m.Next()
	}
	jun17, _ := ExpectedAPIShare(Month{2017, 6}, 0.162)
	if jun17 < 0.13 || jun17 > 0.17 {
		t.Errorf("Jun 2017 share = %.3f, want near 0.15", jun17)
	}
	// Flat outside the observed window.
	before, _ := ExpectedAPIShare(Month{2014, 1}, 0.162)
	start, _ := ExpectedAPIShare(Month{2015, 9}, 0.162)
	if math.Abs(before-start) > 1e-12 {
		t.Error("share not flat before window")
	}
}

func TestAPIProbBounded(t *testing.T) {
	f := func(bRaw uint8, year, mon int) bool {
		b := Browser(bRaw % uint8(numBrowsers))
		m := Month{2014 + year%5, 1 + mon%12}
		p := APIProb(b, m)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSampleBrowserDistribution(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	const n = 200000
	counts := map[Browser]int{}
	for i := 0; i < n; i++ {
		counts[SampleBrowser(rng, true)]++
	}
	for _, b := range Browsers() {
		want := BrowserShare(b, true)
		got := float64(counts[b]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("%s: sampled %.3f, want %.3f", b, got, want)
		}
	}
}

func TestModelReportCellular(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	m := Model{TetherRate: 0.1, SwitchRaceRate: 0.002}
	const n = 100000
	cell, wifi := 0, 0
	for i := 0; i < n; i++ {
		switch m.Report(rng, true) {
		case ConnCellular:
			cell++
		case ConnWiFi:
			wifi++
		default:
			t.Fatal("cellular client reported a non-cellular, non-wifi type")
		}
	}
	if got := float64(wifi) / n; math.Abs(got-0.1) > 0.01 {
		t.Errorf("tether rate = %.3f, want 0.1", got)
	}
	if cell == 0 {
		t.Error("no cellular labels at all")
	}
}

func TestModelReportFixed(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 8))
	m := DefaultModel
	const n = 500000
	counts := map[ConnectionType]int{}
	for i := 0; i < n; i++ {
		counts[m.Report(rng, false)]++
	}
	cellRate := float64(counts[ConnCellular]) / n
	if cellRate > 0.005 {
		t.Errorf("fixed-line cellular false-positive rate = %.4f, want tiny", cellRate)
	}
	if counts[ConnCellular] == 0 {
		t.Error("switch-race false positives never occur; the paper documents them as rare but real")
	}
	if counts[ConnWiFi] < counts[ConnEthernet] {
		t.Error("wifi should dominate ethernet on fixed lines (mobile devices on home WiFi)")
	}
	if counts[ConnUnknown] != 0 {
		t.Error("enabled hits must not report unknown")
	}
}

func TestBrowserStrings(t *testing.T) {
	for _, b := range Browsers() {
		if b.String() == "" {
			t.Errorf("browser %d has empty name", b)
		}
	}
	if Browser(99).String() != "Browser(99)" {
		t.Error("unknown browser String")
	}
	if ConnectionType(99).String() != "ConnectionType(99)" {
		t.Error("unknown conn String")
	}
}
