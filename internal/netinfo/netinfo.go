// Package netinfo models the Network Information API signal the paper's
// identification method is built on: which browsers expose the API, how its
// adoption grew over the measurement window (Fig 1), and how a device's
// reported ConnectionType relates to the access technology its IP address
// actually sits behind — including the two noise sources the paper documents
// (tethering/hotspots and the IP-vs-API interface-switch race).
package netinfo

import (
	"fmt"
	"math/rand/v2"
)

// ConnectionType is the enumeration the Network Information API reports.
type ConnectionType uint8

const (
	// ConnUnknown marks hits without Network Information data.
	ConnUnknown ConnectionType = iota
	// ConnCellular is a cellular radio connection.
	ConnCellular
	// ConnWiFi is an 802.11 connection.
	ConnWiFi
	// ConnEthernet is a wired connection.
	ConnEthernet
	// ConnBluetooth is a Bluetooth-tethered connection.
	ConnBluetooth
	// ConnWiMAX is a WiMAX connection.
	ConnWiMAX
)

// String returns the lowercase API token ("cellular", "wifi", ...).
func (c ConnectionType) String() string {
	switch c {
	case ConnCellular:
		return "cellular"
	case ConnWiFi:
		return "wifi"
	case ConnEthernet:
		return "ethernet"
	case ConnBluetooth:
		return "bluetooth"
	case ConnWiMAX:
		return "wimax"
	case ConnUnknown:
		return "unknown"
	}
	return fmt.Sprintf("ConnectionType(%d)", uint8(c))
}

// ParseConnectionType parses an API token as produced by String.
func ParseConnectionType(s string) (ConnectionType, error) {
	switch s {
	case "cellular":
		return ConnCellular, nil
	case "wifi":
		return ConnWiFi, nil
	case "ethernet":
		return ConnEthernet, nil
	case "bluetooth":
		return ConnBluetooth, nil
	case "wimax":
		return ConnWiMAX, nil
	case "unknown", "":
		return ConnUnknown, nil
	}
	return ConnUnknown, fmt.Errorf("netinfo: unknown connection type %q", s)
}

// Browser identifies the browser families visible in the beacon logs.
type Browser uint8

const (
	// ChromeMobile is Chrome for Android (API since v38, Oct 2014).
	ChromeMobile Browser = iota
	// AndroidWebKit is Android's native WebKit browser.
	AndroidWebKit
	// FirefoxMobile is Firefox for Android.
	FirefoxMobile
	// MobileSafari is Safari on iOS (no Network Information API during the
	// paper's collection window).
	MobileSafari
	// ChromeDesktop is desktop Chrome.
	ChromeDesktop
	// SafariDesktop is desktop Safari.
	SafariDesktop
	// OtherBrowser aggregates everything else.
	OtherBrowser
	numBrowsers
)

// String names the browser family.
func (b Browser) String() string {
	switch b {
	case ChromeMobile:
		return "Chrome Mobile"
	case AndroidWebKit:
		return "Android WebKit"
	case FirefoxMobile:
		return "Firefox Mobile"
	case MobileSafari:
		return "Mobile Safari"
	case ChromeDesktop:
		return "Chrome"
	case SafariDesktop:
		return "Safari"
	case OtherBrowser:
		return "Other"
	}
	return fmt.Sprintf("Browser(%d)", uint8(b))
}

// Browsers lists all modelled browser families.
func Browsers() []Browser {
	out := make([]Browser, numBrowsers)
	for i := range out {
		out[i] = Browser(i)
	}
	return out
}

// IsGoogle reports whether the browser is Google-developed; the paper finds
// 96.7% of API-enabled requests came from Google browsers in Dec 2016.
func (b Browser) IsGoogle() bool {
	return b == ChromeMobile || b == AndroidWebKit || b == ChromeDesktop
}

// Month is a calendar month in the measurement timeline.
type Month struct {
	Year int
	Mon  int // 1..12
}

// String formats the month as "2016-12".
func (m Month) String() string { return fmt.Sprintf("%04d-%02d", m.Year, m.Mon) }

// Index returns the number of months since January 2015 (can be negative).
func (m Month) Index() int { return (m.Year-2015)*12 + m.Mon - 1 }

// Next returns the following month.
func (m Month) Next() Month {
	if m.Mon == 12 {
		return Month{Year: m.Year + 1, Mon: 1}
	}
	return Month{Year: m.Year, Mon: m.Mon + 1}
}

// December2016 is the paper's primary collection month.
var December2016 = Month{Year: 2016, Mon: 12}

// browserProfile holds per-browser beacon shares and API enablement at the
// December 2016 reference point.
type browserProfile struct {
	cellShare  float64 // share of beacon hits from cellular clients
	fixedShare float64 // share of beacon hits from fixed-line clients
	apiRef     float64 // P(hit carries Network Information) at Dec 2016
}

// profiles is calibrated so that in Dec 2016 ~13.2% of all hits carry the
// API, dominated by Chrome Mobile then Android WebKit, with Google browsers
// at ~97% of enabled hits (paper §3.1 and Fig 1).
var profiles = [numBrowsers]browserProfile{
	ChromeMobile:  {cellShare: 0.40, fixedShare: 0.08, apiRef: 0.65},
	AndroidWebKit: {cellShare: 0.16, fixedShare: 0.02, apiRef: 0.60},
	FirefoxMobile: {cellShare: 0.04, fixedShare: 0.01, apiRef: 0.25},
	MobileSafari:  {cellShare: 0.30, fixedShare: 0.06, apiRef: 0},
	ChromeDesktop: {cellShare: 0.02, fixedShare: 0.45, apiRef: 0.04},
	SafariDesktop: {cellShare: 0.02, fixedShare: 0.10, apiRef: 0},
	OtherBrowser:  {cellShare: 0.06, fixedShare: 0.28, apiRef: 0},
}

// growth returns the API-enablement multiplier for a month, normalized to
// 1.0 at December 2016. It follows Fig 1's near-linear climb from ~half the
// Dec-2016 level in late 2015 to ~1.15x by June 2017, flat outside the
// observed window.
func growth(m Month) float64 {
	const (
		startIdx = 8  // 2015-09
		refIdx   = 23 // 2016-12
		endIdx   = 29 // 2017-06
		startVal = 0.50
		refVal   = 1.00
		endVal   = 1.15
	)
	i := m.Index()
	switch {
	case i <= startIdx:
		return startVal
	case i <= refIdx:
		return startVal + (refVal-startVal)*float64(i-startIdx)/float64(refIdx-startIdx)
	case i <= endIdx:
		return refVal + (endVal-refVal)*float64(i-refIdx)/float64(endIdx-refIdx)
	default:
		return endVal
	}
}

// APIProb returns the probability that a hit from the given browser in the
// given month carries Network Information data.
func APIProb(b Browser, m Month) float64 {
	p := profiles[b].apiRef * growth(m)
	if p > 1 {
		p = 1
	}
	return p
}

// BrowserShare returns the browser's share of beacon hits for the given
// access type. Shares sum to 1 across browsers for each access type.
func BrowserShare(b Browser, cellular bool) float64 {
	if cellular {
		return profiles[b].cellShare
	}
	return profiles[b].fixedShare
}

// SampleBrowser draws a browser for one beacon hit.
func SampleBrowser(rng *rand.Rand, cellular bool) Browser {
	u := rng.Float64()
	cum := 0.0
	for b := Browser(0); b < numBrowsers; b++ {
		cum += BrowserShare(b, cellular)
		if u < cum {
			return b
		}
	}
	return OtherBrowser
}

// ExpectedAPIShare returns the expected fraction of beacon hits carrying
// Network Information data in a month, for a population where cellFrac of
// hits come from cellular clients; used to reproduce Fig 1 analytically and
// to cross-check the generator.
func ExpectedAPIShare(m Month, cellFrac float64) (total float64, byBrowser map[Browser]float64) {
	byBrowser = make(map[Browser]float64, int(numBrowsers))
	for b := Browser(0); b < numBrowsers; b++ {
		mix := cellFrac*profiles[b].cellShare + (1-cellFrac)*profiles[b].fixedShare
		s := mix * APIProb(b, m)
		byBrowser[b] = s
		total += s
	}
	return total, byBrowser
}

// Model captures the paper's two documented label-noise mechanisms plus the
// background mix of rare connection types.
type Model struct {
	// TetherRate is the probability that a cellular client's hit reports
	// "wifi" because the reporting device sits behind a mobile hotspot or
	// tether (the API sees only the device's own interface).
	TetherRate float64
	// SwitchRaceRate is the probability that a fixed-line client's hit
	// reports "cellular" because the interface changed between IP capture
	// and API invocation — the paper's only cellular false-positive path.
	SwitchRaceRate float64
}

// DefaultModel mirrors the noise levels implied by the paper's validation:
// cellular subnets rarely show 100% cellular labels (tethering), while
// cellular false positives are "very few".
var DefaultModel = Model{TetherRate: 0.08, SwitchRaceRate: 0.002}

// Report samples the ConnectionType a Network-Information-enabled hit
// reports, given the ground-truth access type of the client's IP block.
func (m Model) Report(rng *rand.Rand, cellular bool) ConnectionType {
	if cellular {
		if rng.Float64() < m.TetherRate {
			return ConnWiFi
		}
		return ConnCellular
	}
	u := rng.Float64()
	switch {
	case u < m.SwitchRaceRate:
		return ConnCellular
	case u < m.SwitchRaceRate+0.85:
		return ConnWiFi
	case u < m.SwitchRaceRate+0.85+0.145:
		return ConnEthernet
	case u < m.SwitchRaceRate+0.85+0.145+0.003:
		return ConnWiMAX
	default:
		return ConnBluetooth
	}
}
