package classify

import (
	"fmt"
	"math"
)

// Wilson confidence machinery: the cellular ratio is a binomial proportion
// estimated from few API-enabled hits, so a block's label carries sampling
// uncertainty the paper handles implicitly (its validation shows 10%
// cellular labels already classify reliably, because cellular false
// positives are rare). These helpers make the uncertainty explicit: score
// intervals for a block's true cellular share and the minimum hit count
// needed to call a label at a given confidence.

// z95 is the standard normal quantile for 95% two-sided intervals.
const z95 = 1.959963984540054

// WilsonInterval returns the Wilson score interval for a binomial
// proportion with k successes in n trials at confidence z (use z95).
// n must be positive.
func WilsonInterval(k, n int, z float64) (lo, hi float64, err error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("classify: Wilson interval needs n > 0")
	}
	if k < 0 || k > n {
		return 0, 0, fmt.Errorf("classify: k=%d out of [0,%d]", k, n)
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	denom := 1 + z*z/nn
	center := (p + z*z/(2*nn)) / denom
	half := z * math.Sqrt(p*(1-p)/nn+z*z/(4*nn*nn)) / denom
	lo, hi = center-half, center+half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// Confident reports whether a block's label at the given threshold is
// statistically settled: the Wilson interval of its cellular share lies
// entirely on one side of the threshold.
func Confident(cell, api int, threshold, z float64) (bool, error) {
	lo, hi, err := WilsonInterval(cell, api, z)
	if err != nil {
		return false, err
	}
	return hi < threshold || lo >= threshold, nil
}

// MinHitsForConfidence returns the smallest number of API-enabled hits at
// which a block with true cellular share p would yield a settled label at
// the threshold (assuming observed counts near expectation). Returns 0
// when p sits exactly on the threshold (no sample size settles it), capped
// at maxN when more hits than maxN would be needed.
func MinHitsForConfidence(p, threshold, z float64, maxN int) int {
	if p == threshold {
		return 0
	}
	for n := 1; n <= maxN; n++ {
		k := int(p*float64(n) + 0.5)
		ok, err := Confident(k, n, threshold, z)
		if err == nil && ok {
			return n
		}
	}
	return maxN
}

// ConfidentFraction reports the fraction of classified blocks (those with
// API hits) whose labels are settled at the given confidence — a data
// quality diagnostic for a BEACON aggregate.
func ConfidentFraction(counts map[int][2]int, threshold, z float64) float64 {
	// counts maps an arbitrary index to (cell, api) pairs; used by callers
	// that have already extracted tallies. Kept simple on purpose.
	settled, total := 0, 0
	for _, ca := range counts {
		cell, api := ca[0], ca[1]
		if api == 0 {
			continue
		}
		total++
		if ok, err := Confident(cell, api, threshold, z); err == nil && ok {
			settled++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(settled) / float64(total)
}

// Z95 exposes the 95% quantile for callers.
func Z95() float64 { return z95 }
