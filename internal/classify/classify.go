// Package classify implements the paper's core contribution: identifying
// cellular subnets from Network Information API beacon tallies. A block's
// cellular ratio — cellular-labeled hits over API-enabled hits — is
// thresholded to produce a cellular/non-cellular label per /24 or /48
// block (§4.1), validated against carrier ground truth with count- and
// demand-weighted precision/recall/F1 (§4.2, Table 3, Fig 3).
package classify

import (
	"fmt"
	"sort"

	"cellspot/internal/beacon"
	"cellspot/internal/netaddr"
	"cellspot/internal/par"
)

// DefaultThreshold is the paper's operating point: a simple majority of
// API-enabled hits labeled cellular.
const DefaultThreshold = 0.5

// Classifier labels blocks by thresholding their cellular ratio.
type Classifier struct {
	threshold float64
}

// New returns a classifier with the given threshold in (0, 1].
func New(threshold float64) (Classifier, error) {
	if threshold <= 0 || threshold > 1 {
		return Classifier{}, fmt.Errorf("classify: threshold %g out of (0,1]", threshold)
	}
	return Classifier{threshold: threshold}, nil
}

// Threshold returns the classifier's operating threshold.
func (c Classifier) Threshold() float64 { return c.threshold }

// Classify returns the set of blocks labeled cellular: blocks whose
// cellular ratio meets the threshold. Blocks without API-enabled hits are
// never labeled cellular (the method can only see what the API reports).
func (c Classifier) Classify(agg *beacon.Aggregate) netaddr.Set {
	out := make(netaddr.Set)
	for b, counts := range agg.PerBlock {
		if counts.API == 0 {
			continue
		}
		if float64(counts.Cell)/float64(counts.API) >= c.threshold {
			out.Add(b)
		}
	}
	return out
}

// classifyShardSize is the number of blocks per classification shard.
const classifyShardSize = 8192

// ClassifyParallel returns exactly the set Classify returns, sharding
// ratio evaluation across `parallelism` workers (0 = GOMAXPROCS,
// 1 = serial). Classification draws no randomness, so the only merge
// requirement is set union; the result is identical at every setting.
func (c Classifier) ClassifyParallel(agg *beacon.Aggregate, parallelism int) netaddr.Set {
	if par.Workers(parallelism) <= 1 {
		return c.Classify(agg)
	}
	type entry struct {
		block netaddr.Block
		api   int
		cell  int
	}
	entries := make([]entry, 0, len(agg.PerBlock))
	for b, counts := range agg.PerBlock {
		entries = append(entries, entry{block: b, api: counts.API, cell: counts.Cell})
	}
	nShards := par.Shards(len(entries), classifyShardSize)
	locals := make([][]netaddr.Block, nShards)
	par.Do(nShards, parallelism, func(s int) {
		lo, hi := par.Span(s, len(entries), classifyShardSize)
		var buf []netaddr.Block
		for _, e := range entries[lo:hi] {
			if e.api == 0 {
				continue
			}
			if float64(e.cell)/float64(e.api) >= c.threshold {
				buf = append(buf, e.block)
			}
		}
		locals[s] = buf
	})
	out := make(netaddr.Set)
	for _, blocks := range locals {
		for _, b := range blocks {
			out.Add(b)
		}
	}
	return out
}

// Confusion is a 2x2 confusion matrix; cells may be counts or
// demand-weighted sums.
type Confusion struct {
	TP, FP, TN, FN float64
}

// Precision returns TP/(TP+FP); 0 when undefined.
func (m Confusion) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return m.TP / (m.TP + m.FP)
}

// Recall returns TP/(TP+FN); 0 when undefined.
func (m Confusion) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return m.TP / (m.TP + m.FN)
}

// F1 returns the harmonic mean of precision and recall; 0 when undefined.
func (m Confusion) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates a labeled example with the given weight.
func (m *Confusion) Add(truthCellular, detectedCellular bool, w float64) {
	switch {
	case truthCellular && detectedCellular:
		m.TP += w
	case truthCellular && !detectedCellular:
		m.FN += w
	case !truthCellular && detectedCellular:
		m.FP += w
	default:
		m.TN += w
	}
}

// Evaluate scores detected cellular blocks against a carrier's ground-truth
// labels. Only blocks present in the truth map are scored (the paper's
// per-carrier validation covers the carrier's own subnets). weight maps a
// block to its weight — 1 for CIDR counts, its DU for demand weighting; a
// nil weight means count mode.
func Evaluate(detected netaddr.Set, truth map[netaddr.Block]bool, weight func(netaddr.Block) float64) Confusion {
	blocks := make([]netaddr.Block, 0, len(truth))
	for b := range truth {
		blocks = append(blocks, b)
	}
	netaddr.SortBlocks(blocks) // reproducible weight accumulation order
	var m Confusion
	for _, b := range blocks {
		w := 1.0
		if weight != nil {
			w = weight(b)
		}
		m.Add(truth[b], detected.Has(b), w)
	}
	return m
}

// SweepPoint is one threshold's validation outcome.
type SweepPoint struct {
	Threshold float64
	ByCount   Confusion
	ByDemand  Confusion
}

// Sweep evaluates the classifier across thresholds against one carrier's
// truth, producing the data behind Fig 3. demandOf may be nil to skip
// demand weighting. Thresholds are evaluated as given, in order.
func Sweep(agg *beacon.Aggregate, truth map[netaddr.Block]bool, demandOf func(netaddr.Block) float64, thresholds []float64) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(thresholds))
	for _, th := range thresholds {
		c, err := New(th)
		if err != nil {
			return nil, err
		}
		detected := c.Classify(agg)
		p := SweepPoint{Threshold: th, ByCount: Evaluate(detected, truth, nil)}
		if demandOf != nil {
			p.ByDemand = Evaluate(detected, truth, demandOf)
		}
		out = append(out, p)
	}
	return out, nil
}

// Calibrate reproduces the paper's parameter selection (§4.2): sweep the
// thresholds against one carrier's ground truth and return the point with
// the highest F1. byDemand selects demand-weighted F1 (the paper's Fig 3
// view); otherwise CIDR counts are used. Ties go to the lower threshold.
// An empty threshold list is an error.
func Calibrate(agg *beacon.Aggregate, truth map[netaddr.Block]bool, demandOf func(netaddr.Block) float64, thresholds []float64, byDemand bool) (SweepPoint, error) {
	if len(thresholds) == 0 {
		return SweepPoint{}, fmt.Errorf("classify: no thresholds to calibrate over")
	}
	pts, err := Sweep(agg, truth, demandOf, thresholds)
	if err != nil {
		return SweepPoint{}, err
	}
	best := pts[0]
	score := func(p SweepPoint) float64 {
		if byDemand {
			return p.ByDemand.F1()
		}
		return p.ByCount.F1()
	}
	for _, p := range pts[1:] {
		if score(p) > score(best) {
			best = p
		}
	}
	return best, nil
}

// ThresholdRange returns n evenly spaced thresholds over (0, 1],
// e.g. ThresholdRange(100) = 0.01, 0.02, ..., 1.00.
func ThresholdRange(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i+1) / float64(n)
	}
	return out
}

// RatioSample is one block's cellular ratio with an attached weight.
type RatioSample struct {
	Block netaddr.Block
	Ratio float64
	DU    float64
}

// Ratios extracts the cellular ratio of every API-visible block of one
// family, with demand attached via demandOf (nil leaves DU zero). The
// result is sorted by ratio — the raw material of Fig 2.
func Ratios(agg *beacon.Aggregate, fam netaddr.Family, demandOf func(netaddr.Block) float64) []RatioSample {
	var out []RatioSample
	for b, counts := range agg.PerBlock {
		if b.Fam != fam || counts.API == 0 {
			continue
		}
		s := RatioSample{Block: b, Ratio: float64(counts.Cell) / float64(counts.API)}
		if demandOf != nil {
			s.DU = demandOf(b)
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio < out[j].Ratio
		}
		return out[i].Block.Key < out[j].Block.Key
	})
	return out
}

// BucketShares summarizes ratio samples into the paper's three buckets
// (<lo, [lo,hi], >hi), returning block-count shares and demand shares.
// The paper uses lo=0.1, hi=0.9.
func BucketShares(samples []RatioSample, lo, hi float64) (countShares, demandShares [3]float64) {
	var nTotal, duTotal float64
	for _, s := range samples {
		nTotal++
		duTotal += s.DU
		idx := 1
		switch {
		case s.Ratio < lo:
			idx = 0
		case s.Ratio > hi:
			idx = 2
		}
		countShares[idx]++
		demandShares[idx] += s.DU
	}
	if nTotal > 0 {
		for i := range countShares {
			countShares[i] /= nTotal
		}
	}
	if duTotal > 0 {
		for i := range demandShares {
			demandShares[i] /= duTotal
		}
	}
	return countShares, demandShares
}
