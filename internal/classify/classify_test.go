package classify

import (
	"math"
	"testing"
	"testing/quick"

	"cellspot/internal/beacon"
	"cellspot/internal/netaddr"
)

func aggWith(t *testing.T, rows ...[4]int) *beacon.Aggregate {
	t.Helper()
	a := beacon.NewAggregate()
	for _, r := range rows {
		a.Add(netaddr.V4Block(10, 0, byte(r[0])), r[1], r[2], r[3])
	}
	return a
}

func TestNewValidation(t *testing.T) {
	for _, th := range []float64{0, -0.5, 1.01} {
		if _, err := New(th); err == nil {
			t.Errorf("threshold %g accepted", th)
		}
	}
	c, err := New(0.5)
	if err != nil || c.Threshold() != 0.5 {
		t.Fatalf("New(0.5): %v", err)
	}
}

func TestClassify(t *testing.T) {
	a := aggWith(t,
		[4]int{1, 100, 20, 19}, // ratio 0.95 -> cellular
		[4]int{2, 100, 20, 10}, // ratio 0.5 -> cellular (>= threshold)
		[4]int{3, 100, 20, 9},  // ratio 0.45 -> not
		[4]int{4, 100, 0, 0},   // no API data -> never cellular
	)
	c, _ := New(0.5)
	got := c.Classify(a)
	if !got.Has(netaddr.V4Block(10, 0, 1)) || !got.Has(netaddr.V4Block(10, 0, 2)) {
		t.Error("high-ratio blocks not detected")
	}
	if got.Has(netaddr.V4Block(10, 0, 3)) || got.Has(netaddr.V4Block(10, 0, 4)) {
		t.Error("low-ratio or API-less block detected")
	}
}

func TestConfusionMetrics(t *testing.T) {
	m := Confusion{TP: 8, FP: 2, TN: 85, FN: 5}
	if p := m.Precision(); math.Abs(p-0.8) > 1e-12 {
		t.Errorf("precision = %g", p)
	}
	if r := m.Recall(); math.Abs(r-8.0/13) > 1e-12 {
		t.Errorf("recall = %g", r)
	}
	wantF1 := 2 * 0.8 * (8.0 / 13) / (0.8 + 8.0/13)
	if f := m.F1(); math.Abs(f-wantF1) > 1e-12 {
		t.Errorf("F1 = %g, want %g", f, wantF1)
	}
	var empty Confusion
	if empty.Precision() != 0 || empty.Recall() != 0 || empty.F1() != 0 {
		t.Error("empty confusion metrics not 0")
	}
}

func TestEvaluateCountsAndWeights(t *testing.T) {
	detected := netaddr.NewSet(netaddr.V4Block(10, 0, 1), netaddr.V4Block(10, 0, 3))
	truth := map[netaddr.Block]bool{
		netaddr.V4Block(10, 0, 1): true,  // TP
		netaddr.V4Block(10, 0, 2): true,  // FN
		netaddr.V4Block(10, 0, 3): false, // FP
		netaddr.V4Block(10, 0, 4): false, // TN
	}
	m := Evaluate(detected, truth, nil)
	if m.TP != 1 || m.FN != 1 || m.FP != 1 || m.TN != 1 {
		t.Fatalf("count confusion = %+v", m)
	}
	w := map[netaddr.Block]float64{
		netaddr.V4Block(10, 0, 1): 10,
		netaddr.V4Block(10, 0, 2): 2,
		netaddr.V4Block(10, 0, 3): 0.5,
		netaddr.V4Block(10, 0, 4): 100,
	}
	md := Evaluate(detected, truth, func(b netaddr.Block) float64 { return w[b] })
	if md.TP != 10 || md.FN != 2 || md.FP != 0.5 || md.TN != 100 {
		t.Fatalf("weighted confusion = %+v", md)
	}
	// Blocks detected outside the truth list are ignored.
	detected.Add(netaddr.V4Block(99, 0, 0))
	m2 := Evaluate(detected, truth, nil)
	if m2 != m {
		t.Error("out-of-truth detection changed the matrix")
	}
}

func TestSweepStability(t *testing.T) {
	// Reproduces Fig 3's key property: with clean separation (cellular
	// ratios ~0.9, fixed ~0.0), F1 is flat across a wide threshold range.
	a := beacon.NewAggregate()
	truth := map[netaddr.Block]bool{}
	for i := 0; i < 50; i++ {
		b := netaddr.V4Block(20, 1, byte(i))
		a.Add(b, 1000, 130, 120) // ratio 0.92
		truth[b] = true
	}
	for i := 0; i < 500; i++ {
		b := netaddr.V4Block(30, byte(i/250), byte(i%250))
		a.Add(b, 1000, 130, 0)
		truth[b] = false
	}
	pts, err := Sweep(a, truth, nil, ThresholdRange(100))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 100 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Threshold >= 0.1 && p.Threshold <= 0.9 {
			if f := p.ByCount.F1(); f < 0.99 {
				t.Errorf("F1 at threshold %.2f = %.3f, want ~1 (stable plateau)", p.Threshold, f)
			}
		}
	}
	// Beyond the cellular ratio level, recall collapses.
	last := pts[len(pts)-1]
	if last.ByCount.Recall() > 0.01 {
		t.Errorf("recall at threshold 1.0 = %g, want ~0", last.ByCount.Recall())
	}
}

func TestSweepPropagatesErrors(t *testing.T) {
	a := beacon.NewAggregate()
	if _, err := Sweep(a, nil, nil, []float64{0}); err == nil {
		t.Error("invalid threshold accepted in sweep")
	}
}

func TestCalibrate(t *testing.T) {
	// Cellular at ratio ~0.7, fixed at ~0: every threshold in (0, 0.7]
	// achieves perfect F1; Calibrate must pick one of them (the lowest on
	// ties) and never a threshold above the cellular ratio.
	a := beacon.NewAggregate()
	truth := map[netaddr.Block]bool{}
	for i := 0; i < 30; i++ {
		b := netaddr.V4Block(40, 1, byte(i))
		a.Add(b, 500, 100, 70)
		truth[b] = true
	}
	for i := 0; i < 300; i++ {
		b := netaddr.V4Block(50, byte(i/250), byte(i%250))
		a.Add(b, 500, 100, 0)
		truth[b] = false
	}
	best, err := Calibrate(a, truth, nil, ThresholdRange(100), false)
	if err != nil {
		t.Fatal(err)
	}
	if best.ByCount.F1() < 0.999 {
		t.Errorf("calibrated F1 = %g", best.ByCount.F1())
	}
	if best.Threshold > 0.7 {
		t.Errorf("calibrated threshold %g above the cellular ratio", best.Threshold)
	}
	if best.Threshold != 0.01 {
		t.Errorf("tie should go to the lowest threshold, got %g", best.Threshold)
	}
	if _, err := Calibrate(a, truth, nil, nil, false); err == nil {
		t.Error("empty threshold list accepted")
	}
	if _, err := Calibrate(a, truth, nil, []float64{-1}, true); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestThresholdRange(t *testing.T) {
	ths := ThresholdRange(4)
	want := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range want {
		if math.Abs(ths[i]-want[i]) > 1e-12 {
			t.Fatalf("ThresholdRange = %v", ths)
		}
	}
}

func TestRatiosAndBuckets(t *testing.T) {
	a := beacon.NewAggregate()
	a.Add(netaddr.V4Block(1, 1, 1), 10, 10, 0)  // 0.0
	a.Add(netaddr.V4Block(1, 1, 2), 10, 10, 5)  // 0.5
	a.Add(netaddr.V4Block(1, 1, 3), 10, 10, 10) // 1.0
	a.Add(netaddr.V6Block(0x111), 10, 10, 10)   // other family
	a.Add(netaddr.V4Block(1, 1, 4), 10, 0, 0)   // no API: excluded
	du := map[netaddr.Block]float64{
		netaddr.V4Block(1, 1, 1): 70,
		netaddr.V4Block(1, 1, 2): 20,
		netaddr.V4Block(1, 1, 3): 10,
	}
	samples := Ratios(a, netaddr.IPv4, func(b netaddr.Block) float64 { return du[b] })
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Ratio > samples[i].Ratio {
			t.Fatal("samples not sorted by ratio")
		}
	}
	counts, demands := BucketShares(samples, 0.1, 0.9)
	wantCounts := [3]float64{1.0 / 3, 1.0 / 3, 1.0 / 3}
	wantDemand := [3]float64{0.7, 0.2, 0.1}
	for i := 0; i < 3; i++ {
		if math.Abs(counts[i]-wantCounts[i]) > 1e-9 {
			t.Errorf("count share[%d] = %g", i, counts[i])
		}
		if math.Abs(demands[i]-wantDemand[i]) > 1e-9 {
			t.Errorf("demand share[%d] = %g", i, demands[i])
		}
	}
	// v6 family query sees only the v6 block.
	if got := Ratios(a, netaddr.IPv6, nil); len(got) != 1 {
		t.Errorf("v6 samples = %d", len(got))
	}
	// Empty input.
	c0, d0 := BucketShares(nil, 0.1, 0.9)
	if c0 != [3]float64{} || d0 != [3]float64{} {
		t.Error("empty BucketShares nonzero")
	}
}

// Property: confusion-matrix identities hold under Evaluate — TP+FN equals
// the number of truth positives, FP+TN the negatives.
func TestEvaluateIdentityProperty(t *testing.T) {
	f := func(flags []bool, detFlags []bool) bool {
		truth := map[netaddr.Block]bool{}
		det := make(netaddr.Set)
		for i, cell := range flags {
			b := netaddr.Block{Fam: netaddr.IPv4, Key: uint64(i)}
			truth[b] = cell
			if i < len(detFlags) && detFlags[i] {
				det.Add(b)
			}
		}
		m := Evaluate(det, truth, nil)
		pos, neg := 0, 0
		for _, cell := range truth {
			if cell {
				pos++
			} else {
				neg++
			}
		}
		return m.TP+m.FN == float64(pos) && m.FP+m.TN == float64(neg)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: F1 is always within [0,1] and 0 only when TP is 0.
func TestF1BoundsProperty(t *testing.T) {
	f := func(tp, fp, tn, fn uint16) bool {
		m := Confusion{TP: float64(tp), FP: float64(fp), TN: float64(tn), FN: float64(fn)}
		f1 := m.F1()
		if f1 < 0 || f1 > 1 {
			return false
		}
		if tp == 0 && f1 != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
