package classify

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWilsonIntervalBasics(t *testing.T) {
	lo, hi, err := WilsonInterval(50, 100, Z95())
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%.3f,%.3f] should straddle 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval too wide for n=100: %.3f", hi-lo)
	}
	// Extremes pin to the boundary (within floating point).
	lo, hi, err = WilsonInterval(0, 3, Z95())
	if err != nil || lo > 1e-9 {
		t.Errorf("k=0 interval [%.3f,%.3f], err %v", lo, hi, err)
	}
	lo, hi, err = WilsonInterval(3, 3, Z95())
	if err != nil || hi < 1-1e-9 {
		t.Errorf("k=n interval [%.3f,%.3f], err %v", lo, hi, err)
	}
}

func TestWilsonIntervalErrors(t *testing.T) {
	if _, _, err := WilsonInterval(0, 0, Z95()); err == nil {
		t.Error("n=0 accepted")
	}
	if _, _, err := WilsonInterval(-1, 5, Z95()); err == nil {
		t.Error("negative k accepted")
	}
	if _, _, err := WilsonInterval(6, 5, Z95()); err == nil {
		t.Error("k>n accepted")
	}
}

func TestConfident(t *testing.T) {
	// 19 of 20 cellular: clearly above 0.5.
	ok, err := Confident(19, 20, 0.5, Z95())
	if err != nil || !ok {
		t.Errorf("19/20 not settled: %v %v", ok, err)
	}
	// 2 of 4 cellular: unsettled at 0.5.
	ok, err = Confident(2, 4, 0.5, Z95())
	if err != nil || ok {
		t.Errorf("2/4 settled: %v %v", ok, err)
	}
	// 0 of 30: settled below.
	ok, err = Confident(0, 30, 0.5, Z95())
	if err != nil || !ok {
		t.Errorf("0/30 not settled: %v %v", ok, err)
	}
}

func TestMinHitsForConfidence(t *testing.T) {
	// A 95%-cellular block settles quickly at the 0.5 threshold.
	n1 := MinHitsForConfidence(0.95, 0.5, Z95(), 1000)
	if n1 == 0 || n1 > 20 {
		t.Errorf("p=0.95 needs %d hits, want a handful", n1)
	}
	// A 55%-cellular block needs far more evidence.
	n2 := MinHitsForConfidence(0.55, 0.5, Z95(), 10000)
	if n2 <= n1*5 {
		t.Errorf("p=0.55 needs %d hits, want >> %d", n2, n1)
	}
	// Exactly at the threshold: unsettleable.
	if got := MinHitsForConfidence(0.5, 0.5, Z95(), 1000); got != 0 {
		t.Errorf("p=threshold returned %d", got)
	}
	// Cap respected.
	if got := MinHitsForConfidence(0.501, 0.5, Z95(), 50); got != 50 {
		t.Errorf("cap returned %d", got)
	}
}

func TestConfidentFraction(t *testing.T) {
	counts := map[int][2]int{
		0: {19, 20}, // settled high
		1: {0, 30},  // settled low
		2: {2, 4},   // unsettled
		3: {0, 0},   // no API hits: excluded
	}
	got := ConfidentFraction(counts, 0.5, Z95())
	if math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("fraction = %g, want 2/3", got)
	}
	if ConfidentFraction(nil, 0.5, Z95()) != 0 {
		t.Error("empty input nonzero")
	}
}

// Property: the Wilson interval always contains the point estimate and is
// ordered within [0,1].
func TestWilsonIntervalProperty(t *testing.T) {
	f := func(kRaw, nRaw uint16) bool {
		n := int(nRaw%2000) + 1
		k := int(kRaw) % (n + 1)
		lo, hi, err := WilsonInterval(k, n, Z95())
		if err != nil {
			return false
		}
		p := float64(k) / float64(n)
		return lo >= 0 && hi <= 1 && lo <= p+1e-12 && hi >= p-1e-12 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: more evidence never widens the interval (same proportion).
func TestWilsonShrinksProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw%100) + 4
		lo1, hi1, err1 := WilsonInterval(n/2, n, Z95())
		lo2, hi2, err2 := WilsonInterval(n*5/2, n*5, Z95())
		if err1 != nil || err2 != nil {
			return false
		}
		return (hi2 - lo2) <= (hi1-lo1)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
