package classify

import (
	"cellspot/internal/beacon"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
)

// RATShares sums the per-RAT cellular label counts over a set of blocks
// and returns each radio generation's share of the RAT-labeled hits,
// indexed by netinfo.RAT. ok is false when no label in the set carries a
// radio generation — legacy logs predating the RAT column — in which case
// the map artifact omits its RAT column for the covering prefix and the
// history index serves the entry in legacy form.
func RATShares(agg *beacon.Aggregate, blocks []netaddr.Block) (shares [netinfo.NumRATs]float64, ok bool) {
	if agg == nil {
		return shares, false
	}
	var c3, c4, c5 int
	for _, b := range blocks {
		if c := agg.PerBlock[b]; c != nil {
			c3 += c.Cell3G
			c4 += c.Cell4G
			c5 += c.Cell5G
		}
	}
	total := c3 + c4 + c5
	if total == 0 {
		return shares, false
	}
	shares[netinfo.RAT3G] = float64(c3) / float64(total)
	shares[netinfo.RAT4G] = float64(c4) / float64(total)
	shares[netinfo.RAT5G] = float64(c5) / float64(total)
	return shares, true
}
