// Package aschar lifts subnet-level cellular labels to autonomous systems
// (paper §5–6): the straw-man tagging of any AS with one cellular block,
// the three filtering heuristics of Table 5, the mixed/dedicated
// classification by cellular fraction of demand, and the demand rankings
// behind Figs 4–8 and Table 7.
//
// Measurement inputs are public-knowledge equivalents only: BGP-style
// block→AS mapping, the CAIDA-style class snapshot, the BEACON aggregate,
// and the DEMAND dataset. Ground-truth roles never enter.
package aschar

import (
	"sort"

	"cellspot/internal/asn"
	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/netaddr"
)

// Stats is the per-AS rollup the filters and characterization consume.
type Stats struct {
	ASN uint32

	// Blocks counts blocks observed in DEMAND or BEACON; CellBlocks those
	// labeled cellular, split by family.
	Blocks, CellBlocks         int
	CellBlocks24, CellBlocks48 int

	// Hits is the AS's total beacon responses; APIHits and CellHits the
	// Network-Information subsets.
	Hits, APIHits, CellHits int

	// TotalDU is the AS's platform demand; CellDU the demand of its
	// cellular-labeled blocks.
	TotalDU, CellDU float64
}

// CFD returns the AS's cellular fraction of demand (§6.1).
func (s *Stats) CFD() float64 {
	if s.TotalDU == 0 {
		return 0
	}
	return s.CellDU / s.TotalDU
}

// CellBlockFraction returns the fraction of the AS's observed blocks that
// are labeled cellular (Fig 5's second curve).
func (s *Stats) CellBlockFraction() float64 {
	if s.Blocks == 0 {
		return 0
	}
	return float64(s.CellBlocks) / float64(s.Blocks)
}

// Inputs bundles the measurement-side data for AS aggregation.
type Inputs struct {
	Detected netaddr.Set       // classifier output
	Beacon   *beacon.Aggregate // per-block hit tallies
	Demand   *demand.Dataset   // per-block DU
	// ASOf maps a block to its originating AS, as a BGP table would.
	ASOf func(netaddr.Block) (uint32, bool)
}

// BuildStats aggregates blocks into per-AS statistics.
func BuildStats(in Inputs) map[uint32]*Stats {
	stats := make(map[uint32]*Stats)
	get := func(a uint32) *Stats {
		s := stats[a]
		if s == nil {
			s = &Stats{ASN: a}
			stats[a] = s
		}
		return s
	}
	seen := make(netaddr.Set)
	if in.Demand != nil {
		in.Demand.Each(func(b netaddr.Block, du float64) {
			a, ok := in.ASOf(b)
			if !ok {
				return
			}
			s := get(a)
			s.Blocks++
			s.TotalDU += du
			seen.Add(b)
			if in.Detected.Has(b) {
				s.addCellBlock(b)
				s.CellDU += du
			}
		})
	}
	if in.Beacon != nil {
		for b, c := range in.Beacon.PerBlock {
			a, ok := in.ASOf(b)
			if !ok {
				continue
			}
			s := get(a)
			s.Hits += c.Hits
			s.APIHits += c.API
			s.CellHits += c.Cell
			if !seen.Has(b) {
				// Beacon-only block (no recorded demand).
				s.Blocks++
				if in.Detected.Has(b) {
					s.addCellBlock(b)
				}
			}
		}
	}
	return stats
}

func (s *Stats) addCellBlock(b netaddr.Block) {
	s.CellBlocks++
	if b.IsV6() {
		s.CellBlocks48++
	} else {
		s.CellBlocks24++
	}
}

// Rules holds the paper's AS-filter parameters (Table 5).
type Rules struct {
	// MinCellDU excludes ASes whose cumulative cellular demand is below
	// this many Demand Units (paper: 0.1).
	MinCellDU float64
	// MinHits excludes ASes with fewer beacon responses (paper: 300).
	MinHits int
	// Snapshot is the CAIDA-style classification; ASes labeled Content or
	// absent ("no known class") are excluded.
	Snapshot *asn.Snapshot
}

// DefaultRules mirrors the paper's thresholds.
func DefaultRules(snap *asn.Snapshot) Rules {
	return Rules{MinCellDU: 0.1, MinHits: 300, Snapshot: snap}
}

// FilterResult records each stage of the AS filtering pipeline.
type FilterResult struct {
	Tagged     []uint32 // straw-man: >= 1 cellular block
	AfterRule1 []uint32 // cellular demand >= MinCellDU
	AfterRule2 []uint32 // beacon hits >= MinHits
	AfterRule3 []uint32 // acceptable AS class — the final cellular AS set
}

// Removed returns how many ASes each rule filtered.
func (r FilterResult) Removed() (rule1, rule2, rule3 int) {
	return len(r.Tagged) - len(r.AfterRule1),
		len(r.AfterRule1) - len(r.AfterRule2),
		len(r.AfterRule2) - len(r.AfterRule3)
}

// Filter applies the straw-man tagging and the three exclusion rules in the
// paper's order. Output slices are sorted by AS number.
func Filter(stats map[uint32]*Stats, rules Rules) FilterResult {
	var res FilterResult
	for a, s := range stats {
		if s.CellBlocks > 0 {
			res.Tagged = append(res.Tagged, a)
		}
	}
	sort.Slice(res.Tagged, func(i, j int) bool { return res.Tagged[i] < res.Tagged[j] })

	for _, a := range res.Tagged {
		if stats[a].CellDU >= rules.MinCellDU {
			res.AfterRule1 = append(res.AfterRule1, a)
		}
	}
	for _, a := range res.AfterRule1 {
		if stats[a].Hits >= rules.MinHits {
			res.AfterRule2 = append(res.AfterRule2, a)
		}
	}
	for _, a := range res.AfterRule2 {
		if rules.Snapshot == nil {
			res.AfterRule3 = append(res.AfterRule3, a)
			continue
		}
		switch rules.Snapshot.Class(a) {
		case asn.ClassTransitAccess, asn.ClassEnterprise:
			res.AfterRule3 = append(res.AfterRule3, a)
		}
	}
	return res
}

// DedicatedCFD is the paper's cut: ASes with at least 90% of their demand
// cellular are dedicated; below that they are mixed (§6.1).
const DedicatedCFD = 0.9

// Network is one identified cellular AS with its characterization.
type Network struct {
	*Stats
	Dedicated bool
}

// Characterize labels each identified cellular AS mixed or dedicated.
func Characterize(final []uint32, stats map[uint32]*Stats) []Network {
	out := make([]Network, 0, len(final))
	for _, a := range final {
		s := stats[a]
		out = append(out, Network{Stats: s, Dedicated: s.CFD() >= DedicatedCFD})
	}
	return out
}

// RankByCellDU sorts networks by descending cellular demand (Fig 7,
// Table 7). Ties break on AS number for determinism.
func RankByCellDU(nets []Network) []Network {
	out := append([]Network(nil), nets...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].CellDU != out[j].CellDU {
			return out[i].CellDU > out[j].CellDU
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

// BlockView is one block of an AS with its measured cellular ratio and
// demand — the unit of Fig 6's per-operator breakdown and Fig 8's ranked
// subnet series.
type BlockView struct {
	Block netaddr.Block
	Ratio float64 // 0 when the block has no API-enabled hits
	DU    float64
	Cell  bool // classifier label
}

// OperatorBlocks assembles the per-block view of one AS over an announced
// block list (BGP-style, so idle inventory shows up at ratio 0 with zero
// demand, as in Fig 6a).
func OperatorBlocks(announced []netaddr.Block, in Inputs) []BlockView {
	out := make([]BlockView, 0, len(announced))
	for _, b := range announced {
		v := BlockView{Block: b, Cell: in.Detected.Has(b)}
		if in.Beacon != nil {
			if r, ok := in.Beacon.Ratio(b); ok {
				v.Ratio = r
			}
		}
		if in.Demand != nil {
			v.DU = in.Demand.DU(b)
		}
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Ratio != out[j].Ratio {
			return out[i].Ratio < out[j].Ratio
		}
		return out[i].Block.Key < out[j].Block.Key
	})
	return out
}
