package aschar

import (
	"math"
	"testing"

	"cellspot/internal/asn"
	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/netaddr"
)

// fixture builds a small measurement scenario with three ASes:
// AS1 a mixed operator, AS2 a tiny stray, AS3 a content/proxy network.
func fixture(t *testing.T) (Inputs, *asn.Snapshot) {
	t.Helper()
	agg := beacon.NewAggregate()
	raw := map[netaddr.Block]float64{}
	asOf := map[netaddr.Block]uint32{}

	add := func(a uint32, b netaddr.Block, du float64, hits, api, cell int) {
		asOf[b] = a
		if du > 0 {
			raw[b] = du
		}
		if hits > 0 {
			agg.Add(b, hits, api, cell)
		}
	}
	// AS1: two cellular blocks (one heavy), three fixed blocks.
	add(1, netaddr.V4Block(10, 1, 0), 50, 5000, 600, 570)
	add(1, netaddr.V4Block(10, 1, 1), 5, 500, 60, 55)
	add(1, netaddr.V4Block(10, 2, 0), 200, 9000, 700, 2)
	add(1, netaddr.V4Block(10, 2, 1), 100, 4000, 300, 0)
	add(1, netaddr.V4Block(10, 2, 2), 45, 2000, 150, 1)
	// AS2: stray with one low-demand cellular-looking block.
	add(2, netaddr.V4Block(20, 0, 0), 0.01, 10, 2, 2)
	// AS3: proxy; lots of cellular-labeled demand.
	add(3, netaddr.V4Block(30, 0, 0), 120, 8000, 900, 700)
	add(3, netaddr.V4Block(30, 0, 1), 60, 4000, 450, 350)
	// AS4: demand-only network, no beacons, no cellular labels.
	add(4, netaddr.V4Block(40, 0, 0), 80, 0, 0, 0)

	ds, err := demand.NewDataset(raw)
	if err != nil {
		t.Fatal(err)
	}
	// Detected = blocks with ratio >= 0.5 (computed by hand above).
	det := netaddr.NewSet(
		netaddr.V4Block(10, 1, 0), netaddr.V4Block(10, 1, 1),
		netaddr.V4Block(20, 0, 0),
		netaddr.V4Block(30, 0, 0), netaddr.V4Block(30, 0, 1),
	)
	reg, err := asn.NewRegistry([]asn.AS{
		{Number: 1, Class: asn.ClassTransitAccess},
		{Number: 2, Class: asn.ClassTransitAccess},
		{Number: 3, Class: asn.ClassContent},
		{Number: 4, Class: asn.ClassEnterprise},
	})
	if err != nil {
		t.Fatal(err)
	}
	in := Inputs{
		Detected: det,
		Beacon:   agg,
		Demand:   ds,
		ASOf: func(b netaddr.Block) (uint32, bool) {
			a, ok := asOf[b]
			return a, ok
		},
	}
	return in, asn.BuildSnapshot(reg)
}

func TestBuildStats(t *testing.T) {
	in, _ := fixture(t)
	stats := BuildStats(in)
	if len(stats) != 4 {
		t.Fatalf("ASes = %d", len(stats))
	}
	s1 := stats[1]
	if s1.Blocks != 5 || s1.CellBlocks != 2 || s1.CellBlocks24 != 2 || s1.CellBlocks48 != 0 {
		t.Errorf("AS1 stats = %+v", s1)
	}
	if s1.Hits != 5000+500+9000+4000+2000 {
		t.Errorf("AS1 hits = %d", s1.Hits)
	}
	// DU values are normalized; check proportions instead of absolutes.
	wantCFD := 55.0 / 400.0
	if math.Abs(s1.CFD()-wantCFD) > 1e-9 {
		t.Errorf("AS1 CFD = %g, want %g", s1.CFD(), wantCFD)
	}
	if got := s1.CellBlockFraction(); math.Abs(got-0.4) > 1e-9 {
		t.Errorf("AS1 cell block fraction = %g", got)
	}
	s4 := stats[4]
	if s4.Hits != 0 || s4.Blocks != 1 || s4.CellBlocks != 0 {
		t.Errorf("AS4 stats = %+v", s4)
	}
	// An empty stats entry has CFD 0.
	if (&Stats{}).CFD() != 0 || (&Stats{}).CellBlockFraction() != 0 {
		t.Error("zero stats division")
	}
}

func TestBuildStatsBeaconOnlyBlock(t *testing.T) {
	agg := beacon.NewAggregate()
	b := netaddr.V4Block(50, 0, 0)
	agg.Add(b, 100, 20, 20)
	ds, _ := demand.NewDataset(map[netaddr.Block]float64{netaddr.V4Block(51, 0, 0): 1})
	in := Inputs{
		Detected: netaddr.NewSet(b),
		Beacon:   agg,
		Demand:   ds,
		ASOf:     func(netaddr.Block) (uint32, bool) { return 7, true },
	}
	stats := BuildStats(in)
	s := stats[7]
	if s.Blocks != 2 || s.CellBlocks != 1 {
		t.Errorf("beacon-only block not counted: %+v", s)
	}
	if s.CellDU != 0 {
		t.Errorf("beacon-only cellular block contributed demand: %+v", s)
	}
}

func TestBuildStatsUnmappedBlocksIgnored(t *testing.T) {
	agg := beacon.NewAggregate()
	agg.Add(netaddr.V4Block(1, 1, 1), 10, 5, 5)
	ds, _ := demand.NewDataset(map[netaddr.Block]float64{netaddr.V4Block(1, 1, 1): 5})
	in := Inputs{
		Detected: netaddr.NewSet(netaddr.V4Block(1, 1, 1)),
		Beacon:   agg,
		Demand:   ds,
		ASOf:     func(netaddr.Block) (uint32, bool) { return 0, false },
	}
	if stats := BuildStats(in); len(stats) != 0 {
		t.Errorf("unmapped blocks created %d AS entries", len(stats))
	}
}

func TestFilterRules(t *testing.T) {
	in, snap := fixture(t)
	stats := BuildStats(in)
	// Tagged: AS1, AS2, AS3 (have detected cellular blocks); AS4 not.
	// Raw weights normalize to 100,000 DU over a 660.01 total, so AS2's
	// 0.01-weight cellular block is ~1.5 DU; a 100 DU bar removes it.
	rules := Rules{MinCellDU: 100, MinHits: 3000, Snapshot: snap}
	res := Filter(stats, rules)
	if len(res.Tagged) != 3 {
		t.Fatalf("tagged = %v", res.Tagged)
	}
	// Rule 1 kills AS2 (cell DU far below 1).
	if len(res.AfterRule1) != 2 {
		t.Fatalf("after rule 1 = %v", res.AfterRule1)
	}
	// Rule 2 keeps both (AS1 and AS3 have plenty of hits).
	if len(res.AfterRule2) != 2 {
		t.Fatalf("after rule 2 = %v", res.AfterRule2)
	}
	// Rule 3 kills AS3 (Content class).
	if len(res.AfterRule3) != 1 || res.AfterRule3[0] != 1 {
		t.Fatalf("after rule 3 = %v", res.AfterRule3)
	}
	r1, r2, r3 := res.Removed()
	if r1 != 1 || r2 != 0 || r3 != 1 {
		t.Errorf("removed = %d/%d/%d", r1, r2, r3)
	}
}

func TestFilterRule2(t *testing.T) {
	in, snap := fixture(t)
	stats := BuildStats(in)
	// Crank MinHits so only AS3 survives rule 2's hit bar... then dies on
	// class. AS1 has 20,500 hits; AS3 has 12,000.
	rules := Rules{MinCellDU: 0.0001, MinHits: 15000, Snapshot: snap}
	res := Filter(stats, rules)
	if len(res.AfterRule2) != 1 || res.AfterRule2[0] != 1 {
		t.Fatalf("after rule 2 = %v", res.AfterRule2)
	}
}

func TestFilterUnknownClassExcluded(t *testing.T) {
	stats := map[uint32]*Stats{
		9: {ASN: 9, CellBlocks: 1, CellDU: 10, Hits: 10000},
	}
	reg, _ := asn.NewRegistry([]asn.AS{{Number: 8, Class: asn.ClassTransitAccess}})
	res := Filter(stats, DefaultRules(asn.BuildSnapshot(reg)))
	if len(res.AfterRule3) != 0 {
		t.Error("AS with no known class survived rule 3")
	}
	// nil snapshot skips rule 3 entirely.
	res = Filter(stats, Rules{MinCellDU: 0.1, MinHits: 300})
	if len(res.AfterRule3) != 1 {
		t.Error("nil snapshot should disable rule 3")
	}
}

func TestCharacterizeAndRank(t *testing.T) {
	stats := map[uint32]*Stats{
		1: {ASN: 1, TotalDU: 100, CellDU: 95},
		2: {ASN: 2, TotalDU: 100, CellDU: 30},
		3: {ASN: 3, TotalDU: 50, CellDU: 50},
	}
	nets := Characterize([]uint32{1, 2, 3}, stats)
	byASN := map[uint32]Network{}
	for _, n := range nets {
		byASN[n.ASN] = n
	}
	if !byASN[1].Dedicated || byASN[2].Dedicated || !byASN[3].Dedicated {
		t.Errorf("dedicated flags wrong: %+v", byASN)
	}
	ranked := RankByCellDU(nets)
	if ranked[0].ASN != 1 || ranked[1].ASN != 3 || ranked[2].ASN != 2 {
		t.Errorf("rank order = %v, %v, %v", ranked[0].ASN, ranked[1].ASN, ranked[2].ASN)
	}
	// Ties break by ASN.
	tied := Characterize([]uint32{1, 3}, map[uint32]*Stats{
		1: {ASN: 1, CellDU: 5}, 3: {ASN: 3, CellDU: 5},
	})
	r2 := RankByCellDU(tied)
	if r2[0].ASN != 1 {
		t.Error("tie break not by ASN")
	}
}

func TestOperatorBlocks(t *testing.T) {
	in, _ := fixture(t)
	announced := []netaddr.Block{
		netaddr.V4Block(10, 1, 0), netaddr.V4Block(10, 1, 1),
		netaddr.V4Block(10, 2, 0), netaddr.V4Block(10, 2, 1), netaddr.V4Block(10, 2, 2),
		netaddr.V4Block(10, 9, 9), // idle: no hits, no demand
	}
	views := OperatorBlocks(announced, in)
	if len(views) != 6 {
		t.Fatalf("views = %d", len(views))
	}
	// The idle block shows up at ratio 0 with zero DU.
	foundIdle := false
	for _, v := range views {
		if v.Block == netaddr.V4Block(10, 9, 9) {
			foundIdle = true
			if v.Ratio != 0 || v.DU != 0 || v.Cell {
				t.Errorf("idle view = %+v", v)
			}
		}
	}
	if !foundIdle {
		t.Error("idle block missing from views")
	}
	last := views[len(views)-1]
	if last.Ratio < 0.9 || !last.Cell {
		t.Errorf("last view = %+v, want heavy cellular", last)
	}
	for i := 1; i < len(views); i++ {
		if views[i-1].Ratio > views[i].Ratio {
			t.Fatal("views not sorted by ratio")
		}
	}
}
