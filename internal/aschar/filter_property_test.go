package aschar

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomStats generates an arbitrary per-AS stats map.
func randomStats(rng *rand.Rand, n int) map[uint32]*Stats {
	out := make(map[uint32]*Stats, n)
	for i := 0; i < n; i++ {
		asn := uint32(1000 + i)
		out[asn] = &Stats{
			ASN:        asn,
			CellBlocks: rng.IntN(4),
			CellDU:     rng.Float64() * 2,
			TotalDU:    rng.Float64() * 10,
			Hits:       rng.IntN(1000),
		}
	}
	return out
}

// Property: tightening either threshold never grows any stage of the funnel,
// and the funnel is always monotone non-increasing stage to stage.
func TestFilterMonotoneProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, duBar, duBar2 float64, hitBar, hitBar2 uint16) bool {
		rng := rand.New(rand.NewPCG(seed, 17))
		stats := randomStats(rng, int(nRaw)+1)

		abs := func(v float64) float64 {
			if v < 0 {
				return -v
			}
			return v
		}
		lo := Rules{MinCellDU: abs(duBar), MinHits: int(hitBar)}
		hi := Rules{MinCellDU: lo.MinCellDU + abs(duBar2), MinHits: lo.MinHits + int(hitBar2)}

		rLo := Filter(stats, lo)
		rHi := Filter(stats, hi)

		// Funnel monotone within one run.
		if len(rLo.Tagged) < len(rLo.AfterRule1) ||
			len(rLo.AfterRule1) < len(rLo.AfterRule2) ||
			len(rLo.AfterRule2) < len(rLo.AfterRule3) {
			return false
		}
		// Tightening thresholds never admits more ASes at any stage.
		if len(rHi.AfterRule1) > len(rLo.AfterRule1) ||
			len(rHi.AfterRule2) > len(rLo.AfterRule2) ||
			len(rHi.AfterRule3) > len(rLo.AfterRule3) {
			return false
		}
		// Tagging is threshold-independent.
		return len(rHi.Tagged) == len(rLo.Tagged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the final set is a subset of every earlier stage.
func TestFilterSubsetProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 23))
		stats := randomStats(rng, int(nRaw)+1)
		res := Filter(stats, Rules{MinCellDU: 0.5, MinHits: 300})
		inStage := func(stage []uint32) map[uint32]bool {
			m := make(map[uint32]bool, len(stage))
			for _, a := range stage {
				m[a] = true
			}
			return m
		}
		tagged := inStage(res.Tagged)
		r1 := inStage(res.AfterRule1)
		r2 := inStage(res.AfterRule2)
		for _, a := range res.AfterRule3 {
			if !tagged[a] || !r1[a] || !r2[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Characterize splits exactly at the dedicated CFD cut.
func TestCharacterizeCutProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 29))
		stats := randomStats(rng, int(nRaw)+1)
		var final []uint32
		for a := range stats {
			final = append(final, a)
		}
		for _, n := range Characterize(final, stats) {
			if n.Dedicated != (n.CFD() >= DedicatedCFD) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
