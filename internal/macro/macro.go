// Package macro computes the paper's macroscopic view (§7): per-country and
// per-continent cellular demand statistics (Table 8), the country-level
// distribution of global cellular demand (Fig 11), and the demand-vs-
// cellular-fraction scatter (Fig 12), plus the subnet census rollups of
// Table 4.
//
// Demand from countries flagged ExcludeDemand (China) is tracked but left
// out of all fraction and share computations, as in the paper.
package macro

import (
	"sort"

	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
)

// CountryStats aggregates one country's measured footprint.
type CountryStats struct {
	Country *geo.Country

	TotalDU float64 // platform demand
	CellDU  float64 // demand of cellular-labeled blocks

	Active24, Active48 int // blocks observed in BEACON
	Cell24, Cell48     int // blocks labeled cellular
}

// CellFrac returns the fraction of the country's demand that is cellular.
func (c *CountryStats) CellFrac() float64 {
	if c.TotalDU == 0 {
		return 0
	}
	return c.CellDU / c.TotalDU
}

// ContinentStats aggregates a continent.
type ContinentStats struct {
	Continent geo.Continent

	TotalDU, CellDU    float64
	Active24, Active48 int
	Cell24, Cell48     int
	SubscribersM       float64 // ITU-style subscriptions of included countries
}

// CellFrac returns the continent's cellular demand fraction.
func (c *ContinentStats) CellFrac() float64 {
	if c.TotalDU == 0 {
		return 0
	}
	return c.CellDU / c.TotalDU
}

// DemandPerKSubscribers returns cellular demand units per thousand
// subscribers — Table 8's final column (cellular demand as a share of
// global demand divided by subscribers).
func (c *ContinentStats) DemandPerKSubscribers() float64 {
	if c.SubscribersM == 0 {
		return 0
	}
	return c.CellDU / (c.SubscribersM * 1000)
}

// Analysis is the full macroscopic rollup.
type Analysis struct {
	ByCountry   map[string]*CountryStats
	ByContinent map[geo.Continent]*ContinentStats

	// GlobalDU and GlobalCellDU exclude ExcludeDemand countries.
	GlobalDU, GlobalCellDU float64

	// ExcludedDU is the demand attributed to excluded countries.
	ExcludedDU float64
}

// Inputs bundles the measurement data for the macroscopic rollup.
type Inputs struct {
	Demand   *demand.Dataset
	Beacon   *beacon.Aggregate
	Detected netaddr.Set
	// ASOf maps a block to its AS (BGP-style); CountryOf maps an AS to
	// its registered country (whois-style).
	ASOf      func(netaddr.Block) (uint32, bool)
	CountryOf func(uint32) (string, bool)
	Countries *geo.DB

	// CellularASes, when non-nil, restricts cellular demand to detected
	// blocks inside identified cellular ASes — the paper's AS filtering
	// exists precisely to keep proxy/cloud false positives out of the
	// demand analysis. Nil counts every detected block.
	CellularASes map[uint32]bool
}

// Build computes the macroscopic analysis.
func Build(in Inputs) *Analysis {
	a := &Analysis{
		ByCountry:   make(map[string]*CountryStats),
		ByContinent: make(map[geo.Continent]*ContinentStats),
	}
	for _, ct := range geo.Continents() {
		a.ByContinent[ct] = &ContinentStats{Continent: ct}
	}
	for _, c := range in.Countries.All() {
		a.ByCountry[c.Code] = &CountryStats{Country: c}
		if !c.ExcludeDemand {
			a.ByContinent[c.Continent].SubscribersM += c.SubscribersM
		}
	}

	isCell := func(b netaddr.Block, asNum uint32) bool {
		if !in.Detected.Has(b) {
			return false
		}
		return in.CellularASes == nil || in.CellularASes[asNum]
	}
	if in.Demand != nil {
		in.Demand.Each(func(b netaddr.Block, du float64) {
			asNum, ok := in.ASOf(b)
			if !ok {
				return
			}
			c, ok := countryOfAS(in, asNum)
			if !ok {
				return
			}
			cs := a.ByCountry[c.Code]
			cs.TotalDU += du
			cell := isCell(b, asNum)
			if cell {
				cs.CellDU += du
			}
			if c.ExcludeDemand {
				a.ExcludedDU += du
				return
			}
			cont := a.ByContinent[c.Continent]
			cont.TotalDU += du
			a.GlobalDU += du
			if cell {
				cont.CellDU += du
				a.GlobalCellDU += du
			}
		})
	}
	if in.Beacon != nil {
		for b := range in.Beacon.PerBlock {
			asNum, ok := in.ASOf(b)
			if !ok {
				continue
			}
			c, ok := countryOfAS(in, asNum)
			if !ok {
				continue
			}
			cs, cont := a.ByCountry[c.Code], a.ByContinent[c.Continent]
			cell := isCell(b, asNum)
			if b.IsV6() {
				cs.Active48++
				cont.Active48++
				if cell {
					cs.Cell48++
					cont.Cell48++
				}
			} else {
				cs.Active24++
				cont.Active24++
				if cell {
					cs.Cell24++
					cont.Cell24++
				}
			}
		}
	}
	return a
}

// countryOfAS resolves an AS number to its country profile.
func countryOfAS(in Inputs, asNum uint32) (*geo.Country, bool) {
	cc, ok := in.CountryOf(asNum)
	if !ok {
		return nil, false
	}
	return in.Countries.Lookup(cc)
}

// CellShareOfGlobal returns the country's share of global cellular demand
// (Fig 11's y axis); 0 for excluded countries.
func (a *Analysis) CellShareOfGlobal(code string) float64 {
	cs := a.ByCountry[code]
	if cs == nil || cs.Country.ExcludeDemand || a.GlobalCellDU == 0 {
		return 0
	}
	return cs.CellDU / a.GlobalCellDU
}

// TopCountriesByCellDU returns up to n included countries of a continent
// ordered by descending cellular demand (Fig 11 panels). Pass a negative n
// for all.
func (a *Analysis) TopCountriesByCellDU(ct geo.Continent, n int) []*CountryStats {
	var out []*CountryStats
	for _, cs := range a.ByCountry {
		if cs.Country.Continent == ct && !cs.Country.ExcludeDemand {
			out = append(out, cs)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CellDU != out[j].CellDU {
			return out[i].CellDU > out[j].CellDU
		}
		return out[i].Country.Code < out[j].Country.Code
	})
	if n >= 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// ScatterPoint is one country's position in Fig 12: x the cellular demand
// ratio (CFD), y the normalized cellular demand (DU, log scale in the
// paper's plot).
type ScatterPoint struct {
	Code   string
	CFD    float64
	CellDU float64
}

// Scatter returns Fig 12's points for all included countries with demand.
func (a *Analysis) Scatter() []ScatterPoint {
	var out []ScatterPoint
	for code, cs := range a.ByCountry {
		if cs.Country.ExcludeDemand || cs.TotalDU == 0 {
			continue
		}
		out = append(out, ScatterPoint{Code: code, CFD: cs.CellFrac(), CellDU: cs.CellDU})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// GlobalCellFrac returns the headline number: the fraction of global demand
// that is cellular (paper: 16.2%).
func (a *Analysis) GlobalCellFrac() float64 {
	if a.GlobalDU == 0 {
		return 0
	}
	return a.GlobalCellDU / a.GlobalDU
}

// TopCountryShares returns the combined global-cellular-demand share of the
// top n countries (paper: top 5 = 55.7%, top 20 = 80%).
func (a *Analysis) TopCountryShares(n int) float64 {
	var shares []float64
	for code := range a.ByCountry {
		if s := a.CellShareOfGlobal(code); s > 0 {
			shares = append(shares, s)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(shares)))
	sum := 0.0
	for i := 0; i < n && i < len(shares); i++ {
		sum += shares[i]
	}
	return sum
}
