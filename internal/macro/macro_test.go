package macro

import (
	"math"
	"testing"

	"cellspot/internal/beacon"
	"cellspot/internal/demand"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
)

// fixture: two countries (US included, CN excluded) with one cellular and
// one fixed block each.
func fixture(t *testing.T) (Inputs, netaddr.Block, netaddr.Block) {
	t.Helper()
	db, err := geo.NewDB([]geo.Country{
		{Code: "US", Name: "United States", Continent: geo.NorthAmerica, SubscribersM: 400, DemandShare: 10},
		{Code: "CN", Name: "China", Continent: geo.Asia, SubscribersM: 1300, DemandShare: 5, ExcludeDemand: true},
		{Code: "JP", Name: "Japan", Continent: geo.Asia, SubscribersM: 160, DemandShare: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	usCell := netaddr.V4Block(10, 0, 0)
	usFixed := netaddr.V4Block(10, 0, 1)
	cnCell := netaddr.V4Block(20, 0, 0)
	jpCellV6 := netaddr.V6Block(0x200100000001)
	jpFixed := netaddr.V4Block(30, 0, 0)

	ds, err := demand.NewDataset(map[netaddr.Block]float64{
		usCell: 20, usFixed: 60, cnCell: 10, jpCellV6: 5, jpFixed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	agg := beacon.NewAggregate()
	for _, b := range []netaddr.Block{usCell, usFixed, cnCell, jpCellV6, jpFixed} {
		agg.Add(b, 100, 10, 0)
	}
	asOf := func(b netaddr.Block) (uint32, bool) {
		switch b {
		case usCell, usFixed:
			return 1, true
		case cnCell:
			return 2, true
		case jpCellV6, jpFixed:
			return 3, true
		}
		return 0, false
	}
	countryOf := func(a uint32) (string, bool) {
		switch a {
		case 1:
			return "US", true
		case 2:
			return "CN", true
		case 3:
			return "JP", true
		}
		return "", false
	}
	in := Inputs{
		Demand:    ds,
		Beacon:    agg,
		Detected:  netaddr.NewSet(usCell, cnCell, jpCellV6),
		ASOf:      asOf,
		CountryOf: countryOf,
		Countries: db,
	}
	return in, usCell, jpCellV6
}

func TestBuildGlobalFractions(t *testing.T) {
	in, _, _ := fixture(t)
	a := Build(in)
	// Included demand: US 80, JP 10 (of raw units; normalized to DU).
	// Included cellular: US 20, JP 5.
	if got := a.GlobalCellFrac(); math.Abs(got-25.0/90) > 1e-9 {
		t.Errorf("global cell frac = %g, want %g", got, 25.0/90)
	}
	// Excluded CN demand tracked separately.
	if a.ExcludedDU == 0 {
		t.Error("excluded demand not tracked")
	}
	total := a.GlobalDU + a.ExcludedDU
	if math.Abs(total-demand.TotalDU) > 1e-6 {
		t.Errorf("included+excluded = %g, want %g", total, demand.TotalDU)
	}
}

func TestBuildCountryAndContinent(t *testing.T) {
	in, _, _ := fixture(t)
	a := Build(in)
	us := a.ByCountry["US"]
	if math.Abs(us.CellFrac()-0.25) > 1e-9 {
		t.Errorf("US cell frac = %g, want 0.25", us.CellFrac())
	}
	if us.Active24 != 2 || us.Cell24 != 1 || us.Active48 != 0 {
		t.Errorf("US census = %+v", us)
	}
	jp := a.ByCountry["JP"]
	if jp.Cell48 != 1 || jp.Active48 != 1 || jp.Active24 != 1 {
		t.Errorf("JP census = %+v", jp)
	}
	asia := a.ByContinent[geo.Asia]
	// CN excluded from demand but still counted in the census.
	if asia.Active24 != 2 {
		t.Errorf("Asia active24 = %d, want 2 (CN census included)", asia.Active24)
	}
	if math.Abs(asia.CellFrac()-0.5) > 1e-9 {
		t.Errorf("Asia cell frac = %g, want 0.5 (JP only)", asia.CellFrac())
	}
	if asia.SubscribersM != 160 {
		t.Errorf("Asia subscribers = %g, want 160 (CN excluded)", asia.SubscribersM)
	}
	na := a.ByContinent[geo.NorthAmerica]
	if na.SubscribersM != 400 {
		t.Errorf("NA subscribers = %g", na.SubscribersM)
	}
	if na.DemandPerKSubscribers() <= 0 {
		t.Error("NA demand per subscriber not positive")
	}
	if (&ContinentStats{}).DemandPerKSubscribers() != 0 {
		t.Error("zero-subscriber division")
	}
	if (&CountryStats{Country: us.Country}).CellFrac() != 0 {
		t.Error("zero-demand country CellFrac")
	}
}

func TestCellShareOfGlobal(t *testing.T) {
	in, _, _ := fixture(t)
	a := Build(in)
	if got := a.CellShareOfGlobal("US"); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("US share = %g, want 0.8", got)
	}
	if got := a.CellShareOfGlobal("CN"); got != 0 {
		t.Errorf("excluded CN share = %g", got)
	}
	if got := a.CellShareOfGlobal("ZZ"); got != 0 {
		t.Errorf("unknown country share = %g", got)
	}
}

func TestTopCountries(t *testing.T) {
	in, _, _ := fixture(t)
	a := Build(in)
	top := a.TopCountriesByCellDU(geo.Asia, 10)
	if len(top) != 1 || top[0].Country.Code != "JP" {
		t.Errorf("Asia top = %v (CN must be excluded)", top)
	}
	all := a.TopCountriesByCellDU(geo.NorthAmerica, -1)
	if len(all) != 1 || all[0].Country.Code != "US" {
		t.Errorf("NA top = %v", all)
	}
	if got := a.TopCountryShares(1); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("top-1 share = %g", got)
	}
	if got := a.TopCountryShares(10); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("top-10 share = %g, want 1", got)
	}
}

func TestScatter(t *testing.T) {
	in, _, _ := fixture(t)
	a := Build(in)
	pts := a.Scatter()
	if len(pts) != 2 {
		t.Fatalf("scatter = %v", pts)
	}
	for _, p := range pts {
		if p.Code == "CN" {
			t.Error("excluded country in scatter")
		}
		if p.CFD < 0 || p.CFD > 1 || p.CellDU <= 0 {
			t.Errorf("bad point %+v", p)
		}
	}
	// Sorted by code.
	if pts[0].Code > pts[1].Code {
		t.Error("scatter not sorted")
	}
}

func TestBuildSkipsUnmapped(t *testing.T) {
	in, _, _ := fixture(t)
	in.ASOf = func(netaddr.Block) (uint32, bool) { return 0, false }
	a := Build(in)
	if a.GlobalDU != 0 {
		t.Error("unmapped blocks contributed demand")
	}
	in2, _, _ := fixture(t)
	in2.CountryOf = func(uint32) (string, bool) { return "XX", true } // not in DB
	a2 := Build(in2)
	if a2.GlobalDU != 0 {
		t.Error("unknown countries contributed demand")
	}
}

func TestBuildNilDatasets(t *testing.T) {
	in, _, _ := fixture(t)
	in.Demand = nil
	in.Beacon = nil
	a := Build(in)
	if a.GlobalDU != 0 || a.ByCountry["US"].Active24 != 0 {
		t.Error("nil datasets produced data")
	}
}
