// Package demand implements the DEMAND dataset: platform-wide request
// statistics aggregated per /24 and /48 block over a seven-day window,
// smoothed, and normalized into unit-less Demand Units (DU) where 1,000 DU
// equal 1% of global request demand (total 100,000 — the paper normalizes
// "out of 100,000 to increase precision").
package demand

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"cellspot/internal/netaddr"
	"cellspot/internal/par"
	"cellspot/internal/traffic"
	"cellspot/internal/world"
)

// TotalDU is the platform-wide Demand Unit total after normalization.
const TotalDU = 100000.0

// Dataset is the normalized per-block demand rollup.
type Dataset struct {
	du    map[netaddr.Block]float64
	keys  []netaddr.Block // canonical iteration order
	total float64
}

// NewDataset builds a normalized dataset from raw per-block weights.
// Weights may be any non-negative values; they are scaled to sum to TotalDU.
func NewDataset(raw map[netaddr.Block]float64) (*Dataset, error) {
	// Sum and scale in canonical block order: float addition is not
	// associative, and map iteration order would otherwise make two runs
	// of the same world differ in their last bits.
	keys := make([]netaddr.Block, 0, len(raw))
	for b, v := range raw {
		if v < 0 {
			return nil, fmt.Errorf("demand: negative demand for %v", b)
		}
		keys = append(keys, b)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Fam != keys[j].Fam {
			return keys[i].Fam < keys[j].Fam
		}
		return keys[i].Key < keys[j].Key
	})
	sum := 0.0
	for _, b := range keys {
		sum += raw[b]
	}
	d := &Dataset{du: make(map[netaddr.Block]float64, len(raw))}
	if sum == 0 {
		return d, nil
	}
	f := TotalDU / sum
	for _, b := range keys {
		if v := raw[b]; v > 0 {
			d.du[b] = v * f
			d.keys = append(d.keys, b)
			d.total += v * f
		}
	}
	return d, nil
}

// DU returns the block's demand units (0 when unobserved).
func (d *Dataset) DU(b netaddr.Block) float64 { return d.du[b] }

// Total returns the dataset's DU total (TotalDU, modulo floating point,
// unless the dataset is empty).
func (d *Dataset) Total() float64 { return d.total }

// Blocks returns the number of blocks with demand.
func (d *Dataset) Blocks() int { return len(d.du) }

// CountFamily returns the number of demand-carrying blocks of a family.
func (d *Dataset) CountFamily(f netaddr.Family) int {
	n := 0
	for b := range d.du {
		if b.Fam == f {
			n++
		}
	}
	return n
}

// Each iterates over all (block, DU) pairs in canonical block order, so
// downstream floating-point accumulations are reproducible run to run.
func (d *Dataset) Each(fn func(netaddr.Block, float64)) {
	for _, b := range d.keys {
		fn(b, d.du[b])
	}
}

// Equal reports whether two datasets hold bit-identical DU values for the
// same block set.
func (d *Dataset) Equal(other *Dataset) bool {
	if len(d.du) != len(other.du) {
		return false
	}
	for b, v := range d.du {
		ov, ok := other.du[b]
		if !ok || v != ov {
			return false
		}
	}
	return true
}

// Top returns the n highest-demand blocks in descending DU order.
func (d *Dataset) Top(n int) []BlockDU {
	all := make([]BlockDU, 0, len(d.du))
	for b, v := range d.du {
		all = append(all, BlockDU{Block: b, DU: v})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].DU != all[j].DU {
			return all[i].DU > all[j].DU
		}
		return all[i].Block.Key < all[j].Block.Key
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// BlockDU pairs a block with its demand units.
type BlockDU struct {
	Block netaddr.Block `json:"block"`
	DU    float64       `json:"du"`
}

// GenConfig parameterizes DEMAND generation.
type GenConfig struct {
	Seed   uint64
	Days   int     // collection window (paper: 7, Dec 24–31 2016)
	Jitter float64 // per-day log-normal demand jitter

	// Parallelism is the worker count for sharded jitter sampling:
	// 0 = GOMAXPROCS, 1 = the serial oracle path. Outputs are
	// bit-identical at every setting — demand-carrying blocks split into
	// fixed-size contiguous shards, each on its own seed-derived PCG
	// stream, merged in shard order.
	Parallelism int
}

// DefaultGenConfig mirrors the paper's one-week window.
func DefaultGenConfig() GenConfig {
	return GenConfig{Seed: 3, Days: 7, Jitter: 0.15}
}

// Daily holds raw per-day, per-block request weights before smoothing.
type Daily struct {
	Days []map[netaddr.Block]float64
}

// Per-stage stream constants: dayStream drives the shared day factors,
// jitterStream^shardIndex drives each shard's per-block noise.
const (
	dayStream    = 0xdeaa_0001
	jitterStream = 0xdeaa_0100
)

// genShardSize is the number of demand-carrying blocks per jitter shard.
// Boundaries depend only on the block list, never on the worker count.
const genShardSize = 4096

// GenerateDaily draws each day's raw per-block demand from the world:
// block demand scaled by a shared day factor (weekends swell) and per-block
// daily noise. Jitter sampling shards across cfg.Parallelism workers
// (0 = GOMAXPROCS, 1 = serial) with one PCG stream per fixed-size shard;
// shard outputs merge in shard order, so the result is bit-identical at
// every parallelism level.
func GenerateDaily(w *world.World, cfg GenConfig) (*Daily, error) {
	if cfg.Days <= 0 {
		return nil, fmt.Errorf("demand: Days must be positive")
	}
	if cfg.Jitter < 0 {
		return nil, fmt.Errorf("demand: negative Jitter")
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, dayStream))
	dayFactors := traffic.DailyFactors(rng, cfg.Days, 0.05)

	blocks := make([]*world.BlockInfo, 0, len(w.Blocks))
	for _, b := range w.Blocks {
		if b.Demand > 0 {
			blocks = append(blocks, b)
		}
	}
	// Each shard emits its span's values block-major, day-minor.
	nShards := par.Shards(len(blocks), genShardSize)
	vals := make([][]float64, nShards)
	par.Do(nShards, cfg.Parallelism, func(s int) {
		rng := rand.New(rand.NewPCG(cfg.Seed, jitterStream^uint64(s)))
		lo, hi := par.Span(s, len(blocks), genShardSize)
		buf := make([]float64, 0, (hi-lo)*cfg.Days)
		for _, b := range blocks[lo:hi] {
			for d := 0; d < cfg.Days; d++ {
				v := b.Demand * dayFactors[d]
				if cfg.Jitter > 0 {
					v *= traffic.LogNormal(rng, 0, cfg.Jitter)
				}
				buf = append(buf, v)
			}
		}
		vals[s] = buf
	})

	out := &Daily{Days: make([]map[netaddr.Block]float64, cfg.Days)}
	for d := range out.Days {
		out.Days[d] = make(map[netaddr.Block]float64, len(blocks))
	}
	for s := 0; s < nShards; s++ {
		lo, hi := par.Span(s, len(blocks), genShardSize)
		for i, b := range blocks[lo:hi] {
			for d := 0; d < cfg.Days; d++ {
				out.Days[d][b.Block] = vals[s][i*cfg.Days+d]
			}
		}
	}
	return out, nil
}

// Smooth combines the daily aggregates into the normalized dataset the
// paper analyzes: per-block mean across the window, scaled to TotalDU.
func (dl *Daily) Smooth() (*Dataset, error) {
	raw := make(map[netaddr.Block]float64)
	for _, day := range dl.Days {
		for b, v := range day {
			raw[b] += v
		}
	}
	n := float64(len(dl.Days))
	for b := range raw {
		raw[b] /= n
	}
	return NewDataset(raw)
}

// Day normalizes a single day's aggregate — the no-smoothing ablation.
func (dl *Daily) Day(i int) (*Dataset, error) {
	if i < 0 || i >= len(dl.Days) {
		return nil, fmt.Errorf("demand: day %d out of range [0,%d)", i, len(dl.Days))
	}
	return NewDataset(dl.Days[i])
}

// Generate is the common path: daily generation followed by smoothing.
func Generate(w *world.World, cfg GenConfig) (*Dataset, error) {
	daily, err := GenerateDaily(w, cfg)
	if err != nil {
		return nil, err
	}
	return daily.Smooth()
}
