package demand

import (
	"math"
	"testing"
	"testing/quick"

	"cellspot/internal/netaddr"
	"cellspot/internal/world"
)

var cachedWorld *world.World

func smallWorld(t testing.TB) *world.World {
	t.Helper()
	if cachedWorld == nil {
		cfg := world.DefaultConfig()
		cfg.Scale = 0.002
		w, err := world.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cachedWorld = w
	}
	return cachedWorld
}

func TestNewDatasetNormalization(t *testing.T) {
	raw := map[netaddr.Block]float64{
		netaddr.V4Block(1, 0, 0): 3,
		netaddr.V4Block(1, 0, 1): 1,
		netaddr.V4Block(1, 0, 2): 0, // dropped
	}
	d, err := NewDataset(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Total()-TotalDU) > 1e-6 {
		t.Errorf("total = %g", d.Total())
	}
	if got := d.DU(netaddr.V4Block(1, 0, 0)); math.Abs(got-75000) > 1e-6 {
		t.Errorf("DU = %g, want 75000", got)
	}
	if d.Blocks() != 2 {
		t.Errorf("blocks = %d, want 2 (zero dropped)", d.Blocks())
	}
	if d.DU(netaddr.V4Block(9, 9, 9)) != 0 {
		t.Error("unseen block has demand")
	}
}

func TestNewDatasetErrors(t *testing.T) {
	if _, err := NewDataset(map[netaddr.Block]float64{netaddr.V4Block(1, 0, 0): -1}); err == nil {
		t.Error("negative demand accepted")
	}
	d, err := NewDataset(nil)
	if err != nil || d.Total() != 0 || d.Blocks() != 0 {
		t.Error("empty dataset mishandled")
	}
}

func TestTop(t *testing.T) {
	d, _ := NewDataset(map[netaddr.Block]float64{
		netaddr.V4Block(1, 0, 0): 1,
		netaddr.V4Block(1, 0, 1): 5,
		netaddr.V4Block(1, 0, 2): 3,
	})
	top := d.Top(2)
	if len(top) != 2 || top[0].Block != netaddr.V4Block(1, 0, 1) || top[1].Block != netaddr.V4Block(1, 0, 2) {
		t.Errorf("Top = %v", top)
	}
	if len(d.Top(99)) != 3 {
		t.Error("Top(n>len) truncated")
	}
}

func TestGenerateDailyAndSmooth(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultGenConfig()
	daily, err := GenerateDaily(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(daily.Days) != 7 {
		t.Fatalf("days = %d", len(daily.Days))
	}
	ds, err := daily.Smooth()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ds.Total()-TotalDU) > 1e-6 {
		t.Errorf("smoothed total = %g", ds.Total())
	}
	// Every demand-carrying world block appears; beacon-less blocks too
	// (DEMAND covers all protocols, unlike BEACON).
	for _, b := range w.Blocks {
		if b.Demand > 0 && ds.DU(b.Block) == 0 {
			t.Fatalf("block %v lost its demand", b.Block)
		}
		if b.Demand == 0 && ds.DU(b.Block) != 0 {
			t.Fatalf("idle block %v gained demand", b.Block)
		}
	}
	// Smoothing preserves demand ordering approximately: the single
	// biggest world block should stay the biggest in DU.
	var maxBlock netaddr.Block
	maxDemand := -1.0
	for _, b := range w.Blocks {
		if b.Demand > maxDemand {
			maxDemand, maxBlock = b.Demand, b.Block
		}
	}
	if top := ds.Top(25); top[0].Block != maxBlock {
		found := false
		for _, t25 := range top {
			if t25.Block == maxBlock {
				found = true
				break
			}
		}
		if !found {
			t.Error("biggest ground-truth block not among top 25 DU blocks")
		}
	}
}

func TestGenerateDayVsSmoothChurn(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultGenConfig()
	daily, err := GenerateDaily(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	day0, err := daily.Day(0)
	if err != nil {
		t.Fatal(err)
	}
	smooth, err := daily.Smooth()
	if err != nil {
		t.Fatal(err)
	}
	// A single day is noisier than the smoothed window: mean absolute
	// relative deviation of day-0 DU from smoothed DU must be positive
	// but bounded.
	var sumDev float64
	n := 0
	smooth.Each(func(b netaddr.Block, du float64) {
		if du < 0.001 {
			return
		}
		sumDev += math.Abs(day0.DU(b)-du) / du
		n++
	})
	if n == 0 {
		t.Fatal("no blocks compared")
	}
	mean := sumDev / float64(n)
	if mean <= 0.001 {
		t.Errorf("day-0 deviation %.5f suspiciously low; jitter not applied?", mean)
	}
	if mean > 0.6 {
		t.Errorf("day-0 deviation %.3f too high", mean)
	}
	if _, err := daily.Day(7); err == nil {
		t.Error("out-of-range day accepted")
	}
	if _, err := daily.Day(-1); err == nil {
		t.Error("negative day accepted")
	}
}

func TestGenerateErrors(t *testing.T) {
	w := smallWorld(t)
	if _, err := GenerateDaily(w, GenConfig{Days: 0}); err == nil {
		t.Error("zero days accepted")
	}
	if _, err := GenerateDaily(w, GenConfig{Days: 7, Jitter: -0.1}); err == nil {
		t.Error("negative jitter accepted")
	}
}

func TestGenerateDeterminism(t *testing.T) {
	w := smallWorld(t)
	cfg := DefaultGenConfig()
	d1, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Blocks() != d2.Blocks() {
		t.Fatal("block counts differ")
	}
	diff := false
	d1.Each(func(b netaddr.Block, v float64) {
		if d2.DU(b) != v {
			diff = true
		}
	})
	if diff {
		t.Error("same seed produced different DU")
	}
}

// Property: normalization always lands on TotalDU for any non-negative raw
// weights with positive sum.
func TestNormalizationProperty(t *testing.T) {
	f := func(vals []float64) bool {
		raw := make(map[netaddr.Block]float64)
		any := false
		for i, v := range vals {
			v = math.Abs(v)
			if math.IsInf(v, 0) || math.IsNaN(v) || v > 1e100 {
				continue
			}
			raw[netaddr.Block{Fam: netaddr.IPv4, Key: uint64(i)}] = v
			if v > 0 {
				any = true
			}
		}
		d, err := NewDataset(raw)
		if err != nil {
			return false
		}
		if !any {
			return d.Total() == 0
		}
		return math.Abs(d.Total()-TotalDU) < 1e-4
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkGenerate(b *testing.B) {
	w := smallWorld(b)
	cfg := DefaultGenConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(w, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
