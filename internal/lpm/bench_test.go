package lpm

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"testing"

	"cellspot/internal/netaddr"
)

// benchSet builds a serving-shaped prefix set: mostly v4 /24s and v6
// /48s (the map's unit blocks) plus a sprinkling of coarser aggregates,
// all from a seeded PCG so runs are comparable.
func benchSet(n int) ([]netip.Prefix, []netip.Addr) {
	rng := rand.New(rand.NewPCG(2016, 12))
	seen := map[netip.Prefix]bool{}
	var prefixes []netip.Prefix
	for len(prefixes) < n {
		var p netip.Prefix
		switch rng.IntN(10) {
		case 0: // coarse v4 aggregate
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), 0, 0}), 12+rng.IntN(9))
		case 1, 2: // v6 /48
			var a [16]byte
			a[0], a[1] = 0x20, 0x01
			for i := 2; i < 6; i++ {
				a[i] = byte(rng.Uint32())
			}
			p = netip.PrefixFrom(netip.AddrFrom16(a), 48)
		default: // v4 /24
			p = netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), 0}), 24)
		}
		p = p.Masked()
		if seen[p] {
			continue
		}
		seen[p] = true
		prefixes = append(prefixes, p)
	}
	// Probe mix: ~3/4 inside stored space, 1/4 random (mostly misses).
	probes := make([]netip.Addr, 4096)
	for i := range probes {
		if i%4 == 0 {
			probes[i] = netip.AddrFrom4([4]byte{byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32()), byte(rng.Uint32())})
			continue
		}
		probes[i] = probeFor(rng, prefixes)
	}
	return prefixes, probes
}

// BenchmarkLPMLookup is the headline single-node number: longest-prefix
// matches per second against the flat matcher, over set sizes spanning
// toy to paper scale. Compare BenchmarkTrieLookup for the structure it
// replaced. CI runs the 100k size; BENCH_lookup.json records the rest.
func BenchmarkLPMLookup(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prefixes, probes := benchSet(n)
			entries := make([]Entry, len(prefixes))
			for i, p := range prefixes {
				entries[i] = Entry{Prefix: p, Value: int32(i)}
			}
			m, err := Build(entries)
			if err != nil {
				b.Fatal(err)
			}
			st := m.Stats()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				m.Lookup(probes[i&(len(probes)-1)])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
			b.ReportMetric(float64(st.Bytes)/float64(n), "bytes/prefix")
		})
	}
}

// BenchmarkTrieLookup measures the pointer-chasing radix trie the flat
// matcher replaced, on the same set and probe stream.
func BenchmarkTrieLookup(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			prefixes, probes := benchSet(n)
			var trie netaddr.Trie[int32]
			for i, p := range prefixes {
				if err := trie.Insert(p, int32(i)); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				trie.Lookup(probes[i&(len(probes)-1)])
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "lookups/s")
		})
	}
}

// BenchmarkLPMBuild prices the build-once cost a hot swap pays.
func BenchmarkLPMBuild(b *testing.B) {
	prefixes, _ := benchSet(100_000)
	entries := make([]Entry, len(prefixes))
	for i, p := range prefixes {
		entries[i] = Entry{Prefix: p, Value: int32(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(entries); err != nil {
			b.Fatal(err)
		}
	}
}
