// Package lpm is the zero-allocation longest-prefix-match core of the
// serving path: an immutable, level-compressed trie laid out in contiguous
// uint32 arrays, built once from a prefix set and read-only thereafter.
//
// IPv4 and IPv6 prefixes share one 128-bit keyspace — IPv4 lives in the
// IPv4-mapped-IPv6 block (::ffff:0:0/96), exactly like netaddr.Trie, whose
// MappedPrefix helper defines the mapping for both structures. Unlike the
// pointer-per-bit radix trie, a lookup here never follows a pointer and
// never allocates: it walks node descriptors in one flat slice (path
// compression skips shared bit runs, level compression consumes several
// bits per step), lands on a base prefix, and resolves nesting by
// comparing the probe against that prefix's stored bits plus a chain of
// its stored ancestors. The layout is the LC-trie of Nilsson & Karlsson
// ("IP-address lookup using LC-tries", IEEE JSAC 1999) with the prefix
// vector realized as per-leaf ancestor chains.
//
// Build cost is O(n log n); the result is safe for unlimited concurrent
// readers because nothing mutates after Build returns.
package lpm

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"net/netip"
	"sort"

	"cellspot/internal/netaddr"
)

// Entry is one prefix→value pair of the set a Matcher is built from.
// Values are small integers by design: the serving map stores entry
// indices, keeping the matcher itself free of wide payloads.
type Entry struct {
	Prefix netip.Prefix
	Value  int32
}

// maxBranch caps level compression at 2^maxBranch children per node. 12
// bits = 4096-slot nodes; beyond that the fill-factor-1.0 rule almost
// never fires and the descriptor encoding would need wider fields.
const maxBranch = 12

// node descriptor layout: each node is two consecutive uint32 words in
// Matcher.nodes. Word 0 packs branch (bits 8..15, 0 means leaf) and skip
// (bits 0..7, path-compressed bits consumed before branching). Word 1 is
// the index of the first child node for internal nodes (children are
// contiguous: child j lives at index ptr+j) or the base-vector index for
// leaves.
const (
	branchShift = 8
	skipMask    = 0xff
)

// baseEntry is one maximal stored prefix (not a proper prefix of any
// other). A lookup always terminates on exactly one base entry; nesting
// resolves through chain, the index of the entry's nearest stored
// ancestor in the chain vector (-1 when none).
type baseEntry struct {
	hi, lo uint64 // prefix bits in the unified space, big-endian halves
	val    int32
	chain  int32
	plen   uint8 // prefix length in the unified space (0..128)
}

// chainEntry is one stored ancestor on a base entry's nesting chain.
// Ancestor bits need not be stored: an ancestor is by definition a prefix
// of the base entry it chains from, so containment checks reuse the base
// entry's bits.
type chainEntry struct {
	val  int32
	next int32
	plen uint8
}

// Matcher is the immutable flat matcher. The zero value and nil both
// behave as an empty set (every lookup misses).
type Matcher struct {
	nodes []uint32
	base  []baseEntry
	chain []chainEntry
	n     int // stored prefixes
}

// buildKey is one entry in the unified space during Build.
type buildKey struct {
	hi, lo uint64
	plen   uint8
	val    int32
}

// contains reports whether a's prefix covers b's address bits.
func (a buildKey) contains(b buildKey) bool {
	if a.plen > b.plen {
		return false
	}
	return firstDiff128(a.hi^b.hi, a.lo^b.lo) >= int(a.plen)
}

// firstDiff128 returns the position of the most significant set bit of
// the 128-bit value hi,lo — i.e. the first differing bit position of two
// XORed keys — or 128 when the value is zero.
func firstDiff128(hi, lo uint64) int {
	if hi != 0 {
		return bits.LeadingZeros64(hi)
	}
	if lo != 0 {
		return 64 + bits.LeadingZeros64(lo)
	}
	return 128
}

// Build constructs a Matcher from entries. Prefixes are canonicalized
// (Masked) into the unified space; duplicate prefixes are an error, since
// silently letting one value shadow another is exactly the corruption a
// serving index must refuse. The input slice is not retained.
func Build(entries []Entry) (*Matcher, error) {
	keys := make([]buildKey, 0, len(entries))
	for _, e := range entries {
		a, depth, err := netaddr.MappedPrefix(e.Prefix.Masked())
		if err != nil {
			return nil, fmt.Errorf("lpm: %s: %w", e.Prefix, err)
		}
		keys = append(keys, buildKey{
			hi:   binary.BigEndian.Uint64(a[0:8]),
			lo:   binary.BigEndian.Uint64(a[8:16]),
			plen: uint8(depth),
			val:  e.Value,
		})
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.hi != b.hi {
			return a.hi < b.hi
		}
		if a.lo != b.lo {
			return a.lo < b.lo
		}
		return a.plen < b.plen
	})
	for i := 1; i < len(keys); i++ {
		if keys[i].hi == keys[i-1].hi && keys[i].lo == keys[i-1].lo && keys[i].plen == keys[i-1].plen {
			return nil, fmt.Errorf("lpm: duplicate prefix (mapped %016x%016x/%d)",
				keys[i].hi, keys[i].lo, keys[i].plen)
		}
	}
	m := &Matcher{n: len(keys)}
	if len(keys) == 0 {
		return m, nil
	}

	// Ancestor resolution: in sorted order a prefix's descendants follow it
	// contiguously, so a stack of the current nesting path finds every
	// parent in one pass.
	parent := make([]int32, len(keys))
	internal := make([]bool, len(keys))
	stack := make([]int32, 0, 8)
	for i := range keys {
		for len(stack) > 0 && !keys[stack[len(stack)-1]].contains(keys[i]) {
			stack = stack[:len(stack)-1]
		}
		parent[i] = -1
		if len(stack) > 0 {
			p := stack[len(stack)-1]
			parent[i] = p
			internal[p] = true
		}
		stack = append(stack, int32(i))
	}

	// Chain vector: one entry per internal prefix, linked to its own
	// parent's chain entry. Parents precede children in sorted order, so
	// one forward pass resolves every link.
	chainIdx := make([]int32, len(keys))
	for i := range keys {
		chainIdx[i] = -1
		if !internal[i] {
			continue
		}
		next := int32(-1)
		if p := parent[i]; p >= 0 {
			next = chainIdx[p]
		}
		chainIdx[i] = int32(len(m.chain))
		m.chain = append(m.chain, chainEntry{val: keys[i].val, next: next, plen: keys[i].plen})
	}

	// Base vector: the maximal prefixes, in address order (they are
	// pairwise disjoint, so address order is also interval order).
	for i, k := range keys {
		if internal[i] {
			continue
		}
		chain := int32(-1)
		if p := parent[i]; p >= 0 {
			chain = chainIdx[p]
		}
		m.base = append(m.base, baseEntry{hi: k.hi, lo: k.lo, val: k.val, chain: chain, plen: k.plen})
	}

	// Trie over the base vector. Root is node 0; children blocks are
	// reserved before recursing so every node's children stay contiguous.
	m.nodes = make([]uint32, 2)
	m.buildAt(0, 0, len(m.base), 0)
	return m, nil
}

// buildAt fills the pre-reserved node at index node with the subtree over
// base[lo:hi], whose members all share their first depth bits.
func (m *Matcher) buildAt(node uint32, lo, hi, depth int) {
	if hi-lo == 1 {
		m.nodes[2*node] = 0
		m.nodes[2*node+1] = uint32(lo)
		return
	}
	first, last := m.base[lo], m.base[hi-1]
	// The range is sorted, so the extremes bound the shared prefix of all
	// members: they agree exactly on bits [0, common).
	common := firstDiff128(first.hi^last.hi, first.lo^last.lo)
	skip := common - depth

	// Level compression, fill factor 1.0: branch on the widest bit window
	// after common such that every slot is populated and no member's
	// prefix ends inside the window (members are disjoint, so a member
	// shorter than common+branch would cover several slots and need
	// duplication — we cap the window instead and let recursion finish).
	minPlen := 128
	for i := lo; i < hi; i++ {
		if p := int(m.base[i].plen); p < minPlen {
			minPlen = p
		}
	}
	branch := 1
	for branch+1 <= maxBranch && common+branch+1 <= minPlen && slotsFull(m.base[lo:hi], common, branch+1) {
		branch++
	}

	m.nodes[2*node] = uint32(branch)<<branchShift | uint32(skip)
	childBase := uint32(len(m.nodes) / 2)
	m.nodes[2*node+1] = childBase
	m.nodes = append(m.nodes, make([]uint32, 2<<branch)...)

	s := lo
	for slot := 0; slot < 1<<branch; slot++ {
		e := s
		for e < hi && extract128(m.base[e].hi, m.base[e].lo, common, branch) == slot {
			e++
		}
		m.buildAt(childBase+uint32(slot), s, e, common+branch)
		s = e
	}
}

// slotsFull reports whether every width-bit pattern at bit offset pos
// occurs in the (sorted) members — the fill-factor-1.0 gate for level
// compression.
func slotsFull(members []baseEntry, pos, width int) bool {
	distinct, prev := 0, -1
	for i := range members {
		s := extract128(members[i].hi, members[i].lo, pos, width)
		if s != prev {
			distinct++
			prev = s
		}
	}
	return distinct == 1<<width
}

// extract128 returns bits [pos, pos+width) of the 128-bit value hi,lo as
// an int. Requires pos+width <= 128 and width <= 32.
func extract128(hi, lo uint64, pos, width int) int {
	switch {
	case pos+width <= 64:
		return int(hi >> (64 - pos - width) & (1<<width - 1))
	case pos >= 64:
		return int(lo >> (128 - pos - width) & (1<<width - 1))
	default:
		left := 64 - pos  // bits taken from the tail of hi
		right := width - left // bits taken from the head of lo
		return int((hi&((1<<left)-1))<<right | lo>>(64-right))
	}
}

// Lookup returns the value of the longest stored prefix containing addr.
// It performs no allocations and touches only the matcher's flat arrays.
func (m *Matcher) Lookup(addr netip.Addr) (int32, bool) {
	if m == nil || len(m.base) == 0 {
		return 0, false
	}
	a := addr.As16()
	return m.lookup(binary.BigEndian.Uint64(a[0:8]), binary.BigEndian.Uint64(a[8:16]))
}

// lookup resolves the 128-bit key hi,lo in the unified space.
func (m *Matcher) lookup(hi, lo uint64) (int32, bool) {
	nodes := m.nodes
	node, depth := uint32(0), 0
	for {
		w := nodes[2*node]
		branch := int(w >> branchShift)
		if branch == 0 {
			return m.matchBase(nodes[2*node+1], hi, lo)
		}
		depth += int(w & skipMask)
		node = nodes[2*node+1] + uint32(extract128(hi, lo, depth, branch))
		depth += branch
	}
}

// matchBase resolves the probe against base entry bi: the descent skipped
// bits blindly, so the probe may diverge from the base prefix anywhere.
// One XOR pair locates the first divergence; the base entry matches when
// its whole prefix precedes it, and otherwise the answer is the longest
// stored ancestor short enough to precede it — every stored prefix
// containing the probe is provably on this chain.
func (m *Matcher) matchBase(bi uint32, hi, lo uint64) (int32, bool) {
	b := &m.base[bi]
	d := firstDiff128(hi^b.hi, lo^b.lo)
	if int(b.plen) <= d {
		return b.val, true
	}
	for ci := b.chain; ci >= 0; ci = m.chain[ci].next {
		if int(m.chain[ci].plen) <= d {
			return m.chain[ci].val, true
		}
	}
	return 0, false
}

// Len returns the number of stored prefixes.
func (m *Matcher) Len() int {
	if m == nil {
		return 0
	}
	return m.n
}

// Stats describes the built structure, for benchmarks and capacity math.
type Stats struct {
	Prefixes int // stored prefixes
	Base     int // maximal prefixes (trie leaves)
	Chain    int // nested-ancestor chain entries
	Nodes    int // trie nodes (leaves + internal, incl. reserved slots)
	Bytes    int // total size of the flat arrays
}

// Stats reports the matcher's layout.
func (m *Matcher) Stats() Stats {
	if m == nil {
		return Stats{}
	}
	return Stats{
		Prefixes: m.n,
		Base:     len(m.base),
		Chain:    len(m.chain),
		Nodes:    len(m.nodes) / 2,
		Bytes:    len(m.nodes)*4 + len(m.base)*24 + len(m.chain)*12,
	}
}
