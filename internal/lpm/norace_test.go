//go:build !race

package lpm

// raceEnabled lets allocation-counting tests skip under -race, where the
// runtime's instrumentation makes AllocsPerRun meaningless.
const raceEnabled = false
