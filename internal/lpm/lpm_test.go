package lpm

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"testing"

	"cellspot/internal/netaddr"
)

// --- construction helpers shared by the differential and fuzz harnesses ---

// oracle pairs a Matcher with the pointer-chasing netaddr.Trie it must
// agree with, built from the same deduplicated prefix set.
type oracle struct {
	m    *Matcher
	trie netaddr.Trie[int32]
}

// buildPair inserts prefixes into both structures. Duplicate masked
// prefixes are deduplicated first (last value wins) because the trie
// overwrites where Build refuses.
func buildPair(t testing.TB, prefixes []netip.Prefix) *oracle {
	t.Helper()
	type slot struct {
		p   netip.Prefix
		val int32
	}
	seen := map[netip.Prefix]int{}
	var uniq []slot
	for i, p := range prefixes {
		mp := canonical(p)
		if j, ok := seen[mp]; ok {
			uniq[j].val = int32(i)
			continue
		}
		seen[mp] = len(uniq)
		uniq = append(uniq, slot{p: mp, val: int32(i)})
	}
	o := &oracle{}
	entries := make([]Entry, 0, len(uniq))
	for _, s := range uniq {
		entries = append(entries, Entry{Prefix: s.p, Value: s.val})
		if err := o.trie.Insert(s.p, s.val); err != nil {
			t.Fatalf("oracle insert %s: %v", s.p, err)
		}
	}
	m, err := Build(entries)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	o.m = m
	return o
}

// canonical masks p and collapses the v4/v4-in-6 aliasing the same way
// both structures do, so deduplication sees what they see.
func canonical(p netip.Prefix) netip.Prefix {
	return p.Masked()
}

// check compares one probe across both structures.
func (o *oracle) check(t testing.TB, addr netip.Addr) {
	t.Helper()
	want, wok := o.trie.Lookup(addr)
	got, gok := o.m.Lookup(addr)
	if wok != gok || (wok && want != got) {
		t.Fatalf("divergence at %s: trie=(%d,%v) lpm=(%d,%v)", addr, want, wok, got, gok)
	}
}

// --- random set generators (seeded PCG, deterministic per case) ---

func randV4Prefix(rng *rand.Rand) netip.Prefix {
	var b [4]byte
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return netip.PrefixFrom(netip.AddrFrom4(b), rng.IntN(33))
}

func randV6Prefix(rng *rand.Rand) netip.Prefix {
	var b [16]byte
	for i := range b {
		b[i] = byte(rng.Uint32())
	}
	return netip.PrefixFrom(netip.AddrFrom16(b), rng.IntN(129))
}

// nestedChain emits a run of prefixes each extending the previous one by a
// few bits, the deep-nesting shape that exercises the ancestor chains.
func nestedChain(rng *rand.Rand, v6 bool) []netip.Prefix {
	var (
		out  []netip.Prefix
		base netip.Prefix
		max  int
	)
	if v6 {
		base, max = randV6Prefix(rng), 128
	} else {
		base, max = randV4Prefix(rng), 32
	}
	bits := base.Bits() % (max / 2) // start shallow so the chain has room
	addr := base.Addr()
	for bits <= max {
		out = append(out, netip.PrefixFrom(addr, bits))
		bits += 1 + rng.IntN(4)
	}
	return out
}

// probeFor derives a probe address correlated with the stored set: inside
// a prefix, just outside it (flip the last prefix bit), adjacent sibling,
// or fully random — misses must agree too.
func probeFor(rng *rand.Rand, prefixes []netip.Prefix) netip.Addr {
	if len(prefixes) == 0 || rng.IntN(8) == 0 {
		if rng.IntN(2) == 0 {
			return randV4Prefix(rng).Addr()
		}
		return randV6Prefix(rng).Addr()
	}
	p := prefixes[rng.IntN(len(prefixes))]
	a16 := p.Addr().As16()
	bits := p.Bits()
	if p.Addr().Is4() {
		bits += 96
	}
	// Randomize host bits.
	for i := bits; i < 128; i++ {
		if rng.IntN(2) == 1 {
			a16[i/8] ^= 1 << (7 - i%8)
		}
	}
	// Half the time, leave the prefix: flip one bit inside it.
	if bits > 0 && rng.IntN(2) == 0 {
		i := rng.IntN(bits)
		a16[i/8] ^= 1 << (7 - i%8)
	}
	addr := netip.AddrFrom16(a16)
	if p.Addr().Is4() {
		if v4 := addr.Unmap(); v4.Is4() {
			addr = v4
		}
	}
	return addr
}

// TestDifferentialRandom is the differential property harness: for each
// case, a seeded-random prefix set goes into both the flat matcher and
// the netaddr.Trie oracle, and at least 10k probes per case must agree
// exactly — value and hit/miss alike.
func TestDifferentialRandom(t *testing.T) {
	cases := []struct {
		name     string
		prefixes int
		probes   int
		gen      func(rng *rand.Rand, n int) []netip.Prefix
	}{
		{"v4", 2000, 12000, func(rng *rand.Rand, n int) []netip.Prefix {
			ps := make([]netip.Prefix, n)
			for i := range ps {
				ps[i] = randV4Prefix(rng)
			}
			return ps
		}},
		{"v6", 2000, 12000, func(rng *rand.Rand, n int) []netip.Prefix {
			ps := make([]netip.Prefix, n)
			for i := range ps {
				ps[i] = randV6Prefix(rng)
			}
			return ps
		}},
		{"mixed", 3000, 12000, func(rng *rand.Rand, n int) []netip.Prefix {
			ps := make([]netip.Prefix, n)
			for i := range ps {
				if rng.IntN(2) == 0 {
					ps[i] = randV4Prefix(rng)
				} else {
					ps[i] = randV6Prefix(rng)
				}
			}
			return ps
		}},
		{"nested", 400, 12000, func(rng *rand.Rand, n int) []netip.Prefix {
			var ps []netip.Prefix
			for len(ps) < n {
				ps = append(ps, nestedChain(rng, rng.IntN(2) == 0)...)
			}
			return ps
		}},
		{"adjacent", 2000, 12000, func(rng *rand.Rand, n int) []netip.Prefix {
			// Sibling pairs: a prefix and the one differing only in its
			// last bit, the shape that stresses branch partitioning.
			var ps []netip.Prefix
			for len(ps) < n {
				p := randV4Prefix(rng)
				if p.Bits() == 0 {
					continue
				}
				ps = append(ps, p)
				a := p.Addr().As4()
				i := p.Bits() - 1
				a[i/8] ^= 1 << (7 - i%8)
				ps = append(ps, netip.PrefixFrom(netip.AddrFrom4(a), p.Bits()))
			}
			return ps
		}},
	}
	for _, tc := range cases {
		for seed := uint64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed%d", tc.name, seed), func(t *testing.T) {
				rng := rand.New(rand.NewPCG(seed, 0xce11))
				prefixes := tc.gen(rng, tc.prefixes)
				o := buildPair(t, prefixes)
				for i := 0; i < tc.probes; i++ {
					o.check(t, probeFor(rng, prefixes))
				}
			})
		}
	}
}

// TestHostBitEdgeCases pins the canonicalization contract: prefixes with
// host bits set mask to the same slot in both structures, and host-route
// prefixes (/32, /128) and default routes (/0) resolve identically.
func TestHostBitEdgeCases(t *testing.T) {
	prefixes := []netip.Prefix{
		netip.MustParsePrefix("10.1.2.3/16"), // host bits set
		netip.MustParsePrefix("10.1.0.0/16"), // its masked twin (deduped)
		netip.MustParsePrefix("10.1.2.3/32"),
		netip.MustParsePrefix("0.0.0.0/0"),
		netip.MustParsePrefix("2001:db8::42/48"), // host bits set
		netip.MustParsePrefix("2001:db8::42/128"),
		netip.MustParsePrefix("::/0"),
	}
	o := buildPair(t, prefixes)
	probes := []string{
		"10.1.2.3", "10.1.2.4", "10.1.255.255", "10.2.0.0", "192.0.2.1",
		"2001:db8::42", "2001:db8::43", "2001:db8:1::1", "2001:db9::1",
		"::", "255.255.255.255", "::ffff:10.1.2.3",
	}
	for _, s := range probes {
		o.check(t, netip.MustParseAddr(s))
	}
}

// TestEmptyAndSingle covers the degenerate layouts: nil matcher, empty
// set, one prefix, one nested pair.
func TestEmptyAndSingle(t *testing.T) {
	var nilM *Matcher
	if _, ok := nilM.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("nil matcher reported a hit")
	}
	empty, err := Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := empty.Lookup(netip.MustParseAddr("10.0.0.1")); ok {
		t.Fatal("empty matcher reported a hit")
	}
	if empty.Len() != 0 {
		t.Fatalf("empty Len = %d", empty.Len())
	}
	o := buildPair(t, []netip.Prefix{netip.MustParsePrefix("10.0.0.0/8")})
	o.check(t, netip.MustParseAddr("10.200.1.1"))
	o.check(t, netip.MustParseAddr("11.0.0.1"))
	o = buildPair(t, []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.0.0.0/24"),
	})
	for _, s := range []string{"10.0.0.7", "10.0.1.7", "10.255.0.1", "11.0.0.1"} {
		o.check(t, netip.MustParseAddr(s))
	}
}

// TestDuplicateRejected pins Build's refusal to shadow values.
func TestDuplicateRejected(t *testing.T) {
	_, err := Build([]Entry{
		{Prefix: netip.MustParsePrefix("10.0.0.0/24"), Value: 1},
		{Prefix: netip.MustParsePrefix("10.0.0.9/24"), Value: 2}, // same after Masked
	})
	if err == nil {
		t.Fatal("duplicate masked prefixes accepted")
	}
}

// TestStats sanity-checks the layout report against a known set.
func TestStats(t *testing.T) {
	o := buildPair(t, []netip.Prefix{
		netip.MustParsePrefix("10.0.0.0/8"),
		netip.MustParsePrefix("10.1.0.0/16"),
		netip.MustParsePrefix("10.2.0.0/16"),
	})
	st := o.m.Stats()
	if st.Prefixes != 3 || st.Base != 2 || st.Chain != 1 || st.Nodes < 3 || st.Bytes <= 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
	if o.m.Len() != 3 {
		t.Fatalf("Len = %d, want 3", o.m.Len())
	}
}

// TestZeroAllocLookup is the allocation regression gate for the core:
// lpm.Lookup must be allocation-free on hits and misses. CI runs this
// test by name so a regression fails the build.
func TestZeroAllocLookup(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	rng := rand.New(rand.NewPCG(7, 0xce11))
	var prefixes []netip.Prefix
	for i := 0; i < 4000; i++ {
		prefixes = append(prefixes, randV4Prefix(rng))
		prefixes = append(prefixes, randV6Prefix(rng))
	}
	o := buildPair(t, prefixes)
	hit := prefixes[0].Addr()
	miss := netip.MustParseAddr("203.0.113.77") // may hit; either way must not allocate
	for name, addr := range map[string]netip.Addr{"probe1": hit, "probe2": miss} {
		addr := addr
		if n := testing.AllocsPerRun(1000, func() {
			o.m.Lookup(addr)
		}); n != 0 {
			t.Errorf("%s: lpm.Lookup allocates %.1f times per op, want 0", name, n)
		}
	}
}
