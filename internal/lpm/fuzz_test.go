package lpm

import (
	"encoding/binary"
	"net/netip"
	"testing"
)

// FuzzLookup decodes arbitrary bytes into a prefix set plus probe
// addresses and checks flat-vs-trie agreement on every probe. The decoder
// is deliberately forgiving — any input yields some set — so the fuzzer
// explores layouts (nesting, adjacency, host bits, tiny and empty sets)
// rather than fighting a parser.
//
// Wire format, repeated records until input runs out:
//
//	tag byte: low bit selects family; remaining bits mod 33/129 give the
//	prefix length. Followed by 4 (v4) or 16 (v6) address bytes.
//
// The final up-to-17 bytes that cannot form a record become probe seeds;
// every stored prefix's own address doubles as a probe.
func FuzzLookup(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x10, 10, 0, 0, 0})                      // one v4 /8
	f.Add([]byte{0x40, 10, 0, 0, 0, 0x30, 10, 0, 0, 0})   // nested v4 /32 under /24
	f.Add([]byte{0x01, 0x20, 0xdb, 8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}) // one v6
	f.Add([]byte{0x02, 10, 0, 0, 1, 0x02, 10, 0, 0, 2})   // duplicate after mask
	f.Add([]byte{0x00, 0, 0, 0, 0, 0x01, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}) // both default routes
	f.Add([]byte{0xff, 1, 2, 3, 4, 0xfe, 1, 2, 3, 4, 0xfd, 1, 2, 3, 0}) // host routes + sibling
	f.Fuzz(func(t *testing.T, data []byte) {
		var (
			prefixes []netip.Prefix
			probes   []netip.Addr
		)
		for len(data) > 0 {
			tag := data[0]
			data = data[1:]
			if tag&1 == 0 { // IPv4
				if len(data) < 4 {
					probes = append(probes, probeFromTail(tag, data))
					break
				}
				var a [4]byte
				copy(a[:], data)
				data = data[4:]
				prefixes = append(prefixes, netip.PrefixFrom(netip.AddrFrom4(a), int(tag>>1)%33))
			} else { // IPv6
				if len(data) < 16 {
					probes = append(probes, probeFromTail(tag, data))
					break
				}
				var a [16]byte
				copy(a[:], data)
				data = data[16:]
				prefixes = append(prefixes, netip.PrefixFrom(netip.AddrFrom16(a), int(tag>>1)%129))
			}
		}
		for _, p := range prefixes {
			probes = append(probes, p.Addr())
			// Probe the first address past the prefix too: the classic
			// off-by-one for longest-match boundaries.
			probes = append(probes, p.Masked().Addr().Next())
		}

		o := buildPair(t, prefixes)
		if got, want := o.m.Len(), o.trie.Len(); got != want {
			t.Fatalf("Len: lpm=%d trie=%d", got, want)
		}
		for _, a := range probes {
			o.check(t, a)
		}
	})
}

// probeFromTail stretches leftover record bytes into a probe address.
func probeFromTail(tag byte, tail []byte) netip.Addr {
	var a [16]byte
	a[0] = tag
	copy(a[1:], tail)
	if tag&1 == 0 {
		// Bias into the v4-mapped block so short tails still probe the
		// space where v4 prefixes live.
		var v4 [4]byte
		copy(v4[:], a[1:5])
		return netip.AddrFrom4(v4)
	}
	return netip.AddrFrom16(a)
}

// FuzzBuildStats cross-checks structural invariants on arbitrary sets:
// every stored prefix must be reachable (looking up its own first address
// returns some value at least as specific), and the node array must be
// internally consistent — no descent can run off the arrays.
func FuzzBuildStats(f *testing.F) {
	f.Add(uint64(1), uint16(8))
	f.Add(uint64(42), uint16(300))
	f.Fuzz(func(t *testing.T, seed uint64, n uint16) {
		if n > 2048 {
			n = 2048
		}
		// Derive a deterministic prefix set from the seed without pulling
		// in math/rand: splitmix-style mixing is plenty for shapes.
		x := seed
		next := func() uint64 {
			x += 0x9e3779b97f4a7c15
			z := x
			z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
			z = (z ^ (z >> 27)) * 0x94d049bb133111eb
			return z ^ (z >> 31)
		}
		var prefixes []netip.Prefix
		for i := 0; i < int(n); i++ {
			v := next()
			if v&1 == 0 {
				var a [4]byte
				binary.BigEndian.PutUint32(a[:], uint32(v>>8))
				prefixes = append(prefixes, netip.PrefixFrom(netip.AddrFrom4(a), int(v>>40)%33))
			} else {
				var a [16]byte
				binary.BigEndian.PutUint64(a[:8], next())
				binary.BigEndian.PutUint64(a[8:], next())
				prefixes = append(prefixes, netip.PrefixFrom(netip.AddrFrom16(a), int(v>>40)%129))
			}
		}
		o := buildPair(t, prefixes)
		st := o.m.Stats()
		if st.Base+st.Chain != st.Prefixes {
			t.Fatalf("partition broken: base %d + chain %d != prefixes %d", st.Base, st.Chain, st.Prefixes)
		}
		for _, p := range prefixes {
			mp := p.Masked()
			if _, ok := o.m.Lookup(mp.Addr()); !ok {
				t.Fatalf("stored prefix %s not reachable from its own address", mp)
			}
			o.check(t, mp.Addr())
		}
	})
}
