// Package httpmw instruments HTTP handlers with obs metrics: per-route
// request counts by status class, an in-flight gauge, and a request
// latency histogram. Metrics are resolved once at mount time (routes are
// static), so the per-request path only touches atomics.
package httpmw

import (
	"net/http"
	"time"

	"cellspot/internal/obs"
)

// Wrap instruments next with per-route serving metrics under the given
// route label:
//
//	http_requests_total{route,class}  counter per status class (1xx..5xx)
//	http_inflight_requests{route}     gauge
//	http_request_seconds{route}       latency histogram
//
// A nil registry yields a passthrough-cost wrapper (nil metrics no-op).
func Wrap(reg *obs.Registry, route string, next http.Handler) http.Handler {
	inflight := reg.Gauge("http_inflight_requests",
		"Requests currently being served.", obs.L("route", route))
	lat := reg.Histogram("http_request_seconds",
		"Request latency in seconds.", obs.DefBuckets, obs.L("route", route))
	var byClass [5]*obs.Counter
	classes := [5]string{"1xx", "2xx", "3xx", "4xx", "5xx"}
	for i, cl := range classes {
		byClass[i] = reg.Counter("http_requests_total",
			"Requests served, by route and status class.",
			obs.L("route", route), obs.L("class", cl))
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		inflight.Inc()
		sw := statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(&sw, r)
		inflight.Dec()
		if c := sw.code / 100; c >= 1 && c <= 5 {
			byClass[c-1].Inc()
		}
		lat.Observe(time.Since(start).Seconds())
	})
}

// statusWriter records the first status code written; a handler that never
// calls WriteHeader implicitly serves 200.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Mux is an http.ServeMux whose routes are instrumented via Wrap, each
// labeled with its registered pattern. It satisfies the Router interfaces
// the serving packages mount onto.
type Mux struct {
	mux *http.ServeMux
	reg *obs.Registry
}

// NewMux returns an instrumented mux recording into reg.
func NewMux(reg *obs.Registry) *Mux {
	return &Mux{mux: http.NewServeMux(), reg: reg}
}

// Handle registers an instrumented handler for pattern; the pattern is the
// route label.
func (m *Mux) Handle(pattern string, h http.Handler) {
	m.mux.Handle(pattern, Wrap(m.reg, pattern, h))
}

// HandleFunc registers an instrumented handler function for pattern.
func (m *Mux) HandleFunc(pattern string, h func(http.ResponseWriter, *http.Request)) {
	m.Handle(pattern, http.HandlerFunc(h))
}

// ServeHTTP dispatches to the instrumented routes.
func (m *Mux) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mux.ServeHTTP(w, r)
}
