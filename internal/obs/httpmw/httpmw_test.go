package httpmw

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cellspot/internal/obs"
)

func TestWrapRecordsRoute(t *testing.T) {
	reg := obs.NewRegistry()
	mux := NewMux(reg)
	mux.HandleFunc("GET /ok", func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok")) // implicit 200
	})
	mux.HandleFunc("GET /fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/fail")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Re-requesting the same metric names yields the mounted instances.
	ok2xx := reg.Counter("http_requests_total", "", obs.L("route", "GET /ok"), obs.L("class", "2xx"))
	fail4xx := reg.Counter("http_requests_total", "", obs.L("route", "GET /fail"), obs.L("class", "4xx"))
	if ok2xx.Value() != 3 {
		t.Errorf("2xx count = %d, want 3", ok2xx.Value())
	}
	if fail4xx.Value() != 1 {
		t.Errorf("4xx count = %d, want 1", fail4xx.Value())
	}
	inflight := reg.Gauge("http_inflight_requests", "", obs.L("route", "GET /ok"))
	if inflight.Value() != 0 {
		t.Errorf("in-flight after completion = %d", inflight.Value())
	}
	lat := reg.Histogram("http_request_seconds", "", obs.DefBuckets, obs.L("route", "GET /ok"))
	if lat.Count() != 3 {
		t.Errorf("latency observations = %d, want 3", lat.Count())
	}

	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `http_requests_total{class="2xx",route="GET /ok"} 3`) {
		t.Errorf("exposition missing labeled counter:\n%s", b.String())
	}
}

func TestWrapNilRegistry(t *testing.T) {
	h := Wrap(nil, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	if rec.Code != http.StatusNoContent {
		t.Errorf("status = %d", rec.Code)
	}
}

func TestStatusWriterFirstCodeWins(t *testing.T) {
	reg := obs.NewRegistry()
	h := Wrap(reg, "GET /x", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		w.WriteHeader(http.StatusOK) // ignored by net/http; must be ignored by accounting too
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/x", nil))
	c5xx := reg.Counter("http_requests_total", "", obs.L("route", "GET /x"), obs.L("class", "5xx"))
	if c5xx.Value() != 1 {
		t.Errorf("5xx count = %d, want 1", c5xx.Value())
	}
}
