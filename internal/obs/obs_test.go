package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("widgets_total", "widgets")
	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Errorf("Value = %d", c.Value())
	}
	// Get-or-create: same name+labels returns the same counter.
	if r.Counter("widgets_total", "widgets") != c {
		t.Error("re-registration returned a different counter")
	}
	if r.Counter("widgets_total", "widgets", L("k", "v")) == c {
		t.Error("different label set returned the same counter")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth", "queue depth")
	g.Set(10)
	g.Inc()
	g.Dec()
	g.Add(-3)
	if g.Value() != 7 {
		t.Errorf("Value = %d", g.Value())
	}
}

func TestHistogram(t *testing.T) {
	h := NewRegistry().Histogram("lat", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if got := h.Sum(); math.Abs(got-56.05) > 1e-9 {
		t.Errorf("Sum = %g", got)
	}
	var b strings.Builder
	reg := NewRegistry()
	h2 := reg.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h2.Observe(v)
	}
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_sum 56.05`,
		`lat_seconds_count 5`,
		"# TYPE lat_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x", "")
	g := r.Gauge("x2", "")
	h := r.Histogram("x3", "", nil)
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Inc()
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics retained state")
	}
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Errorf("nil WriteText: %v", err)
	}
}

func TestWriteTextFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "bees seen", L("kind", "honey")).Add(3)
	r.Counter("b_total", "bees seen", L("kind", `quo"te`)).Inc()
	r.Gauge("a_gauge", "level\nsecond line").Set(-2)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	got := b.String()
	want := `# HELP a_gauge level\nsecond line
# TYPE a_gauge gauge
a_gauge -2
# HELP b_total bees seen
# TYPE b_total counter
b_total{kind="honey"} 3
b_total{kind="quo\"te"} 1
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	c2 := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	if c1 != c2 {
		t.Error("label order produced distinct metrics")
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "")
	defer func() {
		if recover() == nil {
			t.Error("gauge re-registration of a counter family did not panic")
		}
	}()
	r.Gauge("dual", "")
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits").Inc()
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("Content-Type = %q", ct)
	}
	buf := make([]byte, 1<<10)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "hits_total 1") {
		t.Errorf("body = %q", buf[:n])
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.01)
				// Concurrent scrapes must be safe too.
				if i%100 == 0 {
					_ = r.WriteText(&strings.Builder{})
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 {
		t.Errorf("c=%d g=%d h=%d", c.Value(), g.Value(), h.Count())
	}
}

// The hot record path must not allocate: these are the increments sitting
// inside request handlers and pipeline shard loops.
func TestRecordPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if n := testing.AllocsPerRun(100, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Add(2) }); n != 0 {
		t.Errorf("Gauge.Add allocates %g/op", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(0.3) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %g/op", n)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.042)
	}
}
