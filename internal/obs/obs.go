// Package obs is the observability layer for the serving path: lock-free
// atomic counters, gauges, and fixed-bucket latency histograms behind a
// named registry, exposed in Prometheus text format. One registry snapshot
// answers "what is this process doing right now" for the collection and
// lookup daemons and for batch pipeline runs alike.
//
// Design constraints, in order:
//
//   - The increment path allocates nothing and takes no locks: counters and
//     gauges are single atomics, histograms are an atomic per bucket plus a
//     CAS loop for the float sum.
//   - Every metric type is nil-safe: methods on a nil *Counter, *Gauge, or
//     *Histogram are no-ops, and constructors on a nil *Registry return
//     nil. Instrumented code therefore never branches on "metrics enabled".
//   - Registration is get-or-create keyed by name+labels, so wiring code
//     can re-request a metric idempotently; conflicting re-registration
//     (same family, different type) panics at wire-up time.
//   - Recording is observation-only: nothing in this package feeds back
//     into the code it measures, so deterministic pipelines stay
//     bit-identical with metrics enabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Counters only go up; instrument deltas, not levels.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (in-flight requests, spool
// shard number, loaded entries).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Inc adds one.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefBuckets are the default latency buckets in seconds, matching the
// Prometheus client defaults: 5ms to 10s.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// Histogram counts observations into fixed buckets. Buckets are upper
// bounds in ascending order; observations above the last bound land only
// in the implicit +Inf bucket (the total count).
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // non-cumulative; cumulated at exposition time
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bs := make([]float64, len(bounds))
	copy(bs, bounds)
	for i := 1; i < len(bs); i++ {
		if bs[i] <= bs[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", bounds))
		}
	}
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs))}
}

// Observe records one value. Allocation-free and lock-free.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	for i, ub := range h.bounds {
		if v <= ub {
			h.buckets[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Label is one constant name=value pair attached at registration time.
// Resolving labels at registration is what keeps the record path
// allocation-free: the exposition string is built once, up front.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

type metric struct {
	family string // metric name without labels
	labels string // rendered `k="v",...` (no braces), "" when unlabeled
	help   string
	kind   metricKind
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry is a named collection of metrics. The zero value is not usable;
// call NewRegistry. All methods are safe for concurrent use, and every
// constructor is get-or-create: requesting an already-registered
// name+labels pair returns the existing metric.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*metric
	ms    []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// Counter registers (or finds) a counter. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.getOrCreate(name, help, kindCounter, nil, labels)
	if m == nil {
		return nil
	}
	return m.c
}

// Gauge registers (or finds) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.getOrCreate(name, help, kindGauge, nil, labels)
	if m == nil {
		return nil
	}
	return m.g
}

// Histogram registers (or finds) a histogram with the given bucket upper
// bounds (DefBuckets when nil). Returns nil on a nil registry. Buckets are
// fixed by the first registration of a family.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	m := r.getOrCreate(name, help, kindHistogram, buckets, labels)
	if m == nil {
		return nil
	}
	return m.h
}

func (r *Registry) getOrCreate(name, help string, kind metricKind, buckets []float64, labels []Label) *metric {
	if r == nil {
		return nil
	}
	if name == "" {
		panic("obs: empty metric name")
	}
	ls := renderLabels(labels)
	key := name + "{" + ls + "}"
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: %s registered as %s, re-requested as %s", key, m.kind, kind))
		}
		return m
	}
	// A family must not mix types across label sets either.
	for _, m := range r.ms {
		if m.family == name && m.kind != kind {
			panic(fmt.Sprintf("obs: family %s registered as %s, re-requested as %s", name, m.kind, kind))
		}
	}
	m := &metric{family: name, labels: ls, help: help, kind: kind}
	switch kind {
	case kindCounter:
		m.c = &Counter{}
	case kindGauge:
		m.g = &Gauge{}
	case kindHistogram:
		m.h = newHistogram(buckets)
	}
	r.byKey[key] = m
	r.ms = append(r.ms, m)
	return m
}

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// WriteText writes every registered metric in the Prometheus text
// exposition format (version 0.0.4), sorted by family then label set, with
// one HELP/TYPE header per family. Values are read atomically per metric;
// the snapshot is not transactional across metrics, which is the standard
// scrape semantic.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, len(r.ms))
	copy(ms, r.ms)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].family != ms[j].family {
			return ms[i].family < ms[j].family
		}
		return ms[i].labels < ms[j].labels
	})

	var b strings.Builder
	lastFamily := ""
	for _, m := range ms {
		if m.family != lastFamily {
			lastFamily = m.family
			if m.help != "" {
				fmt.Fprintf(&b, "# HELP %s %s\n", m.family, escapeHelp(m.help))
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", m.family, m.kind)
		}
		switch m.kind {
		case kindCounter:
			writeSample(&b, m.family, "", m.labels, "", formatUint(m.c.Value()))
		case kindGauge:
			writeSample(&b, m.family, "", m.labels, "", strconv.FormatInt(m.g.Value(), 10))
		case kindHistogram:
			var cum uint64
			for i, ub := range m.h.bounds {
				cum += m.h.buckets[i].Load()
				writeSample(&b, m.family, "_bucket", m.labels,
					`le="`+formatFloat(ub)+`"`, formatUint(cum))
			}
			writeSample(&b, m.family, "_bucket", m.labels, `le="+Inf"`, formatUint(m.h.Count()))
			writeSample(&b, m.family, "_sum", m.labels, "", formatFloat(m.h.Sum()))
			writeSample(&b, m.family, "_count", m.labels, "", formatUint(m.h.Count()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func writeSample(b *strings.Builder, family, suffix, labels, extraLabel, value string) {
	b.WriteString(family)
	b.WriteString(suffix)
	if labels != "" || extraLabel != "" {
		b.WriteByte('{')
		b.WriteString(labels)
		if labels != "" && extraLabel != "" {
			b.WriteByte(',')
		}
		b.WriteString(extraLabel)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler serves the registry in Prometheus text format; mount it at
// GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WriteText(w); err != nil {
			// Headers are out; all we can do is drop the connection early.
			return
		}
	})
}
