// Package mapbuild runs the classify → AS-filter → cellmap.Build chain:
// the one code path that turns a beacon aggregate into the publishable
// cellular map. The live updater, the federation receiver, and the evolve
// scenario runner all build through it, so maps from identical aggregates
// are bit-identical regardless of which subsystem published them.
package mapbuild

import (
	"fmt"

	"cellspot/internal/aschar"
	"cellspot/internal/beacon"
	"cellspot/internal/cellmap"
	"cellspot/internal/classify"
	"cellspot/internal/demand"
	"cellspot/internal/netaddr"
)

// Inputs bundles the side data the map-build chain needs beyond the
// beacon aggregate itself.
type Inputs struct {
	// Demand weights AS-filter rule 1 and the published DU annotations;
	// nil skips both (rule 1 then passes every AS).
	Demand *demand.Dataset
	// Rules is the paper's AS filter (Table 5). The zero value disables
	// all three rules.
	Rules aschar.Rules
	// ASOf maps a block to its originating AS, as a BGP table would.
	// Required: unmappable blocks cannot be published.
	ASOf func(netaddr.Block) (uint32, bool)
	// CountryOf annotates entries with a country; optional.
	CountryOf func(uint32) (string, bool)
}

// Build classifies the aggregate, drops detected blocks whose AS fails
// the paper's exclusion rules, and assembles the publishable map.
func Build(agg *beacon.Aggregate, threshold float64, period string, in Inputs) (*cellmap.Map, error) {
	if in.ASOf == nil {
		return nil, fmt.Errorf("mapbuild: Inputs.ASOf is required")
	}
	cls, err := classify.New(threshold)
	if err != nil {
		return nil, fmt.Errorf("mapbuild: %w", err)
	}
	detected := cls.Classify(agg)
	stats := aschar.BuildStats(aschar.Inputs{
		Detected: detected,
		Beacon:   agg,
		Demand:   in.Demand,
		ASOf:     in.ASOf,
	})
	fr := aschar.Filter(stats, in.Rules)
	allowed := make(map[uint32]bool, len(fr.AfterRule3))
	for _, a := range fr.AfterRule3 {
		allowed[a] = true
	}
	kept := make(netaddr.Set)
	for b := range detected {
		if a, ok := in.ASOf(b); ok && allowed[a] {
			kept.Add(b)
		}
	}
	return cellmap.Build(threshold, period, cellmap.Inputs{
		Detected:  kept,
		Beacon:    agg,
		Demand:    in.Demand,
		ASOf:      in.ASOf,
		CountryOf: in.CountryOf,
	})
}
