// Package rum implements the Real-User-Monitoring collection path: an HTTP
// collector that receives beacon records (NDJSON batches, as a CDN edge
// would spool them), aggregates them per block in memory, and optionally
// writes them to a JSONL spool; plus the client used by the beacon
// simulator. This is the live end-to-end path behind the paper's BEACON
// dataset.
package rum

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/logio"
	"cellspot/internal/netinfo"
	"cellspot/internal/obs"
)

// MaxBodyBytes bounds one POST body; batches beyond it are rejected.
const MaxBodyBytes = 16 << 20

// Collector receives and aggregates beacon records.
type Collector struct {
	mu        sync.Mutex
	agg       *beacon.Aggregate
	spool     *logio.Spool
	authToken string
	received  int
	rejected  int

	// Ingest metrics; nil without WithMetrics (obs metrics no-op on nil).
	mReceived     *obs.Counter
	mRejected     *obs.Counter
	mUnauthorized *obs.Counter
	mSpooled      *obs.Counter
	mBlocks       *obs.Gauge
}

// Option configures a Collector.
type Option func(*Collector)

// WithSpool writes every accepted record to the given spool in addition to
// aggregating it.
func WithSpool(sp *logio.Spool) Option {
	return func(c *Collector) { c.spool = sp }
}

// WithAuthToken requires batch posts to carry the shared secret in an
// Authorization: Bearer header — edge collectors are not open write
// endpoints. Stats remain unauthenticated (they are operational metadata).
func WithAuthToken(token string) Option {
	return func(c *Collector) { c.authToken = token }
}

// WithMetrics registers the collector's ingest metrics on reg:
//
//	rum_records_received_total  accepted records
//	rum_records_rejected_total  records rejected by validation or parsing
//	rum_unauthorized_total      posts refused for a missing/wrong token
//	rum_spooled_records_total   records written to the spool
//	rum_blocks                  distinct blocks in the live aggregate
func WithMetrics(reg *obs.Registry) Option {
	return func(c *Collector) {
		c.mReceived = reg.Counter("rum_records_received_total", "Beacon records accepted.")
		c.mRejected = reg.Counter("rum_records_rejected_total", "Beacon records rejected by validation or parsing.")
		c.mUnauthorized = reg.Counter("rum_unauthorized_total", "Beacon posts refused for a missing or wrong bearer token.")
		c.mSpooled = reg.Counter("rum_spooled_records_total", "Beacon records written to the disk spool.")
		c.mBlocks = reg.Gauge("rum_blocks", "Distinct blocks in the live aggregate.")
	}
}

// NewCollector creates an empty collector.
func NewCollector(opts ...Option) *Collector {
	c := &Collector{agg: beacon.NewAggregate()}
	for _, o := range opts {
		o(c)
	}
	return c
}

// Stats reports collector counters.
type Stats struct {
	Received int `json:"received"`
	Rejected int `json:"rejected"`
	Blocks   int `json:"blocks"`
}

// Stats returns a snapshot of the collector's counters.
func (c *Collector) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Received: c.received, Rejected: c.rejected, Blocks: c.agg.Blocks()}
}

// Snapshot returns a copy of the current aggregate.
func (c *Collector) Snapshot() *beacon.Aggregate {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := beacon.NewAggregate()
	out.Merge(c.agg)
	return out
}

// Close flushes the spool, if any.
func (c *Collector) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.spool == nil {
		return nil
	}
	return c.spool.Close()
}

// Router is the route-registration surface MountRoutes needs; both
// *http.ServeMux and the instrumented httpmw.Mux satisfy it.
type Router interface {
	HandleFunc(pattern string, handler func(http.ResponseWriter, *http.Request))
}

// MountRoutes registers the collector's routes on r:
//
//	POST /v1/beacons — NDJSON beacon records (one JSON object per line)
//	GET  /v1/stats   — collector counters as JSON
func (c *Collector) MountRoutes(r Router) {
	r.HandleFunc("POST /v1/beacons", c.handleBeacons)
	r.HandleFunc("GET /v1/stats", c.handleStats)
}

// Handler returns the collector's routes on a plain mux.
func (c *Collector) Handler() http.Handler {
	mux := http.NewServeMux()
	c.MountRoutes(mux)
	return mux
}

func (c *Collector) handleBeacons(w http.ResponseWriter, r *http.Request) {
	if c.authToken != "" {
		got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
		if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(c.authToken)) != 1 {
			c.mUnauthorized.Inc()
			http.Error(w, "unauthorized", http.StatusUnauthorized)
			return
		}
	}
	body := http.MaxBytesReader(w, r.Body, MaxBodyBytes)
	dec := json.NewDecoder(body)
	var batch []beacon.Record
	for {
		var rec beacon.Record
		err := dec.Decode(&rec)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			c.reject(1)
			http.Error(w, fmt.Sprintf("bad record after %d: %v", len(batch), err), http.StatusBadRequest)
			return
		}
		if err := validateRecord(rec); err != nil {
			c.reject(1)
			http.Error(w, fmt.Sprintf("invalid record %d: %v", len(batch), err), http.StatusBadRequest)
			return
		}
		batch = append(batch, rec)
	}
	if err := c.accept(batch); err != nil {
		http.Error(w, "spool failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"accepted":%d}`+"\n", len(batch))
}

func validateRecord(rec beacon.Record) error {
	if !rec.IP.IsValid() {
		return fmt.Errorf("missing or invalid IP")
	}
	if _, err := netinfo.ParseConnectionType(rec.Conn); err != nil {
		return err
	}
	return nil
}

func (c *Collector) accept(batch []beacon.Record) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, rec := range batch {
		if c.spool != nil {
			if err := c.spool.Write(rec); err != nil {
				return err
			}
			c.mSpooled.Inc()
		}
		c.agg.AddRecord(rec)
		c.received++
		c.mReceived.Inc()
	}
	c.mBlocks.Set(int64(c.agg.Blocks()))
	return nil
}

func (c *Collector) reject(n int) {
	c.mu.Lock()
	c.rejected += n
	c.mu.Unlock()
	c.mRejected.Add(uint64(n))
}

func (c *Collector) handleStats(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(c.Stats()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// Client posts beacon batches to a collector.
type Client struct {
	// BaseURL is the collector root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient defaults to a client with a 10s timeout.
	HTTPClient *http.Client
	// BatchSize bounds records per POST (default 500).
	BatchSize int
	// AuthToken, when set, is sent as a Bearer token on beacon posts.
	AuthToken string
}

func (cl *Client) httpClient() *http.Client {
	if cl.HTTPClient != nil {
		return cl.HTTPClient
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (cl *Client) batchSize() int {
	if cl.BatchSize > 0 {
		return cl.BatchSize
	}
	return 500
}

// Post sends records in batches; it stops at the first failure.
func (cl *Client) Post(ctx context.Context, records []beacon.Record) error {
	bs := cl.batchSize()
	for start := 0; start < len(records); start += bs {
		end := min(start+bs, len(records))
		if err := cl.postBatch(ctx, records[start:end]); err != nil {
			return fmt.Errorf("rum: batch at %d: %w", start, err)
		}
	}
	return nil
}

func (cl *Client) postBatch(ctx context.Context, batch []beacon.Record) error {
	pr, pw := io.Pipe()
	go func() {
		enc := json.NewEncoder(pw)
		for _, rec := range batch {
			if err := enc.Encode(rec); err != nil {
				pw.CloseWithError(err)
				return
			}
		}
		pw.Close()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cl.BaseURL+"/v1/beacons", pr)
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	if cl.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+cl.AuthToken)
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("collector returned %s: %s", resp.Status, msg)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

// FetchStats retrieves the collector's counters.
func (cl *Client) FetchStats(ctx context.Context) (Stats, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cl.BaseURL+"/v1/stats", nil)
	if err != nil {
		return Stats{}, err
	}
	resp, err := cl.httpClient().Do(req)
	if err != nil {
		return Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return Stats{}, fmt.Errorf("collector returned %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return Stats{}, err
	}
	return st, nil
}
