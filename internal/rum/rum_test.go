package rum

import (
	"context"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"cellspot/internal/beacon"
	"cellspot/internal/logio"
	"cellspot/internal/netaddr"
	"cellspot/internal/obs"
)

func rec(ip, conn string) beacon.Record {
	return beacon.Record{
		Time: time.Date(2016, 12, 15, 12, 0, 0, 0, time.UTC),
		IP:   netip.MustParseAddr(ip),
		Conn: conn, Browser: "Chrome Mobile", PageLoadMS: 900,
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL, BatchSize: 3}

	records := []beacon.Record{
		rec("10.1.1.5", "cellular"),
		rec("10.1.1.6", "cellular"),
		rec("10.1.1.7", "wifi"),
		rec("10.1.1.8", ""), // no API data
		rec("10.2.2.5", "wifi"),
	}
	if err := cl.Post(context.Background(), records); err != nil {
		t.Fatal(err)
	}
	st, err := cl.FetchStats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.Received != 5 || st.Rejected != 0 || st.Blocks != 2 {
		t.Errorf("stats = %+v", st)
	}
	agg := col.Snapshot()
	r, ok := agg.Ratio(netaddr.V4Block(10, 1, 1))
	if !ok || r != 2.0/3 {
		t.Errorf("ratio = %g,%v", r, ok)
	}
	if tot := agg.Totals(); tot.Hits != 5 || tot.API != 4 || tot.Cell != 2 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestCollectorRejectsGarbage(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/beacons", "application/x-ndjson",
		strings.NewReader("{not json}\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("garbage returned %d", resp.StatusCode)
	}
	// Bad connection type.
	resp, err = http.Post(srv.URL+"/v1/beacons", "application/x-ndjson",
		strings.NewReader(`{"ip":"1.2.3.4","conn":"quantum"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad conn returned %d", resp.StatusCode)
	}
	// Missing IP.
	resp, err = http.Post(srv.URL+"/v1/beacons", "application/x-ndjson",
		strings.NewReader(`{"conn":"wifi"}`+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing IP returned %d", resp.StatusCode)
	}
	if st := col.Stats(); st.Rejected != 3 || st.Received != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCollectorMethodRouting(t *testing.T) {
	srv := httptest.NewServer(NewCollector().Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/v1/beacons")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("GET /v1/beacons accepted")
	}
	resp, err = http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path returned %d", resp.StatusCode)
	}
}

func TestCollectorSpool(t *testing.T) {
	dir := t.TempDir()
	sp := logio.NewSpool(dir, "rum", false, 0)
	col := NewCollector(WithSpool(sp))
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL}
	if err := cl.Post(context.Background(), []beacon.Record{
		rec("9.9.9.1", "cellular"), rec("9.9.9.2", "wifi"),
	}); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	// The spool replays into an equal aggregate.
	replay := beacon.NewAggregate()
	st, err := logio.DecodeSpool(dir, "rum", false, func(r beacon.Record) error {
		replay.AddRecord(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 2 {
		t.Fatalf("spool records = %d", st.Records)
	}
	live := col.Snapshot()
	if live.Blocks() != replay.Blocks() || live.Totals() != replay.Totals() {
		t.Error("spool replay diverges from live aggregate")
	}
}

func TestClientBatching(t *testing.T) {
	var posts int
	col := NewCollector()
	h := col.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost {
			posts++
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL, BatchSize: 2}
	var recs []beacon.Record
	for i := 0; i < 5; i++ {
		recs = append(recs, rec("8.8.8.8", "wifi"))
	}
	if err := cl.Post(context.Background(), recs); err != nil {
		t.Fatal(err)
	}
	if posts != 3 { // 2+2+1
		t.Errorf("posts = %d, want 3", posts)
	}
}

func TestClientErrorPropagation(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}
	err := cl.Post(context.Background(), []beacon.Record{rec("1.1.1.1", "wifi")})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Errorf("err = %v", err)
	}
	if _, err := cl.FetchStats(context.Background()); err == nil {
		t.Error("FetchStats swallowed server error")
	}
}

func TestCollectorAuth(t *testing.T) {
	col := NewCollector(WithAuthToken("s3cret"))
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	// No token: rejected.
	noAuth := &Client{BaseURL: srv.URL}
	if err := noAuth.Post(context.Background(), []beacon.Record{rec("1.1.1.1", "wifi")}); err == nil {
		t.Error("unauthenticated post accepted")
	}
	// Wrong token: rejected.
	wrong := &Client{BaseURL: srv.URL, AuthToken: "nope"}
	if err := wrong.Post(context.Background(), []beacon.Record{rec("1.1.1.1", "wifi")}); err == nil {
		t.Error("wrong token accepted")
	}
	// Correct token: accepted.
	ok := &Client{BaseURL: srv.URL, AuthToken: "s3cret"}
	if err := ok.Post(context.Background(), []beacon.Record{rec("1.1.1.1", "wifi")}); err != nil {
		t.Fatal(err)
	}
	// Stats stay open.
	if _, err := noAuth.FetchStats(context.Background()); err != nil {
		t.Errorf("stats require auth: %v", err)
	}
	if st := col.Stats(); st.Received != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCollectorAuthStatusCode pins the rejection status itself: a missing
// or malformed token must yield exactly 401, not just "some client error".
func TestCollectorAuthStatusCode(t *testing.T) {
	col := NewCollector(WithAuthToken("s3cret"))
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	body := `{"ip":"1.2.3.4","conn":"wifi"}` + "\n"
	for name, apply := range map[string]func(*http.Request){
		"no header":     func(*http.Request) {},
		"wrong token":   func(r *http.Request) { r.Header.Set("Authorization", "Bearer nope") },
		"not bearer":    func(r *http.Request) { r.Header.Set("Authorization", "Basic s3cret") },
		"empty bearer":  func(r *http.Request) { r.Header.Set("Authorization", "Bearer ") },
		"token as body": func(r *http.Request) { r.Header.Set("X-Token", "s3cret") },
	} {
		req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/beacons", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		apply(req)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s: status = %d, want 401", name, resp.StatusCode)
		}
	}
	// Rejected posts must not leak records into the aggregate.
	if st := col.Stats(); st.Received != 0 || st.Blocks != 0 {
		t.Errorf("stats after unauthorized posts = %+v", st)
	}
}

func TestCollectorMetrics(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	col := NewCollector(
		WithSpool(logio.NewSpool(dir, "rum", false, 0)),
		WithAuthToken("s3cret"),
		WithMetrics(reg),
	)
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()

	cl := &Client{BaseURL: srv.URL, AuthToken: "s3cret"}
	if err := cl.Post(context.Background(), []beacon.Record{
		rec("10.1.1.5", "cellular"), rec("10.1.1.6", "wifi"), rec("10.2.2.5", "wifi"),
	}); err != nil {
		t.Fatal(err)
	}
	// One garbage post (counted rejected) and one unauthorized post.
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/beacons", strings.NewReader("{broken\n"))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if err := (&Client{BaseURL: srv.URL}).Post(context.Background(), []beacon.Record{rec("1.1.1.1", "wifi")}); err == nil {
		t.Fatal("unauthorized post accepted")
	}

	checks := map[string]uint64{
		"rum_records_received_total": 3,
		"rum_records_rejected_total": 1,
		"rum_unauthorized_total":     1,
		"rum_spooled_records_total":  3,
	}
	for name, want := range checks {
		if got := reg.Counter(name, "").Value(); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := reg.Gauge("rum_blocks", "").Value(); got != 2 {
		t.Errorf("rum_blocks = %d, want 2", got)
	}
}

func TestEmptyBatch(t *testing.T) {
	col := NewCollector()
	srv := httptest.NewServer(col.Handler())
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/beacons", "application/x-ndjson", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("empty batch returned %d", resp.StatusCode)
	}
}
