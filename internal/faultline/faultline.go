// Package faultline is a deterministic, seedable fault-injection layer for
// the storage and network planes. It exists because the system's hard
// invariants — no torn snapshot generations, exactly-once federation folds,
// no mixed-generation batches — only matter if they hold when disks fail
// mid-rename and networks drop mid-segment, and those failures must be
// *reproducible* to be debuggable.
//
// The package offers two shims:
//
//   - An FS interface (see fs.go) that internal/snapshot and internal/logio
//     write through. FaultFS wraps any FS and injects write/fsync/rename
//     errors, short writes, and crash points that freeze the directory
//     state — every operation after a crash point fails, simulating the
//     moment a process dies with the disk in whatever state the completed
//     operations left it.
//   - An http.RoundTripper (see transport.go) that the federation shipper
//     and the cluster gateway's replica client can be pointed at. It
//     injects added latency, connection resets, truncated response bodies,
//     and synthesized 5xx storms.
//
// Determinism model: every interceptable operation is identified by an Op —
// a kind ("write", "rename", "http", ...), a key (the path or route), and a
// per-(kind,key) sequence number assigned by the shim. An Injector maps Ops
// to Decisions. The seeded Plan injector is a *pure function* of (seed, Op):
// it keeps no mutable state, so the same traffic pattern sees the identical
// fault schedule on every run, regardless of goroutine interleaving. A
// Trace records every (Op, Decision) pair and renders them sorted, so two
// runs of a deterministic workload produce byte-identical logs — the chaos
// CI gate diffs them.
//
// Scope note: crash points freeze *completed* operations. The shim does not
// model loss of written-but-unsynced page-cache data; it models the process
// dying, which is the failure mode the snapshot store's rename protocol and
// the spool's seal protocol are designed around (both fsync before every
// publishing rename).
package faultline

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrInjected is the root of every fault this package injects; test code
// can errors.Is against it to tell injected faults from real ones.
var ErrInjected = errors.New("faultline: injected fault")

// ErrCrashed is returned by every operation on a filesystem frozen at a
// crash point. It wraps ErrInjected.
var ErrCrashed = fmt.Errorf("%w: filesystem frozen at crash point", ErrInjected)

// Op identifies one interceptable operation.
type Op struct {
	// Kind is the operation class: "create", "write", "sync", "rename",
	// "remove", "mkdir", "readdir", "read", "stat" for filesystems, "http"
	// for the transport.
	Kind string
	// Key scopes the sequence: a file path for filesystems, the request
	// route for the transport (see Transport.KeyFunc).
	Key string
	// Seq is the 1-based sequence number of this (Kind, Key) pair, assigned
	// by the shim that observed the operation.
	Seq uint64
}

// Decision is what an Injector wants done to one operation. The zero value
// means "no fault".
type Decision struct {
	// Err fails the operation: filesystems return it from the op, the
	// transport returns it from RoundTrip (a connection reset).
	Err error
	// Short truncates: a file write persists only Short bytes before
	// failing; an HTTP response body yields only Short bytes before
	// failing with an unexpected EOF.
	Short int
	// Crash freezes the filesystem after this operation is refused: the op
	// does not apply, and every later op on the same FaultFS fails with
	// ErrCrashed. Ignored by the transport.
	Crash bool
	// Latency delays an HTTP attempt before anything else happens. Ignored
	// by filesystems.
	Latency time.Duration
	// Status, when non-zero, synthesizes an HTTP response with this status
	// code without reaching the wrapped transport (a 5xx storm). Ignored by
	// filesystems.
	Status int
}

// fault reports whether the decision does anything.
func (d Decision) fault() bool {
	return d.Err != nil || d.Short > 0 || d.Crash || d.Latency > 0 || d.Status != 0
}

// String renders the decision deterministically for trace logs.
func (d Decision) String() string {
	if !d.fault() {
		return "ok"
	}
	var parts []string
	if d.Crash {
		parts = append(parts, "crash")
	}
	if d.Short > 0 {
		parts = append(parts, fmt.Sprintf("short=%d", d.Short))
	}
	if d.Err != nil {
		parts = append(parts, "err="+d.Err.Error())
	}
	if d.Status != 0 {
		parts = append(parts, fmt.Sprintf("status=%d", d.Status))
	}
	if d.Latency > 0 {
		parts = append(parts, fmt.Sprintf("latency=%s", d.Latency))
	}
	return strings.Join(parts, ",")
}

// Injector decides the fate of operations. Implementations must be safe
// for concurrent use and — if the byte-identical replay gate matters —
// pure functions of the Op.
type Injector interface {
	Decide(op Op) Decision
}

// Clean is the no-fault injector.
type Clean struct{}

// Decide returns the zero Decision.
func (Clean) Decide(Op) Decision { return Decision{} }

// seqTracker hands out per-(kind,key) sequence numbers. Shims embed one so
// the Op stream presented to an Injector is stable across runs of a
// deterministic workload.
type seqTracker struct {
	mu   sync.Mutex
	seqs map[string]uint64
}

func (s *seqTracker) next(kind, key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.seqs == nil {
		s.seqs = make(map[string]uint64)
	}
	k := kind + "\x00" + key
	s.seqs[k]++
	return s.seqs[k]
}

// Trace records every observed (Op, Decision) pair. Log renders the events
// sorted by (Kind, Key, Seq), so the bytes are independent of goroutine
// interleaving: a deterministic workload produces a byte-identical trace on
// every run with the same seed. A nil *Trace is a no-op.
type Trace struct {
	mu     sync.Mutex
	events []traceEvent
}

type traceEvent struct {
	op Op
	d  string
}

// Record notes one decision.
func (t *Trace) Record(op Op, d Decision) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.events = append(t.events, traceEvent{op: op, d: d.String()})
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Faults counts recorded events that injected something.
func (t *Trace) Faults() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, e := range t.events {
		if e.d != "ok" {
			n++
		}
	}
	return n
}

// Log renders the trace as one line per event, sorted by (Kind, Key, Seq).
func (t *Trace) Log() []byte {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	evs := make([]traceEvent, len(t.events))
	copy(evs, t.events)
	t.mu.Unlock()
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i].op, evs[j].op
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Seq < b.Seq
	})
	var sb strings.Builder
	for _, e := range evs {
		fmt.Fprintf(&sb, "%s %s #%d -> %s\n", e.op.Kind, e.op.Key, e.op.Seq, e.d)
	}
	return []byte(sb.String())
}

// StepInjector applies one fixed Decision to the Nth operation it is asked
// about (1-based, counted over ops passing Filter), and leaves every other
// operation clean. It is the building block of exhaustive crash matrices:
// run once to count ops, then re-run once per step with D set to a failure
// or a crash point.
type StepInjector struct {
	// N is the 1-based index of the op to hit. 0 hits nothing.
	N int64
	// D is the decision applied at op N.
	D Decision
	// Filter selects which ops count toward N; nil counts mutating
	// filesystem ops (create, write, sync, rename, remove, mkdir).
	Filter func(Op) bool

	mu sync.Mutex
	n  int64
}

// Mutating reports whether op changes filesystem state.
func Mutating(op Op) bool {
	switch op.Kind {
	case "create", "write", "sync", "rename", "remove", "mkdir":
		return true
	}
	return false
}

// Decide implements Injector.
func (s *StepInjector) Decide(op Op) Decision {
	filter := s.Filter
	if filter == nil {
		filter = Mutating
	}
	if !filter(op) {
		return Decision{}
	}
	s.mu.Lock()
	s.n++
	hit := s.n == s.N
	s.mu.Unlock()
	if hit {
		return s.D
	}
	return Decision{}
}

// Seen returns how many filtered ops this injector has counted.
func (s *StepInjector) Seen() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}
