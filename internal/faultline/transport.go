package faultline

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Transport is an http.RoundTripper that consults an Injector before every
// attempt: it can delay the attempt, fail it with a connection reset,
// answer with a synthesized 5xx without reaching the wrapped transport, or
// let the real response through with its body truncated after Short bytes
// (the read then fails with io.ErrUnexpectedEOF, like a connection dropped
// mid-transfer).
type Transport struct {
	// Inner is the wrapped transport; nil means http.DefaultTransport.
	Inner http.RoundTripper
	// Inj decides each attempt's fate; nil means no faults.
	Inj Injector
	// Trace, when non-nil, records every decision.
	Trace *Trace
	// KeyFunc derives the op key from a request. The default is
	// Method + " " + URL.Path — the host is deliberately excluded, because
	// httptest ports vary run to run and would break schedule determinism.
	KeyFunc func(*http.Request) string
	// Sleep implements injected latency; nil uses a context-aware timer.
	Sleep func(time.Duration)

	seq seqTracker
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inj := t.Inj
	if inj == nil {
		inj = Clean{}
	}
	keyf := t.KeyFunc
	if keyf == nil {
		keyf = func(r *http.Request) string { return r.Method + " " + r.URL.Path }
	}
	key := keyf(req)
	op := Op{Kind: "http", Key: key, Seq: t.seq.next("http", key)}
	d := inj.Decide(op)
	t.Trace.Record(op, d)

	if d.Latency > 0 {
		if t.Sleep != nil {
			t.Sleep(d.Latency)
		} else {
			timer := time.NewTimer(d.Latency)
			select {
			case <-req.Context().Done():
				timer.Stop()
				if req.Body != nil {
					req.Body.Close()
				}
				return nil, req.Context().Err()
			case <-timer.C:
			}
		}
	}
	if d.Err != nil {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, d.Err
	}
	if d.Status != 0 {
		if req.Body != nil {
			req.Body.Close()
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d %s", d.Status, http.StatusText(d.Status)),
			StatusCode: d.Status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     make(http.Header),
			Body:       io.NopCloser(strings.NewReader("")),
			Request:    req,
		}, nil
	}
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	resp, err := inner.RoundTrip(req)
	if err != nil || d.Short <= 0 {
		return resp, err
	}
	resp.Body = &truncBody{inner: resp.Body, remain: d.Short}
	resp.ContentLength = -1
	resp.Header.Del("Content-Length")
	return resp, nil
}

// truncBody yields at most remain bytes of the real body, then fails the
// read the way a dropped connection does.
type truncBody struct {
	inner  io.ReadCloser
	remain int
}

func (b *truncBody) Read(p []byte) (int, error) {
	if b.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if len(p) > b.remain {
		p = p[:b.remain]
	}
	n, err := b.inner.Read(p)
	b.remain -= n
	if err == io.EOF {
		// The real body ended before the truncation point; pass EOF through.
		return n, err
	}
	if b.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (b *truncBody) Close() error { return b.inner.Close() }
