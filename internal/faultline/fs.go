package faultline

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
)

// File is the subset of *os.File the snapshot store and log spools need.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file to stable storage.
	Sync() error
	// Close closes the file.
	Close() error
}

// FS is the filesystem surface internal/snapshot and internal/logio write
// through. OS() is the passthrough implementation; FaultFS wraps any FS
// with fault injection.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadDir(dir string) ([]os.DirEntry, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Stat(path string) (os.FileInfo, error)
	ReadFile(path string) ([]byte, error)
	// Create truncates/creates path for writing.
	Create(path string) (File, error)
	// Open opens path read-only (also used to fsync existing files).
	Open(path string) (File, error)
	// OpenFile is the general open.
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
}

type osFS struct{}

// OS returns the real-filesystem FS.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadDir(dir string) ([]os.DirEntry, error)    { return os.ReadDir(dir) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) Stat(path string) (os.FileInfo, error)        { return os.Stat(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Create(path string) (File, error)             { return os.Create(path) }
func (osFS) Open(path string) (File, error)               { return os.Open(path) }
func (osFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// FaultFS wraps an FS and consults an Injector before every operation.
//
// Crash points: when a Decision carries Crash, the operation is refused and
// the FaultFS freezes — every subsequent operation (reads included) fails
// with ErrCrashed, leaving the underlying directory exactly as the
// completed operations left it. Tests then reopen the directory with a
// fresh OS-backed store to assert crash recovery, the same way a restarted
// process would.
//
// Determinism: ops are keyed by path relative to Root (absolute temp-dir
// prefixes vary run to run and would otherwise change the fault schedule),
// and sequence-numbered per (kind, key) by the FaultFS itself.
type FaultFS struct {
	inner   FS
	inj     Injector
	trace   *Trace
	root    string
	seq     seqTracker
	crashed atomic.Bool
}

// NewFaultFS wraps inner. root, when non-empty, is stripped from op keys;
// trace may be nil.
func NewFaultFS(inner FS, inj Injector, root string, trace *Trace) *FaultFS {
	if inner == nil {
		inner = OS()
	}
	if inj == nil {
		inj = Clean{}
	}
	return &FaultFS{inner: inner, inj: inj, trace: trace, root: root}
}

// Crashed reports whether a crash point froze this filesystem.
func (f *FaultFS) Crashed() bool { return f.crashed.Load() }

func (f *FaultFS) key(path string) string {
	if f.root == "" {
		return path
	}
	if rel, err := filepath.Rel(f.root, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}

// decide runs one op through the injector: returns a non-nil error when the
// op must be refused (crash points freeze the FS first).
func (f *FaultFS) decide(kind, key string) (Decision, error) {
	if f.crashed.Load() {
		return Decision{}, ErrCrashed
	}
	op := Op{Kind: kind, Key: key, Seq: f.seq.next(kind, key)}
	d := f.inj.Decide(op)
	f.trace.Record(op, d)
	if d.Crash {
		f.crashed.Store(true)
		return d, fmt.Errorf("%w (at %s %s #%d)", ErrCrashed, kind, key, op.Seq)
	}
	if d.Err != nil && d.Short == 0 {
		return d, d.Err
	}
	return d, nil
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if _, err := f.decide("mkdir", f.key(path)); err != nil {
		return err
	}
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(dir string) ([]os.DirEntry, error) {
	if _, err := f.decide("readdir", f.key(dir)); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if _, err := f.decide("rename", f.key(oldpath)+"->"+f.key(newpath)); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error {
	if _, err := f.decide("remove", f.key(path)); err != nil {
		return err
	}
	return f.inner.Remove(path)
}

func (f *FaultFS) RemoveAll(path string) error {
	if _, err := f.decide("remove", f.key(path)); err != nil {
		return err
	}
	return f.inner.RemoveAll(path)
}

func (f *FaultFS) Stat(path string) (os.FileInfo, error) {
	if _, err := f.decide("stat", f.key(path)); err != nil {
		return nil, err
	}
	return f.inner.Stat(path)
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if _, err := f.decide("read", f.key(path)); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) Create(path string) (File, error) {
	if _, err := f.decide("create", f.key(path)); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, key: f.key(path), inner: inner}, nil
}

func (f *FaultFS) Open(path string) (File, error) {
	if _, err := f.decide("open", f.key(path)); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, key: f.key(path), inner: inner}, nil
}

func (f *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if _, err := f.decide("create", f.key(path)); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, key: f.key(path), inner: inner}, nil
}

// faultFile threads writes and fsyncs of one open file back through the
// owning FaultFS. A short-write decision persists Decision.Short bytes to
// the underlying file before failing, modeling a partial flush.
type faultFile struct {
	fs    *FaultFS
	key   string
	inner File
}

func (ff *faultFile) Write(p []byte) (int, error) {
	d, err := ff.fs.decide("write", ff.key)
	if err != nil {
		return 0, err
	}
	if d.Short > 0 {
		n := d.Short
		if n > len(p) {
			n = len(p)
		}
		n, _ = ff.inner.Write(p[:n])
		werr := d.Err
		if werr == nil {
			werr = fmt.Errorf("%w: short write on %s", ErrInjected, ff.key)
		}
		return n, werr
	}
	return ff.inner.Write(p)
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.fs.crashed.Load() {
		return 0, ErrCrashed
	}
	return ff.inner.Read(p)
}

func (ff *faultFile) Sync() error {
	if _, err := ff.fs.decide("sync", ff.key); err != nil {
		return err
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Close after a crash still closes the real descriptor (no fd leaks in
	// long matrix runs) but reports the frozen state.
	err := ff.inner.Close()
	if ff.fs.crashed.Load() {
		return ErrCrashed
	}
	return err
}
