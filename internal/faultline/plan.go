package faultline

import (
	"fmt"
	"time"
)

// PlanConfig sets per-mille (‰, out of 1000) fault probabilities for the
// seeded Plan injector. Filesystem probabilities are evaluated per matching
// op kind; HTTP probabilities per "http" op. The zero config injects
// nothing.
type PlanConfig struct {
	// Filesystem faults.
	WriteErr   int // ‰ of write ops failing outright
	ShortWrite int // ‰ of write ops persisting a prefix then failing
	SyncErr    int // ‰ of fsync ops failing
	RenameErr  int // ‰ of rename ops failing
	CreateErr  int // ‰ of create/openfile ops failing
	Crash      int // ‰ of mutating fs ops becoming crash points (freeze)

	// HTTP faults.
	Reset       int           // ‰ of attempts failing with a connection reset
	ServerErr   int           // ‰ of attempts answered with a synthesized 5xx
	PartialBody int           // ‰ of responses truncated mid-body
	Latency     int           // ‰ of attempts delayed
	MaxLatency  time.Duration // upper bound for injected delays
}

// Plan is a pure, seedable injector: Decide is a function of (Seed, Op)
// only, with no mutable state, so a workload whose op stream is
// deterministic sees the identical fault schedule on every run regardless
// of goroutine interleaving or wall-clock timing.
type Plan struct {
	Seed uint64
	Cfg  PlanConfig
}

// NewPlan returns a Plan for seed with cfg.
func NewPlan(seed uint64, cfg PlanConfig) *Plan { return &Plan{Seed: seed, Cfg: cfg} }

// splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds (seed, kind, key, seq) into one well-mixed draw.
func (p *Plan) hash(op Op) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	fold := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= 1099511628211
		}
	}
	fold(op.Kind)
	h ^= 0xff
	h *= 1099511628211
	fold(op.Key)
	h ^= op.Seq
	return mix64(h ^ mix64(p.Seed))
}

// pick maps a draw onto cumulative per-mille thresholds and returns the
// index of the band hit, or -1 for none. A second draw for magnitudes is
// derived by re-mixing.
func pick(draw uint64, bands ...int) int {
	r := int(draw % 1000)
	acc := 0
	for i, b := range bands {
		acc += b
		if r < acc {
			return i
		}
	}
	return -1
}

// Decide implements Injector.
func (p *Plan) Decide(op Op) Decision {
	draw := p.hash(op)
	mag := mix64(draw) // independent-ish draw for magnitudes
	c := p.Cfg
	errFor := func() error {
		return fmt.Errorf("%w: %s %s #%d", ErrInjected, op.Kind, op.Key, op.Seq)
	}
	switch op.Kind {
	case "write":
		switch pick(draw, c.WriteErr, c.ShortWrite, c.Crash) {
		case 0:
			return Decision{Err: errFor()}
		case 1:
			return Decision{Short: 1 + int(mag%256)}
		case 2:
			return Decision{Crash: true}
		}
	case "sync":
		switch pick(draw, c.SyncErr, c.Crash) {
		case 0:
			return Decision{Err: errFor()}
		case 1:
			return Decision{Crash: true}
		}
	case "rename":
		switch pick(draw, c.RenameErr, c.Crash) {
		case 0:
			return Decision{Err: errFor()}
		case 1:
			return Decision{Crash: true}
		}
	case "create", "mkdir", "remove":
		switch pick(draw, c.CreateErr, c.Crash) {
		case 0:
			return Decision{Err: errFor()}
		case 1:
			return Decision{Crash: true}
		}
	case "http":
		switch pick(draw, c.Reset, c.ServerErr, c.PartialBody, c.Latency) {
		case 0:
			return Decision{Err: errFor()}
		case 1:
			// Alternate 502/503 deterministically off the magnitude draw.
			st := 502
			if mag&1 == 1 {
				st = 503
			}
			return Decision{Status: st}
		case 2:
			return Decision{Short: 1 + int(mag%128)}
		case 3:
			max := c.MaxLatency
			if max <= 0 {
				max = 50 * time.Millisecond
			}
			return Decision{Latency: time.Duration(1 + mag%uint64(max))}
		}
	}
	return Decision{}
}
