package faultline

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Same seed, same op stream, same decisions — regardless of the order the
// ops are presented in.
func TestPlanDeterministic(t *testing.T) {
	cfg := PlanConfig{
		WriteErr: 100, ShortWrite: 50, SyncErr: 80, RenameErr: 80, Crash: 30,
		Reset: 100, ServerErr: 100, PartialBody: 50, Latency: 50, MaxLatency: 10 * time.Millisecond,
	}
	ops := []Op{}
	for _, kind := range []string{"write", "sync", "rename", "create", "http"} {
		for _, key := range []string{"a/file", "b/file", "POST /v1/segments"} {
			for seq := uint64(1); seq <= 50; seq++ {
				ops = append(ops, Op{Kind: kind, Key: key, Seq: seq})
			}
		}
	}
	p1 := NewPlan(7, cfg)
	p2 := NewPlan(7, cfg)
	faults := 0
	for i := len(ops) - 1; i >= 0; i-- { // reversed order on purpose
		d1, d2 := p1.Decide(ops[i]), p2.Decide(ops[len(ops)-1-i])
		want := p2.Decide(ops[i])
		if d1.String() != want.String() {
			t.Fatalf("op %v: %q vs %q", ops[i], d1, want)
		}
		_ = d2
		if d1.fault() {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("plan with ~10% rates injected nothing over 750 ops")
	}
	p3 := NewPlan(8, cfg)
	diff := 0
	for _, op := range ops {
		if p1.Decide(op).String() != p3.Decide(op).String() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestFaultFSErrorAndShortWrite(t *testing.T) {
	dir := t.TempDir()
	// Fail the 2nd write op outright.
	step := &StepInjector{N: 2, D: Decision{Err: ErrInjected}, Filter: func(op Op) bool { return op.Kind == "write" }}
	fs := NewFaultFS(OS(), step, dir, nil)
	f, err := fs.Create(filepath.Join(dir, "x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrInjected) {
		t.Fatalf("second write err = %v, want ErrInjected", err)
	}
	f.Close()

	// Short write: 2 bytes persist, then the op fails.
	short := &StepInjector{N: 1, D: Decision{Short: 2}, Filter: func(op Op) bool { return op.Kind == "write" }}
	fs2 := NewFaultFS(OS(), short, dir, nil)
	g, err := fs2.Create(filepath.Join(dir, "y"))
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Write([]byte("hello"))
	if n != 2 || !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	g.Close()
	got, _ := os.ReadFile(filepath.Join(dir, "y"))
	if string(got) != "he" {
		t.Fatalf("persisted %q, want %q", got, "he")
	}
}

func TestFaultFSCrashFreezes(t *testing.T) {
	dir := t.TempDir()
	tr := &Trace{}
	step := &StepInjector{N: 1, D: Decision{Crash: true}, Filter: func(op Op) bool { return op.Kind == "rename" }}
	fs := NewFaultFS(OS(), step, dir, tr)

	f, err := fs.Create(filepath.Join(dir, "a.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	err = fs.Rename(filepath.Join(dir, "a.tmp"), filepath.Join(dir, "a"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("rename at crash point: %v", err)
	}
	if !fs.Crashed() {
		t.Fatal("fs not frozen after crash point")
	}
	// The rename did not apply, and every later op fails.
	if _, err := os.Stat(filepath.Join(dir, "a")); !os.IsNotExist(err) {
		t.Fatal("crashed rename was applied")
	}
	if _, err := fs.Create(filepath.Join(dir, "b")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("create after crash: %v", err)
	}
	if _, err := fs.ReadFile(filepath.Join(dir, "a.tmp")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v", err)
	}
	// The pre-crash bytes are intact when reopened outside the frozen shim.
	got, err := os.ReadFile(filepath.Join(dir, "a.tmp"))
	if err != nil || string(got) != "data" {
		t.Fatalf("pre-crash file: %q, %v", got, err)
	}
}

// Op keys are relative to the root, so schedules survive temp-dir renaming.
func TestFaultFSKeysRelativeToRoot(t *testing.T) {
	dir := t.TempDir()
	tr := &Trace{}
	fs := NewFaultFS(OS(), Clean{}, dir, tr)
	f, _ := fs.Create(filepath.Join(dir, "sub", "..", "file"))
	if f != nil {
		f.Close()
	}
	log := string(tr.Log())
	if bytes.Contains([]byte(log), []byte(dir)) {
		t.Fatalf("trace leaks absolute path:\n%s", log)
	}
}

func TestTraceSortedAndStable(t *testing.T) {
	tr := &Trace{}
	tr.Record(Op{Kind: "write", Key: "b", Seq: 2}, Decision{})
	tr.Record(Op{Kind: "sync", Key: "a", Seq: 1}, Decision{Err: ErrInjected})
	tr.Record(Op{Kind: "write", Key: "b", Seq: 1}, Decision{Short: 3})

	tr2 := &Trace{}
	tr2.Record(Op{Kind: "write", Key: "b", Seq: 1}, Decision{Short: 3})
	tr2.Record(Op{Kind: "write", Key: "b", Seq: 2}, Decision{})
	tr2.Record(Op{Kind: "sync", Key: "a", Seq: 1}, Decision{Err: ErrInjected})

	if !bytes.Equal(tr.Log(), tr2.Log()) {
		t.Fatalf("same events, different logs:\n%s\nvs\n%s", tr.Log(), tr2.Log())
	}
	if tr.Faults() != 2 {
		t.Fatalf("Faults() = %d, want 2", tr.Faults())
	}
}

func TestTransportFaults(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("0123456789abcdef"))
	}))
	defer srv.Close()

	get := func(tp *Transport) (*http.Response, []byte, error) {
		cl := &http.Client{Transport: tp}
		resp, err := cl.Get(srv.URL + "/v1/x")
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		b, rerr := io.ReadAll(resp.Body)
		return resp, b, rerr
	}

	// Reset.
	_, _, err := get(&Transport{Inj: &StepInjector{N: 1, D: Decision{Err: ErrInjected}, Filter: func(op Op) bool { return op.Kind == "http" }}})
	if err == nil || !errors.Is(errors.Unwrap(err), ErrInjected) && !errors.Is(err, ErrInjected) {
		t.Fatalf("reset: err = %v, want ErrInjected", err)
	}

	// Synthesized 5xx never reaches the server's handler output.
	resp, body, err := get(&Transport{Inj: &StepInjector{N: 1, D: Decision{Status: 503}, Filter: func(op Op) bool { return op.Kind == "http" }}})
	if err != nil || resp.StatusCode != 503 || len(body) != 0 {
		t.Fatalf("5xx: status=%v body=%q err=%v", resp, body, err)
	}

	// Truncated body: 4 bytes then unexpected EOF.
	resp, body, err = get(&Transport{Inj: &StepInjector{N: 1, D: Decision{Short: 4}, Filter: func(op Op) bool { return op.Kind == "http" }}})
	if resp.StatusCode != 200 || string(body) != "0123" || !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated: status=%d body=%q err=%v", resp.StatusCode, body, err)
	}

	// Trace keys exclude the host (ports vary run to run).
	tr := &Trace{}
	if _, _, err := get(&Transport{Trace: tr}); err != nil {
		t.Fatal(err)
	}
	if got := string(tr.Log()); got != "http GET /v1/x #1 -> ok\n" {
		t.Fatalf("trace log = %q", got)
	}
}
