package pipeline

import (
	"fmt"
	"testing"

	"cellspot/internal/aschar"
	"cellspot/internal/netaddr"
	"cellspot/internal/obs"
)

// The equivalence suite: the serial path (Parallelism: 1) is the oracle,
// and every parallel run must reproduce it bit-for-bit. Seeds {1,2,3} ×
// scales {0.005, 0.01} cover distinct worlds; Parallelism: 8 exceeds the
// shard worker cap on most runners, exercising work stealing and merge
// ordering regardless of GOMAXPROCS.

// equivCase is one seed×scale cell of the equivalence matrix.
type equivCase struct {
	seed  uint64
	scale float64
}

func equivCases(t *testing.T) []equivCase {
	var out []equivCase
	for _, seed := range []uint64{1, 2, 3} {
		for _, scale := range []float64{0.005, 0.01} {
			if testing.Short() && !(seed == 1 && scale == 0.005) {
				continue
			}
			out = append(out, equivCase{seed: seed, scale: scale})
		}
	}
	return out
}

func equivConfig(seed uint64, scale float64, parallelism int) Config {
	cfg := DefaultConfig()
	cfg.World.Seed = seed
	cfg.World.Scale = scale
	cfg.Beacon.Seed = seed + 1
	cfg.Demand.Seed = seed + 2
	cfg.Parallelism = parallelism
	// Metrics on for every equivalence run: recording per-stage timings and
	// par counters must not perturb any output the suite compares.
	cfg.Metrics = obs.NewRegistry()
	return cfg
}

func diffSets(t *testing.T, name string, a, b netaddr.Set) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Errorf("%s: size %d (serial) vs %d (parallel)", name, a.Len(), b.Len())
	}
	for blk := range a {
		if !b.Has(blk) {
			t.Errorf("%s: %v detected serially but not in parallel", name, blk)
			return
		}
	}
	for blk := range b {
		if !a.Has(blk) {
			t.Errorf("%s: %v detected in parallel but not serially", name, blk)
			return
		}
	}
}

func diffFilter(t *testing.T, a, b aschar.FilterResult) {
	t.Helper()
	stages := []struct {
		name string
		s, p []uint32
	}{
		{"Tagged", a.Tagged, b.Tagged},
		{"AfterRule1", a.AfterRule1, b.AfterRule1},
		{"AfterRule2", a.AfterRule2, b.AfterRule2},
		{"AfterRule3", a.AfterRule3, b.AfterRule3},
	}
	for _, st := range stages {
		if len(st.s) != len(st.p) {
			t.Errorf("filter %s: %d ASes (serial) vs %d (parallel)", st.name, len(st.s), len(st.p))
			continue
		}
		for i := range st.s {
			if st.s[i] != st.p[i] {
				t.Errorf("filter %s[%d]: AS%d (serial) vs AS%d (parallel)", st.name, i, st.s[i], st.p[i])
				break
			}
		}
	}
}

func diffMetrics(t *testing.T, id string, a, b map[string]float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Errorf("%s: metric count %d (serial) vs %d (parallel)", id, len(a), len(b))
	}
	for k, va := range a {
		vb, ok := b[k]
		if !ok {
			t.Errorf("%s: metric %q missing from parallel run", id, k)
			continue
		}
		if va != vb {
			t.Errorf("%s: metric %q = %v (serial) vs %v (parallel)", id, k, va, vb)
		}
	}
}

// globalExperiments are the experiments that draw on the global run alone;
// caseExperiments need the three-carrier case study.
var globalExperiments = []string{"T1", "T2", "F1", "F2", "T4", "T5", "T6", "F4", "F5", "F7", "T7", "F9", "F10", "T8", "F11", "F12", "X2"}
var caseExperiments = []string{"F3", "T3", "F6", "F8"}

func TestParallelSerialEquivalence(t *testing.T) {
	for _, c := range equivCases(t) {
		t.Run(fmt.Sprintf("seed%d_scale%g", c.seed, c.scale), func(t *testing.T) {
			serial, err := Run(equivConfig(c.seed, c.scale, 1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := Run(equivConfig(c.seed, c.scale, 8))
			if err != nil {
				t.Fatal(err)
			}

			// World ground truth must match before the pipeline's outputs can.
			if len(serial.World.Blocks) != len(parallel.World.Blocks) {
				t.Fatalf("world blocks: %d (serial) vs %d (parallel)", len(serial.World.Blocks), len(parallel.World.Blocks))
			}
			for i := range serial.World.Blocks {
				s, p := serial.World.Blocks[i], parallel.World.Blocks[i]
				if s.Block != p.Block || s.ASN != p.ASN || s.Demand != p.Demand ||
					s.Cellular != p.Cellular || s.CellLabelProb != p.CellLabelProb ||
					s.HitsOverride != p.HitsOverride {
					t.Fatalf("world block %d differs: %+v vs %+v", i, s, p)
				}
			}

			// BEACON tallies, block by block.
			if serial.Beacon.Blocks() != parallel.Beacon.Blocks() {
				t.Errorf("beacon blocks: %d vs %d", serial.Beacon.Blocks(), parallel.Beacon.Blocks())
			}
			for blk, sc := range serial.Beacon.PerBlock {
				pc := parallel.Beacon.PerBlock[blk]
				if pc == nil || *pc != *sc {
					t.Fatalf("beacon counts for %v differ: %+v vs %+v", blk, sc, pc)
				}
			}

			// DEMAND datasets, block by block in canonical order.
			if serial.Demand.Blocks() != parallel.Demand.Blocks() {
				t.Errorf("demand blocks: %d vs %d", serial.Demand.Blocks(), parallel.Demand.Blocks())
			}
			serial.Demand.Each(func(blk netaddr.Block, du float64) {
				if got := parallel.Demand.DU(blk); got != du {
					t.Fatalf("demand for %v: %v vs %v", blk, du, got)
				}
			})

			diffSets(t, "Detected", serial.Detected, parallel.Detected)
			diffFilter(t, serial.Filter, parallel.Filter)

			// Experiment metrics: identical maps from both runs.
			envS := &Env{Cfg: serial.Config, global: serial}
			envP := &Env{Cfg: parallel.Config, global: parallel}
			for _, id := range globalExperiments {
				outS, err := RunExperiment(id, envS)
				if err != nil {
					t.Fatalf("%s (serial): %v", id, err)
				}
				outP, err := RunExperiment(id, envP)
				if err != nil {
					t.Fatalf("%s (parallel): %v", id, err)
				}
				diffMetrics(t, id, outS.Metrics, outP.Metrics)
			}
		})
	}
}

// TestParallelSerialEquivalenceCaseStudy covers the paper-scale validation
// world: its generation stays serial, but the BEACON/DEMAND/classify stages
// shard, so the case-study experiments must also be parallelism-invariant.
// The case study is scale-independent, so one scale per seed suffices.
func TestParallelSerialEquivalenceCaseStudy(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			serial, err := RunCaseStudy(equivConfig(seed, 0.005, 1))
			if err != nil {
				t.Fatal(err)
			}
			parallel, err := RunCaseStudy(equivConfig(seed, 0.005, 8))
			if err != nil {
				t.Fatal(err)
			}
			diffSets(t, "Detected", serial.Detected, parallel.Detected)
			diffFilter(t, serial.Filter, parallel.Filter)

			envS := &Env{Cfg: serial.Config, caseStudy: serial}
			envP := &Env{Cfg: parallel.Config, caseStudy: parallel}
			for _, id := range caseExperiments {
				outS, err := RunExperiment(id, envS)
				if err != nil {
					t.Fatalf("%s (serial): %v", id, err)
				}
				outP, err := RunExperiment(id, envP)
				if err != nil {
					t.Fatalf("%s (parallel): %v", id, err)
				}
				diffMetrics(t, id, outS.Metrics, outP.Metrics)
			}
		})
	}
}
