package pipeline

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"cellspot/internal/aschar"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
	"cellspot/internal/report"
	"cellspot/internal/stats"
)

// Output is one experiment's result: rendered text plus the headline
// metrics measured, paired with the paper's published values for the same
// keys so EXPERIMENTS.md can diff them.
type Output struct {
	ID      string
	Title   string
	Text    string
	Metrics map[string]float64 // measured
	Paper   map[string]float64 // published
}

// Env lazily materializes the two pipeline runs experiments draw on: the
// global world and the paper-scale three-carrier case study. Lazy
// materialization is mutex-guarded, so an Env may be shared by concurrent
// experiment runners (parallel benchmarks, the race-detector CI).
type Env struct {
	Cfg       Config
	mu        sync.Mutex
	global    *Result
	caseStudy *Result
}

// NewEnv prepares an experiment environment.
func NewEnv(cfg Config) *Env { return &Env{Cfg: cfg} }

// Global returns the global-world pipeline run, computing it on first use.
func (e *Env) Global() (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.global == nil {
		r, err := Run(e.Cfg)
		if err != nil {
			return nil, err
		}
		e.global = r
	}
	return e.global, nil
}

// Case returns the case-study pipeline run, computing it on first use.
func (e *Env) Case() (*Result, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.caseStudy == nil {
		r, err := RunCaseStudy(e.Cfg)
		if err != nil {
			return nil, err
		}
		e.caseStudy = r
	}
	return e.caseStudy, nil
}

// ExperimentIDs lists every experiment in paper order, followed by the
// extension experiments (X1: temporal evolution, X2: cellular map).
func ExperimentIDs() []string {
	return []string{"T1", "T2", "F1", "F2", "F3", "T3", "T4", "T5", "T6",
		"F4", "F5", "F6", "F7", "T7", "F8", "F9", "F10", "T8", "F11", "F12",
		"X1", "X2"}
}

// RunExperiment executes one experiment by ID.
func RunExperiment(id string, env *Env) (*Output, error) {
	fn, ok := experimentFuncs[id]
	if !ok {
		return nil, fmt.Errorf("pipeline: unknown experiment %q (known: %s)",
			id, strings.Join(ExperimentIDs(), ", "))
	}
	return fn(env)
}

var experimentFuncs = map[string]func(*Env) (*Output, error){
	"T1": experimentT1, "T2": experimentT2, "F1": experimentF1,
	"F2": experimentF2, "F3": experimentF3, "T3": experimentT3,
	"T4": experimentT4, "T5": experimentT5, "T6": experimentT6,
	"F4": experimentF4, "F5": experimentF5, "F6": experimentF6,
	"F7": experimentF7, "T7": experimentT7, "F8": experimentF8,
	"F9": experimentF9, "F10": experimentF10, "T8": experimentT8,
	"F11": experimentF11, "F12": experimentF12,
	"X1": experimentX1, "X2": experimentX2,
}

// experimentT1 reprints the paper's qualitative prior-work comparison; it
// is documentation, not a measurement.
func experimentT1(*Env) (*Output, error) {
	t := report.NewTable("Table 1 — Existing analyses of cellular network usage (qualitative, reprinted)",
		"Source", "Granularity", "Global", "Cell-vs-fixed comparison")
	rows := [][4]string{
		{"Ericsson Mobility Report", "Continent", "yes", "yes"},
		{"Cisco VNI", "Continent", "yes", "yes"},
		{"Sandvine Global Internet Phenomena", "Continent", "yes", "no"},
		{"Akamai State of the Internet", "Country", "yes", "no"},
		{"OpenSignal State of Mobile Networks", "Country", "yes", "no"},
		{"Flow analysis (Zhang et al.)", "Operator", "no", "no"},
		{"Instrumented handsets (Falaki et al.)", "Handset", "no", "no"},
		{"Cell Spotting (this reproduction)", "IP-level", "yes", "yes"},
	}
	for _, r := range rows {
		t.Row(r[0], r[1], r[2], r[3])
	}
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "T1", Title: "Prior-work comparison", Text: sb.String(),
		Metrics: map[string]float64{}, Paper: map[string]float64{}}, nil
}

// experimentT2 reproduces Table 2: dataset sizes, plus the BEACON-vs-DEMAND
// coverage statistics of §3.2.
func experimentT2(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	scale := r.Config.World.Scale

	b24 := r.Beacon.CountFamily(netaddr.IPv4)
	b48 := r.Beacon.CountFamily(netaddr.IPv6)
	d24 := r.Demand.CountFamily(netaddr.IPv4)
	d48 := r.Demand.CountFamily(netaddr.IPv6)

	// Coverage: share of DEMAND blocks and demand seen in BEACON.
	var coveredBlocks int
	var coveredDU, totalDU float64
	r.Demand.Each(func(b netaddr.Block, du float64) {
		totalDU += du
		if _, ok := r.Beacon.PerBlock[b]; ok {
			coveredBlocks++
			coveredDU += du
		}
	})
	blockCov := float64(coveredBlocks) / float64(r.Demand.Blocks())
	demandCov := coveredDU / totalDU

	t := report.NewTable(fmt.Sprintf("Table 2 — CDN datasets (world scale %.3g; paper counts in parentheses)", scale),
		"Source", "Period", "/24", "/48")
	t.Row("BEACON", "Dec 2016 (monthly)",
		fmt.Sprintf("%s (4.7M x scale = %s)", report.Int(b24), report.Int(int(4_700_000*scale))),
		fmt.Sprintf("%s (1.8M x scale = %s)", report.Int(b48), report.Int(int(1_800_000*scale))))
	t.Row("DEMAND", "Dec 24-31 2016 (week)",
		fmt.Sprintf("%s (6.8M x scale = %s)", report.Int(d24), report.Int(int(6_800_000*scale))),
		fmt.Sprintf("%s (909K x scale = %s)", report.Int(d48), report.Int(int(909_000*scale))))
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "BEACON covers %s of DEMAND blocks (paper: 73%%) and %s of platform demand (paper: 92%%).\n",
		report.Pct(blockCov, 1), report.Pct(demandCov, 1))

	return &Output{
		ID: "T2", Title: "Dataset sizes", Text: sb.String(),
		Metrics: map[string]float64{
			"beacon_24_per_scale": float64(b24) / scale,
			"beacon_48_per_scale": float64(b48) / scale,
			"demand_24_per_scale": float64(d24) / scale,
			"block_coverage":      blockCov,
			"demand_coverage":     demandCov,
		},
		Paper: map[string]float64{
			"beacon_24_per_scale": 4_700_000,
			"beacon_48_per_scale": 1_800_000,
			"demand_24_per_scale": 6_800_000,
			"block_coverage":      0.73,
			"demand_coverage":     0.92,
		},
	}, nil
}

// experimentT4 reproduces Table 4: detected cellular subnets per continent
// and their share of active space.
func experimentT4(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	scale := r.Config.World.Scale
	t := report.NewTable(fmt.Sprintf("Table 4 — Detected cellular subnets, Dec 2016 (world scale %.3g)", scale),
		"Continent", "#/24", "#/48", "% active v4", "% active v6")
	paper24 := map[geo.Continent]int{
		geo.Africa: 79091, geo.Asia: 86618, geo.Europe: 65442,
		geo.NorthAmerica: 27595, geo.Oceania: 4352, geo.SouthAmerica: 87589,
	}
	metrics := map[string]float64{}
	paper := map[string]float64{
		"pct_active_v4_AF": 0.532, "pct_active_v4_AS": 0.057,
		"pct_active_v4_EU": 0.048, "pct_active_v4_NA": 0.021,
		"pct_active_v4_OC": 0.054, "pct_active_v4_SA": 0.226,
		"total_cell24_per_scale": 350687,
		"total_cell48_per_scale": 23230,
		"global_pct_active_v4":   0.073,
		"global_pct_active_v6":   0.012,
	}
	var tot24, tot48, act24, act48 int
	for _, ct := range geo.Continents() {
		cs := r.Macro.ByContinent[ct]
		pct4, pct6 := 0.0, 0.0
		if cs.Active24 > 0 {
			pct4 = float64(cs.Cell24) / float64(cs.Active24)
		}
		if cs.Active48 > 0 {
			pct6 = float64(cs.Cell48) / float64(cs.Active48)
		}
		t.Row(ct.String(),
			fmt.Sprintf("%s (paper %s x scale)", report.Int(cs.Cell24), report.Int(paper24[ct])),
			report.Int(cs.Cell48), report.Pct(pct4, 1), report.Pct(pct6, 2))
		metrics["pct_active_v4_"+ct.String()] = pct4
		tot24 += cs.Cell24
		tot48 += cs.Cell48
		act24 += cs.Active24
		act48 += cs.Active48
	}
	t.Row("Total", report.Int(tot24), report.Int(tot48),
		report.Pct(float64(tot24)/float64(act24), 1),
		report.Pct(float64(tot48)/float64(act48), 2))
	metrics["total_cell24_per_scale"] = float64(tot24) / scale
	metrics["total_cell48_per_scale"] = float64(tot48) / scale
	metrics["global_pct_active_v4"] = float64(tot24) / float64(act24)
	metrics["global_pct_active_v6"] = float64(tot48) / float64(act48)

	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "T4", Title: "Cellular subnet census", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

// experimentT5 reproduces Table 5: the AS filtering funnel.
func experimentT5(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	r1, r2, r3 := r.Filter.Removed()
	t := report.NewTable("Table 5 — AS filtering rules",
		"Rule", "Filtered", "Remaining", "Paper filtered", "Paper remaining")
	t.Row("Straw-man: >=1 cellular CIDR", "-", report.Int(len(r.Filter.Tagged)), "-", "1,263")
	t.Row("1. cellular demand < 0.1 DU", report.Int(r1), report.Int(len(r.Filter.AfterRule1)), "493", "770")
	t.Row("2. < 300 beacon hits", report.Int(r2), report.Int(len(r.Filter.AfterRule2)), "53", "717")
	t.Row("3. CAIDA class (Content/unknown)", report.Int(r3), report.Int(len(r.Filter.AfterRule3)), "49", "668")
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	// Reverse-DNS corroboration of rule 3 (paper §5: proxy PTR names like
	// google-proxy-*.google.com confirmed the exclusions).
	rule3Removed := map[uint32]bool{}
	for _, a := range r.Filter.AfterRule2 {
		rule3Removed[a] = true
	}
	for _, a := range r.Filter.AfterRule3 {
		delete(rule3Removed, a)
	}
	confirmed, falseAlarms := 0, 0
	for a := range rule3Removed {
		if c := r.RDNS[a]; c != nil && c.ProxySuspect() {
			confirmed++
		}
	}
	for _, a := range r.Filter.AfterRule3 {
		if c := r.RDNS[a]; c != nil && c.ProxySuspect() {
			falseAlarms++
		}
	}
	fmt.Fprintf(&sb, "Reverse-DNS corroboration: %d of %d rule-3 removals have proxy-style PTR names;\n"+
		"%d surviving cellular ASes look proxy-like by rDNS (paper confirmed its removals the same way).\n",
		confirmed, len(rule3Removed), falseAlarms)
	return &Output{ID: "T5", Title: "AS filtering funnel", Text: sb.String(),
		Metrics: map[string]float64{
			"tagged":         float64(len(r.Filter.Tagged)),
			"removed1":       float64(r1),
			"removed2":       float64(r2),
			"removed3":       float64(r3),
			"final":          float64(len(r.Filter.AfterRule3)),
			"rdns_confirmed": float64(confirmed),
			"rdns_survivors": float64(falseAlarms),
		},
		Paper: map[string]float64{
			"tagged": 1263, "removed1": 493, "removed2": 53,
			"removed3": 49, "final": 668,
		},
	}, nil
}

// experimentT6 reproduces Table 6: cellular ASes per continent.
func experimentT6(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	perCont := map[geo.Continent]int{}
	countries := map[geo.Continent]map[string]bool{}
	for _, n := range r.Networks {
		cc, ok := r.CountryOf(n.ASN)
		if !ok {
			continue
		}
		c, ok := r.World.Countries.Lookup(cc)
		if !ok {
			continue
		}
		perCont[c.Continent]++
		if countries[c.Continent] == nil {
			countries[c.Continent] = map[string]bool{}
		}
		countries[c.Continent][cc] = true
	}
	paperN := map[geo.Continent]float64{
		geo.Africa: 114, geo.Asia: 213, geo.Europe: 185,
		geo.NorthAmerica: 93, geo.Oceania: 16, geo.SouthAmerica: 48,
	}
	paperAvg := map[geo.Continent]float64{
		geo.Africa: 2.6, geo.Asia: 4.5, geo.Europe: 4.2,
		geo.NorthAmerica: 3.9, geo.Oceania: 2.0, geo.SouthAmerica: 4.0,
	}
	t := report.NewTable("Table 6 — Detected cellular ASes by continent",
		"", "AF", "AS", "EU", "NA", "OC", "SA")
	rowN := []string{"# ASN"}
	rowA := []string{"Avg./country"}
	rowPN := []string{"paper # ASN"}
	rowPA := []string{"paper avg."}
	metrics := map[string]float64{}
	paper := map[string]float64{}
	for _, ct := range geo.Continents() {
		n := perCont[ct]
		avg := 0.0
		if len(countries[ct]) > 0 {
			avg = float64(n) / float64(len(countries[ct]))
		}
		rowN = append(rowN, report.Int(n))
		rowA = append(rowA, report.F(avg, 1))
		rowPN = append(rowPN, report.F(paperN[ct], 0))
		rowPA = append(rowPA, report.F(paperAvg[ct], 1))
		metrics["ases_"+ct.String()] = float64(n)
		paper["ases_"+ct.String()] = paperN[ct]
	}
	t.Row(rowN...)
	t.Row(rowA...)
	t.Row(rowPN...)
	t.Row(rowPA...)
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "T6", Title: "Cellular AS census", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

// experimentT7 reproduces Table 7: the top ten cellular ASes by demand.
func experimentT7(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	ranked := aschar.RankByCellDU(r.Networks)
	totalCell := 0.0
	for _, n := range ranked {
		totalCell += n.CellDU
	}
	t := report.NewTable("Table 7 — Top ten cellular ASes by demand",
		"Rank", "Country", "Demand (% of cellular)", "Mixed", "Paper (%, country, mixed)")
	paperRows := []struct {
		cc    string
		share float64
		mixed string
	}{
		{"US", 9.4, ""}, {"US", 9.2, ""}, {"US", 5.7, ""}, {"IN", 4.5, ""},
		{"US", 3.8, ""}, {"JP", 3.3, ""}, {"JP", 2.4, "yes"}, {"ID", 1.5, ""},
		{"AU", 1.2, "yes"}, {"JP", 1.0, "yes"},
	}
	metrics := map[string]float64{}
	paper := map[string]float64{}
	top10 := 0.0
	for i := 0; i < 10 && i < len(ranked); i++ {
		n := ranked[i]
		cc, _ := r.CountryOf(n.ASN)
		share := n.CellDU / totalCell
		top10 += share
		mixed := ""
		if !n.Dedicated {
			mixed = "yes"
		}
		pr := paperRows[i]
		t.Row(fmt.Sprintf("%d", i+1), cc, report.Pct(share, 1), mixed,
			fmt.Sprintf("%.1f%%, %s, %s", pr.share, pr.cc, orDash(pr.mixed)))
		metrics[fmt.Sprintf("rank%d_share", i+1)] = share
		paper[fmt.Sprintf("rank%d_share", i+1)] = pr.share / 100
	}
	metrics["top10_share"] = top10
	paper["top10_share"] = 0.38
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "Top-10 ASes hold %s of global cellular demand (paper: 38%%).\n",
		report.Pct(top10, 1))
	return &Output{ID: "T7", Title: "Top-10 cellular ASes", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// experimentT8 reproduces Table 8: cellular demand statistics by continent.
func experimentT8(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 8 — Cellular demand by continent (China excluded)",
		"Continent", "Cellular frac", "Share of global cellular", "Subscribers (M)", "Demand/1000 subs")
	paperVals := map[geo.Continent][4]float64{
		geo.Oceania:      {0.234, 0.030, 43.3, 0.0113},
		geo.Africa:       {0.255, 0.029, 954, 0.0005},
		geo.SouthAmerica: {0.125, 0.041, 499, 0.0013},
		geo.Europe:       {0.118, 0.159, 968, 0.0026},
		geo.NorthAmerica: {0.166, 0.350, 594, 0.0095},
		geo.Asia:         {0.260, 0.389, 2766, 0.0022},
	}
	metrics := map[string]float64{}
	paper := map[string]float64{}
	order := []geo.Continent{geo.Oceania, geo.Africa, geo.SouthAmerica,
		geo.Europe, geo.NorthAmerica, geo.Asia}
	for _, ct := range order {
		cs := r.Macro.ByContinent[ct]
		globalShare := 0.0
		if r.Macro.GlobalCellDU > 0 {
			globalShare = cs.CellDU / r.Macro.GlobalCellDU
		}
		pv := paperVals[ct]
		t.Row(ct.Name(),
			fmt.Sprintf("%s (paper %.1f%%)", report.Pct(cs.CellFrac(), 1), pv[0]*100),
			fmt.Sprintf("%s (paper %.1f%%)", report.Pct(globalShare, 1), pv[1]*100),
			fmt.Sprintf("%.1f (paper %.0f)", cs.SubscribersM, pv[2]),
			fmt.Sprintf("%.4f (paper %.4f)", cs.DemandPerKSubscribers(), pv[3]))
		key := ct.String()
		metrics["cellfrac_"+key] = cs.CellFrac()
		metrics["globalshare_"+key] = globalShare
		paper["cellfrac_"+key] = pv[0]
		paper["globalshare_"+key] = pv[1]
	}
	t.Row("Overall", report.Pct(r.Macro.GlobalCellFrac(), 1)+" (paper 16.2%)", "100%", "", "")
	metrics["global_cellfrac"] = r.Macro.GlobalCellFrac()
	paper["global_cellfrac"] = 0.162
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "T8", Title: "Continent demand statistics", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

// ecdfSeries converts an ECDF into a rendered series.
func ecdfSeries(title string, e *stats.ECDF, n int) *report.Series {
	s := report.NewSeries(title, "x", "cdf")
	for _, p := range e.Points(n) {
		s.MustAdd(p.X, p.Y)
	}
	return s
}

// sortedCopy returns an ascending copy of xs.
func sortedCopy(xs []float64) []float64 {
	out := append([]float64(nil), xs...)
	sort.Float64s(out)
	return out
}
