package pipeline

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"cellspot/internal/aschar"
	"cellspot/internal/beacon"
	"cellspot/internal/classify"
	"cellspot/internal/dnsmap"
	"cellspot/internal/geo"
	"cellspot/internal/netaddr"
	"cellspot/internal/netinfo"
	"cellspot/internal/report"
	"cellspot/internal/stats"
	"cellspot/internal/world"
)

// experimentF1 reproduces Fig 1: the Network Information API's share of
// beacon hits by month and browser, cross-checked against the generated
// December 2016 BEACON aggregate.
func experimentF1(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Fig 1 — Network Information API share of beacon hits",
		"month_index", "total", "chrome_mobile", "android_webkit")
	cellFrac := r.Macro.GlobalCellFrac()
	var dec16 float64
	for m := (netinfo.Month{Year: 2015, Mon: 9}); m.Index() <= (netinfo.Month{Year: 2017, Mon: 6}).Index(); m = m.Next() {
		total, byBrowser := netinfo.ExpectedAPIShare(m, cellFrac)
		s.MustAdd(float64(m.Index()), total, byBrowser[netinfo.ChromeMobile], byBrowser[netinfo.AndroidWebKit])
		if m == netinfo.December2016 {
			dec16 = total
		}
	}
	tot := r.Beacon.Totals()
	measured := float64(tot.API) / float64(tot.Hits)

	// Cross-check the analytic curve by actually generating BEACON
	// aggregates at sampled months (reduced volume): the measured shares
	// must climb with the model.
	sampled := report.NewSeries("Fig 1 — measured API share at sampled months",
		"month_index", "measured_share")
	prevShare := -1.0
	monotone := true
	for _, m := range []netinfo.Month{{Year: 2015, Mon: 10}, {Year: 2016, Mon: 5},
		{Year: 2016, Mon: 12}, {Year: 2017, Mon: 6}} {
		bcfg := r.Config.Beacon
		bcfg.TotalHits = max(bcfg.TotalHits/10, 100_000)
		bcfg.Month = m
		agg, err := beacon.Generate(r.World, bcfg)
		if err != nil {
			return nil, err
		}
		t := agg.Totals()
		share := float64(t.API) / float64(t.Hits)
		sampled.MustAdd(float64(m.Index()), share)
		if share < prevShare {
			monotone = false
		}
		prevShare = share
	}
	_, byBrowser := netinfo.ExpectedAPIShare(netinfo.December2016, cellFrac)
	google := byBrowser[netinfo.ChromeMobile] + byBrowser[netinfo.AndroidWebKit] + byBrowser[netinfo.ChromeDesktop]
	jun17, _ := netinfo.ExpectedAPIShare(netinfo.Month{Year: 2017, Mon: 6}, cellFrac)

	var sb strings.Builder
	if err := s.Render(&sb, 12); err != nil {
		return nil, err
	}
	if err := sampled.Render(&sb, 0); err != nil {
		return nil, err
	}
	if !monotone {
		sb.WriteString("WARNING: measured monthly shares are not monotone.\n")
	}
	fmt.Fprintf(&sb, "Dec 2016 API share: model %s, measured from BEACON %s (paper: 13.2%%).\n",
		report.Pct(dec16, 1), report.Pct(measured, 1))
	fmt.Fprintf(&sb, "Google browsers' share of enabled hits: %s (paper: 96.7%%). Jun 2017 share: %s (paper: ~15%%).\n",
		report.Pct(google/dec16, 1), report.Pct(jun17, 1))
	return &Output{ID: "F1", Title: "API prevalence timeline", Text: sb.String(),
		Metrics: map[string]float64{
			"dec2016_share":   measured,
			"jun2017_share":   jun17,
			"google_share":    google / dec16,
			"growth_monotone": b2f(monotone),
		},
		Paper: map[string]float64{
			"dec2016_share": 0.132, "jun2017_share": 0.15, "google_share": 0.967,
		},
	}, nil
}

// experimentF2 reproduces Fig 2: CDFs of cellular ratios across subnets and
// demand, for IPv4 and IPv6, with the paper's three-bucket summary.
func experimentF2(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	metrics := map[string]float64{}
	paper := map[string]float64{
		"v4_count_low": 0.913, "v4_count_mid": 0.029, "v4_count_high": 0.058,
		"v6_count_low": 0.987, "v6_count_high": 0.012,
		"v4_demand_low": 0.80, "v4_demand_mid": 0.069, "v4_demand_high": 0.131,
	}
	for _, fam := range []netaddr.Family{netaddr.IPv4, netaddr.IPv6} {
		samples := classify.Ratios(r.Beacon, fam, r.Demand.DU)
		ratios := make([]float64, len(samples))
		weights := make([]float64, len(samples))
		for i, s := range samples {
			ratios[i] = s.Ratio
			weights[i] = s.DU
		}
		counts, demands := classify.BucketShares(samples, 0.1, 0.9)
		key := fam.String()
		metrics[key+"_count_low"] = counts[0]
		metrics[key+"_count_mid"] = counts[1]
		metrics[key+"_count_high"] = counts[2]
		metrics[key+"_demand_low"] = demands[0]
		metrics[key+"_demand_mid"] = demands[1]
		metrics[key+"_demand_high"] = demands[2]

		cdf := ecdfSeries(fmt.Sprintf("Fig 2 — cellular-ratio CDF (%s subnets)", key),
			stats.NewECDF(ratios), 21)
		if err := cdf.Render(&sb, 0); err != nil {
			return nil, err
		}
		wcdf, err := stats.NewWeightedECDF(ratios, weights)
		if err != nil {
			return nil, err
		}
		dcdf := ecdfSeries(fmt.Sprintf("Fig 2 — cellular-ratio CDF (%s demand-weighted)", key), wcdf, 21)
		if err := dcdf.Render(&sb, 0); err != nil {
			return nil, err
		}
		fmt.Fprintf(&sb, "%s buckets (<0.1 / mid / >0.9): subnets %s/%s/%s, demand %s/%s/%s\n\n",
			key, report.Pct(counts[0], 1), report.Pct(counts[1], 1), report.Pct(counts[2], 1),
			report.Pct(demands[0], 1), report.Pct(demands[1], 1), report.Pct(demands[2], 1))
	}
	sb.WriteString("Paper: 91.3% of /24 and 98.7% of /48 below 0.1; 5.8% of /24 and 1.2% of /48 above 0.9;\n" +
		"IPv4 demand 80% below 0.1, 6.9% intermediate, 13.1% above 0.9.\n")
	// Label confidence: the share of API-visible blocks whose Wilson
	// interval clears the 0.5 threshold entirely.
	tallies := make(map[int][2]int)
	i := 0
	for _, c := range r.Beacon.PerBlock {
		tallies[i] = [2]int{c.Cell, c.API}
		i++
	}
	confident := classify.ConfidentFraction(tallies, r.Config.Threshold, classify.Z95())
	fmt.Fprintf(&sb, "Labels statistically settled at 95%% confidence: %s of API-visible blocks.\n",
		report.Pct(confident, 1))
	metrics["confident_fraction"] = confident
	return &Output{ID: "F2", Title: "Cellular ratio distributions", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

// b2f converts a bool to a 0/1 metric.
func b2f(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// carrierCases returns the three validation carriers of the case study.
func carrierCases(r *Result) []struct {
	Name string
	Op   *world.Operator
} {
	return []struct {
		Name string
		Op   *world.Operator
	}{
		{"Carrier A (mixed EU)", r.World.CarrierA},
		{"Carrier B (dedicated US)", r.World.CarrierB},
		{"Carrier C (mixed ME)", r.World.CarrierC},
	}
}

// experimentF3 reproduces Fig 3: demand-weighted F1 across thresholds for
// the three carriers, checking the plateau the paper reports.
func experimentF3(env *Env) (*Output, error) {
	r, err := env.Case()
	if err != nil {
		return nil, err
	}
	s := report.NewSeries("Fig 3 — F1 score vs cellular-ratio threshold (demand-weighted)",
		"threshold", "carrierA", "carrierB", "carrierC")
	ths := classify.ThresholdRange(50)
	curves := make([][]classify.SweepPoint, 0, 3)
	for _, cc := range carrierCases(r) {
		truth := r.World.CarrierTruth(cc.Op, false)
		pts, err := classify.Sweep(r.Beacon, truth, r.Demand.DU, ths)
		if err != nil {
			return nil, err
		}
		curves = append(curves, pts)
	}
	metrics := map[string]float64{}
	for i := range ths {
		s.MustAdd(ths[i], curves[0][i].ByDemand.F1(), curves[1][i].ByDemand.F1(), curves[2][i].ByDemand.F1())
	}
	// Plateau: minimum F1 over thresholds in [0.1, 0.9].
	names := []string{"A", "B", "C"}
	for ci, pts := range curves {
		minF1 := 1.0
		for _, p := range pts {
			if p.Threshold >= 0.1 && p.Threshold <= 0.9 {
				if f := p.ByDemand.F1(); f < minF1 {
					minF1 = f
				}
			}
		}
		metrics["plateau_min_f1_"+names[ci]] = minF1
	}
	var sb strings.Builder
	if err := s.Render(&sb, 15); err != nil {
		return nil, err
	}
	sb.WriteString("Paper: accuracy is stable for all thresholds between 0.1 and 0.96.\n")
	return &Output{ID: "F3", Title: "Threshold sensitivity", Text: sb.String(),
		Metrics: metrics,
		Paper: map[string]float64{
			"plateau_min_f1_A": 0.85, "plateau_min_f1_B": 0.95, "plateau_min_f1_C": 0.9,
		},
	}, nil
}

// experimentT3 reproduces Table 3: per-carrier classification accuracy at
// the 0.5 threshold, by CIDR count and by demand.
func experimentT3(env *Env) (*Output, error) {
	r, err := env.Case()
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Table 3 — Classification accuracy (threshold 0.5, paper-scale carriers)",
		"Carrier", "Mode", "TP", "FP", "TN", "FN", "Precision", "Recall", "F1")
	paperRows := map[string][2][7]float64{
		// TP, FP, TN, FN, P, R, F1
		"A": {{496, 16, 89553, 4626, 0.97, 0.10, 0.09 /* sic: paper prints 0.09 */}, {70.96, 0.142, 1306.36, 15.217, 0.99, 0.82, 0.9}},
		"B": {{2937, 0, 0, 35, 1.0, 0.99, 0.99}, {46.01, 0, 0, 0.016, 1.0, 0.99, 0.99}},
		"C": {{383, 5, 3049, 99, 0.98, 0.79, 0.88}, {10.79, 0.17, 42.85, 0.15, 0.98, 0.98, 0.98}},
	}
	metrics := map[string]float64{}
	paper := map[string]float64{}
	names := []string{"A", "B", "C"}
	for ci, cc := range carrierCases(r) {
		truth := r.World.CarrierTruth(cc.Op, false)
		byCount := classify.Evaluate(r.Detected, truth, nil)
		byDemand := classify.Evaluate(r.Detected, truth, r.Demand.DU)
		name := names[ci]
		for mi, m := range []classify.Confusion{byCount, byDemand} {
			mode := "CIDR"
			prec := 0
			if mi == 1 {
				mode = "Demand"
				prec = 2
			}
			t.Row(cc.Name, mode,
				report.F(m.TP, prec), report.F(m.FP, prec), report.F(m.TN, prec), report.F(m.FN, prec),
				report.F(m.Precision(), 2), report.F(m.Recall(), 2), report.F(m.F1(), 2))
			pv := paperRows[name][mi]
			t.Row("", "paper",
				report.F(pv[0], prec), report.F(pv[1], prec), report.F(pv[2], prec), report.F(pv[3], prec),
				report.F(pv[4], 2), report.F(pv[5], 2), report.F(pv[6], 2))
			key := name + "_" + mode
			metrics[key+"_precision"] = m.Precision()
			metrics[key+"_recall"] = m.Recall()
			paper[key+"_precision"] = pv[4]
			paper[key+"_recall"] = pv[5]
		}
	}
	var sb strings.Builder
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "T3", Title: "Carrier validation", Text: sb.String(),
		Metrics: metrics, Paper: paper}, nil
}

// experimentF4 reproduces Fig 4: distributions of cellular demand and
// beacon responses across the straw-man-tagged ASes.
func experimentF4(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	var cellDU, cellHits, totalHits []float64
	for _, a := range r.Filter.Tagged {
		s := r.Stats[a]
		cellDU = append(cellDU, s.CellDU)
		cellHits = append(cellHits, float64(s.CellHits))
		totalHits = append(totalHits, float64(s.Hits))
	}
	var sb strings.Builder
	duCDF := ecdfSeries("Fig 4a — per-AS cellular demand CDF (DU)", stats.NewECDF(cellDU), 15)
	if err := duCDF.Render(&sb, 0); err != nil {
		return nil, err
	}
	hitCDF := ecdfSeries("Fig 4b — per-AS cellular beacon hits CDF", stats.NewECDF(cellHits), 15)
	if err := hitCDF.Render(&sb, 0); err != nil {
		return nil, err
	}
	totCDF := ecdfSeries("Fig 4b — per-AS total beacon hits CDF", stats.NewECDF(totalHits), 15)
	if err := totCDF.Render(&sb, 0); err != nil {
		return nil, err
	}
	// Paper: ~40% of tagged ASes have 6+ orders of magnitude less demand
	// than the largest.
	duSorted := sortedCopy(cellDU)
	maxDU := duSorted[len(duSorted)-1]
	small := 0
	for _, v := range duSorted {
		if v < maxDU*1e-5 {
			small++
		}
	}
	smallFrac := float64(small) / float64(len(duSorted))
	fmt.Fprintf(&sb, "%s of tagged ASes carry <1e-5 of the largest AS's cellular demand (paper: ~40%% are 6+ orders below).\n",
		report.Pct(smallFrac, 1))
	return &Output{ID: "F4", Title: "Per-AS demand and hit distributions", Text: sb.String(),
		Metrics: map[string]float64{"tiny_as_fraction": smallFrac},
		Paper:   map[string]float64{"tiny_as_fraction": 0.40},
	}, nil
}

// experimentF5 reproduces Fig 5: CDFs of the cellular fraction of demand
// and of subnets across the identified cellular ASes.
func experimentF5(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	var cfds, subnetFracs []float64
	for _, n := range r.Networks {
		cfds = append(cfds, n.CFD())
		subnetFracs = append(subnetFracs, n.CellBlockFraction())
	}
	var sb strings.Builder
	if err := ecdfSeries("Fig 5 — cellular fraction of demand (CFD) CDF", stats.NewECDF(cfds), 21).Render(&sb, 0); err != nil {
		return nil, err
	}
	if err := ecdfSeries("Fig 5 — cellular fraction of subnets CDF", stats.NewECDF(subnetFracs), 21).Render(&sb, 0); err != nil {
		return nil, err
	}
	medCFD := stats.NewECDF(cfds).Quantile(0.5)
	medSub := stats.NewECDF(subnetFracs).Quantile(0.5)
	gap := medCFD - medSub
	fmt.Fprintf(&sb, "Median CFD %s vs median subnet fraction %s — gap %s (paper: gap larger than 0.5 at median).\n",
		report.F(medCFD, 3), report.F(medSub, 3), report.F(gap, 3))
	return &Output{ID: "F5", Title: "Mixed-network distributions", Text: sb.String(),
		Metrics: map[string]float64{"median_gap": gap},
		Paper:   map[string]float64{"median_gap": 0.5},
	}, nil
}

// experimentF6 reproduces Fig 6: subnet-allocation vs demand CDFs across
// cellular ratio for one dedicated (Carrier B) and one mixed (Carrier A)
// operator at paper scale.
func experimentF6(env *Env) (*Output, error) {
	r, err := env.Case()
	if err != nil {
		return nil, err
	}
	metrics := map[string]float64{}
	var sb strings.Builder
	for _, cc := range []struct {
		key  string
		name string
		op   *world.Operator
	}{
		{"dedicated", "Fig 6a — large U.S. dedicated network", r.World.CarrierB},
		{"mixed", "Fig 6b — large European mixed network", r.World.CarrierA},
	} {
		announced := make([]netaddr.Block, 0, len(cc.op.Blocks))
		for _, b := range cc.op.Blocks {
			announced = append(announced, b.Block)
		}
		views := aschar.OperatorBlocks(announced, aschar.Inputs{
			Detected: r.Detected, Beacon: r.Beacon, Demand: r.Demand, ASOf: r.ASOf,
		})
		s := report.NewSeries(cc.name, "cellular_pct", "subnet_cdf", "demand_cdf")
		totalDU := 0.0
		for _, v := range views {
			totalDU += v.DU
		}
		cumDU, zeroRatio := 0.0, 0
		for i, v := range views {
			cumDU += v.DU
			if v.Ratio == 0 {
				zeroRatio++
			}
			if i%max(1, len(views)/40) == 0 || i == len(views)-1 {
				s.MustAdd(v.Ratio, float64(i+1)/float64(len(views)), cumDU/totalDU)
			}
		}
		if err := s.Render(&sb, 15); err != nil {
			return nil, err
		}
		metrics[cc.key+"_zero_ratio_frac"] = float64(zeroRatio) / float64(len(views))
	}
	sb.WriteString("Paper: 40% of the dedicated AS's /24s sit at ratio 0 with no demand; in the mixed AS,\n" +
		"<2% of /24s exceed ratio 0.2 yet capture <6% of demand.\n")
	return &Output{ID: "F6", Title: "Operator breakdowns", Text: sb.String(),
		Metrics: metrics,
		Paper:   map[string]float64{"dedicated_zero_ratio_frac": 0.40, "mixed_zero_ratio_frac": 0.95},
	}, nil
}

// experimentF7 reproduces Fig 7: ranked per-AS cellular demand.
func experimentF7(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	var cellDU []float64
	for _, n := range r.Networks {
		cellDU = append(cellDU, n.CellDU)
	}
	pts := stats.RankShare(cellDU)
	s := report.NewSeries("Fig 7 — ranked AS share of global cellular demand", "rank", "share")
	for _, p := range pts {
		s.MustAdd(p.X, p.Y)
	}
	top5 := stats.TopShare(cellDU, 5)
	top10 := stats.TopShare(cellDU, 10)
	gini, err := stats.Gini(cellDU)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	if err := s.Render(&sb, 15); err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "Top-5 ASes: %s of cellular demand (paper 35.9%%); top-10: %s (paper 38%%); Gini %.3f.\n",
		report.Pct(top5, 1), report.Pct(top10, 1), gini)
	return &Output{ID: "F7", Title: "Ranked AS demand", Text: sb.String(),
		Metrics: map[string]float64{"top5_share": top5, "top10_share": top10, "gini": gini},
		Paper:   map[string]float64{"top5_share": 0.359, "top10_share": 0.38},
	}, nil
}

// experimentF8 reproduces Fig 8: ranked subnet demand for cellular vs
// fixed subnets inside the paper-scale mixed European carrier.
func experimentF8(env *Env) (*Output, error) {
	r, err := env.Case()
	if err != nil {
		return nil, err
	}
	op := r.World.CarrierA
	var cellDU, fixedDU []float64
	for _, b := range op.Blocks {
		du := r.Demand.DU(b.Block)
		if du == 0 {
			continue
		}
		if r.Detected.Has(b.Block) {
			cellDU = append(cellDU, du)
		} else {
			fixedDU = append(fixedDU, du)
		}
	}
	cellRank := stats.RankShare(cellDU)
	fixedRank := stats.RankShare(fixedDU)
	s := report.NewSeries("Fig 8 — ranked /24 demand, mixed EU operator", "rank", "cellular_share", "fixed_share")
	n := max(len(cellRank), len(fixedRank))
	for i := 0; i < n; i++ {
		c, f := 0.0, 0.0
		if i < len(cellRank) {
			c = cellRank[i].Y
		}
		if i < len(fixedRank) {
			f = fixedRank[i].Y
		}
		s.MustAdd(float64(i+1), c, f)
	}
	top25 := stats.TopShare(cellDU, 25)
	n993 := stats.MinCountForShare(cellDU, 0.993)
	fixed993 := stats.MinCountForShare(fixedDU, 0.993)
	// The paper reports demand dropping by nearly two orders of magnitude
	// right after the heavy head; measure the largest consecutive-rank drop
	// within the top 50 cellular blocks.
	drop := 0.0
	for i := 1; i < 50 && i < len(cellRank); i++ {
		if cellRank[i].Y > 0 {
			if d := cellRank[i-1].Y / cellRank[i].Y; d > drop {
				drop = d
			}
		}
	}
	var sb strings.Builder
	if err := s.Render(&sb, 15); err != nil {
		return nil, err
	}
	fmt.Fprintf(&sb, "Top 25 cellular /24s carry %s of cellular demand (paper: 99.3%%); 99.3%% reached at %d cellular /24s vs %d fixed /24s.\n",
		report.Pct(top25, 2), n993, fixed993)
	fmt.Fprintf(&sb, "Demand drop after the heavy head: %sx (paper: nearly two orders of magnitude).\n", report.F(drop, 1))
	return &Output{ID: "F8", Title: "Subnet demand concentration", Text: sb.String(),
		Metrics: map[string]float64{
			"top25_cell_share": top25,
			"cell_blocks_993":  float64(n993),
			"head_tail_drop":   drop,
		},
		Paper: map[string]float64{
			"top25_cell_share": 0.993, "cell_blocks_993": 25, "head_tail_drop": 50,
		},
	}, nil
}

// experimentF9 reproduces Fig 9: the cellular demand fraction of resolvers
// in identified mixed cellular ASes.
func experimentF9(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	fracs := dnsmap.CellFractions(r.ResolverUsage, r.ResolverAS, r.MixedASSet())
	if len(fracs) == 0 {
		return nil, fmt.Errorf("pipeline: no resolvers in mixed ASes")
	}
	var sb strings.Builder
	if err := ecdfSeries("Fig 9 — resolver cellular demand fraction CDF (mixed ASes)",
		stats.NewECDF(fracs), 21).Render(&sb, 0); err != nil {
		return nil, err
	}
	// The hi cutoff sits at 0.8: cellular-only resolvers still carry the
	// demand of low-activity cellular blocks the classifier cannot see,
	// which lands them below a naive 0.97 bar.
	sharing := dnsmap.ClassifySharing(fracs, 0.05, 0.80)
	total := float64(len(fracs))
	sharedFrac := float64(sharing.Shared) / total
	var sharedVals []float64
	for _, f := range fracs {
		if f >= 0.05 && f <= 0.80 {
			sharedVals = append(sharedVals, f)
		}
	}
	medianShared := math.NaN()
	if len(sharedVals) > 0 {
		medianShared = stats.NewECDF(sharedVals).Quantile(0.5)
	}
	fmt.Fprintf(&sb, "Shared resolvers: %s (paper: ~60%%); dedicated cellular %s / fixed %s (paper: ~20%% each).\n",
		report.Pct(sharedFrac, 1),
		report.Pct(float64(sharing.CellOnly)/total, 1),
		report.Pct(float64(sharing.FixedOnly)/total, 1))
	fmt.Fprintf(&sb, "Median shared resolver serves %s cellular demand (paper: ~25%%).\n", report.Pct(medianShared, 1))
	return &Output{ID: "F9", Title: "Resolver sharing", Text: sb.String(),
		Metrics: map[string]float64{"shared_fraction": sharedFrac, "median_shared_cell_fraction": medianShared},
		Paper:   map[string]float64{"shared_fraction": 0.60, "median_shared_cell_fraction": 0.25},
	}, nil
}

// fig10Countries lists the paper's Fig 10 operators by country code in
// x-axis order; US and HK appear twice (two operators each).
var fig10Countries = []string{"US", "US", "BR", "VN", "SA", "IN", "HK", "HK", "NG", "DZ"}

// experimentF10 reproduces Fig 10: public DNS usage in selected cellular
// operators around the globe.
func experimentF10(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	// Pick the top cellular ASes per Fig-10 country, by cellular demand.
	byCountry := map[string][]aschar.Network{}
	for _, n := range aschar.RankByCellDU(r.Networks) {
		cc, ok := r.CountryOf(n.ASN)
		if !ok {
			continue
		}
		byCountry[cc] = append(byCountry[cc], n)
	}
	used := map[string]int{}
	t := report.NewTable("Fig 10 — Public DNS usage in selected cellular operators",
		"Operator", "GoogleDNS", "OpenDNS", "Level3", "Total public")
	metrics := map[string]float64{}
	var sb strings.Builder
	for _, cc := range fig10Countries {
		idx := used[cc]
		used[cc]++
		nets := byCountry[cc]
		if idx >= len(nets) {
			continue
		}
		n := nets[idx]
		pu := r.PublicDNS[n.ASN]
		label := fmt.Sprintf("%s%d", cc, idx+1)
		if pu == nil {
			t.Row(label, "-", "-", "-", "-")
			continue
		}
		t.Row(label,
			report.Pct(pu.ProviderShare("GoogleDNS"), 1),
			report.Pct(pu.ProviderShare("OpenDNS"), 1),
			report.Pct(pu.ProviderShare("Level3"), 1),
			report.Pct(pu.PublicShare(), 1))
		metrics["public_share_"+label] = pu.PublicShare()
	}
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	sb.WriteString("Paper: US operators < 2%; IN ~40%; both HK operators > 55%; DZ ~97%.\n")
	return &Output{ID: "F10", Title: "Public DNS usage", Text: sb.String(),
		Metrics: metrics,
		Paper: map[string]float64{
			"public_share_US1": 0.02, "public_share_US2": 0.02,
			"public_share_IN1": 0.40, "public_share_HK1": 0.55,
			"public_share_HK2": 0.55, "public_share_DZ1": 0.97,
		},
	}, nil
}

// experimentF11 reproduces Fig 11: per-continent top-10 countries' share of
// global cellular demand.
func experimentF11(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	metrics := map[string]float64{}
	for _, ct := range geo.Continents() {
		top := r.Macro.TopCountriesByCellDU(ct, 10)
		t := report.NewTable(fmt.Sprintf("Fig 11 — %s: top countries by share of global cellular demand", ct.Name()),
			"Country", "Share of global cellular")
		for _, cs := range top {
			share := r.Macro.CellShareOfGlobal(cs.Country.Code)
			t.Row(cs.Country.Code, report.Pct(share, 2))
		}
		if err := t.Render(&sb); err != nil {
			return nil, err
		}
	}
	metrics["us_share"] = r.Macro.CellShareOfGlobal("US")
	metrics["top5_share"] = r.Macro.TopCountryShares(5)
	metrics["top20_share"] = r.Macro.TopCountryShares(20)
	fmt.Fprintf(&sb, "US share of global cellular demand: %s (paper: >30%%). Top-5 countries: %s (paper 55.7%%); top-20: %s (paper 80%%).\n",
		report.Pct(metrics["us_share"], 1), report.Pct(metrics["top5_share"], 1), report.Pct(metrics["top20_share"], 1))
	return &Output{ID: "F11", Title: "Country demand distribution", Text: sb.String(),
		Metrics: metrics,
		Paper:   map[string]float64{"us_share": 0.30, "top5_share": 0.557, "top20_share": 0.80},
	}, nil
}

// experimentF12 reproduces Fig 12: countries by cellular demand ratio vs
// normalized cellular demand.
func experimentF12(env *Env) (*Output, error) {
	r, err := env.Global()
	if err != nil {
		return nil, err
	}
	pts := r.Macro.Scatter()
	s := report.NewSeries("Fig 12 — country cellular demand vs cellular fraction", "cfd", "cell_du")
	sort.Slice(pts, func(i, j int) bool { return pts[i].CFD < pts[j].CFD })
	for _, p := range pts {
		s.MustAdd(p.CFD, p.CellDU)
	}
	byCode := map[string]float64{}
	for _, p := range pts {
		byCode[p.Code] = p.CFD
	}
	var sb strings.Builder
	if err := s.Render(&sb, 20); err != nil {
		return nil, err
	}
	t := report.NewTable("Fig 12 frontier countries", "Country", "CFD (measured)", "CFD (paper)")
	paperFrontier := map[string]float64{"GH": 0.959, "LA": 0.871, "ID": 0.63, "US": 0.166, "FR": 0.121}
	for _, cc := range []string{"GH", "LA", "ID", "US", "FR"} {
		t.Row(cc, report.F(byCode[cc], 3), report.F(paperFrontier[cc], 3))
	}
	if err := t.Render(&sb); err != nil {
		return nil, err
	}
	return &Output{ID: "F12", Title: "Demand-vs-fraction scatter", Text: sb.String(),
		Metrics: map[string]float64{
			"cfd_GH": byCode["GH"], "cfd_LA": byCode["LA"], "cfd_ID": byCode["ID"],
			"cfd_US": byCode["US"], "cfd_FR": byCode["FR"],
		},
		Paper: map[string]float64{
			"cfd_GH": 0.959, "cfd_LA": 0.871, "cfd_ID": 0.63,
			"cfd_US": 0.166, "cfd_FR": 0.121,
		},
	}, nil
}
