package pipeline

import (
	"os"
	"path/filepath"
	"testing"

	"cellspot/internal/beacon"
	"cellspot/internal/ingest"
)

func writeForeignTree(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	body := "#separator \\x09\n" +
		"#fields\tts\tuid\tid.orig_h\tid.orig_p\torig_bytes\tresp_bytes\tcellspot_net_type\n" +
		"1482624001.5\tC1\t10.9.0.1\t1000\t100\t900\tcellular\n" +
		"1482624002.5\tC2\t10.9.0.2\t1001\t80\t700\tcellular\n" +
		"1482624003.5\tC3\t192.0.2.9\t1002\t50\t400\twifi\n" +
		"garbage that is not TSV\n" +
		"1482624004.5\tC4\t192.0.2.10\t1003\t10\t90\twifi\n"
	if err := os.WriteFile(filepath.Join(dir, "conn.log"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunForeign(t *testing.T) {
	dir := writeForeignTree(t)
	var hooked []beacon.Record
	r, err := RunForeign(ingest.Config{Dir: dir}, 0, 1, func(rec beacon.Record) {
		hooked = append(hooked, rec)
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Records != 4 || r.Stats.Bad != 1 {
		t.Fatalf("stats = %+v, want 4 records / 1 bad", r.Stats)
	}
	if len(hooked) != 4 {
		t.Fatalf("hook saw %d records", len(hooked))
	}
	// 10.9.0.0/24 is all-cellular; 192.0.2.0/24 is all-wifi.
	if r.Detected.Len() != 1 {
		t.Fatalf("detected %d blocks, want 1", r.Detected.Len())
	}
	if r.Demand.Blocks() != 2 || r.Demand.Total() == 0 {
		t.Errorf("demand: %d blocks, %f DU", r.Demand.Blocks(), r.Demand.Total())
	}

	// Strict mode aborts on the injected garbage line.
	if _, err := RunForeign(ingest.Config{Dir: dir, Strict: true}, 0, 1, nil); err == nil {
		t.Error("strict RunForeign accepted malformed input")
	}
	// Out-of-range threshold is rejected before any I/O.
	if _, err := RunForeign(ingest.Config{Dir: dir}, 1.5, 1, nil); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}
