package pipeline

import "testing"

func TestAblationASNOnly(t *testing.T) {
	r := testRun(t)
	res := AblationASNOnly(r)
	// The paper's core argument: prefix-level identification is far more
	// precise than AS-level on a world where most cellular ASes are mixed.
	pPrefix := res.PrefixLevel.Precision()
	pASN := res.ASNLevel.Precision()
	if pASN >= pPrefix {
		t.Errorf("AS-level precision %.3f >= prefix-level %.3f; mixed networks should break AS granularity",
			pASN, pPrefix)
	}
	if pASN > 0.6 {
		t.Errorf("AS-level precision %.3f suspiciously high", pASN)
	}
	if pPrefix < 0.85 {
		t.Errorf("prefix-level precision %.3f too low", pPrefix)
	}
	// AS-level recall is higher (it sweeps in the beacon-less blocks), the
	// classic precision/recall trade the paper rejects.
	if res.ASNLevel.Recall() < res.PrefixLevel.Recall() {
		t.Error("AS-level should over-cover, not under-cover")
	}
}

func TestAblationThreshold(t *testing.T) {
	r := testRun(t)
	res, err := AblationThreshold(r, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("results = %d", len(res))
	}
	// Detection counts shrink as the threshold rises.
	if !(res[0].Detected > res[1].Detected && res[1].Detected > res[2].Detected) {
		t.Errorf("detected counts not monotone: %d/%d/%d",
			res[0].Detected, res[1].Detected, res[2].Detected)
	}
	// F1 is stable between 0.1 and 0.5 (the paper's plateau).
	f1Low, f1Mid := res[0].ByDemand.F1(), res[1].ByDemand.F1()
	if diff := f1Low - f1Mid; diff > 0.05 || diff < -0.05 {
		t.Errorf("F1 plateau broken: %.3f at 0.1 vs %.3f at 0.5", f1Low, f1Mid)
	}
	// The original detection set is restored.
	if r.Detected.Len() != res[1].Detected {
		// res[1] is threshold 0.5 — the run's own operating point.
		t.Errorf("ablation mutated the result: %d vs %d", r.Detected.Len(), res[1].Detected)
	}
	if _, err := AblationThreshold(r, []float64{0}); err == nil {
		t.Error("invalid threshold accepted")
	}
}

func TestAblationNoASFilters(t *testing.T) {
	r := testRun(t)
	res := AblationNoASFilters(r)
	if res.FalseASes < 400 {
		t.Errorf("straw-man admitted %d false ASes, want hundreds", res.FalseASes)
	}
	removed := res.FalseASes - res.SurvivingFalse
	if removed < res.FalseASes*9/10 {
		t.Errorf("filters removed only %d of %d false ASes", removed, res.FalseASes)
	}
	if res.TaggedASes <= res.FilteredASes {
		t.Error("filtering did not shrink the AS set")
	}
}

func TestAblationNoSmoothing(t *testing.T) {
	r := testRun(t)
	res, err := AblationNoSmoothing(r)
	if err != nil {
		t.Fatal(err)
	}
	if res.SmoothedASes == 0 || res.Day0ASes == 0 {
		t.Fatal("empty AS sets")
	}
	// Day-to-day jitter flips some borderline ASes, but the bulk is stable.
	if res.Flipped > res.SmoothedASes/4 {
		t.Errorf("churn too high: %d flips of %d ASes", res.Flipped, res.SmoothedASes)
	}
}
