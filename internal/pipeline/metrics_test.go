package pipeline

import (
	"strings"
	"testing"

	"cellspot/internal/obs"
)

// TestStageMetricsRecorded runs a small pipeline with a registry attached
// and checks that every stage reported wall time and items, and that the
// par worker-utilization counters moved.
func TestStageMetricsRecorded(t *testing.T) {
	cfg := equivConfig(1, 0.005, 2)
	reg := cfg.Metrics
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := reg.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, stage := range []string{"world", "beacon", "demand", "classify", "analyze"} {
		c := reg.Counter("pipeline_stage_runs_total", "", obs.L("stage", stage))
		if c.Value() != 1 {
			t.Errorf("stage %s ran %d times in metrics, want 1", stage, c.Value())
		}
		h := reg.Histogram("pipeline_stage_seconds", "", nil, obs.L("stage", stage))
		if h.Count() != 1 {
			t.Errorf("stage %s recorded %d timings, want 1", stage, h.Count())
		}
		if !strings.Contains(out, `pipeline_stage_seconds_count{stage="`+stage+`"} 1`) {
			t.Errorf("exposition missing stage %s", stage)
		}
	}
	for _, stage := range []string{"world", "beacon", "demand", "classify"} {
		c := reg.Counter("pipeline_stage_items_total", "", obs.L("stage", stage))
		if c.Value() == 0 {
			t.Errorf("stage %s reported zero items", stage)
		}
	}
	if reg.Counter("par_do_runs_total", "").Value() == 0 {
		t.Error("par runs counter did not move")
	}
	if reg.Counter("par_shards_total", "").Value() == 0 {
		t.Error("par shards counter did not move")
	}
}
